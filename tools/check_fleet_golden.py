#!/usr/bin/env python3
"""Compare the aggregate section of an element_fleet report against a golden.

The fleet's byte-identity contract holds across --jobs on one machine, but
sample values can drift across standard-library versions (normal_distribution
is implementation-defined), so CI pins the aggregate with a relative
tolerance rather than raw bytes:

    check_fleet_golden.py report.json golden.json --rtol 0.05

`--exact` demands numeric equality (use when report and golden come from the
same toolchain). Structure (keys, counts, statuses) must always match
exactly; only float leaves get tolerance.

Exit status: 0 match, 1 mismatch, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys

# Integer-valued leaves must match exactly even under --rtol: determinism
# bugs show up as off-by-a-few sample counts, which a 5% tolerance on a
# 100k-sample histogram would swallow.
EXACT_KEYS = {"count", "scenarios", "flows", "retransmits", "total", "completed",
              "failed", "cancelled"}


def compare(path: str, got, want, rtol: float, errors: list[str]) -> None:
    if isinstance(want, dict):
        if not isinstance(got, dict):
            errors.append(f"{path}: expected object, got {type(got).__name__}")
            return
        if set(got) != set(want):
            missing = sorted(set(want) - set(got))
            extra = sorted(set(got) - set(want))
            errors.append(f"{path}: key mismatch (missing {missing}, extra {extra})")
            return
        for key in sorted(want):
            compare(f"{path}.{key}", got[key], want[key], rtol, errors)
    elif isinstance(want, list):
        if not isinstance(got, list) or len(got) != len(want):
            errors.append(f"{path}: expected list of {len(want)}")
            return
        for i, (g, w) in enumerate(zip(got, want)):
            compare(f"{path}[{i}]", g, w, rtol, errors)
    elif isinstance(want, bool) or want is None or isinstance(want, str):
        if got != want:
            errors.append(f"{path}: got {got!r}, want {want!r}")
    else:  # number
        if not isinstance(got, (int, float)) or isinstance(got, bool):
            errors.append(f"{path}: expected number, got {got!r}")
            return
        leaf = path.rsplit(".", 1)[-1]
        tol = 0.0 if leaf in EXACT_KEYS else rtol
        if got == want:
            return
        denom = max(abs(want), 1e-12)
        rel = abs(got - want) / denom
        if rel > tol:
            errors.append(f"{path}: got {got}, want {want} (rel err {rel:.3g} > {tol})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="element_fleet output JSON")
    parser.add_argument("golden", help="golden aggregate JSON")
    parser.add_argument("--rtol", type=float, default=0.05,
                        help="relative tolerance for float leaves (default 0.05)")
    parser.add_argument("--exact", action="store_true",
                        help="require numeric equality everywhere")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            report = json.load(f)
        with open(args.golden) as f:
            golden = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_fleet_golden: {e}", file=sys.stderr)
        return 2

    # The golden pins the aggregate (and counts when present); the report is
    # a full fleet report or a bare aggregate.
    got = report.get("aggregate", report)
    want = golden.get("aggregate", golden)
    rtol = 0.0 if args.exact else args.rtol

    errors: list[str] = []
    compare("aggregate", got, want, rtol, errors)
    if "counts" in golden:
        compare("counts", report.get("counts"), golden["counts"], 0.0, errors)

    if errors:
        for e in errors:
            print(e)
        print(f"check_fleet_golden: {len(errors)} mismatch(es)", file=sys.stderr)
        return 1
    print("check_fleet_golden: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
