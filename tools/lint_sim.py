#!/usr/bin/env python3
"""Repo-specific determinism lint for the ELEMENT simulator.

The compiler cannot enforce the rules that keep simulation runs
reproducible; this lint does:

  R1  no wall-clock reads inside the simulator
      (std::chrono::system_clock / steady_clock / high_resolution_clock,
      time(), gettimeofday(), clock_gettime(), localtime/gmtime)
  R2  no RNG engine construction outside src/common/rng.h
      (std::mt19937*, minstd_rand, ranlux*, knuth_b, default_random_engine)
  R3  no std::random_device anywhere (nondeterministic seeding)
  R4  no libc rand()/srand()/drand48() family
  R5  no `float` in simulator arithmetic — time and byte bookkeeping must use
      int64/double so results do not depend on x87/SSE rounding width
  R6  no thread spawning (std::thread/std::jthread/std::async/pthread_create)
      in simulator code — every simulation is single-threaded by design
  R7  no std::function in src/tcpsim/, src/netsim/, src/topo/, or
      src/telemetry/ hot-path classes — those layers schedule via
      Timer/InlineCallback (slab-resident, no per-event heap allocation).
      Existing app-facing observer registration interfaces are waived
      line-by-line with allow(std-function); new members need a design reason
      to join them. src/topo/ is in scope because routers and cross-traffic
      generators sit on the per-packet forwarding path of every multi-flow
      scenario; src/telemetry/ because FlowTelemetry::Emit is inlined into
      every instrumented event and record sinks must stay virtual-call-only.

Scope: src/ is linted with every rule (R7 only in src/tcpsim/, src/netsim/,
src/topo/, and src/telemetry/). tests/, bench/, and examples/ are linted with
R2/R3/R4 only
(benchmark harnesses legitimately read wall clocks; floats never carry sim
state in src/ but may appear in plotting-oriented code).

src/runner/ policy: the fleet executor (src/runner/fleet.cc) is the one
sanctioned parallel driver, so it is exempt from R6 — but wall-clock reads
there are still findings unless waived line-by-line, and the simulations it
fans out remain single-threaded (everything the runner calls into is linted
with the full rule set). std::thread::hardware_concurrency() is a pure query,
not a spawn, and is allowed everywhere.

A finding can be waived for one line with a trailing comment:
    do_something();  // lint_sim: allow(<rule>)
e.g. `// lint_sim: allow(wall-clock)`.

Exit status: 0 when clean, 1 when findings exist, 2 on usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cc", ".h", ".cpp", ".hpp"}

# rule name -> (regex, message)
RULES = {
    "wall-clock": (
        re.compile(
            r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
            r"|\bgettimeofday\s*\("
            r"|\bclock_gettime\s*\("
            r"|\b(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"
            r"|\b(localtime|gmtime|mktime)\s*\("
        ),
        "wall-clock read; simulation code must use SimTime/EventLoop::now()",
    ),
    "rng-engine": (
        re.compile(
            r"\bstd::(mt19937(_64)?|minstd_rand0?|ranlux(24|48)(_base)?|knuth_b"
            r"|default_random_engine)\b"
        ),
        "RNG engine constructed outside src/common/rng.h; use Rng (explicit seed, Fork())",
    ),
    "random-device": (
        re.compile(r"\bstd::random_device\b"),
        "std::random_device is nondeterministic; seeds must be explicit",
    ),
    "libc-rand": (
        re.compile(r"\b(?:std::)?(rand|srand|rand_r|drand48|srand48|random)\s*\("),
        "libc rand family is nondeterministic across platforms; use Rng",
    ),
    "float": (
        re.compile(r"(?<![\w.])float(?![\w])"),
        "float in simulator arithmetic; use double or int64_t "
        "(time/byte bookkeeping must not lose precision)",
    ),
    "std-function": (
        re.compile(r"\bstd::function\b"),
        "std::function in a tcpsim/netsim hot-path class; per-event callbacks "
        "belong in Timer/InlineCallback storage (app-facing observer "
        "registration may be waived with lint_sim: allow(std-function))",
    ),
    # (?!::) keeps std::thread::hardware_concurrency() (a query, not a spawn)
    # out of scope.
    "thread": (
        re.compile(r"\bstd::j?thread\b(?!::)|\bstd::async\s*\(|\bpthread_create\b"),
        "thread spawned in simulator code; parallelism belongs in the "
        "src/runner/ fleet executor and each simulation stays single-threaded",
    ),
}

ALLOW_RE = re.compile(r"//\s*lint_sim:\s*allow\(([a-z-]+)\)")
LINE_COMMENT_RE = re.compile(r"//(?!\s*lint_sim:).*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

# Files exempt from specific rules.
EXEMPT = {
    # The one place RNG engines may be constructed and held.
    "src/common/rng.h": {"rng-engine"},
    # The sanctioned parallel driver: spawns worker threads around (not
    # inside) deterministic simulations. Wall-clock reads are still findings
    # here unless waived line-by-line for harness timing.
    "src/runner/fleet.cc": {"thread"},
}


def lint_line(line: str, rules: dict) -> list[tuple[str, str]]:
    """Returns (rule, message) findings for one source line."""
    allow = {m.group(1) for m in ALLOW_RE.finditer(line)}
    # Strip string literals and trailing comments so prose does not trip rules.
    code = STRING_RE.sub('""', line)
    code = LINE_COMMENT_RE.sub("", code)
    findings = []
    for name, (pattern, message) in rules.items():
        if name in allow:
            continue
        if pattern.search(code):
            findings.append((name, message))
    return findings


def rules_for(rel: str) -> dict:
    if rel.startswith("src/"):
        selected = dict(RULES)
        if not rel.startswith(("src/tcpsim/", "src/netsim/", "src/topo/", "src/telemetry/")):
            selected.pop("std-function")
    else:
        selected = {k: RULES[k] for k in ("rng-engine", "random-device", "libc-rand")}
    for rule in EXEMPT.get(rel, ()):  # per-file exemptions
        selected.pop(rule, None)
    return selected


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None, help="repository root (default: auto)")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src tests bench examples)",
    )
    args = parser.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"lint_sim: {root} does not look like the repo root", file=sys.stderr)
        return 2

    if args.paths:
        targets = [Path(p).resolve() for p in args.paths]
    else:
        targets = [root / d for d in ("src", "tests", "bench", "examples")]

    files = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(p for p in target.rglob("*") if p.suffix in CPP_SUFFIXES))
        elif target.is_file():
            files.append(target)
        else:
            print(f"lint_sim: no such path: {target}", file=sys.stderr)
            return 2

    failures = 0
    for path in files:
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:  # outside the repo root: no EXEMPT match, all rules apply
            rel = path.as_posix()
        rules = rules_for(rel)
        in_block_comment = False
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            # Cheap block-comment tracking (no nesting, as in C++).
            if in_block_comment:
                if "*/" in line:
                    line = line.split("*/", 1)[1]
                    in_block_comment = False
                else:
                    continue
            if "/*" in line and "*/" not in line.split("/*", 1)[1]:
                line = line.split("/*", 1)[0]
                in_block_comment = True
            for rule, message in lint_line(line, rules):
                print(f"{rel}:{lineno}: [{rule}] {message}")
                failures += 1

    if failures:
        print(f"lint_sim: {failures} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_sim: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
