#include "src/trace/packet_log.h"

#include <iomanip>

#include "src/common/data_rate.h"

namespace element {

SampleSet PacketLog::InterArrivalTimes(uint64_t flow_id) const {
  SampleSet out;
  bool have_prev = false;
  SimTime prev;
  for (const Entry& e : entries_) {
    if (flow_id != 0 && e.flow_id != flow_id) {
      continue;
    }
    if (have_prev) {
      out.Add((e.at - prev).ToSeconds());
    }
    prev = e.at;
    have_prev = true;
  }
  return out;
}

DataRate PacketLog::RateInWindow(uint64_t flow_id) const {
  if (entries_.size() < 2) {
    return DataRate::Zero();
  }
  // The first matching packet opens the window; its bytes are not "inside" it.
  int64_t bytes = 0;
  bool any = false;
  SimTime first;
  SimTime last;
  for (const Entry& e : entries_) {
    if (flow_id != 0 && e.flow_id != flow_id) {
      continue;
    }
    if (!any) {
      first = e.at;
      any = true;
      continue;
    }
    last = e.at;
    bytes += e.size_bytes;
  }
  if (!any || last <= first) {
    return DataRate::Zero();
  }
  return RateOver(bytes, last - first);
}

void PacketLog::Dump(std::ostream& os, size_t max_lines) const {
  os << std::setprecision(6) << std::fixed;
  size_t start = entries_.size() > max_lines ? entries_.size() - max_lines : 0;
  for (size_t i = start; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    os << e.at.ToSeconds() << " flow=" << e.flow_id << " len=" << e.size_bytes;
    if (e.ecn_marked) {
      os << " [CE]";
    }
    os << "\n";
  }
}

}  // namespace element
