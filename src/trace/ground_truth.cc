#include "src/trace/ground_truth.h"

#include <algorithm>

namespace element {

bool GroundTruthTracer::LookupInRanges(const std::vector<Range>& ranges, uint64_t byte,
                                       SimTime* out) {
  // Ranges are contiguous with strictly increasing `end`; entry i covers
  // [prev_end, end). Binary search for the first end > byte.
  auto it = std::upper_bound(ranges.begin(), ranges.end(), byte,
                             [](uint64_t b, const Range& r) { return b < r.end; });
  if (it == ranges.end()) {
    return false;
  }
  *out = it->t;
  return true;
}

void GroundTruthTracer::OnAppWrite(uint64_t /*begin*/, uint64_t end, SimTime t) {
  if (writes_.empty() || end > writes_.back().end) {
    writes_.push_back({end, t});
  }
}

void GroundTruthTracer::OnTcpTransmit(uint64_t begin, uint64_t end, SimTime t,
                                      bool /*retransmit*/) {
  // Every transmission updates the last-tx map (the perf probe fires on each
  // tcp_transmit_skb; network delay pairs an arrival with its transmission).
  last_tx_[begin] = {end, t};

  // Sender delay uses the *first* transmission of each byte. After a
  // go-back-N rewind the socket may resend old bytes flagged fresh; the
  // `end > last` guard filters them.
  uint64_t last = first_tx_.empty() ? 0 : first_tx_.back().end;
  if (end <= last) {
    return;
  }
  uint64_t new_begin = std::max(begin, last);
  first_tx_.push_back({end, t});

  SimTime wt;
  if (t >= config_.record_from && WriteTimeOf(new_begin, &wt)) {
    double d = (t - wt).ToSeconds();
    sender_delay_.Add(d);
    if (config_.keep_time_series) {
      sender_delay_series_.Add(t, d);
    }
  }
}

void GroundTruthTracer::OnTcpRxSegment(uint64_t begin, uint64_t end, SimTime t,
                                       bool /*in_order*/) {
  arrivals_[begin] = {end, t};
  if (t < config_.record_from) {
    return;
  }
  // Pair the arrival with the latest transmission covering its first byte.
  auto it = last_tx_.upper_bound(begin);
  if (it != last_tx_.begin()) {
    --it;
    if (begin < it->second.end && it->second.t <= t) {
      network_delay_.Add((t - it->second.t).ToSeconds());
    }
  }
}

void GroundTruthTracer::OnAppRead(uint64_t begin, uint64_t end, SimTime t) {
  if (t < config_.record_from) {
    return;
  }
  // A read may span several arrival ranges; sample each range it consumes.
  uint64_t cursor = begin;
  while (cursor < end) {
    auto it = arrivals_.upper_bound(cursor);
    if (it == arrivals_.begin()) {
      break;
    }
    --it;
    if (cursor >= it->second.end) {
      break;
    }
    double d = (t - it->second.t).ToSeconds();
    receiver_delay_.Add(d);
    if (config_.keep_time_series) {
      receiver_delay_series_.Add(t, d);
    }
    SimTime wt;
    if (WriteTimeOf(cursor, &wt)) {
      end_to_end_delay_.Add((t - wt).ToSeconds());
    }
    cursor = it->second.end;
  }
}

bool GroundTruthTracer::WriteTimeOf(uint64_t byte, SimTime* out) const {
  return LookupInRanges(writes_, byte, out);
}

bool GroundTruthTracer::FirstTxTimeOf(uint64_t byte, SimTime* out) const {
  return LookupInRanges(first_tx_, byte, out);
}

bool GroundTruthTracer::ArrivalTimeOf(uint64_t byte, SimTime* out) const {
  auto it = arrivals_.upper_bound(byte);
  if (it == arrivals_.begin()) {
    return false;
  }
  --it;
  if (byte >= it->second.end) {
    return false;
  }
  *out = it->second.t;
  return true;
}

GroundTruthTracer::Composition GroundTruthTracer::MeanComposition() const {
  Composition c;
  c.sender_s = sender_delay_.mean();
  c.network_s = network_delay_.mean();
  c.receiver_s = receiver_delay_.mean();
  c.total_s = c.sender_s + c.network_s + c.receiver_s;
  return c;
}

}  // namespace element
