// Export helpers: write time series, sample sets, and delay compositions to
// CSV or JSON so external tooling (gnuplot, pandas, ...) can consume the
// experiment outputs the bench binaries print.

#ifndef ELEMENT_SRC_TRACE_EXPORT_H_
#define ELEMENT_SRC_TRACE_EXPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/trace/ground_truth.h"

namespace element {

// (t_seconds, value) rows with a header.
void WriteTimeSeriesCsv(std::ostream& os, const TimeSeries& series,
                        const std::string& value_name);

// (quantile, value) rows for a CDF at the given quantiles.
void WriteCdfCsv(std::ostream& os, const SampleSet& samples,
                 const std::vector<double>& quantiles, const std::string& value_name);

// One JSON object with summary statistics (count/mean/stdev/min/max and the
// standard quantiles).
void WriteSummaryJson(std::ostream& os, const SampleSet& samples, const std::string& name);

// The delay-composition triple as a JSON object.
void WriteCompositionJson(std::ostream& os, const GroundTruthTracer::Composition& composition);

// Convenience file variants; return false on I/O failure.
bool WriteTimeSeriesCsvFile(const std::string& path, const TimeSeries& series,
                            const std::string& value_name);
bool WriteCdfCsvFile(const std::string& path, const SampleSet& samples,
                     const std::vector<double>& quantiles, const std::string& value_name);

}  // namespace element

#endif  // ELEMENT_SRC_TRACE_EXPORT_H_
