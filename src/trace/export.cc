#include "src/trace/export.h"

#include <fstream>
#include <iomanip>

#include "src/common/json.h"

namespace element {

void WriteTimeSeriesCsv(std::ostream& os, const TimeSeries& series,
                        const std::string& value_name) {
  os << "t_seconds," << value_name << "\n";
  os << std::setprecision(9);
  for (const TimeSeries::Point& p : series.points()) {
    os << p.t.ToSeconds() << "," << p.v << "\n";
  }
}

void WriteCdfCsv(std::ostream& os, const SampleSet& samples,
                 const std::vector<double>& quantiles, const std::string& value_name) {
  os << "quantile," << value_name << "\n";
  os << std::setprecision(9);
  for (double q : quantiles) {
    os << q << "," << samples.Quantile(q) << "\n";
  }
}

void WriteSummaryJson(std::ostream& os, const SampleSet& samples, const std::string& name) {
  json::Value obj = json::Value::Object();
  obj.Set("name", json::Value::Str(name));
  obj.Set("count", json::Value::Int(static_cast<int64_t>(samples.count())));
  obj.Set("mean", json::Value::Number(samples.mean()));
  obj.Set("stdev", json::Value::Number(samples.Stdev()));
  obj.Set("min", json::Value::Number(samples.min()));
  obj.Set("max", json::Value::Number(samples.max()));
  obj.Set("p50", json::Value::Number(samples.Quantile(0.5)));
  obj.Set("p90", json::Value::Number(samples.Quantile(0.9)));
  obj.Set("p99", json::Value::Number(samples.Quantile(0.99)));
  os << obj.Dump(/*indent=*/-1);
}

void WriteCompositionJson(std::ostream& os, const GroundTruthTracer::Composition& composition) {
  json::Value obj = json::Value::Object();
  obj.Set("sender_s", json::Value::Number(composition.sender_s));
  obj.Set("network_s", json::Value::Number(composition.network_s));
  obj.Set("receiver_s", json::Value::Number(composition.receiver_s));
  obj.Set("total_s", json::Value::Number(composition.total_s));
  os << obj.Dump(/*indent=*/-1);
}

bool WriteTimeSeriesCsvFile(const std::string& path, const TimeSeries& series,
                            const std::string& value_name) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  WriteTimeSeriesCsv(f, series, value_name);
  return static_cast<bool>(f);
}

bool WriteCdfCsvFile(const std::string& path, const SampleSet& samples,
                     const std::vector<double>& quantiles, const std::string& value_name) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  WriteCdfCsv(f, samples, quantiles, value_name);
  return static_cast<bool>(f);
}

}  // namespace element
