#include "src/trace/export.h"

#include <fstream>
#include <iomanip>

namespace element {

void WriteTimeSeriesCsv(std::ostream& os, const TimeSeries& series,
                        const std::string& value_name) {
  os << "t_seconds," << value_name << "\n";
  os << std::setprecision(9);
  for (const TimeSeries::Point& p : series.points()) {
    os << p.t.ToSeconds() << "," << p.v << "\n";
  }
}

void WriteCdfCsv(std::ostream& os, const SampleSet& samples,
                 const std::vector<double>& quantiles, const std::string& value_name) {
  os << "quantile," << value_name << "\n";
  os << std::setprecision(9);
  for (double q : quantiles) {
    os << q << "," << samples.Quantile(q) << "\n";
  }
}

void WriteSummaryJson(std::ostream& os, const SampleSet& samples, const std::string& name) {
  os << std::setprecision(9);
  os << "{\"name\":\"" << name << "\",\"count\":" << samples.count()
     << ",\"mean\":" << samples.mean() << ",\"stdev\":" << samples.Stdev()
     << ",\"min\":" << samples.min() << ",\"max\":" << samples.max()
     << ",\"p50\":" << samples.Quantile(0.5) << ",\"p90\":" << samples.Quantile(0.9)
     << ",\"p99\":" << samples.Quantile(0.99) << "}";
}

void WriteCompositionJson(std::ostream& os, const GroundTruthTracer::Composition& composition) {
  os << std::setprecision(9);
  os << "{\"sender_s\":" << composition.sender_s << ",\"network_s\":" << composition.network_s
     << ",\"receiver_s\":" << composition.receiver_s << ",\"total_s\":" << composition.total_s
     << "}";
}

bool WriteTimeSeriesCsvFile(const std::string& path, const TimeSeries& series,
                            const std::string& value_name) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  WriteTimeSeriesCsv(f, series, value_name);
  return static_cast<bool>(f);
}

bool WriteCdfCsvFile(const std::string& path, const SampleSet& samples,
                     const std::vector<double>& quantiles, const std::string& value_name) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  WriteCdfCsv(f, samples, quantiles, value_name);
  return static_cast<bool>(f);
}

}  // namespace element
