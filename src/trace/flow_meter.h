// Periodic goodput meter for a flow, used by the benches to report the
// throughput columns/series of Figures 9, 13, 14, 16, 18.

#ifndef ELEMENT_SRC_TRACE_FLOW_METER_H_
#define ELEMENT_SRC_TRACE_FLOW_METER_H_

#include <memory>

#include "src/common/data_rate.h"
#include "src/common/stats.h"
#include "src/evloop/event_loop.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {

class FlowMeter {
 public:
  FlowMeter(EventLoop* loop, const TcpSocket* receiver,
            TimeDelta period = TimeDelta::FromMillis(100));

  void Start() { timer_.Start(); }
  void Stop() { timer_.Stop(); }

  // Per-period goodput samples, Mbps.
  const TimeSeries& throughput_mbps() const { return series_; }
  // Average goodput between `from` and now (app bytes consumed).
  DataRate MeanGoodput(SimTime from = SimTime::Zero()) const;

 private:
  void Sample();

  EventLoop* loop_;
  const TcpSocket* receiver_;
  PeriodicTimer timer_;
  TimeSeries series_;
  uint64_t last_bytes_ = 0;
  SimTime last_sample_;
};

}  // namespace element

#endif  // ELEMENT_SRC_TRACE_FLOW_METER_H_
