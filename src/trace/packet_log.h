// Pcap-style per-packet event log: a PacketSink decorator that timestamps
// every packet crossing a point in the topology into a bounded ring buffer.
// Useful for debugging protocol behaviour and for computing arrival-process
// statistics (inter-arrival times, rate over windows).

#ifndef ELEMENT_SRC_TRACE_PACKET_LOG_H_
#define ELEMENT_SRC_TRACE_PACKET_LOG_H_

#include <deque>
#include <ostream>

#include "src/common/data_rate.h"
#include "src/common/stats.h"
#include "src/evloop/event_loop.h"
#include "src/netsim/packet.h"

namespace element {

class PacketLog : public PacketSink {
 public:
  struct Entry {
    SimTime at;
    uint64_t flow_id;
    uint32_t size_bytes;
    bool ecn_marked;
  };

  // Interposes in front of `next`; keeps at most `capacity` entries (oldest
  // evicted first).
  PacketLog(EventLoop* loop, PacketSink* next, size_t capacity = 1 << 16)
      : loop_(loop), next_(next), capacity_(capacity) {}

  void Deliver(Packet pkt) override {
    if (entries_.size() >= capacity_) {
      entries_.pop_front();
    }
    entries_.push_back({loop_->now(), pkt.flow_id, pkt.size_bytes, pkt.ecn_marked});
    ++total_packets_;
    total_bytes_ += pkt.size_bytes;
    next_->Deliver(std::move(pkt));
  }

  const std::deque<Entry>& entries() const { return entries_; }
  uint64_t total_packets() const { return total_packets_; }
  uint64_t total_bytes() const { return total_bytes_; }

  // Inter-arrival times (seconds) of the retained entries, optionally
  // restricted to one flow (flow_id 0 = all flows).
  SampleSet InterArrivalTimes(uint64_t flow_id = 0) const;

  // Rate over the retained window for one flow (0 = all).
  DataRate RateInWindow(uint64_t flow_id = 0) const;

  // tcpdump-ish text dump: "<t> flow=<id> len=<n> [CE]".
  void Dump(std::ostream& os, size_t max_lines = 100) const;

 private:
  EventLoop* loop_;
  PacketSink* next_;
  size_t capacity_;
  std::deque<Entry> entries_;
  uint64_t total_packets_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_TRACE_PACKET_LOG_H_
