// Ground-truth delay measurement, the simulation analogue of the paper's
// modified `perf` kernel profiler (Section 4.3): tracepoints at the four
// layer boundaries give exact per-byte timestamps, from which we derive
//   sender system delay   = tcp_transmit_skb(first tx) - write()
//   network delay         = tcp_v4_do_rcv(arrival)     - first tx
//   receiver system delay = read()                     - arrival
//   end-to-end delay      = read()                     - write()

#ifndef ELEMENT_SRC_TRACE_GROUND_TRUTH_H_
#define ELEMENT_SRC_TRACE_GROUND_TRUTH_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/tcpsim/stack_observer.h"

namespace element {

class GroundTruthTracer : public StackObserver {
 public:
  struct Config {
    bool keep_time_series = true;
    // Samples are recorded only after this instant (skips handshake/start-up
    // transients when a bench wants steady state).
    SimTime record_from = SimTime::Zero();
  };

  GroundTruthTracer() : GroundTruthTracer(Config{}) {}
  explicit GroundTruthTracer(const Config& config) : config_(config) {}

  // StackObserver — attach the same tracer to the sender socket and the
  // receiver socket of one flow.
  void OnAppWrite(uint64_t begin, uint64_t end, SimTime t) override;
  void OnTcpTransmit(uint64_t begin, uint64_t end, SimTime t, bool retransmit) override;
  void OnTcpRxSegment(uint64_t begin, uint64_t end, SimTime t, bool in_order) override;
  void OnAppRead(uint64_t begin, uint64_t end, SimTime t) override;

  // Delay sample sets (seconds).
  const SampleSet& sender_delay() const { return sender_delay_; }
  const SampleSet& network_delay() const { return network_delay_; }
  const SampleSet& receiver_delay() const { return receiver_delay_; }
  const SampleSet& end_to_end_delay() const { return end_to_end_delay_; }

  // Per-event time series (seconds), for Figure 6-style traces and for
  // interpolation against ELEMENT's periodic estimates.
  const TimeSeries& sender_delay_series() const { return sender_delay_series_; }
  const TimeSeries& receiver_delay_series() const { return receiver_delay_series_; }

  // Byte-time lookups (false if the byte has not reached that layer).
  bool WriteTimeOf(uint64_t byte, SimTime* out) const;
  bool FirstTxTimeOf(uint64_t byte, SimTime* out) const;
  bool ArrivalTimeOf(uint64_t byte, SimTime* out) const;

  struct Composition {
    double sender_s = 0.0;
    double network_s = 0.0;
    double receiver_s = 0.0;
    double total_s = 0.0;
  };
  // Mean composition of the end-to-end delay (Figures 2, 3, 15).
  Composition MeanComposition() const;

 private:
  struct Range {
    uint64_t end;
    SimTime t;
  };
  static bool LookupInRanges(const std::vector<Range>& ranges, uint64_t byte, SimTime* out);

  Config config_;

  std::vector<Range> writes_;    // contiguous, increasing `end`
  std::vector<Range> first_tx_;  // contiguous, increasing `end` (first tx only)
  std::map<uint64_t, Range> last_tx_;   // begin -> (end, t); updated on retransmit
  std::map<uint64_t, Range> arrivals_;  // begin -> (end, t); may arrive out of order

  SampleSet sender_delay_;
  SampleSet network_delay_;
  SampleSet receiver_delay_;
  SampleSet end_to_end_delay_;
  TimeSeries sender_delay_series_;
  TimeSeries receiver_delay_series_;
};

}  // namespace element

#endif  // ELEMENT_SRC_TRACE_GROUND_TRUTH_H_
