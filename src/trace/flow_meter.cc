#include "src/trace/flow_meter.h"

namespace element {

FlowMeter::FlowMeter(EventLoop* loop, const TcpSocket* receiver, TimeDelta period)
    : loop_(loop),
      receiver_(receiver),
      timer_(loop, period, [this] { Sample(); }),
      last_sample_(loop->now()) {}

void FlowMeter::Sample() {
  uint64_t bytes = receiver_->app_bytes_read();
  TimeDelta elapsed = loop_->now() - last_sample_;
  if (elapsed > TimeDelta::Zero()) {
    DataRate rate = RateOver(static_cast<int64_t>(bytes - last_bytes_), elapsed);
    series_.Add(loop_->now(), rate.ToMbps());
  }
  last_bytes_ = bytes;
  last_sample_ = loop_->now();
}

DataRate FlowMeter::MeanGoodput(SimTime from) const {
  TimeDelta span = loop_->now() - from;
  if (span <= TimeDelta::Zero()) {
    return DataRate::Zero();
  }
  return RateOver(static_cast<int64_t>(receiver_->app_bytes_read()), span);
}

}  // namespace element
