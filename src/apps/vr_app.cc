#include "src/apps/vr_app.h"

#include <algorithm>

namespace element {

VrServer::VrServer(EventLoop* loop, TcpSocket* socket, ElementSocket* em,
                   const VrConfig& config)
    : loop_(loop),
      socket_(socket),
      em_(em),
      config_(config),
      frame_timer_(loop, TimeDelta::FromSeconds(1.0 / config.fps), [this] { OnFrameTick(); }),
      // An adaptive (ELEMENT-driven) server starts conservatively and climbs;
      // a blind server streams the configured level from the first frame.
      level_(em != nullptr ? std::min(config.initial_level, 1) : config.initial_level) {}

void VrServer::Start() {
  running_ = true;
  auto pump = [this] { PumpWrites(); };
  if (em_ != nullptr) {
    em_->SetReadyToSendCallback(pump);
  } else {
    socket_->SetWritableCallback(pump);
  }
  socket_->SetReadableCallback([this] { DrainControl(); });
  frame_timer_.Start();
}

void VrServer::Stop() {
  running_ = false;
  frame_timer_.Stop();
}

void VrServer::DrainControl() {
  size_t n;
  while ((n = socket_->Read(4096)) > 0) {
    control_messages_ += n / config_.control_bytes;
  }
}

void VrServer::OnFrameTick() {
  if (!running_ || !socket_->established()) {
    return;
  }
  VrFrameRecord rec;
  rec.id = frames_.size();
  rec.generated = loop_->now();

  if (em_ != nullptr) {
    ++frames_since_upshift_;
    // ELEMENT-driven adaptation: the server checks the sender-side system
    // delay before admitting a frame to the encoder buffer.
    TimeDelta send_delay = TimeDelta::FromSeconds(em_->send_buffer_delay_s());
    auto remember_failed_upshift = [&] {
      // Only the level we just climbed to can be declared "failed": during a
      // downshift cascade the measured delay is stale backlog from the
      // overloaded level, not evidence against the lower levels.
      if (level_ == last_upshift_target_ &&
          frames_since_upshift_ < 2 * static_cast<uint64_t>(config_.upshift_after_good_frames)) {
        failed_level_ = level_;
        failed_level_retry_after_ = loop_->now() + config_.failed_upshift_backoff;
      }
    };
    if (send_delay > config_.sender_delay_drop_threshold ||
        write_queue_.size() >= config_.encoder_buffer_frames) {
      // Stack (or app queue) is badly backed up: discard this frame entirely
      // and downshift.
      rec.dropped = true;
      rec.level = level_;
      remember_failed_upshift();
      level_ = std::max(level_ - 1, 0);
      good_frames_streak_ = 0;
      frames_.push_back(rec);
      return;
    }
    if (send_delay > config_.sender_delay_downshift_threshold) {
      remember_failed_upshift();
      level_ = std::max(level_ - 1, 0);
      good_frames_streak_ = 0;
    } else {
      ++good_frames_streak_;
      int next = level_ + 1;
      bool next_allowed = next < static_cast<int>(config_.resolution_ladder.size()) &&
                          (next < failed_level_ || loop_->now() > failed_level_retry_after_);
      if (good_frames_streak_ >= config_.upshift_after_good_frames && next_allowed) {
        level_ = next;
        last_upshift_target_ = next;
        good_frames_streak_ = 0;
        frames_since_upshift_ = 0;
      }
    }
  }

  if (write_queue_.size() >= config_.encoder_buffer_frames) {
    // Encoder buffer full: this frame is skipped (any server does this; only
    // the ELEMENT-driven one above also *adapts* before it gets here).
    rec.dropped = true;
    rec.level = level_;
    frames_.push_back(rec);
    return;
  }
  rec.level = level_;
  rec.bytes = config_.resolution_ladder[static_cast<size_t>(level_)];
  frames_.push_back(rec);
  write_queue_.emplace_back(rec.id, rec.bytes);
  PumpWrites();
}

size_t VrServer::WriteBytes(size_t n) {
  if (em_ != nullptr) {
    RetInfo info = em_->Send(n);
    return info.size > 0 ? static_cast<size_t>(info.size) : 0;
  }
  return socket_->Write(n);
}

void VrServer::PumpWrites() {
  while (!write_queue_.empty()) {
    auto& [frame_id, remaining] = write_queue_.front();
    // em_send admits at most one segment per call (packet pacing), so keep
    // writing until the frame is fully queued or the socket/gate pushes back.
    while (remaining > 0) {
      size_t w = WriteBytes(remaining);
      if (w == 0) {
        return;  // the writable/ready callback resumes us
      }
      remaining -= w;
    }
    VrFrameRecord& rec = frames_[frame_id];
    rec.fully_queued = true;
    rec.end_seq = socket_->app_bytes_written();
    write_queue_.pop_front();
  }
}

VrClient::VrClient(EventLoop* loop, TcpSocket* socket, VrServer* server, const VrConfig& config)
    : loop_(loop),
      socket_(socket),
      server_(server),
      config_(config),
      control_timer_(loop, config.control_interval, [this] { SendHeadControl(); }) {}

void VrClient::Start() {
  socket_->SetReadableCallback([this] { OnReadable(); });
  control_timer_.Start();
}

void VrClient::Stop() { control_timer_.Stop(); }

void VrClient::SendHeadControl() {
  if (socket_->established()) {
    socket_->Write(config_.control_bytes);  // viewpoint x/y + angular speed
  }
}

void VrClient::OnReadable() {
  while (socket_->Read(64 * 1024) > 0) {
  }
  uint64_t read_pos = socket_->app_bytes_read();
  auto& frames = server_->mutable_frames();
  while (next_frame_index_ < frames.size()) {
    VrFrameRecord& rec = frames[next_frame_index_];
    if (rec.dropped) {
      ++next_frame_index_;
      continue;
    }
    if (!rec.fully_queued || rec.end_seq > read_pos) {
      break;
    }
    rec.completed = true;
    rec.completed_at = loop_->now();
    double delay = (loop_->now() - rec.generated).ToSeconds();
    frame_delays_.Add(delay);
    ++frames_received_;
    if (delay > config_.frame_deadline.ToSeconds()) {
      ++deadline_misses_;
    }
    ++next_frame_index_;
  }
}

double VrClient::DeadlineMissFraction() const {
  if (frames_received_ == 0) {
    return 0.0;
  }
  return static_cast<double>(deadline_misses_) / static_cast<double>(frames_received_);
}

}  // namespace element
