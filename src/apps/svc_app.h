// SVC (Scalable Video Coding) streaming — the paper's §4.4 use case: a sender
// holds layered frames in its application buffer and, *right before* handing
// data to the TCP layer, drops enhancement layers when ELEMENT's measured
// send-buffer delay says the stack is backing up. The base layer is never
// dropped; quality degrades before latency does.

#ifndef ELEMENT_SRC_APPS_SVC_APP_H_
#define ELEMENT_SRC_APPS_SVC_APP_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/stats.h"
#include "src/element/element_socket.h"
#include "src/evloop/event_loop.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {

struct SvcConfig {
  double fps = 30.0;
  size_t base_layer_bytes = 8400;  // ~2 Mbps at 30 fps
  // Enhancement layers, cumulative extras (~+2, +4, +8 Mbps at 30 fps).
  std::vector<size_t> enhancement_bytes = {8400, 16800, 33600};
  // Layer k (1-based) is shed when the send-buffer delay exceeds
  // delay_budget / k: the highest layers go first.
  TimeDelta delay_budget = TimeDelta::FromMillis(120);
};

struct SvcLayerStats {
  uint64_t enqueued = 0;  // admitted to the app buffer
  uint64_t sent = 0;      // actually written to TCP
  uint64_t shed = 0;      // dropped at the TCP boundary
};

class SvcStreamer {
 public:
  SvcStreamer(EventLoop* loop, ElementSocket* em, const SvcConfig& config);

  void Start();
  void Stop();

  // Index 0 = base layer; 1..N = enhancement layers.
  const std::vector<SvcLayerStats>& layer_stats() const { return stats_; }
  // Delay from frame generation to the *base layer* fully written to TCP plus
  // estimated drain — a sender-side latency proxy per frame.
  const SampleSet& base_layer_send_delays() const { return base_delays_; }
  uint64_t frames_generated() const { return frames_; }

 private:
  struct Chunk {
    uint64_t frame;
    int layer;  // 0 = base
    size_t remaining;
    SimTime generated;
  };

  void OnFrameTick();
  void Pump();

  EventLoop* loop_;
  ElementSocket* em_;
  SvcConfig config_;
  PeriodicTimer frame_timer_;

  std::deque<Chunk> queue_;
  std::vector<SvcLayerStats> stats_;
  SampleSet base_delays_;
  uint64_t frames_ = 0;
  bool running_ = false;
};

}  // namespace element

#endif  // ELEMENT_SRC_APPS_SVC_APP_H_
