// 360-degree VR streaming application (Section 5.2): a server encodes frames
// at a resolution ladder and streams them over TCP; the headset client reads
// frames and returns head-movement control messages on the same (full-duplex)
// connection. With ELEMENT attached, the server inspects the sender-side
// system delay / cwnd / RTT before each frame and adapts — dropping frames
// and shifting resolution — so frames meet the VR-sickness deadline
// (100 ms threshold + base latency, 200 ms total in the paper).

#ifndef ELEMENT_SRC_APPS_VR_APP_H_
#define ELEMENT_SRC_APPS_VR_APP_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/stats.h"
#include "src/element/element_socket.h"
#include "src/evloop/event_loop.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {

struct VrConfig {
  double fps = 60.0;
  // Encoded frame sizes per resolution level (bytes). Top level at 60 fps on
  // the defaults is ~58 Mbps — deliberately above typical link capacity.
  std::vector<size_t> resolution_ladder = {30000, 60000, 90000, 120000};
  int initial_level = 3;  // non-adaptive servers stream the top level
  TimeDelta frame_deadline = TimeDelta::FromMillis(200);
  // Encoder output buffer: even a non-adaptive server cannot queue frames
  // without bound; the oldest pending frames are capped at this many.
  size_t encoder_buffer_frames = 3;
  // Adaptation knobs (ELEMENT mode only). Thresholds sit above the latency
  // minimizer's own ~25 ms equilibrium so steady-state pacing is not read as
  // congestion.
  TimeDelta sender_delay_drop_threshold = TimeDelta::FromMillis(60);
  TimeDelta sender_delay_downshift_threshold = TimeDelta::FromMillis(35);
  int upshift_after_good_frames = 45;
  TimeDelta failed_upshift_backoff = TimeDelta::FromSecondsInt(30);
  // Head-control channel.
  TimeDelta control_interval = TimeDelta::FromMillis(50);
  uint32_t control_bytes = 32;
};

struct VrFrameRecord {
  uint64_t id = 0;
  SimTime generated;
  int level = 0;
  size_t bytes = 0;
  bool dropped = false;       // skipped by the adaptation
  uint64_t end_seq = 0;       // stream position after the frame (valid if !dropped)
  bool fully_queued = false;  // all bytes accepted by the socket
  bool completed = false;
  SimTime completed_at;
};

class VrServer {
 public:
  // `em` may be null: then the server streams blindly at `initial_level`
  // through the raw socket (the "TCP Cubic alone" configuration).
  VrServer(EventLoop* loop, TcpSocket* socket, ElementSocket* em, const VrConfig& config);

  void Start();
  void Stop();

  const std::vector<VrFrameRecord>& frames() const { return frames_; }
  std::vector<VrFrameRecord>& mutable_frames() { return frames_; }
  uint64_t control_messages_received() const { return control_messages_; }
  int current_level() const { return level_; }

 private:
  void OnFrameTick();
  void PumpWrites();
  size_t WriteBytes(size_t n);
  void DrainControl();

  EventLoop* loop_;
  TcpSocket* socket_;
  ElementSocket* em_;
  VrConfig config_;
  PeriodicTimer frame_timer_;

  std::vector<VrFrameRecord> frames_;
  std::deque<std::pair<uint64_t, size_t>> write_queue_;  // frame id, bytes left
  int level_;
  int good_frames_streak_ = 0;
  // Upshift memory: a level that caused delay to rise is not retried until
  // the backoff expires (prevents oscillating into overload).
  int failed_level_ = 1 << 30;
  int last_upshift_target_ = -1;
  SimTime failed_level_retry_after_;
  uint64_t frames_since_upshift_ = 1 << 20;
  uint64_t control_messages_ = 0;
  bool running_ = false;
};

class VrClient {
 public:
  VrClient(EventLoop* loop, TcpSocket* socket, VrServer* server, const VrConfig& config);

  void Start();
  void Stop();

  // Delay from frame generation to full reception (seconds), delivered frames.
  const SampleSet& frame_delays() const { return frame_delays_; }
  double DeadlineMissFraction() const;
  uint64_t frames_received() const { return frames_received_; }

 private:
  void OnReadable();
  void SendHeadControl();

  EventLoop* loop_;
  TcpSocket* socket_;
  VrServer* server_;
  VrConfig config_;
  PeriodicTimer control_timer_;

  SampleSet frame_delays_;
  uint64_t deadline_misses_ = 0;
  uint64_t frames_received_ = 0;
  size_t next_frame_index_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_APPS_VR_APP_H_
