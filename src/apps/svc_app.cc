#include "src/apps/svc_app.h"

namespace element {

SvcStreamer::SvcStreamer(EventLoop* loop, ElementSocket* em, const SvcConfig& config)
    : loop_(loop),
      em_(em),
      config_(config),
      frame_timer_(loop, TimeDelta::FromSeconds(1.0 / config.fps), [this] { OnFrameTick(); }) {
  stats_.resize(config_.enhancement_bytes.size() + 1);
}

void SvcStreamer::Start() {
  running_ = true;
  em_->SetReadyToSendCallback([this] { Pump(); });
  frame_timer_.Start();
}

void SvcStreamer::Stop() {
  running_ = false;
  frame_timer_.Stop();
}

void SvcStreamer::OnFrameTick() {
  if (!running_ || !em_->socket()->established()) {
    return;
  }
  ++frames_;
  // All layers enter the application buffer; the shedding decision happens at
  // the TCP boundary, with fresh delay information (§4.4).
  Chunk base{frames_, 0, config_.base_layer_bytes, loop_->now()};
  queue_.push_back(base);
  ++stats_[0].enqueued;
  for (size_t k = 0; k < config_.enhancement_bytes.size(); ++k) {
    Chunk enh{frames_, static_cast<int>(k + 1), config_.enhancement_bytes[k], loop_->now()};
    queue_.push_back(enh);
    ++stats_[k + 1].enqueued;
  }
  Pump();
}

void SvcStreamer::Pump() {
  while (!queue_.empty()) {
    Chunk& chunk = queue_.front();
    if (chunk.layer > 0) {
      // Enhancement layers are shed when the measured send-buffer delay
      // exceeds their (tighter, for higher layers) share of the budget, or
      // when they have already waited out most of the budget in the app queue.
      TimeDelta budget = config_.delay_budget * (1.0 / chunk.layer);
      TimeDelta send_delay = TimeDelta::FromSeconds(em_->send_buffer_delay_s());
      TimeDelta waited = loop_->now() - chunk.generated;
      if (send_delay > budget || waited > config_.delay_budget) {
        ++stats_[static_cast<size_t>(chunk.layer)].shed;
        queue_.pop_front();
        continue;
      }
    }
    RetInfo info = em_->Send(chunk.remaining);
    if (info.size <= 0) {
      return;  // gated or buffer full; the ready callback resumes us
    }
    chunk.remaining -= static_cast<size_t>(info.size);
    if (chunk.remaining == 0) {
      ++stats_[static_cast<size_t>(chunk.layer)].sent;
      if (chunk.layer == 0) {
        // Sender-side latency proxy: app-queue wait + current buffer delay.
        base_delays_.Add((loop_->now() - chunk.generated).ToSeconds() +
                         em_->send_buffer_delay_s());
      }
      queue_.pop_front();
    }
  }
}

}  // namespace element
