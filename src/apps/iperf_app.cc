#include "src/apps/iperf_app.h"

namespace element {

IperfApp::IperfApp(EventLoop* loop, ByteSink* sink, size_t chunk_bytes)
    : loop_(loop), sink_(sink), chunk_(chunk_bytes) {}

void IperfApp::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  sink_->SetWritableCallback([this] { Pump(); });
  TcpSocket* socket = sink_->socket();
  if (socket->established()) {
    Pump();
  } else {
    socket->SetEstablishedCallback([this] { Pump(); });
  }
}

void IperfApp::Pump() {
  if (!sink_->socket()->established()) {
    return;
  }
  // Keep writing until the sink pushes back (full buffer or pacing gate);
  // the writable callback resumes the pump.
  while (true) {
    size_t accepted = sink_->Write(chunk_);
    bytes_offered_ += accepted;
    if (accepted < chunk_) {
      break;
    }
  }
}

SinkApp::SinkApp(TcpSocket* socket) : socket_(socket) {}

SinkApp::SinkApp(ElementSocket* em) : socket_(em->socket()), em_(em) {}

void SinkApp::Start() {
  if (em_ != nullptr) {
    em_->SetReadableCallback([this] { Drain(); });
  } else {
    socket_->SetReadableCallback([this] { Drain(); });
  }
  Drain();
}

void SinkApp::Drain() {
  constexpr size_t kReadChunk = 64 * 1024;
  while (socket_->ReadableBytes() > 0) {
    if (em_ != nullptr) {
      em_->Read(kReadChunk);
    } else {
      socket_->Read(kReadChunk);
    }
  }
}

uint64_t SinkApp::bytes_read() const { return socket_->app_bytes_read(); }

}  // namespace element
