// Iperf-style legacy applications: a saturating bulk sender that writes
// through a ByteSink (so it is oblivious to whether ELEMENT is interposed, as
// in Section 5.1), and a greedy reader sink.

#ifndef ELEMENT_SRC_APPS_IPERF_APP_H_
#define ELEMENT_SRC_APPS_IPERF_APP_H_

#include <cstddef>

#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"
#include "src/evloop/event_loop.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {

// Writes as fast as the sink accepts — "continuously sends data to measure
// TCP performance, which is common in legacy TCP applications".
class IperfApp {
 public:
  IperfApp(EventLoop* loop, ByteSink* sink, size_t chunk_bytes = 128 * 1024);

  void Start();
  uint64_t bytes_offered() const { return bytes_offered_; }

 private:
  void Pump();

  EventLoop* loop_;
  ByteSink* sink_;
  size_t chunk_;
  uint64_t bytes_offered_ = 0;
  bool started_ = false;
};

// Reads everything as soon as the socket wakes the app. Optionally reads via
// an ElementSocket so the receiver-side estimator sees the read stream.
class SinkApp {
 public:
  explicit SinkApp(TcpSocket* socket);
  explicit SinkApp(ElementSocket* em);

  void Start();
  uint64_t bytes_read() const;

 private:
  void Drain();

  TcpSocket* socket_;
  ElementSocket* em_ = nullptr;
};

}  // namespace element

#endif  // ELEMENT_SRC_APPS_IPERF_APP_H_
