// Per-flow flight recorder: a bounded ring of TraceRecords carved from the
// loop's FreeListArena in 192-byte slabs (4 records per block). When full the
// ring overwrites the oldest record, so after a long run it holds the most
// recent window of a flow's history — the part post-mortem diagnosis wants —
// at fixed memory cost. Blocks are allocated lazily on first touch and
// returned to the arena on destruction, so an unused ring costs one pointer
// vector.

#ifndef ELEMENT_SRC_TELEMETRY_TRACE_RING_H_
#define ELEMENT_SRC_TELEMETRY_TRACE_RING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/telemetry/record.h"

namespace element {
namespace telemetry {

class TraceRing {
 public:
  static constexpr size_t kRecordsPerBlock = FreeListArena::kBlockBytes / sizeof(TraceRecord);
  static_assert(kRecordsPerBlock == 4, "arena block should hold 4 records exactly");

  // Capacity is rounded up to a whole number of arena blocks.
  TraceRing(FreeListArena* arena, size_t capacity_records)
      : arena_(arena),
        capacity_((capacity_records + kRecordsPerBlock - 1) / kRecordsPerBlock *
                  kRecordsPerBlock) {
    ELEMENT_CHECK(capacity_records > 0) << "trace ring needs capacity";
    blocks_.resize(capacity_ / kRecordsPerBlock, nullptr);
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  ~TraceRing() {
    for (TraceRecord* block : blocks_) {
      if (block != nullptr) {
        arena_->Free(block, FreeListArena::kBlockBytes);
      }
    }
  }

  void Push(const TraceRecord& record) {
    const size_t slot = static_cast<size_t>(total_ % capacity_);
    TraceRecord*& block = blocks_[slot / kRecordsPerBlock];
    if (block == nullptr) {
      block = static_cast<TraceRecord*>(arena_->Allocate(FreeListArena::kBlockBytes));
    }
    block[slot % kRecordsPerBlock] = record;
    ++total_;
  }

  // Records currently held (== min(total_pushed, capacity)).
  size_t size() const {
    return total_ < capacity_ ? static_cast<size_t>(total_) : capacity_;
  }
  size_t capacity() const { return capacity_; }
  uint64_t total_pushed() const { return total_; }
  uint64_t overwritten() const { return total_ < capacity_ ? 0 : total_ - capacity_; }

  // Copies the held records oldest-first.
  std::vector<TraceRecord> Snapshot() const {
    std::vector<TraceRecord> out;
    const size_t n = size();
    out.reserve(n);
    const uint64_t first = total_ - n;
    for (uint64_t i = first; i < total_; ++i) {
      const size_t slot = static_cast<size_t>(i % capacity_);
      out.push_back(blocks_[slot / kRecordsPerBlock][slot % kRecordsPerBlock]);
    }
    return out;
  }

 private:
  FreeListArena* arena_;
  size_t capacity_;
  std::vector<TraceRecord*> blocks_;
  uint64_t total_ = 0;
};

}  // namespace telemetry
}  // namespace element

#endif  // ELEMENT_SRC_TELEMETRY_TRACE_RING_H_
