// The telemetry spine: one per-run hub that every producer publishes through.
//
// Topology
//   TelemetrySpine (one per run/Testbed/Network)
//     ├── MetricRegistry      named counters/gauges/distributions
//     ├── per-flow TraceRing  flight recorders (arena-backed, optional)
//     └── spine RecordSinks   run-wide consumers (see every record)
//   FlowTelemetry (by value inside each producer: socket, estimator)
//     └── up to kMaxSinks per-flow RecordSinks (e.g. a GroundTruthTracer)
//
// Overhead model (the ≤2% disabled-sink budget in bench/perf_floor.json):
// FlowTelemetry::Emit is the only call on hot paths. When nothing is
// attached it is two predictable compares (local sink count, spine recording
// flag) and no loads beyond the producer's own cache line — cheaper than the
// virtual observer dispatch it replaces. All record construction happens
// *after* the guard, so a disabled spine never materializes a TraceRecord.
// Counters follow the same rule: producers bump registry handles only inside
// recording paths or at end-of-run publication, never per-event when idle.
//
// Determinism rules (docs/telemetry.md):
//   - attach sinks and create rings before the loop runs; mid-run attachment
//     flips recording() and changes which branches execute, which is fine for
//     correctness but changes perf, not results;
//   - record emission order is simulation event order, so ring contents and
//     sink callback sequences are seed-stable;
//   - the registry snapshot is merged in the fleet's fixed fold order.

#ifndef ELEMENT_SRC_TELEMETRY_SPINE_H_
#define ELEMENT_SRC_TELEMETRY_SPINE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/telemetry/metric_registry.h"
#include "src/telemetry/record.h"
#include "src/telemetry/trace_ring.h"

namespace element {
namespace telemetry {

class TelemetrySpine {
 public:
  TelemetrySpine() = default;
  // `arena` backs per-flow trace rings; pass the loop's arena so ring slabs
  // recycle through the same freelist as packet payloads. Null is fine when
  // no rings will be created.
  explicit TelemetrySpine(FreeListArena* arena) : arena_(arena) {}

  TelemetrySpine(const TelemetrySpine&) = delete;
  TelemetrySpine& operator=(const TelemetrySpine&) = delete;

  MetricRegistry* registry() { return &registry_; }
  const MetricRegistry& registry() const { return registry_; }

  // True when any consumer (ring, spine sink, or per-flow sink) is attached.
  // Producers gate *all* telemetry work on this, so a run with no consumers
  // pays only the check itself.
  bool recording() const { return consumers_ != 0; }

  // Run-wide sinks: see every record emitted by every bound producer.
  void AttachSink(RecordSink* sink) {
    ELEMENT_CHECK(sink != nullptr);
    sinks_.push_back(sink);
    ++consumers_;
  }
  void DetachSink(RecordSink* sink) {
    for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
      if (*it == sink) {
        sinks_.erase(it);
        --consumers_;
        return;
      }
    }
    ELEMENT_CHECK(false) << "detaching sink that was never attached";
  }

  // Creates (or returns) the flight recorder for `flow_id`. Requires an
  // arena. Capacity is per-flow; see TraceRing for rounding.
  TraceRing* EnsureRing(uint64_t flow_id, size_t capacity_records) {
    ELEMENT_CHECK(arena_ != nullptr) << "spine has no arena for trace rings";
    auto it = rings_.find(flow_id);
    if (it == rings_.end()) {
      it = rings_.emplace(flow_id, std::make_unique<TraceRing>(arena_, capacity_records)).first;
      ++consumers_;
    }
    return it->second.get();
  }
  TraceRing* ring(uint64_t flow_id) {
    auto it = rings_.find(flow_id);
    return it == rings_.end() ? nullptr : it->second.get();
  }

  // Routes a record to the flow's ring (if any) and all spine sinks. Callers
  // without a FlowTelemetry (qdiscs, routers — producers shared by many
  // flows) call this directly, already gated on recording().
  void Dispatch(const TraceRecord& record) {
    if constexpr (kAuditsEnabled) {
      ELEMENT_AUDIT(record.kind != RecordKind::kNone) << "dispatching an empty record";
    }
    if (!rings_.empty()) {
      auto it = rings_.find(record.flow_id);
      if (it != rings_.end()) {
        it->second->Push(record);
      }
    }
    for (RecordSink* sink : sinks_) {
      sink->OnRecord(record);
    }
    ++dispatched_;
  }

  uint64_t dispatched() const { return dispatched_; }

  // FlowTelemetry attach/detach bookkeeping (flips recording()).
  void NoteFlowSinkAttached() { ++consumers_; }
  void NoteFlowSinkDetached() {
    ELEMENT_CHECK(consumers_ > 0);
    --consumers_;
  }

 private:
  FreeListArena* arena_ = nullptr;
  MetricRegistry registry_;
  std::vector<RecordSink*> sinks_;
  std::map<uint64_t, std::unique_ptr<TraceRing>> rings_;
  size_t consumers_ = 0;
  uint64_t dispatched_ = 0;
};

// The producer-side handle, held by value so emitting costs no indirection
// when idle. Producers call Emit(); the guard compiles to two compares on the
// disabled path.
class FlowTelemetry {
 public:
  static constexpr size_t kMaxSinks = 4;

  FlowTelemetry() = default;

  void Bind(TelemetrySpine* spine, uint64_t flow_id) {
    spine_ = spine;
    flow_id_ = flow_id;
  }
  bool bound() const { return spine_ != nullptr; }
  TelemetrySpine* spine() const { return spine_; }
  uint64_t flow_id() const { return flow_id_; }

  // Per-flow sinks see only this producer's records (both sockets of a flow
  // bind separate FlowTelemetry instances; attach the same sink to both to
  // observe the whole flow, which is what GroundTruthTracer does).
  void AttachSink(RecordSink* sink) {
    ELEMENT_CHECK(sink != nullptr);
    ELEMENT_CHECK(sink_count_ < kMaxSinks) << "too many per-flow sinks";
    sinks_[sink_count_++] = sink;
    if (spine_ != nullptr) {
      spine_->NoteFlowSinkAttached();
    }
  }
  void DetachSink(RecordSink* sink) {
    for (size_t i = 0; i < sink_count_; ++i) {
      if (sinks_[i] == sink) {
        for (size_t j = i + 1; j < sink_count_; ++j) {
          sinks_[j - 1] = sinks_[j];
        }
        --sink_count_;
        if (spine_ != nullptr) {
          spine_->NoteFlowSinkDetached();
        }
        return;
      }
    }
    ELEMENT_CHECK(false) << "detaching sink that was never attached";
  }
  size_t sink_count() const { return sink_count_; }

  // The hot-path guard: emit-side work happens only when someone listens.
  bool recording() const {
    return sink_count_ != 0 || (spine_ != nullptr && spine_->recording());
  }

  void Emit(const TraceRecord& record) {
    if (!recording()) {
      return;
    }
    EmitAlways(record);
  }

  // For call sites that already checked recording() and built the record.
  void EmitAlways(const TraceRecord& record) {
    if constexpr (kAuditsEnabled) {
      ELEMENT_AUDIT(record.t >= last_t_) << "telemetry records emitted out of order";
      last_t_ = record.t;
    }
    for (size_t i = 0; i < sink_count_; ++i) {
      sinks_[i]->OnRecord(record);
    }
    if (spine_ != nullptr && spine_->recording()) {
      spine_->Dispatch(record);
    }
  }

 private:
  TelemetrySpine* spine_ = nullptr;
  uint64_t flow_id_ = 0;
  RecordSink* sinks_[kMaxSinks] = {nullptr, nullptr, nullptr, nullptr};
  size_t sink_count_ = 0;
  SimTime last_t_ = SimTime::Zero();  // audit-only monotonicity check
};

}  // namespace telemetry
}  // namespace element

#endif  // ELEMENT_SRC_TELEMETRY_SPINE_H_
