// Bounded-memory streaming quantiles (Greenwald-Khanna, SIGMOD '01).
//
// SampleSet keeps every sample, which is exact but unbounded: a fleet sweep at
// ROADMAP scale produces millions of delay samples per run. QuantileSketch
// keeps a summary of O((1/eps) * log(eps * n)) tuples and answers any
// quantile query to within eps * n ranks. The registry uses it for all
// always-on distributions; golden-pinned figures keep exact SampleSet.
//
// Each tuple (v, g, delta) covers a band of ranks: g is the gap in minimum
// rank to the previous tuple, delta the extra uncertainty. The invariant
// r_min(i) = sum(g_0..g_i) <= rank(v_i) <= r_min(i) + delta_i holds at all
// times, so the worst-case query error is max_i (g_i + delta_i) / 2 ranks —
// exposed as RankErrorBound() so tests validate the *actual* guarantee of a
// summary rather than a loose constant.
//
// Merge concatenates the tuple lists (inflating delta by the neighbouring
// uncertainty of the other summary) and re-compresses; the result honors the
// same bound for the union stream regardless of merge order, which is what
// the fleet's fixed-fold-order aggregate contract needs.

#ifndef ELEMENT_SRC_TELEMETRY_QUANTILE_SKETCH_H_
#define ELEMENT_SRC_TELEMETRY_QUANTILE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace element {
namespace telemetry {

class QuantileSketch {
 public:
  static constexpr double kDefaultEpsilon = 0.005;  // half-percentile ranks

  QuantileSketch() : QuantileSketch(kDefaultEpsilon) {}
  explicit QuantileSketch(double epsilon);

  void Add(double x);
  // Folds `other` into this sketch. Epsilons must match (ELEMENT_CHECK); the
  // merged summary answers queries over the union stream within the bound.
  void Merge(const QuantileSketch& other);

  uint64_t count() const { return count_ + buffer_.size(); }
  bool empty() const { return count() == 0; }
  double epsilon() const { return epsilon_; }
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  double mean() const;

  // q in [0, 1]. Returns a value whose rank in the observed stream is within
  // RankErrorBound() of q * count(). Empty-query contract matches
  // SampleSet::Quantile (DCHECK + 0.0 in release).
  double Quantile(double q) const;

  // Worst-case query error of the *current* summary, in ranks:
  // max_i (g_i + delta_i) / 2. Always <= epsilon * count() once compressed.
  double RankErrorBound() const;

  // Summary footprint, for space assertions in tests.
  size_t TupleCount() const;

 private:
  struct Tuple {
    double v;
    uint64_t g;
    uint64_t delta;
  };

  void Flush() const;           // drains buffer_ into tuples_
  void Compress() const;        // GK compress pass
  uint64_t DeltaCap() const;    // floor(2 * eps * n)

  double epsilon_;
  mutable std::vector<Tuple> tuples_;  // sorted by v
  mutable std::vector<double> buffer_;
  mutable uint64_t count_ = 0;  // samples represented by tuples_
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace telemetry
}  // namespace element

#endif  // ELEMENT_SRC_TELEMETRY_QUANTILE_SKETCH_H_
