#include "src/telemetry/metric_registry.h"

#include <utility>

namespace element {
namespace telemetry {

uint64_t MetricRegistry::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const Histogram* MetricRegistry::FindHist(const std::string& name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

const RunningStats* MetricRegistry::FindStats(const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

const QuantileSketch* MetricRegistry::FindSketch(const std::string& name) const {
  auto it = sketches_.find(name);
  return it == sketches_.end() ? nullptr : &it->second;
}

const Histogram& MetricRegistry::HistOrEmpty(const std::string& name) const {
  static const Histogram kEmpty;
  const Histogram* h = FindHist(name);
  return h != nullptr ? *h : kEmpty;
}

const RunningStats& MetricRegistry::StatsOrEmpty(const std::string& name) const {
  static const RunningStats kEmpty;
  const RunningStats* s = FindStats(name);
  return s != nullptr ? *s : kEmpty;
}

void MetricRegistry::Merge(const MetricRegistry& other) {
  for (const auto& [name, v] : other.counters_) {
    counters_[name] += v;
  }
  for (const auto& [name, v] : other.gauges_) {
    gauges_[name] = v;
  }
  for (const auto& [name, h] : other.hists_) {
    hists_[name].Merge(h);
  }
  for (const auto& [name, s] : other.stats_) {
    stats_[name].Merge(s);
  }
  for (const auto& [name, s] : other.sketches_) {
    auto it = sketches_.find(name);
    if (it == sketches_.end()) {
      sketches_.emplace(name, s);
    } else {
      it->second.Merge(s);
    }
  }
}

json::Value HistogramJson(const Histogram& h) {
  json::Value obj = json::Value::Object();
  obj.Set("count", json::Value::Int(static_cast<int64_t>(h.count())));
  if (h.count() == 0) {
    return obj;
  }
  obj.Set("mean", json::Value::Number(h.mean()));
  obj.Set("min", json::Value::Number(h.min()));
  obj.Set("max", json::Value::Number(h.max()));
  obj.Set("p50", json::Value::Number(h.Quantile(0.50)));
  obj.Set("p90", json::Value::Number(h.Quantile(0.90)));
  obj.Set("p95", json::Value::Number(h.Quantile(0.95)));
  obj.Set("p99", json::Value::Number(h.Quantile(0.99)));
  return obj;
}

json::Value StatsJson(const RunningStats& s) {
  json::Value obj = json::Value::Object();
  obj.Set("count", json::Value::Int(static_cast<int64_t>(s.count())));
  if (s.count() == 0) {
    return obj;
  }
  obj.Set("mean", json::Value::Number(s.mean()));
  obj.Set("stdev", json::Value::Number(s.Stdev()));
  obj.Set("min", json::Value::Number(s.min()));
  obj.Set("max", json::Value::Number(s.max()));
  return obj;
}

json::Value SketchJson(const QuantileSketch& s) {
  json::Value obj = json::Value::Object();
  obj.Set("count", json::Value::Int(static_cast<int64_t>(s.count())));
  if (s.count() == 0) {
    return obj;
  }
  obj.Set("mean", json::Value::Number(s.mean()));
  obj.Set("min", json::Value::Number(s.min()));
  obj.Set("max", json::Value::Number(s.max()));
  obj.Set("p50", json::Value::Number(s.Quantile(0.50)));
  obj.Set("p90", json::Value::Number(s.Quantile(0.90)));
  obj.Set("p95", json::Value::Number(s.Quantile(0.95)));
  obj.Set("p99", json::Value::Number(s.Quantile(0.99)));
  return obj;
}

json::Value MetricRegistry::ToJson() const {
  json::Value doc = json::Value::Object();
  if (!counters_.empty()) {
    json::Value obj = json::Value::Object();
    for (const auto& [name, v] : counters_) {
      obj.Set(name, json::Value::Int(static_cast<int64_t>(v)));
    }
    doc.Set("counters", std::move(obj));
  }
  if (!gauges_.empty()) {
    json::Value obj = json::Value::Object();
    for (const auto& [name, v] : gauges_) {
      obj.Set(name, json::Value::Number(v));
    }
    doc.Set("gauges", std::move(obj));
  }
  if (!hists_.empty()) {
    json::Value obj = json::Value::Object();
    for (const auto& [name, h] : hists_) {
      obj.Set(name, HistogramJson(h));
    }
    doc.Set("hists", std::move(obj));
  }
  if (!stats_.empty()) {
    json::Value obj = json::Value::Object();
    for (const auto& [name, s] : stats_) {
      obj.Set(name, StatsJson(s));
    }
    doc.Set("stats", std::move(obj));
  }
  if (!sketches_.empty()) {
    json::Value obj = json::Value::Object();
    for (const auto& [name, s] : sketches_) {
      obj.Set(name, SketchJson(s));
    }
    doc.Set("sketches", std::move(obj));
  }
  return doc;
}

}  // namespace telemetry
}  // namespace element
