// Named, typed metrics with the fleet's merge contract.
//
// Every layer that used to keep its own ad-hoc accounting (per-experiment
// sample vectors in the runner, per-qdisc stat structs, estimator SampleSets)
// publishes into one MetricRegistry instead. The registry is a plain value
// type: copyable, and Merge() folds another registry in with the same
// associativity rules the fleet's per-slot aggregation relies on
// (counters add, distributions merge, gauges take the incoming value under
// the runner's fixed fold order).
//
// Five metric kinds:
//   counter — monotonic uint64 (events, bytes, drops)
//   gauge   — last-written double (configuration echoes, final cwnd)
//   hist    — log-scale Histogram (golden-pinned delay decompositions)
//   stats   — RunningStats (mean/stdev summaries, e.g. goodput)
//   sketch  — QuantileSketch (bounded-memory distributions on long runs)
//
// Handles returned by the accessors are stable for the registry's lifetime
// (std::map nodes never move), so producers resolve a name once at bind time
// and bump a raw pointer on the hot path. Names sort lexicographically in
// ToJson(), which keeps exports deterministic. Dots namespace the producer,
// e.g. "qdisc.0.drops", "flow.e2e_delay_s".

#ifndef ELEMENT_SRC_TELEMETRY_METRIC_REGISTRY_H_
#define ELEMENT_SRC_TELEMETRY_METRIC_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/json.h"
#include "src/common/stats.h"
#include "src/telemetry/quantile_sketch.h"

namespace element {
namespace telemetry {

class MetricRegistry {
 public:
  // Accessors create the metric on first use and return a stable handle.
  uint64_t* Counter(const std::string& name) { return &counters_[name]; }
  double* Gauge(const std::string& name) { return &gauges_[name]; }
  Histogram* Hist(const std::string& name) { return &hists_[name]; }
  RunningStats* Stats(const std::string& name) { return &stats_[name]; }
  QuantileSketch* Sketch(const std::string& name) { return &sketches_[name]; }

  // Read-only lookups; null/zero when absent (for tests and export code that
  // must not create metrics as a side effect).
  uint64_t CounterValue(const std::string& name) const;
  const Histogram* FindHist(const std::string& name) const;
  const RunningStats* FindStats(const std::string& name) const;
  const QuantileSketch* FindSketch(const std::string& name) const;

  // Like Find*, but absent metrics read as empty distributions — what
  // exporters want so a scenario that produced no samples still emits
  // {"count": 0} exactly as the pre-registry code did.
  const Histogram& HistOrEmpty(const std::string& name) const;
  const RunningStats& StatsOrEmpty(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && hists_.empty() && stats_.empty() &&
           sketches_.empty();
  }

  // Folds `other` in: counters add, hist/stats/sketch Merge() (geometry and
  // epsilon must match per their own contracts), gauges take other's value.
  // Associative and — except for gauges — commutative; the fleet calls it in
  // a fixed fold order so gauge overwrite is deterministic too.
  void Merge(const MetricRegistry& other);

  // Deterministic snapshot, one object per kind that has entries:
  // {"counters": {...}, "gauges": {...}, "hists": {name: {count, mean, ...}},
  //  "stats": {...}, "sketches": {...}}. Distribution sub-objects carry the
  //  same key set as the fleet's aggregate emitters.
  json::Value ToJson() const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> hists_;
  std::map<std::string, RunningStats> stats_;
  std::map<std::string, QuantileSketch> sketches_;
};

// Shared distribution serializers: the pinned key sets every exporter uses
// (fleet aggregate, registry snapshots, trace summaries). Emitting through
// one function is what keeps goldens byte-identical across refactors.
json::Value HistogramJson(const Histogram& h);
json::Value StatsJson(const RunningStats& s);
json::Value SketchJson(const QuantileSketch& s);

}  // namespace telemetry
}  // namespace element

#endif  // ELEMENT_SRC_TELEMETRY_METRIC_REGISTRY_H_
