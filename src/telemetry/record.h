// The unit of the telemetry spine: one fixed-size, trivially-copyable event
// record. Every instrumented layer (tcpsim stack probes, netsim qdiscs, topo
// routers, element estimators) emits the same 48-byte TraceRecord into the
// per-run spine, which fans it to ring buffers and registered sinks. One
// record type — instead of one callback interface per layer — is what lets a
// single ring buffer, a single export path, and a single overhead model cover
// the whole simulator (the Dapper/NetFlow consolidation the paper's
// measurement layer mirrors).

#ifndef ELEMENT_SRC_TELEMETRY_RECORD_H_
#define ELEMENT_SRC_TELEMETRY_RECORD_H_

#include <cstdint>
#include <type_traits>

#include "src/common/time.h"

namespace element {
namespace telemetry {

enum class RecordKind : uint8_t {
  kNone = 0,
  // TCP stack layer boundaries (the paper's four perf tracepoints).
  kAppWrite,      // bytes accepted into the send buffer by a socket write
  kTcpTransmit,   // bytes handed to the lower layers (tcp_transmit_skb)
  kTcpRxSegment,  // data segment arrived at the TCP layer (tcp_v4_do_rcv)
  kAppRead,       // bytes consumed from the receive buffer by a socket read
  kSegmentAcked,  // cumulative ACK advanced snd_una over this range
  kCcStateChange, // congestion-control episode transition (recovery/RTO)
  // Qdisc events at the bottleneck.
  kQdiscEnqueue,
  kQdiscDrop,  // pre-queue or from-queue (see flags)
  kQdiscMark,  // ECN CE mark instead of drop
  // A delay estimate or ground-truth sample with the paper's 3-way
  // decomposition (any component may be NaN when not applicable).
  kDelaySample,
};

// Flag bits (meaning depends on kind).
inline constexpr uint8_t kFlagRetransmit = 1u << 0;  // kTcpTransmit
inline constexpr uint8_t kFlagOutOfOrder = 1u << 1;  // kTcpRxSegment
inline constexpr uint8_t kFlagFromQueue = 1u << 2;   // kQdiscDrop: admitted pkt
inline constexpr uint8_t kFlagEstimate = 1u << 3;    // kDelaySample: ELEMENT
                                                     // estimate (vs ground truth)

// kCcStateChange episode codes, carried in TraceRecord::size.
enum class CcEpisode : uint32_t {
  kOpen = 0,         // left recovery (cumulative ACK passed recovery_end)
  kRecovery = 1,     // entered fast recovery (scoreboard marked new losses)
  kRtoRecovery = 2,  // retransmission timeout fired
};

struct TraceRecord {
  SimTime t;         // when the event happened (loop time)
  uint64_t flow_id;  // 0 = not flow-specific
  RecordKind kind = RecordKind::kNone;
  uint8_t flags = 0;
  uint16_t source = 0;  // producer tag (e.g. qdisc/hop index), 0 = unset
  uint32_t size = 0;    // packet/segment bytes, or CC state code
  union {
    struct {
      uint64_t begin;  // byte ranges are half-open: [begin, end)
      uint64_t end;
      uint64_t aux;  // kind-specific (e.g. snd_una after an ACK)
    } range;
    struct {
      double sender_s;
      double network_s;
      double receiver_s;
    } delay;
  } u = {{0, 0, 0}};

  static TraceRecord Range(RecordKind kind, uint64_t flow_id, SimTime t, uint64_t begin,
                           uint64_t end, uint8_t flags = 0) {
    TraceRecord r;
    r.t = t;
    r.flow_id = flow_id;
    r.kind = kind;
    r.flags = flags;
    r.u.range = {begin, end, 0};
    return r;
  }

  static TraceRecord Delay(uint64_t flow_id, SimTime t, double sender_s, double network_s,
                           double receiver_s, uint8_t flags = 0) {
    TraceRecord r;
    r.t = t;
    r.flow_id = flow_id;
    r.kind = RecordKind::kDelaySample;
    r.flags = flags;
    r.u.delay = {sender_s, network_s, receiver_s};
    return r;
  }
};

// The ring buffer packs records into fixed-size arena blocks; keep the record
// layout boring and stable.
static_assert(sizeof(TraceRecord) == 48, "TraceRecord must stay 48 bytes");
static_assert(std::is_trivially_copyable<TraceRecord>::value,
              "TraceRecord must be memcpy-safe");

// Consumes records from the spine. GroundTruthTracer and the StackObserver
// adapter implement this; attach via FlowTelemetry::AttachSink (per-flow) or
// TelemetrySpine::AttachSink (every record of the run).
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void OnRecord(const TraceRecord& record) = 0;
};

}  // namespace telemetry
}  // namespace element

#endif  // ELEMENT_SRC_TELEMETRY_RECORD_H_
