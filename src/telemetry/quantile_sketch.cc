#include "src/telemetry/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace element {
namespace telemetry {

namespace {

// Insert batching: sorting a small buffer and walking the summary once per
// batch amortizes the per-sample cost; 64 keeps the transient exactness of
// small streams (every stream under 64 samples is answered exactly).
constexpr size_t kBufferCapacity = 64;

}  // namespace

QuantileSketch::QuantileSketch(double epsilon) : epsilon_(epsilon) {
  ELEMENT_CHECK(epsilon > 0.0 && epsilon < 0.5) << "epsilon out of range: " << epsilon;
  buffer_.reserve(kBufferCapacity);
}

void QuantileSketch::Add(double x) {
  if (count() == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  buffer_.push_back(x);
  if (buffer_.size() >= kBufferCapacity) {
    Flush();
    Compress();
  }
}

uint64_t QuantileSketch::DeltaCap() const {
  return static_cast<uint64_t>(2.0 * epsilon_ * static_cast<double>(count_));
}

void QuantileSketch::Flush() const {
  if (buffer_.empty()) {
    return;
  }
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  size_t ti = 0;
  for (double v : buffer_) {
    while (ti < tuples_.size() && tuples_[ti].v <= v) {
      merged.push_back(tuples_[ti++]);
    }
    ++count_;
    uint64_t delta = 0;
    // Interior inserts carry the uncertainty of their successor band; the
    // extremes stay exact so min/max quantile queries never drift.
    if (!merged.empty() && ti < tuples_.size()) {
      const Tuple& succ = tuples_[ti];
      delta = std::min(succ.g + succ.delta - 1, DeltaCap());
    }
    merged.push_back(Tuple{v, 1, delta});
  }
  while (ti < tuples_.size()) {
    merged.push_back(tuples_[ti++]);
  }
  tuples_ = std::move(merged);
  buffer_.clear();
}

void QuantileSketch::Compress() const {
  if (tuples_.size() < 3) {
    return;
  }
  const uint64_t cap = DeltaCap();
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  // Walk back-to-front, folding tuple i into its successor when the combined
  // band still fits the error budget. First and last tuples are never folded.
  Tuple succ = tuples_.back();
  for (size_t i = tuples_.size() - 1; i-- > 1;) {
    const Tuple& cur = tuples_[i];
    if (cur.g + succ.g + succ.delta <= cap) {
      succ.g += cur.g;
    } else {
      kept.push_back(succ);
      succ = cur;
    }
  }
  kept.push_back(succ);
  kept.push_back(tuples_.front());
  std::reverse(kept.begin(), kept.end());
  tuples_ = std::move(kept);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  ELEMENT_CHECK(epsilon_ == other.epsilon())
      << "merging sketches with different epsilons: " << epsilon_ << " vs " << other.epsilon();
  if (other.count() == 0) {
    return;
  }
  if (count() == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  Flush();
  other.Flush();
  other.Compress();

  // Two-way sorted merge. A tuple's rank band in the union stream widens by
  // the band of the other summary it lands between; adding the successor's
  // (g + delta - 1) from the other side is the standard conservative bound.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  size_t a = 0;
  size_t b = 0;
  auto other_slack = [](const std::vector<Tuple>& t, size_t next) -> uint64_t {
    if (next >= t.size()) {
      return 0;
    }
    return t[next].g + t[next].delta - 1;
  };
  while (a < tuples_.size() || b < other.tuples_.size()) {
    bool take_a = b >= other.tuples_.size() ||
                  (a < tuples_.size() && tuples_[a].v <= other.tuples_[b].v);
    if (take_a) {
      Tuple t = tuples_[a++];
      t.delta += other_slack(other.tuples_, b);
      merged.push_back(t);
    } else {
      Tuple t = other.tuples_[b++];
      t.delta += other_slack(tuples_, a);
      merged.push_back(t);
    }
  }
  tuples_ = std::move(merged);
  count_ += other.count_;
  Compress();
}

double QuantileSketch::Quantile(double q) const {
  ELEMENT_DCHECK(!empty()) << "Quantile() on empty sketch";
  if (empty()) {
    return 0.0;
  }
  Flush();
  q = std::min(1.0, std::max(0.0, q));
  const double n = static_cast<double>(count_);
  const double target = q * (n - 1.0) + 1.0;  // 1-based rank, matches order stats
  const double e = RankErrorBound();
  uint64_t r_min = 0;
  double prev = tuples_.front().v;
  for (const Tuple& t : tuples_) {
    r_min += t.g;
    if (static_cast<double>(r_min + t.delta) > target + e) {
      return prev;
    }
    prev = t.v;
  }
  return tuples_.back().v;
}

double QuantileSketch::RankErrorBound() const {
  Flush();
  uint64_t worst = 0;
  for (const Tuple& t : tuples_) {
    worst = std::max(worst, t.g + t.delta);
  }
  return static_cast<double>(worst) / 2.0;
}

double QuantileSketch::min() const { return count() == 0 ? 0.0 : min_; }

double QuantileSketch::max() const { return count() == 0 ? 0.0 : max_; }

double QuantileSketch::mean() const {
  return count() == 0 ? 0.0 : sum_ / static_cast<double>(count());
}

size_t QuantileSketch::TupleCount() const {
  Flush();
  return tuples_.size();
}

}  // namespace telemetry
}  // namespace element
