#include "src/netsim/trace_link.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace element {

TraceLinkModel::TraceLinkModel(std::vector<TracePoint> trace, TimeDelta prop_delay,
                               double loss_prob)
    : trace_(std::move(trace)), prop_delay_(prop_delay), loss_prob_(loss_prob) {
  cycle_ = trace_.empty() ? TimeDelta::Zero() : trace_.back().at - SimTime::Zero();
}

DataRate TraceLinkModel::RateAt(SimTime now) {
  if (trace_.empty()) {
    return DataRate::Zero();
  }
  int64_t pos_ns = now.nanos();
  if (cycle_ > TimeDelta::Zero()) {
    pos_ns %= cycle_.nanos();
  }
  SimTime pos = SimTime::FromNanos(pos_ns);
  // Last point at or before `pos` (points are time-ordered).
  auto it = std::upper_bound(trace_.begin(), trace_.end(), pos,
                             [](SimTime t, const TracePoint& p) { return t < p.at; });
  if (it == trace_.begin()) {
    return trace_.front().rate;
  }
  return (it - 1)->rate;
}

bool TraceLinkModel::DropOnWire(Rng& rng, SimTime /*now*/) {
  return loss_prob_ > 0.0 && rng.Bernoulli(loss_prob_);
}

std::vector<TracePoint> TraceLinkModel::ParseCsv(const std::string& csv_text) {
  std::vector<TracePoint> out;
  std::istringstream in(csv_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return {};
    }
    char* end1 = nullptr;
    char* end2 = nullptr;
    std::string t_str = line.substr(0, comma);
    std::string r_str = line.substr(comma + 1);
    double t = std::strtod(t_str.c_str(), &end1);
    double mbps = std::strtod(r_str.c_str(), &end2);
    if (end1 == t_str.c_str() || end2 == r_str.c_str()) {
      // Tolerate a single header line; anything else is malformed.
      if (out.empty() && t_str.find_first_of("0123456789") == std::string::npos) {
        continue;
      }
      return {};
    }
    if (!out.empty() && t * 1e9 < static_cast<double>(out.back().at.nanos())) {
      return {};  // not time-ordered
    }
    out.push_back({SimTime::FromNanos(static_cast<int64_t>(t * 1e9)), DataRate::Mbps(mbps)});
  }
  return out;
}

std::vector<TracePoint> TraceLinkModel::LoadCsvFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    return {};
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseCsv(buf.str());
}

std::vector<TracePoint> TraceLinkModel::SynthesizeCellular(Rng* rng, DataRate mean_rate,
                                                           TimeDelta duration, TimeDelta step,
                                                           double volatility) {
  std::vector<TracePoint> out;
  double log_mean = std::log(mean_rate.bps());
  double x = log_mean;
  for (SimTime t = SimTime::Zero(); t < SimTime::Zero() + duration; t += step) {
    // Ornstein-Uhlenbeck-ish: pull toward the mean, diffuse, clamp 4x band.
    x += 0.1 * (log_mean - x) + rng->Normal(0.0, volatility);
    x = std::clamp(x, log_mean - 1.4, log_mean + 1.4);
    out.push_back({t, DataRate::BitsPerSecond(std::exp(x))});
  }
  return out;
}

}  // namespace element
