// Pipe = qdisc + rate serializer + propagation/jitter/loss, one direction of
// a path. DuplexPath pairs two pipes and demultiplexes deliveries to
// registered protocol endpoints by flow id.

#ifndef ELEMENT_SRC_NETSIM_PIPE_H_
#define ELEMENT_SRC_NETSIM_PIPE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/evloop/event_loop.h"
#include "src/netsim/link_model.h"
#include "src/netsim/qdisc.h"

namespace element {

struct PipeStats {
  uint64_t delivered_packets = 0;
  uint64_t delivered_bytes = 0;
  uint64_t wire_dropped_packets = 0;
};

class Pipe : public PacketSink {
 public:
  Pipe(EventLoop* loop, Rng rng, std::unique_ptr<Qdisc> qdisc,
       std::unique_ptr<LinkModel> link, PacketSink* out);

  // PacketSink: feeding a pipe enqueues into its qdisc.
  void Deliver(Packet pkt) override { Send(std::move(pkt)); }
  void Send(Packet pkt);

  Qdisc& qdisc() { return *qdisc_; }
  LinkModel& link_model() { return *link_; }
  const PipeStats& stats() const { return stats_; }

  // Binds this pipe's qdisc to the run's spine under hop id `source_id`.
  void BindTelemetry(telemetry::TelemetrySpine* spine, uint16_t source_id) {
    qdisc_->BindTelemetry(spine, source_id);
  }
  // Mirrors pipe + qdisc counters into `registry` under `prefix`
  // (end-of-run publication; never touched on the packet path).
  void PublishMetrics(telemetry::MetricRegistry* registry, const std::string& prefix) const {
    *registry->Counter(prefix + "delivered_packets") += stats_.delivered_packets;
    *registry->Counter(prefix + "delivered_bytes") += stats_.delivered_bytes;
    *registry->Counter(prefix + "wire_dropped_packets") += stats_.wire_dropped_packets;
    qdisc_->PublishMetrics(registry, prefix + "qdisc.");
  }

  // Queueing + serialization delay a new arrival would currently see.
  TimeDelta CurrentBacklogDelay();

 private:
  void MaybeStartTransmission();
  void TransmitOrPark();
  void OnTxTimer();
  void OnTransmitComplete();
  void DeliverFront();

  EventLoop* loop_;
  Rng rng_;
  std::unique_ptr<Qdisc> qdisc_;
  std::unique_ptr<LinkModel> link_;
  PacketSink* out_;
  bool busy_ = false;
  SimTime last_delivery_ = SimTime::Zero();  // enforces in-order delivery
  PipeStats stats_;

  // Head-of-line packet being serialized (or parked during an outage). The
  // serializer timer re-arms in place instead of scheduling fresh events.
  std::optional<Packet> txing_;
  bool parked_ = false;
  Timer tx_timer_;
  // Transmitted packets awaiting propagation delivery. Delivery times are
  // clamped monotonic and equal-time events fire in schedule order, so the
  // scheduled [this] events pop in FIFO order — the callbacks carry no
  // payload and stay inside the loop's inline callback storage.
  std::deque<Packet> wire_;
};

// Routes delivered packets to per-flow endpoints.
class Demux : public PacketSink {
 public:
  void Register(uint64_t flow_id, PacketSink* sink) {
    // Re-registering a live flow id would silently misdeliver one endpoint's
    // packets to another — the classic bug when ids are recycled too early.
    ELEMENT_DCHECK(sinks_.count(flow_id) == 0 || sinks_[flow_id] == sink)
        << "flow id " << flow_id << " is still registered";
    sinks_[flow_id] = sink;
  }
  void Unregister(uint64_t flow_id) { sinks_.erase(flow_id); }
  bool HasFlow(uint64_t flow_id) const { return sinks_.count(flow_id) > 0; }
  // Live registrations; a churn test's leak detector.
  size_t size() const { return sinks_.size(); }
  // Packets of unregistered flows go to the fallback (e.g. a TcpListener).
  void SetFallback(PacketSink* sink) { fallback_ = sink; }
  void Deliver(Packet pkt) override;
  uint64_t unroutable_packets() const { return unroutable_; }

 private:
  std::unordered_map<uint64_t, PacketSink*> sinks_;
  PacketSink* fallback_ = nullptr;
  uint64_t unroutable_ = 0;
};

// A bidirectional path between two hosts ("client" and "server").
class DuplexPath {
 public:
  DuplexPath(EventLoop* loop, Rng* rng, std::unique_ptr<Qdisc> fwd_qdisc,
             std::unique_ptr<LinkModel> fwd_link, std::unique_ptr<Qdisc> rev_qdisc,
             std::unique_ptr<LinkModel> rev_link);

  // client -> server direction.
  Pipe& forward() { return *forward_; }
  // server -> client direction.
  Pipe& reverse() { return *reverse_; }

  // Hop ids: forward qdisc = 0, reverse qdisc = 1.
  void BindTelemetry(telemetry::TelemetrySpine* spine) {
    forward_->BindTelemetry(spine, 0);
    reverse_->BindTelemetry(spine, 1);
  }
  // Endpoints at the server register here to receive forward-direction packets.
  Demux& server_demux() { return server_demux_; }
  // Endpoints at the client register here to receive reverse-direction packets.
  Demux& client_demux() { return client_demux_; }

  // Flow ids recycle through a LIFO free list. Only release an id once the
  // path is drained of its packets (both endpoints closed and destroyed),
  // otherwise in-flight packets would reach the id's next owner; Demux
  // catches that misuse with a DCHECK on re-registration.
  uint64_t AllocateFlowId() {
    if (!free_flow_ids_.empty()) {
      uint64_t id = free_flow_ids_.back();
      free_flow_ids_.pop_back();
      return id;
    }
    return next_flow_id_++;
  }
  void ReleaseFlowId(uint64_t flow_id) {
    ELEMENT_DCHECK(!server_demux_.HasFlow(flow_id) && !client_demux_.HasFlow(flow_id))
        << "flow id " << flow_id << " released while still registered";
    free_flow_ids_.push_back(flow_id);
  }

 private:
  Demux server_demux_;
  Demux client_demux_;
  std::unique_ptr<Pipe> forward_;
  std::unique_ptr<Pipe> reverse_;
  uint64_t next_flow_id_ = 1;
  std::vector<uint64_t> free_flow_ids_;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_PIPE_H_
