#include "src/netsim/pie.h"

#include <algorithm>
#include <utility>

namespace element {

Pie::Pie(const PieParams& params, Rng rng)
    : params_(params), rng_(std::move(rng)), burst_left_(params.burst_allowance) {}

TimeDelta Pie::EstimateQueueDelay() const {
  if (avg_drain_rate_bytes_per_sec_ <= 1.0) {
    return TimeDelta::Zero();
  }
  return TimeDelta::FromSeconds(static_cast<double>(bytes_) / avg_drain_rate_bytes_per_sec_);
}

void Pie::MaybeUpdateProbability(SimTime now) {
  if (first_update_done_ && now - last_update_ < params_.update_interval) {
    return;
  }
  TimeDelta qdelay = EstimateQueueDelay();
  double p = params_.alpha * (qdelay - params_.target).ToSeconds() +
             params_.beta * (qdelay - qdelay_old_).ToSeconds();

  // RFC 8033 §5.1 auto-tuning: scale the adjustment by the operating region.
  if (drop_prob_ < 0.000001) {
    p /= 2048.0;
  } else if (drop_prob_ < 0.00001) {
    p /= 512.0;
  } else if (drop_prob_ < 0.0001) {
    p /= 128.0;
  } else if (drop_prob_ < 0.001) {
    p /= 32.0;
  } else if (drop_prob_ < 0.01) {
    p /= 8.0;
  } else if (drop_prob_ < 0.1) {
    p /= 2.0;
  }
  drop_prob_ += p;

  // Exponential decay when the queue is idle.
  if (qdelay.IsZero() && qdelay_old_.IsZero()) {
    drop_prob_ *= 0.98;
  }
  drop_prob_ = std::clamp(drop_prob_, 0.0, 1.0);
  qdelay_old_ = qdelay;

  // RFC 8033 §4.2: the burst allowance drains on every update; it is only
  // replenished while the queue is demonstrably uncongested.
  if (burst_left_ > TimeDelta::Zero()) {
    burst_left_ -= params_.update_interval;
  } else if (drop_prob_ == 0.0 && qdelay < params_.target * 0.5 &&
             qdelay_old_ < params_.target * 0.5) {
    burst_left_ = params_.burst_allowance;
  }
  last_update_ = now;
  first_update_done_ = true;
}

bool Pie::Enqueue(Packet pkt, SimTime now) {
  ScopedConservationAudit audit(this);
  MaybeUpdateProbability(now);
  if (queue_.size() >= params_.limit_packets) {
    CountDropPreQueue(pkt, now);
    return false;
  }
  bool should_drop = false;
  if (burst_left_ <= TimeDelta::Zero()) {
    // RFC 8033 §5.3 safeguards against starving small queues.
    bool tiny_queue = queue_.size() < 2;
    bool low_delay = qdelay_old_ < params_.target * 0.5 && drop_prob_ < 0.2;
    if (!tiny_queue && !low_delay && rng_.Bernoulli(drop_prob_)) {
      should_drop = true;
    }
  }
  if (should_drop) {
    if (!MarkInsteadOfDrop(pkt, now)) {
      CountDropPreQueue(pkt, now);
      return false;
    }
  }
  pkt.enqueued = now;
  bytes_ += pkt.size_bytes;
  CountEnqueue(pkt, now);
  queue_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> Pie::Dequeue(SimTime now) {
  ScopedConservationAudit audit(this);
  if (queue_.empty()) {
    have_last_dequeue_ = false;
    return std::nullopt;
  }
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= pkt.size_bytes;

  // Drain-rate estimation.
  if (have_last_dequeue_) {
    TimeDelta gap = now - last_dequeue_;
    if (gap > TimeDelta::Zero()) {
      double inst = static_cast<double>(pkt.size_bytes) / gap.ToSeconds();
      if (avg_drain_rate_bytes_per_sec_ <= 0.0) {
        avg_drain_rate_bytes_per_sec_ = inst;
      } else {
        avg_drain_rate_bytes_per_sec_ = 0.9 * avg_drain_rate_bytes_per_sec_ + 0.1 * inst;
      }
    }
  }
  last_dequeue_ = now;
  have_last_dequeue_ = true;

  CountDequeue(pkt, now);
  return pkt;
}

}  // namespace element
