// Qdisc decorator that records per-packet sojourn times — the simulation
// analogue of the eBPF extension the paper's Discussion (§7) proposes for
// tracing below the transport layer (dev_queue_xmit / device): it decomposes
// the "network delay" into bottleneck queueing and everything else, for any
// wrapped discipline.

#ifndef ELEMENT_SRC_NETSIM_INSTRUMENTED_QDISC_H_
#define ELEMENT_SRC_NETSIM_INSTRUMENTED_QDISC_H_

#include <memory>
#include <utility>

#include "src/common/stats.h"
#include "src/netsim/qdisc.h"
#include "src/telemetry/quantile_sketch.h"

namespace element {

class InstrumentedQdisc : public Qdisc {
 public:
  explicit InstrumentedQdisc(std::unique_ptr<Qdisc> inner) : inner_(std::move(inner)) {}

  bool Enqueue(Packet pkt, SimTime now) override {
    bool kept = inner_->Enqueue(std::move(pkt), now);
    MergeInnerStats();
    return kept;
  }

  std::optional<Packet> Dequeue(SimTime now) override {
    std::optional<Packet> pkt = inner_->Dequeue(now);
    if (pkt.has_value()) {
      double sojourn = (now - pkt->enqueued).ToSeconds();
      if (bounded_) {
        sojourn_sketch_.Add(sojourn);
      } else {
        sojourn_.Add(sojourn);
      }
      if (keep_series_) {
        sojourn_series_.Add(now, sojourn);
      }
    }
    MergeInnerStats();
    return pkt;
  }

  size_t packet_count() const override { return inner_->packet_count(); }
  int64_t byte_count() const override { return inner_->byte_count(); }
  std::string name() const override { return inner_->name() + "+probe"; }

  // Record emission happens where the counting happens: in the wrapped
  // discipline (this decorator's own Count* helpers never run).
  void BindTelemetry(telemetry::TelemetrySpine* spine, uint16_t source_id) override {
    inner_->BindTelemetry(spine, source_id);
  }

  Qdisc& inner() { return *inner_; }
  // Per-packet queueing delay distribution (seconds). Exact by default;
  // set_bounded(true) swaps in the GK sketch for long runs (constant memory,
  // quantiles within the sketch's rank-error bound) — read it via
  // sojourn_sketch() instead.
  const SampleSet& sojourn_samples() const { return sojourn_; }
  const telemetry::QuantileSketch& sojourn_sketch() const { return sojourn_sketch_; }
  void set_bounded(bool bounded) { bounded_ = bounded; }
  const TimeSeries& sojourn_series() const { return sojourn_series_; }
  void set_keep_series(bool keep) { keep_series_ = keep; }

 private:
  void MergeInnerStats() { stats_ = inner_->stats(); }

  std::unique_ptr<Qdisc> inner_;
  SampleSet sojourn_;
  telemetry::QuantileSketch sojourn_sketch_;
  bool bounded_ = false;
  TimeSeries sojourn_series_;
  bool keep_series_ = false;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_INSTRUMENTED_QDISC_H_
