#include "src/netsim/pfifo_fast.h"

#include <utility>

namespace element {

PfifoFast::PfifoFast(size_t limit_packets) : limit_(limit_packets) {}

bool PfifoFast::Enqueue(Packet pkt, SimTime now) {
  ScopedConservationAudit audit(this);
  if (total_packets_ >= limit_) {
    CountDropPreQueue(pkt, now);
    return false;
  }
  pkt.enqueued = now;
  size_t band = pkt.priority_band < kBands ? pkt.priority_band : kBands - 1;
  total_bytes_ += pkt.size_bytes;
  ++total_packets_;
  CountEnqueue(pkt, now);
  bands_[band].push_back(std::move(pkt));
  return true;
}

std::optional<Packet> PfifoFast::Dequeue(SimTime now) {
  ScopedConservationAudit audit(this);
  for (auto& band : bands_) {
    if (!band.empty()) {
      Packet pkt = std::move(band.front());
      band.pop_front();
      --total_packets_;
      total_bytes_ -= pkt.size_bytes;
      CountDequeue(pkt, now);
      return pkt;
    }
  }
  return std::nullopt;
}

}  // namespace element
