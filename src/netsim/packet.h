// Packet representation shared by the link/qdisc layer and the transport
// simulations. The network layer treats payloads as opaque; protocols attach
// their own payload subclass (TcpSegmentPayload, UdpDatagramPayload, ...).

#ifndef ELEMENT_SRC_NETSIM_PACKET_H_
#define ELEMENT_SRC_NETSIM_PACKET_H_

#include <cstdint>
#include <memory>

#include "src/common/time.h"

namespace element {

// Base class for protocol payloads carried inside a Packet.
struct Payload {
  virtual ~Payload() = default;
};

struct Packet {
  uint64_t flow_id = 0;     // demultiplexing key (one id per connection)
  uint32_t size_bytes = 0;  // wire size including all headers
  uint32_t priority_band = 1;  // pfifo_fast band: 0 = high, 1 = normal, 2 = low

  SimTime created;   // when the protocol emitted the packet
  SimTime enqueued;  // stamped by the qdisc on enqueue

  bool ecn_capable = false;  // ECT codepoint set
  bool ecn_marked = false;   // CE codepoint set (by an AQM)

  std::shared_ptr<const Payload> payload;
};

// Anything that accepts packets: pipes, demultiplexers, protocol endpoints.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void Deliver(Packet pkt) = 0;
};

// Standard wire framing constants used across the simulation.
inline constexpr uint32_t kIpTcpHeaderBytes = 52;  // IPv4 (20) + TCP w/ timestamps (32)
inline constexpr uint32_t kIpUdpHeaderBytes = 28;  // IPv4 (20) + UDP (8)
inline constexpr uint32_t kDefaultMss = 1448;      // 1500 MTU - 52 header
inline constexpr uint32_t kFullPacketBytes = 1500;

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_PACKET_H_
