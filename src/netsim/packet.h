// Packet representation shared by the link/qdisc layer and the transport
// simulations. The network layer treats payloads as opaque; protocols attach
// their own payload subclass (TcpSegmentPayload, UdpDatagramPayload, ...).

#ifndef ELEMENT_SRC_NETSIM_PACKET_H_
#define ELEMENT_SRC_NETSIM_PACKET_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "src/common/arena.h"
#include "src/common/time.h"

namespace element {

// Base class for protocol payloads carried inside a Packet.
struct Payload {
  virtual ~Payload() = default;
};

// Allocates a payload (object + shared_ptr control block in one node) from a
// free-list arena — on the forwarding hot path, the loop's payload arena
// (EventLoop::payload_arena()), so steady-state packet emission recycles
// blocks instead of hitting the allocator. The returned pointer is mutable so
// callers can finish initialization before handing it to Packet::payload.
// Pooled payloads must not outlive the arena (in practice: the loop).
template <typename T, typename... Args>
std::shared_ptr<T> MakePooledPayload(FreeListArena& arena, Args&&... args) {
  return std::allocate_shared<T>(ArenaAllocator<T>(&arena), std::forward<Args>(args)...);
}

struct Packet {
  uint64_t flow_id = 0;     // demultiplexing key (one id per connection)
  uint32_t size_bytes = 0;  // wire size including all headers
  uint32_t priority_band = 1;  // pfifo_fast band: 0 = high, 1 = normal, 2 = low

  SimTime created;   // when the protocol emitted the packet
  SimTime enqueued;  // stamped by the qdisc on enqueue

  bool ecn_capable = false;  // ECT codepoint set
  bool ecn_marked = false;   // CE codepoint set (by an AQM)

  std::shared_ptr<const Payload> payload;
};

// Anything that accepts packets: pipes, demultiplexers, protocol endpoints.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void Deliver(Packet pkt) = 0;
};

// Standard wire framing constants used across the simulation.
inline constexpr uint32_t kIpTcpHeaderBytes = 52;  // IPv4 (20) + TCP w/ timestamps (32)
inline constexpr uint32_t kIpUdpHeaderBytes = 28;  // IPv4 (20) + UDP (8)
inline constexpr uint32_t kDefaultMss = 1448;      // 1500 MTU - 52 header
inline constexpr uint32_t kFullPacketBytes = 1500;

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_PACKET_H_
