#include "src/netsim/fq_codel.h"

#include <algorithm>
#include <utility>

namespace element {

FqCoDel::FqCoDel(const FqCoDelParams& params) : params_(params) {
  buckets_.resize(params_.num_buckets);
}

size_t FqCoDel::BucketFor(const Packet& pkt) const {
  // Flow ids are already per-connection; a multiplicative hash spreads them.
  uint64_t h = pkt.flow_id * 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>(h % params_.num_buckets);
}

void FqCoDel::DropFromLongestFlow(SimTime now) {
  size_t victim = 0;
  int64_t worst = -1;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].bytes > worst) {
      worst = buckets_[i].bytes;
      victim = i;
    }
  }
  FlowQueue& fq = buckets_[victim];
  if (fq.packets.empty()) {
    return;
  }
  // RFC 8290 drops from the head of the fattest flow.
  Packet& head = fq.packets.front();
  fq.bytes -= head.size_bytes;
  total_bytes_ -= head.size_bytes;
  --total_packets_;
  CountDropFromQueue(head, now);
  fq.packets.pop_front();
}

bool FqCoDel::Enqueue(Packet pkt, SimTime now) {
  ScopedConservationAudit audit(this);
  if (total_packets_ >= params_.limit_packets) {
    DropFromLongestFlow(now);
    if (total_packets_ >= params_.limit_packets) {
      CountDropPreQueue(pkt, now);
      return false;
    }
  }
  size_t idx = BucketFor(pkt);
  FlowQueue& fq = buckets_[idx];
  if (!fq.codel) {
    fq.codel = std::make_unique<CoDelState>(params_.codel);
  }
  pkt.enqueued = now;
  fq.bytes += pkt.size_bytes;
  total_bytes_ += pkt.size_bytes;
  ++total_packets_;
  CountEnqueue(pkt, now);
  fq.packets.push_back(std::move(pkt));
  if (!fq.active) {
    fq.active = true;
    fq.deficit = params_.quantum_bytes;
    new_flows_.push_back(idx);
  }
  return true;
}

std::optional<Packet> FqCoDel::DequeueFromFlow(FlowQueue* fq, SimTime now) {
  while (!fq->packets.empty()) {
    Packet pkt = std::move(fq->packets.front());
    fq->packets.pop_front();
    fq->bytes -= pkt.size_bytes;
    total_bytes_ -= pkt.size_bytes;
    --total_packets_;
    TimeDelta sojourn = now - pkt.enqueued;
    if (fq->codel->ShouldDrop(sojourn, now, static_cast<size_t>(fq->bytes))) {
      if (MarkInsteadOfDrop(pkt, now)) {
        CountDequeue(pkt, now);
        return pkt;
      }
      CountDropFromQueue(pkt, now);
      continue;
    }
    CountDequeue(pkt, now);
    return pkt;
  }
  return std::nullopt;
}

std::optional<Packet> FqCoDel::Dequeue(SimTime now) {
  ScopedConservationAudit audit(this);
  for (int guard = 0; guard < 4 * static_cast<int>(params_.num_buckets) + 8; ++guard) {
    std::list<size_t>* list = !new_flows_.empty() ? &new_flows_ : &old_flows_;
    if (list->empty()) {
      return std::nullopt;
    }
    size_t idx = list->front();
    FlowQueue& fq = buckets_[idx];
    if (fq.deficit <= 0) {
      fq.deficit += params_.quantum_bytes;
      // Move to the back of old_flows_.
      list->pop_front();
      old_flows_.push_back(idx);
      continue;
    }
    std::optional<Packet> pkt = DequeueFromFlow(&fq, now);
    if (!pkt.has_value()) {
      // Flow went empty. A flow from new_flows_ gets one more shot on the old
      // list; a flow from old_flows_ becomes inactive.
      list->pop_front();
      if (list == &new_flows_) {
        old_flows_.push_back(idx);
      } else {
        fq.active = false;
      }
      continue;
    }
    fq.deficit -= pkt->size_bytes;
    return pkt;
  }
  return std::nullopt;
}

}  // namespace element
