// Link models: the serialization rate, propagation delay, jitter, and wire
// loss of one direction of a path. These stand in for the paper's production
// networks (LAN, cable, WiFi, LTE) and its tc/netem WAN emulator — see the
// substitution table in DESIGN.md.

#ifndef ELEMENT_SRC_NETSIM_LINK_MODEL_H_
#define ELEMENT_SRC_NETSIM_LINK_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/data_rate.h"
#include "src/common/rng.h"
#include "src/common/time.h"

namespace element {

class LinkModel {
 public:
  virtual ~LinkModel() = default;

  // Current serialization rate; may evolve internal state with time.
  virtual DataRate RateAt(SimTime now) = 0;
  virtual TimeDelta PropagationDelay() const = 0;
  // Extra per-packet delay (contention, scheduling); zero by default.
  virtual TimeDelta JitterFor(Rng& rng) {
    (void)rng;
    return TimeDelta::Zero();
  }
  // Random loss on the wire (after the queue), e.g. radio loss.
  virtual bool DropOnWire(Rng& rng, SimTime now) {
    (void)rng;
    (void)now;
    return false;
  }
  virtual std::string name() const = 0;
};

// Fixed-rate, fixed-delay link with optional i.i.d. loss — the tc/netem
// equivalent used in the controlled experiments.
class FixedLinkModel : public LinkModel {
 public:
  FixedLinkModel(DataRate rate, TimeDelta prop_delay, double loss_prob = 0.0);

  DataRate RateAt(SimTime now) override;
  TimeDelta PropagationDelay() const override { return prop_delay_; }
  bool DropOnWire(Rng& rng, SimTime now) override;
  std::string name() const override { return "fixed"; }

  void set_rate(DataRate r) { rate_ = r; }
  void set_loss_prob(double p) { loss_prob_ = p; }

 private:
  DataRate rate_;
  TimeDelta prop_delay_;
  double loss_prob_;
};

// Bandwidth follows a repeating schedule of (duration, rate) steps — used for
// the Figure 8 "dynamic bandwidth" scenario (10 <-> 50 Mbps every 20 s).
class SteppedLinkModel : public LinkModel {
 public:
  struct Step {
    TimeDelta duration;
    DataRate rate;
  };
  SteppedLinkModel(std::vector<Step> steps, TimeDelta prop_delay, double loss_prob = 0.0);

  DataRate RateAt(SimTime now) override;
  TimeDelta PropagationDelay() const override { return prop_delay_; }
  bool DropOnWire(Rng& rng, SimTime now) override;
  std::string name() const override { return "stepped"; }

 private:
  std::vector<Step> steps_;
  TimeDelta cycle_;
  TimeDelta prop_delay_;
  double loss_prob_;
};

// DOCSIS-like cable access link: stable rate with mild jitter.
class CableLinkModel : public LinkModel {
 public:
  CableLinkModel(DataRate rate, TimeDelta prop_delay, Rng rng);

  DataRate RateAt(SimTime now) override;
  TimeDelta PropagationDelay() const override { return prop_delay_; }
  TimeDelta JitterFor(Rng& rng) override;
  bool DropOnWire(Rng& rng, SimTime now) override;
  std::string name() const override { return "cable"; }

 private:
  DataRate rate_;
  TimeDelta prop_delay_;
  Rng rng_;
};

// 802.11-style link: Markov-modulated rate (MCS shifts), contention jitter,
// and Gilbert-Elliott bursty loss.
class WifiLinkModel : public LinkModel {
 public:
  explicit WifiLinkModel(Rng rng, DataRate mean_rate = DataRate::Mbps(60),
                         TimeDelta prop_delay = TimeDelta::FromMillis(3));

  DataRate RateAt(SimTime now) override;
  TimeDelta PropagationDelay() const override { return prop_delay_; }
  TimeDelta JitterFor(Rng& rng) override;
  bool DropOnWire(Rng& rng, SimTime now) override;
  std::string name() const override { return "wifi"; }

 private:
  void MaybeTransition(SimTime now);

  Rng rng_;
  DataRate mean_rate_;
  TimeDelta prop_delay_;
  double rate_factor_ = 1.0;      // current MCS factor of mean rate
  SimTime next_transition_ = SimTime::Zero();
  bool loss_burst_ = false;       // Gilbert-Elliott bad state
};

// Cellular LTE link: slowly varying rate, larger base delay, scheduling jitter.
class LteLinkModel : public LinkModel {
 public:
  explicit LteLinkModel(Rng rng, DataRate mean_rate = DataRate::Mbps(25),
                        TimeDelta prop_delay = TimeDelta::FromMillis(25));

  DataRate RateAt(SimTime now) override;
  TimeDelta PropagationDelay() const override { return prop_delay_; }
  TimeDelta JitterFor(Rng& rng) override;
  bool DropOnWire(Rng& rng, SimTime now) override;
  std::string name() const override { return "lte"; }

 private:
  void MaybeTransition(SimTime now);

  Rng rng_;
  DataRate mean_rate_;
  TimeDelta prop_delay_;
  double rate_factor_ = 1.0;
  SimTime next_transition_ = SimTime::Zero();
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_LINK_MODEL_H_
