#include "src/netsim/pipe.h"

#include <utility>

namespace element {

Pipe::Pipe(EventLoop* loop, Rng rng, std::unique_ptr<Qdisc> qdisc,
           std::unique_ptr<LinkModel> link, PacketSink* out)
    : loop_(loop),
      rng_(std::move(rng)),
      qdisc_(std::move(qdisc)),
      link_(std::move(link)),
      out_(out),
      tx_timer_(loop, [this] { OnTxTimer(); }) {}

void Pipe::Send(Packet pkt) {
  // Kick the transmitter even when the queue drops this packet: the line may
  // be idle with a backlog (e.g. just after an outage).
  qdisc_->Enqueue(std::move(pkt), loop_->now());
  MaybeStartTransmission();
}

TimeDelta Pipe::CurrentBacklogDelay() {
  DataRate rate = link_->RateAt(loop_->now());
  if (rate.IsZero()) {
    return TimeDelta::Infinite();
  }
  return rate.TransmitTime(qdisc_->byte_count());
}

void Pipe::MaybeStartTransmission() {
  if (busy_) {
    return;
  }
  std::optional<Packet> pkt = qdisc_->Dequeue(loop_->now());
  if (!pkt.has_value()) {
    return;
  }
  busy_ = true;
  txing_ = std::move(*pkt);
  TransmitOrPark();
}

void Pipe::TransmitOrPark() {
  DataRate rate = link_->RateAt(loop_->now());
  TimeDelta tx_time = rate.TransmitTime(txing_->size_bytes);
  if (tx_time.IsInfinite()) {
    // Link outage: hold this packet at the head of the line and retry; the
    // pipe stays busy so ordering is preserved and nothing is re-dropped.
    parked_ = true;
    tx_timer_.RestartAfter(TimeDelta::FromMillis(10));
    return;
  }
  parked_ = false;
  tx_timer_.RestartAfter(tx_time);
}

void Pipe::OnTxTimer() {
  if (parked_) {
    TransmitOrPark();
  } else {
    OnTransmitComplete();
  }
}

void Pipe::OnTransmitComplete() {
  busy_ = false;
  Packet pkt = std::move(*txing_);
  txing_.reset();
  if (link_->DropOnWire(rng_, loop_->now())) {
    ++stats_.wire_dropped_packets;
  } else {
    SimTime deliver_at = loop_->now() + link_->PropagationDelay() + link_->JitterFor(rng_);
    // Links do not reorder: clamp to the latest scheduled delivery.
    if (deliver_at < last_delivery_) {
      deliver_at = last_delivery_;
    }
    last_delivery_ = deliver_at;
    ++stats_.delivered_packets;
    stats_.delivered_bytes += pkt.size_bytes;
    wire_.push_back(std::move(pkt));
    loop_->ScheduleAt(deliver_at, [this] { DeliverFront(); });
  }
  MaybeStartTransmission();
}

void Pipe::DeliverFront() {
  Packet pkt = std::move(wire_.front());
  wire_.pop_front();
  out_->Deliver(std::move(pkt));
}

void Demux::Deliver(Packet pkt) {
  auto it = sinks_.find(pkt.flow_id);
  if (it == sinks_.end()) {
    if (fallback_ != nullptr) {
      fallback_->Deliver(std::move(pkt));
    } else {
      ++unroutable_;
    }
    return;
  }
  it->second->Deliver(std::move(pkt));
}

DuplexPath::DuplexPath(EventLoop* loop, Rng* rng, std::unique_ptr<Qdisc> fwd_qdisc,
                       std::unique_ptr<LinkModel> fwd_link, std::unique_ptr<Qdisc> rev_qdisc,
                       std::unique_ptr<LinkModel> rev_link) {
  forward_ = std::make_unique<Pipe>(loop, rng->Fork(), std::move(fwd_qdisc),
                                    std::move(fwd_link), &server_demux_);
  reverse_ = std::make_unique<Pipe>(loop, rng->Fork(), std::move(rev_qdisc),
                                    std::move(rev_link), &client_demux_);
}

}  // namespace element
