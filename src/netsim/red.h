// Random Early Detection (Floyd & Jacobson 1993) — the classic AQM that
// CoDel/PIE position themselves against ("is CoDel really achieving what RED
// cannot?", the paper's reference [41]). Included as an additional baseline
// for the qdisc comparison and ablation benches.

#ifndef ELEMENT_SRC_NETSIM_RED_H_
#define ELEMENT_SRC_NETSIM_RED_H_

#include <deque>

#include "src/common/rng.h"
#include "src/netsim/qdisc.h"

namespace element {

struct RedParams {
  double min_threshold_packets = 20;
  double max_threshold_packets = 60;
  double max_drop_probability = 0.1;  // max_p at max_threshold
  double queue_weight = 0.002;        // EWMA weight for the average queue
  size_t limit_packets = 1000;
};

class Red : public Qdisc {
 public:
  Red(const RedParams& params, Rng rng);
  explicit Red(Rng rng) : Red(RedParams(), std::move(rng)) {}

  bool Enqueue(Packet pkt, SimTime now) override;
  std::optional<Packet> Dequeue(SimTime now) override;
  size_t packet_count() const override { return queue_.size(); }
  int64_t byte_count() const override { return bytes_; }
  std::string name() const override { return "red"; }

  double average_queue() const { return avg_queue_; }

 private:
  double CurrentDropProbability() const;

  RedParams params_;
  Rng rng_;
  std::deque<Packet> queue_;
  int64_t bytes_ = 0;

  double avg_queue_ = 0.0;
  int count_since_drop_ = -1;  // packets since the last early drop
  SimTime idle_since_;
  bool idle_ = true;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_RED_H_
