#include "src/netsim/codel.h"

#include <cmath>
#include <utility>

namespace element {

SimTime CoDelState::ControlLawNext(SimTime t) const {
  double scale = 1.0 / std::sqrt(static_cast<double>(count_ == 0 ? 1 : count_));
  return t + params_.interval * scale;
}

bool CoDelState::ShouldDrop(TimeDelta sojourn, SimTime now, size_t queued_bytes) {
  // Track whether the sojourn time has stayed above target for an interval.
  bool ok_to_drop = false;
  if (sojourn < params_.target || queued_bytes <= kFullPacketBytes) {
    first_above_valid_ = false;
  } else {
    if (!first_above_valid_) {
      first_above_valid_ = true;
      first_above_time_ = now + params_.interval;
    } else if (now >= first_above_time_) {
      ok_to_drop = true;
    }
  }

  if (dropping_) {
    if (!ok_to_drop) {
      dropping_ = false;
      return false;
    }
    if (now >= drop_next_) {
      ++count_;
      drop_next_ = ControlLawNext(drop_next_);
      return true;
    }
    return false;
  }

  if (ok_to_drop) {
    dropping_ = true;
    // If we recently exited the dropping state, resume near the previous drop
    // rate instead of restarting from 1 (RFC 8289 §5.4).
    uint32_t delta = count_ - last_count_;
    bool recently = (now - drop_next_) < params_.interval * 16.0;
    count_ = (delta > 1 && recently) ? delta : 1;
    drop_next_ = ControlLawNext(now);
    last_count_ = count_;
    return true;
  }
  return false;
}

CoDel::CoDel(const CoDelParams& params) : params_(params), state_(params) {}

bool CoDel::Enqueue(Packet pkt, SimTime now) {
  ScopedConservationAudit audit(this);
  if (queue_.size() >= params_.limit_packets) {
    CountDropPreQueue(pkt, now);
    return false;
  }
  pkt.enqueued = now;
  bytes_ += pkt.size_bytes;
  CountEnqueue(pkt, now);
  queue_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> CoDel::Dequeue(SimTime now) {
  ScopedConservationAudit audit(this);
  while (!queue_.empty()) {
    Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    bytes_ -= pkt.size_bytes;
    TimeDelta sojourn = now - pkt.enqueued;
    if (state_.ShouldDrop(sojourn, now, static_cast<size_t>(bytes_))) {
      if (MarkInsteadOfDrop(pkt, now)) {
        CountDequeue(pkt, now);
        return pkt;
      }
      CountDropFromQueue(pkt, now);
      continue;
    }
    CountDequeue(pkt, now);
    return pkt;
  }
  return std::nullopt;
}

}  // namespace element
