// FQ-CoDel (RFC 8290): deficit-round-robin fair queueing across hashed flow
// buckets, each governed by CoDel. Baseline qdisc in Figure 3.

#ifndef ELEMENT_SRC_NETSIM_FQ_CODEL_H_
#define ELEMENT_SRC_NETSIM_FQ_CODEL_H_

#include <deque>
#include <list>
#include <memory>
#include <vector>

#include "src/netsim/codel.h"
#include "src/netsim/qdisc.h"

namespace element {

struct FqCoDelParams {
  CoDelParams codel;
  size_t num_buckets = 1024;
  size_t limit_packets = 10240;
  int64_t quantum_bytes = 1514;
};

class FqCoDel : public Qdisc {
 public:
  explicit FqCoDel(const FqCoDelParams& params = FqCoDelParams());

  bool Enqueue(Packet pkt, SimTime now) override;
  std::optional<Packet> Dequeue(SimTime now) override;
  size_t packet_count() const override { return total_packets_; }
  int64_t byte_count() const override { return total_bytes_; }
  std::string name() const override { return "fq_codel"; }

 private:
  struct FlowQueue {
    std::deque<Packet> packets;
    int64_t bytes = 0;
    int64_t deficit = 0;
    std::unique_ptr<CoDelState> codel;
    bool active = false;  // on new_flows_ or old_flows_
  };

  size_t BucketFor(const Packet& pkt) const;
  // Runs CoDel on the head of `fq`; returns a surviving packet if any.
  std::optional<Packet> DequeueFromFlow(FlowQueue* fq, SimTime now);
  void DropFromLongestFlow(SimTime now);

  FqCoDelParams params_;
  std::vector<FlowQueue> buckets_;
  std::list<size_t> new_flows_;
  std::list<size_t> old_flows_;
  size_t total_packets_ = 0;
  int64_t total_bytes_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_FQ_CODEL_H_
