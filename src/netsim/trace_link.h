// Trace-driven link model: replays a recorded bandwidth trace (time, rate)
// the way Sprout's and Verus's evaluations replay Verizon/T-Mobile cellular
// traces. Traces load from CSV ("t_seconds,mbps" rows) or from an in-memory
// schedule; a generator can synthesize cellular-like traces for tests and
// benches that have no recorded data (see DESIGN.md's substitution table).

#ifndef ELEMENT_SRC_NETSIM_TRACE_LINK_H_
#define ELEMENT_SRC_NETSIM_TRACE_LINK_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/netsim/link_model.h"

namespace element {

struct TracePoint {
  SimTime at;
  DataRate rate;
};

class TraceLinkModel : public LinkModel {
 public:
  // The trace holds the rate constant from each point until the next; it
  // loops when the simulation runs past the end. Points must be
  // time-ordered; an empty trace is a zero-rate link.
  TraceLinkModel(std::vector<TracePoint> trace, TimeDelta prop_delay,
                 double loss_prob = 0.0);

  DataRate RateAt(SimTime now) override;
  TimeDelta PropagationDelay() const override { return prop_delay_; }
  bool DropOnWire(Rng& rng, SimTime now) override;
  std::string name() const override { return "trace"; }

  const std::vector<TracePoint>& trace() const { return trace_; }

  // Parses "t_seconds,mbps" CSV rows (header line optional; '#' comments
  // skipped). Returns an empty vector on malformed input.
  static std::vector<TracePoint> ParseCsv(const std::string& csv_text);
  static std::vector<TracePoint> LoadCsvFile(const std::string& path);

  // Synthesizes a cellular-like trace: a mean-reverting random walk in
  // log-rate, sampled every `step` for `duration`.
  static std::vector<TracePoint> SynthesizeCellular(Rng* rng, DataRate mean_rate,
                                                    TimeDelta duration,
                                                    TimeDelta step = TimeDelta::FromMillis(100),
                                                    double volatility = 0.15);

 private:
  std::vector<TracePoint> trace_;
  TimeDelta cycle_;
  TimeDelta prop_delay_;
  double loss_prob_;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_TRACE_LINK_H_
