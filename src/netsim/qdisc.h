// Queueing-discipline interface plus shared statistics. Concrete disciplines
// (PfifoFast, CoDel, FqCoDel, Pie, Red) mirror the Linux qdiscs the paper
// evaluates in Sections 2.2 and 5.

#ifndef ELEMENT_SRC_NETSIM_QDISC_H_
#define ELEMENT_SRC_NETSIM_QDISC_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/netsim/packet.h"

namespace element {

struct QdiscStats {
  uint64_t enqueued_packets = 0;
  uint64_t dequeued_packets = 0;
  uint64_t dropped_packets = 0;  // pre-queue + from-queue
  uint64_t ecn_marked_packets = 0;
  uint64_t enqueued_bytes = 0;
  uint64_t dequeued_bytes = 0;

  // Drop breakdown, needed for conservation auditing: a pre-queue drop
  // (tail drop / early drop at Enqueue) rejects a packet that was never
  // counted as enqueued; a from-queue drop (AQM head drop at Dequeue)
  // removes a packet that was.
  uint64_t dropped_pre_queue_packets = 0;
  uint64_t dropped_from_queue_packets = 0;
  uint64_t dropped_from_queue_bytes = 0;
};

class Qdisc {
 public:
  virtual ~Qdisc() = default;

  // Takes ownership of the packet. Returns false if the packet was dropped.
  virtual bool Enqueue(Packet pkt, SimTime now) = 0;
  // Next packet to transmit, or nullopt if empty. AQMs may drop internally
  // while searching for a survivor.
  virtual std::optional<Packet> Dequeue(SimTime now) = 0;

  virtual size_t packet_count() const = 0;
  virtual int64_t byte_count() const = 0;
  virtual std::string name() const = 0;

  const QdiscStats& stats() const { return stats_; }

  // When enabled, AQM "drop" decisions on ECN-capable packets become CE marks.
  void set_ecn_enabled(bool enabled) { ecn_enabled_ = enabled; }
  bool ecn_enabled() const { return ecn_enabled_; }

  // Conservation audit (compiled out in Release): every packet counted as
  // enqueued must be accounted for as dequeued, dropped from the queue, or
  // still queued — in packets and in bytes. Concrete disciplines call this
  // after every Enqueue/Dequeue.
  void AuditConservation() const {
    ELEMENT_AUDIT(stats_.dropped_packets ==
                  stats_.dropped_pre_queue_packets + stats_.dropped_from_queue_packets)
        << name() << ": drop breakdown out of sync: total=" << stats_.dropped_packets
        << " pre=" << stats_.dropped_pre_queue_packets
        << " from_queue=" << stats_.dropped_from_queue_packets;
    ELEMENT_AUDIT(stats_.enqueued_packets == stats_.dequeued_packets +
                                                 stats_.dropped_from_queue_packets +
                                                 packet_count())
        << name() << ": packet conservation violated: enqueued=" << stats_.enqueued_packets
        << " dequeued=" << stats_.dequeued_packets
        << " dropped_from_queue=" << stats_.dropped_from_queue_packets
        << " in_queue=" << packet_count();
    ELEMENT_AUDIT(byte_count() >= 0)
        << name() << ": negative queue occupancy: " << byte_count();
    ELEMENT_AUDIT(stats_.enqueued_bytes ==
                  stats_.dequeued_bytes + stats_.dropped_from_queue_bytes +
                      static_cast<uint64_t>(byte_count()))
        << name() << ": byte conservation violated: enqueued=" << stats_.enqueued_bytes
        << " dequeued=" << stats_.dequeued_bytes
        << " dropped_from_queue=" << stats_.dropped_from_queue_bytes
        << " in_queue=" << byte_count();
  }

  // Test-only: desynchronizes the stats so audit death tests can verify the
  // conservation check actually fires.
  void TestOnlyCorruptStatsForAudit() {
    ++stats_.enqueued_packets;
    stats_.enqueued_bytes += 1;
  }

  // Runs AuditConservation() on every exit path of an Enqueue/Dequeue.
  // Declared at the top of each mutating method; a no-op in Release.
  class ScopedConservationAudit {
   public:
    explicit ScopedConservationAudit(const Qdisc* qdisc) : qdisc_(qdisc) {}
    ~ScopedConservationAudit() { qdisc_->AuditConservation(); }

    ScopedConservationAudit(const ScopedConservationAudit&) = delete;
    ScopedConservationAudit& operator=(const ScopedConservationAudit&) = delete;

   private:
    const Qdisc* qdisc_;
  };

 protected:
  void CountEnqueue(const Packet& pkt) {
    ++stats_.enqueued_packets;
    stats_.enqueued_bytes += pkt.size_bytes;
  }
  void CountDequeue(const Packet& pkt) {
    ++stats_.dequeued_packets;
    stats_.dequeued_bytes += pkt.size_bytes;
  }
  // Drop of a packet that was never admitted (tail/early drop at Enqueue).
  void CountDropPreQueue() {
    ++stats_.dropped_packets;
    ++stats_.dropped_pre_queue_packets;
  }
  // Drop of an admitted packet (AQM head drop at Dequeue, overflow eviction).
  void CountDropFromQueue(const Packet& pkt) {
    ++stats_.dropped_packets;
    ++stats_.dropped_from_queue_packets;
    stats_.dropped_from_queue_bytes += pkt.size_bytes;
  }

  void CountMark() { ++stats_.ecn_marked_packets; }

  // AQM helper: marks the packet if ECN applies (returns true = keep packet),
  // otherwise reports that the caller should drop it (returns false).
  bool MarkInsteadOfDrop(Packet& pkt) {
    if (ecn_enabled_ && pkt.ecn_capable && !pkt.ecn_marked) {
      pkt.ecn_marked = true;
      CountMark();
      return true;
    }
    return false;
  }

  QdiscStats stats_;
  bool ecn_enabled_ = false;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_QDISC_H_
