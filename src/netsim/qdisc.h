// Queueing-discipline interface plus shared statistics. Concrete disciplines
// (PfifoFast, CoDel, FqCoDel, Pie) mirror the Linux qdiscs the paper evaluates
// in Sections 2.2 and 5.

#ifndef ELEMENT_SRC_NETSIM_QDISC_H_
#define ELEMENT_SRC_NETSIM_QDISC_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/time.h"
#include "src/netsim/packet.h"

namespace element {

struct QdiscStats {
  uint64_t enqueued_packets = 0;
  uint64_t dequeued_packets = 0;
  uint64_t dropped_packets = 0;
  uint64_t ecn_marked_packets = 0;
  uint64_t enqueued_bytes = 0;
  uint64_t dequeued_bytes = 0;
};

class Qdisc {
 public:
  virtual ~Qdisc() = default;

  // Takes ownership of the packet. Returns false if the packet was dropped.
  virtual bool Enqueue(Packet pkt, SimTime now) = 0;
  // Next packet to transmit, or nullopt if empty. AQMs may drop internally
  // while searching for a survivor.
  virtual std::optional<Packet> Dequeue(SimTime now) = 0;

  virtual size_t packet_count() const = 0;
  virtual int64_t byte_count() const = 0;
  virtual std::string name() const = 0;

  const QdiscStats& stats() const { return stats_; }

  // When enabled, AQM "drop" decisions on ECN-capable packets become CE marks.
  void set_ecn_enabled(bool enabled) { ecn_enabled_ = enabled; }
  bool ecn_enabled() const { return ecn_enabled_; }

 protected:
  void CountEnqueue(const Packet& pkt) {
    ++stats_.enqueued_packets;
    stats_.enqueued_bytes += pkt.size_bytes;
  }
  void CountDequeue(const Packet& pkt) {
    ++stats_.dequeued_packets;
    stats_.dequeued_bytes += pkt.size_bytes;
  }
  void CountDrop() { ++stats_.dropped_packets; }
  void CountMark() { ++stats_.ecn_marked_packets; }

  // AQM helper: marks the packet if ECN applies (returns true = keep packet),
  // otherwise reports that the caller should drop it (returns false).
  bool MarkInsteadOfDrop(Packet& pkt) {
    if (ecn_enabled_ && pkt.ecn_capable && !pkt.ecn_marked) {
      pkt.ecn_marked = true;
      CountMark();
      return true;
    }
    return false;
  }

  QdiscStats stats_;
  bool ecn_enabled_ = false;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_QDISC_H_
