// Queueing-discipline interface plus shared statistics. Concrete disciplines
// (PfifoFast, CoDel, FqCoDel, Pie, Red) mirror the Linux qdiscs the paper
// evaluates in Sections 2.2 and 5.

#ifndef ELEMENT_SRC_NETSIM_QDISC_H_
#define ELEMENT_SRC_NETSIM_QDISC_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/netsim/packet.h"
#include "src/telemetry/metric_registry.h"
#include "src/telemetry/spine.h"

namespace element {

struct QdiscStats {
  uint64_t enqueued_packets = 0;
  uint64_t dequeued_packets = 0;
  uint64_t dropped_packets = 0;  // pre-queue + from-queue
  uint64_t ecn_marked_packets = 0;
  uint64_t enqueued_bytes = 0;
  uint64_t dequeued_bytes = 0;

  // Drop breakdown, needed for conservation auditing: a pre-queue drop
  // (tail drop / early drop at Enqueue) rejects a packet that was never
  // counted as enqueued; a from-queue drop (AQM head drop at Dequeue)
  // removes a packet that was.
  uint64_t dropped_pre_queue_packets = 0;
  uint64_t dropped_from_queue_packets = 0;
  uint64_t dropped_from_queue_bytes = 0;
};

class Qdisc {
 public:
  virtual ~Qdisc() = default;

  // Takes ownership of the packet. Returns false if the packet was dropped.
  virtual bool Enqueue(Packet pkt, SimTime now) = 0;
  // Next packet to transmit, or nullopt if empty. AQMs may drop internally
  // while searching for a survivor.
  virtual std::optional<Packet> Dequeue(SimTime now) = 0;

  virtual size_t packet_count() const = 0;
  virtual int64_t byte_count() const = 0;
  virtual std::string name() const = 0;

  const QdiscStats& stats() const { return stats_; }

  // Routes enqueue/drop/mark events into the run's telemetry spine, tagged
  // with `source_id` (the hop index) so multi-hop topologies stay
  // distinguishable. Unbound qdiscs skip all telemetry work (one compare in
  // the Count* helpers). Virtual so decorators forward to the discipline
  // that actually counts.
  virtual void BindTelemetry(telemetry::TelemetrySpine* spine, uint16_t source_id) {
    spine_ = spine;
    source_id_ = source_id;
  }

  // Mirrors the counters into `registry` under `prefix` (e.g. "qdisc.0."),
  // the end-of-run publication path the runner aggregates.
  void PublishMetrics(telemetry::MetricRegistry* registry, const std::string& prefix) const {
    *registry->Counter(prefix + "enqueued_packets") += stats_.enqueued_packets;
    *registry->Counter(prefix + "dequeued_packets") += stats_.dequeued_packets;
    *registry->Counter(prefix + "dropped_packets") += stats_.dropped_packets;
    *registry->Counter(prefix + "ecn_marked_packets") += stats_.ecn_marked_packets;
    *registry->Counter(prefix + "enqueued_bytes") += stats_.enqueued_bytes;
    *registry->Counter(prefix + "dequeued_bytes") += stats_.dequeued_bytes;
  }

  // When enabled, AQM "drop" decisions on ECN-capable packets become CE marks.
  void set_ecn_enabled(bool enabled) { ecn_enabled_ = enabled; }
  bool ecn_enabled() const { return ecn_enabled_; }

  // Conservation audit (compiled out in Release): every packet counted as
  // enqueued must be accounted for as dequeued, dropped from the queue, or
  // still queued — in packets and in bytes. Concrete disciplines call this
  // after every Enqueue/Dequeue.
  void AuditConservation() const {
    ELEMENT_AUDIT(stats_.dropped_packets ==
                  stats_.dropped_pre_queue_packets + stats_.dropped_from_queue_packets)
        << name() << ": drop breakdown out of sync: total=" << stats_.dropped_packets
        << " pre=" << stats_.dropped_pre_queue_packets
        << " from_queue=" << stats_.dropped_from_queue_packets;
    ELEMENT_AUDIT(stats_.enqueued_packets == stats_.dequeued_packets +
                                                 stats_.dropped_from_queue_packets +
                                                 packet_count())
        << name() << ": packet conservation violated: enqueued=" << stats_.enqueued_packets
        << " dequeued=" << stats_.dequeued_packets
        << " dropped_from_queue=" << stats_.dropped_from_queue_packets
        << " in_queue=" << packet_count();
    ELEMENT_AUDIT(byte_count() >= 0)
        << name() << ": negative queue occupancy: " << byte_count();
    ELEMENT_AUDIT(stats_.enqueued_bytes ==
                  stats_.dequeued_bytes + stats_.dropped_from_queue_bytes +
                      static_cast<uint64_t>(byte_count()))
        << name() << ": byte conservation violated: enqueued=" << stats_.enqueued_bytes
        << " dequeued=" << stats_.dequeued_bytes
        << " dropped_from_queue=" << stats_.dropped_from_queue_bytes
        << " in_queue=" << byte_count();
  }

  // Test-only: desynchronizes the stats so audit death tests can verify the
  // conservation check actually fires.
  void TestOnlyCorruptStatsForAudit() {
    ++stats_.enqueued_packets;
    stats_.enqueued_bytes += 1;
  }

  // Runs AuditConservation() on every exit path of an Enqueue/Dequeue.
  // Declared at the top of each mutating method; a no-op in Release.
  class ScopedConservationAudit {
   public:
    explicit ScopedConservationAudit(const Qdisc* qdisc) : qdisc_(qdisc) {}
    ~ScopedConservationAudit() { qdisc_->AuditConservation(); }

    ScopedConservationAudit(const ScopedConservationAudit&) = delete;
    ScopedConservationAudit& operator=(const ScopedConservationAudit&) = delete;

   private:
    const Qdisc* qdisc_;
  };

 protected:
  void CountEnqueue(const Packet& pkt, SimTime now) {
    ++stats_.enqueued_packets;
    stats_.enqueued_bytes += pkt.size_bytes;
    EmitRecord(telemetry::RecordKind::kQdiscEnqueue, pkt, now, 0);
  }
  void CountDequeue(const Packet& pkt, SimTime /*now*/) {
    ++stats_.dequeued_packets;
    stats_.dequeued_bytes += pkt.size_bytes;
  }
  // Drop of a packet that was never admitted (tail/early drop at Enqueue).
  void CountDropPreQueue(const Packet& pkt, SimTime now) {
    ++stats_.dropped_packets;
    ++stats_.dropped_pre_queue_packets;
    EmitRecord(telemetry::RecordKind::kQdiscDrop, pkt, now, 0);
  }
  // Drop of an admitted packet (AQM head drop at Dequeue, overflow eviction).
  void CountDropFromQueue(const Packet& pkt, SimTime now) {
    ++stats_.dropped_packets;
    ++stats_.dropped_from_queue_packets;
    stats_.dropped_from_queue_bytes += pkt.size_bytes;
    EmitRecord(telemetry::RecordKind::kQdiscDrop, pkt, now, telemetry::kFlagFromQueue);
  }

  void CountMark(const Packet& pkt, SimTime now) {
    ++stats_.ecn_marked_packets;
    EmitRecord(telemetry::RecordKind::kQdiscMark, pkt, now, 0);
  }

  // AQM helper: marks the packet if ECN applies (returns true = keep packet),
  // otherwise reports that the caller should drop it (returns false).
  bool MarkInsteadOfDrop(Packet& pkt, SimTime now) {
    if (ecn_enabled_ && pkt.ecn_capable && !pkt.ecn_marked) {
      pkt.ecn_marked = true;
      CountMark(pkt, now);
      return true;
    }
    return false;
  }

  QdiscStats stats_;
  bool ecn_enabled_ = false;

 private:
  void EmitRecord(telemetry::RecordKind kind, const Packet& pkt, SimTime now, uint8_t flags) {
    if (spine_ == nullptr || !spine_->recording()) {
      return;
    }
    telemetry::TraceRecord r;
    r.t = now;
    r.flow_id = pkt.flow_id;
    r.kind = kind;
    r.flags = flags;
    r.source = source_id_;
    r.size = pkt.size_bytes;
    spine_->Dispatch(r);
  }

  telemetry::TelemetrySpine* spine_ = nullptr;
  uint16_t source_id_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_QDISC_H_
