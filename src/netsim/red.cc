#include "src/netsim/red.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace element {

Red::Red(const RedParams& params, Rng rng) : params_(params), rng_(std::move(rng)) {}

double Red::CurrentDropProbability() const {
  if (avg_queue_ < params_.min_threshold_packets) {
    return 0.0;
  }
  if (avg_queue_ >= params_.max_threshold_packets) {
    return 1.0;
  }
  double base = params_.max_drop_probability * (avg_queue_ - params_.min_threshold_packets) /
                (params_.max_threshold_packets - params_.min_threshold_packets);
  // Gentle uniformization: spread drops out over the inter-drop interval.
  double denom = 1.0 - static_cast<double>(std::max(count_since_drop_, 0)) * base;
  if (denom <= base) {
    return 1.0;
  }
  return base / denom;
}

bool Red::Enqueue(Packet pkt, SimTime now) {
  ScopedConservationAudit audit(this);
  // EWMA of the instantaneous queue; an idle period decays it toward zero
  // (approximation of the m-packet idle correction).
  if (idle_) {
    TimeDelta idle_time = now - idle_since_;
    double decay_steps = idle_time.ToSeconds() / 0.001;  // ~1 small pkt / ms
    avg_queue_ *= std::pow(1.0 - params_.queue_weight, std::max(0.0, decay_steps));
    idle_ = false;
  }
  avg_queue_ = (1.0 - params_.queue_weight) * avg_queue_ +
               params_.queue_weight * static_cast<double>(queue_.size());

  if (queue_.size() >= params_.limit_packets) {
    CountDropPreQueue(pkt, now);
    count_since_drop_ = 0;
    return false;
  }
  double p = CurrentDropProbability();
  if (p > 0.0 && rng_.Bernoulli(p)) {
    if (!MarkInsteadOfDrop(pkt, now)) {
      CountDropPreQueue(pkt, now);
      count_since_drop_ = 0;
      return false;
    }
    count_since_drop_ = 0;
  } else if (count_since_drop_ >= 0) {
    ++count_since_drop_;
  }

  pkt.enqueued = now;
  bytes_ += pkt.size_bytes;
  CountEnqueue(pkt, now);
  queue_.push_back(std::move(pkt));
  return true;
}

std::optional<Packet> Red::Dequeue(SimTime now) {
  ScopedConservationAudit audit(this);
  if (queue_.empty()) {
    if (!idle_) {
      idle_ = true;
      idle_since_ = now;
    }
    return std::nullopt;
  }
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  bytes_ -= pkt.size_bytes;
  if (queue_.empty()) {
    idle_ = true;
    idle_since_ = now;
  }
  CountDequeue(pkt, now);
  return pkt;
}

}  // namespace element
