// Linux's default qdisc: three strict-priority FIFO bands with a shared
// packet-count limit (txqueuelen). This is the discipline under which the
// paper observes the worst bufferbloat (Figure 2).

#ifndef ELEMENT_SRC_NETSIM_PFIFO_FAST_H_
#define ELEMENT_SRC_NETSIM_PFIFO_FAST_H_

#include <array>
#include <deque>

#include "src/netsim/qdisc.h"

namespace element {

class PfifoFast : public Qdisc {
 public:
  explicit PfifoFast(size_t limit_packets = 1000);

  bool Enqueue(Packet pkt, SimTime now) override;
  std::optional<Packet> Dequeue(SimTime now) override;
  size_t packet_count() const override { return total_packets_; }
  int64_t byte_count() const override { return total_bytes_; }
  std::string name() const override { return "pfifo_fast"; }

  size_t limit_packets() const { return limit_; }

 private:
  static constexpr size_t kBands = 3;

  size_t limit_;
  size_t total_packets_ = 0;
  int64_t total_bytes_ = 0;
  std::array<std::deque<Packet>, kBands> bands_;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_PFIFO_FAST_H_
