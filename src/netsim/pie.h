// PIE — Proportional Integral controller Enhanced (RFC 8033). Probabilistic
// drops at enqueue driven by an estimated queueing delay. AQM baseline in
// Figure 3.

#ifndef ELEMENT_SRC_NETSIM_PIE_H_
#define ELEMENT_SRC_NETSIM_PIE_H_

#include <deque>

#include "src/common/rng.h"
#include "src/netsim/qdisc.h"

namespace element {

struct PieParams {
  TimeDelta target = TimeDelta::FromMillis(15);
  TimeDelta update_interval = TimeDelta::FromMillis(15);
  TimeDelta burst_allowance = TimeDelta::FromMillis(150);
  double alpha = 0.125;  // 1/s of delay error
  double beta = 1.25;
  size_t limit_packets = 1000;
};

class Pie : public Qdisc {
 public:
  Pie(const PieParams& params, Rng rng);
  explicit Pie(Rng rng) : Pie(PieParams(), std::move(rng)) {}

  bool Enqueue(Packet pkt, SimTime now) override;
  std::optional<Packet> Dequeue(SimTime now) override;
  size_t packet_count() const override { return queue_.size(); }
  int64_t byte_count() const override { return bytes_; }
  std::string name() const override { return "pie"; }

  double drop_probability() const { return drop_prob_; }

 private:
  void MaybeUpdateProbability(SimTime now);
  TimeDelta EstimateQueueDelay() const;

  PieParams params_;
  Rng rng_;
  std::deque<Packet> queue_;
  int64_t bytes_ = 0;

  double drop_prob_ = 0.0;
  TimeDelta qdelay_old_ = TimeDelta::Zero();
  SimTime last_update_ = SimTime::Zero();
  TimeDelta burst_left_ = TimeDelta::Zero();
  bool first_update_done_ = false;

  // Departure-rate estimation (simplified RFC 8033 §5.2): EWMA of the rate
  // observed between dequeues while the queue is non-trivial.
  double avg_drain_rate_bytes_per_sec_ = 0.0;
  SimTime last_dequeue_ = SimTime::Zero();
  bool have_last_dequeue_ = false;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_PIE_H_
