// CoDel active queue management (Nichols & Jacobson, RFC 8289): drops based
// on packet sojourn time with an inverse-sqrt control law. One of the AQM
// baselines in Figure 3 and the qdisc used in the VR experiment (Figure 18).

#ifndef ELEMENT_SRC_NETSIM_CODEL_H_
#define ELEMENT_SRC_NETSIM_CODEL_H_

#include <deque>

#include "src/netsim/qdisc.h"

namespace element {

struct CoDelParams {
  TimeDelta target = TimeDelta::FromMillis(5);
  TimeDelta interval = TimeDelta::FromMillis(100);
  size_t limit_packets = 1000;
};

// CoDel control state, reusable by FqCoDel for its per-flow queues.
class CoDelState {
 public:
  explicit CoDelState(const CoDelParams& params) : params_(params) {}

  // Decides the fate of a packet whose sojourn time is known, at dequeue.
  // Returns true if the packet should be dropped (caller may convert the
  // drop to an ECN mark).
  bool ShouldDrop(TimeDelta sojourn, SimTime now, size_t queued_bytes);

  const CoDelParams& params() const { return params_; }
  uint32_t drop_count() const { return count_; }
  bool dropping() const { return dropping_; }

 private:
  SimTime ControlLawNext(SimTime t) const;

  CoDelParams params_;
  bool first_above_valid_ = false;
  SimTime first_above_time_ = SimTime::Zero();
  SimTime drop_next_ = SimTime::Zero();
  uint32_t count_ = 0;
  uint32_t last_count_ = 0;
  bool dropping_ = false;
  bool was_above_ = false;
};

class CoDel : public Qdisc {
 public:
  explicit CoDel(const CoDelParams& params = CoDelParams());

  bool Enqueue(Packet pkt, SimTime now) override;
  std::optional<Packet> Dequeue(SimTime now) override;
  size_t packet_count() const override { return queue_.size(); }
  int64_t byte_count() const override { return bytes_; }
  std::string name() const override { return "codel"; }

 private:
  CoDelParams params_;
  CoDelState state_;
  std::deque<Packet> queue_;
  int64_t bytes_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_NETSIM_CODEL_H_
