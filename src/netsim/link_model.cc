#include "src/netsim/link_model.h"

#include <algorithm>
#include <utility>

namespace element {

FixedLinkModel::FixedLinkModel(DataRate rate, TimeDelta prop_delay, double loss_prob)
    : rate_(rate), prop_delay_(prop_delay), loss_prob_(loss_prob) {}

DataRate FixedLinkModel::RateAt(SimTime /*now*/) { return rate_; }

bool FixedLinkModel::DropOnWire(Rng& rng, SimTime /*now*/) {
  return loss_prob_ > 0.0 && rng.Bernoulli(loss_prob_);
}

SteppedLinkModel::SteppedLinkModel(std::vector<Step> steps, TimeDelta prop_delay,
                                   double loss_prob)
    : steps_(std::move(steps)), prop_delay_(prop_delay), loss_prob_(loss_prob) {
  cycle_ = TimeDelta::Zero();
  for (const Step& s : steps_) {
    cycle_ += s.duration;
  }
}

DataRate SteppedLinkModel::RateAt(SimTime now) {
  if (steps_.empty() || cycle_ <= TimeDelta::Zero()) {
    return DataRate::Zero();
  }
  int64_t pos = now.nanos() % cycle_.nanos();
  for (const Step& s : steps_) {
    if (pos < s.duration.nanos()) {
      return s.rate;
    }
    pos -= s.duration.nanos();
  }
  return steps_.back().rate;
}

bool SteppedLinkModel::DropOnWire(Rng& rng, SimTime /*now*/) {
  return loss_prob_ > 0.0 && rng.Bernoulli(loss_prob_);
}

CableLinkModel::CableLinkModel(DataRate rate, TimeDelta prop_delay, Rng rng)
    : rate_(rate), prop_delay_(prop_delay), rng_(std::move(rng)) {}

DataRate CableLinkModel::RateAt(SimTime /*now*/) { return rate_; }

TimeDelta CableLinkModel::JitterFor(Rng& rng) {
  // DOCSIS request/grant cycles add sub-millisecond scheduling jitter.
  return TimeDelta::FromSeconds(rng.Exponential(0.0004));
}

bool CableLinkModel::DropOnWire(Rng& rng, SimTime /*now*/) { return rng.Bernoulli(0.00005); }

WifiLinkModel::WifiLinkModel(Rng rng, DataRate mean_rate, TimeDelta prop_delay)
    : rng_(std::move(rng)), mean_rate_(mean_rate), prop_delay_(prop_delay) {}

void WifiLinkModel::MaybeTransition(SimTime now) {
  while (now >= next_transition_) {
    // Rate adaptation: pick an MCS-style factor; dwell ~100-400 ms.
    static constexpr double kFactors[] = {0.35, 0.6, 0.85, 1.0, 1.15, 1.3};
    rate_factor_ = kFactors[rng_.UniformInt(0, 5)];
    // Loss process: mostly good state; occasional fade burst.
    if (loss_burst_) {
      loss_burst_ = rng_.Bernoulli(0.35);  // bursts persist briefly
    } else {
      loss_burst_ = rng_.Bernoulli(0.04);
    }
    next_transition_ = next_transition_ + TimeDelta::FromSeconds(rng_.Uniform(0.1, 0.4));
  }
}

DataRate WifiLinkModel::RateAt(SimTime now) {
  MaybeTransition(now);
  return mean_rate_ * rate_factor_;
}

TimeDelta WifiLinkModel::JitterFor(Rng& rng) {
  // CSMA contention + aggregation delay, heavy-ish tail.
  return TimeDelta::FromSeconds(std::min(rng.Exponential(0.0012), 0.02));
}

bool WifiLinkModel::DropOnWire(Rng& rng, SimTime /*now*/) {
  return rng.Bernoulli(loss_burst_ ? 0.02 : 0.0005);
}

LteLinkModel::LteLinkModel(Rng rng, DataRate mean_rate, TimeDelta prop_delay)
    : rng_(std::move(rng)), mean_rate_(mean_rate), prop_delay_(prop_delay) {}

void LteLinkModel::MaybeTransition(SimTime now) {
  while (now >= next_transition_) {
    // Channel quality random walk, clipped; dwell ~200-800 ms.
    double step = rng_.Normal(0.0, 0.15);
    rate_factor_ = std::clamp(rate_factor_ + step, 0.4, 1.6);
    next_transition_ = next_transition_ + TimeDelta::FromSeconds(rng_.Uniform(0.2, 0.8));
  }
}

DataRate LteLinkModel::RateAt(SimTime now) {
  MaybeTransition(now);
  return mean_rate_ * rate_factor_;
}

TimeDelta LteLinkModel::JitterFor(Rng& rng) {
  // Scheduler TTI alignment + HARQ retransmissions.
  double base = rng.Uniform(0.0, 0.001);
  if (rng.Bernoulli(0.05)) {
    base += 0.008;  // one HARQ round trip
  }
  return TimeDelta::FromSeconds(base);
}

bool LteLinkModel::DropOnWire(Rng& rng, SimTime /*now*/) {
  // HARQ hides nearly all radio loss from IP.
  return rng.Bernoulli(0.00002);
}

}  // namespace element
