#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace element {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::Stdev() const { return std::sqrt(Variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::Merge(const SampleSet& other) {
  if (other.samples_.empty()) {
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_valid_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double v : samples_) {
    s += v;
  }
  return s / static_cast<double>(samples_.size());
}

double SampleSet::Stdev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  double m = mean();
  double s = 0.0;
  for (double v : samples_) {
    s += (v - m) * (v - m);
  }
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleSet::max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

void SampleSet::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::Quantile(double q) const {
  EnsureSorted();
  if (sorted_.empty()) {
    ELEMENT_DCHECK(false) << "SampleSet::Quantile(" << q << ") on an empty set";
    return 0.0;
  }
  if (q <= 0.0) {
    return sorted_.front();
  }
  if (q >= 1.0) {
    return sorted_.back();
  }
  double pos = q * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) {
    return sorted_.back();
  }
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double SampleSet::FractionBelow(double x) const {
  EnsureSorted();
  if (sorted_.empty()) {
    return 0.0;
  }
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::string SampleSet::CdfRows(const std::vector<double>& quantiles,
                               const std::string& label) const {
  std::ostringstream os;
  for (double q : quantiles) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-28s p%-5.1f %.6f\n", label.c_str(), q * 100.0,
                  Quantile(q));
    os << buf;
  }
  return os.str();
}

Histogram::Histogram(double floor, double ceiling, int bins_per_decade)
    : floor_(floor), ceiling_(ceiling), bins_per_decade_(bins_per_decade) {
  ELEMENT_CHECK(floor > 0.0 && ceiling > floor && bins_per_decade > 0)
      << "bad histogram geometry: [" << floor << ", " << ceiling << ") x " << bins_per_decade;
  log_floor_ = std::log10(floor_);
  double decades = std::log10(ceiling_) - log_floor_;
  size_t nbins = static_cast<size_t>(std::ceil(decades * bins_per_decade_ - 1e-9));
  bins_.assign(nbins, 0);
}

void Histogram::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  if (!(x >= floor_)) {  // also catches x <= 0 and NaN
    ++underflow_;
    return;
  }
  if (x >= ceiling_) {
    ++overflow_;
    return;
  }
  double pos = (std::log10(x) - log_floor_) * static_cast<double>(bins_per_decade_);
  size_t idx = pos <= 0.0 ? 0 : static_cast<size_t>(pos);
  if (idx >= bins_.size()) {  // log10 rounding at the top edge
    idx = bins_.size() - 1;
  }
  ++bins_[idx];
}

bool Histogram::SameGeometry(const Histogram& other) const {
  return floor_ == other.floor_ && ceiling_ == other.ceiling_ &&
         bins_per_decade_ == other.bins_per_decade_;
}

void Histogram::Merge(const Histogram& other) {
  ELEMENT_CHECK(SameGeometry(other))
      << "Histogram::Merge with mismatched geometry: [" << floor_ << ", " << ceiling_ << ") x "
      << bins_per_decade_ << " vs [" << other.floor_ << ", " << other.ceiling_ << ") x "
      << other.bins_per_decade_;
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::BinLowerEdge(size_t i) const {
  return std::pow(10.0, log_floor_ + static_cast<double>(i) / bins_per_decade_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    ELEMENT_DCHECK(false) << "Histogram::Quantile(" << q << ") on an empty histogram";
    return 0.0;
  }
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  // Rank of the requested order statistic (1-based).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_)) + 1;
  if (rank > count_) {
    rank = count_;
  }
  double value;
  if (rank <= underflow_) {
    value = min_;
  } else {
    uint64_t cum = underflow_;
    size_t i = 0;
    for (; i < bins_.size(); ++i) {
      if (cum + bins_[i] >= rank) {
        break;
      }
      cum += bins_[i];
    }
    if (i == bins_.size()) {
      value = max_;  // rank lands in the overflow region
    } else {
      // Geometric interpolation across the bin by rank fraction.
      double frac =
          static_cast<double>(rank - cum) / static_cast<double>(bins_[i]);
      double lo = std::log10(BinLowerEdge(i));
      double hi = lo + 1.0 / static_cast<double>(bins_per_decade_);
      value = std::pow(10.0, lo + (hi - lo) * frac);
    }
  }
  return std::min(std::max(value, min_), max_);
}

void TimeSeries::Add(SimTime t, double v) { points_.push_back({t, v}); }

bool TimeSeries::InterpolateAt(SimTime t, double* out) const {
  if (points_.empty()) {
    return false;
  }
  if (t <= points_.front().t) {
    *out = points_.front().v;
    return true;
  }
  if (t >= points_.back().t) {
    *out = points_.back().v;
    return true;
  }
  auto it = std::lower_bound(points_.begin(), points_.end(), t,
                             [](const Point& p, SimTime when) { return p.t < when; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  TimeDelta span = hi.t - lo.t;
  if (span.nanos() <= 0) {
    *out = lo.v;
    return true;
  }
  double frac = (t - lo.t) / span;
  *out = lo.v * (1.0 - frac) + hi.v * frac;
  return true;
}

RunningStats TimeSeries::Summary() const {
  RunningStats rs;
  for (const Point& p : points_) {
    rs.Add(p.v);
  }
  return rs;
}

double TimeSeries::MeanAfter(SimTime from) const {
  RunningStats rs;
  for (const Point& p : points_) {
    if (p.t >= from) {
      rs.Add(p.v);
    }
  }
  return rs.mean();
}

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      os << cell;
      for (size_t pad = cell.size(); pad < widths[i] + 2; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

}  // namespace element
