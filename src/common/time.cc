#include "src/common/time.h"

#include <cstdio>

namespace element {

std::string TimeDelta::ToString() const {
  char buf[64];
  if (IsInfinite()) {
    return "+inf";
  }
  if (ns_ >= 1000000 || ns_ <= -1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMillisF());
  } else {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns_));
  }
  return buf;
}

std::string SimTime::ToString() const {
  char buf[64];
  if (IsInfinite()) {
    return "+inf";
  }
  std::snprintf(buf, sizeof(buf), "%.6fs", ToSeconds());
  return buf;
}

}  // namespace element
