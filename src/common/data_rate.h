// Strong type for link / transfer rates, with helpers to convert between
// rates, byte counts, and transmission times.

#ifndef ELEMENT_SRC_COMMON_DATA_RATE_H_
#define ELEMENT_SRC_COMMON_DATA_RATE_H_

#include <compare>
#include <cstdint>

#include "src/common/time.h"

namespace element {

class DataRate {
 public:
  constexpr DataRate() = default;

  static constexpr DataRate BitsPerSecond(double bps) { return DataRate(bps); }
  static constexpr DataRate Kbps(double kbps) { return DataRate(kbps * 1e3); }
  static constexpr DataRate Mbps(double mbps) { return DataRate(mbps * 1e6); }
  static constexpr DataRate Gbps(double gbps) { return DataRate(gbps * 1e9); }
  static constexpr DataRate BytesPerSecond(double bytes_per_sec) {
    return DataRate(bytes_per_sec * 8.0);
  }
  static constexpr DataRate Zero() { return DataRate(0.0); }

  constexpr double bps() const { return bps_; }
  constexpr double ToMbps() const { return bps_ / 1e6; }
  constexpr double BytesPerSec() const { return bps_ / 8.0; }
  constexpr bool IsZero() const { return bps_ <= 0.0; }

  // Time to serialize `bytes` onto a link of this rate.
  constexpr TimeDelta TransmitTime(int64_t bytes) const {
    if (bps_ <= 0.0) {
      return TimeDelta::Infinite();
    }
    return TimeDelta::FromSeconds(static_cast<double>(bytes) * 8.0 / bps_);
  }

  // Bytes delivered over `d` at this rate.
  constexpr double BytesIn(TimeDelta d) const { return BytesPerSec() * d.ToSeconds(); }

  constexpr DataRate operator*(double f) const { return DataRate(bps_ * f); }
  constexpr DataRate operator+(DataRate o) const { return DataRate(bps_ + o.bps_); }
  constexpr auto operator<=>(const DataRate&) const = default;

 private:
  explicit constexpr DataRate(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

// Rate observed from a byte count over an interval.
inline DataRate RateOver(int64_t bytes, TimeDelta interval) {
  if (interval <= TimeDelta::Zero()) {
    return DataRate::Zero();
  }
  return DataRate::BytesPerSecond(static_cast<double>(bytes) / interval.ToSeconds());
}

}  // namespace element

#endif  // ELEMENT_SRC_COMMON_DATA_RATE_H_
