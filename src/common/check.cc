#include "src/common/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace element {
namespace internal {

CheckFailure::CheckFailure(const char* kind, const char* file, int line,
                           const char* condition) {
  stream_ << kind << " failed at " << file << ":" << line << ": " << condition;
}

CheckFailure::~CheckFailure() {
  std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace element
