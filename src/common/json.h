// Minimal JSON support shared by the whole simulator (scenario suites, fleet
// reports, trace export, telemetry snapshots): a recursive-descent parser
// into a tagged Value tree (objects, arrays, strings, numbers, booleans,
// null) and a deterministic writer. No external dependency. Object keys are
// kept in sorted order, so serializing the same data always yields the same
// bytes — the property the fleet's "byte-identical aggregate across --jobs"
// contract rests on.

#ifndef ELEMENT_SRC_COMMON_JSON_H_
#define ELEMENT_SRC_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace element {
namespace json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double v);
  static Value Int(int64_t v);
  static Value Str(std::string s);
  static Value Array();
  static Value Object();

  // Parses `text`; on failure returns false and describes the problem
  // (with offset) in *error.
  static bool Parse(const std::string& text, Value* out, std::string* error);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool def = false) const { return is_bool() ? bool_ : def; }
  double AsDouble(double def = 0.0) const { return is_number() ? number_ : def; }
  int64_t AsInt(int64_t def = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : def;
  }
  const std::string& AsString(const std::string& def = "") const {
    return is_string() ? string_ : def;
  }

  const std::vector<Value>& items() const { return array_; }
  const std::map<std::string, Value>& fields() const { return object_; }

  // Object lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  // Mutation helpers for building documents.
  void Append(Value v);                       // array
  void Set(const std::string& key, Value v);  // object

  // Serializes with stable formatting: sorted keys, numbers via shortest
  // round-trip-ish "%.17g" trimmed through a fixed rule (see json.cc).
  // `indent` < 0 emits compact one-line JSON.
  std::string Dump(int indent = 2) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

// Formats a double deterministically (used by Dump and by result writers that
// emit numbers outside a Value tree). Integral values print without a decimal
// point; others use round-trip precision.
std::string FormatNumber(double v);

}  // namespace json
}  // namespace element

#endif  // ELEMENT_SRC_COMMON_JSON_H_
