// Minimal command-line flag parser for the example/CLI binaries:
// `--name value` and `--name=value` forms, typed getters with defaults, and
// leftover positional arguments.

#ifndef ELEMENT_SRC_COMMON_FLAGS_H_
#define ELEMENT_SRC_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace element {

class Flags {
 public:
  // Parses argv; returns false (and sets error()) on a malformed flag
  // (missing value at end of line).
  bool Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string GetString(const std::string& name, const std::string& def = "") const;
  double GetDouble(const std::string& name, double def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  // A bare `--name` (no value) or `--name true|1` is true.
  bool GetBool(const std::string& name, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  // Names seen during parsing but never read by a Get*: typo detection.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace element

#endif  // ELEMENT_SRC_COMMON_FLAGS_H_
