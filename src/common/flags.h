// Minimal command-line flag parser for the example/CLI binaries:
// `--name value` and `--name=value` forms, typed getters with defaults, and
// leftover positional arguments.

#ifndef ELEMENT_SRC_COMMON_FLAGS_H_
#define ELEMENT_SRC_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace element {

class Flags {
 public:
  // Parses argv; returns false (and sets error()) on a malformed flag
  // (missing value at end of line).
  bool Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string GetString(const std::string& name, const std::string& def = "") const;
  double GetDouble(const std::string& name, double def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  // A bare `--name` (no value) or `--name true|1` is true.
  bool GetBool(const std::string& name, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  // Names seen during parsing but never read by a Get*: typo detection.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
  std::string error_;
};

// Worker-count default for parallel drivers: the ELEMENT_JOBS environment
// variable when set to a positive integer, else hardware_concurrency()
// (minimum 1 when the runtime reports 0).
int DefaultJobs();

// The standard fleet-runner flag set, shared by `element_fleet` and any other
// sweep-driving binary.
struct RunnerFlags {
  int jobs = 1;               // --jobs, ELEMENT_JOBS env fallback, DefaultJobs()
  uint64_t seed_offset = 0;   // --seed, added to every expanded scenario seed
  std::string out;            // --out, results JSON path ("" = stdout)
  std::string scenarios;      // --scenarios, suite spec path
};
RunnerFlags ParseRunnerFlags(const Flags& flags);

}  // namespace element

#endif  // ELEMENT_SRC_COMMON_FLAGS_H_
