#include "src/common/flags.h"

#include <cstdlib>
#include <thread>

namespace element {

bool Flags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
  return true;
}

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  read_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

double Flags::GetDouble(const std::string& name, double def) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? def : v;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? def : static_cast<int64_t>(v);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  read_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

int DefaultJobs() {
  if (const char* env = std::getenv("ELEMENT_JOBS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) {
      return static_cast<int>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

RunnerFlags ParseRunnerFlags(const Flags& flags) {
  RunnerFlags out;
  out.jobs = static_cast<int>(flags.GetInt("jobs", DefaultJobs()));
  if (out.jobs < 1) {
    out.jobs = 1;
  }
  out.seed_offset = static_cast<uint64_t>(flags.GetInt("seed", 0));
  out.out = flags.GetString("out", "");
  out.scenarios = flags.GetString("scenarios", "");
  return out;
}

std::vector<std::string> Flags::UnusedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (read_.find(name) == read_.end()) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace element
