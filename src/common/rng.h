// Deterministic random number generator used throughout the simulator.
//
// Every experiment takes an explicit seed so that runs are reproducible;
// components that need independent streams Fork() a child generator.
//
// Rng is NOT thread-safe: every draw mutates the engine state, and concurrent
// draws would both race and destroy reproducibility. Parallel drivers (the
// src/runner/ fleet) must give each worker its own generator derived from the
// scenario seed — fork per unit of work, never share an instance across
// threads.

#ifndef ELEMENT_SRC_COMMON_RNG_H_
#define ELEMENT_SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>

#include "src/common/check.h"

namespace element {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Independent child stream derived from this generator's state.
  Rng Fork() { return Rng(engine_()); }

  double Uniform() { return uniform_(engine_); }  // [0, 1)
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }
  int64_t UniformInt(int64_t lo, int64_t hi) {  // inclusive range
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  bool Bernoulli(double p) { return Uniform() < p; }
  double Exponential(double mean) {
    ELEMENT_DCHECK(mean > 0.0) << "Exponential() needs a positive mean, got " << mean;
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  // Normal clipped at zero; convenient for jitter terms.
  double NonNegNormal(double mean, double stddev) {
    double v = Normal(mean, stddev);
    return v < 0.0 ? 0.0 : v;
  }
  double Pareto(double scale, double shape) {
    ELEMENT_DCHECK(shape > 0.0) << "Pareto() needs a positive shape, got " << shape;
    // Uniform() draws from [0, 1), but uniform_real_distribution may round up
    // to exactly 1.0 (LWG 2524), which would divide by pow(0, 1/shape) = 0.
    // Clamp the survival probability away from zero; the clamp caps the tail
    // at scale * 1e12^(1/shape), far beyond any simulated delay.
    double survival = 1.0 - Uniform();
    if (survival < 1e-12) {
      survival = 1e-12;
    }
    return scale / std::pow(survival, 1.0 / shape);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace element

#endif  // ELEMENT_SRC_COMMON_RNG_H_
