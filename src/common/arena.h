// Fixed-block free-list arena for per-loop object recycling.
//
// The simulator's steady-state forwarding path allocates one protocol payload
// per packet (TcpSegmentPayload / UdpDatagramPayload, held by shared_ptr
// inside Packet). Each EventLoop owns one FreeListArena; payloads are drawn
// from it via ArenaAllocator + std::allocate_shared, so after warm-up the
// payload + control block come off the freelist and return to it when the
// last Packet copy dies — no malloc/free churn per packet.
//
// Rules (see docs/evloop.md):
//   - the arena is single-threaded, like the loop that owns it;
//   - blocks handed out must be freed back before the arena is destroyed
//     (payloads must not outlive their loop);
//   - requests larger than kBlockBytes fall through to the global heap, so
//     oversized payload types degrade gracefully instead of corrupting the
//     freelist.
//
// A debug-build audit (ELEMENT_AUDIT) catches double-frees: returning a block
// already on the freelist aborts with the offending pointer.

#ifndef ELEMENT_SRC_COMMON_ARENA_H_
#define ELEMENT_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"

namespace element {

class FreeListArena {
 public:
  // Covers shared_ptr control block + the largest pooled payload with room
  // to spare; a multiple of the default operator-new alignment.
  static constexpr size_t kBlockBytes = 192;
  static constexpr size_t kBlocksPerChunk = 64;

  FreeListArena() = default;
  FreeListArena(const FreeListArena&) = delete;
  FreeListArena& operator=(const FreeListArena&) = delete;

  void* Allocate(size_t bytes) {
    if (bytes > kBlockBytes) {
      ++oversize_allocs_;
      return ::operator new(bytes);
    }
    ++pool_allocs_;
    if (free_head_ == nullptr) {
      Grow();
    }
    FreeNode* node = free_head_;
    free_head_ = node->next;
    if constexpr (kAuditsEnabled) {
      live_audit_.erase(node);
    }
    return node;
  }

  void Free(void* p, size_t bytes) {
    if (bytes > kBlockBytes) {
      ::operator delete(p);
      return;
    }
    if constexpr (kAuditsEnabled) {
      ELEMENT_AUDIT(live_audit_.insert(p).second)
          << "arena double-free of block " << p;
    }
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = free_head_;
    free_head_ = node;
  }

  // Blocks ever carved from chunks (bounded-growth assertions in tests).
  size_t capacity_blocks() const { return chunks_.size() * kBlocksPerChunk; }
  uint64_t pool_allocs() const { return pool_allocs_; }
  uint64_t oversize_allocs() const { return oversize_allocs_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(sizeof(FreeNode) <= kBlockBytes);
  static_assert(kBlockBytes % alignof(std::max_align_t) == 0);

  void Grow() {
    auto chunk = std::make_unique<unsigned char[]>(kBlockBytes * kBlocksPerChunk);
    for (size_t i = kBlocksPerChunk; i > 0; --i) {
      FreeNode* node = reinterpret_cast<FreeNode*>(chunk.get() + (i - 1) * kBlockBytes);
      node->next = free_head_;
      free_head_ = node;
    }
    chunks_.push_back(std::move(chunk));
  }

  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  FreeNode* free_head_ = nullptr;
  uint64_t pool_allocs_ = 0;
  uint64_t oversize_allocs_ = 0;
  // Debug-only double-free detection: the set of blocks currently free.
  std::unordered_set<void*> live_audit_;
};

// Minimal std allocator over a FreeListArena, for std::allocate_shared.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(FreeListArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) { return static_cast<T*>(arena_->Allocate(n * sizeof(T))); }
  void deallocate(T* p, size_t n) { arena_->Free(p, n * sizeof(T)); }

  FreeListArena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  FreeListArena* arena_;
};

}  // namespace element

#endif  // ELEMENT_SRC_COMMON_ARENA_H_
