// Statistics containers used by the trace/accuracy machinery and by the
// benchmark harnesses: streaming moments (Welford), quantile/CDF sample sets,
// and timestamped series.

#ifndef ELEMENT_SRC_COMMON_STATS_H_
#define ELEMENT_SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace element {

// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;
  double Stdev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores raw samples; answers quantile queries and prints CDF rows.
class SampleSet {
 public:
  void Add(double x);
  // Appends all of `other`'s samples (fleet workers each fill their own set;
  // the coordinator merges in a fixed order so results stay deterministic).
  void Merge(const SampleSet& other);
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double Stdev() const;
  double min() const;
  double max() const;
  // q in [0, 1]; linear interpolation between order statistics. Querying an
  // empty set is a caller bug (DCHECK) but returns a defined 0.0 in release.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  // Fraction of samples <= x.
  double FractionBelow(double x) const;

  const std::vector<double>& samples() const { return samples_; }

  // "q value" rows at the given quantiles, for figure reproduction output.
  std::string CdfRows(const std::vector<double>& quantiles, const std::string& label) const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-geometry log-scale histogram: `bins_per_decade` logarithmic bins per
// decade spanning [floor, ceiling), plus underflow/overflow counters and
// exactly-tracked count/sum/min/max. Two histograms with the same geometry
// Merge() by adding bin counts, which is associative and commutative — the
// property the fleet runner relies on to aggregate per-worker delay
// decompositions into fleet-wide p50/p95/p99 without storing raw samples.
//
// The default geometry covers [1 us, 1000 s) at 32 bins per decade, which
// resolves quantiles to ~7.5% relative error across every delay and error
// magnitude the simulator produces (sub-millisecond LAN delays through
// multi-second bufferbloat).
class Histogram {
 public:
  Histogram() : Histogram(1e-6, 1e3, 32) {}
  // `floor` and `ceiling` must be positive with floor < ceiling.
  Histogram(double floor, double ceiling, int bins_per_decade);

  void Add(double x);
  // Adds `other`'s contents; geometries must match (ELEMENT_CHECK).
  void Merge(const Histogram& other);

  bool SameGeometry(const Histogram& other) const;

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // q in [0, 1]; geometric interpolation inside the selected bin, clamped to
  // the exact [min, max] observed. Empty-input contract matches
  // SampleSet::Quantile (DCHECK + 0.0).
  double Quantile(double q) const;

  const std::vector<uint64_t>& bins() const { return bins_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  // Lower edge of bin i (i == bins().size() yields the ceiling).
  double BinLowerEdge(size_t i) const;

 private:
  double floor_;
  double ceiling_;
  int bins_per_decade_;
  double log_floor_;
  std::vector<uint64_t> bins_;
  uint64_t underflow_ = 0;  // x < floor (including x <= 0)
  uint64_t overflow_ = 0;   // x >= ceiling
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// (time, value) series, e.g. a delay trace. Supports linear interpolation,
// which is how the paper compares ELEMENT samples against ground truth.
class TimeSeries {
 public:
  void Add(SimTime t, double v);

  size_t count() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  struct Point {
    SimTime t;
    double v;
  };
  const std::vector<Point>& points() const { return points_; }

  // Linear interpolation at time t; clamps outside the recorded range.
  // Returns false if the series is empty.
  bool InterpolateAt(SimTime t, double* out) const;

  RunningStats Summary() const;
  // Mean restricted to t >= from (skips e.g. slow-start transients).
  double MeanAfter(SimTime from) const;

 private:
  std::vector<Point> points_;
};

// Pretty table printer shared by the bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

  static std::string Fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace element

#endif  // ELEMENT_SRC_COMMON_STATS_H_
