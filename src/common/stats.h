// Statistics containers used by the trace/accuracy machinery and by the
// benchmark harnesses: streaming moments (Welford), quantile/CDF sample sets,
// and timestamped series.

#ifndef ELEMENT_SRC_COMMON_STATS_H_
#define ELEMENT_SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace element {

// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;
  double Stdev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores raw samples; answers quantile queries and prints CDF rows.
class SampleSet {
 public:
  void Add(double x);
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double Stdev() const;
  double min() const;
  double max() const;
  // q in [0, 1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  // Fraction of samples <= x.
  double FractionBelow(double x) const;

  const std::vector<double>& samples() const { return samples_; }

  // "q value" rows at the given quantiles, for figure reproduction output.
  std::string CdfRows(const std::vector<double>& quantiles, const std::string& label) const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// (time, value) series, e.g. a delay trace. Supports linear interpolation,
// which is how the paper compares ELEMENT samples against ground truth.
class TimeSeries {
 public:
  void Add(SimTime t, double v);

  size_t count() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  struct Point {
    SimTime t;
    double v;
  };
  const std::vector<Point>& points() const { return points_; }

  // Linear interpolation at time t; clamps outside the recorded range.
  // Returns false if the series is empty.
  bool InterpolateAt(SimTime t, double* out) const;

  RunningStats Summary() const;
  // Mean restricted to t >= from (skips e.g. slow-start transients).
  double MeanAfter(SimTime from) const;

 private:
  std::vector<Point> points_;
};

// Pretty table printer shared by the bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

  static std::string Fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace element

#endif  // ELEMENT_SRC_COMMON_STATS_H_
