// Invariant-checking macros for the simulator.
//
//   ELEMENT_CHECK(cond)  — always on; aborts with file:line, the condition
//                          text, and any streamed context.
//   ELEMENT_DCHECK(cond) — debug-only precondition; compiled out under NDEBUG.
//   ELEMENT_AUDIT(cond)  — debug-only *conservation-law* check. Audits are the
//                          simulator's bookkeeping safety net (sequence-space
//                          ordering in tcpsim, enqueue/dequeue/drop
//                          conservation in the qdiscs, clock monotonicity in
//                          evloop, delay-decomposition conservation in
//                          element). They may walk O(n) state, so they compile
//                          to nothing in Release builds.
//
// All three accept streamed context:
//   ELEMENT_CHECK(snd_una_ <= snd_nxt_) << "una=" << snd_una_ << " nxt=" << snd_nxt_;
//
// Streamed arguments are never evaluated when the condition holds (or when
// the macro is compiled out), so context may be arbitrarily expensive.
//
// Audits can be forced into optimized builds with -DELEMENT_FORCE_AUDITS for
// soak runs; `kAuditsEnabled` lets call sites guard O(n) state walks that
// would otherwise run even with the macro disabled.

#ifndef ELEMENT_SRC_COMMON_CHECK_H_
#define ELEMENT_SRC_COMMON_CHECK_H_

#include <sstream>

namespace element {
namespace internal {

// Collects streamed context for a failed check; the destructor prints the
// message and aborts. Only ever constructed on the failure path.
class CheckFailure {
 public:
  CheckFailure(const char* kind, const char* file, int line, const char* condition);
  ~CheckFailure();  // [[noreturn]] in effect: always aborts

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows `<< args` without evaluating anything (dead branch of the ?:).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// `&` binds looser than `<<` and tighter than `?:`, which lets the macros
// below form a void expression out of a stream chain.
class Voidify {
 public:
  void operator&(std::ostream&) {}
  void operator&(NullStream&) {}
};

}  // namespace internal
}  // namespace element

#define ELEMENT_CHECK_IMPL_(kind, cond)                                             \
  (cond) ? (void)0                                                                  \
         : ::element::internal::Voidify() &                                         \
               ::element::internal::CheckFailure(kind, __FILE__, __LINE__, #cond)   \
                   .stream()

// Never evaluates `cond` or the streamed arguments, but keeps them visible to
// the compiler so variables used only in checks do not warn as unused.
#define ELEMENT_EAT_CHECK_(cond)             \
  true ? (void)0                             \
       : ::element::internal::Voidify() &    \
             (::element::internal::NullStream() << !(cond))

#define ELEMENT_CHECK(cond) ELEMENT_CHECK_IMPL_("CHECK", cond)

#if !defined(NDEBUG) || defined(ELEMENT_FORCE_AUDITS)
#define ELEMENT_AUDITS_ENABLED 1
#define ELEMENT_DCHECK(cond) ELEMENT_CHECK_IMPL_("DCHECK", cond)
#define ELEMENT_AUDIT(cond) ELEMENT_CHECK_IMPL_("AUDIT", cond)
#else
#define ELEMENT_AUDITS_ENABLED 0
#define ELEMENT_DCHECK(cond) ELEMENT_EAT_CHECK_(cond)
#define ELEMENT_AUDIT(cond) ELEMENT_EAT_CHECK_(cond)
#endif

namespace element {
// For guarding audit-only state walks:  if constexpr (kAuditsEnabled) { ... }
inline constexpr bool kAuditsEnabled = ELEMENT_AUDITS_ENABLED != 0;
}  // namespace element

#endif  // ELEMENT_SRC_COMMON_CHECK_H_
