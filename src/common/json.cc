#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace element {
namespace json {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

Value Value::Int(int64_t i) { return Number(static_cast<double>(i)); }

Value Value::Str(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

const Value* Value::Find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void Value::Append(Value v) {
  type_ = Type::kArray;
  array_.push_back(std::move(v));
}

void Value::Set(const std::string& key, Value v) {
  type_ = Type::kObject;
  object_[key] = std::move(v);
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Run(Value* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return true;
  }

 private:
  bool Fail(const std::string& why) {
    if (error_ != nullptr) {
      std::ostringstream os;
      os << "JSON parse error at offset " << pos_ << ": " << why;
      *error_ = os.str();
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        // Line comments so suite files can be annotated.
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  bool Peek(char* c) {
    if (pos_ >= text_.size()) {
      return false;
    }
    *c = text_[pos_];
    return true;
  }

  bool Literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, lit) != 0) {
      return Fail(std::string("expected '") + lit + "'");
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(Value* out) {
    char c;
    if (!Peek(&c)) {
      return Fail("unexpected end of input");
    }
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        if (!ParseString(&s)) {
          return false;
        }
        *out = Value::Str(std::move(s));
        return true;
      }
      case 't':
        if (!Literal("true")) {
          return false;
        }
        *out = Value::Bool(true);
        return true;
      case 'f':
        if (!Literal("false")) {
          return false;
        }
        *out = Value::Bool(false);
        return true;
      case 'n':
        if (!Literal("null")) {
          return false;
        }
        *out = Value::Null();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out) {
    ++pos_;  // '{'
    *out = Value::Object();
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Peek(&c) || c != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Peek(&c) || c != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      Value v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->Set(key, std::move(v));
      SkipWs();
      if (!Peek(&c)) {
        return Fail("unterminated object");
      }
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(Value* out) {
    ++pos_;  // '['
    *out = Value::Array();
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      Value v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->Append(std::move(v));
      SkipWs();
      if (!Peek(&c)) {
        return Fail("unterminated array");
      }
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Suite files are ASCII in practice; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape sequence");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      digits = digits || std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0;
      ++pos_;
    }
    if (!digits) {
      return Fail("invalid number");
    }
    std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      return Fail("invalid number");
    }
    *out = Value::Number(v);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpTo(const Value& v, int indent, int depth, std::string* out) {
  const std::string pad =
      indent < 0 ? "" : std::string(static_cast<size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad =
      indent < 0 ? "" : std::string(static_cast<size_t>(indent) * depth, ' ');
  const char* nl = indent < 0 ? "" : "\n";
  switch (v.type()) {
    case Value::Type::kNull:
      out->append("null");
      break;
    case Value::Type::kBool:
      out->append(v.AsBool() ? "true" : "false");
      break;
    case Value::Type::kNumber:
      out->append(FormatNumber(v.AsDouble()));
      break;
    case Value::Type::kString:
      EscapeTo(v.AsString(), out);
      break;
    case Value::Type::kArray: {
      if (v.items().empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      out->append(nl);
      for (size_t i = 0; i < v.items().size(); ++i) {
        out->append(pad);
        DumpTo(v.items()[i], indent, depth + 1, out);
        if (i + 1 < v.items().size()) {
          out->push_back(',');
        }
        out->append(nl);
      }
      out->append(close_pad);
      out->push_back(']');
      break;
    }
    case Value::Type::kObject: {
      if (v.fields().empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      out->append(nl);
      size_t i = 0;
      for (const auto& [key, field] : v.fields()) {
        out->append(pad);
        EscapeTo(key, out);
        out->append(indent < 0 ? ":" : ": ");
        DumpTo(field, indent, depth + 1, out);
        if (++i < v.fields().size()) {
          out->push_back(',');
        }
        out->append(nl);
      }
      out->append(close_pad);
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

bool Value::Parse(const std::string& text, Value* out, std::string* error) {
  Parser p(text, error);
  return p.Run(out);
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, 0, &out);
  return out;
}

std::string FormatNumber(double v) {
  if (std::isnan(v)) {
    return "null";  // JSON has no NaN
  }
  if (std::isinf(v)) {
    return v > 0 ? "1e308" : "-1e308";
  }
  double rounded = std::nearbyint(v);
  if (rounded == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 9; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    char* end = nullptr;
    if (std::strtod(buf, &end) == v) {
      break;
    }
  }
  return buf;
}

}  // namespace json
}  // namespace element
