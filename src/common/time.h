// Strong time types for the discrete-event simulation.
//
// TimeDelta is a signed duration; SimTime is a point on the simulation's
// monotonic clock (nanoseconds since simulation start). Keeping them distinct
// prevents the classic "added two timestamps" family of bugs.

#ifndef ELEMENT_SRC_COMMON_TIME_H_
#define ELEMENT_SRC_COMMON_TIME_H_

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace element {

class TimeDelta {
 public:
  constexpr TimeDelta() = default;

  static constexpr TimeDelta FromNanos(int64_t ns) { return TimeDelta(ns); }
  static constexpr TimeDelta FromMicros(int64_t us) { return TimeDelta(us * 1000); }
  static constexpr TimeDelta FromMillis(int64_t ms) { return TimeDelta(ms * 1000000); }
  static constexpr TimeDelta FromSeconds(double sec) {
    return TimeDelta(static_cast<int64_t>(sec * 1e9));
  }
  static constexpr TimeDelta FromSecondsInt(int64_t sec) { return TimeDelta(sec * 1000000000); }
  static constexpr TimeDelta Zero() { return TimeDelta(0); }
  static constexpr TimeDelta Infinite() {
    return TimeDelta(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t ToMicros() const { return ns_ / 1000; }
  constexpr int64_t ToMillis() const { return ns_ / 1000000; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool IsZero() const { return ns_ == 0; }
  constexpr bool IsInfinite() const { return ns_ == std::numeric_limits<int64_t>::max(); }

  constexpr TimeDelta operator+(TimeDelta other) const { return TimeDelta(ns_ + other.ns_); }
  constexpr TimeDelta operator-(TimeDelta other) const { return TimeDelta(ns_ - other.ns_); }
  constexpr TimeDelta operator-() const { return TimeDelta(-ns_); }
  constexpr TimeDelta operator*(double factor) const {
    return TimeDelta(static_cast<int64_t>(static_cast<double>(ns_) * factor));
  }
  constexpr TimeDelta operator/(int64_t divisor) const { return TimeDelta(ns_ / divisor); }
  constexpr double operator/(TimeDelta other) const {
    return static_cast<double>(ns_) / static_cast<double>(other.ns_);
  }
  TimeDelta& operator+=(TimeDelta other) {
    ns_ += other.ns_;
    return *this;
  }
  TimeDelta& operator-=(TimeDelta other) {
    ns_ -= other.ns_;
    return *this;
  }

  constexpr auto operator<=>(const TimeDelta&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr TimeDelta(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime FromNanos(int64_t ns) { return SimTime(ns); }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Infinite() {
    return SimTime(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr bool IsInfinite() const { return ns_ == std::numeric_limits<int64_t>::max(); }

  constexpr SimTime operator+(TimeDelta d) const { return SimTime(ns_ + d.nanos()); }
  constexpr SimTime operator-(TimeDelta d) const { return SimTime(ns_ - d.nanos()); }
  constexpr TimeDelta operator-(SimTime other) const {
    return TimeDelta::FromNanos(ns_ - other.ns_);
  }
  SimTime& operator+=(TimeDelta d) {
    ns_ += d.nanos();
    return *this;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr SimTime(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_COMMON_TIME_H_
