// Tracepoint hooks into the simulated TCP stack — the simulation analogue of
// the perf probes the paper adds at write()/tcp_transmit_skb()/
// tcp_v4_do_rcv()/read() to obtain ground-truth delays (Section 4.3).

#ifndef ELEMENT_SRC_TCPSIM_STACK_OBSERVER_H_
#define ELEMENT_SRC_TCPSIM_STACK_OBSERVER_H_

#include <cstdint>

#include "src/common/time.h"

namespace element {

// Byte ranges are half-open: [begin, end).
class StackObserver {
 public:
  virtual ~StackObserver() = default;

  // Sender side: bytes accepted into the TCP send buffer by a socket write.
  virtual void OnAppWrite(uint64_t begin, uint64_t end, SimTime t) {
    (void)begin;
    (void)end;
    (void)t;
  }
  // Sender side: bytes handed to the lower layers (tcp_transmit_skb).
  virtual void OnTcpTransmit(uint64_t begin, uint64_t end, SimTime t, bool retransmit) {
    (void)begin;
    (void)end;
    (void)t;
    (void)retransmit;
  }
  // Receiver side: data segment arrived at the TCP layer (tcp_v4_do_rcv).
  virtual void OnTcpRxSegment(uint64_t begin, uint64_t end, SimTime t, bool in_order) {
    (void)begin;
    (void)end;
    (void)t;
    (void)in_order;
  }
  // Receiver side: bytes consumed from the receive buffer by a socket read.
  virtual void OnAppRead(uint64_t begin, uint64_t end, SimTime t) {
    (void)begin;
    (void)end;
    (void)t;
  }
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_STACK_OBSERVER_H_
