// Legacy tracepoint view of the telemetry spine — the simulation analogue of
// the perf probes the paper adds at write()/tcp_transmit_skb()/
// tcp_v4_do_rcv()/read() to obtain ground-truth delays (Section 4.3).
//
// The stack no longer calls these virtuals directly: TcpSocket emits typed
// TraceRecords through its FlowTelemetry handle, and this adapter unpacks the
// four stack-boundary kinds back into the familiar callbacks. Consumers that
// want the full record stream (ACK ranges, CC episodes, qdisc events) should
// implement telemetry::RecordSink directly instead.

#ifndef ELEMENT_SRC_TCPSIM_STACK_OBSERVER_H_
#define ELEMENT_SRC_TCPSIM_STACK_OBSERVER_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/telemetry/record.h"

namespace element {

// Byte ranges are half-open: [begin, end).
class StackObserver : public telemetry::RecordSink {
 public:
  // Dispatches the stack-boundary record kinds to the virtuals below; other
  // record kinds are ignored, so legacy observers can be attached to sinks
  // that also carry qdisc or delay-sample records.
  void OnRecord(const telemetry::TraceRecord& r) final {
    switch (r.kind) {
      case telemetry::RecordKind::kAppWrite:
        OnAppWrite(r.u.range.begin, r.u.range.end, r.t);
        break;
      case telemetry::RecordKind::kTcpTransmit:
        OnTcpTransmit(r.u.range.begin, r.u.range.end, r.t,
                      (r.flags & telemetry::kFlagRetransmit) != 0);
        break;
      case telemetry::RecordKind::kTcpRxSegment:
        OnTcpRxSegment(r.u.range.begin, r.u.range.end, r.t,
                       (r.flags & telemetry::kFlagOutOfOrder) == 0);
        break;
      case telemetry::RecordKind::kAppRead:
        OnAppRead(r.u.range.begin, r.u.range.end, r.t);
        break;
      default:
        break;
    }
  }

  // Sender side: bytes accepted into the TCP send buffer by a socket write.
  virtual void OnAppWrite(uint64_t begin, uint64_t end, SimTime t) {
    (void)begin;
    (void)end;
    (void)t;
  }
  // Sender side: bytes handed to the lower layers (tcp_transmit_skb).
  virtual void OnTcpTransmit(uint64_t begin, uint64_t end, SimTime t, bool retransmit) {
    (void)begin;
    (void)end;
    (void)t;
    (void)retransmit;
  }
  // Receiver side: data segment arrived at the TCP layer (tcp_v4_do_rcv).
  virtual void OnTcpRxSegment(uint64_t begin, uint64_t end, SimTime t, bool in_order) {
    (void)begin;
    (void)end;
    (void)t;
    (void)in_order;
  }
  // Receiver side: bytes consumed from the receive buffer by a socket read.
  virtual void OnAppRead(uint64_t begin, uint64_t end, SimTime t) {
    (void)begin;
    (void)end;
    (void)t;
  }
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_STACK_OBSERVER_H_
