// LEDBAT (RFC 6817): Low Extra Delay Background Transport — a one-way-delay-
// based scavenger congestion control that targets a fixed queueing delay and
// yields to any other traffic. Included as an additional latency-oriented
// baseline alongside Vegas/BBR in the Figure 15 extension rows: like them, it
// controls *network* queueing but cannot see the endhost socket buffer that
// ELEMENT targets.

#ifndef ELEMENT_SRC_TCPSIM_CC_LEDBAT_H_
#define ELEMENT_SRC_TCPSIM_CC_LEDBAT_H_

#include <deque>

#include "src/tcpsim/congestion_control.h"

namespace element {

class LedbatCc : public CongestionControl {
 public:
  LedbatCc() = default;

  void OnConnectionStart(SimTime now, uint32_t mss) override;
  void OnAck(const AckSample& sample) override;
  void OnLoss(SimTime now, uint64_t bytes_in_flight, uint32_t mss) override;
  void OnRetransmissionTimeout(SimTime now) override;

  double CwndSegments() const override { return cwnd_; }
  uint32_t SsthreshSegments() const override {
    return static_cast<uint32_t>(ssthresh_ < 0x7FFFFFFF ? ssthresh_ : 0x7FFFFFFF);
  }
  std::string name() const override { return "ledbat"; }

  TimeDelta base_delay() const;

 private:
  static constexpr double kTargetDelayS = 0.060;  // RFC 6817 TARGET (<= 100 ms)
  static constexpr double kGain = 1.0;            // window gain per target
  static constexpr int kBaseHistoryMinutes = 10;  // base-delay history windows

  void UpdateBaseDelay(TimeDelta rtt, SimTime now);

  uint32_t mss_ = 1448;
  double cwnd_ = 4.0;
  double ssthresh_ = 1e9;

  // Per-minute minima of the observed delay (RFC 6817 BASE_HISTORY).
  std::deque<TimeDelta> base_history_;
  SimTime current_minute_start_;
  bool minute_started_ = false;
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_CC_LEDBAT_H_
