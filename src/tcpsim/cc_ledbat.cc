#include "src/tcpsim/cc_ledbat.h"

#include <algorithm>

namespace element {

void LedbatCc::OnConnectionStart(SimTime now, uint32_t mss) {
  mss_ = mss;
  current_minute_start_ = now;
}

TimeDelta LedbatCc::base_delay() const {
  TimeDelta best = TimeDelta::Infinite();
  for (TimeDelta d : base_history_) {
    best = std::min(best, d);
  }
  return best;
}

void LedbatCc::UpdateBaseDelay(TimeDelta rtt, SimTime now) {
  if (!minute_started_ || now - current_minute_start_ > TimeDelta::FromSecondsInt(60)) {
    base_history_.push_back(rtt);
    while (base_history_.size() > kBaseHistoryMinutes) {
      base_history_.pop_front();
    }
    current_minute_start_ = now;
    minute_started_ = true;
  } else if (!base_history_.empty()) {
    base_history_.back() = std::min(base_history_.back(), rtt);
  }
}

void LedbatCc::OnAck(const AckSample& sample) {
  if (sample.in_recovery || sample.rtt <= TimeDelta::Zero()) {
    return;
  }
  UpdateBaseDelay(sample.rtt, sample.now);
  TimeDelta base = base_delay();
  if (base.IsInfinite()) {
    return;
  }
  // RFC 6817 linear controller: off-target drives the window up or down.
  double queuing_delay_s = (sample.rtt - base).ToSeconds();
  double off_target = (kTargetDelayS - queuing_delay_s) / kTargetDelayS;
  double acked_segments = static_cast<double>(sample.acked_bytes) / mss_;
  cwnd_ += kGain * off_target * acked_segments / cwnd_;
  // Clamp: never below 2, never growing faster than slow start would.
  cwnd_ = std::max(cwnd_, 2.0);
}

void LedbatCc::OnLoss(SimTime /*now*/, uint64_t /*bytes_in_flight*/, uint32_t /*mss*/) {
  // RFC 6817: at most one halving per RTT; approximated as a plain halving.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = ssthresh_;
}

void LedbatCc::OnRetransmissionTimeout(SimTime /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 2.0;
}

}  // namespace element
