#include "src/tcpsim/congestion_control.h"

#include <stdexcept>

#include "src/tcpsim/cc_bbr.h"
#include "src/tcpsim/cc_cubic.h"
#include "src/tcpsim/cc_ledbat.h"
#include "src/tcpsim/cc_reno.h"
#include "src/tcpsim/cc_vegas.h"

namespace element {

std::unique_ptr<CongestionControl> MakeCongestionControl(const std::string& name) {
  if (name == "reno") {
    return std::make_unique<RenoCc>();
  }
  if (name == "cubic") {
    return std::make_unique<CubicCc>();
  }
  if (name == "cubic-nohystart") {
    return std::make_unique<CubicCc>(/*hystart=*/false);
  }
  if (name == "vegas") {
    return std::make_unique<VegasCc>();
  }
  if (name == "ledbat") {
    return std::make_unique<LedbatCc>();
  }
  if (name == "bbr") {
    return std::make_unique<BbrCc>();
  }
  throw std::invalid_argument("unknown congestion control: " + name);
}

}  // namespace element
