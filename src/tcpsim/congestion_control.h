// Pluggable congestion control, mirroring the Linux CC module interface at
// the granularity this simulation needs. Implementations: NewReno, Cubic
// (Linux default in the paper's testbed), Vegas, and BBR — the protocols
// Figure 15 compares.

#ifndef ELEMENT_SRC_TCPSIM_CONGESTION_CONTROL_H_
#define ELEMENT_SRC_TCPSIM_CONGESTION_CONTROL_H_

#include <memory>
#include <optional>
#include <string>

#include "src/common/data_rate.h"
#include "src/common/time.h"

namespace element {

struct AckSample {
  SimTime now;
  uint64_t acked_bytes = 0;       // newly ACKed by this ACK
  uint64_t bytes_in_flight = 0;   // after processing the ACK
  TimeDelta rtt = TimeDelta::Zero();  // this ACK's sample; Zero if invalid (Karn)
  TimeDelta srtt = TimeDelta::Zero();
  TimeDelta min_rtt = TimeDelta::Zero();
  uint64_t delivered_bytes = 0;   // cumulative delivered
  DataRate delivery_rate;         // rate sample; Zero if unavailable
  bool app_limited = false;
  bool in_recovery = false;
  uint32_t mss = 0;
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void OnConnectionStart(SimTime now, uint32_t mss) {
    (void)now;
    (void)mss;
  }
  virtual void OnAck(const AckSample& sample) = 0;
  // Loss detected via duplicate ACKs (entering fast recovery) or an ECN echo.
  virtual void OnLoss(SimTime now, uint64_t bytes_in_flight, uint32_t mss) = 0;
  virtual void OnRetransmissionTimeout(SimTime now) = 0;
  virtual void OnPacketSent(SimTime now, uint64_t bytes_in_flight) {
    (void)now;
    (void)bytes_in_flight;
  }
  // RFC 2861 congestion-window validation: the application went idle for at
  // least an RTO; loss-based controllers decay their window toward the
  // restart window instead of bursting a stale cwnd into the network.
  virtual void OnApplicationIdle(SimTime now, TimeDelta idle_time, TimeDelta rto) {
    (void)now;
    (void)idle_time;
    (void)rto;
  }

  // Congestion window in segments (fractional internally; floor >= 2 applies
  // at the user).
  virtual double CwndSegments() const = 0;
  virtual uint32_t SsthreshSegments() const = 0;
  // Engaged pacing rate (BBR); nullopt = no pacing, window-limited only.
  virtual std::optional<DataRate> PacingRate() const { return std::nullopt; }
  virtual std::string name() const = 0;
};

// Factory: "reno", "cubic", "vegas", "bbr".
std::unique_ptr<CongestionControl> MakeCongestionControl(const std::string& name);

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_CONGESTION_CONTROL_H_
