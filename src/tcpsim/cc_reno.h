// TCP NewReno: AIMD baseline congestion control.

#ifndef ELEMENT_SRC_TCPSIM_CC_RENO_H_
#define ELEMENT_SRC_TCPSIM_CC_RENO_H_

#include "src/tcpsim/congestion_control.h"

namespace element {

class RenoCc : public CongestionControl {
 public:
  RenoCc() = default;

  void OnConnectionStart(SimTime now, uint32_t mss) override;
  void OnAck(const AckSample& sample) override;
  void OnLoss(SimTime now, uint64_t bytes_in_flight, uint32_t mss) override;
  void OnRetransmissionTimeout(SimTime now) override;
  void OnApplicationIdle(SimTime now, TimeDelta idle_time, TimeDelta rto) override;

  double CwndSegments() const override { return cwnd_; }
  uint32_t SsthreshSegments() const override { return ssthresh_; }
  std::string name() const override { return "reno"; }

 private:
  uint32_t mss_ = 1448;
  double cwnd_ = 10.0;
  uint32_t ssthresh_ = 0x7FFFFFFF;
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_CC_RENO_H_
