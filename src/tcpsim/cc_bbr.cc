#include "src/tcpsim/cc_bbr.h"

#include <algorithm>
#include <cmath>

namespace element {

void WindowedMaxFilter::Update(double value, uint64_t round) {
  while (!samples_.empty() && samples_.back().value <= value) {
    samples_.pop_back();
  }
  samples_.push_back({value, round});
  while (!samples_.empty() && round >= window_ &&
         samples_.front().round <= round - window_) {
    samples_.pop_front();
  }
}

double WindowedMaxFilter::GetMax() const {
  return samples_.empty() ? 0.0 : samples_.front().value;
}

void BbrCc::OnConnectionStart(SimTime now, uint32_t mss) {
  mss_ = mss;
  min_rtt_stamp_ = now;
  cycle_stamp_ = now;
}

double BbrCc::BdpBytes(double gain) const {
  double bw = btl_bw_filter_.GetMax();  // bytes/sec
  if (bw <= 0.0 || min_rtt_.IsInfinite()) {
    return gain * 10.0 * mss_;  // initial window until the model forms
  }
  return gain * bw * min_rtt_.ToSeconds();
}

double BbrCc::CwndSegments() const {
  if (mode_ == Mode::kProbeRtt) {
    return 4.0;
  }
  double cwnd_bytes = BdpBytes(cwnd_gain_);
  return std::max(cwnd_bytes / mss_, 4.0);
}

std::optional<DataRate> BbrCc::PacingRate() const {
  double bw = btl_bw_filter_.GetMax();
  if (bw <= 0.0) {
    return std::nullopt;  // no model yet; window-limited slow start
  }
  return DataRate::BytesPerSecond(bw * pacing_gain_);
}

void BbrCc::UpdateRound(const AckSample& sample) {
  if (sample.delivered_bytes >= next_round_delivered_) {
    next_round_delivered_ = sample.delivered_bytes + sample.bytes_in_flight;
    ++round_count_;
  }
}

void BbrCc::CheckFullPipe(const AckSample& sample) {
  if (filled_pipe_ || sample.app_limited) {
    return;
  }
  double bw = btl_bw_filter_.GetMax();
  if (bw >= full_bw_ * 1.25) {
    full_bw_ = bw;
    full_bw_count_ = 0;
    return;
  }
  ++full_bw_count_;
  if (full_bw_count_ >= 3) {
    filled_pipe_ = true;
  }
}

void BbrCc::AdvanceCyclePhase(const AckSample& sample) {
  static constexpr double kGains[kGainCycleLen] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  TimeDelta phase_len = min_rtt_.IsInfinite() ? TimeDelta::FromMillis(200) : min_rtt_;
  if (sample.now - cycle_stamp_ > phase_len) {
    cycle_index_ = (cycle_index_ + 1) % kGainCycleLen;
    cycle_stamp_ = sample.now;
    pacing_gain_ = kGains[cycle_index_];
  }
}

void BbrCc::MaybeEnterOrExitProbeRtt(const AckSample& sample, bool min_rtt_expired) {
  if (mode_ != Mode::kProbeRtt && min_rtt_expired) {
    mode_ = Mode::kProbeRtt;
    pacing_gain_ = 1.0;
    cwnd_before_probe_rtt_ = BdpBytes(kCwndGain) / mss_;
    probe_rtt_done_ = sample.now + TimeDelta::FromMillis(200);
    min_rtt_stamp_ = sample.now;  // restart the window
  } else if (mode_ == Mode::kProbeRtt && sample.now >= probe_rtt_done_) {
    mode_ = filled_pipe_ ? Mode::kProbeBw : Mode::kStartup;
    pacing_gain_ = mode_ == Mode::kProbeBw ? 1.0 : kHighGain;
    cwnd_gain_ = mode_ == Mode::kProbeBw ? kCwndGain : kHighGain;
    cycle_stamp_ = sample.now;
  }
}

void BbrCc::OnAck(const AckSample& sample) {
  // Expiry is computed before the filter refresh so ProbeRTT still triggers
  // (the refresh below would otherwise hide the expiration).
  bool min_rtt_expired = sample.now - min_rtt_stamp_ > TimeDelta::FromSecondsInt(10);
  if (sample.rtt > TimeDelta::Zero()) {
    if (sample.rtt <= min_rtt_ || min_rtt_expired) {
      min_rtt_ = sample.rtt;
      min_rtt_stamp_ = sample.now;
    }
  }
  UpdateRound(sample);
  if (!sample.delivery_rate.IsZero() && (!sample.app_limited ||
      sample.delivery_rate.BytesPerSec() > btl_bw_filter_.GetMax())) {
    btl_bw_filter_.Update(sample.delivery_rate.BytesPerSec(), round_count_);
  }

  switch (mode_) {
    case Mode::kStartup:
      CheckFullPipe(sample);
      if (filled_pipe_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = kDrainGain;
        cwnd_gain_ = kCwndGain;
      }
      break;
    case Mode::kDrain:
      if (static_cast<double>(sample.bytes_in_flight) <= BdpBytes(1.0)) {
        mode_ = Mode::kProbeBw;
        pacing_gain_ = 1.0;
        cwnd_gain_ = kCwndGain;
        cycle_index_ = 2;  // skip the initial 1.25 surge
        cycle_stamp_ = sample.now;
      }
      break;
    case Mode::kProbeBw:
      AdvanceCyclePhase(sample);
      break;
    case Mode::kProbeRtt:
      break;
  }
  MaybeEnterOrExitProbeRtt(sample, min_rtt_expired);
}

void BbrCc::OnLoss(SimTime /*now*/, uint64_t /*bytes_in_flight*/, uint32_t /*mss*/) {
  // BBRv1 does not react to individual losses; the model absorbs them.
}

void BbrCc::OnRetransmissionTimeout(SimTime /*now*/) {
  // Conservative restart: flush the bandwidth model's recent optimism.
  full_bw_ = 0.0;
  full_bw_count_ = 0;
}

const char* BbrCc::mode_name() const {
  switch (mode_) {
    case Mode::kStartup:
      return "startup";
    case Mode::kDrain:
      return "drain";
    case Mode::kProbeBw:
      return "probe_bw";
    case Mode::kProbeRtt:
      return "probe_rtt";
  }
  return "?";
}

}  // namespace element
