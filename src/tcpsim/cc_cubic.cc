#include "src/tcpsim/cc_cubic.h"

#include <algorithm>
#include <cmath>

namespace element {

void CubicCc::OnConnectionStart(SimTime /*now*/, uint32_t mss) { mss_ = mss; }

void CubicCc::ResetEpoch() {
  epoch_started_ = false;
  w_est_acked_segments_ = 0.0;
}

void CubicCc::OnAck(const AckSample& sample) {
  if (sample.in_recovery) {
    return;
  }
  double acked_segments = static_cast<double>(sample.acked_bytes) / mss_;

  if (cwnd_ < ssthresh_) {
    HyStartUpdate(sample);
    cwnd_ += acked_segments;
    return;
  }

  if (!epoch_started_) {
    epoch_started_ = true;
    epoch_start_ = sample.now;
    if (cwnd_ < w_max_) {
      k_ = std::cbrt((w_max_ - cwnd_) / kC);
      origin_point_ = w_max_;
    } else {
      k_ = 0.0;
      origin_point_ = cwnd_;
    }
    w_est_acked_segments_ = 0.0;
  }

  double rtt_s = std::max(sample.srtt.ToSeconds(), 0.0001);
  double t = (sample.now - epoch_start_).ToSeconds() + rtt_s;
  double delta = t - k_;
  double w_cubic = origin_point_ + kC * delta * delta * delta;

  // TCP-friendly region (RFC 8312 §4.2): emulate AIMD with the same average
  // rate as standard TCP after a beta decrease.
  w_est_acked_segments_ += acked_segments;
  double w_est = w_max_ * kBeta +
                 (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) * (w_est_acked_segments_ / cwnd_);
  double target = std::max(w_cubic, w_est);

  if (target > cwnd_) {
    // Per-ACK growth spread so that cwnd reaches `target` in one RTT.
    cwnd_ += (target - cwnd_) / cwnd_ * acked_segments;
  } else {
    cwnd_ += acked_segments / (100.0 * cwnd_);  // minimal growth to probe
  }
}

void CubicCc::HyStartUpdate(const AckSample& sample) {
  if (!hystart_enabled_ || sample.rtt <= TimeDelta::Zero()) {
    return;
  }
  if (!round_active_) {
    round_active_ = true;
    round_start_ = sample.now;
    curr_round_min_rtt_ = sample.rtt;
    return;
  }
  curr_round_min_rtt_ = std::min(curr_round_min_rtt_, sample.rtt);
  TimeDelta round_len = sample.srtt.IsZero() ? sample.rtt : sample.srtt;
  if (sample.now - round_start_ < round_len) {
    return;
  }
  // Round boundary: compare this round's min RTT against the previous one.
  if (!last_round_min_rtt_.IsInfinite() && !curr_round_min_rtt_.IsInfinite()) {
    TimeDelta eta = last_round_min_rtt_ * 0.125;
    eta = std::clamp(eta, TimeDelta::FromMillis(4), TimeDelta::FromMillis(16));
    if (curr_round_min_rtt_ >= last_round_min_rtt_ + eta && cwnd_ >= 16.0) {
      ssthresh_ = cwnd_;  // delay increase: exit slow start smoothly
    }
  }
  last_round_min_rtt_ = curr_round_min_rtt_;
  curr_round_min_rtt_ = TimeDelta::Infinite();
  round_start_ = sample.now;
}

void CubicCc::OnApplicationIdle(SimTime /*now*/, TimeDelta idle_time, TimeDelta rto) {
  if (rto <= TimeDelta::Zero()) {
    return;
  }
  double periods = idle_time / rto;
  bool decayed = false;
  while (periods >= 1.0 && cwnd_ > 10.0) {
    cwnd_ = std::max(cwnd_ / 2.0, 10.0);
    periods -= 1.0;
    decayed = true;
  }
  if (decayed) {
    ResetEpoch();  // the cubic clock restarts from the decayed window
  }
}

void CubicCc::OnLoss(SimTime /*now*/, uint64_t /*bytes_in_flight*/, uint32_t /*mss*/) {
  if (kFastConvergence && cwnd_ < w_max_) {
    w_max_ = cwnd_ * (2.0 - kBeta) / 2.0;
  } else {
    w_max_ = cwnd_;
  }
  cwnd_ = std::max(cwnd_ * kBeta, 2.0);
  ssthresh_ = cwnd_;
  ResetEpoch();
}

void CubicCc::OnRetransmissionTimeout(SimTime /*now*/) {
  w_max_ = cwnd_;
  ssthresh_ = std::max(cwnd_ * kBeta, 2.0);
  cwnd_ = 1.0;
  ResetEpoch();
}

}  // namespace element
