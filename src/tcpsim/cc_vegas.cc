#include "src/tcpsim/cc_vegas.h"

#include <algorithm>

namespace element {

void VegasCc::OnConnectionStart(SimTime /*now*/, uint32_t mss) { mss_ = mss; }

void VegasCc::OnAck(const AckSample& sample) {
  if (sample.in_recovery) {
    return;
  }
  if (sample.rtt > TimeDelta::Zero()) {
    base_rtt_ = std::min(base_rtt_, sample.rtt);
    epoch_min_rtt_ = std::min(epoch_min_rtt_, sample.rtt);
    ++epoch_samples_;
  }
  if (!epoch_valid_) {
    epoch_valid_ = true;
    epoch_end_ = sample.now + sample.srtt;
    return;
  }
  if (sample.now < epoch_end_ || epoch_samples_ < 1 || base_rtt_.IsInfinite()) {
    return;
  }

  // One Vegas adjustment per RTT using the epoch's minimum RTT sample.
  TimeDelta rtt = epoch_min_rtt_;
  double expected = cwnd_ / base_rtt_.ToSeconds();         // segments/s
  double actual = cwnd_ / rtt.ToSeconds();                  // segments/s
  double diff = (expected - actual) * base_rtt_.ToSeconds();  // queued segments

  if (cwnd_ < ssthresh_) {
    // Slow start: double every other RTT; leave when queue builds.
    if (diff > kGamma) {
      ssthresh_ = std::max(cwnd_ - 1.0, 2.0);
      cwnd_ = std::max(cwnd_ - diff + kAlpha, 2.0);
    } else if (grow_this_epoch_) {
      cwnd_ *= 2.0;
      grow_this_epoch_ = false;
    } else {
      grow_this_epoch_ = true;
    }
  } else {
    if (diff < kAlpha) {
      cwnd_ += 1.0;
    } else if (diff > kBeta) {
      cwnd_ = std::max(cwnd_ - 1.0, 2.0);
    }
  }

  epoch_end_ = sample.now + sample.srtt;
  epoch_min_rtt_ = TimeDelta::Infinite();
  epoch_samples_ = 0;
}

void VegasCc::OnLoss(SimTime /*now*/, uint64_t /*bytes_in_flight*/, uint32_t /*mss*/) {
  ssthresh_ = std::max(cwnd_ * 0.75, 2.0);
  cwnd_ = ssthresh_;
}

void VegasCc::OnRetransmissionTimeout(SimTime /*now*/) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 2.0;
}

}  // namespace element
