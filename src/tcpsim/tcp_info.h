// User-visible TCP statistics, mirroring the subset of Linux's `struct
// tcp_info` (getsockopt TCP_INFO) that ELEMENT consumes (Section 4 of the
// paper) plus a few fields used by tests and benches.

#ifndef ELEMENT_SRC_TCPSIM_TCP_INFO_H_
#define ELEMENT_SRC_TCPSIM_TCP_INFO_H_

#include <cstdint>

namespace element {

struct TcpInfoData {
  // Sender-side statistics (Algorithm 1 inputs).
  uint64_t tcpi_bytes_acked = 0;  // cumulative bytes ACKed by the peer
  uint32_t tcpi_unacked = 0;      // segments sent but not yet ACKed (packets_out)
  uint32_t tcpi_snd_mss = 0;
  uint32_t tcpi_snd_cwnd = 0;      // congestion window, in segments
  uint32_t tcpi_snd_ssthresh = 0;  // slow-start threshold, in segments
  uint64_t tcpi_segs_out = 0;
  uint32_t tcpi_total_retrans = 0;
  uint32_t tcpi_notsent_bytes = 0;  // written to the socket but not yet sent

  // Receiver-side statistics (Algorithm 2 inputs).
  uint64_t tcpi_segs_in = 0;
  uint32_t tcpi_rcv_mss = 0;
  uint64_t tcpi_bytes_received = 0;

  // Path statistics.
  uint32_t tcpi_rtt_us = 0;  // smoothed RTT, microseconds
  uint32_t tcpi_rttvar_us = 0;
  uint32_t tcpi_min_rtt_us = 0;
  uint64_t tcpi_delivery_rate_bps = 0;
  uint64_t tcpi_pacing_rate_bps = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_TCP_INFO_H_
