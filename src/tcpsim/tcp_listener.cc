#include "src/tcpsim/tcp_listener.h"

#include <utility>

#include "src/tcpsim/tcp_segment.h"

namespace element {

TcpListener::TcpListener(EventLoop* loop, Rng rng, TcpSocket::Config config, PacketSink* tx,
                         Demux* rx_demux)
    : loop_(loop),
      rng_(std::move(rng)),
      config_(config),
      tx_(tx),
      rx_demux_(rx_demux) {
  rx_demux_->SetFallback(this);
}

TcpListener::~TcpListener() { rx_demux_->SetFallback(nullptr); }

void TcpListener::Deliver(Packet pkt) {
  const auto& seg = *static_cast<const TcpSegmentPayload*>(pkt.payload.get());
  if (!seg.syn || seg.ack) {
    return;  // stray non-SYN for an unknown flow: drop (no RST modeling)
  }
  // Accept: a fresh passive socket claims this flow id (its constructor
  // registers it with the demux, so follow-up segments route directly).
  auto socket =
      std::make_unique<TcpSocket>(loop_, rng_.Fork(), config_, pkt.flow_id, tx_, rx_demux_);
  TcpSocket* raw = socket.get();
  raw->Listen();
  connections_.push_back(std::move(socket));
  raw->Deliver(std::move(pkt));  // processes the SYN, emits SYN-ACK
  if (on_accept_) {
    on_accept_(raw);
  }
}

}  // namespace element
