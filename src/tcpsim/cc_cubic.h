// CUBIC congestion control (Ha, Rhee, Xu 2008 / RFC 8312) — the Linux default
// and the paper's primary subject. Window growth follows a cubic function of
// time since the last loss, with a TCP-friendliness lower bound and fast
// convergence.

#ifndef ELEMENT_SRC_TCPSIM_CC_CUBIC_H_
#define ELEMENT_SRC_TCPSIM_CC_CUBIC_H_

#include "src/tcpsim/congestion_control.h"

namespace element {

class CubicCc : public CongestionControl {
 public:
  CubicCc() = default;
  // hystart=false reverts to blind slow start (ablation: quantifies what the
  // delay-increase exit is worth).
  explicit CubicCc(bool hystart) : hystart_enabled_(hystart) {}

  void OnConnectionStart(SimTime now, uint32_t mss) override;
  void OnAck(const AckSample& sample) override;
  void OnLoss(SimTime now, uint64_t bytes_in_flight, uint32_t mss) override;
  void OnRetransmissionTimeout(SimTime now) override;
  void OnApplicationIdle(SimTime now, TimeDelta idle_time, TimeDelta rto) override;

  double CwndSegments() const override { return cwnd_; }
  uint32_t SsthreshSegments() const override {
    return static_cast<uint32_t>(ssthresh_ < 0x7FFFFFFF ? ssthresh_ : 0x7FFFFFFF);
  }
  std::string name() const override { return "cubic"; }

  double w_max() const { return w_max_; }

 private:
  void ResetEpoch();

  static constexpr double kBeta = 0.7;   // multiplicative decrease
  static constexpr double kC = 0.4;      // cubic scaling constant
  static constexpr bool kFastConvergence = true;

  uint32_t mss_ = 1448;
  double cwnd_ = 10.0;
  double ssthresh_ = 1e9;

  // Cubic epoch state.
  bool epoch_started_ = false;
  SimTime epoch_start_;
  double w_max_ = 0.0;
  double k_ = 0.0;            // time (s) to return to w_max
  double origin_point_ = 0.0;
  double w_est_acked_segments_ = 0.0;  // for the TCP-friendly estimate

  // HyStart (delay-increase detection, as in Linux Cubic): leaves slow start
  // before the queue-overflow burst when the per-round min RTT rises.
  void HyStartUpdate(const AckSample& sample);
  bool hystart_enabled_ = true;
  bool round_active_ = false;
  SimTime round_start_;
  TimeDelta last_round_min_rtt_ = TimeDelta::Infinite();
  TimeDelta curr_round_min_rtt_ = TimeDelta::Infinite();
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_CC_CUBIC_H_
