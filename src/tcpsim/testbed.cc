#include "src/tcpsim/testbed.h"

#include <utility>

#include "src/netsim/codel.h"
#include "src/netsim/fq_codel.h"
#include "src/netsim/pfifo_fast.h"
#include "src/netsim/pie.h"
#include "src/netsim/red.h"

namespace element {

PathConfig LanProfile() {
  PathConfig cfg;
  cfg.link = LinkType::kLan;
  cfg.rate = DataRate::Mbps(1000);
  cfg.one_way_delay = TimeDelta::FromMicros(200);
  cfg.queue_limit_packets = 1000;
  cfg.reverse_rate = DataRate::Mbps(1000);
  return cfg;
}

PathConfig CableProfile(bool upload) {
  PathConfig cfg;
  cfg.link = LinkType::kCable;
  // DOCSIS-like asymmetry: ~100 Mbps down / ~12 Mbps up.
  cfg.rate = upload ? DataRate::Mbps(12) : DataRate::Mbps(100);
  cfg.one_way_delay = TimeDelta::FromMillis(8);
  cfg.queue_limit_packets = upload ? 120 : 400;
  cfg.reverse_rate = upload ? DataRate::Mbps(100) : DataRate::Mbps(12);
  return cfg;
}

PathConfig WifiProfile() {
  PathConfig cfg;
  cfg.link = LinkType::kWifi;
  cfg.rate = DataRate::Mbps(60);  // mean of the Markov-modulated rate
  cfg.one_way_delay = TimeDelta::FromMillis(3);
  cfg.queue_limit_packets = 300;
  cfg.reverse_rate = DataRate::Mbps(60);
  return cfg;
}

PathConfig LteProfile(bool upload) {
  PathConfig cfg;
  cfg.link = LinkType::kLte;
  cfg.rate = upload ? DataRate::Mbps(12) : DataRate::Mbps(25);
  cfg.one_way_delay = TimeDelta::FromMillis(25);
  // Deep basestation/modem buffers: the classic cellular bufferbloat setup.
  cfg.queue_limit_packets = upload ? 500 : 750;
  cfg.reverse_rate = upload ? DataRate::Mbps(25) : DataRate::Mbps(12);
  return cfg;
}

Testbed::Testbed(uint64_t seed, const PathConfig& config) : config_(config), rng_(seed) {
  TimeDelta rev_delay = config_.reverse_one_way_delay.IsZero() ? config_.one_way_delay
                                                               : config_.reverse_one_way_delay;
  auto rev_qdisc = std::make_unique<PfifoFast>(config_.reverse_queue_limit_packets);
  std::unique_ptr<LinkModel> rev_link;
  switch (config_.link) {
    case LinkType::kCable:
      rev_link = std::make_unique<CableLinkModel>(config_.reverse_rate, rev_delay, rng_.Fork());
      break;
    case LinkType::kWifi:
      rev_link = std::make_unique<WifiLinkModel>(rng_.Fork(), config_.reverse_rate, rev_delay);
      break;
    case LinkType::kLte:
      rev_link = std::make_unique<LteLinkModel>(rng_.Fork(), config_.reverse_rate, rev_delay);
      break;
    default:
      rev_link = std::make_unique<FixedLinkModel>(config_.reverse_rate, rev_delay);
      break;
  }
  std::unique_ptr<Qdisc> fwd_qdisc =
      MakeBottleneckQdisc(config_.qdisc, config_.queue_limit_packets, config_.ecn, &rng_);
  if (config_.instrument_bottleneck) {
    auto probe = std::make_unique<InstrumentedQdisc>(std::move(fwd_qdisc));
    bottleneck_probe_ = probe.get();
    fwd_qdisc = std::move(probe);
  }
  path_ = std::make_unique<DuplexPath>(&loop_, &rng_, std::move(fwd_qdisc), MakeForwardLink(),
                                       std::move(rev_qdisc), std::move(rev_link));
  path_->BindTelemetry(&spine_);
}

std::unique_ptr<Qdisc> MakeBottleneckQdisc(QdiscType type, size_t limit, bool ecn, Rng* rng) {
  std::unique_ptr<Qdisc> q;
  switch (type) {
    case QdiscType::kPfifoFast:
      q = std::make_unique<PfifoFast>(limit);
      break;
    case QdiscType::kCoDel: {
      CoDelParams params;
      params.limit_packets = limit;
      q = std::make_unique<CoDel>(params);
      break;
    }
    case QdiscType::kFqCoDel: {
      FqCoDelParams params;
      params.limit_packets = limit * 10;  // FQ-CoDel's limit is per-qdisc, roomy
      q = std::make_unique<FqCoDel>(params);
      break;
    }
    case QdiscType::kPie: {
      PieParams params;
      params.limit_packets = limit;
      q = std::make_unique<Pie>(params, rng->Fork());
      break;
    }
    case QdiscType::kRed: {
      RedParams params;
      params.limit_packets = limit;
      params.min_threshold_packets = static_cast<double>(limit) * 0.2;
      params.max_threshold_packets = static_cast<double>(limit) * 0.6;
      q = std::make_unique<Red>(params, rng->Fork());
      break;
    }
  }
  q->set_ecn_enabled(ecn);
  return q;
}

std::unique_ptr<LinkModel> Testbed::MakeForwardLink() {
  switch (config_.link) {
    case LinkType::kFixed:
    case LinkType::kLan:
      return std::make_unique<FixedLinkModel>(config_.rate, config_.one_way_delay,
                                              config_.loss_probability);
    case LinkType::kStepped:
      return std::make_unique<SteppedLinkModel>(config_.steps, config_.one_way_delay,
                                                config_.loss_probability);
    case LinkType::kCable:
      return std::make_unique<CableLinkModel>(config_.rate, config_.one_way_delay, rng_.Fork());
    case LinkType::kWifi:
      return std::make_unique<WifiLinkModel>(rng_.Fork(), config_.rate, config_.one_way_delay);
    case LinkType::kLte:
      return std::make_unique<LteLinkModel>(rng_.Fork(), config_.rate, config_.one_way_delay);
  }
  return nullptr;
}

Testbed::Flow Testbed::CreateFlow(const TcpSocket::Config& socket_config,
                                  bool sender_at_client) {
  uint64_t flow_id = path_->AllocateFlowId();
  PacketSink* client_tx = &path_->forward();
  PacketSink* server_tx = &path_->reverse();
  Demux* client_rx = &path_->client_demux();
  Demux* server_rx = &path_->server_demux();

  auto a = std::make_unique<TcpSocket>(&loop_, rng_.Fork(), socket_config, flow_id, client_tx,
                                       client_rx);
  auto b = std::make_unique<TcpSocket>(&loop_, rng_.Fork(), socket_config, flow_id, server_tx,
                                       server_rx);
  TcpSocket* client = a.get();
  TcpSocket* server = b.get();
  client->BindTelemetry(&spine_);
  server->BindTelemetry(&spine_);
  sockets_.push_back(std::move(a));
  sockets_.push_back(std::move(b));

  Flow flow;
  flow.flow_id = flow_id;
  if (sender_at_client) {
    flow.sender = client;
    flow.receiver = server;
  } else {
    flow.sender = server;
    flow.receiver = client;
  }
  flow.receiver->Listen();
  flow.sender->Connect();
  return flow;
}

TcpSocket* Testbed::CreateClient(const TcpSocket::Config& socket_config) {
  uint64_t flow_id = path_->AllocateFlowId();
  auto sock = std::make_unique<TcpSocket>(&loop_, rng_.Fork(), socket_config, flow_id,
                                          &path_->forward(), &path_->client_demux());
  TcpSocket* raw = sock.get();
  raw->BindTelemetry(&spine_);
  sockets_.push_back(std::move(sock));
  raw->Connect();
  return raw;
}

TimeDelta Testbed::BaseRtt() const {
  TimeDelta rev = config_.reverse_one_way_delay.IsZero() ? config_.one_way_delay
                                                         : config_.reverse_one_way_delay;
  return config_.one_way_delay + rev;
}

}  // namespace element
