// TCP segment payload carried inside a netsim Packet.

#ifndef ELEMENT_SRC_TCPSIM_TCP_SEGMENT_H_
#define ELEMENT_SRC_TCPSIM_TCP_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "src/netsim/packet.h"

namespace element {

struct SackBlock {
  uint64_t begin = 0;
  uint64_t end = 0;
};

struct TcpSegmentPayload : public Payload {
  // Flags.
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool ece = false;  // ECN-Echo
  bool cwr = false;  // Congestion Window Reduced

  // Byte-stream sequence space (64-bit; no wraparound in simulation).
  uint64_t seq = 0;           // first payload byte
  uint32_t payload_bytes = 0;  // 0 for pure control segments
  uint64_t ack_seq = 0;        // cumulative ACK (valid when ack)
  uint64_t receive_window = 0;  // advertised window, bytes

  bool retransmit = false;  // marked by the sender, for tracing only

  // SACK option: up to kMaxSackBlocks ranges received above the cumulative
  // ACK, most recently changed first (RFC 2018).
  static constexpr size_t kMaxSackBlocks = 4;
  std::vector<SackBlock> sacks;
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_TCP_SEGMENT_H_
