#include "src/tcpsim/cc_reno.h"

#include <algorithm>

namespace element {

void RenoCc::OnConnectionStart(SimTime /*now*/, uint32_t mss) { mss_ = mss; }

void RenoCc::OnAck(const AckSample& sample) {
  if (sample.in_recovery) {
    return;
  }
  double acked_segments = static_cast<double>(sample.acked_bytes) / mss_;
  if (cwnd_ < ssthresh_) {
    cwnd_ += acked_segments;  // slow start
  } else {
    cwnd_ += acked_segments / cwnd_;  // congestion avoidance: ~1 segment/RTT
  }
}

void RenoCc::OnLoss(SimTime /*now*/, uint64_t /*bytes_in_flight*/, uint32_t /*mss*/) {
  ssthresh_ = static_cast<uint32_t>(std::max(cwnd_ / 2.0, 2.0));
  cwnd_ = ssthresh_;
}

void RenoCc::OnApplicationIdle(SimTime /*now*/, TimeDelta idle_time, TimeDelta rto) {
  // Halve cwnd per RTO of idleness, floored at the initial window.
  if (rto <= TimeDelta::Zero()) {
    return;
  }
  double periods = idle_time / rto;
  while (periods >= 1.0 && cwnd_ > 10.0) {
    cwnd_ = std::max(cwnd_ / 2.0, 10.0);
    periods -= 1.0;
  }
}

void RenoCc::OnRetransmissionTimeout(SimTime /*now*/) {
  ssthresh_ = static_cast<uint32_t>(std::max(cwnd_ / 2.0, 2.0));
  cwnd_ = 1.0;
}

}  // namespace element
