// TCP Vegas (Brakmo & Peterson 1995): delay-based congestion avoidance that
// keeps between alpha and beta packets queued in the network. Figure 15 uses
// it as the latency-friendly in-stack baseline.

#ifndef ELEMENT_SRC_TCPSIM_CC_VEGAS_H_
#define ELEMENT_SRC_TCPSIM_CC_VEGAS_H_

#include "src/tcpsim/congestion_control.h"

namespace element {

class VegasCc : public CongestionControl {
 public:
  VegasCc() = default;

  void OnConnectionStart(SimTime now, uint32_t mss) override;
  void OnAck(const AckSample& sample) override;
  void OnLoss(SimTime now, uint64_t bytes_in_flight, uint32_t mss) override;
  void OnRetransmissionTimeout(SimTime now) override;

  double CwndSegments() const override { return cwnd_; }
  uint32_t SsthreshSegments() const override {
    return static_cast<uint32_t>(ssthresh_ < 0x7FFFFFFF ? ssthresh_ : 0x7FFFFFFF);
  }
  std::string name() const override { return "vegas"; }

 private:
  static constexpr double kAlpha = 2.0;  // lower bound on queued packets
  static constexpr double kBeta = 4.0;   // upper bound on queued packets
  static constexpr double kGamma = 1.0;  // slow-start exit threshold

  uint32_t mss_ = 1448;
  double cwnd_ = 10.0;
  double ssthresh_ = 1e9;

  TimeDelta base_rtt_ = TimeDelta::Infinite();
  // Per-RTT epoch bookkeeping.
  SimTime epoch_end_;
  bool epoch_valid_ = false;
  TimeDelta epoch_min_rtt_ = TimeDelta::Infinite();
  int epoch_samples_ = 0;
  bool grow_this_epoch_ = false;  // Vegas slow start doubles every *other* RTT
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_CC_VEGAS_H_
