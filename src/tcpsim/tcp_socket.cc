#include "src/tcpsim/tcp_socket.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace element {
namespace {

constexpr uint32_t kSynWireBytes = 60;  // header + MSS/wscale/SACK/TS options
constexpr TimeDelta kMaxRto = TimeDelta::FromSecondsInt(60);
constexpr TimeDelta kSynRetry = TimeDelta::FromSecondsInt(1);

const TcpSegmentPayload& AsTcp(const Packet& pkt) {
  return *static_cast<const TcpSegmentPayload*>(pkt.payload.get());
}

}  // namespace

TcpSocket::TcpSocket(EventLoop* loop, Rng rng, Config config, uint64_t flow_id, PacketSink* tx,
                     Demux* rx_demux)
    : loop_(loop),
      rng_(std::move(rng)),
      config_(config),
      flow_id_(flow_id),
      tx_(tx),
      rx_demux_(rx_demux),
      syn_retry_timer_(loop, [this] { OnSynRetry(); }),
      sndbuf_(config.sndbuf_bytes),
      sndbuf_autotune_(config.sndbuf_autotune),
      rto_(config.initial_rto),
      rto_timer_(loop, [this] { OnRtoFire(); }),
      pacing_timer_(loop, [this] { TrySendData(); }),
      writable_notify_timer_(loop,
                             [this] {
                               if (writable_cb_) {
                                 writable_cb_();
                               }
                             }),
      fin_retry_timer_(loop,
                       [this] {
                         if (!fin_acked_) {
                           SendFinSegment();
                         }
                       }),
      delayed_ack_timer_(loop, [this] { SendAck(); }),
      readable_wakeup_timer_(loop, [this] {
        if (ReadableBytes() > 0 && readable_cb_) {
          readable_cb_();
        }
      }) {
  cc_ = MakeCongestionControl(config_.congestion_control);
  rx_demux_->Register(flow_id_, this);
}

TcpSocket::~TcpSocket() {
  // Timers cancel themselves on destruction; nothing scheduled by this socket
  // can fire after this point.
  rx_demux_->Unregister(flow_id_);
}

// ---------------------------------------------------------------------------
// Connection lifecycle
// ---------------------------------------------------------------------------

void TcpSocket::Connect() {
  ELEMENT_DCHECK(state_ == State::kClosed) << "Connect() on a non-closed socket";
  state_ = State::kSynSent;
  established_time_ = loop_->now();  // records SYN time until established
  TcpSegmentPayload syn;
  syn.syn = true;
  syn.receive_window = AdvertisedWindow();
  EmitSegment(syn, 0);
  syn_retry_timer_.RestartAfter(kSynRetry);
}

void TcpSocket::OnSynRetry() {
  if (state_ != State::kSynSent) {
    return;
  }
  state_ = State::kClosed;
  Connect();
}

void TcpSocket::Listen() {
  ELEMENT_DCHECK(state_ == State::kClosed) << "Listen() on a non-closed socket";
  state_ = State::kListen;
}

void TcpSocket::BecomeEstablished() {
  state_ = State::kEstablished;
  TimeDelta handshake_rtt = loop_->now() - established_time_;
  established_time_ = loop_->now();
  delivered_time_ = loop_->now();
  cc_->OnConnectionStart(loop_->now(), config_.mss);
  if (handshake_rtt > TimeDelta::Zero()) {
    UpdateRtt(handshake_rtt);
  }
  if (established_cb_) {
    established_cb_();
  }
  TrySendData();
}

// ---------------------------------------------------------------------------
// Application I/O
// ---------------------------------------------------------------------------

size_t TcpSocket::SndBufFree() const {
  size_t used = SndBufUsed();
  return used >= sndbuf_ ? 0 : sndbuf_ - used;
}

size_t TcpSocket::Write(size_t n) {
  if (close_requested_) {
    return 0;  // write side is shut
  }
  size_t accepted = std::min(n, SndBufFree());
  if (accepted > 0) {
    if (telemetry_.recording()) {
      telemetry_.EmitAlways(telemetry::TraceRecord::Range(
          telemetry::RecordKind::kAppWrite, flow_id_, loop_->now(), write_seq_,
          write_seq_ + accepted));
    }
    write_seq_ += accepted;
    if (established()) {
      TrySendData();
    }
  }
  if (accepted < n) {
    writable_blocked_ = true;
  }
  AuditSequenceInvariants();
  return accepted;
}

size_t TcpSocket::Read(size_t max) {
  size_t n = std::min<uint64_t>(max, ReadableBytes());
  if (n > 0) {
    if (telemetry_.recording()) {
      telemetry_.EmitAlways(telemetry::TraceRecord::Range(
          telemetry::RecordKind::kAppRead, flow_id_, loop_->now(), read_seq_, read_seq_ + n));
    }
    read_seq_ += n;
  }
  AuditSequenceInvariants();
  return n;
}

void TcpSocket::SetSndBuf(size_t bytes) {
  // Like SO_SNDBUF: pins the size and turns off kernel auto-tuning.
  sndbuf_ = bytes;
  sndbuf_autotune_ = false;
  NotifyWritableIfNeeded();
}

// ---------------------------------------------------------------------------
// Sender half
// ---------------------------------------------------------------------------

uint64_t TcpSocket::CwndBytes() const {
  double segments = std::max(cc_->CwndSegments(), 2.0);
  return static_cast<uint64_t>(segments * config_.mss);
}

uint64_t TcpSocket::EffectiveInFlight() const {
  // SACK scoreboard pipe: bytes believed to be in the network.
  uint64_t total = snd_nxt_ - snd_una_;
  uint64_t gone = sacked_bytes_ + lost_bytes_;
  return gone >= total ? 0 : total - gone;
}

bool TcpSocket::RetransmitOneLost() {
  if (lost_bytes_ == 0) {
    return false;
  }
  for (auto& [seq, meta] : outstanding_) {
    if (seq >= highest_sacked_) {
      break;
    }
    if (meta.lost) {
      SendDataSegment(seq, meta.len, /*retransmit=*/true);
      return true;
    }
  }
  return false;
}

void TcpSocket::TrySendData() {
  if (!established()) {
    return;
  }
  // RFC 2861: when the connection restarts after an idle period (nothing in
  // flight, nothing sent for >= RTO), let the CC validate its window.
  if (have_send_activity_ && snd_una_ == snd_nxt_ && write_seq_ > snd_nxt_) {
    TimeDelta idle = loop_->now() - last_send_activity_;
    if (idle >= rto_) {
      cc_->OnApplicationIdle(loop_->now(), idle, rto_);
    }
  }
  std::optional<DataRate> pacing = cc_->PacingRate();
  while (true) {
    uint64_t window = std::min<uint64_t>(CwndBytes(), peer_rwnd_);
    if (EffectiveInFlight() + config_.mss > window) {
      app_limited_now_ = false;
      break;
    }
    if (pacing.has_value() && !pacing->IsZero() && loop_->now() < next_send_time_) {
      if (!pacing_timer_.pending()) {
        pacing_timer_.Restart(next_send_time_);
      }
      break;
    }

    uint32_t sent_len = 0;
    if (RetransmitOneLost()) {
      sent_len = config_.mss;  // pacing accounting only
    } else {
      // After a FIN, snd_nxt_ sits one past write_seq_ (the phantom byte).
      uint64_t avail = write_seq_ > snd_nxt_ ? write_seq_ - snd_nxt_ : 0;
      if (avail == 0) {
        app_limited_now_ = true;
        break;
      }
      if (config_.nagle && avail < config_.mss && snd_nxt_ > snd_una_) {
        // Nagle: park the sub-MSS tail until outstanding data is ACKed (or
        // the application writes enough to fill a segment).
        app_limited_now_ = true;
        break;
      }
      uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(config_.mss, avail));
      SendDataSegment(snd_nxt_, len, /*retransmit=*/false);
      snd_nxt_ += len;
      sent_len = len;
    }
    if (pacing.has_value() && !pacing->IsZero()) {
      SimTime base = std::max(next_send_time_, loop_->now());
      next_send_time_ = base + pacing->TransmitTime(sent_len + kIpTcpHeaderBytes);
    }
  }
  MaybeSendFin();
}

void TcpSocket::SendDataSegment(uint64_t seq, uint32_t len, bool retransmit) {
  if (!retransmit) {
    SegMeta meta;
    meta.len = len;
    meta.first_tx = loop_->now();
    meta.last_tx = loop_->now();
    meta.delivered_at_send = delivered_bytes_;
    meta.delivered_time_at_send = delivered_time_;
    meta.app_limited = app_limited_now_;
    outstanding_[seq] = meta;
  } else {
    auto it = outstanding_.find(seq);
    if (it != outstanding_.end()) {
      SegMeta& meta = it->second;
      meta.retransmitted = true;
      meta.last_tx = loop_->now();
      if (meta.lost) {
        meta.lost = false;  // back in the pipe
        lost_bytes_ -= meta.len;
      }
      len = meta.len;
    } else {
      len = static_cast<uint32_t>(std::min<uint64_t>(config_.mss, snd_nxt_ - seq));
    }
    if (len == 0) {
      return;
    }
    ++total_retrans_;
  }
  if (telemetry_.recording()) {
    telemetry_.EmitAlways(telemetry::TraceRecord::Range(
        telemetry::RecordKind::kTcpTransmit, flow_id_, loop_->now(), seq, seq + len,
        retransmit ? telemetry::kFlagRetransmit : 0));
  }
  cc_->OnPacketSent(loop_->now(), EffectiveInFlight());

  TcpSegmentPayload seg;
  seg.seq = seq;
  seg.payload_bytes = len;
  seg.ack = true;
  seg.ack_seq = rcv_nxt_;
  seg.receive_window = AdvertisedWindow();
  seg.retransmit = retransmit;
  if (cwr_pending_) {
    seg.cwr = true;
    cwr_pending_ = false;
  }
  last_send_activity_ = loop_->now();
  have_send_activity_ = true;
  EmitSegment(seg, len);
  // Arm on first transmission; restart on retransmissions so the timer
  // tracks the newest repair attempt (tcp_rearm_rto behaviour) instead of
  // racing with an in-progress SACK recovery.
  if (retransmit || !rto_timer_.pending()) {
    ArmRto();
  }
}

void TcpSocket::UpdateRtt(TimeDelta sample) {
  if (sample <= TimeDelta::Zero()) {
    return;
  }
  min_rtt_ = std::min(min_rtt_, sample);
  if (srtt_.IsZero()) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    TimeDelta err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = rttvar_ * 0.75 + err * 0.25;
    srtt_ = srtt_ * 0.875 + sample * 0.125;
  }
  rto_ = std::max(config_.min_rto, srtt_ + rttvar_ * 4.0);
  rto_ = std::min(rto_, kMaxRto);
}

void TcpSocket::ReactToEcnEcho() {
  TimeDelta spacing = srtt_.IsZero() ? TimeDelta::FromMillis(100) : srtt_;
  if (last_ecn_reaction_ + spacing > loop_->now() && last_ecn_reaction_ > SimTime::Zero()) {
    return;
  }
  last_ecn_reaction_ = loop_->now();
  cwr_pending_ = true;
  cc_->OnLoss(loop_->now(), EffectiveInFlight(), config_.mss);
}

void TcpSocket::Close() {
  if (close_requested_) {
    return;
  }
  close_requested_ = true;
  MaybeSendFin();
}

void TcpSocket::MaybeSendFin() {
  // The FIN goes out once every buffered byte has been transmitted.
  if (!close_requested_ || fin_sent_ || !established() || snd_nxt_ < write_seq_) {
    return;
  }
  fin_seq_ = write_seq_;
  snd_nxt_ = fin_seq_ + 1;  // the FIN consumes one sequence number
  fin_sent_ = true;
  SendFinSegment();
}

void TcpSocket::SendFinSegment() {
  TcpSegmentPayload fin;
  fin.fin = true;
  fin.seq = fin_seq_;
  fin.ack = true;
  fin.ack_seq = rcv_nxt_;
  fin.receive_window = AdvertisedWindow();
  EmitSegment(fin, 0);
  // Retransmit until acknowledged, with the connection's current RTO.
  fin_retry_timer_.RestartAfter(rto_);
}

void TcpSocket::ProcessSackBlocks(const std::vector<SackBlock>& blocks,
                                  TimeDelta* rtt_sample) {
  for (const SackBlock& block : blocks) {
    auto it = outstanding_.lower_bound(block.begin);
    for (; it != outstanding_.end() && it->first + it->second.len <= block.end; ++it) {
      SegMeta& meta = it->second;
      if (meta.sacked) {
        continue;
      }
      meta.sacked = true;
      sacked_bytes_ += meta.len;
      if (meta.lost) {
        meta.lost = false;
        lost_bytes_ -= meta.len;
      }
      delivered_bytes_ += meta.len;
      delivered_time_ = loop_->now();
      if (!meta.retransmitted) {
        *rtt_sample = loop_->now() - meta.last_tx;
      }
    }
    highest_sacked_ = std::max(highest_sacked_, block.end);
  }
}

void TcpSocket::MarkLosses() {
  if (highest_sacked_ <= snd_una_) {
    return;
  }
  bool newly_lost = false;
  uint64_t loss_edge =
      highest_sacked_ > 3ull * config_.mss ? highest_sacked_ - 3ull * config_.mss : 0;
  for (auto& [seq, meta] : outstanding_) {
    if (seq + meta.len > loss_edge) {
      break;
    }
    if (meta.sacked || meta.lost) {
      continue;
    }
    // A retransmission is only re-declared lost once it has had a full RTT
    // (plus variance headroom) to land and be acknowledged; a tighter guard
    // produces spurious duplicate retransmissions.
    TimeDelta retx_grace = srtt_ + std::max(rttvar_ * 4.0, srtt_ * 0.5);
    if (meta.retransmitted && loop_->now() - meta.last_tx < retx_grace) {
      continue;
    }
    meta.lost = true;
    lost_bytes_ += meta.len;
    newly_lost = true;
  }
  if (newly_lost && !in_recovery_) {
    in_recovery_ = true;
    recovery_end_ = snd_nxt_;
    EmitCcEpisode(telemetry::CcEpisode::kRecovery);
    cc_->OnLoss(loop_->now(), EffectiveInFlight(), config_.mss);
    MaybeAutotuneSndbuf();
  }
}

void TcpSocket::OnAckSegment(const TcpSegmentPayload& seg) {
  peer_rwnd_ = seg.receive_window;
  if (seg.ece && config_.ecn) {
    ReactToEcnEcho();
  }

  TimeDelta rtt_sample = TimeDelta::Zero();
  DataRate rate_sample = DataRate::Zero();
  bool sample_app_limited = false;
  uint64_t sacked_before = sacked_bytes_;
  ProcessSackBlocks(seg.sacks, &rtt_sample);
  if (sacked_bytes_ != sacked_before && snd_una_ < snd_nxt_) {
    ArmRto();  // forward progress via SACK also defers the timeout
  }

  uint64_t ack = std::min(seg.ack_seq, snd_nxt_);
  uint64_t acked = 0;
  if (ack > snd_una_) {
    acked = ack - snd_una_;
    if (telemetry_.recording()) {
      telemetry::TraceRecord r = telemetry::TraceRecord::Range(
          telemetry::RecordKind::kSegmentAcked, flow_id_, loop_->now(), snd_una_, ack);
      r.u.range.aux = ack;  // snd_una after this ACK
      telemetry_.EmitAlways(r);
    }
    auto it = outstanding_.begin();
    while (it != outstanding_.end() && it->first + it->second.len <= ack) {
      SegMeta& meta = it->second;
      if (meta.sacked) {
        sacked_bytes_ -= meta.len;
      } else {
        if (meta.lost) {
          lost_bytes_ -= meta.len;  // arrived after all (spurious loss mark)
        }
        delivered_bytes_ += meta.len;
        delivered_time_ = loop_->now();
        if (!meta.retransmitted) {
          rtt_sample = loop_->now() - meta.last_tx;
          TimeDelta interval = loop_->now() - meta.delivered_time_at_send;
          if (interval > TimeDelta::Zero()) {
            uint64_t delivered_in_interval = delivered_bytes_ - meta.delivered_at_send;
            rate_sample = RateOver(static_cast<int64_t>(delivered_in_interval), interval);
            sample_app_limited = meta.app_limited;
          }
        }
      }
      it = outstanding_.erase(it);
    }
    snd_una_ = ack;
    if (highest_sacked_ < snd_una_) {
      highest_sacked_ = snd_una_;
    }
    if (fin_sent_ && !fin_acked_ && ack >= fin_seq_ + 1) {
      fin_acked_ = true;
      fin_retry_timer_.Cancel();
    }
  }

  MarkLosses();

  if (acked > 0) {
    if (rtt_sample > TimeDelta::Zero()) {
      UpdateRtt(rtt_sample);
    }
    if (!rate_sample.IsZero()) {
      latest_rate_sample_ = rate_sample;
    }
    if (in_recovery_ && snd_una_ >= recovery_end_) {
      in_recovery_ = false;
      EmitCcEpisode(telemetry::CcEpisode::kOpen);
    }

    AckSample sample;
    sample.now = loop_->now();
    sample.acked_bytes = acked;
    sample.bytes_in_flight = EffectiveInFlight();
    sample.rtt = rtt_sample;
    sample.srtt = srtt_;
    sample.min_rtt = min_rtt_;
    sample.delivered_bytes = delivered_bytes_;
    sample.delivery_rate = rate_sample;
    sample.app_limited = sample_app_limited;
    sample.in_recovery = in_recovery_;
    sample.mss = config_.mss;
    cc_->OnAck(sample);

    MaybeAutotuneSndbuf();
    rto_backoff_ = 0;
    if (snd_una_ == snd_nxt_) {
      CancelRto();
    } else {
      ArmRto();
    }
    NotifyWritableIfNeeded();
  }
  TrySendData();
}

void TcpSocket::MaybeAutotuneSndbuf() {
  if (!sndbuf_autotune_) {
    return;
  }
  // Linux tcp_new_space keeps sk_sndbuf around twice the congestion window
  // and never shrinks it — the ratchet that, combined with loss-based CC,
  // produces the paper's sender-side bufferbloat.
  uint64_t target = 2 * CwndBytes() + 16 * config_.mss;
  if (target > sndbuf_) {
    sndbuf_ = std::min<uint64_t>(target, config_.sndbuf_max_bytes);
    NotifyWritableIfNeeded();
  }
}

void TcpSocket::ArmRto() {
  TimeDelta effective = rto_;
  for (int i = 0; i < rto_backoff_ && effective < kMaxRto; ++i) {
    effective = std::min(effective * 2.0, kMaxRto);
  }
  rto_timer_.RestartAfter(effective);
}

void TcpSocket::CancelRto() { rto_timer_.Cancel(); }

void TcpSocket::OnRtoFire() {
  if (snd_una_ >= snd_nxt_) {
    return;
  }
  cc_->OnRetransmissionTimeout(loop_->now());
  in_recovery_ = false;
  EmitCcEpisode(telemetry::CcEpisode::kRtoRecovery);
  ++rto_backoff_;
  // Mark every un-SACKed outstanding segment lost; the scoreboard-driven
  // retransmission path resends them under the collapsed window. snd_nxt_ is
  // never rewound, so late cumulative ACKs keep their meaning, and resends
  // are tagged as retransmissions (Karn's rule holds for RTT samples).
  for (auto& [seq, meta] : outstanding_) {
    if (!meta.sacked && !meta.lost) {
      meta.lost = true;
      lost_bytes_ += meta.len;
    }
  }
  // Allow the lowest lost segment through even if highest_sacked_ is behind.
  highest_sacked_ = std::max(highest_sacked_, snd_nxt_);
  ArmRto();
  TrySendData();
  AuditSequenceInvariants();
}

void TcpSocket::NotifyWritableIfNeeded() {
  if (!writable_blocked_ || SndBufFree() < config_.mss) {
    return;
  }
  writable_blocked_ = false;
  if (writable_cb_) {
    writable_notify_timer_.RestartAfter(TimeDelta::Zero());
  }
}

// ---------------------------------------------------------------------------
// Receiver half
// ---------------------------------------------------------------------------

uint64_t TcpSocket::AdvertisedWindow() const {
  uint64_t occupancy = (rcv_nxt_ - read_seq_) + ooo_bytes_;
  uint64_t window = occupancy >= config_.rcvbuf_bytes ? 0 : config_.rcvbuf_bytes - occupancy;
  if (config_.drwa_rcv_window_moderation && rcv_rate_bytes_per_s_ > 0.0) {
    uint64_t cap = static_cast<uint64_t>(rcv_rate_bytes_per_s_ *
                                         config_.drwa_target_delay.ToSeconds());
    cap = std::max<uint64_t>(cap, 4ull * config_.mss);  // never choke to zero
    window = std::min(window, cap);
  }
  return window;
}

void TcpSocket::OnDataSegment(const Packet& pkt, const TcpSegmentPayload& seg) {
  // Arrival-rate EWMA over 200 ms windows (feeds DRWA window moderation).
  if (config_.drwa_rcv_window_moderation) {
    rcv_rate_window_bytes_ += seg.payload_bytes;
    TimeDelta window_len = loop_->now() - rcv_rate_window_start_;
    if (window_len >= TimeDelta::FromMillis(200)) {
      double inst = static_cast<double>(rcv_rate_window_bytes_) / window_len.ToSeconds();
      rcv_rate_bytes_per_s_ =
          rcv_rate_bytes_per_s_ <= 0.0 ? inst : 0.75 * rcv_rate_bytes_per_s_ + 0.25 * inst;
      rcv_rate_window_bytes_ = 0;
      rcv_rate_window_start_ = loop_->now();
    }
  }
  if (pkt.ecn_marked) {
    echo_ece_ = true;
  }
  if (seg.cwr) {
    echo_ece_ = false;
  }
  uint64_t seq = seg.seq;
  uint64_t end = seq + seg.payload_bytes;

  if (end <= rcv_nxt_) {
    SendAck();  // stale duplicate; re-ack
    return;
  }
  if (seq <= rcv_nxt_) {
    if (telemetry_.recording()) {
      telemetry_.EmitAlways(telemetry::TraceRecord::Range(
          telemetry::RecordKind::kTcpRxSegment, flow_id_, loop_->now(), rcv_nxt_, end));
    }
    rcv_nxt_ = end;
    bool filled_hole = false;
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && it->first <= rcv_nxt_) {
      uint64_t ooo_end = it->first + it->second;
      if (ooo_end > rcv_nxt_) {
        rcv_nxt_ = ooo_end;
      }
      ooo_bytes_ -= it->second;
      it = out_of_order_.erase(it);
      filled_hole = true;
    }
    ++segs_since_ack_;
    if (pending_peer_fin_ && peer_fin_seq_ <= rcv_nxt_) {
      peer_fin_received_ = true;
      pending_peer_fin_ = false;
      rcv_nxt_ = std::max(rcv_nxt_, peer_fin_seq_ + 1);
      SendAck();
      if (eof_cb_) {
        eof_cb_();
      }
    } else if (filled_hole || segs_since_ack_ >= 2 || !out_of_order_.empty()) {
      SendAck();
    } else {
      ScheduleDelayedAck();
    }
    ScheduleReadableWakeup();
  } else {
    // Out of order: buffer and send an immediate duplicate ACK with SACK.
    if (out_of_order_.find(seq) == out_of_order_.end()) {
      out_of_order_[seq] = seg.payload_bytes;
      ooo_bytes_ += seg.payload_bytes;
      sack_hint_ = seq;
      if (telemetry_.recording()) {
        telemetry_.EmitAlways(telemetry::TraceRecord::Range(
            telemetry::RecordKind::kTcpRxSegment, flow_id_, loop_->now(), seq, end,
            telemetry::kFlagOutOfOrder));
      }
    }
    SendAck();
  }
}

void TcpSocket::SendAck() {
  segs_since_ack_ = 0;
  delayed_ack_timer_.Cancel();
  TcpSegmentPayload ack;
  ack.ack = true;
  ack.ack_seq = rcv_nxt_;
  ack.receive_window = AdvertisedWindow();
  ack.ece = echo_ece_;

  if (!out_of_order_.empty()) {
    // Build merged SACK ranges; report the block containing the most recent
    // arrival first (RFC 2018), capped at kMaxSackBlocks.
    std::vector<SackBlock> merged;
    for (const auto& [b, len] : out_of_order_) {
      uint64_t e = b + len;
      if (!merged.empty() && b <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, e);
      } else {
        merged.push_back({b, e});
      }
    }
    for (size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].begin <= sack_hint_ && sack_hint_ < merged[i].end) {
        std::rotate(merged.begin(), merged.begin() + static_cast<long>(i), merged.end());
        break;
      }
    }
    if (merged.size() > TcpSegmentPayload::kMaxSackBlocks) {
      merged.resize(TcpSegmentPayload::kMaxSackBlocks);
    }
    ack.sacks = std::move(merged);
  }
  EmitSegment(ack, 0);
}

void TcpSocket::ScheduleDelayedAck() {
  if (delayed_ack_timer_.pending()) {
    return;
  }
  delayed_ack_timer_.RestartAfter(config_.delayed_ack_timeout);
}

void TcpSocket::ScheduleReadableWakeup() {
  if (readable_wakeup_timer_.pending() || !readable_cb_) {
    return;
  }
  TimeDelta latency =
      TimeDelta::FromSeconds(rng_.Exponential(config_.app_wakeup_latency_mean.ToSeconds()));
  readable_wakeup_timer_.RestartAfter(latency);
}

// ---------------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------------

void TcpSocket::EmitSegment(TcpSegmentPayload seg, uint32_t payload_bytes,
                            uint32_t priority_band) {
  Packet pkt;
  pkt.flow_id = flow_id_;
  pkt.priority_band = priority_band;
  pkt.created = loop_->now();
  if (seg.syn) {
    pkt.size_bytes = kSynWireBytes;
  } else {
    pkt.size_bytes = kIpTcpHeaderBytes + payload_bytes +
                     static_cast<uint32_t>(seg.sacks.empty() ? 0 : 4 + 8 * seg.sacks.size());
  }
  pkt.ecn_capable = config_.ecn && payload_bytes > 0;
  pkt.payload = MakePooledPayload<TcpSegmentPayload>(loop_->payload_arena(), std::move(seg));
  ++segs_out_;
  ++info_version_;
  tx_->Deliver(std::move(pkt));
}

void TcpSocket::Deliver(Packet pkt) {
  const TcpSegmentPayload& seg = AsTcp(pkt);
  ++segs_in_;
  ++info_version_;

  switch (state_) {
    case State::kClosed:
      return;
    case State::kListen:
      if (seg.syn && !seg.ack) {
        peer_rwnd_ = seg.receive_window;
        BecomeEstablished();
        TcpSegmentPayload synack;
        synack.syn = true;
        synack.ack = true;
        synack.ack_seq = 0;
        synack.receive_window = AdvertisedWindow();
        EmitSegment(synack, 0);
      }
      return;
    case State::kSynSent:
      if (seg.syn && seg.ack) {
        syn_retry_timer_.Cancel();
        peer_rwnd_ = seg.receive_window;
        BecomeEstablished();
        SendAck();
      }
      return;
    case State::kSynReceived:
    case State::kEstablished:
      break;
  }

  if (seg.syn) {
    // Duplicate SYN (our SYN-ACK was lost): repeat it.
    TcpSegmentPayload synack;
    synack.syn = true;
    synack.ack = true;
    synack.receive_window = AdvertisedWindow();
    EmitSegment(synack, 0);
    return;
  }
  if (seg.payload_bytes > 0) {
    OnDataSegment(pkt, seg);
  }
  if (seg.fin && !peer_fin_received_) {
    if (seg.seq <= rcv_nxt_) {
      // All data before the FIN has arrived: consume its phantom byte.
      peer_fin_received_ = true;
      pending_peer_fin_ = false;
      rcv_nxt_ = std::max(rcv_nxt_, seg.seq + 1);
      SendAck();
      if (eof_cb_) {
        eof_cb_();
      }
    } else {
      pending_peer_fin_ = true;  // data still missing; re-check on arrival
      peer_fin_seq_ = seg.seq;
      SendAck();
    }
  }
  if (seg.ack) {
    OnAckSegment(seg);
  }
  AuditSequenceInvariants();
}

void TcpSocket::AuditSequenceInvariants() const {
  if constexpr (!kAuditsEnabled) {
    return;
  }
  // -- sender sequence space --
  ELEMENT_AUDIT(snd_una_ <= snd_nxt_)
      << "snd_una=" << snd_una_ << " > snd_nxt=" << snd_nxt_ << " flow=" << flow_id_;
  uint64_t send_limit = write_seq_ + (fin_sent_ ? 1 : 0);  // FIN's phantom byte
  ELEMENT_AUDIT(snd_nxt_ <= send_limit)
      << "snd_nxt=" << snd_nxt_ << " beyond app writes=" << write_seq_
      << " fin_sent=" << fin_sent_ << " flow=" << flow_id_;
  ELEMENT_AUDIT(snd_una_ <= send_limit)
      << "sndbuf occupancy negative: snd_una=" << snd_una_ << " write_seq=" << write_seq_
      << " fin_sent=" << fin_sent_ << " flow=" << flow_id_;

  // -- SACK scoreboard vs. the retransmit queue --
  uint64_t sacked = 0;
  uint64_t lost = 0;
  for (const auto& [seq, meta] : outstanding_) {
    ELEMENT_AUDIT(seq + meta.len <= snd_nxt_)
        << "outstanding segment [" << seq << "," << seq + meta.len << ") past snd_nxt="
        << snd_nxt_ << " flow=" << flow_id_;
    ELEMENT_AUDIT(seq + meta.len > snd_una_)
        << "fully-acked segment [" << seq << "," << seq + meta.len
        << ") still outstanding, snd_una=" << snd_una_ << " flow=" << flow_id_;
    ELEMENT_AUDIT(!(meta.sacked && meta.lost))
        << "segment at " << seq << " both sacked and lost, flow=" << flow_id_;
    if (meta.sacked) {
      sacked += meta.len;
    }
    if (meta.lost) {
      lost += meta.len;
    }
  }
  ELEMENT_AUDIT(sacked == sacked_bytes_)
      << "sacked_bytes out of sync: counter=" << sacked_bytes_ << " scoreboard=" << sacked
      << " flow=" << flow_id_;
  ELEMENT_AUDIT(lost == lost_bytes_)
      << "lost_bytes out of sync: counter=" << lost_bytes_ << " scoreboard=" << lost
      << " flow=" << flow_id_;

  // -- receiver sequence space --
  ELEMENT_AUDIT(read_seq_ + (peer_fin_received_ ? 1 : 0) <= rcv_nxt_)
      << "app read past rcv_nxt: read_seq=" << read_seq_ << " rcv_nxt=" << rcv_nxt_
      << " flow=" << flow_id_;
  uint64_t ooo = 0;
  for (const auto& [seq, len] : out_of_order_) {
    ELEMENT_AUDIT(seq > rcv_nxt_)
        << "out-of-order range at " << seq << " not beyond rcv_nxt=" << rcv_nxt_
        << " flow=" << flow_id_;
    ooo += len;
  }
  ELEMENT_AUDIT(ooo == ooo_bytes_)
      << "ooo_bytes out of sync: counter=" << ooo_bytes_ << " queue=" << ooo
      << " flow=" << flow_id_;
}

void TcpSocket::TestOnlyCorruptSequenceStateForAudit() {
  snd_una_ = snd_nxt_ + 1;
  AuditSequenceInvariants();
}

const TcpInfoData& TcpSocket::SharedInfoPage() const {
  if (shared_page_version_ != info_version_) {
    shared_page_ = GetTcpInfo();
    shared_page_version_ = info_version_;
  }
  return shared_page_;
}

TcpInfoData TcpSocket::GetTcpInfo() const {
  TcpInfoData info;
  info.tcpi_bytes_acked = snd_una_;
  uint64_t pipe = snd_nxt_ - snd_una_;
  info.tcpi_unacked = static_cast<uint32_t>((pipe + config_.mss - 1) / config_.mss);
  info.tcpi_snd_mss = config_.mss;
  info.tcpi_snd_cwnd = static_cast<uint32_t>(std::max(cc_->CwndSegments(), 2.0));
  info.tcpi_snd_ssthresh = cc_->SsthreshSegments();
  info.tcpi_segs_out = segs_out_;
  info.tcpi_total_retrans = static_cast<uint32_t>(total_retrans_);
  info.tcpi_notsent_bytes =
      static_cast<uint32_t>(write_seq_ > snd_nxt_ ? write_seq_ - snd_nxt_ : 0);
  info.tcpi_segs_in = segs_in_;
  info.tcpi_rcv_mss = config_.mss;
  info.tcpi_bytes_received = rcv_nxt_ - (peer_fin_received_ ? 1 : 0);
  info.tcpi_rtt_us = static_cast<uint32_t>(srtt_.ToMicros());
  info.tcpi_rttvar_us = static_cast<uint32_t>(rttvar_.ToMicros());
  info.tcpi_min_rtt_us =
      min_rtt_.IsInfinite() ? 0 : static_cast<uint32_t>(min_rtt_.ToMicros());
  info.tcpi_delivery_rate_bps = static_cast<uint64_t>(latest_rate_sample_.bps());
  std::optional<DataRate> pacing = cc_->PacingRate();
  info.tcpi_pacing_rate_bps = pacing.has_value() ? static_cast<uint64_t>(pacing->bps()) : 0;
  return info;
}

}  // namespace element
