// Testbed: builds the sender/WAN-emulator/receiver topology of the paper's
// experiments — a duplex path with a configurable bottleneck qdisc and link
// model — and wires connected TCP socket pairs onto it.

#ifndef ELEMENT_SRC_TCPSIM_TESTBED_H_
#define ELEMENT_SRC_TCPSIM_TESTBED_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/evloop/event_loop.h"
#include "src/netsim/instrumented_qdisc.h"
#include "src/netsim/link_model.h"
#include "src/netsim/pipe.h"
#include "src/tcpsim/tcp_socket.h"
#include "src/telemetry/spine.h"

namespace element {

enum class QdiscType { kPfifoFast, kCoDel, kFqCoDel, kPie, kRed };
enum class LinkType { kFixed, kStepped, kLan, kCable, kWifi, kLte };

struct PathConfig {
  // Bottleneck (data direction) configuration.
  QdiscType qdisc = QdiscType::kPfifoFast;
  size_t queue_limit_packets = 100;  // ~2x BDP for the default profile
  bool ecn = false;

  // Wrap the bottleneck qdisc in an InstrumentedQdisc (per-packet sojourn
  // probe, the paper's §7 lower-layer tracing extension).
  bool instrument_bottleneck = false;

  LinkType link = LinkType::kFixed;
  DataRate rate = DataRate::Mbps(10);
  TimeDelta one_way_delay = TimeDelta::FromMillis(25);
  double loss_probability = 0.0;
  std::vector<SteppedLinkModel::Step> steps;  // for LinkType::kStepped

  // Reverse (ACK) direction; generous defaults so ACKs are not the bottleneck
  // unless a test wants them to be.
  DataRate reverse_rate = DataRate::Gbps(1);
  TimeDelta reverse_one_way_delay = TimeDelta::Zero();  // Zero => mirror forward
  size_t reverse_queue_limit_packets = 1000;
};

// Shared qdisc factory used by the Testbed and the topology layer
// (src/topo/): builds one bottleneck discipline with the repo's standard
// parameterization (FQ-CoDel gets a roomy per-qdisc limit, RED thresholds at
// 20%/60% of the limit). Disciplines that need randomness fork `rng`.
std::unique_ptr<Qdisc> MakeBottleneckQdisc(QdiscType type, size_t limit, bool ecn, Rng* rng);

// Named production-network profiles from the paper (Sections 2.2 and 4.3).
PathConfig LanProfile();
PathConfig CableProfile(bool upload = false);
PathConfig WifiProfile();
PathConfig LteProfile(bool upload = false);

class Testbed {
 public:
  Testbed(uint64_t seed, const PathConfig& config);

  EventLoop& loop() { return loop_; }
  DuplexPath& path() { return *path_; }
  Rng& rng() { return rng_; }
  const PathConfig& config() const { return config_; }

  struct Flow {
    TcpSocket* sender = nullptr;
    TcpSocket* receiver = nullptr;
    uint64_t flow_id = 0;
  };

  // Creates a connected pair. When `sender_at_client`, data crosses the
  // forward pipe (the configured bottleneck); otherwise it crosses reverse.
  // Connect() is initiated immediately by the sender.
  Flow CreateFlow(const TcpSocket::Config& socket_config, bool sender_at_client = true);

  // Client-only socket (Connect() already called); pair it with a TcpListener
  // installed on the server demux.
  TcpSocket* CreateClient(const TcpSocket::Config& socket_config);

  // Sum of a flow's base (propagation-only) round trip.
  TimeDelta BaseRtt() const;

  // Non-null when `instrument_bottleneck` was set.
  InstrumentedQdisc* bottleneck_probe() { return bottleneck_probe_; }

  // The testbed's telemetry spine — the default recording path. Both pipes'
  // qdiscs and every socket this testbed creates are bound to it at
  // construction; attach sinks (or per-flow sinks via a socket's
  // telemetry()) to start recording. With no consumers, producers skip all
  // telemetry work.
  telemetry::TelemetrySpine& spine() { return spine_; }

 private:
  std::unique_ptr<LinkModel> MakeForwardLink();

  PathConfig config_;
  EventLoop loop_;
  Rng rng_;
  telemetry::TelemetrySpine spine_;
  std::unique_ptr<DuplexPath> path_;
  InstrumentedQdisc* bottleneck_probe_ = nullptr;
  std::vector<std::unique_ptr<TcpSocket>> sockets_;
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_TESTBED_H_
