// Passive-open listener with BSD accept() semantics: registered as the
// fallback sink of a demux, it creates a new server-side TcpSocket for every
// incoming SYN of an unknown flow and hands it to the accept callback. This
// lets server applications (HTTP-ish responders, iperf servers) take any
// number of connections without pre-wiring each flow.

#ifndef ELEMENT_SRC_TCPSIM_TCP_LISTENER_H_
#define ELEMENT_SRC_TCPSIM_TCP_LISTENER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/evloop/event_loop.h"
#include "src/netsim/pipe.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {

class TcpListener : public PacketSink {
 public:
  using AcceptCallback = std::function<void(TcpSocket*)>;  // lint_sim: allow(std-function)

  // `rx_demux` is the demux on the listener's side of the path; `tx` is the
  // pipe its sockets reply into. The listener installs itself as the demux
  // fallback.
  TcpListener(EventLoop* loop, Rng rng, TcpSocket::Config config, PacketSink* tx,
              Demux* rx_demux);
  ~TcpListener() override;

  void SetAcceptCallback(AcceptCallback cb) { on_accept_ = std::move(cb); }

  // All sockets accepted so far (owned by the listener).
  const std::vector<std::unique_ptr<TcpSocket>>& connections() const { return connections_; }
  size_t accepted() const { return connections_.size(); }

  // PacketSink: receives packets for flows no socket has claimed.
  void Deliver(Packet pkt) override;

 private:
  EventLoop* loop_;
  Rng rng_;
  TcpSocket::Config config_;
  PacketSink* tx_;
  Demux* rx_demux_;
  AcceptCallback on_accept_;
  std::vector<std::unique_ptr<TcpSocket>> connections_;
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_TCP_LISTENER_H_
