// Packet-level TCP endpoint with a BSD-socket-shaped user API.
//
// One TcpSocket is one endpoint of a connection (both sender and receiver
// halves are present; the experiments mostly push data one way). The model
// covers what the paper's observations depend on:
//   - byte-accurate send buffer whose occupancy *is* the sender system delay,
//   - Linux-style ratcheting send-buffer auto-tuning (sndbuf ~ 2x cwnd),
//   - pluggable congestion control (Reno/Cubic/Vegas/BBR) with pacing,
//   - loss detection by 3 duplicate ACKs (NewReno-ish) and RTO (RFC 6298),
//   - receiver out-of-order queue (where loss-induced receiver delay forms),
//   - delayed ACKs, flow control, optional ECN,
//   - getsockopt(TCP_INFO) mirror for the ELEMENT estimators.

#ifndef ELEMENT_SRC_TCPSIM_TCP_SOCKET_H_
#define ELEMENT_SRC_TCPSIM_TCP_SOCKET_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/evloop/event_loop.h"
#include "src/netsim/pipe.h"
#include "src/tcpsim/congestion_control.h"
#include "src/tcpsim/tcp_info.h"
#include "src/telemetry/spine.h"
#include "src/tcpsim/tcp_segment.h"

namespace element {

class TcpSocket : public PacketSink {
 public:
  struct Config {
    uint32_t mss = kDefaultMss;
    std::string congestion_control = "cubic";
    bool ecn = false;

    // Send buffer, Linux tcp_wmem semantics: starts small, auto-tuning
    // ratchets it up toward ~2x the congestion window, capped at max.
    size_t sndbuf_bytes = 64 * 1024;
    bool sndbuf_autotune = true;
    size_t sndbuf_max_bytes = 4 * 1024 * 1024;

    size_t rcvbuf_bytes = 8 * 1024 * 1024;

    // DRWA-style receiver-side window moderation (the paper's related-work
    // baseline [37]): the advertised window is capped near
    // arrival_rate * drwa_target_delay, bounding the sender's inflight (and,
    // through the 2x-cwnd sndbuf ratchet, its buffer) from the receiver.
    bool drwa_rcv_window_moderation = false;
    TimeDelta drwa_target_delay = TimeDelta::FromMillis(150);

    // Nagle / autocorking: hold back a sub-MSS tail while earlier data is
    // unacknowledged, so bulk transfers emit full segments (as Linux does).
    bool nagle = true;

    TimeDelta min_rto = TimeDelta::FromMillis(200);
    TimeDelta initial_rto = TimeDelta::FromSecondsInt(1);
    TimeDelta delayed_ack_timeout = TimeDelta::FromMillis(40);

    // Mean process-scheduling latency before the app's readable callback
    // runs; models the small baseline receiver-side delay.
    TimeDelta app_wakeup_latency_mean = TimeDelta::FromMicros(300);
  };

  enum class State { kClosed, kListen, kSynSent, kSynReceived, kEstablished };
  // Teardown is tracked by flags rather than the full TCP state machine:
  // Close() half-closes the write side; the read side stays usable until the
  // peer's FIN arrives (signalled via the EOF callback).

  TcpSocket(EventLoop* loop, Rng rng, Config config, uint64_t flow_id, PacketSink* tx,
            Demux* rx_demux);
  ~TcpSocket() override;

  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  // ---- Connection lifecycle ----
  void Connect();  // active open (client)
  void Listen();   // passive open (server)
  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  void SetEstablishedCallback(std::function<void()> cb) {  // lint_sim: allow(std-function)
    established_cb_ = std::move(cb);
  }
  SimTime established_time() const { return established_time_; }

  // ---- Teardown ----
  // Half-closes the write side: no further writes are accepted; a FIN is sent
  // once all buffered data has been transmitted (and is retransmitted until
  // acknowledged).
  void Close();
  bool close_requested() const { return close_requested_; }
  bool fin_acked() const { return fin_acked_; }
  // True once the peer's FIN arrived and all prior data was delivered.
  bool peer_closed() const { return peer_fin_received_; }
  void SetEofCallback(std::function<void()> cb) {  // lint_sim: allow(std-function)
    eof_cb_ = std::move(cb);
  }

  // ---- Application I/O (non-blocking) ----
  // Accepts up to `n` bytes into the send buffer; returns bytes accepted.
  // Returns 0 after Close().
  size_t Write(size_t n);
  // Consumes up to `max` bytes from the receive buffer; returns bytes read.
  size_t Read(size_t max);
  size_t ReadableBytes() const {
    // The peer's FIN consumes a phantom sequence number that is not app data.
    uint64_t stream_end = rcv_nxt_ - (peer_fin_received_ ? 1 : 0);
    return static_cast<size_t>(stream_end - read_seq_);
  }
  uint64_t app_bytes_written() const { return write_seq_; }
  uint64_t app_bytes_read() const { return read_seq_; }

  // Invoked (once per transition) when send-buffer space frees after a short
  // write, and when new data becomes readable.
  void SetWritableCallback(std::function<void()> cb) {  // lint_sim: allow(std-function)
    writable_cb_ = std::move(cb);
  }
  void SetReadableCallback(std::function<void()> cb) {  // lint_sim: allow(std-function)
    readable_cb_ = std::move(cb);
  }

  // ---- Socket options ----
  TcpInfoData GetTcpInfo() const;  // getsockopt(TCP_INFO)
  // The paper's §7 kernel-shared-page optimization: a versioned snapshot that
  // is only recomputed when the connection state actually changed, so a
  // polling tracker pays nothing between ACK bursts (vs. a full getsockopt
  // marshalling per poll).
  const TcpInfoData& SharedInfoPage() const;
  // setsockopt(SO_SNDBUF): pins the buffer and disables auto-tuning.
  void SetSndBuf(size_t bytes);
  size_t sndbuf() const { return sndbuf_; }
  // Occupancy is clamped at zero: once the FIN's phantom byte is acked,
  // snd_una_ sits one past write_seq_.
  size_t SndBufUsed() const {
    return static_cast<size_t>(write_seq_ > snd_una_ ? write_seq_ - snd_una_ : 0);
  }
  size_t SndBufFree() const;

  // Telemetry handle for this endpoint. Attach sinks (e.g. a
  // GroundTruthTracer via its StackObserver adapter) or bind to a run's
  // spine; the stack emits stack-boundary, ACK, and CC-episode records
  // through it, guarded so an unobserved socket pays two compares per probe.
  telemetry::FlowTelemetry& telemetry() { return telemetry_; }
  // Routes this socket's records to `spine` (registry, rings, spine sinks).
  void BindTelemetry(telemetry::TelemetrySpine* spine) { telemetry_.Bind(spine, flow_id_); }

  CongestionControl& congestion_control() { return *cc_; }
  uint64_t flow_id() const { return flow_id_; }
  uint32_t mss() const { return config_.mss; }

  uint64_t total_retransmits() const { return total_retrans_; }
  TimeDelta smoothed_rtt() const { return srtt_; }
  TimeDelta min_rtt() const { return min_rtt_; }

  // Test-only: breaks sequence-space ordering and runs the audit so death
  // tests can verify the invariant layer actually fires.
  void TestOnlyCorruptSequenceStateForAudit();

  // PacketSink (called by the demux).
  void Deliver(Packet pkt) override;

 private:
  struct SegMeta {
    uint32_t len = 0;
    SimTime first_tx;
    SimTime last_tx;
    bool retransmitted = false;
    bool sacked = false;
    bool lost = false;
    // Delivery-rate sampling state captured at (first) transmit.
    uint64_t delivered_at_send = 0;
    SimTime delivered_time_at_send;
    bool app_limited = false;
  };

  // -- connection lifecycle --
  void OnSynRetry();

  // -- sender half --
  void TrySendData();
  void SendDataSegment(uint64_t seq, uint32_t len, bool retransmit);
  void OnAckSegment(const TcpSegmentPayload& seg);
  // SACK scoreboard: marks sacked ranges, detects losses (3*MSS FACK rule),
  // and enters recovery once per window. Returns the freshest RTT sample.
  void ProcessSackBlocks(const std::vector<SackBlock>& blocks, TimeDelta* rtt_sample);
  void MarkLosses();
  bool RetransmitOneLost();  // lowest-sequence lost segment, if window allows
  uint64_t CwndBytes() const;
  uint64_t EffectiveInFlight() const;
  void MaybeAutotuneSndbuf();
  void UpdateRtt(TimeDelta sample);
  void ArmRto();
  void CancelRto();
  void OnRtoFire();
  void NotifyWritableIfNeeded();
  void ReactToEcnEcho();
  void MaybeSendFin();
  void SendFinSegment();

  // -- receiver half --
  void OnDataSegment(const Packet& pkt, const TcpSegmentPayload& seg);
  void SendAck();
  void ScheduleDelayedAck();
  void ScheduleReadableWakeup();
  uint64_t AdvertisedWindow() const;

  // -- shared plumbing --
  void EmitCcEpisode(telemetry::CcEpisode episode) {
    if (telemetry_.recording()) {
      telemetry::TraceRecord r = telemetry::TraceRecord::Range(
          telemetry::RecordKind::kCcStateChange, flow_id_, loop_->now(), snd_una_, snd_nxt_);
      r.size = static_cast<uint32_t>(episode);
      telemetry_.EmitAlways(r);
    }
  }
  void EmitSegment(TcpSegmentPayload seg, uint32_t payload_bytes, uint32_t priority_band = 1);
  void BecomeEstablished();
  // Sequence-space conservation audit (compiled out in Release): sequence
  // ordering, SACK-scoreboard bookkeeping vs. the retransmit queue, send- and
  // receive-buffer occupancy. Runs after every socket entry point.
  void AuditSequenceInvariants() const;

  EventLoop* loop_;
  Rng rng_;
  Config config_;
  uint64_t flow_id_;
  PacketSink* tx_;
  Demux* rx_demux_;

  State state_ = State::kClosed;
  SimTime established_time_;
  std::function<void()> established_cb_;  // lint_sim: allow(std-function)
  Timer syn_retry_timer_;

  std::unique_ptr<CongestionControl> cc_;
  telemetry::FlowTelemetry telemetry_;

  // ---- Sender state ----
  uint64_t snd_una_ = 0;   // oldest unacknowledged byte
  uint64_t snd_nxt_ = 0;   // next byte to transmit
  uint64_t write_seq_ = 0;  // end of the send buffer (bytes accepted from app)
  size_t sndbuf_;
  bool sndbuf_autotune_;
  uint64_t peer_rwnd_ = 1 << 30;
  std::map<uint64_t, SegMeta> outstanding_;  // keyed by first byte seq

  bool in_recovery_ = false;
  uint64_t recovery_end_ = 0;
  uint64_t sacked_bytes_ = 0;
  uint64_t lost_bytes_ = 0;
  uint64_t highest_sacked_ = 0;

  TimeDelta srtt_ = TimeDelta::Zero();
  TimeDelta rttvar_ = TimeDelta::Zero();
  TimeDelta rto_;
  TimeDelta min_rtt_ = TimeDelta::Infinite();
  int rto_backoff_ = 0;
  // Re-armed in place on every transmission and every ACK with data still in
  // flight (tcp_rearm_rto): with Timer::Restart this is a heap-slot update,
  // not a cancel + reschedule churn.
  Timer rto_timer_;

  // Idle detection for RFC 2861 cwnd validation.
  SimTime last_send_activity_;
  bool have_send_activity_ = false;

  // Pacing (used when the CC supplies a rate).
  SimTime next_send_time_;
  Timer pacing_timer_;

  // Delivery-rate sampling (tcp rate_sample analogue).
  uint64_t delivered_bytes_ = 0;
  SimTime delivered_time_;
  DataRate latest_rate_sample_;
  bool app_limited_now_ = false;

  // ECN sender state.
  bool cwr_pending_ = false;
  SimTime last_ecn_reaction_;

  bool writable_blocked_ = false;
  std::function<void()> writable_cb_;  // lint_sim: allow(std-function)
  Timer writable_notify_timer_;

  // ---- Teardown state ----
  bool close_requested_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  uint64_t fin_seq_ = 0;  // sequence of the FIN's phantom byte
  Timer fin_retry_timer_;
  bool peer_fin_received_ = false;
  bool pending_peer_fin_ = false;
  uint64_t peer_fin_seq_ = 0;
  std::function<void()> eof_cb_;  // lint_sim: allow(std-function)

  // ---- Receiver state ----
  uint64_t rcv_nxt_ = 0;   // next expected in-order byte
  uint64_t read_seq_ = 0;  // bytes the app has consumed
  std::map<uint64_t, uint32_t> out_of_order_;  // seq -> len
  uint64_t ooo_bytes_ = 0;
  int segs_since_ack_ = 0;
  uint64_t sack_hint_ = 0;  // most recent out-of-order arrival (RFC 2018 first block)
  // Arrival-rate estimate for DRWA window moderation.
  SimTime rcv_rate_window_start_;
  uint64_t rcv_rate_window_bytes_ = 0;
  double rcv_rate_bytes_per_s_ = 0.0;
  Timer delayed_ack_timer_;
  Timer readable_wakeup_timer_;
  std::function<void()> readable_cb_;  // lint_sim: allow(std-function)
  bool echo_ece_ = false;  // CE seen; echo ECE until CWR

  // ---- Counters for TCP_INFO ----
  uint64_t segs_out_ = 0;
  uint64_t segs_in_ = 0;
  uint64_t total_retrans_ = 0;

  // ---- Shared info page (version-gated snapshot) ----
  uint64_t info_version_ = 0;
  mutable uint64_t shared_page_version_ = ~0ull;
  mutable TcpInfoData shared_page_;
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_TCP_SOCKET_H_
