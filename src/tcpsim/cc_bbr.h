// BBR v1 (Cardwell et al. 2016), simplified: model-based congestion control
// built on a windowed-max bottleneck-bandwidth filter and a windowed-min RTT
// filter, with STARTUP / DRAIN / PROBE_BW / PROBE_RTT states and pacing.
// Figure 15 evaluates it (the paper used the Linux 4.12 implementation).

#ifndef ELEMENT_SRC_TCPSIM_CC_BBR_H_
#define ELEMENT_SRC_TCPSIM_CC_BBR_H_

#include <deque>

#include "src/tcpsim/congestion_control.h"

namespace element {

// Windowed max filter over a round-trip-count axis.
class WindowedMaxFilter {
 public:
  explicit WindowedMaxFilter(uint64_t window_length) : window_(window_length) {}

  void Update(double value, uint64_t round);
  double GetMax() const;

 private:
  struct Sample {
    double value;
    uint64_t round;
  };
  uint64_t window_;
  std::deque<Sample> samples_;  // decreasing values
};

class BbrCc : public CongestionControl {
 public:
  BbrCc() = default;

  void OnConnectionStart(SimTime now, uint32_t mss) override;
  void OnAck(const AckSample& sample) override;
  void OnLoss(SimTime now, uint64_t bytes_in_flight, uint32_t mss) override;
  void OnRetransmissionTimeout(SimTime now) override;

  double CwndSegments() const override;
  uint32_t SsthreshSegments() const override { return 0x7FFFFFFF; }
  std::optional<DataRate> PacingRate() const override;
  std::string name() const override { return "bbr"; }

  const char* mode_name() const;

 private:
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };

  double BdpBytes(double gain) const;
  void UpdateRound(const AckSample& sample);
  void CheckFullPipe(const AckSample& sample);
  void MaybeEnterOrExitProbeRtt(const AckSample& sample, bool min_rtt_expired);
  void AdvanceCyclePhase(const AckSample& sample);

  static constexpr double kHighGain = 2.885;  // 2/ln(2)
  static constexpr double kDrainGain = 1.0 / 2.885;
  static constexpr double kCwndGain = 2.0;
  static constexpr int kGainCycleLen = 8;
  static constexpr uint64_t kBtlBwWindowRounds = 10;

  uint32_t mss_ = 1448;
  Mode mode_ = Mode::kStartup;
  WindowedMaxFilter btl_bw_filter_{kBtlBwWindowRounds};  // bytes/sec

  TimeDelta min_rtt_ = TimeDelta::Infinite();
  SimTime min_rtt_stamp_;
  SimTime probe_rtt_done_;
  bool probe_rtt_round_done_ = false;

  uint64_t round_count_ = 0;
  uint64_t next_round_delivered_ = 0;

  // Full-pipe detection for STARTUP exit.
  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  double pacing_gain_ = kHighGain;
  double cwnd_gain_ = kHighGain;
  int cycle_index_ = 0;
  SimTime cycle_stamp_;

  uint64_t delivered_at_mode_entry_ = 0;
  double cwnd_before_probe_rtt_ = 0.0;
};

}  // namespace element

#endif  // ELEMENT_SRC_TCPSIM_CC_BBR_H_
