// element_fleet: run a scenario suite across worker threads and emit a
// machine-readable JSON report.
//
//   element_fleet --scenarios scenarios/demo_qdisc_cc.json --jobs 8 --out results.json
//
// Flags (see docs/runner.md):
//   --scenarios PATH  suite spec (also accepted as a positional argument)
//   --jobs N          worker threads (ELEMENT_JOBS env, then hardware default)
//   --seed S          offset added to every scenario seed
//   --out PATH        write the report JSON here (default: stdout)
//   --list            print expanded scenario ids and exit
//   --quiet           suppress the stderr progress line
//   --bench-out PATH  run the suite at --jobs 1 and then --jobs N, verify the
//                     aggregates are byte-identical, and write a BENCH_*.json
//                     speedup record
//
// The deterministic part of the report (per-scenario rows + aggregate) is
// byte-identical for any --jobs value; timing lives in a separate section.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "src/common/flags.h"
#include "src/runner/fleet.h"

namespace element {
namespace {

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << text;
  return out.good();
}

FleetSummary RunWithProgress(const ScenarioSuite& suite, int jobs, bool quiet) {
  FleetOptions options;
  options.jobs = jobs;
  if (!quiet) {
    options.progress = [](const FleetProgress& p) {
      if (!p.last->ok && !p.last->cancelled) {
        std::fprintf(stderr, "\nFAILED %s: %s\n", p.last->spec.Id().c_str(),
                     p.last->error.c_str());
      }
      std::fprintf(stderr, "\r[%zu/%zu] %s", p.finished, p.total, p.last->spec.Id().c_str());
      if (p.finished == p.total) {
        std::fprintf(stderr, "\n");
      }
    };
  }
  return RunFleet(suite.scenarios, options);
}

int BenchMode(const ScenarioSuite& suite, int jobs, const std::string& bench_path, bool quiet) {
  if (!quiet) {
    std::fprintf(stderr, "bench: running %zu scenarios with --jobs 1\n",
                 suite.scenarios.size());
  }
  FleetSummary serial = RunWithProgress(suite, 1, quiet);
  if (!quiet) {
    std::fprintf(stderr, "bench: running %zu scenarios with --jobs %d\n",
                 suite.scenarios.size(), jobs);
  }
  FleetSummary parallel = RunWithProgress(suite, jobs, quiet);

  std::string serial_json = FleetReportJson(suite.name, serial, /*deterministic=*/true).Dump();
  std::string parallel_json =
      FleetReportJson(suite.name, parallel, /*deterministic=*/true).Dump();
  bool identical = serial_json == parallel_json;

  json::Value bench = json::Value::Object();
  bench.Set("bench", json::Value::Str("fleet"));
  bench.Set("suite", json::Value::Str(suite.name));
  bench.Set("scenarios", json::Value::Int(static_cast<int64_t>(suite.scenarios.size())));
  bench.Set("hardware_concurrency",
            json::Value::Int(static_cast<int64_t>(std::thread::hardware_concurrency())));
  bench.Set("jobs_serial", json::Value::Int(serial.jobs));
  bench.Set("jobs_parallel", json::Value::Int(parallel.jobs));
  bench.Set("serial_wall_s", json::Value::Number(serial.wall_seconds));
  bench.Set("parallel_wall_s", json::Value::Number(parallel.wall_seconds));
  double serial_rate = serial.wall_seconds > 0.0
                           ? static_cast<double>(serial.completed) / serial.wall_seconds
                           : 0.0;
  double parallel_rate = parallel.wall_seconds > 0.0
                             ? static_cast<double>(parallel.completed) / parallel.wall_seconds
                             : 0.0;
  bench.Set("scenarios_per_second_serial", json::Value::Number(serial_rate));
  bench.Set("scenarios_per_second_parallel", json::Value::Number(parallel_rate));
  bench.Set("speedup", json::Value::Number(parallel.wall_seconds > 0.0
                                               ? serial.wall_seconds / parallel.wall_seconds
                                               : 0.0));
  bench.Set("aggregate_identical", json::Value::Bool(identical));
  std::string text = bench.Dump() + "\n";
  if (!WriteFile(bench_path, text)) {
    std::fprintf(stderr, "element_fleet: cannot write %s\n", bench_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s", text.c_str());
  if (!identical) {
    std::fprintf(stderr,
                 "element_fleet: FATAL: aggregate JSON differs between --jobs 1 and "
                 "--jobs %d\n",
                 jobs);
    return 1;
  }
  return serial.failed + parallel.failed == 0 ? 0 : 1;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  flags.Parse(argc, argv);
  RunnerFlags rf = ParseRunnerFlags(flags);
  bool list_only = flags.GetBool("list");
  bool quiet = flags.GetBool("quiet");
  std::string bench_out = flags.GetString("bench-out", "");

  std::string suite_path = rf.scenarios;
  if (suite_path.empty() && !flags.positional().empty()) {
    suite_path = flags.positional().front();
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "element_fleet: unknown flag --%s\n", unused.c_str());
    return 2;
  }
  if (suite_path.empty()) {
    std::fprintf(stderr,
                 "usage: element_fleet --scenarios SUITE.json [--jobs N] [--seed S]\n"
                 "                     [--out results.json] [--bench-out BENCH_fleet.json]\n"
                 "                     [--list] [--quiet]\n");
    return 2;
  }

  ScenarioSuite suite;
  std::string error;
  if (!ScenarioSuite::LoadFile(suite_path, &suite, &error)) {
    std::fprintf(stderr, "element_fleet: %s\n", error.c_str());
    return 2;
  }
  suite.OffsetSeeds(rf.seed_offset);

  if (list_only) {
    for (const ScenarioSpec& spec : suite.scenarios) {
      std::printf("%s\n", spec.Id().c_str());
    }
    return 0;
  }

  if (!bench_out.empty()) {
    return BenchMode(suite, rf.jobs, bench_out, quiet);
  }

  FleetSummary summary = RunWithProgress(suite, rf.jobs, quiet);
  std::string report =
      FleetReportJson(suite.name, summary, /*deterministic=*/false).Dump() + "\n";
  if (rf.out.empty()) {
    std::printf("%s", report.c_str());
  } else if (!WriteFile(rf.out, report)) {
    std::fprintf(stderr, "element_fleet: cannot write %s\n", rf.out.c_str());
    return 1;
  }
  if (summary.failed > 0) {
    std::fprintf(stderr, "element_fleet: %zu scenario(s) failed, %zu cancelled\n",
                 summary.failed, summary.cancelled);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace element

int main(int argc, char** argv) { return element::Main(argc, argv); }
