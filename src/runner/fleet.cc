#include "src/runner/fleet.h"

#include <atomic>
#include <chrono>  // lint_sim: allow(wall-clock) -- harness timing, not sim state
#include <mutex>
#include <thread>

#include "src/common/check.h"

namespace element {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {  // lint_sim: allow(wall-clock)
  auto now = std::chrono::steady_clock::now();  // lint_sim: allow(wall-clock)
  return std::chrono::duration<double>(now - start).count();
}

}  // namespace

FleetSummary RunFleet(const std::vector<ScenarioSpec>& specs, const FleetOptions& options) {
  FleetSummary summary;
  summary.results.resize(specs.size());
  if (specs.empty()) {
    summary.jobs = 1;
    return summary;
  }

  ScenarioRunFn run = options.run ? options.run : ScenarioRunFn(&ExecuteScenario);
  int jobs = options.jobs < 1 ? 1 : options.jobs;
  if (static_cast<size_t>(jobs) > specs.size()) {
    jobs = static_cast<int>(specs.size());
  }
  summary.jobs = jobs;

  std::atomic<size_t> cursor{0};
  std::atomic<bool> cancelled{false};
  std::atomic<size_t> finished{0};
  std::mutex progress_mu;

  auto start = std::chrono::steady_clock::now();  // lint_sim: allow(wall-clock)

  auto worker = [&]() {
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) {
        return;
      }
      ScenarioResult& slot = summary.results[i];
      if (options.cancel_on_failure && cancelled.load(std::memory_order_acquire)) {
        slot.spec = specs[i];
        slot.cancelled = true;
        slot.error = "cancelled: an earlier scenario failed";
        continue;
      }
      auto run_start = std::chrono::steady_clock::now();  // lint_sim: allow(wall-clock)
      slot = run(specs[i]);
      slot.wall_seconds = SecondsSince(run_start);
      if (!slot.ok && !slot.cancelled) {
        cancelled.store(true, std::memory_order_release);
      }
      size_t done = finished.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.progress) {
        std::lock_guard<std::mutex> lock(progress_mu);
        FleetProgress p;
        p.finished = done;
        p.total = specs.size();
        p.last = &slot;
        options.progress(p);
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(jobs));
    for (int t = 0; t < jobs; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  summary.wall_seconds = SecondsSince(start);
  for (const ScenarioResult& r : summary.results) {
    if (r.cancelled) {
      ++summary.cancelled;
    } else if (r.ok) {
      ++summary.completed;
    } else {
      ++summary.failed;
    }
  }
  return summary;
}

void FleetAggregate::Add(const ScenarioResult& result) {
  ELEMENT_DCHECK(result.ok) << "aggregating a failed scenario: " << result.spec.Id();
  *metrics.Counter("scenarios") += 1;
  *metrics.Counter("flows") += result.flows.size();
  metrics.Merge(result.metrics);
}

void FleetAggregate::Merge(const FleetAggregate& other) { metrics.Merge(other.metrics); }

FleetAggregate AggregateResults(const std::vector<ScenarioResult>& results) {
  FleetAggregate agg;
  for (const ScenarioResult& r : results) {
    if (r.ok) {
      agg.Add(r);
    }
  }
  return agg;
}

json::Value FleetAggregate::ToJson() const {
  using telemetry::HistogramJson;
  using telemetry::StatsJson;
  json::Value obj = json::Value::Object();
  obj.Set("scenarios", json::Value::Int(static_cast<int64_t>(scenarios())));
  obj.Set("flows", json::Value::Int(static_cast<int64_t>(flows())));
  obj.Set("retransmits", json::Value::Int(static_cast<int64_t>(retransmits())));
  obj.Set("sender_delay_s", HistogramJson(metrics.HistOrEmpty("sender_delay_s")));
  obj.Set("network_delay_s", HistogramJson(metrics.HistOrEmpty("network_delay_s")));
  obj.Set("receiver_delay_s", HistogramJson(metrics.HistOrEmpty("receiver_delay_s")));
  obj.Set("e2e_delay_s", HistogramJson(metrics.HistOrEmpty("e2e_delay_s")));
  obj.Set("sender_err_s", HistogramJson(metrics.HistOrEmpty("sender_err_s")));
  obj.Set("receiver_err_s", HistogramJson(metrics.HistOrEmpty("receiver_err_s")));
  obj.Set("goodput_mbps", StatsJson(metrics.StatsOrEmpty("goodput_mbps")));
  return obj;
}

json::Value ResultRowJson(const ScenarioResult& result) {
  json::Value row = json::Value::Object();
  row.Set("id", json::Value::Str(result.spec.Id()));
  row.Set("seed", json::Value::Int(static_cast<int64_t>(result.spec.seed)));
  row.Set("app", json::Value::Str(result.spec.app));
  row.Set("profile", json::Value::Str(result.spec.profile));
  row.Set("qdisc", json::Value::Str(result.spec.qdisc));
  row.Set("cc", json::Value::Str(result.spec.cc));
  if (result.cancelled) {
    row.Set("status", json::Value::Str("cancelled"));
    return row;
  }
  if (!result.ok) {
    row.Set("status", json::Value::Str("failed"));
    row.Set("error", json::Value::Str(result.error));
    return row;
  }
  using telemetry::HistogramJson;
  using telemetry::StatsJson;
  row.Set("status", json::Value::Str("ok"));
  row.Set("goodput_mbps", StatsJson(result.metrics.StatsOrEmpty("goodput_mbps")));
  row.Set("sender_delay_s", HistogramJson(result.metrics.HistOrEmpty("sender_delay_s")));
  row.Set("network_delay_s", HistogramJson(result.metrics.HistOrEmpty("network_delay_s")));
  row.Set("receiver_delay_s", HistogramJson(result.metrics.HistOrEmpty("receiver_delay_s")));
  row.Set("e2e_delay_s", HistogramJson(result.metrics.HistOrEmpty("e2e_delay_s")));
  row.Set("retransmits",
          json::Value::Int(static_cast<int64_t>(result.metrics.CounterValue("retransmits"))));
  if (result.has_topology) {
    // Per-row only: the mergeable aggregate's key set is golden-pinned.
    json::Value topo = json::Value::Object();
    topo.Set("topology", json::Value::Str(result.spec.topology));
    topo.Set("jain_fairness", json::Value::Number(result.jain_fairness));
    topo.Set("forwarded_packets", json::Value::Int(static_cast<int64_t>(result.forwarded_packets)));
    topo.Set("unroutable_packets",
             json::Value::Int(static_cast<int64_t>(result.unroutable_packets)));
    topo.Set("cross_flows", json::Value::Int(static_cast<int64_t>(result.cross_flows)));
    topo.Set("cross_bytes", json::Value::Int(static_cast<int64_t>(result.cross_bytes)));
    row.Set("contention", std::move(topo));
  }
  if (result.has_accuracy) {
    json::Value acc = json::Value::Object();
    acc.Set("sender_accuracy", json::Value::Number(result.accuracy.sender.accuracy));
    acc.Set("receiver_accuracy", json::Value::Number(result.accuracy.receiver.accuracy));
    acc.Set("sender_err_s", HistogramJson(result.metrics.HistOrEmpty("sender_err_s")));
    acc.Set("receiver_err_s", HistogramJson(result.metrics.HistOrEmpty("receiver_err_s")));
    row.Set("accuracy", std::move(acc));
  }
  return row;
}

json::Value FleetReportJson(const std::string& suite, const FleetSummary& summary,
                            bool deterministic) {
  json::Value doc = json::Value::Object();
  doc.Set("suite", json::Value::Str(suite));
  json::Value counts = json::Value::Object();
  counts.Set("total", json::Value::Int(static_cast<int64_t>(summary.results.size())));
  counts.Set("completed", json::Value::Int(static_cast<int64_t>(summary.completed)));
  counts.Set("failed", json::Value::Int(static_cast<int64_t>(summary.failed)));
  counts.Set("cancelled", json::Value::Int(static_cast<int64_t>(summary.cancelled)));
  doc.Set("counts", std::move(counts));
  json::Value rows = json::Value::Array();
  for (const ScenarioResult& r : summary.results) {
    rows.Append(ResultRowJson(r));
  }
  doc.Set("scenarios", std::move(rows));
  doc.Set("aggregate", AggregateResults(summary.results).ToJson());
  if (!deterministic) {
    json::Value timing = json::Value::Object();
    timing.Set("jobs", json::Value::Int(summary.jobs));
    timing.Set("wall_seconds", json::Value::Number(summary.wall_seconds));
    double rate = summary.wall_seconds > 0.0
                      ? static_cast<double>(summary.completed) / summary.wall_seconds
                      : 0.0;
    timing.Set("scenarios_per_second", json::Value::Number(rate));
    doc.Set("timing", std::move(timing));
  }
  return doc;
}

}  // namespace element
