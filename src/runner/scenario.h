// Declarative scenario specs for the fleet runner.
//
// A ScenarioSpec fully describes one deterministic simulation: the path
// (named production profile or parameterized wired link), qdisc, congestion
// control, application workload, ELEMENT interposition mode, and seed.
// Suites live in scenarios/*.json rather than C++: a suite file carries
// shared defaults, explicit scenario entries, and grid sweeps that expand
// into the cartesian product of their axes.
//
// Expansion is pure and deterministic: the same suite text always yields the
// same ordered vector of specs, which is what lets `element_fleet` promise
// byte-identical aggregates regardless of --jobs.

#ifndef ELEMENT_SRC_RUNNER_SCENARIO_H_
#define ELEMENT_SRC_RUNNER_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/tcpsim/testbed.h"
#include "src/topo/topology.h"

namespace element {

struct ScenarioSpec {
  std::string name;  // display label; auto-derived for sweep-expanded specs

  // Workload: "legacy" = N iperf flows with ground-truth delay decomposition
  // (the Fig. 2/3/13/14 experiments); "accuracy" = one ELEMENT-instrumented
  // flow scored against ground truth (the Fig. 6/7/8 experiments).
  std::string app = "legacy";

  // Path: "wired" uses the rate/rtt/queue knobs below; "lan", "cable",
  // "wifi", "lte" use the named production profiles (knobs other than qdisc /
  // ecn / loss are ignored for profiles).
  std::string profile = "wired";
  double rate_mbps = 10.0;
  double rtt_ms = 50.0;
  // 0 => auto-size to max(60, 2 * BDP) packets, the Fig. 7 wired formula.
  int queue_packets = 0;
  bool ecn = false;
  double loss = 0.0;  // > 0 overrides the link's loss probability

  std::string qdisc = "pfifo_fast";  // pfifo_fast | codel | fq_codel | pie | red
  std::string cc = "cubic";          // MakeCongestionControl() name

  // Multi-flow topology: "none" keeps the single-path Testbed; "dumbbell" and
  // "parking_lot" route the flows through a src/topo Network instead. With a
  // topology, rate/rtt/queue describe the bottleneck hop(s) and `profile`
  // must stay "wired" (production profiles are single-path).
  std::string topology = "none";  // none | dumbbell | parking_lot
  int hops = 1;                   // parking_lot: bottleneck hop count
  // 0 => one end-to-end host pair per foreground flow.
  int host_pairs = 0;
  int cross_iperf = 0;  // per hop: long-lived competing flows
  int cross_onoff = 0;  // per hop: on-off Pareto web-like flows

  int num_flows = 1;  // legacy app: parallel iperf flows
  // "off" = plain TCP; "first" = flow 0 through the ELEMENT interposer;
  // "wireless" = interposer in LTE/WiFi mode (Algorithm 3).
  std::string element_mode = "off";
  bool download = false;  // legacy app: sender at server side (reverse pipe)

  double duration_s = 30.0;
  double warmup_s = 3.0;             // legacy app: excluded from delay stats
  double tracker_period_ms = 10.0;   // accuracy app: tcp_info poll period
  int background_flows = 0;          // accuracy app: staggered competing flows

  uint64_t seed = 1;

  // Stable identifier used in result rows: "<name>#s<seed>".
  std::string Id() const;

  // Resolves the path description into the simulator's PathConfig.
  PathConfig BuildPath() const;

  // Resolves the topology knobs into a src/topo spec (topology != "none").
  // The rtt_ms budget is split 10% across the access links and 90% across
  // the bottleneck hops so BaseRtt() matches the requested RTT.
  TopologySpec BuildTopology() const;

  // Empty string when the spec is well-formed, else a description of the
  // first problem (unknown qdisc/cc/app/profile, non-positive duration, ...).
  std::string Validate() const;

  json::Value ToJson() const;
};

// One cartesian sweep: every combination of the axis values applied on top of
// `base`, across `seed_count` seeds starting at `seed_base`. Empty axes
// contribute the base value only.
struct SweepSpec {
  ScenarioSpec base;
  std::vector<std::string> qdiscs;
  std::vector<std::string> ccs;
  std::vector<std::string> profiles;
  std::vector<std::string> topologies;
  std::vector<double> rates_mbps;
  std::vector<double> rtts_ms;
  std::vector<int> flow_counts;
  std::vector<int> cross_iperfs;
  std::vector<int> cross_onoffs;
  uint64_t seed_base = 1;
  int seed_count = 1;

  // Expansion order: profiles > topologies > rates > rtts > qdiscs > ccs >
  // flows > cross_iperf > cross_onoff > seeds (outermost to innermost),
  // deterministic.
  std::vector<ScenarioSpec> Expand() const;
};

struct ScenarioSuite {
  std::string name = "suite";
  std::vector<ScenarioSpec> scenarios;  // already expanded, in order

  // Parses a suite document:
  //   { "suite": "...", "defaults": {spec fields},
  //     "scenarios": [ {spec fields}, ... ],
  //     "sweeps": [ { spec fields..., "qdisc": [...], "cc": [...],
  //                   "profile": [...], "topology": [...], "rate_mbps": [...],
  //                   "rtt_ms": [...], "num_flows": [...],
  //                   "cross_iperf": [...], "cross_onoff": [...],
  //                   "seed": {"base": N, "count": M} }, ... ] }
  // Explicit scenarios come first, then sweep expansions in file order.
  static bool ParseJson(const std::string& text, ScenarioSuite* out, std::string* error);
  static bool LoadFile(const std::string& path, ScenarioSuite* out, std::string* error);

  // Serializes as the fully-expanded explicit form; ParseJson(ToJson()) is an
  // identity on (name, scenarios).
  std::string ToJson() const;

  // Adds `offset` to every scenario seed (the --seed flag).
  void OffsetSeeds(uint64_t offset);
};

// Name <-> enum helpers shared with the bench binaries.
std::string DescribeQdisc(QdiscType type);
bool ParseQdisc(const std::string& name, QdiscType* out);

}  // namespace element

#endif  // ELEMENT_SRC_RUNNER_SCENARIO_H_
