// Thread-pool fleet executor: fans independent deterministic scenarios out
// across worker threads and folds the results into mergeable aggregates.
//
// Parallel-determinism contract: scenarios are handed to workers through an
// atomic cursor, every run owns all of its mutable state (Testbed, EventLoop,
// Rng seeded from the scenario), each worker writes only its own result slot,
// and aggregation folds completed results in scenario order on the caller's
// thread after all workers join. Thread scheduling therefore cannot influence
// any deterministic output: the aggregate JSON for --jobs N is byte-identical
// to --jobs 1.

#ifndef ELEMENT_SRC_RUNNER_FLEET_H_
#define ELEMENT_SRC_RUNNER_FLEET_H_

#include <functional>
#include <string>
#include <vector>

#include "src/runner/experiment.h"
#include "src/runner/scenario.h"

namespace element {

using ScenarioRunFn = std::function<ScenarioResult(const ScenarioSpec&)>;

struct FleetProgress {
  size_t finished = 0;  // completed + failed so far
  size_t total = 0;
  const ScenarioResult* last = nullptr;  // the run that just finished
};

struct FleetOptions {
  int jobs = 1;  // clamped to [1, scenario count]
  // Stop handing out new scenarios after the first failed run (in-flight runs
  // still complete; unstarted ones are marked cancelled).
  bool cancel_on_failure = true;
  // Invoked after every finished run, serialized under the fleet's lock, from
  // worker threads. Must not call back into the fleet.
  std::function<void(const FleetProgress&)> progress;
  ScenarioRunFn run;  // defaults to ExecuteScenario
};

struct FleetSummary {
  std::vector<ScenarioResult> results;  // scenario order, one per spec
  size_t completed = 0;
  size_t failed = 0;
  size_t cancelled = 0;
  int jobs = 1;
  double wall_seconds = 0.0;  // harness metric, not deterministic output
};

FleetSummary RunFleet(const std::vector<ScenarioSpec>& specs, const FleetOptions& options);

// Fleet-wide mergeable statistics, folded from ScenarioResults in scenario
// order. Merge() combines two aggregates (associative, commutative up to
// floating-point sum ordering — the fleet always folds in scenario order).
// Everything lives in one MetricRegistry: scenario results' registries are
// folded in wholesale, plus the fleet-level counters "scenarios" and
// "flows". ToJson() emits the golden-pinned aggregate key set explicitly —
// extra registry entries (e.g. topo.* counters) never change its bytes.
struct FleetAggregate {
  telemetry::MetricRegistry metrics;

  uint64_t scenarios() const { return metrics.CounterValue("scenarios"); }
  uint64_t flows() const { return metrics.CounterValue("flows"); }
  uint64_t retransmits() const { return metrics.CounterValue("retransmits"); }

  void Add(const ScenarioResult& result);  // completed results only
  void Merge(const FleetAggregate& other);
  json::Value ToJson() const;  // deterministic
};

FleetAggregate AggregateResults(const std::vector<ScenarioResult>& results);

// Deterministic per-scenario result row (no wall-clock fields).
json::Value ResultRowJson(const ScenarioResult& result);

// Full fleet report: suite metadata + per-scenario rows + aggregate, plus a
// "timing" section (wall clock, scenarios/sec, jobs) unless `deterministic`
// strips it for byte-comparison across job counts.
json::Value FleetReportJson(const std::string& suite, const FleetSummary& summary,
                            bool deterministic);

}  // namespace element

#endif  // ELEMENT_SRC_RUNNER_FLEET_H_
