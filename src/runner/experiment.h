// Experiment runners shared by the bench binaries and the fleet executor.
// Each runner builds a Testbed for one scenario, drives it to completion on
// the calling thread, and returns plain-value results. Runs are deterministic
// in the seed and fully isolated (each owns its EventLoop and Rng), which is
// what makes them safe to fan out across fleet worker threads.

#ifndef ELEMENT_SRC_RUNNER_EXPERIMENT_H_
#define ELEMENT_SRC_RUNNER_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/element/estimation_error.h"
#include "src/runner/scenario.h"
#include "src/tcpsim/testbed.h"
#include "src/telemetry/metric_registry.h"
#include "src/trace/ground_truth.h"

namespace element {

struct FlowResult {
  std::string label;
  double goodput_mbps = 0.0;
  double sender_delay_s = 0.0;
  double network_delay_s = 0.0;
  double receiver_delay_s = 0.0;
  double e2e_delay_s = 0.0;
  // End-to-end delay above the observed floor — the paper's "relative delay".
  double relative_delay_s = 0.0;
  double sender_delay_stdev_s = 0.0;
  double receiver_delay_stdev_s = 0.0;
  uint64_t retransmits = 0;
};

struct LegacyExperiment {
  PathConfig path;
  std::string congestion_control = "cubic";
  int num_flows = 3;
  // Flow 0 runs through the ELEMENT interposer (LD_PRELOAD analogue).
  bool element_on_first = false;
  bool element_wireless = false;  // LTE/WiFi mode of Algorithm 3
  bool sender_at_client = true;   // false = "download" over the reverse pipe
  double duration_s = 30.0;
  double warmup_s = 3.0;  // excluded from delay statistics
  uint64_t seed = 1;
};

// Runs N iperf-style flows over one path; returns per-flow results.
std::vector<FlowResult> RunLegacyExperiment(const LegacyExperiment& cfg);

struct AccuracyRun {
  AccuracyResult sender;
  AccuracyResult receiver;
  GroundTruthTracer::Composition composition;
  double goodput_mbps = 0.0;
};

// One measured (minimization off) flow: ELEMENT estimates vs ground truth.
AccuracyRun RunAccuracyExperiment(uint64_t seed, const PathConfig& path, double duration_s,
                                  TimeDelta tracker_period = TimeDelta::FromMillis(10),
                                  int background_flows = 0);

// The fleet's unit of work: everything one scenario produced. Raw per-flow
// rows and accuracy sample sets are kept for figure printing; the metric
// registry holds the mergeable summaries the aggregate layer folds together.
struct ScenarioResult {
  ScenarioSpec spec;
  bool ok = false;
  bool cancelled = false;
  std::string error;

  std::vector<FlowResult> flows;  // legacy app
  bool has_accuracy = false;
  AccuracyRun accuracy;  // accuracy app

  // Mergeable summaries under canonical names (the aggregate's pinned JSON
  // keys): hists "sender_delay_s", "network_delay_s", "receiver_delay_s",
  // "e2e_delay_s" (one sample per flow, mean delays, in seconds) and
  // "sender_err_s"/"receiver_err_s" (one sample per estimate, absolute
  // error), stats "goodput_mbps", counter "retransmits". Topology runs also
  // fold in the contention run's "topo.*" counters.
  telemetry::MetricRegistry metrics;

  // Topology runs only (spec.topology != "none"); surfaced in per-scenario
  // result rows, never folded into the aggregate.
  bool has_topology = false;
  double jain_fairness = 1.0;        // over foreground goodputs
  uint64_t forwarded_packets = 0;    // summed over every router
  uint64_t unroutable_packets = 0;   // 0 in a well-routed run
  uint64_t cross_flows = 0;
  uint64_t cross_bytes = 0;

  // Wall-clock cost of the run (harness metric; never part of deterministic
  // output).
  double wall_seconds = 0.0;
};

// Runs one scenario on the calling thread. Validation problems and workload
// exceptions are reported via ok/error rather than thrown.
ScenarioResult ExecuteScenario(const ScenarioSpec& spec);

}  // namespace element

#endif  // ELEMENT_SRC_RUNNER_EXPERIMENT_H_
