#include "src/runner/experiment.h"

#include <exception>
#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"
#include "src/element/interposer.h"
#include "src/topo/contention.h"

namespace element {

std::vector<FlowResult> RunLegacyExperiment(const LegacyExperiment& cfg) {
  Testbed bed(cfg.seed, cfg.path);
  SimTime warmup = SimTime::FromNanos(static_cast<int64_t>(cfg.warmup_s * 1e9));

  struct PerFlow {
    Testbed::Flow flow;
    std::unique_ptr<GroundTruthTracer> tracer;
    std::unique_ptr<ByteSink> sink;
    std::unique_ptr<IperfApp> app;
    std::unique_ptr<SinkApp> reader;
  };
  std::vector<PerFlow> flows;
  flows.reserve(static_cast<size_t>(cfg.num_flows));

  for (int i = 0; i < cfg.num_flows; ++i) {
    PerFlow pf;
    TcpSocket::Config socket_config;
    socket_config.congestion_control = cfg.congestion_control;
    socket_config.ecn = cfg.path.ecn;
    pf.flow = bed.CreateFlow(socket_config, cfg.sender_at_client);
    GroundTruthTracer::Config tcfg;
    tcfg.record_from = warmup;
    pf.tracer = std::make_unique<GroundTruthTracer>(tcfg);
    pf.flow.sender->telemetry().AttachSink(pf.tracer.get());
    pf.flow.receiver->telemetry().AttachSink(pf.tracer.get());
    if (i == 0 && cfg.element_on_first) {
      pf.sink = std::make_unique<InterposedSink>(&bed.loop(), pf.flow.sender,
                                                 cfg.element_wireless);
    } else {
      pf.sink = std::make_unique<RawTcpSink>(pf.flow.sender);
    }
    pf.app = std::make_unique<IperfApp>(&bed.loop(), pf.sink.get());
    pf.reader = std::make_unique<SinkApp>(pf.flow.receiver);
    pf.app->Start();
    pf.reader->Start();
    flows.push_back(std::move(pf));
  }

  bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(cfg.duration_s * 1e9)));

  std::vector<FlowResult> results;
  for (int i = 0; i < cfg.num_flows; ++i) {
    PerFlow& pf = flows[static_cast<size_t>(i)];
    FlowResult r;
    r.label = (i == 0 && cfg.element_on_first) ? cfg.congestion_control + "+ELEMENT"
                                               : cfg.congestion_control;
    r.goodput_mbps = RateOver(static_cast<int64_t>(pf.flow.receiver->app_bytes_read()),
                              TimeDelta::FromSeconds(cfg.duration_s))
                         .ToMbps();
    GroundTruthTracer::Composition c = pf.tracer->MeanComposition();
    r.sender_delay_s = c.sender_s;
    r.network_delay_s = c.network_s;
    r.receiver_delay_s = c.receiver_s;
    r.e2e_delay_s = pf.tracer->end_to_end_delay().mean();
    // "Relative delay": end-to-end delay above the propagation floor of the
    // direction the data traverses.
    TimeDelta base = cfg.path.one_way_delay;
    if (!cfg.sender_at_client && !cfg.path.reverse_one_way_delay.IsZero()) {
      base = cfg.path.reverse_one_way_delay;
    }
    r.relative_delay_s = std::max(0.0, r.e2e_delay_s - base.ToSeconds());
    r.sender_delay_stdev_s = pf.tracer->sender_delay().Stdev();
    r.receiver_delay_stdev_s = pf.tracer->receiver_delay().Stdev();
    r.retransmits = pf.flow.sender->total_retransmits();
    results.push_back(r);
  }
  return results;
}

namespace {

// ByteSink routing through em_send so the sender-side estimator sees writes.
class EmSink : public ByteSink {
 public:
  explicit EmSink(ElementSocket* em) : em_(em) {}
  size_t Write(size_t n) override {
    RetInfo info = em_->Send(n);
    return info.size > 0 ? static_cast<size_t>(info.size) : 0;
  }
  void SetWritableCallback(std::function<void()> cb) override {
    em_->SetReadyToSendCallback(std::move(cb));
  }
  TcpSocket* socket() override { return em_->socket(); }

 private:
  ElementSocket* em_;
};

}  // namespace

AccuracyRun RunAccuracyExperiment(uint64_t seed, const PathConfig& path, double duration_s,
                                  TimeDelta tracker_period, int background_flows) {
  Testbed bed(seed, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);

  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  opt.tracker_period = tracker_period;
  ElementSocket em_snd(&bed.loop(), flow.sender, opt);
  ElementSocket em_rcv(&bed.loop(), flow.receiver, opt);

  EmSink sink(&em_snd);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(&em_rcv);
  app.Start();
  reader.Start();

  std::vector<Testbed::Flow> bg_flows;
  std::vector<std::unique_ptr<RawTcpSink>> bg_sinks;
  std::vector<std::unique_ptr<IperfApp>> bg_apps;
  std::vector<std::unique_ptr<SinkApp>> bg_readers;
  for (int i = 0; i < background_flows; ++i) {
    // Staggered background flows (the Figure 8 scenario adds one every 20 s).
    double start_at = 20.0 * (i + 1);
    bed.loop().ScheduleAt(SimTime::FromNanos(static_cast<int64_t>(start_at * 1e9)), [&bed,
                                                                                     &bg_flows,
                                                                                     &bg_sinks,
                                                                                     &bg_apps,
                                                                                     &bg_readers] {
      bg_flows.push_back(bed.CreateFlow(TcpSocket::Config{}));
      bg_sinks.push_back(std::make_unique<RawTcpSink>(bg_flows.back().sender));
      bg_apps.push_back(std::make_unique<IperfApp>(&bed.loop(), bg_sinks.back().get()));
      bg_readers.push_back(std::make_unique<SinkApp>(bg_flows.back().receiver));
      bg_apps.back()->Start();
      bg_readers.back()->Start();
    });
  }

  bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(duration_s * 1e9)));

  AccuracyRun run;
  run.sender =
      ScoreEstimates(em_snd.sender_estimator().delay_series(), tracer.sender_delay_series());
  run.receiver = ScoreEstimates(em_rcv.receiver_estimator().delay_series(),
                                tracer.receiver_delay_series());
  run.composition = tracer.MeanComposition();
  run.goodput_mbps = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                              TimeDelta::FromSeconds(duration_s))
                         .ToMbps();
  return run;
}

namespace {

// Folds per-flow rows into the result's registry under the aggregate's
// canonical names — the one place run output meets the merge contract.
void PublishFlowRows(const std::vector<FlowResult>& flows, telemetry::MetricRegistry* metrics) {
  Histogram* sender = metrics->Hist("sender_delay_s");
  Histogram* network = metrics->Hist("network_delay_s");
  Histogram* receiver = metrics->Hist("receiver_delay_s");
  Histogram* e2e = metrics->Hist("e2e_delay_s");
  RunningStats* goodput = metrics->Stats("goodput_mbps");
  uint64_t* retransmits = metrics->Counter("retransmits");
  for (const FlowResult& f : flows) {
    sender->Add(f.sender_delay_s);
    network->Add(f.network_delay_s);
    receiver->Add(f.receiver_delay_s);
    e2e->Add(f.e2e_delay_s);
    goodput->Add(f.goodput_mbps);
    *retransmits += f.retransmits;
  }
}

// Accuracy runs contribute one sample per estimate (absolute error).
void PublishAccuracyErrors(const AccuracyRun& accuracy, telemetry::MetricRegistry* metrics) {
  Histogram* sender_err = metrics->Hist("sender_err_s");
  Histogram* receiver_err = metrics->Hist("receiver_err_s");
  for (double e : accuracy.sender.errors.samples()) {
    sender_err->Add(e);
  }
  for (double e : accuracy.receiver.errors.samples()) {
    receiver_err->Add(e);
  }
}

void FillLegacyResult(const ScenarioSpec& spec, ScenarioResult* result) {
  LegacyExperiment cfg;
  cfg.path = spec.BuildPath();
  cfg.congestion_control = spec.cc;
  cfg.num_flows = spec.num_flows;
  cfg.element_on_first = spec.element_mode != "off";
  cfg.element_wireless = spec.element_mode == "wireless";
  cfg.sender_at_client = !spec.download;
  cfg.duration_s = spec.duration_s;
  cfg.warmup_s = spec.warmup_s;
  cfg.seed = spec.seed;
  result->flows = RunLegacyExperiment(cfg);
  PublishFlowRows(result->flows, &result->metrics);
}

void FillAccuracyResult(const ScenarioSpec& spec, ScenarioResult* result) {
  int64_t period_ns = static_cast<int64_t>(spec.tracker_period_ms * 1e6);
  result->accuracy =
      RunAccuracyExperiment(spec.seed, spec.BuildPath(), spec.duration_s,
                            TimeDelta::FromNanos(period_ns), spec.background_flows);
  result->has_accuracy = true;
  PublishAccuracyErrors(result->accuracy, &result->metrics);
  const GroundTruthTracer::Composition& c = result->accuracy.composition;
  result->metrics.Hist("sender_delay_s")->Add(c.sender_s);
  result->metrics.Hist("network_delay_s")->Add(c.network_s);
  result->metrics.Hist("receiver_delay_s")->Add(c.receiver_s);
  result->metrics.Hist("e2e_delay_s")->Add(c.sender_s + c.network_s + c.receiver_s);
  result->metrics.Stats("goodput_mbps")->Add(result->accuracy.goodput_mbps);
}

void FillContentionResult(const ScenarioSpec& spec, ScenarioResult* result) {
  ContentionConfig cfg;
  cfg.topo = spec.BuildTopology();
  cfg.flows = spec.num_flows;
  cfg.congestion_control = spec.cc;
  cfg.ecn = spec.ecn;
  cfg.cross.iperf_flows = spec.cross_iperf;
  cfg.cross.onoff_flows = spec.cross_onoff;
  cfg.cross.congestion_control = spec.cc;
  cfg.cross.ecn = spec.ecn;
  cfg.element_on_first = spec.element_mode == "first";
  cfg.tracker_period = TimeDelta::FromNanos(static_cast<int64_t>(spec.tracker_period_ms * 1e6));
  cfg.duration_s = spec.duration_s;
  cfg.warmup_s = spec.warmup_s;
  cfg.seed = spec.seed;
  ContentionResult run = RunContentionExperiment(cfg);

  // Propagation floor of the data direction, for the "relative delay" metric.
  double base_s =
      (cfg.topo.access_delay * 2.0 + cfg.topo.bottleneck_delay * static_cast<double>(cfg.topo.hops))
          .ToSeconds();
  for (size_t i = 0; i < run.flows.size(); ++i) {
    const ContentionFlowResult& f = run.flows[i];
    FlowResult r;
    r.label = (i == 0 && cfg.element_on_first) ? spec.cc + "+ELEMENT" : spec.cc;
    r.goodput_mbps = f.goodput_mbps;
    r.sender_delay_s = f.sender_delay_s;
    r.network_delay_s = f.network_delay_s;
    r.receiver_delay_s = f.receiver_delay_s;
    r.e2e_delay_s = f.e2e_delay_s;
    r.relative_delay_s = std::max(0.0, f.e2e_delay_s - base_s);
    r.sender_delay_stdev_s = f.sender_delay_stdev_s;
    r.receiver_delay_stdev_s = f.receiver_delay_stdev_s;
    r.retransmits = f.retransmits;
    result->flows.push_back(std::move(r));
  }
  PublishFlowRows(result->flows, &result->metrics);

  if (run.has_accuracy) {
    result->has_accuracy = true;
    result->accuracy.sender = run.sender_accuracy;
    result->accuracy.receiver = run.receiver_accuracy;
    result->accuracy.composition = run.flow0_composition;
    result->accuracy.goodput_mbps = run.flows.empty() ? 0.0 : run.flows.front().goodput_mbps;
    PublishAccuracyErrors(result->accuracy, &result->metrics);
  }
  // The contention run's own registry snapshot (topo.* counters, spine
  // dispatch count) rides along in the same mergeable store.
  result->metrics.Merge(run.metrics);

  result->has_topology = true;
  result->jain_fairness = run.jain_fairness;
  result->forwarded_packets = run.forwarded_packets;
  result->unroutable_packets = run.unroutable_packets;
  result->cross_flows = static_cast<uint64_t>(run.cross_flows);
  result->cross_bytes = run.cross_bytes_delivered;
}

}  // namespace

ScenarioResult ExecuteScenario(const ScenarioSpec& spec) {
  ScenarioResult result;
  result.spec = spec;
  std::string problem = spec.Validate();
  if (!problem.empty()) {
    result.error = problem;
    return result;
  }
  try {
    if (spec.topology != "none") {
      FillContentionResult(spec, &result);
    } else if (spec.app == "accuracy") {
      FillAccuracyResult(spec, &result);
    } else {
      FillLegacyResult(spec, &result);
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

}  // namespace element
