#include "src/runner/scenario.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace element {

std::string DescribeQdisc(QdiscType type) {
  switch (type) {
    case QdiscType::kPfifoFast:
      return "pfifo_fast";
    case QdiscType::kCoDel:
      return "CoDel";
    case QdiscType::kFqCoDel:
      return "FQ_CoDel";
    case QdiscType::kPie:
      return "PIE";
    case QdiscType::kRed:
      return "RED";
  }
  return "?";
}

bool ParseQdisc(const std::string& name, QdiscType* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  if (lower == "pfifo_fast" || lower == "pfifo") {
    *out = QdiscType::kPfifoFast;
  } else if (lower == "codel") {
    *out = QdiscType::kCoDel;
  } else if (lower == "fq_codel" || lower == "fqcodel") {
    *out = QdiscType::kFqCoDel;
  } else if (lower == "pie") {
    *out = QdiscType::kPie;
  } else if (lower == "red") {
    *out = QdiscType::kRed;
  } else {
    return false;
  }
  return true;
}

namespace {

const char* const kApps[] = {"legacy", "accuracy"};
const char* const kTopologies[] = {"none", "dumbbell", "parking_lot"};
const char* const kProfiles[] = {"wired", "lan", "cable", "cable_up", "wifi", "lte", "lte_up"};
const char* const kCcs[] = {"reno", "cubic", "cubic-nohystart", "vegas", "ledbat", "bbr"};
const char* const kElementModes[] = {"off", "first", "wireless"};

template <size_t N>
bool OneOf(const std::string& v, const char* const (&set)[N]) {
  for (const char* s : set) {
    if (v == s) {
      return true;
    }
  }
  return false;
}

template <size_t N>
std::string Options(const char* const (&set)[N]) {
  std::string out;
  for (const char* s : set) {
    if (!out.empty()) {
      out += "|";
    }
    out += s;
  }
  return out;
}

}  // namespace

std::string ScenarioSpec::Id() const {
  std::ostringstream os;
  os << name << "#s" << seed;
  return os.str();
}

PathConfig ScenarioSpec::BuildPath() const {
  PathConfig path;
  if (profile == "lan") {
    path = LanProfile();
  } else if (profile == "cable") {
    path = CableProfile(/*upload=*/false);
  } else if (profile == "cable_up") {
    path = CableProfile(/*upload=*/true);
  } else if (profile == "wifi") {
    path = WifiProfile();
  } else if (profile == "lte") {
    path = LteProfile(/*upload=*/false);
  } else if (profile == "lte_up") {
    path = LteProfile(/*upload=*/true);
  } else {
    path.rate = DataRate::Mbps(rate_mbps);
    path.one_way_delay = TimeDelta::FromNanos(static_cast<int64_t>(rtt_ms * 1e6 / 2.0));
    if (queue_packets <= 0) {
      // The paper's wired sizing (Fig. 7): 2x BDP, floor of 60 packets.
      double bdp_pkts = rate_mbps * 1e6 / 8.0 * rtt_ms * 1e-3 / 1500.0;
      path.queue_limit_packets = static_cast<size_t>(std::max(60.0, 2.0 * bdp_pkts));
    }
  }
  if (queue_packets > 0) {
    path.queue_limit_packets = static_cast<size_t>(queue_packets);
  }
  QdiscType q = QdiscType::kPfifoFast;
  if (ParseQdisc(qdisc, &q)) {
    path.qdisc = q;
  }
  path.ecn = ecn;
  if (loss > 0.0) {
    path.loss_probability = loss;
  }
  return path;
}

TopologySpec ScenarioSpec::BuildTopology() const {
  TopologySpec topo;
  topo.shape = topology == "parking_lot" ? TopologyShape::kParkingLot : TopologyShape::kDumbbell;
  topo.hops = topology == "parking_lot" ? hops : 1;
  topo.host_pairs = host_pairs > 0 ? host_pairs : num_flows;
  QdiscType q = QdiscType::kPfifoFast;
  if (ParseQdisc(qdisc, &q)) {
    topo.qdisc = q;
  }
  topo.ecn = ecn;
  topo.bottleneck_rate = DataRate::Mbps(rate_mbps);
  if (queue_packets > 0) {
    topo.queue_limit_packets = static_cast<size_t>(queue_packets);
  } else {
    // Same sizing rule as the single-path wired profile: 2x BDP, floor 60.
    double bdp_pkts = rate_mbps * 1e6 / 8.0 * rtt_ms * 1e-3 / 1500.0;
    topo.queue_limit_packets = static_cast<size_t>(std::max(60.0, 2.0 * bdp_pkts));
  }
  // One-way budget: 5% on each access link, the rest split across the hops,
  // so Network::BaseRtt() reproduces rtt_ms end to end.
  double one_way_ms = rtt_ms / 2.0;
  topo.access_delay = TimeDelta::FromNanos(static_cast<int64_t>(one_way_ms * 0.05 * 1e6));
  topo.bottleneck_delay =
      TimeDelta::FromNanos(static_cast<int64_t>(one_way_ms * 0.9 / topo.hops * 1e6));
  return topo;
}

std::string ScenarioSpec::Validate() const {
  std::ostringstream os;
  if (!OneOf(app, kApps)) {
    os << "unknown app '" << app << "' (" << Options(kApps) << ")";
  } else if (!OneOf(profile, kProfiles)) {
    os << "unknown profile '" << profile << "' (" << Options(kProfiles) << ")";
  } else if (QdiscType q; !ParseQdisc(qdisc, &q)) {
    os << "unknown qdisc '" << qdisc << "' (pfifo_fast|codel|fq_codel|pie|red)";
  } else if (!OneOf(cc, kCcs)) {
    os << "unknown cc '" << cc << "' (" << Options(kCcs) << ")";
  } else if (!OneOf(element_mode, kElementModes)) {
    os << "unknown element_mode '" << element_mode << "' (" << Options(kElementModes) << ")";
  } else if (duration_s <= 0.0) {
    os << "duration_s must be positive, got " << duration_s;
  } else if (warmup_s < 0.0 || warmup_s >= duration_s) {
    os << "warmup_s must be in [0, duration_s), got " << warmup_s;
  } else if (num_flows < 1) {
    os << "num_flows must be >= 1, got " << num_flows;
  } else if (background_flows < 0) {
    os << "background_flows must be >= 0, got " << background_flows;
  } else if (tracker_period_ms <= 0.0) {
    os << "tracker_period_ms must be positive, got " << tracker_period_ms;
  } else if (rate_mbps <= 0.0) {
    os << "rate_mbps must be positive, got " << rate_mbps;
  } else if (rtt_ms <= 0.0) {
    os << "rtt_ms must be positive, got " << rtt_ms;
  } else if (loss < 0.0 || loss >= 1.0) {
    os << "loss must be in [0, 1), got " << loss;
  } else if (!OneOf(topology, kTopologies)) {
    os << "unknown topology '" << topology << "' (" << Options(kTopologies) << ")";
  } else if (hops < 1 || hops > 16) {
    os << "hops must be in [1, 16], got " << hops;
  } else if (host_pairs < 0) {
    os << "host_pairs must be >= 0, got " << host_pairs;
  } else if (cross_iperf < 0 || cross_onoff < 0) {
    os << "cross_iperf/cross_onoff must be >= 0";
  } else if (topology != "none") {
    if (topology == "dumbbell" && hops != 1) {
      os << "dumbbell topology is single-hop; set hops via topology=parking_lot";
    } else if (app != "legacy") {
      os << "topology runs use app=legacy (got '" << app << "')";
    } else if (profile != "wired") {
      os << "topology runs use profile=wired (got '" << profile << "')";
    } else if (element_mode == "wireless") {
      os << "element_mode=wireless is single-path only";
    } else if (download) {
      os << "download is single-path only";
    } else if (loss > 0.0) {
      os << "loss is single-path only";
    }
  } else if (cross_iperf > 0 || cross_onoff > 0) {
    os << "cross traffic needs a topology";
  }
  return os.str();
}

json::Value ScenarioSpec::ToJson() const {
  json::Value obj = json::Value::Object();
  obj.Set("name", json::Value::Str(name));
  obj.Set("app", json::Value::Str(app));
  obj.Set("profile", json::Value::Str(profile));
  obj.Set("rate_mbps", json::Value::Number(rate_mbps));
  obj.Set("rtt_ms", json::Value::Number(rtt_ms));
  obj.Set("queue_packets", json::Value::Int(queue_packets));
  obj.Set("ecn", json::Value::Bool(ecn));
  obj.Set("loss", json::Value::Number(loss));
  obj.Set("qdisc", json::Value::Str(qdisc));
  obj.Set("cc", json::Value::Str(cc));
  obj.Set("topology", json::Value::Str(topology));
  obj.Set("hops", json::Value::Int(hops));
  obj.Set("host_pairs", json::Value::Int(host_pairs));
  obj.Set("cross_iperf", json::Value::Int(cross_iperf));
  obj.Set("cross_onoff", json::Value::Int(cross_onoff));
  obj.Set("num_flows", json::Value::Int(num_flows));
  obj.Set("element_mode", json::Value::Str(element_mode));
  obj.Set("download", json::Value::Bool(download));
  obj.Set("duration_s", json::Value::Number(duration_s));
  obj.Set("warmup_s", json::Value::Number(warmup_s));
  obj.Set("tracker_period_ms", json::Value::Number(tracker_period_ms));
  obj.Set("background_flows", json::Value::Int(background_flows));
  obj.Set("seed", json::Value::Int(static_cast<int64_t>(seed)));
  return obj;
}

namespace {

// Applies the scalar spec fields present in `obj` onto `spec`. Axis keys that
// hold arrays (sweep form) are skipped when `skip_arrays`; any other unknown
// key is an error so suite typos fail loudly.
bool ApplySpecFields(const json::Value& obj, ScenarioSpec* spec, bool skip_arrays,
                     std::string* error) {
  for (const auto& [key, v] : obj.fields()) {
    if (skip_arrays && v.is_array() &&
        (key == "qdisc" || key == "cc" || key == "profile" || key == "topology" ||
         key == "rate_mbps" || key == "rtt_ms" || key == "num_flows" || key == "cross_iperf" ||
         key == "cross_onoff")) {
      continue;
    }
    if (skip_arrays && key == "seed" && v.is_object()) {
      continue;
    }
    if (key == "name") {
      spec->name = v.AsString(spec->name);
    } else if (key == "app") {
      spec->app = v.AsString(spec->app);
    } else if (key == "profile") {
      spec->profile = v.AsString(spec->profile);
    } else if (key == "rate_mbps") {
      spec->rate_mbps = v.AsDouble(spec->rate_mbps);
    } else if (key == "rtt_ms") {
      spec->rtt_ms = v.AsDouble(spec->rtt_ms);
    } else if (key == "queue_packets") {
      spec->queue_packets = static_cast<int>(v.AsInt(spec->queue_packets));
    } else if (key == "ecn") {
      spec->ecn = v.AsBool(spec->ecn);
    } else if (key == "loss") {
      spec->loss = v.AsDouble(spec->loss);
    } else if (key == "qdisc") {
      spec->qdisc = v.AsString(spec->qdisc);
    } else if (key == "cc") {
      spec->cc = v.AsString(spec->cc);
    } else if (key == "num_flows") {
      spec->num_flows = static_cast<int>(v.AsInt(spec->num_flows));
    } else if (key == "topology") {
      spec->topology = v.AsString(spec->topology);
    } else if (key == "hops") {
      spec->hops = static_cast<int>(v.AsInt(spec->hops));
    } else if (key == "host_pairs") {
      spec->host_pairs = static_cast<int>(v.AsInt(spec->host_pairs));
    } else if (key == "cross_iperf") {
      spec->cross_iperf = static_cast<int>(v.AsInt(spec->cross_iperf));
    } else if (key == "cross_onoff") {
      spec->cross_onoff = static_cast<int>(v.AsInt(spec->cross_onoff));
    } else if (key == "element_mode") {
      spec->element_mode = v.AsString(spec->element_mode);
    } else if (key == "download") {
      spec->download = v.AsBool(spec->download);
    } else if (key == "duration_s") {
      spec->duration_s = v.AsDouble(spec->duration_s);
    } else if (key == "warmup_s") {
      spec->warmup_s = v.AsDouble(spec->warmup_s);
    } else if (key == "tracker_period_ms") {
      spec->tracker_period_ms = v.AsDouble(spec->tracker_period_ms);
    } else if (key == "background_flows") {
      spec->background_flows = static_cast<int>(v.AsInt(spec->background_flows));
    } else if (key == "seed") {
      spec->seed = static_cast<uint64_t>(v.AsInt(static_cast<int64_t>(spec->seed)));
    } else {
      *error = "unknown scenario field '" + key + "'";
      return false;
    }
  }
  return true;
}

std::vector<std::string> StringAxis(const json::Value& sweep, const std::string& key) {
  std::vector<std::string> out;
  if (const json::Value* v = sweep.Find(key); v != nullptr && v->is_array()) {
    for (const json::Value& item : v->items()) {
      out.push_back(item.AsString());
    }
  }
  return out;
}

std::vector<double> NumberAxis(const json::Value& sweep, const std::string& key) {
  std::vector<double> out;
  if (const json::Value* v = sweep.Find(key); v != nullptr && v->is_array()) {
    for (const json::Value& item : v->items()) {
      out.push_back(item.AsDouble());
    }
  }
  return out;
}

std::vector<int> IntAxis(const json::Value& sweep, const std::string& key) {
  std::vector<int> out;
  if (const json::Value* v = sweep.Find(key); v != nullptr && v->is_array()) {
    for (const json::Value& item : v->items()) {
      out.push_back(static_cast<int>(item.AsInt()));
    }
  }
  return out;
}

}  // namespace

std::vector<ScenarioSpec> SweepSpec::Expand() const {
  // Empty axes iterate once with the base value.
  auto or_base = [](std::vector<std::string> axis, const std::string& base_value) {
    if (axis.empty()) {
      axis.push_back(base_value);
    }
    return axis;
  };
  auto int_or_base = [](std::vector<int> axis, int base_value) {
    if (axis.empty()) {
      axis.push_back(base_value);
    }
    return axis;
  };
  std::vector<std::string> axis_profiles = or_base(profiles, base.profile);
  std::vector<std::string> axis_topologies = or_base(topologies, base.topology);
  std::vector<std::string> axis_qdiscs = or_base(qdiscs, base.qdisc);
  std::vector<std::string> axis_ccs = or_base(ccs, base.cc);
  std::vector<double> axis_rates = rates_mbps.empty() ? std::vector<double>{base.rate_mbps}
                                                      : rates_mbps;
  std::vector<double> axis_rtts = rtts_ms.empty() ? std::vector<double>{base.rtt_ms} : rtts_ms;
  std::vector<int> axis_flows = int_or_base(flow_counts, base.num_flows);
  std::vector<int> axis_cross_iperfs = int_or_base(cross_iperfs, base.cross_iperf);
  std::vector<int> axis_cross_onoffs = int_or_base(cross_onoffs, base.cross_onoff);

  std::string stem = base.name.empty() ? "sweep" : base.name;
  std::vector<ScenarioSpec> out;
  out.reserve(axis_profiles.size() * axis_topologies.size() * axis_rates.size() *
              axis_rtts.size() * axis_qdiscs.size() * axis_ccs.size() * axis_flows.size() *
              axis_cross_iperfs.size() * axis_cross_onoffs.size() *
              static_cast<size_t>(std::max(1, seed_count)));
  for (const std::string& profile : axis_profiles) {
    for (const std::string& topology : axis_topologies) {
      for (double rate : axis_rates) {
        for (double rtt : axis_rtts) {
          for (const std::string& qdisc : axis_qdiscs) {
            for (const std::string& cc : axis_ccs) {
              for (int flows : axis_flows) {
                for (int ci : axis_cross_iperfs) {
                  for (int co : axis_cross_onoffs) {
                    ScenarioSpec spec = base;
                    spec.profile = profile;
                    spec.topology = topology;
                    spec.rate_mbps = rate;
                    spec.rtt_ms = rtt;
                    spec.qdisc = qdisc;
                    spec.cc = cc;
                    spec.num_flows = flows;
                    spec.cross_iperf = ci;
                    spec.cross_onoff = co;
                    std::string label = stem;
                    if (profiles.size() > 1) {
                      label += "/" + profile;
                    }
                    if (topologies.size() > 1) {
                      label += "/" + topology;
                    }
                    if (rates_mbps.size() > 1) {
                      label += "/" + json::FormatNumber(rate) + "mbps";
                    }
                    if (rtts_ms.size() > 1) {
                      label += "/" + json::FormatNumber(rtt) + "ms";
                    }
                    if (qdiscs.size() > 1) {
                      label += "/" + qdisc;
                    }
                    if (ccs.size() > 1) {
                      label += "/" + cc;
                    }
                    if (flow_counts.size() > 1) {
                      label += "/" + std::to_string(flows) + "f";
                    }
                    if (cross_iperfs.size() > 1) {
                      label += "/ci" + std::to_string(ci);
                    }
                    if (cross_onoffs.size() > 1) {
                      label += "/co" + std::to_string(co);
                    }
                    spec.name = label;
                    for (int k = 0; k < std::max(1, seed_count); ++k) {
                      spec.seed = seed_base + static_cast<uint64_t>(k);
                      out.push_back(spec);
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

bool ScenarioSuite::ParseJson(const std::string& text, ScenarioSuite* out, std::string* error) {
  json::Value doc;
  if (!json::Value::Parse(text, &doc, error)) {
    return false;
  }
  if (!doc.is_object()) {
    *error = "suite document must be a JSON object";
    return false;
  }
  ScenarioSuite suite;
  if (const json::Value* v = doc.Find("suite")) {
    suite.name = v->AsString(suite.name);
  }
  ScenarioSpec defaults;
  if (const json::Value* v = doc.Find("defaults")) {
    if (!v->is_object()) {
      *error = "'defaults' must be an object";
      return false;
    }
    if (!ApplySpecFields(*v, &defaults, /*skip_arrays=*/false, error)) {
      return false;
    }
  }
  if (const json::Value* v = doc.Find("scenarios")) {
    if (!v->is_array()) {
      *error = "'scenarios' must be an array";
      return false;
    }
    for (size_t i = 0; i < v->items().size(); ++i) {
      ScenarioSpec spec = defaults;
      if (!ApplySpecFields(v->items()[i], &spec, /*skip_arrays=*/false, error)) {
        return false;
      }
      if (spec.name.empty()) {
        spec.name = "scenario" + std::to_string(i);
      }
      suite.scenarios.push_back(std::move(spec));
    }
  }
  if (const json::Value* v = doc.Find("sweeps")) {
    if (!v->is_array()) {
      *error = "'sweeps' must be an array";
      return false;
    }
    for (const json::Value& entry : v->items()) {
      SweepSpec sweep;
      sweep.base = defaults;
      if (!ApplySpecFields(entry, &sweep.base, /*skip_arrays=*/true, error)) {
        return false;
      }
      sweep.qdiscs = StringAxis(entry, "qdisc");
      sweep.ccs = StringAxis(entry, "cc");
      sweep.profiles = StringAxis(entry, "profile");
      sweep.topologies = StringAxis(entry, "topology");
      sweep.rates_mbps = NumberAxis(entry, "rate_mbps");
      sweep.rtts_ms = NumberAxis(entry, "rtt_ms");
      sweep.flow_counts = IntAxis(entry, "num_flows");
      sweep.cross_iperfs = IntAxis(entry, "cross_iperf");
      sweep.cross_onoffs = IntAxis(entry, "cross_onoff");
      sweep.seed_base = sweep.base.seed;
      if (const json::Value* seed = entry.Find("seed"); seed != nullptr && seed->is_object()) {
        if (const json::Value* b = seed->Find("base")) {
          sweep.seed_base = static_cast<uint64_t>(b->AsInt(1));
        }
        if (const json::Value* c = seed->Find("count")) {
          sweep.seed_count = static_cast<int>(c->AsInt(1));
        }
      }
      std::vector<ScenarioSpec> expanded = sweep.Expand();
      suite.scenarios.insert(suite.scenarios.end(), expanded.begin(), expanded.end());
    }
  }
  for (const ScenarioSpec& spec : suite.scenarios) {
    std::string problem = spec.Validate();
    if (!problem.empty()) {
      *error = "scenario '" + spec.name + "': " + problem;
      return false;
    }
  }
  *out = std::move(suite);
  return true;
}

bool ScenarioSuite::LoadFile(const std::string& path, ScenarioSuite* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!ParseJson(buf.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::string ScenarioSuite::ToJson() const {
  json::Value doc = json::Value::Object();
  doc.Set("suite", json::Value::Str(name));
  json::Value list = json::Value::Array();
  for (const ScenarioSpec& spec : scenarios) {
    list.Append(spec.ToJson());
  }
  doc.Set("scenarios", std::move(list));
  return doc.Dump();
}

void ScenarioSuite::OffsetSeeds(uint64_t offset) {
  for (ScenarioSpec& spec : scenarios) {
    spec.seed += offset;
  }
}

}  // namespace element
