#include "src/evloop/event_loop.h"

#include <utility>

#include "src/common/check.h"

namespace element {

// ---------------------------------------------------------------------------
// Slab
// ---------------------------------------------------------------------------

EventLoop::~EventLoop() = default;

uint32_t EventLoop::AllocSlot() {
  if (free_head_ == EventHandle::kInvalidSlot) {
    uint32_t base = static_cast<uint32_t>(chunks_.size()) << kChunkShift;
    chunks_.push_back(std::make_unique<Record[]>(kChunkSize));
    // Thread the fresh chunk onto the freelist, lowest slot on top so ids
    // are handed out in address order.
    for (uint32_t i = kChunkSize; i > 1; --i) {
      record(base + i - 1).next_free = free_head_;
      free_head_ = base + i - 1;
    }
    return base;
  }
  uint32_t slot = free_head_;
  free_head_ = record(slot).next_free;
  return slot;
}

void EventLoop::FreeSlot(uint32_t slot) {
  Record& r = record(slot);
  ++r.generation;  // invalidates outstanding handles to this slot
  r.kind = Record::Kind::kFree;
  r.heap_index = kNotInHeap;
  r.fn = nullptr;
  r.arg = nullptr;
  r.cb = InlineCallback();
  r.next_free = free_head_;
  free_head_ = slot;
}

// ---------------------------------------------------------------------------
// 4-ary min-heap over (at, seq), with back-pointers for O(log n) removal
// ---------------------------------------------------------------------------

void EventLoop::SiftUp(uint32_t index) {
  uint32_t slot = heap_[index];
  const Record& r = record(slot);
  while (index > 0) {
    uint32_t parent = (index - 1) >> 2;
    uint32_t parent_slot = heap_[parent];
    if (!Earlier(r, record(parent_slot))) {
      break;
    }
    heap_[index] = parent_slot;
    record(parent_slot).heap_index = index;
    index = parent;
  }
  heap_[index] = slot;
  record(slot).heap_index = index;
}

void EventLoop::SiftDown(uint32_t index) {
  uint32_t slot = heap_[index];
  const Record& r = record(slot);
  const uint32_t size = static_cast<uint32_t>(heap_.size());
  while (true) {
    uint32_t first_child = (index << 2) + 1;
    if (first_child >= size) {
      break;
    }
    uint32_t last_child = first_child + 4 <= size ? first_child + 4 : size;
    uint32_t best = first_child;
    for (uint32_t c = first_child + 1; c < last_child; ++c) {
      if (Earlier(record(heap_[c]), record(heap_[best]))) {
        best = c;
      }
    }
    uint32_t best_slot = heap_[best];
    if (!Earlier(record(best_slot), r)) {
      break;
    }
    heap_[index] = best_slot;
    record(best_slot).heap_index = index;
    index = best;
  }
  heap_[index] = slot;
  record(slot).heap_index = index;
}

void EventLoop::HeapPush(uint32_t slot) {
  heap_.push_back(slot);
  record(slot).heap_index = static_cast<uint32_t>(heap_.size()) - 1;
  SiftUp(record(slot).heap_index);
}

void EventLoop::HeapRemove(uint32_t slot) {
  uint32_t index = record(slot).heap_index;
  ELEMENT_DCHECK(index != kNotInHeap && index < heap_.size() && heap_[index] == slot)
      << "heap back-pointer corrupt for slot " << slot;
  record(slot).heap_index = kNotInHeap;
  uint32_t last_slot = heap_.back();
  heap_.pop_back();
  if (last_slot == slot) {
    return;
  }
  heap_[index] = last_slot;
  record(last_slot).heap_index = index;
  // The replacement may need to move either way relative to its new parent.
  SiftUp(index);
  SiftDown(record(last_slot).heap_index);
}

void EventLoop::HeapPopTop() {
  uint32_t slot = heap_[0];
  record(slot).heap_index = kNotInHeap;
  uint32_t last_slot = heap_.back();
  heap_.pop_back();
  if (last_slot != slot) {
    heap_[0] = last_slot;
    record(last_slot).heap_index = 0;
    SiftDown(0);
  }
}

void EventLoop::AuditHeapInvariant() const {
  for (uint32_t i = 0; i < heap_.size(); ++i) {
    const Record& r = record(heap_[i]);
    ELEMENT_AUDIT(r.heap_index == i)
        << "heap back-pointer mismatch at index " << i << ": slot " << heap_[i]
        << " claims index " << r.heap_index;
    ELEMENT_AUDIT(r.kind != Record::Kind::kFree)
        << "freed slot " << heap_[i] << " still in heap at index " << i;
    if (i > 0) {
      const Record& parent = record(heap_[(i - 1) >> 2]);
      ELEMENT_AUDIT(!Earlier(r, parent))
          << "heap order violated: child at index " << i << " (t=" << r.at.nanos()
          << " seq=" << r.seq << ") earlier than parent (t=" << parent.at.nanos()
          << " seq=" << parent.seq << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

EventHandle EventLoop::ScheduleAt(SimTime at, Callback cb) {
  if (at < now_) {
    at = now_;
  }
  uint32_t slot = AllocSlot();
  Record& r = record(slot);
  r.at = at;
  r.seq = next_seq_++;
  r.kind = Record::Kind::kOneShot;
  r.cb = std::move(cb);
  HeapPush(slot);
  return EventHandle{slot, r.generation};
}

EventHandle EventLoop::ScheduleAfter(TimeDelta delay, Callback cb) {
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool EventLoop::Cancel(EventHandle h) {
  if (!h.IsValid() || (h.slot >> kChunkShift) >= chunks_.size()) {
    return false;
  }
  Record& r = record(h.slot);
  if (r.generation != h.generation || r.kind == Record::Kind::kFree) {
    return false;  // already fired, already cancelled, or slot reused
  }
  ELEMENT_AUDIT(r.kind == Record::Kind::kOneShot)
      << "EventLoop::Cancel on a Timer-owned slot " << h.slot
      << "; use Timer::Cancel instead";
  HeapRemove(h.slot);
  FreeSlot(h.slot);
  return true;
}

// ---------------------------------------------------------------------------
// Timer plumbing
// ---------------------------------------------------------------------------

EventHandle EventLoop::AllocTrampoline(void (*fn)(void*), void* arg) {
  uint32_t slot = AllocSlot();
  Record& r = record(slot);
  r.kind = Record::Kind::kTrampoline;
  r.fn = fn;
  r.arg = arg;
  return EventHandle{slot, r.generation};
}

void EventLoop::ArmTrampoline(EventHandle h, SimTime at) {
  Record& r = record(h.slot);
  ELEMENT_DCHECK(r.generation == h.generation && r.kind == Record::Kind::kTrampoline)
      << "stale trampoline handle " << h.slot;
  if (at < now_) {
    at = now_;
  }
  r.at = at;
  r.seq = next_seq_++;  // a re-arm orders like a fresh schedule
  if (r.heap_index == kNotInHeap) {
    HeapPush(h.slot);
  } else {
    // In-place re-arm: restore heap order from the slot's current position.
    SiftUp(r.heap_index);
    SiftDown(r.heap_index);
  }
}

bool EventLoop::DisarmTrampoline(EventHandle h) {
  Record& r = record(h.slot);
  ELEMENT_DCHECK(r.generation == h.generation && r.kind == Record::Kind::kTrampoline)
      << "stale trampoline handle " << h.slot;
  if (r.heap_index == kNotInHeap) {
    return false;
  }
  HeapRemove(h.slot);
  return true;
}

void EventLoop::ReleaseTrampoline(EventHandle h) {
  Record& r = record(h.slot);
  ELEMENT_DCHECK(r.generation == h.generation && r.kind == Record::Kind::kTrampoline)
      << "stale trampoline handle " << h.slot;
  if (r.heap_index != kNotInHeap) {
    HeapRemove(h.slot);
  }
  FreeSlot(h.slot);
}

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

uint32_t EventLoop::PopRunnable(SimTime deadline) {
  if (heap_.empty()) {
    return EventHandle::kInvalidSlot;
  }
  uint32_t slot = heap_[0];
  if (record(slot).at > deadline) {
    return EventHandle::kInvalidSlot;
  }
  HeapPopTop();
  return slot;
}

void EventLoop::RunLoop(SimTime deadline) {
  stopped_ = false;
  uint32_t slot;
  while (!stopped_ && (slot = PopRunnable(deadline)) != EventHandle::kInvalidSlot) {
    Record& r = record(slot);
    ELEMENT_AUDIT(r.at >= now_) << "event loop time went backwards: now=" << now_.nanos()
                                << "ns event=" << r.at.nanos() << "ns seq=" << r.seq;
    now_ = r.at;
    ++processed_;
    if constexpr (kAuditsEnabled) {
      if ((processed_ & 1023) == 0) {
        AuditHeapInvariant();
      }
    }
    if (r.kind == Record::Kind::kOneShot) {
      // Move the callable out and free the slot before invoking: the
      // callback may schedule (and thereby reuse) slots, including this one.
      Callback cb = std::move(r.cb);
      FreeSlot(slot);
      cb();
    } else {
      // Timer fire: the slot stays allocated (its Timer owns it) so the
      // callback can Restart() in place. Copy fn/arg out first — the
      // callback may destroy the Timer, releasing the slot.
      auto* fn = r.fn;
      void* arg = r.arg;
      fn(arg);
    }
  }
}

void EventLoop::Run() { RunLoop(SimTime::Infinite()); }

void EventLoop::RunUntil(SimTime deadline) {
  RunLoop(deadline);
  if (!stopped_ && deadline > now_ && !deadline.IsInfinite()) {
    now_ = deadline;
  }
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

Timer::~Timer() {
  if (handle_.IsValid()) {
    loop_->ReleaseTrampoline(handle_);
  }
}

void Timer::FireTrampoline(void* self) {
  Timer* timer = static_cast<Timer*>(self);
  timer->pending_ = false;
  timer->cb_();
}

void Timer::Restart(SimTime at) {
  if (!handle_.IsValid()) {
    handle_ = loop_->AllocTrampoline(&Timer::FireTrampoline, this);
  }
  loop_->ArmTrampoline(handle_, at);
  pending_ = true;
  deadline_ = at < loop_->now() ? loop_->now() : at;
}

bool Timer::Cancel() {
  if (!pending_) {
    return false;
  }
  pending_ = false;
  return loop_->DisarmTrampoline(handle_);
}

// ---------------------------------------------------------------------------
// PeriodicTimer
// ---------------------------------------------------------------------------

PeriodicTimer::PeriodicTimer(EventLoop* loop, TimeDelta period, EventLoop::Callback cb)
    : loop_(loop), period_(period), cb_(std::move(cb)), timer_(loop, [this] { Fire(); }) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  base_ = loop_->now();
  timer_.RestartAfter(period_);
}

void PeriodicTimer::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  timer_.Cancel();
}

void PeriodicTimer::set_period(TimeDelta p) {
  period_ = p;
  if (running_ && timer_.pending()) {
    // Re-arm the in-flight fire against the same anchor: the next fire lands
    // at (last fire or Start) + new period, clamped to now by Restart().
    timer_.Restart(base_ + period_);
  }
}

void PeriodicTimer::Fire() {
  if (!running_) {
    return;
  }
  base_ = loop_->now();
  // Re-arm before invoking so the callback may Stop() or change the period.
  timer_.RestartAfter(period_);
  cb_();
}

}  // namespace element
