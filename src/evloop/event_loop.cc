#include "src/evloop/event_loop.h"

#include <utility>

#include "src/common/check.h"

namespace element {

EventLoop::EventId EventLoop::ScheduleAt(SimTime at, Callback cb) {
  if (at < now_) {
    at = now_;
  }
  EventId id = next_id_++;
  queue_.push(Event{at, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventLoop::EventId EventLoop::ScheduleAfter(TimeDelta delay, Callback cb) {
  return ScheduleAt(now_ + delay, std::move(cb));
}

void EventLoop::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it != callbacks_.end()) {
    callbacks_.erase(it);
    cancelled_.insert(id);
  }
}

bool EventLoop::PopRunnable(SimTime deadline, Event* out) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (ev.at > deadline) {
      return false;
    }
    queue_.pop();
    auto cancelled_it = cancelled_.find(ev.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    *out = ev;
    return true;
  }
  return false;
}

void EventLoop::Run() {
  stopped_ = false;
  Event ev;
  while (!stopped_ && PopRunnable(SimTime::Infinite(), &ev)) {
    ELEMENT_AUDIT(ev.at >= now_) << "event loop time went backwards: now=" << now_.nanos()
                                 << "ns event=" << ev.at.nanos() << "ns id=" << ev.id;
    now_ = ev.at;
    auto it = callbacks_.find(ev.id);
    ELEMENT_DCHECK(it != callbacks_.end()) << "fired event " << ev.id << " has no callback";
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    ++processed_;
    cb();
  }
}

void EventLoop::RunUntil(SimTime deadline) {
  stopped_ = false;
  Event ev;
  while (!stopped_ && PopRunnable(deadline, &ev)) {
    ELEMENT_AUDIT(ev.at >= now_) << "event loop time went backwards: now=" << now_.nanos()
                                 << "ns event=" << ev.at.nanos() << "ns id=" << ev.id;
    now_ = ev.at;
    auto it = callbacks_.find(ev.id);
    ELEMENT_DCHECK(it != callbacks_.end()) << "fired event " << ev.id << " has no callback";
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    ++processed_;
    cb();
  }
  if (!stopped_ && deadline > now_ && !deadline.IsInfinite()) {
    now_ = deadline;
  }
}

PeriodicTimer::PeriodicTimer(EventLoop* loop, TimeDelta period, EventLoop::Callback cb)
    : loop_(loop), period_(period), cb_(std::move(cb)) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  pending_ = loop_->ScheduleAfter(period_, [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  loop_->Cancel(pending_);
  pending_ = 0;
}

void PeriodicTimer::Fire() {
  if (!running_) {
    return;
  }
  // Re-arm before invoking so the callback may Stop() or change the period.
  pending_ = loop_->ScheduleAfter(period_, [this] { Fire(); });
  cb_();
}

}  // namespace element
