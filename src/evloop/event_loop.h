// Discrete-event simulation core: a monotonic virtual clock and an ordered
// queue of callbacks. Everything else in this repository (links, TCP stacks,
// the ELEMENT trackers that the paper runs as threads) is driven by this loop,
// which makes runs deterministic and reproducible.

#ifndef ELEMENT_SRC_EVLOOP_EVENT_LOOP_H_
#define ELEMENT_SRC_EVLOOP_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"

namespace element {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `cb` at absolute time `at` (>= now). Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime at, Callback cb);
  EventId ScheduleAfter(TimeDelta delay, Callback cb);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a no-op.
  void Cancel(EventId id);

  // Runs until the queue drains or Stop() is called.
  void Run();
  // Runs events with time <= deadline, then sets now to the deadline.
  void RunUntil(SimTime deadline);
  void RunFor(TimeDelta d) { RunUntil(now_ + d); }
  void Stop() { stopped_ = true; }

  size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  uint64_t processed_events() const { return processed_; }

 private:
  struct Event {
    SimTime at;
    EventId id;
    // Heap ordering: earliest time first; FIFO among equal times via id.
    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return id > other.id;
    }
  };

  bool PopRunnable(SimTime deadline, Event* out);

  SimTime now_ = SimTime::Zero();
  EventId next_id_ = 1;
  uint64_t processed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

// Repeating timer built on EventLoop; the simulation analogue of the paper's
// periodic tcp_info tracking thread. The callback runs every `period` until
// Stop() is called or the timer is destroyed.
class PeriodicTimer {
 public:
  PeriodicTimer(EventLoop* loop, TimeDelta period, EventLoop::Callback cb);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }
  TimeDelta period() const { return period_; }
  void set_period(TimeDelta p) { period_ = p; }

 private:
  void Fire();

  EventLoop* loop_;
  TimeDelta period_;
  EventLoop::Callback cb_;
  bool running_ = false;
  EventLoop::EventId pending_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_EVLOOP_EVENT_LOOP_H_
