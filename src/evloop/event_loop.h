// Discrete-event simulation core: a monotonic virtual clock and an ordered
// queue of callbacks. Everything else in this repository (links, TCP stacks,
// the ELEMENT trackers that the paper runs as threads) is driven by this loop,
// which makes runs deterministic and reproducible.
//
// The core is allocation-free on the steady-state path:
//   - event records live in a chunked slab (stable addresses, freelist reuse);
//   - pending events sit in an index-addressable 4-ary min-heap, so Cancel()
//     removes the record in O(log n) — no tombstones, no hash lookup on fire;
//   - handles are generation-tagged, so a stale cancel is a checked no-op;
//   - callbacks are stored in small-buffer InlineCallback storage (no heap
//     allocation for captures up to kInlineBytes, which covers every
//     scheduling site in src/);
//   - Timer re-arms in place (Restart reuses its slab slot), which is what
//     the TCP RTO/delayed-ACK/pacing re-arm churn rides on;
//   - a per-loop FreeListArena recycles Packet payload allocations.
//
// Ordering guarantee: events fire in (time, schedule order). Every schedule
// and every Timer::Restart draws a fresh monotonic sequence number, so
// equal-time events run in exactly the order they were (re-)armed.

#ifndef ELEMENT_SRC_EVLOOP_EVENT_LOOP_H_
#define ELEMENT_SRC_EVLOOP_EVENT_LOOP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/arena.h"
#include "src/common/time.h"

namespace element {

// Move-only type-erased callable with small-buffer storage. Callables whose
// size fits kInlineBytes live inside the object (and therefore inside the
// event slab); larger ones fall back to the heap. Everything scheduled on the
// hot paths in src/ fits inline.
class InlineCallback {
 public:
  static constexpr size_t kInlineBytes = 48;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (buf_) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }
  // True when the callable lives in the inline buffer (no heap allocation).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy, /*inline_storage=*/true};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& Slot(void* p) { return *static_cast<Fn**>(p); }
    static void Invoke(void* p) { (*Slot(p))(); }
    static void Relocate(void* dst, void* src) {
      *static_cast<Fn**>(dst) = Slot(src);
    }
    static void Destroy(void* p) { delete Slot(p); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy, /*inline_storage=*/false};
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// Generation-tagged reference to a pending one-shot event. A handle whose
// event already fired (or was cancelled, or whose slot was since reused)
// no-ops on Cancel: the generation check makes stale handles safe.
struct EventHandle {
  uint32_t slot = kInvalidSlot;
  uint32_t generation = 0;

  static constexpr uint32_t kInvalidSlot = 0xffffffffu;
  bool IsValid() const { return slot != kInvalidSlot; }
};

class Timer;

class EventLoop {
 public:
  using Callback = InlineCallback;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  SimTime now() const { return now_; }

  // Schedules `cb` at absolute time `at` (>= now; earlier clamps to now).
  // Returns a handle usable with Cancel().
  EventHandle ScheduleAt(SimTime at, Callback cb);
  EventHandle ScheduleAfter(TimeDelta delay, Callback cb);

  // Cancels a pending event in O(log n), releasing its slot immediately.
  // Returns true when the event was pending; a stale or invalid handle is a
  // no-op returning false.
  bool Cancel(EventHandle h);

  // Runs until the queue drains or Stop() is called.
  void Run();
  // Runs events with time <= deadline, then sets now to the deadline.
  void RunUntil(SimTime deadline);
  void RunFor(TimeDelta d) { RunUntil(now_ + d); }
  void Stop() { stopped_ = true; }

  size_t pending_events() const { return heap_.size(); }
  uint64_t processed_events() const { return processed_; }

  // Introspection for tests and benchmarks: bounded-growth assertions.
  size_t heap_capacity() const { return heap_.capacity(); }
  size_t slab_slots() const { return chunks_.size() << kChunkShift; }

  // Per-loop arena recycling Packet payload allocations (see
  // MakePooledPayload in src/netsim/packet.h). Payloads drawn from it must
  // not outlive the loop.
  FreeListArena& payload_arena() { return payload_arena_; }

  // Heap-invariant audit (parent <= children, back-pointer consistency).
  // O(n); compiled into debug builds via the periodic fire-path audit and
  // callable directly from tests.
  void AuditHeapInvariant() const;

 private:
  friend class Timer;

  static constexpr uint32_t kChunkShift = 8;  // 256 records per slab chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr uint32_t kNotInHeap = 0xffffffffu;

  struct Record {
    SimTime at;
    uint64_t seq = 0;  // FIFO tie-break among equal times
    uint32_t generation = 1;
    uint32_t heap_index = kNotInHeap;
    uint32_t next_free = EventHandle::kInvalidSlot;
    enum class Kind : uint8_t { kFree, kOneShot, kTrampoline };
    Kind kind = Kind::kFree;
    // Trampoline target (Timer-owned slots): fixed function + context, no
    // callback storage churn on re-arm.
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
    // One-shot callable (moved out on fire).
    InlineCallback cb;
  };

  Record& record(uint32_t slot) { return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)]; }
  const Record& record(uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);

  // (time, seq) lexicographic order.
  bool Earlier(const Record& a, const Record& b) const {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.seq < b.seq;
  }

  void HeapPush(uint32_t slot);
  void HeapRemove(uint32_t slot);  // arbitrary position, O(log n)
  void HeapPopTop();
  void SiftUp(uint32_t index);
  void SiftDown(uint32_t index);

  // Timer plumbing: a trampoline slot is owned by its Timer for the Timer's
  // lifetime; arming inserts it into the heap, firing removes it but keeps
  // the slot allocated so Restart() re-arms in place.
  EventHandle AllocTrampoline(void (*fn)(void*), void* arg);
  void ArmTrampoline(EventHandle h, SimTime at);
  bool DisarmTrampoline(EventHandle h);
  void ReleaseTrampoline(EventHandle h);

  // Returns the slot of the next event with time <= deadline, already
  // removed from the heap, or kInvalidSlot.
  uint32_t PopRunnable(SimTime deadline);
  void RunLoop(SimTime deadline);

  SimTime now_ = SimTime::Zero();
  uint64_t next_seq_ = 1;
  uint64_t processed_ = 0;
  bool stopped_ = false;

  std::vector<std::unique_ptr<Record[]>> chunks_;
  uint32_t free_head_ = EventHandle::kInvalidSlot;
  std::vector<uint32_t> heap_;  // slot ids, 4-ary min-heap over (at, seq)

  FreeListArena payload_arena_;
};

// One-shot, re-armable timer with a fixed callback. The callback is stored
// once at construction; Restart() re-arms the timer's slab slot in place
// (new deadline, fresh sequence number) without touching callback storage —
// the zero-allocation replacement for the schedule/cancel churn of re-armed
// timeouts (TCP RTO, delayed ACK, pacing).
//
// Destroying the timer cancels any pending fire, so callbacks never outlive
// their owner (no alive-flag guards needed). Destroying a timer from inside
// its own callback is allowed only as the callback's last action.
class Timer {
 public:
  Timer(EventLoop* loop, EventLoop::Callback cb) : loop_(loop), cb_(std::move(cb)) {}
  ~Timer();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // Arms (or re-arms in place) the timer to fire at `at` (>= now; earlier
  // clamps to now). Re-arming draws a fresh sequence number, exactly as a
  // cancel + schedule would.
  void Restart(SimTime at);
  void RestartAfter(TimeDelta delay) { Restart(loop_->now() + delay); }

  // Disarms a pending fire; returns true when the timer was pending.
  bool Cancel();

  bool pending() const { return pending_; }
  // Deadline of the pending fire; meaningful only while pending().
  SimTime deadline() const { return deadline_; }

 private:
  static void FireTrampoline(void* self);

  EventLoop* loop_;
  EventLoop::Callback cb_;
  EventHandle handle_;  // trampoline slot, allocated on first Restart
  bool pending_ = false;
  SimTime deadline_;
};

// Repeating timer built on Timer; the simulation analogue of the paper's
// periodic tcp_info tracking thread. The callback runs every `period` until
// Stop() is called or the timer is destroyed. set_period() re-arms the
// in-flight fire: the next fire lands at (last fire or Start) + new period
// (clamped to now), and subsequent fires follow the new period.
class PeriodicTimer {
 public:
  PeriodicTimer(EventLoop* loop, TimeDelta period, EventLoop::Callback cb);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }
  TimeDelta period() const { return period_; }
  void set_period(TimeDelta p);

 private:
  void Fire();

  EventLoop* loop_;
  TimeDelta period_;
  EventLoop::Callback cb_;
  Timer timer_;
  bool running_ = false;
  SimTime base_;  // last fire time (or Start time): anchor for re-arms
};

}  // namespace element

#endif  // ELEMENT_SRC_EVLOOP_EVENT_LOOP_H_
