// Contention experiment: N foreground flows and configurable cross traffic
// through a shared-bottleneck topology, with ground-truth delay decomposition
// per foreground flow and (optionally) ELEMENT's estimator accuracy for flow
// 0 — the production-network analogue of the paper's single-path accuracy
// experiments, and the engine behind bench/fig_contention and the
// `topology` axis of the fleet runner.

#ifndef ELEMENT_SRC_TOPO_CONTENTION_H_
#define ELEMENT_SRC_TOPO_CONTENTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/element/estimation_error.h"
#include "src/netsim/qdisc.h"
#include "src/telemetry/metric_registry.h"
#include "src/topo/cross_traffic.h"
#include "src/topo/topology.h"
#include "src/trace/ground_truth.h"

namespace element {

struct ContentionConfig {
  TopologySpec topo;

  // Foreground long-lived flows, round-robined over the spec's end-to-end
  // host pairs.
  int flows = 2;
  std::string congestion_control = "cubic";
  bool ecn = false;  // foreground sockets negotiate ECN (pair with topo.ecn)

  // Per-hop background load (see cross_traffic.h).
  CrossTrafficConfig cross;

  // Score flow 0's ELEMENT sender/receiver estimates against ground truth.
  bool element_on_first = false;
  TimeDelta tracker_period = TimeDelta::FromMillis(10);

  double duration_s = 30.0;
  double warmup_s = 3.0;  // excluded from the delay decomposition
  uint64_t seed = 1;
};

struct ContentionFlowResult {
  double goodput_mbps = 0.0;
  double sender_delay_s = 0.0;
  double network_delay_s = 0.0;
  double receiver_delay_s = 0.0;
  double e2e_delay_s = 0.0;
  double sender_delay_stdev_s = 0.0;
  double receiver_delay_stdev_s = 0.0;
  uint64_t retransmits = 0;
};

struct ContentionResult {
  std::vector<ContentionFlowResult> flows;  // foreground, in creation order

  // Jain's fairness index over foreground goodputs: 1.0 = perfectly fair,
  // 1/n = one flow starves all others.
  double jain_fairness = 1.0;

  bool has_accuracy = false;
  AccuracyResult sender_accuracy;    // flow 0 estimates vs ground truth
  AccuracyResult receiver_accuracy;
  GroundTruthTracer::Composition flow0_composition;

  // Topology-level accounting.
  uint64_t forwarded_packets = 0;    // summed over every router
  uint64_t unroutable_packets = 0;   // must stay 0 in a well-routed run
  size_t cross_flows = 0;
  uint64_t cross_bytes_delivered = 0;
  QdiscStats bottleneck;             // hop 0, forward direction
  uint64_t processed_events = 0;     // EventLoop total (perf accounting)

  // End-of-run registry snapshot: router/hop counters published by the
  // Network plus "telemetry.dispatched" from the run's spine. Mergeable
  // across runs via MetricRegistry::Merge.
  telemetry::MetricRegistry metrics;
};

// Runs one seeded contention scenario to completion on the calling thread.
// Deterministic in the config: identical configs produce identical results.
ContentionResult RunContentionExperiment(const ContentionConfig& config);

// Jain's fairness index (Σx)² / (n·Σx²); 1.0 for n <= 1 or all-zero inputs.
double JainFairnessIndex(const std::vector<double>& values);

}  // namespace element

#endif  // ELEMENT_SRC_TOPO_CONTENTION_H_
