#include "src/topo/contention.h"

#include <memory>
#include <utility>

#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"

namespace element {

namespace {

// ByteSink routing through em_send so the sender-side estimator sees writes
// (the same adapter the single-path accuracy experiment uses).
class EmSink : public ByteSink {
 public:
  explicit EmSink(ElementSocket* em) : em_(em) {}
  size_t Write(size_t n) override {
    RetInfo info = em_->Send(n);
    return info.size > 0 ? static_cast<size_t>(info.size) : 0;
  }
  // App-facing ByteSink registration interface.
  void SetWritableCallback(std::function<void()> cb) override {  // lint_sim: allow(std-function)
    em_->SetReadyToSendCallback(std::move(cb));
  }
  TcpSocket* socket() override { return em_->socket(); }

 private:
  ElementSocket* em_;
};

struct ForegroundFlow {
  uint64_t flow_id = 0;
  int pair = -1;
  std::unique_ptr<TcpSocket> sender;
  std::unique_ptr<TcpSocket> receiver;
  std::unique_ptr<GroundTruthTracer> tracer;
  std::unique_ptr<ElementSocket> em_snd;
  std::unique_ptr<ElementSocket> em_rcv;
  std::unique_ptr<ByteSink> sink;
  std::unique_ptr<IperfApp> app;
  std::unique_ptr<SinkApp> reader;
};

}  // namespace

double JainFairnessIndex(const std::vector<double>& values) {
  if (values.size() <= 1) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) {
    return 1.0;
  }
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

ContentionResult RunContentionExperiment(const ContentionConfig& config) {
  ELEMENT_CHECK(config.flows >= 1) << "contention run needs at least one foreground flow";
  EventLoop loop;
  Rng rng(config.seed);
  Network net(&loop, &rng, config.topo);
  // One spine per run: qdisc/socket producers route through it, and its
  // registry carries the end-of-run counter snapshot out in the result.
  telemetry::TelemetrySpine spine;
  net.BindTelemetry(&spine);
  SimTime warmup = SimTime::FromNanos(static_cast<int64_t>(config.warmup_s * 1e9));

  TcpSocket::Config socket_config;
  socket_config.congestion_control = config.congestion_control;
  socket_config.ecn = config.ecn;

  std::vector<ForegroundFlow> flows;
  flows.reserve(static_cast<size_t>(config.flows));
  for (int i = 0; i < config.flows; ++i) {
    ForegroundFlow flow;
    flow.pair = i % net.spec().host_pairs;
    flow.flow_id = net.AllocateFlowId();
    net.RouteFlow(flow.flow_id, flow.pair);
    Network::Attachment snd = net.sender(flow.pair);
    Network::Attachment rcv = net.receiver(flow.pair);
    flow.sender = std::make_unique<TcpSocket>(&loop, rng.Fork(), socket_config, flow.flow_id,
                                              snd.tx, snd.rx);
    flow.receiver = std::make_unique<TcpSocket>(&loop, rng.Fork(), socket_config, flow.flow_id,
                                                rcv.tx, rcv.rx);
    flow.sender->BindTelemetry(&spine);
    flow.receiver->BindTelemetry(&spine);
    GroundTruthTracer::Config tracer_config;
    tracer_config.record_from = warmup;
    // Flow 0's accuracy scoring interpolates the ground-truth time series, so
    // it keeps the series regardless of warmup.
    tracer_config.keep_time_series = true;
    flow.tracer = std::make_unique<GroundTruthTracer>(tracer_config);
    flow.sender->telemetry().AttachSink(flow.tracer.get());
    flow.receiver->telemetry().AttachSink(flow.tracer.get());
    flow.receiver->Listen();
    flow.sender->Connect();

    if (i == 0 && config.element_on_first) {
      ElementSocket::Options options;
      options.enable_latency_minimization = false;
      options.tracker_period = config.tracker_period;
      flow.em_snd = std::make_unique<ElementSocket>(&loop, flow.sender.get(), options);
      flow.em_rcv = std::make_unique<ElementSocket>(&loop, flow.receiver.get(), options);
      flow.sink = std::make_unique<EmSink>(flow.em_snd.get());
      flow.reader = std::make_unique<SinkApp>(flow.em_rcv.get());
    } else {
      flow.sink = std::make_unique<RawTcpSink>(flow.sender.get());
      flow.reader = std::make_unique<SinkApp>(flow.receiver.get());
    }
    flow.app = std::make_unique<IperfApp>(&loop, flow.sink.get());
    flows.push_back(std::move(flow));
  }

  // Cross traffic is created after the foreground flows so both draw their
  // flow ids and Rng forks in a fixed, seed-stable order.
  CrossTraffic cross(&loop, &rng, &net, config.cross);

  for (ForegroundFlow& flow : flows) {
    flow.app->Start();
    flow.reader->Start();
  }
  cross.Start();

  loop.RunUntil(SimTime::FromNanos(static_cast<int64_t>(config.duration_s * 1e9)));

  ContentionResult result;
  std::vector<double> goodputs;
  goodputs.reserve(flows.size());
  for (ForegroundFlow& flow : flows) {
    ContentionFlowResult row;
    row.goodput_mbps = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                                TimeDelta::FromSeconds(config.duration_s))
                           .ToMbps();
    GroundTruthTracer::Composition c = flow.tracer->MeanComposition();
    row.sender_delay_s = c.sender_s;
    row.network_delay_s = c.network_s;
    row.receiver_delay_s = c.receiver_s;
    row.e2e_delay_s = flow.tracer->end_to_end_delay().mean();
    row.sender_delay_stdev_s = flow.tracer->sender_delay().Stdev();
    row.receiver_delay_stdev_s = flow.tracer->receiver_delay().Stdev();
    row.retransmits = flow.sender->total_retransmits();
    goodputs.push_back(row.goodput_mbps);
    result.flows.push_back(row);
  }
  result.jain_fairness = JainFairnessIndex(goodputs);

  if (config.element_on_first) {
    ForegroundFlow& flow0 = flows.front();
    result.has_accuracy = true;
    result.sender_accuracy = ScoreEstimates(flow0.em_snd->sender_estimator().delay_series(),
                                            flow0.tracer->sender_delay_series());
    result.receiver_accuracy =
        ScoreEstimates(flow0.em_rcv->receiver_estimator().delay_series(),
                       flow0.tracer->receiver_delay_series());
    result.flow0_composition = flow0.tracer->MeanComposition();
  }

  result.forwarded_packets = net.TotalForwardedPackets();
  result.unroutable_packets = net.TotalUnroutablePackets();
  result.cross_flows = cross.flow_count();
  result.cross_bytes_delivered = cross.TotalBytesDelivered();
  result.bottleneck = net.bottleneck_qdisc(0).stats();
  result.processed_events = loop.processed_events();
  net.PublishMetrics(&result.metrics, "topo.");
  *result.metrics.Counter("telemetry.dispatched") += spine.dispatched();
  return result;
}

}  // namespace element
