// Cross-traffic generators for topology experiments: the "production
// network" background load that single-path testbeds cannot express.
//
// Two flavors, both real TCP flows through the shared qdiscs (so they react
// to the AQM exactly like the foreground traffic does):
//   - long-lived iperf-style flows (IperfApp): persistent full-rate
//     contenders, the classic dumbbell competitor;
//   - on-off web-like flows (OnOffSender): Pareto-sized bursts separated by
//     exponential idle gaps — heavy-tailed, bursty load that stresses AQM
//     reaction time the way short web transfers do.
//
// Determinism: every flow's socket and every on-off draw forks the scenario
// Rng in construction order; cross traffic adds no wall-clock or global
// state, so seeded runs replay byte-identically.

#ifndef ELEMENT_SRC_TOPO_CROSS_TRAFFIC_H_
#define ELEMENT_SRC_TOPO_CROSS_TRAFFIC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/iperf_app.h"
#include "src/common/rng.h"
#include "src/element/byte_sink.h"
#include "src/evloop/event_loop.h"
#include "src/tcpsim/tcp_socket.h"
#include "src/topo/topology.h"

namespace element {

struct CrossTrafficConfig {
  // Flows attached *per hop*: hop h's cross pairs enter at router level h and
  // exit at h+1, so every hop of a parking lot sees its own contention. On a
  // dumbbell (hops == 1) they simply share the one bottleneck.
  int iperf_flows = 0;
  int onoff_flows = 0;

  std::string congestion_control = "cubic";
  bool ecn = false;

  // On-off shape. Burst sizes are Pareto with this mean (heavy tailed, like
  // web-object sizes); idle gaps are exponential.
  double mean_burst_bytes = 256.0 * 1024.0;
  double pareto_shape = 1.5;
  TimeDelta mean_off_time = TimeDelta::FromMillis(500);
};

// Drives one sender socket with Pareto on / exponential off periods.
class OnOffSender {
 public:
  OnOffSender(EventLoop* loop, TcpSocket* socket, Rng rng, const CrossTrafficConfig& config);

  void Start();
  uint64_t bytes_offered() const { return bytes_offered_; }
  uint64_t bursts_started() const { return bursts_started_; }

 private:
  void StartBurst();
  void Pump();

  EventLoop* loop_;
  TcpSocket* socket_;
  Rng rng_;
  double burst_scale_;  // Pareto scale for the configured mean
  double pareto_shape_;
  TimeDelta mean_off_;
  uint64_t burst_remaining_ = 0;
  uint64_t bytes_offered_ = 0;
  uint64_t bursts_started_ = 0;
  bool started_ = false;
  Timer off_timer_;
};

// Owns the host pairs, sockets, and apps of a Network's cross-traffic load.
class CrossTraffic {
 public:
  // Attaches (iperf_flows + onoff_flows) host pairs per hop and wires a
  // connected TCP flow through each; Start() begins all generators.
  CrossTraffic(EventLoop* loop, Rng* rng, Network* net, const CrossTrafficConfig& config);

  void Start();
  size_t flow_count() const { return flows_.size(); }
  // Application bytes delivered to cross receivers so far.
  uint64_t TotalBytesDelivered() const;

 private:
  struct CrossFlow {
    uint64_t flow_id = 0;
    int pair = -1;
    std::unique_ptr<TcpSocket> sender;
    std::unique_ptr<TcpSocket> receiver;
    std::unique_ptr<RawTcpSink> sink;
    std::unique_ptr<IperfApp> iperf;
    std::unique_ptr<OnOffSender> onoff;
    std::unique_ptr<SinkApp> reader;
  };

  void AddFlow(EventLoop* loop, Rng* rng, Network* net, int hop, bool onoff);

  CrossTrafficConfig config_;
  std::vector<CrossFlow> flows_;
};

}  // namespace element

#endif  // ELEMENT_SRC_TOPO_CROSS_TRAFFIC_H_
