#include "src/topo/cross_traffic.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace element {

namespace {
// Write granularity for on-off bursts; matches IperfApp's default chunk.
constexpr size_t kBurstChunkBytes = 128 * 1024;
}  // namespace

OnOffSender::OnOffSender(EventLoop* loop, TcpSocket* socket, Rng rng,
                         const CrossTrafficConfig& config)
    : loop_(loop),
      socket_(socket),
      rng_(std::move(rng)),
      // Pareto mean = scale * shape / (shape - 1); solve for scale so bursts
      // average config.mean_burst_bytes.
      burst_scale_(config.mean_burst_bytes * (config.pareto_shape - 1.0) /
                   config.pareto_shape),
      pareto_shape_(config.pareto_shape),
      mean_off_(config.mean_off_time),
      off_timer_(loop, [this] { StartBurst(); }) {
  ELEMENT_CHECK(config.pareto_shape > 1.0)
      << "on-off Pareto shape must be > 1 for a finite mean burst, got "
      << config.pareto_shape;
}

void OnOffSender::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  socket_->SetWritableCallback([this] { Pump(); });
  StartBurst();
}

void OnOffSender::StartBurst() {
  ++bursts_started_;
  double draw = rng_.Pareto(burst_scale_, pareto_shape_);
  uint64_t min_burst = socket_->mss();
  burst_remaining_ = std::max<uint64_t>(min_burst, static_cast<uint64_t>(std::llround(draw)));
  Pump();
}

void OnOffSender::Pump() {
  while (burst_remaining_ > 0) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(burst_remaining_, kBurstChunkBytes));
    size_t accepted = socket_->Write(want);
    if (accepted == 0) {
      return;  // buffer full; the writable callback resumes the burst
    }
    bytes_offered_ += accepted;
    burst_remaining_ -= accepted;
  }
  // Burst complete: go idle for an exponential off period.
  off_timer_.RestartAfter(TimeDelta::FromSeconds(rng_.Exponential(mean_off_.ToSeconds())));
}

CrossTraffic::CrossTraffic(EventLoop* loop, Rng* rng, Network* net,
                           const CrossTrafficConfig& config)
    : config_(config) {
  for (int hop = 0; hop < net->spec().hops; ++hop) {
    for (int i = 0; i < config_.iperf_flows; ++i) {
      AddFlow(loop, rng, net, hop, /*onoff=*/false);
    }
    for (int i = 0; i < config_.onoff_flows; ++i) {
      AddFlow(loop, rng, net, hop, /*onoff=*/true);
    }
  }
}

void CrossTraffic::AddFlow(EventLoop* loop, Rng* rng, Network* net, int hop, bool onoff) {
  CrossFlow flow;
  flow.pair = net->AttachHostPair(hop, hop + 1);
  flow.flow_id = net->AllocateFlowId();
  net->RouteFlow(flow.flow_id, flow.pair);

  TcpSocket::Config socket_config;
  socket_config.congestion_control = config_.congestion_control;
  socket_config.ecn = config_.ecn;
  Network::Attachment snd = net->sender(flow.pair);
  Network::Attachment rcv = net->receiver(flow.pair);
  flow.sender = std::make_unique<TcpSocket>(loop, rng->Fork(), socket_config, flow.flow_id,
                                            snd.tx, snd.rx);
  flow.receiver = std::make_unique<TcpSocket>(loop, rng->Fork(), socket_config, flow.flow_id,
                                              rcv.tx, rcv.rx);
  flow.receiver->Listen();
  flow.sender->Connect();

  flow.sink = std::make_unique<RawTcpSink>(flow.sender.get());
  if (onoff) {
    flow.onoff = std::make_unique<OnOffSender>(loop, flow.sender.get(), rng->Fork(), config_);
  } else {
    flow.iperf = std::make_unique<IperfApp>(loop, flow.sink.get());
  }
  flow.reader = std::make_unique<SinkApp>(flow.receiver.get());
  flows_.push_back(std::move(flow));
}

void CrossTraffic::Start() {
  for (CrossFlow& flow : flows_) {
    flow.reader->Start();
    if (flow.onoff != nullptr) {
      flow.onoff->Start();
    } else {
      flow.iperf->Start();
    }
  }
}

uint64_t CrossTraffic::TotalBytesDelivered() const {
  uint64_t total = 0;
  for (const CrossFlow& flow : flows_) {
    total += flow.receiver->app_bytes_read();
  }
  return total;
}

}  // namespace element
