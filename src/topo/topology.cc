#include "src/topo/topology.h"

#include <sstream>
#include <utility>

#include "src/netsim/pfifo_fast.h"

namespace element {

std::string TopologySpec::Validate() const {
  std::ostringstream os;
  if (host_pairs < 1) {
    os << "host_pairs must be >= 1, got " << host_pairs;
  } else if (hops < 1) {
    os << "hops must be >= 1, got " << hops;
  } else if (shape == TopologyShape::kDumbbell && hops != 1) {
    os << "dumbbell topologies have exactly one hop, got " << hops;
  } else if (hops > 16) {
    os << "hops must be <= 16, got " << hops;
  } else if (bottleneck_rate.IsZero()) {
    os << "bottleneck_rate must be positive";
  } else if (queue_limit_packets == 0) {
    os << "queue_limit_packets must be >= 1";
  }
  return os.str();
}

Network::Network(EventLoop* loop, Rng* rng, const TopologySpec& spec)
    : loop_(loop), rng_(rng), spec_(spec) {
  ELEMENT_CHECK(spec_.Validate().empty()) << "bad TopologySpec: " << spec_.Validate();
  access_rate_ = spec_.access_rate.IsZero() ? spec_.bottleneck_rate * 10.0
                                            : spec_.access_rate;
  DataRate reverse_rate = spec_.reverse_rate.IsZero() ? spec_.bottleneck_rate
                                                      : spec_.reverse_rate;

  int levels = spec_.hops + 1;
  fwd_routers_.reserve(static_cast<size_t>(levels));
  rev_routers_.reserve(static_cast<size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    fwd_routers_.push_back(std::make_unique<Router>("fwd_r" + std::to_string(l)));
    rev_routers_.push_back(std::make_unique<Router>("rev_r" + std::to_string(l)));
  }

  // Bottleneck pipes. Forward hop h carries data toward higher levels and
  // runs the spec's qdisc; the reverse hop carries ACKs back through a roomy
  // pfifo_fast. Default routes point "onward" so only exit hops need
  // exact-match entries.
  for (int h = 0; h < spec_.hops; ++h) {
    std::unique_ptr<Qdisc> qdisc = MakeBottleneckQdisc(spec_.qdisc, spec_.queue_limit_packets,
                                                       spec_.ecn, rng_);
    if (h == 0 && spec_.instrument_bottleneck) {
      auto probe = std::make_unique<InstrumentedQdisc>(std::move(qdisc));
      bottleneck_probe_ = probe.get();
      qdisc = std::move(probe);
    }
    auto fwd_link = std::make_unique<FixedLinkModel>(spec_.bottleneck_rate,
                                                     spec_.bottleneck_delay);
    pipes_.push_back(std::make_unique<Pipe>(loop_, rng_->Fork(), std::move(qdisc),
                                            std::move(fwd_link),
                                            fwd_routers_[static_cast<size_t>(h + 1)].get()));
    fwd_bottlenecks_.push_back(pipes_.back().get());
    int fwd_port = fwd_routers_[static_cast<size_t>(h)]->AddPort(pipes_.back().get());
    fwd_routers_[static_cast<size_t>(h)]->SetDefaultPort(fwd_port);

    size_t rev_limit = spec_.access_queue_packets > spec_.queue_limit_packets
                           ? spec_.access_queue_packets
                           : spec_.queue_limit_packets;
    auto rev_qdisc = std::make_unique<PfifoFast>(rev_limit);
    auto rev_link = std::make_unique<FixedLinkModel>(reverse_rate, spec_.bottleneck_delay);
    pipes_.push_back(std::make_unique<Pipe>(loop_, rng_->Fork(), std::move(rev_qdisc),
                                            std::move(rev_link),
                                            rev_routers_[static_cast<size_t>(h)].get()));
    rev_bottlenecks_.push_back(pipes_.back().get());
    int rev_port = rev_routers_[static_cast<size_t>(h + 1)]->AddPort(pipes_.back().get());
    rev_routers_[static_cast<size_t>(h + 1)]->SetDefaultPort(rev_port);
  }

  // End-to-end host pairs span the whole path.
  for (int p = 0; p < spec_.host_pairs; ++p) {
    AttachHostPair(0, spec_.hops);
  }
}

Pipe* Network::MakeAccessPipe(PacketSink* out) {
  auto qdisc = std::make_unique<PfifoFast>(spec_.access_queue_packets);
  auto link = std::make_unique<FixedLinkModel>(access_rate_, spec_.access_delay);
  pipes_.push_back(
      std::make_unique<Pipe>(loop_, rng_->Fork(), std::move(qdisc), std::move(link), out));
  return pipes_.back().get();
}

int Network::AttachHostPair(int sender_level, int receiver_level) {
  ELEMENT_CHECK(sender_level >= 0 && receiver_level <= spec_.hops &&
                sender_level < receiver_level)
      << "bad host pair levels " << sender_level << " -> " << receiver_level;
  HostPair pair;
  pair.sender_level = sender_level;
  pair.receiver_level = receiver_level;
  pair.sender_rx = std::make_unique<Demux>();
  pair.receiver_rx = std::make_unique<Demux>();
  pair.sender_out = MakeAccessPipe(fwd_routers_[static_cast<size_t>(sender_level)].get());
  pair.receiver_out = MakeAccessPipe(rev_routers_[static_cast<size_t>(receiver_level)].get());
  pair.sender_in = MakeAccessPipe(pair.sender_rx.get());
  pair.receiver_in = MakeAccessPipe(pair.receiver_rx.get());
  pair.fwd_exit_port =
      fwd_routers_[static_cast<size_t>(receiver_level)]->AddPort(pair.receiver_in);
  pair.rev_exit_port = rev_routers_[static_cast<size_t>(sender_level)]->AddPort(pair.sender_in);
  pairs_.push_back(std::move(pair));
  return static_cast<int>(pairs_.size()) - 1;
}

Network::Attachment Network::sender(int pair) const {
  const HostPair& p = pairs_[static_cast<size_t>(pair)];
  return Attachment{p.sender_out, p.sender_rx.get()};
}

Network::Attachment Network::receiver(int pair) const {
  const HostPair& p = pairs_[static_cast<size_t>(pair)];
  return Attachment{p.receiver_out, p.receiver_rx.get()};
}

uint64_t Network::AllocateFlowId() {
  if (!free_flow_ids_.empty()) {
    uint64_t id = free_flow_ids_.back();
    free_flow_ids_.pop_back();
    return id;
  }
  return next_flow_id_++;
}

void Network::ReleaseFlowId(uint64_t flow_id) {
  ELEMENT_DCHECK(flow_id > 0 && flow_id < next_flow_id_)
      << "releasing unallocated flow id " << flow_id;
  free_flow_ids_.push_back(flow_id);
}

void Network::RouteFlow(uint64_t flow_id, int pair) {
  const HostPair& p = pairs_[static_cast<size_t>(pair)];
  fwd_routers_[static_cast<size_t>(p.receiver_level)]->AddRoute(flow_id, p.fwd_exit_port);
  rev_routers_[static_cast<size_t>(p.sender_level)]->AddRoute(flow_id, p.rev_exit_port);
}

void Network::UnrouteFlow(uint64_t flow_id, int pair) {
  const HostPair& p = pairs_[static_cast<size_t>(pair)];
  fwd_routers_[static_cast<size_t>(p.receiver_level)]->RemoveRoute(flow_id);
  rev_routers_[static_cast<size_t>(p.sender_level)]->RemoveRoute(flow_id);
}

Qdisc& Network::bottleneck_qdisc(int hop) {
  return fwd_bottlenecks_[static_cast<size_t>(hop)]->qdisc();
}

TimeDelta Network::BaseRtt(int pair) const {
  const HostPair& p = pairs_[static_cast<size_t>(pair)];
  TimeDelta one_way = spec_.access_delay * 2 +
                      spec_.bottleneck_delay * (p.receiver_level - p.sender_level);
  return one_way * 2;
}

uint64_t Network::TotalForwardedPackets() const {
  uint64_t total = 0;
  for (const auto& r : fwd_routers_) {
    total += r->stats().forwarded_packets;
  }
  for (const auto& r : rev_routers_) {
    total += r->stats().forwarded_packets;
  }
  return total;
}

uint64_t Network::TotalUnroutablePackets() const {
  uint64_t total = 0;
  for (const auto& r : fwd_routers_) {
    total += r->stats().unroutable_packets;
  }
  for (const auto& r : rev_routers_) {
    total += r->stats().unroutable_packets;
  }
  return total;
}

}  // namespace element
