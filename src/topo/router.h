// Router: the forwarding element of the multi-flow topology layer. A router
// owns nothing but a forwarding table; its egress "ports" are plain
// PacketSinks (usually Pipes owned by the Network, sometimes a host demux or
// another router directly). Forwarding is static: routes are installed when a
// flow is wired through the topology and removed on teardown — there is no
// routing protocol, which keeps multi-hop runs exactly reproducible.
//
// Lookup is a dense vector indexed by flow id (flow ids are small and
// allocated densely by Network/DuplexPath), so the per-packet cost on the
// forwarding hot path is one bounds check and one load. Flows without an
// exact route fall through to the default port (the "next hop toward the far
// end" in dumbbell/parking-lot shapes); packets with neither are counted
// dropped, never delivered.

#ifndef ELEMENT_SRC_TOPO_ROUTER_H_
#define ELEMENT_SRC_TOPO_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/netsim/packet.h"
#include "src/telemetry/metric_registry.h"

namespace element {

struct RouterStats {
  uint64_t forwarded_packets = 0;
  uint64_t forwarded_bytes = 0;
  uint64_t unroutable_packets = 0;  // no exact route and no default port
};

class Router : public PacketSink {
 public:
  explicit Router(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Registers an egress port and returns its index. Ports are never removed;
  // topology shape is fixed for the lifetime of a run.
  int AddPort(PacketSink* next_hop) {
    ELEMENT_CHECK(next_hop != nullptr) << name_ << ": null egress port";
    ports_.push_back(next_hop);
    return static_cast<int>(ports_.size()) - 1;
  }
  int port_count() const { return static_cast<int>(ports_.size()); }

  // Flows without an exact route forward here (-1 disables, the default).
  void SetDefaultPort(int port) {
    ELEMENT_CHECK(port >= -1 && port < port_count())
        << name_ << ": bad default port " << port;
    default_port_ = port;
  }

  void AddRoute(uint64_t flow_id, int port);
  void RemoveRoute(uint64_t flow_id);
  bool HasRoute(uint64_t flow_id) const {
    return flow_id < routes_.size() && routes_[flow_id] >= 0;
  }
  // Live exact routes — churn tests assert this returns to its baseline.
  size_t route_count() const { return route_count_; }

  const RouterStats& stats() const { return stats_; }

  // Mirrors the forwarding counters into `registry` under `prefix`
  // (end-of-run publication — the per-packet path stays one load + one call).
  void PublishMetrics(telemetry::MetricRegistry* registry, const std::string& prefix) const {
    *registry->Counter(prefix + "forwarded_packets") += stats_.forwarded_packets;
    *registry->Counter(prefix + "forwarded_bytes") += stats_.forwarded_bytes;
    *registry->Counter(prefix + "unroutable_packets") += stats_.unroutable_packets;
  }

  // PacketSink: table lookup + hand-off to the egress port.
  void Deliver(Packet pkt) override;

 private:
  std::string name_;
  std::vector<PacketSink*> ports_;
  // flow id -> port index, -1 = no exact route. Dense: ids come from the
  // Network's allocator which recycles released ids, so the table stays
  // proportional to the peak concurrent flow count.
  std::vector<int32_t> routes_;
  size_t route_count_ = 0;
  int default_port_ = -1;
  RouterStats stats_;
};

}  // namespace element

#endif  // ELEMENT_SRC_TOPO_ROUTER_H_
