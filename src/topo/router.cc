#include "src/topo/router.h"

#include <utility>

namespace element {

void Router::AddRoute(uint64_t flow_id, int port) {
  ELEMENT_CHECK(port >= 0 && port < port_count()) << name_ << ": bad port " << port;
  if (flow_id >= routes_.size()) {
    routes_.resize(flow_id + 1, -1);
  }
  // Installing over a live different route would silently misdeliver the old
  // flow's in-flight packets; callers must RemoveRoute first.
  ELEMENT_DCHECK(routes_[flow_id] < 0 || routes_[flow_id] == port)
      << name_ << ": route clobber for flow " << flow_id << ": " << routes_[flow_id] << " -> "
      << port;
  if (routes_[flow_id] < 0) {
    ++route_count_;
  }
  routes_[flow_id] = static_cast<int32_t>(port);
}

void Router::RemoveRoute(uint64_t flow_id) {
  if (flow_id < routes_.size() && routes_[flow_id] >= 0) {
    routes_[flow_id] = -1;
    --route_count_;
  }
}

void Router::Deliver(Packet pkt) {
  int port = default_port_;
  if (pkt.flow_id < routes_.size() && routes_[pkt.flow_id] >= 0) {
    port = routes_[pkt.flow_id];
  }
  if (port < 0) {
    ++stats_.unroutable_packets;
    return;
  }
  ++stats_.forwarded_packets;
  stats_.forwarded_bytes += pkt.size_bytes;
  ports_[static_cast<size_t>(port)]->Deliver(std::move(pkt));
}

}  // namespace element
