// Multi-flow network topology: routers, per-egress-port pipes, and host
// attachment points, built from a declarative TopologySpec.
//
// Shapes
//   dumbbell     N sender hosts -- [access] -- R0 == bottleneck == R1 --
//                [access] -- N receiver hosts. Every flow shares the one
//                bottleneck qdisc in each direction.
//   parking lot  R0 == hop0 == R1 == hop1 == ... == R_hops. End-to-end hosts
//                attach at R0/R_hops; per-hop cross traffic attaches at
//                (R_i, R_{i+1}) so each hop sees its own contention.
//
// The Network owns every pipe, router, and host demux. Endpoints (TcpSocket,
// UdpSocket, listeners) are created by the caller against a host pair's
// {tx, rx} attachment: tx is the host's access pipe into the topology, rx is
// the host's demux. Routing is explicit: RouteFlow installs the exact-match
// exit routes a flow needs (intermediate routers forward on their default
// "next hop" port), UnrouteFlow removes them, and flow ids are recycled
// through a free list so the routers' dense tables stay proportional to the
// peak concurrent flow count.
//
// Determinism rules (see docs/topology.md): construction order is fixed by
// the spec, every pipe forks the caller's Rng in that order, and the layer
// adds no randomness of its own — seeded runs are byte-identical.

#ifndef ELEMENT_SRC_TOPO_TOPOLOGY_H_
#define ELEMENT_SRC_TOPO_TOPOLOGY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/evloop/event_loop.h"
#include "src/netsim/instrumented_qdisc.h"
#include "src/netsim/pipe.h"
#include "src/tcpsim/testbed.h"
#include "src/topo/router.h"

namespace element {

enum class TopologyShape { kDumbbell, kParkingLot };

struct TopologySpec {
  TopologyShape shape = TopologyShape::kDumbbell;

  // End-to-end sender/receiver host pairs attached at the topology's ends.
  // Multiple flows may share one pair (they then also share its access
  // pipes); the canonical dumbbell uses one pair per flow.
  int host_pairs = 2;

  // Bottleneck links in series. A dumbbell is the hops == 1 special case;
  // parking lots use hops >= 2 with cross traffic attached per hop.
  int hops = 1;

  // Per-hop bottleneck configuration (every hop is identical; heterogeneous
  // hops were not needed for the paper's scenarios).
  QdiscType qdisc = QdiscType::kPfifoFast;
  size_t queue_limit_packets = 100;
  bool ecn = false;
  DataRate bottleneck_rate = DataRate::Mbps(10);
  TimeDelta bottleneck_delay = TimeDelta::FromMillis(10);  // propagation per hop
  // Reverse-direction bottleneck rate; zero mirrors the forward rate. The
  // reverse qdisc is always a roomy pfifo_fast (ACKs must not be the
  // experiment's bottleneck unless the spec lowers this rate).
  DataRate reverse_rate = DataRate::Zero();

  // Host access links. Zero rate auto-sizes to 10x the bottleneck so access
  // never masks bottleneck contention.
  DataRate access_rate = DataRate::Zero();
  TimeDelta access_delay = TimeDelta::FromMillis(1);
  size_t access_queue_packets = 1000;

  // Wrap hop 0's forward qdisc in an InstrumentedQdisc (per-packet sojourn
  // probe), as Testbed does for the single-path experiments.
  bool instrument_bottleneck = false;

  // Empty string when well-formed, else the first problem.
  std::string Validate() const;
};

class Network {
 public:
  // `loop` and `rng` must outlive the network; pipes fork `rng` in
  // construction order.
  Network(EventLoop* loop, Rng* rng, const TopologySpec& spec);

  const TopologySpec& spec() const { return spec_; }
  int levels() const { return spec_.hops + 1; }

  // One endpoint's attachment: where it transmits into the topology and the
  // demux its packets are delivered to.
  struct Attachment {
    PacketSink* tx = nullptr;
    Demux* rx = nullptr;
  };

  // Attaches a host pair whose sender injects at router level `sender_level`
  // and whose receiver exits at `receiver_level` (sender_level <
  // receiver_level). The spec's end-to-end pairs are pre-attached at levels
  // (0, hops); cross-traffic builders attach per-hop pairs (i, i+1).
  // Returns the pair index.
  int AttachHostPair(int sender_level, int receiver_level);
  int host_pair_count() const { return static_cast<int>(pairs_.size()); }

  Attachment sender(int pair) const;
  Attachment receiver(int pair) const;

  // Flow id allocation with recycling: released ids are reused (LIFO) so the
  // routers' dense tables do not grow with churn. An id must only be released
  // after its endpoints are unregistered and unrouted, and — if it may be
  // reused while old packets could still be in flight — after the loop has
  // drained those deliveries (see docs/topology.md).
  uint64_t AllocateFlowId();
  void ReleaseFlowId(uint64_t flow_id);

  // Installs / removes the exact-match exit routes for one flow between the
  // endpoints of `pair` (both directions).
  void RouteFlow(uint64_t flow_id, int pair);
  void UnrouteFlow(uint64_t flow_id, int pair);

  Router& forward_router(int level) { return *fwd_routers_[static_cast<size_t>(level)]; }
  Router& reverse_router(int level) { return *rev_routers_[static_cast<size_t>(level)]; }
  // Forward-direction bottleneck of hop `h` (0-based).
  Qdisc& bottleneck_qdisc(int hop);
  Pipe& bottleneck_pipe(int hop) { return *fwd_bottlenecks_[static_cast<size_t>(hop)]; }
  // Non-null when `instrument_bottleneck` was set (hop 0, forward).
  InstrumentedQdisc* bottleneck_probe() { return bottleneck_probe_; }

  // Propagation-only round trip between the endpoints of `pair`.
  TimeDelta BaseRtt(int pair) const;

  // Sum of packets forwarded by every router (the topo micro-bench metric).
  uint64_t TotalForwardedPackets() const;
  // Sum of packets dropped for lack of a route anywhere in the topology.
  uint64_t TotalUnroutablePackets() const;

  // Binds every bottleneck qdisc to the run's spine. Hop h's forward qdisc
  // gets source id 2h and its reverse qdisc 2h+1, so multi-hop traces stay
  // distinguishable per direction. Access pipes are not bound: they are
  // deliberately over-provisioned and would only add noise records.
  void BindTelemetry(telemetry::TelemetrySpine* spine) {
    for (size_t h = 0; h < fwd_bottlenecks_.size(); ++h) {
      fwd_bottlenecks_[h]->BindTelemetry(spine, static_cast<uint16_t>(2 * h));
      rev_bottlenecks_[h]->BindTelemetry(spine, static_cast<uint16_t>(2 * h + 1));
    }
  }

  // Mirrors router forwarding counters and per-hop bottleneck pipe/qdisc
  // counters into `registry` (end-of-run publication, never the hot path).
  void PublishMetrics(telemetry::MetricRegistry* registry, const std::string& prefix) const {
    for (size_t level = 0; level < fwd_routers_.size(); ++level) {
      const std::string lv = std::to_string(level);
      fwd_routers_[level]->PublishMetrics(registry, prefix + "router.fwd." + lv + ".");
      rev_routers_[level]->PublishMetrics(registry, prefix + "router.rev." + lv + ".");
    }
    for (size_t h = 0; h < fwd_bottlenecks_.size(); ++h) {
      const std::string hop = std::to_string(h);
      fwd_bottlenecks_[h]->PublishMetrics(registry, prefix + "hop." + hop + ".fwd.");
      rev_bottlenecks_[h]->PublishMetrics(registry, prefix + "hop." + hop + ".rev.");
    }
  }

 private:
  struct HostPair {
    int sender_level = 0;
    int receiver_level = 1;
    std::unique_ptr<Demux> sender_rx;
    std::unique_ptr<Demux> receiver_rx;
    Pipe* sender_out = nullptr;    // host -> fwd_router[sender_level]
    Pipe* sender_in = nullptr;     // rev_router[sender_level] -> host
    Pipe* receiver_out = nullptr;  // host -> rev_router[receiver_level]
    Pipe* receiver_in = nullptr;   // fwd_router[receiver_level] -> host
    int fwd_exit_port = -1;  // port on fwd_router[receiver_level] to receiver_in
    int rev_exit_port = -1;  // port on rev_router[sender_level] to sender_in
  };

  Pipe* MakeAccessPipe(PacketSink* out);

  EventLoop* loop_;
  Rng* rng_;
  TopologySpec spec_;
  DataRate access_rate_;

  std::vector<std::unique_ptr<Router>> fwd_routers_;  // levels 0..hops
  std::vector<std::unique_ptr<Router>> rev_routers_;
  std::vector<Pipe*> fwd_bottlenecks_;  // hop h: fwd_router[h] -> fwd_router[h+1]
  std::vector<Pipe*> rev_bottlenecks_;  // hop h: rev_router[h+1] -> rev_router[h]
  std::vector<std::unique_ptr<Pipe>> pipes_;  // owns every pipe
  std::vector<HostPair> pairs_;
  InstrumentedQdisc* bottleneck_probe_ = nullptr;

  uint64_t next_flow_id_ = 1;
  std::vector<uint64_t> free_flow_ids_;
};

}  // namespace element

#endif  // ELEMENT_SRC_TOPO_TOPOLOGY_H_
