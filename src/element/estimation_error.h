// Accuracy scoring for ELEMENT's estimates against the kernel-profiler ground
// truth (Section 4.3): since ELEMENT only samples periodically, each estimate
// is compared with the ground-truth delay linearly interpolated at the
// estimate's timestamp; errors feed the CDFs of Figures 6c, 7, and 8.

#ifndef ELEMENT_SRC_ELEMENT_ESTIMATION_ERROR_H_
#define ELEMENT_SRC_ELEMENT_ESTIMATION_ERROR_H_

#include "src/common/stats.h"

namespace element {

struct AccuracyResult {
  SampleSet errors;               // |estimate - ground truth| per sample, seconds
  double mean_abs_error_s = 0.0;
  double median_abs_error_s = 0.0;
  double mean_ground_truth_s = 0.0;
  // 1 - median|err| / max(mean ground truth, 25 ms), clamped to [0, 1] — the
  // scalar summary for the paper's ">90% accuracy" claim. The median keeps
  // the summary robust to the algorithm's rare-but-large stale-record spikes
  // (an inherent artifact of the segs_in*mss overestimate across idle
  // periods); the full error distribution is in `errors` and is what the
  // paper's CDF figures (6c, 7, 8) report.
  double accuracy = 0.0;
  size_t compared_samples = 0;
};

AccuracyResult ScoreEstimates(const TimeSeries& estimates, const TimeSeries& ground_truth);

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_ESTIMATION_ERROR_H_
