// Transparent legacy-application integration — the simulation analogue of
// preloading ELEMENT's shared library with LD_PRELOAD (Section 4.5). A legacy
// app that writes through a ByteSink is handed an InterposedSink instead of a
// RawTcpSink; its code is unchanged, but every write now flows through
// ELEMENT's measurement and default latency-minimization algorithm.

#ifndef ELEMENT_SRC_ELEMENT_INTERPOSER_H_
#define ELEMENT_SRC_ELEMENT_INTERPOSER_H_

#include <memory>

#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"

namespace element {

class InterposedSink : public ByteSink {
 public:
  InterposedSink(EventLoop* loop, TcpSocket* socket, bool is_wireless = false,
                 const MinimizerParams& params = MinimizerParams());

  size_t Write(size_t n) override;
  void SetWritableCallback(std::function<void()> cb) override;
  TcpSocket* socket() override { return em_->socket(); }

  ElementSocket& element() { return *em_; }

 private:
  std::unique_ptr<ElementSocket> em_;
};

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_INTERPOSER_H_
