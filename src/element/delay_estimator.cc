#include "src/element/delay_estimator.h"

#include <cmath>

#include "src/common/check.h"

namespace element {

bool DelayDecompositionConserves(double sender_s, double network_s, double receiver_s,
                                 double end_to_end_s, double rel_tolerance,
                                 double abs_slack_s) {
  double reconstructed = sender_s + network_s + receiver_s;
  double budget = rel_tolerance * end_to_end_s + abs_slack_s;
  return std::abs(reconstructed - end_to_end_s) <= budget;
}

void AuditDelayDecomposition(double sender_s, double network_s, double receiver_s,
                             double end_to_end_s, double rel_tolerance,
                             double abs_slack_s) {
  ELEMENT_AUDIT(DelayDecompositionConserves(sender_s, network_s, receiver_s, end_to_end_s,
                                            rel_tolerance, abs_slack_s))
      << "delay decomposition does not conserve: sender=" << sender_s
      << "s network=" << network_s << "s receiver=" << receiver_s
      << "s sum=" << sender_s + network_s + receiver_s
      << "s end_to_end=" << end_to_end_s << "s";
}

uint64_t SenderDelayEstimator::EstimateSentBytes(const TcpInfoData& info) {
  return info.tcpi_bytes_acked +
         static_cast<uint64_t>(info.tcpi_unacked) * info.tcpi_snd_mss;
}

void SenderDelayEstimator::OnAppSend(uint64_t cumulative_bytes, SimTime t) {
  ELEMENT_AUDIT(records_.empty() || cumulative_bytes >= records_.front().bytes)
      << "app write positions regressed: " << cumulative_bytes << " after "
      << records_.front().bytes;
  records_.push_front({cumulative_bytes, t});
}

uint64_t SenderDelayEstimator::EstimateSentBytesForMatching(const TcpInfoData& info) const {
  if (formula_ == SentBytesFormula::kNotsentBased && !records_.empty()) {
    uint64_t latest_write = records_.front().bytes;
    return latest_write > info.tcpi_notsent_bytes ? latest_write - info.tcpi_notsent_bytes : 0;
  }
  return EstimateSentBytes(info);
}

void SenderDelayEstimator::OnTcpInfoSample(const TcpInfoData& info, SimTime t) {
  uint64_t best = EstimateSentBytesForMatching(info);
  // Algorithm 1: walk from the back (oldest); every record whose cumulative
  // byte count does not exceed the estimated sent bytes has fully left the
  // TCP layer — its buffer delay is T - sendTime.
  while (!records_.empty() && records_.back().bytes <= best) {
    TimeDelta d = t - records_.back().send_time;
    ELEMENT_AUDIT(d >= TimeDelta::Zero())
        << "negative sender delay: sample at " << t.nanos() << "ns before write at "
        << records_.back().send_time.nanos() << "ns";
    records_.pop_back();
    latest_delay_ = d;
    has_estimate_ = true;
    double ds = d.ToSeconds();
    if (bounded_) {
      sketch_.Add(ds);
    } else {
      samples_.Add(ds);
    }
    series_.Add(t, ds);
    if (telemetry_.recording()) {
      telemetry_.EmitAlways(telemetry::TraceRecord::Delay(telemetry_.flow_id(), t, ds, 0.0,
                                                          0.0, telemetry::kFlagEstimate));
    }
    if (sink_) {
      DelayReport report;
      report.t = t;
      report.delay = d;
      report.snd_cwnd = info.tcpi_snd_cwnd;
      report.snd_ssthresh = info.tcpi_snd_ssthresh;
      report.rtt_us = info.tcpi_rtt_us;
      sink_(report);
    }
  }
}

uint64_t ReceiverDelayEstimator::EstimateReceivedBytes(const TcpInfoData& info) {
  return info.tcpi_segs_in * static_cast<uint64_t>(info.tcpi_rcv_mss);
}

void ReceiverDelayEstimator::OnTcpInfoSample(const TcpInfoData& info, SimTime t) {
  uint64_t best = EstimateReceivedBytes(info);
  if (best > prev_estimate_) {
    prev_estimate_ = best;
    records_.push_front({best, t});
  }
}

void ReceiverDelayEstimator::OnAppReceive(uint64_t cumulative_bytes, SimTime t,
                                          const TcpInfoData& info) {
  // Algorithm 2: discard records fully consumed by the application; the first
  // record still ahead of the read position timestamps the bytes being read.
  while (!records_.empty()) {
    if (records_.back().bytes <= cumulative_bytes) {
      records_.pop_back();
      continue;
    }
    TimeDelta d = t - records_.back().recv_time;
    ELEMENT_AUDIT(d >= TimeDelta::Zero())
        << "negative receiver delay: read at " << t.nanos() << "ns before TCP receive at "
        << records_.back().recv_time.nanos() << "ns";
    latest_delay_ = d;
    has_estimate_ = true;
    double ds = d.ToSeconds();
    if (bounded_) {
      sketch_.Add(ds);
    } else {
      samples_.Add(ds);
    }
    series_.Add(t, ds);
    if (telemetry_.recording()) {
      telemetry_.EmitAlways(telemetry::TraceRecord::Delay(telemetry_.flow_id(), t, 0.0, 0.0,
                                                          ds, telemetry::kFlagEstimate));
    }
    if (sink_) {
      DelayReport report;
      report.t = t;
      report.delay = d;
      report.snd_cwnd = info.tcpi_snd_cwnd;
      report.snd_ssthresh = info.tcpi_snd_ssthresh;
      report.rtt_us = info.tcpi_rtt_us;
      sink_(report);
    }
    break;
  }
}

}  // namespace element
