// ELEMENT's public socket API (Figure 12 of the paper): wrapper calls that
// behave like send/write/read but additionally return the measured buffer
// delay, TCP-layer throughput, RTT, and congestion window, and optionally run
// the default latency-minimization algorithm.

#ifndef ELEMENT_SRC_ELEMENT_ELEMENT_SOCKET_H_
#define ELEMENT_SRC_ELEMENT_ELEMENT_SOCKET_H_

#include <functional>
#include <memory>

#include "src/element/delay_estimator.h"
#include "src/element/latency_minimizer.h"
#include "src/element/rate_controller.h"
#include "src/element/tcp_info_tracker.h"
#include "src/evloop/event_loop.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {

// Return struct of the em_* wrappers (the paper's `retinfo`).
struct RetInfo {
  long size = 0;               // bytes written/read (like send/recv)
  double buf_delay_s = 0.0;    // latest estimated socket-buffer delay
  double throughput_mbps = 0.0;  // TCP-layer throughput
  double rtt_s = 0.0;
  int cwnd = 0;  // segments
};

class ElementSocket {
 public:
  struct Options {
    bool is_wireless = false;                 // init_em's is_wireless flag
    bool enable_latency_minimization = true;  // init_em's algorithm selector
    TimeDelta tracker_period = TcpInfoTracker::kDefaultPeriod;
    MinimizerParams minimizer;
    // Custom rate-control algorithm (§7): when set (and minimization is
    // enabled), replaces the default Algorithm 3 controller.
    std::function<std::unique_ptr<RateController>(EventLoop*, TcpSocket*)> controller_factory;
  };

  // init_em: attaches ELEMENT to an existing TCP socket.
  ElementSocket(EventLoop* loop, TcpSocket* socket, const Options& options);
  ~ElementSocket();  // fin_em

  ElementSocket(const ElementSocket&) = delete;
  ElementSocket& operator=(const ElementSocket&) = delete;

  // em_send / em_write: paced, measured write. `size` in the result is 0 when
  // the write was gated by the minimization algorithm or the buffer was full.
  RetInfo Send(size_t n);
  // em_read: measured read.
  RetInfo Read(size_t max);

  // Event-driven replacements for the paper's blocking sleeps: when Send
  // returns 0, this callback fires once the pacing gate or buffer reopens.
  void SetReadyToSendCallback(std::function<void()> cb);
  void SetReadableCallback(std::function<void()> cb) {
    socket_->SetReadableCallback(std::move(cb));
  }

  bool MaySendNow() const;

  TcpSocket* socket() { return socket_; }
  TcpInfoTracker& tracker() { return *tracker_; }
  SenderDelayEstimator& sender_estimator() { return sender_est_; }
  ReceiverDelayEstimator& receiver_estimator() { return receiver_est_; }
  PathDelayEstimator& path_estimator() { return path_est_; }
  // The active rate controller, or null when minimization is disabled.
  RateController* controller() { return controller_.get(); }
  // The default controller if it is Algorithm 3 (null with a custom one).
  LatencyMinimizer* minimizer() { return dynamic_cast<LatencyMinimizer*>(controller_.get()); }
  // QoS hook (§7): route a latency requirement to the default controller.
  void SetLatencyBudget(TimeDelta budget);

  // Convenience: latest delay decomposition visible to the application.
  double send_buffer_delay_s() const { return sender_est_.latest_delay().ToSeconds(); }
  double recv_buffer_delay_s() const { return receiver_est_.latest_delay().ToSeconds(); }
  double rtt_s() const { return socket_->smoothed_rtt().ToSeconds(); }

 private:
  RetInfo MakeRetInfo(long size, double buf_delay_s) const;
  void ArmGateRetry();
  void OnGateRetry();

  EventLoop* loop_;
  TcpSocket* socket_;
  Options options_;

  std::unique_ptr<TcpInfoTracker> tracker_;
  SenderDelayEstimator sender_est_;
  ReceiverDelayEstimator receiver_est_;
  PathDelayEstimator path_est_;
  std::unique_ptr<RateController> controller_;

  std::function<void()> ready_cb_;
  Timer retry_timer_;
};

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_ELEMENT_SOCKET_H_
