// ELEMENT's default latency-minimization algorithm (Algorithm 3): an
// application-layer analogue of FAST TCP. It adapts S_target — the amount of
// data allowed to sit unsent in the TCP send buffer — by the ratio of the
// measured average buffer delay to a threshold:
//     S_target <- min( beta * cwnd * mss, (D_thr / D_avg)^delta * S_target )
// and gates application writes with an escalating sleep ladder (cnt^lambda ms,
// at most delta_max sleeps per send).

#ifndef ELEMENT_SRC_ELEMENT_LATENCY_MINIMIZER_H_
#define ELEMENT_SRC_ELEMENT_LATENCY_MINIMIZER_H_

#include "src/element/delay_estimator.h"
#include "src/element/rate_controller.h"
#include "src/evloop/event_loop.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {

struct MinimizerParams {
  TimeDelta delay_threshold = TimeDelta::FromMillis(25);  // D_thr
  double delta = 0.25;        // adjustment exponent
  double beta = 2.1;          // cwnd cap multiplier
  double gamma = 1.1;         // wireless sndbuf multiplier
  int max_sleeps = 8;         // delta in the paper's sleep loop
  double lambda = 1.5;        // sleep time = cnt^lambda milliseconds
  double ewma_weight = 1.0 / 8.0;  // D_avg <- 7/8 D_avg + 1/8 D_measured
};

class LatencyMinimizer : public RateController {
 public:
  LatencyMinimizer(EventLoop* loop, TcpSocket* socket, const MinimizerParams& params,
                   bool is_wireless);

  void Start() override { check_timer_.Start(); }
  void Stop() override { check_timer_.Stop(); }

  // Feed each new send-buffer delay measurement (Algorithm 1's output).
  void OnDelayMeasurement(TimeDelta measured) override;

  // True when the application may push more data: the estimated amount
  // buffered-but-unsent in the TCP layer is within S_target, or the sleep
  // budget for this send is exhausted.
  bool MaySendNow() const override;
  // Next retry delay when gated (advances the sleep ladder).
  TimeDelta NextRetryDelay() override;
  // Reset the ladder after an allowed send.
  void OnSendAllowed() override { sleep_count_ = 0; }
  std::string name() const override { return "algorithm3"; }

  uint64_t starget_bytes() const { return static_cast<uint64_t>(starget_); }
  TimeDelta average_delay() const { return TimeDelta::FromSeconds(avg_delay_s_); }
  const MinimizerParams& params() const { return params_; }
  // QoS hook (§7): applications can state their latency requirement, which
  // becomes Algorithm 3's D_thr.
  void set_delay_threshold(TimeDelta d_thr) { params_.delay_threshold = d_thr; }

 private:
  void CheckAndAdjust();

  EventLoop* loop_;
  TcpSocket* socket_;
  MinimizerParams params_;
  bool is_wireless_;

  PeriodicTimer check_timer_;
  SimTime last_adjust_;
  double avg_delay_s_ = 0.0;
  bool have_delay_ = false;
  double starget_ = 0.0;  // bytes; 0 = uninitialized
  int sleep_count_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_LATENCY_MINIMIZER_H_
