// Network-path delay decomposition from tcp_info alone: the third column of
// the paper's Table 1. ELEMENT reports the network delay as half the smoothed
// RTT; keeping a windowed minimum additionally splits it into a propagation
// estimate and the current queueing component.

#ifndef ELEMENT_SRC_ELEMENT_PATH_DELAY_ESTIMATOR_H_
#define ELEMENT_SRC_ELEMENT_PATH_DELAY_ESTIMATOR_H_

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/tcpsim/tcp_info.h"

namespace element {

class PathDelayEstimator {
 public:
  PathDelayEstimator() = default;

  void OnTcpInfoSample(const TcpInfoData& info, SimTime t);

  bool has_estimate() const { return has_estimate_; }
  TimeDelta smoothed_rtt() const { return srtt_; }
  // Propagation floor: the smallest RTT ever reported by the kernel.
  TimeDelta base_rtt() const { return base_rtt_; }
  // Standing queueing along the path (both directions).
  TimeDelta queueing() const {
    return srtt_ > base_rtt_ ? srtt_ - base_rtt_ : TimeDelta::Zero();
  }
  // The paper's "average network delay" estimate: half the smoothed RTT.
  TimeDelta one_way_network_delay() const { return srtt_ / 2; }

  const SampleSet& network_delay_samples() const { return samples_; }
  const TimeSeries& queueing_series() const { return queueing_series_; }

 private:
  bool has_estimate_ = false;
  TimeDelta srtt_ = TimeDelta::Zero();
  TimeDelta base_rtt_ = TimeDelta::Infinite();
  SampleSet samples_;
  TimeSeries queueing_series_;
};

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_PATH_DELAY_ESTIMATOR_H_
