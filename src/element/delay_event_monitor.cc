#include "src/element/delay_event_monitor.h"

#include <cmath>

namespace element {

void DelayEventMonitor::OnReport(const DelayReport& report) {
  double d = report.delay.ToSeconds();
  if (!have_ewma_) {
    ewma_s_ = d;
    have_ewma_ = true;
  }
  double jitter_s = std::abs(d - ewma_s_);
  ewma_s_ = (1.0 - thresholds_.ewma_weight) * ewma_s_ + thresholds_.ewma_weight * d;

  auto fire = [&](Event::Kind kind) {
    if (cb_) {
      Event ev;
      ev.kind = kind;
      ev.at = report.t;
      ev.delay = report.delay;
      ev.jitter = TimeDelta::FromSeconds(jitter_s);
      cb_(ev);
    }
  };

  // Delay threshold with hysteresis.
  if (!thresholds_.delay_threshold.IsInfinite()) {
    double thr = thresholds_.delay_threshold.ToSeconds();
    if (delay_armed_ && d > thr) {
      delay_armed_ = false;
      ++delay_events_;
      fire(Event::Kind::kDelayExceeded);
    } else if (!delay_armed_ && d < thr * thresholds_.rearm_fraction) {
      delay_armed_ = true;
      ++delay_recoveries_;
      fire(Event::Kind::kDelayRecovered);
    }
  }

  // Jitter threshold with hysteresis.
  if (!thresholds_.jitter_threshold.IsInfinite()) {
    double thr = thresholds_.jitter_threshold.ToSeconds();
    if (jitter_armed_ && jitter_s > thr) {
      jitter_armed_ = false;
      ++jitter_events_;
      fire(Event::Kind::kJitterExceeded);
    } else if (!jitter_armed_ && jitter_s < thr * thresholds_.rearm_fraction) {
      jitter_armed_ = true;
    }
  }
}

}  // namespace element
