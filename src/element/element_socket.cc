#include "src/element/element_socket.h"

#include <utility>

namespace element {

ElementSocket::ElementSocket(EventLoop* loop, TcpSocket* socket, const Options& options)
    : loop_(loop),
      socket_(socket),
      options_(options),
      retry_timer_(loop, [this] { OnGateRetry(); }) {
  tracker_ = std::make_unique<TcpInfoTracker>(loop, socket, options.tracker_period);
  tracker_->set_sender_estimator(&sender_est_);
  tracker_->set_receiver_estimator(&receiver_est_);
  tracker_->set_path_estimator(&path_est_);
  tracker_->Start();

  // Estimates ride the same spine as the socket's stack records, so a
  // kDelaySample (flagged kFlagEstimate) can be lined up against the
  // ground-truth records of the same flow in one trace.
  sender_est_.BindTelemetry(socket->telemetry().spine(), socket->flow_id());
  receiver_est_.BindTelemetry(socket->telemetry().spine(), socket->flow_id());

  if (options.enable_latency_minimization) {
    if (options.controller_factory) {
      controller_ = options.controller_factory(loop, socket);
    } else {
      controller_ = std::make_unique<LatencyMinimizer>(loop, socket, options.minimizer,
                                                       options.is_wireless);
    }
    sender_est_.set_report_sink(
        [this](const DelayReport& report) { controller_->OnDelayMeasurement(report.delay); });
    controller_->Start();
  }

  socket_->SetWritableCallback([this] {
    if (!ready_cb_) {
      return;
    }
    if (MaySendNow()) {
      ready_cb_();
    } else if (controller_) {
      // Buffer space opened while the pacing gate is closed: keep a retry
      // armed, otherwise no event would ever wake the application again.
      ArmGateRetry();
    }
  });
}

ElementSocket::~ElementSocket() { socket_->SetWritableCallback(nullptr); }

RetInfo ElementSocket::MakeRetInfo(long size, double buf_delay_s) const {
  RetInfo info;
  info.size = size;
  info.buf_delay_s = buf_delay_s;
  info.throughput_mbps = tracker_->throughput().ToMbps();
  info.rtt_s = socket_->smoothed_rtt().ToSeconds();
  info.cwnd = static_cast<int>(tracker_->latest_info().tcpi_snd_cwnd);
  return info;
}

bool ElementSocket::MaySendNow() const {
  if (controller_ && !controller_->MaySendNow()) {
    return false;
  }
  return socket_->SndBufFree() > 0;
}

void ElementSocket::SetLatencyBudget(TimeDelta budget) {
  if (auto* algo3 = minimizer()) {
    algo3->set_delay_threshold(budget);
  }
}

void ElementSocket::SetReadyToSendCallback(std::function<void()> cb) {
  ready_cb_ = std::move(cb);
}

void ElementSocket::ArmGateRetry() {
  if (retry_timer_.pending() || !controller_) {
    return;
  }
  retry_timer_.RestartAfter(controller_->NextRetryDelay());
}

void ElementSocket::OnGateRetry() {
  if (!ready_cb_) {
    return;
  }
  if (MaySendNow() || controller_->MaySendNow()) {
    ready_cb_();
  } else {
    ArmGateRetry();
  }
}

RetInfo ElementSocket::Send(size_t n) {
  if (controller_ && !controller_->MaySendNow()) {
    ArmGateRetry();
    return MakeRetInfo(0, send_buffer_delay_s());
  }
  if (controller_) {
    controller_->OnSendAllowed();
    // Application-level *packet* pacing (§4.4): each admitted write is one
    // segment's worth, so the S_target gate is re-evaluated at packet
    // granularity. A large legacy write would otherwise blow through the
    // gate in one call and defeat the pacing entirely.
    n = std::min<size_t>(n, socket_->mss());
  }
  size_t accepted = socket_->Write(n);
  if (accepted > 0) {
    sender_est_.OnAppSend(socket_->app_bytes_written(), loop_->now());
    if (controller_) {
      controller_->OnBytesAdmitted(accepted, loop_->now());
    }
  }
  // After the write, Algorithm 3 sleeps while the buffered-but-unsent amount
  // exceeds S_target; in event-driven form that is the retry timer.
  if (controller_ && !controller_->MaySendNow()) {
    ArmGateRetry();
  }
  return MakeRetInfo(static_cast<long>(accepted), send_buffer_delay_s());
}

RetInfo ElementSocket::Read(size_t max) {
  size_t n = socket_->Read(max);
  if (n > 0) {
    receiver_est_.OnAppReceive(socket_->app_bytes_read(), loop_->now(),
                               tracker_->latest_info());
  }
  return MakeRetInfo(static_cast<long>(n), recv_buffer_delay_s());
}

}  // namespace element
