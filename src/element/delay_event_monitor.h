// Event-driven delay/jitter notification — the select()-like interface the
// paper's Discussion (§7, "ELEMENT applications") proposes for
// jitter-sensitive applications: instead of polling RetInfo, the application
// registers thresholds and reacts the moment a delay or jitter excursion
// happens.

#ifndef ELEMENT_SRC_ELEMENT_DELAY_EVENT_MONITOR_H_
#define ELEMENT_SRC_ELEMENT_DELAY_EVENT_MONITOR_H_

#include <functional>
#include <string>

#include "src/common/time.h"
#include "src/element/delay_estimator.h"
#include "src/telemetry/metric_registry.h"

namespace element {

class DelayEventMonitor {
 public:
  struct Thresholds {
    // Fire when the estimated buffer delay exceeds this value.
    TimeDelta delay_threshold = TimeDelta::Infinite();
    // Fire when |delay - EWMA(delay)| exceeds this value (jitter excursion).
    TimeDelta jitter_threshold = TimeDelta::Infinite();
    // Re-arm hysteresis: no repeated events until the value falls below
    // `rearm_fraction` x threshold.
    double rearm_fraction = 0.8;
    double ewma_weight = 1.0 / 8.0;
  };

  struct Event {
    enum class Kind { kDelayExceeded, kJitterExceeded, kDelayRecovered };
    Kind kind;
    SimTime at;
    TimeDelta delay;
    TimeDelta jitter;
  };
  using Callback = std::function<void(const Event&)>;

  DelayEventMonitor(const Thresholds& thresholds, Callback cb)
      : thresholds_(thresholds), cb_(std::move(cb)) {}

  // Attach to an estimator's report stream. Only one monitor per estimator
  // (it takes over the report sink); chain manually if more are needed.
  void Attach(SenderDelayEstimator* est) {
    est->set_report_sink([this](const DelayReport& r) { OnReport(r); });
  }
  void Attach(ReceiverDelayEstimator* est) {
    est->set_report_sink([this](const DelayReport& r) { OnReport(r); });
  }

  // Direct feed, for composing with an existing sink.
  void OnReport(const DelayReport& report);

  uint64_t delay_events() const { return delay_events_; }
  uint64_t jitter_events() const { return jitter_events_; }
  uint64_t delay_recoveries() const { return delay_recoveries_; }
  TimeDelta ewma_delay() const { return TimeDelta::FromSeconds(ewma_s_); }

  // Mirrors the event counters into `registry` under `prefix` (end-of-run
  // publication, like the qdisc/router counters).
  void PublishMetrics(telemetry::MetricRegistry* registry, const std::string& prefix) const {
    *registry->Counter(prefix + "delay_events") += delay_events_;
    *registry->Counter(prefix + "jitter_events") += jitter_events_;
    *registry->Counter(prefix + "delay_recoveries") += delay_recoveries_;
  }

 private:
  Thresholds thresholds_;
  Callback cb_;
  double ewma_s_ = 0.0;
  bool have_ewma_ = false;
  bool delay_armed_ = true;
  bool jitter_armed_ = true;
  uint64_t delay_events_ = 0;
  uint64_t jitter_events_ = 0;
  uint64_t delay_recoveries_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_DELAY_EVENT_MONITOR_H_
