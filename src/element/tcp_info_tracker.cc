#include "src/element/tcp_info_tracker.h"

namespace element {

TcpInfoTracker::TcpInfoTracker(EventLoop* loop, TcpSocket* socket, TimeDelta period)
    : loop_(loop), socket_(socket), timer_(loop, period, [this] { PollNow(); }) {}

DataRate TcpInfoTracker::throughput() const {
  if (acked_history_.size() < 2) {
    return DataRate::Zero();
  }
  const AckedPoint& oldest = acked_history_.front();
  const AckedPoint& newest = acked_history_.back();
  TimeDelta span = newest.t - oldest.t;
  if (span <= TimeDelta::Zero()) {
    return DataRate::Zero();
  }
  return RateOver(static_cast<int64_t>(newest.bytes_acked - oldest.bytes_acked), span);
}

void TcpInfoTracker::PollNow() {
  latest_ = use_shared_page_ ? socket_->SharedInfoPage() : socket_->GetTcpInfo();
  ++samples_;
  SimTime now = loop_->now();

  acked_history_.push_back({now, latest_.tcpi_bytes_acked});
  while (acked_history_.size() > 2 && now - acked_history_.front().t > kThroughputWindow) {
    acked_history_.pop_front();
  }

  if (sender_est_ != nullptr) {
    sender_est_->OnTcpInfoSample(latest_, now);
  }
  if (receiver_est_ != nullptr) {
    receiver_est_->OnTcpInfoSample(latest_, now);
  }
  if (path_est_ != nullptr) {
    path_est_->OnTcpInfoSample(latest_, now);
  }
}

}  // namespace element
