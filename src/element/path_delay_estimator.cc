#include "src/element/path_delay_estimator.h"

namespace element {

void PathDelayEstimator::OnTcpInfoSample(const TcpInfoData& info, SimTime t) {
  if (info.tcpi_rtt_us == 0) {
    return;
  }
  srtt_ = TimeDelta::FromMicros(info.tcpi_rtt_us);
  TimeDelta floor_candidate = info.tcpi_min_rtt_us > 0
                                  ? TimeDelta::FromMicros(info.tcpi_min_rtt_us)
                                  : srtt_;
  if (floor_candidate < base_rtt_) {
    base_rtt_ = floor_candidate;
  }
  has_estimate_ = true;
  samples_.Add(one_way_network_delay().ToSeconds());
  queueing_series_.Add(t, queueing().ToSeconds());
}

}  // namespace element
