#include "src/element/estimation_error.h"

#include <algorithm>
#include <cmath>

namespace element {

AccuracyResult ScoreEstimates(const TimeSeries& estimates, const TimeSeries& ground_truth) {
  AccuracyResult result;
  double gt_sum = 0.0;
  for (const TimeSeries::Point& p : estimates.points()) {
    double gt = 0.0;
    if (!ground_truth.InterpolateAt(p.t, &gt)) {
      continue;
    }
    result.errors.Add(std::abs(p.v - gt));
    gt_sum += gt;
    ++result.compared_samples;
  }
  if (result.compared_samples == 0) {
    return result;
  }
  result.mean_abs_error_s = result.errors.mean();
  result.median_abs_error_s = result.errors.Median();
  result.mean_ground_truth_s = gt_sum / static_cast<double>(result.compared_samples);
  // Relative accuracy with an absolute floor: ELEMENT samples every ~10 ms,
  // so when the true delay is itself tiny (e.g. an idle receiver), errors are
  // judged against the 25 ms latency scale the paper's algorithms target
  // rather than against a near-zero mean.
  constexpr double kDenomFloorS = 0.025;
  double denom = std::max(result.mean_ground_truth_s, kDenomFloorS);
  result.accuracy = std::clamp(1.0 - result.median_abs_error_s / denom, 0.0, 1.0);
  return result;
}

}  // namespace element
