// The tcp_info tracking "thread": polls getsockopt(TCP_INFO) every P (10 ms
// by default, the paper's accuracy/overhead compromise) and feeds the delay
// estimators. Also derives TCP-layer throughput from bytes-acked deltas.

#ifndef ELEMENT_SRC_ELEMENT_TCP_INFO_TRACKER_H_
#define ELEMENT_SRC_ELEMENT_TCP_INFO_TRACKER_H_

#include <deque>

#include "src/common/data_rate.h"
#include "src/evloop/event_loop.h"
#include "src/element/delay_estimator.h"
#include "src/element/path_delay_estimator.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {

class TcpInfoTracker {
 public:
  static constexpr TimeDelta kDefaultPeriod = TimeDelta::FromMillis(10);

  TcpInfoTracker(EventLoop* loop, TcpSocket* socket, TimeDelta period = kDefaultPeriod);

  // §7 optimization: poll through the socket's versioned shared info page
  // instead of a full getsockopt-style snapshot per poll.
  void set_use_shared_page(bool use) { use_shared_page_ = use; }
  bool use_shared_page() const { return use_shared_page_; }

  void set_sender_estimator(SenderDelayEstimator* est) { sender_est_ = est; }
  void set_receiver_estimator(ReceiverDelayEstimator* est) { receiver_est_ = est; }
  void set_path_estimator(PathDelayEstimator* est) { path_est_ = est; }

  void Start() { timer_.Start(); }
  void Stop() { timer_.Stop(); }
  TimeDelta period() const { return timer_.period(); }

  // Latest polled snapshot (also reachable via socket->GetTcpInfo(), but this
  // is what user code would have, sampled at the tracker cadence).
  const TcpInfoData& latest_info() const { return latest_; }
  // Throughput at the TCP layer: ACKed bytes over a trailing window (ACK
  // arrivals are bursty at the poll granularity, so a window — rather than a
  // per-poll EWMA — gives an unaliased rate).
  DataRate throughput() const;
  uint64_t samples_taken() const { return samples_; }

  // Forces an immediate poll (used by em_send/em_read wrappers so their
  // returned info is fresh).
  void PollNow();

 private:
  EventLoop* loop_;
  TcpSocket* socket_;
  PeriodicTimer timer_;
  SenderDelayEstimator* sender_est_ = nullptr;
  ReceiverDelayEstimator* receiver_est_ = nullptr;
  PathDelayEstimator* path_est_ = nullptr;

  bool use_shared_page_ = false;
  TcpInfoData latest_;
  uint64_t samples_ = 0;

  struct AckedPoint {
    SimTime t;
    uint64_t bytes_acked;
  };
  static constexpr TimeDelta kThroughputWindow = TimeDelta::FromMillis(1000);
  std::deque<AckedPoint> acked_history_;
};

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_TCP_INFO_TRACKER_H_
