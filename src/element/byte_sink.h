// Minimal stream-writer interface, standing in for "the BSD socket library"
// from a legacy application's point of view. Legacy apps (e.g. IperfApp)
// write through a ByteSink; swapping a RawTcpSink for an InterposedSink is
// the simulation analogue of LD_PRELOAD-ing the ELEMENT shared library.

#ifndef ELEMENT_SRC_ELEMENT_BYTE_SINK_H_
#define ELEMENT_SRC_ELEMENT_BYTE_SINK_H_

#include <functional>

#include "src/tcpsim/tcp_socket.h"

namespace element {

class ByteSink {
 public:
  virtual ~ByteSink() = default;

  // Non-blocking write of up to n bytes; returns bytes accepted (0 = would
  // block or is being paced).
  virtual size_t Write(size_t n) = 0;
  // Invoked when a previously short/blocked write may be retried.
  virtual void SetWritableCallback(std::function<void()> cb) = 0;
  virtual TcpSocket* socket() = 0;
};

// Direct pass-through to the TCP socket (the unmodified legacy path).
class RawTcpSink : public ByteSink {
 public:
  explicit RawTcpSink(TcpSocket* socket) : socket_(socket) {}

  size_t Write(size_t n) override { return socket_->Write(n); }
  void SetWritableCallback(std::function<void()> cb) override {
    socket_->SetWritableCallback(std::move(cb));
  }
  TcpSocket* socket() override { return socket_; }

 private:
  TcpSocket* socket_;
};

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_BYTE_SINK_H_
