#include "src/element/latency_minimizer.h"

#include <algorithm>
#include <cmath>

namespace element {

LatencyMinimizer::LatencyMinimizer(EventLoop* loop, TcpSocket* socket,
                                   const MinimizerParams& params, bool is_wireless)
    : loop_(loop),
      socket_(socket),
      params_(params),
      is_wireless_(is_wireless),
      check_timer_(loop, TimeDelta::FromMillis(5), [this] { CheckAndAdjust(); }),
      last_adjust_(loop->now()) {}

void LatencyMinimizer::OnDelayMeasurement(TimeDelta measured) {
  double m = measured.ToSeconds();
  if (!have_delay_) {
    avg_delay_s_ = m;
    have_delay_ = true;
  } else {
    avg_delay_s_ = (1.0 - params_.ewma_weight) * avg_delay_s_ + params_.ewma_weight * m;
  }
}

void LatencyMinimizer::CheckAndAdjust() {
  // Algorithm 3's checking thread runs its adjustment once per smoothed RTT.
  TimeDelta srtt = socket_->smoothed_rtt();
  if (srtt.IsZero()) {
    srtt = TimeDelta::FromMillis(100);
  }
  if (loop_->now() - last_adjust_ <= srtt) {
    return;
  }
  last_adjust_ = loop_->now();
  if (!have_delay_ || avg_delay_s_ <= 0.0) {
    return;
  }

  if (starget_ <= 0.0) {
    starget_ = static_cast<double>(socket_->sndbuf());
  }
  double ratio = std::pow(avg_delay_s_ / params_.delay_threshold.ToSeconds(), params_.delta);
  if (ratio > 0.0) {
    starget_ /= ratio;
  }
  TcpInfoData info = socket_->GetTcpInfo();
  double cap = params_.beta * static_cast<double>(info.tcpi_snd_cwnd) * info.tcpi_snd_mss;
  starget_ = std::min(starget_, cap);
  starget_ = std::max(starget_, static_cast<double>(info.tcpi_snd_mss));

  if (is_wireless_) {
    // On LTE/WiFi the paper additionally pins the kernel buffer near S_target.
    socket_->SetSndBuf(static_cast<size_t>(starget_ * params_.gamma));
  }
}

bool LatencyMinimizer::MaySendNow() const {
  if (sleep_count_ > params_.max_sleeps) {
    return true;  // sleep budget exhausted; let the write through
  }
  if (starget_ <= 0.0) {
    return true;  // not initialized yet; no gating
  }
  uint64_t seq = socket_->app_bytes_written();
  uint64_t best = SenderDelayEstimator::EstimateSentBytes(socket_->GetTcpInfo());
  uint64_t unsent = seq > best ? seq - best : 0;
  return unsent <= starget_bytes();
}

TimeDelta LatencyMinimizer::NextRetryDelay() {
  ++sleep_count_;
  double ms = std::pow(static_cast<double>(sleep_count_), params_.lambda);
  return TimeDelta::FromSeconds(ms / 1000.0);
}

}  // namespace element
