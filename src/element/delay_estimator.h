// ELEMENT's user-level delay estimators — Algorithms 1 and 2 of the paper.
//
// The sender estimator matches application write() records against the bytes
// estimated (from tcp_info) to have left the TCP layer:
//     B_est = tcpi_bytes_acked + tcpi_unacked * tcpi_snd_mss
// The receiver estimator matches TCP-layer receive estimates
//     B_est = tcpi_segs_in * tcpi_rcv_mss
// against application read() records. Both keep the paper's linked-list
// structure: records are pushed at the front and consumed from the back.

#ifndef ELEMENT_SRC_ELEMENT_DELAY_ESTIMATOR_H_
#define ELEMENT_SRC_ELEMENT_DELAY_ESTIMATOR_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/tcpsim/tcp_info.h"
#include "src/telemetry/quantile_sketch.h"
#include "src/telemetry/spine.h"

namespace element {

// One row of ELEMENT's diagnosis output (the Print statement in Algorithms
// 1 and 2): elapsed time, estimated buffer delay, and TCP state.
struct DelayReport {
  SimTime t;
  TimeDelta delay;
  uint32_t snd_cwnd = 0;
  uint32_t snd_ssthresh = 0;
  uint32_t rtt_us = 0;
};

// Delay-decomposition conservation, the audit behind the paper's Table 1 /
// Figure 2 claim: the sender, network, and receiver components must
// reconstruct the measured end-to-end delay. Means over one run satisfy
//   sender + network + receiver ≈ end_to_end
// within a relative tolerance (decomposition boundaries timestamp slightly
// different bytes) plus an absolute slack for near-zero delays.
bool DelayDecompositionConserves(double sender_s, double network_s, double receiver_s,
                                 double end_to_end_s, double rel_tolerance = 0.05,
                                 double abs_slack_s = 2e-3);

// ELEMENT_AUDIT wrapper (compiled out in Release): aborts with the four
// components when the decomposition does not conserve.
void AuditDelayDecomposition(double sender_s, double network_s, double receiver_s,
                             double end_to_end_s, double rel_tolerance = 0.05,
                             double abs_slack_s = 2e-3);

class SenderDelayEstimator {
 public:
  using ReportSink = std::function<void(const DelayReport&)>;

  // How to estimate the bytes that have left the TCP layer.
  enum class SentBytesFormula {
    // The paper's: bytes_acked + unacked * snd_mss (works on any kernel with
    // TCP_INFO; overestimates by sub-MSS tails).
    kAckedPlusUnacked,
    // Modern alternative: latest app write position - tcpi_notsent_bytes
    // (exact, but needs the tcpi_notsent_bytes field, Linux >= 4.6). Used by
    // the formula ablation bench.
    kNotsentBased,
  };

  SenderDelayEstimator() = default;
  explicit SenderDelayEstimator(SentBytesFormula formula) : formula_(formula) {}

  // Data-sending-thread half: the application wrote data; `cumulative_bytes`
  // is the total bytes written so far and `t` the time the write returned.
  void OnAppSend(uint64_t cumulative_bytes, SimTime t);

  // tcp_info-tracking-thread half: one periodic sample. Emits zero or more
  // DelayReports through the sink.
  void OnTcpInfoSample(const TcpInfoData& info, SimTime t);

  // The paper's estimate of bytes that have left the TCP layer.
  static uint64_t EstimateSentBytes(const TcpInfoData& info);
  // Estimate under the configured formula (instance method: the notsent
  // variant needs the latest recorded write position).
  uint64_t EstimateSentBytesForMatching(const TcpInfoData& info) const;

  void set_report_sink(ReportSink sink) { sink_ = std::move(sink); }

  // Latest estimated send-buffer delay (EWMA-free raw value).
  TimeDelta latest_delay() const { return latest_delay_; }
  bool has_estimate() const { return has_estimate_; }
  const SampleSet& delay_samples() const { return samples_; }
  const TimeSeries& delay_series() const { return series_; }
  size_t pending_records() const { return records_.size(); }

  // Bounded mode: estimates accumulate into a GK sketch instead of the exact
  // SampleSet (constant memory for long runs; read via delay_sketch()). The
  // golden-pinned figures keep the exact default.
  void set_bounded(bool bounded) { bounded_ = bounded; }
  const telemetry::QuantileSketch& delay_sketch() const { return sketch_; }

  // Binds to the run's spine: each estimate is emitted as a kDelaySample
  // record (kFlagEstimate, sender_s component) tagged with `flow_id`.
  void BindTelemetry(telemetry::TelemetrySpine* spine, uint64_t flow_id) {
    telemetry_.Bind(spine, flow_id);
  }
  telemetry::FlowTelemetry& telemetry() { return telemetry_; }

 private:
  struct SendRecord {
    uint64_t bytes;  // cumulative bytes written when the record was made
    SimTime send_time;
  };

  SentBytesFormula formula_ = SentBytesFormula::kAckedPlusUnacked;
  std::deque<SendRecord> records_;  // back = oldest
  ReportSink sink_;
  TimeDelta latest_delay_ = TimeDelta::Zero();
  bool has_estimate_ = false;
  SampleSet samples_;
  telemetry::QuantileSketch sketch_;
  bool bounded_ = false;
  TimeSeries series_;
  telemetry::FlowTelemetry telemetry_;
};

class ReceiverDelayEstimator {
 public:
  using ReportSink = std::function<void(const DelayReport&)>;

  ReceiverDelayEstimator() = default;

  // tcp_info-tracking-thread half: record TCP-layer receive progress.
  void OnTcpInfoSample(const TcpInfoData& info, SimTime t);

  // Data-receiving-thread half: the application read data; emits at most one
  // DelayReport per call (the record covering the read position).
  void OnAppReceive(uint64_t cumulative_bytes, SimTime t, const TcpInfoData& info);

  static uint64_t EstimateReceivedBytes(const TcpInfoData& info);

  void set_report_sink(ReportSink sink) { sink_ = std::move(sink); }
  TimeDelta latest_delay() const { return latest_delay_; }
  bool has_estimate() const { return has_estimate_; }
  const SampleSet& delay_samples() const { return samples_; }
  const TimeSeries& delay_series() const { return series_; }
  size_t pending_records() const { return records_.size(); }

  // Same bounded/telemetry contract as the sender estimator (receiver_s
  // component in the emitted kDelaySample records).
  void set_bounded(bool bounded) { bounded_ = bounded; }
  const telemetry::QuantileSketch& delay_sketch() const { return sketch_; }
  void BindTelemetry(telemetry::TelemetrySpine* spine, uint64_t flow_id) {
    telemetry_.Bind(spine, flow_id);
  }
  telemetry::FlowTelemetry& telemetry() { return telemetry_; }

 private:
  struct RecvRecord {
    uint64_t bytes;  // estimated cumulative bytes received at the TCP layer
    SimTime recv_time;
  };

  std::deque<RecvRecord> records_;  // back = oldest
  uint64_t prev_estimate_ = 0;
  ReportSink sink_;
  TimeDelta latest_delay_ = TimeDelta::Zero();
  bool has_estimate_ = false;
  SampleSet samples_;
  telemetry::QuantileSketch sketch_;
  bool bounded_ = false;
  TimeSeries series_;
  telemetry::FlowTelemetry telemetry_;
};

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_DELAY_ESTIMATOR_H_
