#include "src/element/interposer.h"

#include <utility>

namespace element {

InterposedSink::InterposedSink(EventLoop* loop, TcpSocket* socket, bool is_wireless,
                               const MinimizerParams& params) {
  ElementSocket::Options options;
  options.is_wireless = is_wireless;
  options.enable_latency_minimization = true;
  options.minimizer = params;
  em_ = std::make_unique<ElementSocket>(loop, socket, options);
}

size_t InterposedSink::Write(size_t n) {
  // em_send admits at most one segment per call (packet pacing); loop until
  // the gate closes or the buffer fills, so legacy apps that issue large
  // writes still see ordinary short-write semantics.
  size_t total = 0;
  while (total < n) {
    RetInfo info = em_->Send(n - total);
    if (info.size <= 0) {
      break;
    }
    total += static_cast<size_t>(info.size);
  }
  return total;
}

void InterposedSink::SetWritableCallback(std::function<void()> cb) {
  em_->SetReadyToSendCallback(std::move(cb));
}

}  // namespace element
