// Pluggable application-layer rate control. The paper ships Algorithm 3 as
// ELEMENT's *default* latency-minimization algorithm but explicitly lets
// applications "override it with their own rate control algorithm" (§4.4,
// §7). This interface is that extension point; LatencyMinimizer is the
// default implementation, FixedRateController a minimal alternative.

#ifndef ELEMENT_SRC_ELEMENT_RATE_CONTROLLER_H_
#define ELEMENT_SRC_ELEMENT_RATE_CONTROLLER_H_

#include <algorithm>
#include <string>

#include "src/common/data_rate.h"
#include "src/common/time.h"
#include "src/evloop/event_loop.h"

namespace element {

class RateController {
 public:
  virtual ~RateController() = default;

  virtual void Start() {}
  virtual void Stop() {}

  // Fed with each new socket-buffer delay measurement (Algorithm 1 output).
  virtual void OnDelayMeasurement(TimeDelta measured) = 0;
  // May the application push more data right now?
  virtual bool MaySendNow() const = 0;
  // When gated: how long until the next attempt (may escalate internally).
  virtual TimeDelta NextRetryDelay() = 0;
  // An admitted send happened; `bytes` were accepted by the socket.
  virtual void OnSendAllowed() {}
  virtual void OnBytesAdmitted(size_t bytes, SimTime now) {
    (void)bytes;
    (void)now;
  }
  virtual std::string name() const = 0;
};

// Token-bucket pacer: admits application data at a fixed rate regardless of
// measured delay. Useful as a baseline against Algorithm 3 and as the
// simplest example of a custom controller.
class FixedRateController : public RateController {
 public:
  FixedRateController(EventLoop* loop, DataRate rate, size_t burst_bytes = 16 * 1024)
      : loop_(loop), rate_(rate), burst_(static_cast<double>(burst_bytes)),
        tokens_(static_cast<double>(burst_bytes)), last_refill_(loop->now()) {}

  void OnDelayMeasurement(TimeDelta /*measured*/) override {}

  bool MaySendNow() const override {
    Refill();
    return tokens_ >= 1.0;
  }

  TimeDelta NextRetryDelay() override {
    Refill();
    if (tokens_ >= 1.0) {
      return TimeDelta::Zero();
    }
    double deficit_bytes = 1.0 - tokens_;
    return rate_.TransmitTime(static_cast<int64_t>(deficit_bytes) + 1);
  }

  void OnBytesAdmitted(size_t bytes, SimTime /*now*/) override {
    Refill();
    tokens_ -= static_cast<double>(bytes);
  }

  std::string name() const override { return "fixed_rate"; }
  DataRate rate() const { return rate_; }

 private:
  void Refill() const {
    SimTime now = loop_->now();
    TimeDelta elapsed = now - last_refill_;
    if (elapsed > TimeDelta::Zero()) {
      tokens_ = std::min(burst_, tokens_ + rate_.BytesPerSec() * elapsed.ToSeconds());
      last_refill_ = now;
    }
  }

  EventLoop* loop_;
  DataRate rate_;
  double burst_;
  mutable double tokens_;
  mutable SimTime last_refill_;
};

}  // namespace element

#endif  // ELEMENT_SRC_ELEMENT_RATE_CONTROLLER_H_
