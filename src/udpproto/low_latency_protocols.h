// Behavioural models of the UDP low-latency protocols in Figure 16.
//
// SproutLike — after Sprout (Winstein et al., NSDI'13): the receiver observes
// the arrival process in short ticks, forecasts how many bytes can safely be
// in the network over the next horizon at a conservative percentile, and
// feeds the sender an allowance. Very low delay, deliberately cautious
// bandwidth estimates.
//
// VerusLike — after Verus (Zaki et al., SIGCOMM'15): a delay-driven sending
// window; the sender learns the relationship between window and delay and
// backs off multiplicatively when the delay rises above target.
//
// Both are simplifications; DESIGN.md documents the substitution. What
// Figure 16 needs from them is the qualitative trade-off: minimal queueing
// delay but poor throughput fairness against loss-based TCP.

#ifndef ELEMENT_SRC_UDPPROTO_LOW_LATENCY_PROTOCOLS_H_
#define ELEMENT_SRC_UDPPROTO_LOW_LATENCY_PROTOCOLS_H_

#include <memory>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/udpproto/udp_socket.h"

namespace element {

class SproutLikeFlow {
 public:
  struct Params {
    TimeDelta tick = TimeDelta::FromMillis(20);
    TimeDelta forecast_horizon = TimeDelta::FromMillis(100);
    double caution_stddevs = 1.3;  // ~10th percentile of the rate forecast
    uint32_t datagram_bytes = 1400;
    // Delay-bounded probing: overshoot the forecast while queueing stays
    // below the target (Sprout's "fill the link, keep delay < 100 ms").
    double probe_gain = 1.25;
    double backoff_gain = 0.7;
    TimeDelta queueing_target = TimeDelta::FromMillis(60);
  };

  SproutLikeFlow(EventLoop* loop, DuplexPath* path, Params params);
  SproutLikeFlow(EventLoop* loop, DuplexPath* path) : SproutLikeFlow(loop, path, Params{}) {}

  void Start();
  void Stop();

  const SampleSet& one_way_delays() const { return delays_; }
  uint64_t delivered_bytes() const { return delivered_bytes_; }
  DataRate MeanThroughput(SimTime from, SimTime to) const;

 private:
  void SenderTick();
  void OnSenderReceive(const UdpDatagramPayload& payload, const Packet& pkt);
  void ReceiverTick();
  void OnReceiverReceive(const UdpDatagramPayload& payload, const Packet& pkt);

  EventLoop* loop_;
  Params params_;
  std::unique_ptr<UdpSocket> sender_;
  std::unique_ptr<UdpSocket> receiver_;
  PeriodicTimer send_timer_;
  PeriodicTimer recv_timer_;

  // Sender state.
  double allowance_bytes_ = 20000.0;  // initial probe allowance
  uint64_t next_seq_ = 0;

  // Receiver state.
  uint64_t tick_bytes_ = 0;
  double rate_mean_ = 0.0;   // bytes/s
  double rate_var_ = 0.0;
  bool have_rate_ = false;
  TimeDelta min_owd_ = TimeDelta::Infinite();
  TimeDelta tick_max_owd_ = TimeDelta::Zero();
  uint64_t delivered_bytes_ = 0;
  SampleSet delays_;
};

class VerusLikeFlow {
 public:
  struct Params {
    TimeDelta epoch = TimeDelta::FromMillis(5);
    TimeDelta delay_target_low = TimeDelta::FromMillis(15);
    TimeDelta delay_target_high = TimeDelta::FromMillis(45);
    double decrease_factor = 0.87;
    double increase_bytes = 2800.0;  // additive, per epoch
    uint32_t datagram_bytes = 1400;
    double max_window_bytes = 2e6;
  };

  VerusLikeFlow(EventLoop* loop, DuplexPath* path, Params params);
  VerusLikeFlow(EventLoop* loop, DuplexPath* path) : VerusLikeFlow(loop, path, Params{}) {}

  void Start();
  void Stop();

  const SampleSet& one_way_delays() const { return delays_; }
  uint64_t delivered_bytes() const { return delivered_bytes_; }
  double window_bytes() const { return window_bytes_; }

 private:
  void EpochTick();
  void TrySend();
  void OnSenderReceive(const UdpDatagramPayload& payload, const Packet& pkt);
  void OnReceiverReceive(const UdpDatagramPayload& payload, const Packet& pkt);

  EventLoop* loop_;
  Params params_;
  std::unique_ptr<UdpSocket> sender_;
  std::unique_ptr<UdpSocket> receiver_;
  PeriodicTimer epoch_timer_;

  double window_bytes_ = 14000.0;
  uint64_t next_seq_ = 0;
  uint64_t highest_acked_ = 0;
  uint64_t bytes_unacked_ = 0;
  TimeDelta min_owd_ = TimeDelta::Infinite();
  TimeDelta latest_owd_ = TimeDelta::Zero();

  uint64_t delivered_bytes_ = 0;
  SampleSet delays_;
};

}  // namespace element

#endif  // ELEMENT_SRC_UDPPROTO_LOW_LATENCY_PROTOCOLS_H_
