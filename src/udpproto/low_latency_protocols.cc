#include "src/udpproto/low_latency_protocols.h"

#include <algorithm>
#include <cmath>

namespace element {

// ---------------------------------------------------------------------------
// SproutLike
// ---------------------------------------------------------------------------

SproutLikeFlow::SproutLikeFlow(EventLoop* loop, DuplexPath* path, Params params)
    : loop_(loop),
      params_(params),
      send_timer_(loop, params.tick, [this] { SenderTick(); }),
      recv_timer_(loop, params.tick, [this] { ReceiverTick(); }) {
  uint64_t flow_id = path->AllocateFlowId();
  sender_ = std::make_unique<UdpSocket>(loop, flow_id, &path->forward(), &path->client_demux());
  receiver_ =
      std::make_unique<UdpSocket>(loop, flow_id, &path->reverse(), &path->server_demux());
  sender_->SetReceiveCallback(
      [this](const UdpDatagramPayload& p, const Packet& pkt) { OnSenderReceive(p, pkt); });
  receiver_->SetReceiveCallback(
      [this](const UdpDatagramPayload& p, const Packet& pkt) { OnReceiverReceive(p, pkt); });
}

void SproutLikeFlow::Start() {
  send_timer_.Start();
  recv_timer_.Start();
}

void SproutLikeFlow::Stop() {
  send_timer_.Stop();
  recv_timer_.Stop();
}

void SproutLikeFlow::SenderTick() {
  // Spend this tick's share of the forecast allowance.
  double per_tick = allowance_bytes_ * (params_.tick.ToSeconds() /
                                        params_.forecast_horizon.ToSeconds());
  int64_t budget = static_cast<int64_t>(per_tick);
  while (budget > 0) {
    UdpDatagramPayload dg;
    dg.seq = ++next_seq_;
    dg.payload_bytes = params_.datagram_bytes;
    sender_->SendDatagram(dg);
    budget -= params_.datagram_bytes;
  }
}

void SproutLikeFlow::OnSenderReceive(const UdpDatagramPayload& payload, const Packet&) {
  if (payload.is_feedback) {
    allowance_bytes_ = payload.metric_a;
  }
}

void SproutLikeFlow::OnReceiverReceive(const UdpDatagramPayload& payload, const Packet&) {
  if (payload.is_feedback) {
    return;
  }
  TimeDelta owd = loop_->now() - payload.sent;
  delays_.Add(owd.ToSeconds());
  min_owd_ = std::min(min_owd_, owd);
  tick_max_owd_ = std::max(tick_max_owd_, owd);
  delivered_bytes_ += payload.payload_bytes;
  tick_bytes_ += payload.payload_bytes;
}

void SproutLikeFlow::ReceiverTick() {
  double inst_rate = static_cast<double>(tick_bytes_) / params_.tick.ToSeconds();
  tick_bytes_ = 0;
  if (!have_rate_) {
    rate_mean_ = inst_rate;
    rate_var_ = inst_rate * inst_rate * 0.25;
    have_rate_ = true;
  } else {
    double d = inst_rate - rate_mean_;
    rate_mean_ += 0.125 * d;
    rate_var_ = 0.875 * rate_var_ + 0.125 * d * d;
  }
  // Conservative stochastic forecast: the cautious percentile of the rate,
  // probed upward while queueing stays below target and cut when it exceeds.
  double safe_rate = std::max(0.0, rate_mean_ - params_.caution_stddevs * std::sqrt(rate_var_));
  TimeDelta queueing =
      min_owd_.IsInfinite() ? TimeDelta::Zero() : tick_max_owd_ - min_owd_;
  double gain = queueing > params_.queueing_target ? params_.backoff_gain : params_.probe_gain;
  tick_max_owd_ = TimeDelta::Zero();
  UdpDatagramPayload fb;
  fb.is_feedback = true;
  fb.payload_bytes = 40;
  fb.metric_a = safe_rate * gain * params_.forecast_horizon.ToSeconds() +
                static_cast<double>(params_.datagram_bytes);  // never fully starve
  fb.metric_b = rate_mean_;
  receiver_->SendDatagram(fb);
}

DataRate SproutLikeFlow::MeanThroughput(SimTime from, SimTime to) const {
  TimeDelta span = to - from;
  if (span <= TimeDelta::Zero()) {
    return DataRate::Zero();
  }
  return RateOver(static_cast<int64_t>(delivered_bytes_), span);
}

// ---------------------------------------------------------------------------
// VerusLike
// ---------------------------------------------------------------------------

VerusLikeFlow::VerusLikeFlow(EventLoop* loop, DuplexPath* path, Params params)
    : loop_(loop), params_(params), epoch_timer_(loop, params.epoch, [this] { EpochTick(); }) {
  uint64_t flow_id = path->AllocateFlowId();
  sender_ = std::make_unique<UdpSocket>(loop, flow_id, &path->forward(), &path->client_demux());
  receiver_ =
      std::make_unique<UdpSocket>(loop, flow_id, &path->reverse(), &path->server_demux());
  sender_->SetReceiveCallback(
      [this](const UdpDatagramPayload& p, const Packet& pkt) { OnSenderReceive(p, pkt); });
  receiver_->SetReceiveCallback(
      [this](const UdpDatagramPayload& p, const Packet& pkt) { OnReceiverReceive(p, pkt); });
}

void VerusLikeFlow::Start() {
  epoch_timer_.Start();
  TrySend();
}

void VerusLikeFlow::Stop() { epoch_timer_.Stop(); }

void VerusLikeFlow::TrySend() {
  uint64_t last_sent = next_seq_;
  uint64_t unacked =
      (last_sent > highest_acked_ ? last_sent - highest_acked_ : 0) * params_.datagram_bytes;
  while (unacked + params_.datagram_bytes <= static_cast<uint64_t>(window_bytes_)) {
    UdpDatagramPayload dg;
    dg.seq = ++next_seq_;
    dg.payload_bytes = params_.datagram_bytes;
    sender_->SendDatagram(dg);
    unacked += params_.datagram_bytes;
  }
}

void VerusLikeFlow::OnSenderReceive(const UdpDatagramPayload& payload, const Packet&) {
  if (!payload.is_feedback) {
    return;
  }
  highest_acked_ = std::max(highest_acked_, payload.ack_seq);
  latest_owd_ = TimeDelta::FromSeconds(payload.metric_b);
  min_owd_ = std::min(min_owd_, latest_owd_);
  TrySend();
}

void VerusLikeFlow::OnReceiverReceive(const UdpDatagramPayload& payload, const Packet&) {
  if (payload.is_feedback) {
    return;
  }
  TimeDelta owd = loop_->now() - payload.sent;
  delays_.Add(owd.ToSeconds());
  delivered_bytes_ += payload.payload_bytes;
  UdpDatagramPayload fb;
  fb.is_feedback = true;
  fb.payload_bytes = 40;
  fb.ack_seq = payload.seq;
  fb.metric_b = owd.ToSeconds();
  receiver_->SendDatagram(fb);
}

void VerusLikeFlow::EpochTick() {
  if (min_owd_.IsInfinite()) {
    TrySend();
    return;
  }
  TimeDelta queueing = latest_owd_ - min_owd_;
  if (queueing < params_.delay_target_low) {
    window_bytes_ += params_.increase_bytes;
  } else if (queueing > params_.delay_target_high) {
    window_bytes_ *= params_.decrease_factor;
  }
  window_bytes_ = std::clamp(window_bytes_, static_cast<double>(params_.datagram_bytes),
                             params_.max_window_bytes);
  TrySend();
}

}  // namespace element
