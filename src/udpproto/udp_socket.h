// Minimal UDP endpoint over the simulated network, substrate for the
// Sprout-like and Verus-like low-latency protocols that Figure 16 compares
// against ELEMENT.

#ifndef ELEMENT_SRC_UDPPROTO_UDP_SOCKET_H_
#define ELEMENT_SRC_UDPPROTO_UDP_SOCKET_H_

#include <functional>

#include "src/evloop/event_loop.h"
#include "src/netsim/pipe.h"

namespace element {

struct UdpDatagramPayload : public Payload {
  uint64_t seq = 0;
  SimTime sent;
  uint32_t payload_bytes = 0;
  bool is_feedback = false;
  // Feedback fields (protocol-specific meaning).
  uint64_t ack_seq = 0;
  double metric_a = 0.0;  // Sprout: forecast bytes allowance; Verus: rx rate
  double metric_b = 0.0;  // Sprout: observed rate; Verus: one-way delay (s)
};

class UdpSocket : public PacketSink {
 public:
  using ReceiveCallback = std::function<void(const UdpDatagramPayload&, const Packet&)>;

  UdpSocket(EventLoop* loop, uint64_t flow_id, PacketSink* tx, Demux* rx_demux);
  ~UdpSocket() override;

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  void SendDatagram(const UdpDatagramPayload& payload);
  void SetReceiveCallback(ReceiveCallback cb) { on_receive_ = std::move(cb); }

  void Deliver(Packet pkt) override;

  uint64_t datagrams_sent() const { return sent_; }
  uint64_t datagrams_received() const { return received_; }

 private:
  EventLoop* loop_;
  uint64_t flow_id_;
  PacketSink* tx_;
  Demux* rx_demux_;
  ReceiveCallback on_receive_;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
};

}  // namespace element

#endif  // ELEMENT_SRC_UDPPROTO_UDP_SOCKET_H_
