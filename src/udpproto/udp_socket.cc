#include "src/udpproto/udp_socket.h"

#include <memory>
#include <utility>

namespace element {

UdpSocket::UdpSocket(EventLoop* loop, uint64_t flow_id, PacketSink* tx, Demux* rx_demux)
    : loop_(loop), flow_id_(flow_id), tx_(tx), rx_demux_(rx_demux) {
  rx_demux_->Register(flow_id_, this);
}

UdpSocket::~UdpSocket() { rx_demux_->Unregister(flow_id_); }

void UdpSocket::SendDatagram(const UdpDatagramPayload& payload) {
  Packet pkt;
  pkt.flow_id = flow_id_;
  pkt.size_bytes = kIpUdpHeaderBytes + payload.payload_bytes;
  pkt.created = loop_->now();
  auto owned = MakePooledPayload<UdpDatagramPayload>(loop_->payload_arena(), payload);
  owned->sent = loop_->now();
  pkt.payload = std::move(owned);
  ++sent_;
  tx_->Deliver(std::move(pkt));
}

void UdpSocket::Deliver(Packet pkt) {
  ++received_;
  if (on_receive_) {
    const auto& payload = *static_cast<const UdpDatagramPayload*>(pkt.payload.get());
    on_receive_(payload, pkt);
  }
}

}  // namespace element
