#include "src/tools/probe_tools.h"

#include <utility>

#include "src/tcpsim/tcp_segment.h"

namespace element {

void SynResponder::Deliver(Packet pkt) {
  const auto& seg = *static_cast<const TcpSegmentPayload*>(pkt.payload.get());
  if (!seg.syn || seg.ack) {
    return;
  }
  TcpSegmentPayload synack;
  synack.syn = true;
  synack.ack = true;
  Packet reply;
  reply.flow_id = pkt.flow_id;
  reply.size_bytes = reply_size_;
  reply.created = pkt.created;
  reply.payload = MakePooledPayload<TcpSegmentPayload>(loop_->payload_arena(), synack);
  reply_pipe_->Deliver(std::move(reply));
}

SynProbeTool::SynProbeTool(EventLoop* loop, DuplexPath* path, Profile profile)
    : loop_(loop),
      path_(path),
      profile_(std::move(profile)),
      flow_id_(path->AllocateFlowId()),
      timer_(loop, profile_.interval, [this] { SendProbe(); }) {
  responder_ = std::make_unique<SynResponder>(loop, &path_->reverse());
  path_->server_demux().Register(flow_id_, responder_.get());
  path_->client_demux().Register(flow_id_, this);
}

SynProbeTool::~SynProbeTool() {
  path_->server_demux().Unregister(flow_id_);
  path_->client_demux().Unregister(flow_id_);
}

void SynProbeTool::Start() {
  SendProbe();
  timer_.Start();
}

void SynProbeTool::Stop() { timer_.Stop(); }

void SynProbeTool::SendProbe() {
  TcpSegmentPayload syn;
  syn.syn = true;
  Packet pkt;
  pkt.flow_id = flow_id_;
  pkt.size_bytes = profile_.probe_size_bytes;
  pkt.created = loop_->now();
  pkt.payload = MakePooledPayload<TcpSegmentPayload>(loop_->payload_arena(), syn);
  probe_sent_ = loop_->now();
  awaiting_reply_ = true;
  path_->forward().Deliver(std::move(pkt));
}

void SynProbeTool::Deliver(Packet /*pkt*/) {
  if (!awaiting_reply_) {
    return;
  }
  awaiting_reply_ = false;
  rtt_.Add((loop_->now() - probe_sent_).ToSeconds());
}

EchoPing::EchoPing(EventLoop* loop, TcpSocket* client, TcpSocket* server,
                   size_t document_bytes, uint32_t request_bytes, TimeDelta pause_between)
    : loop_(loop),
      client_(client),
      server_(server),
      document_bytes_(document_bytes),
      request_bytes_(request_bytes),
      pause_(pause_between),
      expected_read_(0),
      pause_timer_(loop, [this] { SendRequest(); }) {}

void EchoPing::Start() {
  server_->SetReadableCallback([this] { OnServerReadable(); });
  server_->SetWritableCallback([this] { PumpServerResponse(); });
  client_->SetReadableCallback([this] { OnClientReadable(); });
  if (client_->established()) {
    SendRequest();
  } else {
    client_->SetEstablishedCallback([this] { SendRequest(); });
  }
}

void EchoPing::SendRequest() {
  if (in_flight_) {
    return;
  }
  in_flight_ = true;
  request_time_ = loop_->now();
  expected_read_ = client_->app_bytes_read() + document_bytes_;
  client_->Write(request_bytes_);
}

void EchoPing::OnServerReadable() {
  size_t n = server_->Read(1 << 20);
  if (n > 0) {
    // HTTP-ish: any request triggers one document response.
    response_left_ += (n / request_bytes_) * document_bytes_;
    PumpServerResponse();
  }
}

void EchoPing::PumpServerResponse() {
  while (response_left_ > 0) {
    size_t w = server_->Write(response_left_);
    response_left_ -= w;
    if (w == 0) {
      break;
    }
  }
}

void EchoPing::OnClientReadable() {
  while (client_->Read(1 << 20) > 0) {
  }
  if (in_flight_ && client_->app_bytes_read() >= expected_read_) {
    in_flight_ = false;
    times_.Add((loop_->now() - request_time_).ToSeconds());
    ++completed_;
    pause_timer_.RestartAfter(pause_);
  }
}

}  // namespace element
