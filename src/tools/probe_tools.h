// Simulated TCP-based delay-measurement tools from Table 1. tcpping, paping,
// and hping3 all time a TCP SYN / SYN-ACK exchange: small control packets
// that traverse the network path (sharing its queues) but never enter the
// bulk flow's socket buffers — which is exactly why they cannot see endhost
// system delay. echoping instead times whole application-layer downloads.

#ifndef ELEMENT_SRC_TOOLS_PROBE_TOOLS_H_
#define ELEMENT_SRC_TOOLS_PROBE_TOOLS_H_

#include <memory>
#include <string>

#include "src/common/stats.h"
#include "src/evloop/event_loop.h"
#include "src/netsim/pipe.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {

// Echoes SYN-ACKs for probe flows; registered at the server-side demux (the
// moral equivalent of the peer's listening TCP port).
class SynResponder : public PacketSink {
 public:
  SynResponder(EventLoop* loop, PacketSink* reply_pipe, uint32_t reply_size_bytes = 60)
      : loop_(loop), reply_pipe_(reply_pipe), reply_size_(reply_size_bytes) {}

  void Deliver(Packet pkt) override;

 private:
  EventLoop* loop_;
  PacketSink* reply_pipe_;
  uint32_t reply_size_;
};

// Generic SYN-probe RTT tool; tcpping/paping/hping3 differ only in probe
// cadence and packet size.
class SynProbeTool : public PacketSink {
 public:
  struct Profile {
    std::string name;
    TimeDelta interval;
    uint32_t probe_size_bytes;
  };
  static Profile TcpPing() { return {"tcpping", TimeDelta::FromSecondsInt(1), 60}; }
  static Profile Paping() { return {"paping", TimeDelta::FromMillis(1000), 64}; }
  static Profile Hping3() { return {"hping3", TimeDelta::FromMillis(1000), 40}; }

  SynProbeTool(EventLoop* loop, DuplexPath* path, Profile profile);
  ~SynProbeTool() override;

  void Start();
  void Stop();

  // One RTT sample per answered probe, seconds.
  const SampleSet& rtt_samples() const { return rtt_; }
  const std::string& name() const { return profile_.name; }

  void Deliver(Packet pkt) override;  // SYN-ACK reception

 private:
  void SendProbe();

  EventLoop* loop_;
  DuplexPath* path_;
  Profile profile_;
  uint64_t flow_id_;
  std::unique_ptr<SynResponder> responder_;
  PeriodicTimer timer_;
  SimTime probe_sent_;
  bool awaiting_reply_ = false;
  SampleSet rtt_;
};

// echoping: repeatedly requests a document over the bulk path and times the
// complete application-layer transfer. The server pushes the document through
// its own TCP stack, so (unlike the SYN probes) the measurement *includes*
// endhost buffering — but only as one undecomposed number.
class EchoPing {
 public:
  EchoPing(EventLoop* loop, TcpSocket* client, TcpSocket* server,
           size_t document_bytes = 256 * 1024, uint32_t request_bytes = 100,
           TimeDelta pause_between = TimeDelta::FromMillis(200));

  void Start();
  // Total request->document-complete time per exchange, seconds.
  const SampleSet& transfer_times() const { return times_; }
  uint64_t completed_transfers() const { return completed_; }

 private:
  void SendRequest();
  void OnServerReadable();
  void OnClientReadable();
  void PumpServerResponse();

  EventLoop* loop_;
  TcpSocket* client_;
  TcpSocket* server_;
  size_t document_bytes_;
  uint32_t request_bytes_;
  TimeDelta pause_;

  SimTime request_time_;
  uint64_t expected_read_;
  size_t response_left_ = 0;
  uint64_t completed_ = 0;
  bool in_flight_ = false;
  Timer pause_timer_;
  SampleSet times_;
};

}  // namespace element

#endif  // ELEMENT_SRC_TOOLS_PROBE_TOOLS_H_
