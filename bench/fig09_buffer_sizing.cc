// Figure 9: static send-buffer sizes vs Linux auto-tuning vs ELEMENT.
// EC2-like path. The paper's point: no static size gets both high throughput
// and low delay — small buffers cut delay but throttle throughput, large
// buffers fill the pipe but bloat delay; ELEMENT achieves both at once.

#include <cstdio>
#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/interposer.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

#include "bench/harness.h"

using namespace element;

namespace {

struct Result {
  double goodput_mbps;
  double relative_delay_s;
};

Result RunOne(uint64_t seed, size_t fixed_sndbuf, bool use_element) {
  PathConfig path;  // EC2-like: fast path with a ~1 MB bandwidth-delay product
  path.rate = DataRate::Mbps(200);
  path.one_way_delay = TimeDelta::FromMillis(20);
  path.queue_limit_packets = 400;  // ~0.6x BDP: shallow datacenter-style buffer
  Testbed bed(seed, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  if (fixed_sndbuf > 0) {
    flow.sender->SetSndBuf(fixed_sndbuf);
  }
  GroundTruthTracer::Config tcfg;
  tcfg.record_from = SimTime::FromNanos(3'000'000'000LL);
  GroundTruthTracer tracer(tcfg);
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  std::unique_ptr<ByteSink> sink;
  if (use_element) {
    sink = std::make_unique<InterposedSink>(&bed.loop(), flow.sender);
  } else {
    sink = std::make_unique<RawTcpSink>(flow.sender);
  }
  IperfApp app(&bed.loop(), sink.get());
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(SimTime::FromNanos(30'000'000'000LL));
  Result r;
  r.goodput_mbps = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                            TimeDelta::FromSecondsInt(30))
                       .ToMbps();
  double e2e = tracer.end_to_end_delay().mean();
  r.relative_delay_s = std::max(0.0, e2e - path.one_way_delay.ToSeconds());
  return r;
}

}  // namespace

int main() {
  std::printf("=== Figure 9: throughput & delay vs send-buffer strategy ===\n");
  std::printf("Setup: single Cubic flow, 200 Mbps / 40 ms RTT (EC2-like), 30 s\n\n");

  struct Case {
    const char* name;
    size_t sndbuf;
    bool element;
  };
  const Case cases[] = {
      {"0.25MB", 256 * 1024, false}, {"0.5MB", 512 * 1024, false}, {"1MB", 1024 * 1024, false},
      {"2MB", 2 * 1024 * 1024, false}, {"Auto-tuning", 0, false}, {"ELEMENT", 0, true},
  };

  TablePrinter table({"buffer strategy", "throughput (Mbps)", "relative delay (s)"});
  Result results[6];
  int i = 0;
  for (const Case& c : cases) {
    results[i] = RunOne(500 + static_cast<uint64_t>(i), c.sndbuf, c.element);
    table.AddRow({c.name, TablePrinter::Fmt(results[i].goodput_mbps, 2),
                  TablePrinter::Fmt(results[i].relative_delay_s, 3)});
    ++i;
  }
  std::printf("%s\n", table.Render().c_str());

  const Result& small = results[0];
  const Result& big = results[3];
  const Result& autot = results[4];
  const Result& em = results[5];
  bool shape_ok = true;
  // Static trade-off: the small buffer loses throughput vs the big one; the
  // big buffer has much larger delay than the small one.
  if (small.goodput_mbps >= big.goodput_mbps * 0.98 &&
      small.relative_delay_s >= big.relative_delay_s) {
    shape_ok = false;
  }
  if (big.relative_delay_s < small.relative_delay_s) {
    shape_ok = false;
  }
  // ELEMENT: throughput within 10% of the best, delay near the smallest.
  double best_tput = std::max({small.goodput_mbps, big.goodput_mbps, autot.goodput_mbps});
  if (em.goodput_mbps < best_tput * 0.90) {
    shape_ok = false;
  }
  if (em.relative_delay_s > autot.relative_delay_s * 0.6) {
    shape_ok = false;
  }
  std::printf("Paper shape check: static sizes trade throughput against delay;\n"
              "ELEMENT gets high throughput AND low delay simultaneously.\nSHAPE %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
