// Ablation of DESIGN.md decision #3: the paper's sent-bytes estimate
// (bytes_acked + unacked * mss, available on any TCP_INFO kernel) vs the
// exact tcpi_notsent_bytes-based formula available on Linux >= 4.6. How much
// accuracy does the paper's approximation cost?

#include <cstdio>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/delay_estimator.h"
#include "src/element/estimation_error.h"
#include "src/element/tcp_info_tracker.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

#include "bench/harness.h"

using namespace element;

namespace {

struct FormulaResult {
  AccuracyResult paper;
  AccuracyResult notsent;
};

FormulaResult RunBoth(uint64_t seed, const PathConfig& path) {
  Testbed bed(seed, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);

  SenderDelayEstimator paper_est(SenderDelayEstimator::SentBytesFormula::kAckedPlusUnacked);
  SenderDelayEstimator notsent_est(SenderDelayEstimator::SentBytesFormula::kNotsentBased);
  TcpInfoTracker tracker(&bed.loop(), flow.sender);
  tracker.Start();
  // Feed both estimators from one tracker stream.
  PeriodicTimer feeder(&bed.loop(), TimeDelta::FromMillis(10), [&] {
    TcpInfoData info = flow.sender->GetTcpInfo();
    paper_est.OnTcpInfoSample(info, bed.loop().now());
    notsent_est.OnTcpInfoSample(info, bed.loop().now());
  });
  feeder.Start();

  struct DualSink : ByteSink {
    TcpSocket* sock;
    SenderDelayEstimator* a;
    SenderDelayEstimator* b;
    EventLoop* loop;
    size_t Write(size_t n) override {
      size_t w = sock->Write(n);
      if (w > 0) {
        a->OnAppSend(sock->app_bytes_written(), loop->now());
        b->OnAppSend(sock->app_bytes_written(), loop->now());
      }
      return w;
    }
    void SetWritableCallback(std::function<void()> cb) override {
      sock->SetWritableCallback(std::move(cb));
    }
    TcpSocket* socket() override { return sock; }
  } sink;
  sink.sock = flow.sender;
  sink.a = &paper_est;
  sink.b = &notsent_est;
  sink.loop = &bed.loop();
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(SimTime::FromNanos(30'000'000'000LL));

  FormulaResult r;
  r.paper = ScoreEstimates(paper_est.delay_series(), tracer.sender_delay_series());
  r.notsent = ScoreEstimates(notsent_est.delay_series(), tracer.sender_delay_series());
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablation: sent-bytes formula (paper vs tcpi_notsent_bytes) ===\n\n");
  struct Cell {
    const char* name;
    double mbps;
    int owd_ms;
  };
  const Cell cells[] = {{"10 Mbps / 50ms", 10, 25}, {"50 Mbps / 50ms", 50, 25},
                        {"10 Mbps / 200ms", 10, 100}};
  TablePrinter table({"path", "formula", "median |err| (s)", "p90 |err| (s)", "accuracy"});
  uint64_t seed = 4100;
  for (const Cell& cell : cells) {
    PathConfig path;
    path.rate = DataRate::Mbps(cell.mbps);
    path.one_way_delay = TimeDelta::FromMillis(cell.owd_ms);
    double bdp = cell.mbps * 1e6 / 8 * cell.owd_ms * 2e-3 / 1500;
    path.queue_limit_packets = static_cast<size_t>(std::max(60.0, 2.0 * bdp));
    FormulaResult r = RunBoth(seed++, path);
    table.AddRow({cell.name, "acked+unacked*mss (paper)",
                  TablePrinter::Fmt(r.paper.median_abs_error_s, 4),
                  TablePrinter::Fmt(r.paper.errors.Quantile(0.9), 4),
                  TablePrinter::Fmt(r.paper.accuracy * 100, 1) + "%"});
    table.AddRow({"", "write_seq - notsent_bytes",
                  TablePrinter::Fmt(r.notsent.median_abs_error_s, 4),
                  TablePrinter::Fmt(r.notsent.errors.Quantile(0.9), 4),
                  TablePrinter::Fmt(r.notsent.accuracy * 100, 1) + "%"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Takeaway: the paper's kernel-portable formula gives up little accuracy; the\n"
              "exact notsent-based variant mainly tightens the sub-MSS rounding error.\n");
  return 0;
}
