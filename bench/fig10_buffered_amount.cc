// Figure 10: estimated amount of buffered (written-but-unacked) data over
// time for a plain Cubic flow vs Cubic + ELEMENT on a cloud-like path.
// Expected shape: plain Cubic keeps an excessively large buffered amount;
// ELEMENT keeps it minimal without ever emptying the buffer (no starvation).

#include <cstdio>
#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/interposer.h"
#include "src/tcpsim/testbed.h"

#include "bench/harness.h"

using namespace element;

namespace {

TimeSeries RunOne(uint64_t seed, bool use_element, double* goodput_out) {
  PathConfig path;  // Chameleon-cloud-like
  path.rate = DataRate::Mbps(50);
  path.one_way_delay = TimeDelta::FromMillis(15);
  path.queue_limit_packets = 250;
  Testbed bed(seed, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  std::unique_ptr<ByteSink> sink;
  if (use_element) {
    sink = std::make_unique<InterposedSink>(&bed.loop(), flow.sender);
  } else {
    sink = std::make_unique<RawTcpSink>(flow.sender);
  }
  IperfApp app(&bed.loop(), sink.get());
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  TimeSeries buffered;
  PeriodicTimer sampler(&bed.loop(), TimeDelta::FromMillis(200), [&] {
    buffered.Add(bed.loop().now(), static_cast<double>(flow.sender->SndBufUsed()) / 1024.0);
  });
  sampler.Start();
  bed.loop().RunUntil(SimTime::FromNanos(30'000'000'000LL));
  *goodput_out = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                          TimeDelta::FromSecondsInt(30))
                     .ToMbps();
  return buffered;
}

}  // namespace

int main() {
  std::printf("=== Figure 10: estimated buffered amount over time (KB) ===\n");
  std::printf("Setup: single flow, 50 Mbps / 30 ms RTT cloud-like path, 30 s\n\n");

  double goodput_plain = 0;
  double goodput_em = 0;
  TimeSeries plain = RunOne(600, false, &goodput_plain);
  TimeSeries with_em = RunOne(600, true, &goodput_em);

  std::printf("%-8s %-22s %-22s\n", "t(s)", "TCP Cubic alone (KB)", "Cubic+ELEMENT (KB)");
  for (int t = 1; t <= 30; ++t) {
    SimTime at = SimTime::FromNanos(static_cast<int64_t>(t) * 1'000'000'000LL);
    double a = 0;
    double b = 0;
    plain.InterpolateAt(at, &a);
    with_em.InterpolateAt(at, &b);
    std::printf("%-8d %-22.1f %-22.1f\n", t, a, b);
  }

  double mean_plain = plain.MeanAfter(SimTime::FromNanos(5'000'000'000LL));
  double mean_em = with_em.MeanAfter(SimTime::FromNanos(5'000'000'000LL));
  std::printf("\nsteady-state mean buffered: Cubic %.1f KB vs Cubic+ELEMENT %.1f KB\n",
              mean_plain, mean_em);
  std::printf("goodput: Cubic %.2f Mbps vs Cubic+ELEMENT %.2f Mbps\n", goodput_plain,
              goodput_em);

  bool shape_ok = mean_em < mean_plain * 0.5 && mean_em > 10.0 &&
                  goodput_em > goodput_plain * 0.9;
  std::printf("\nPaper shape check: ELEMENT keeps the buffered amount as small as possible\n"
              "without exhausting the buffer, preserving throughput.\nSHAPE %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
