// Contention figure: decomposition accuracy and per-component delay as the
// number of competing flows at a shared dumbbell bottleneck grows, per qdisc.
//
// Each cell runs N Cubic flows (flow 0 ELEMENT-instrumented) through one
// 20 Mbps bottleneck. Expected shape: network queueing delay grows with the
// competing-flow count (steeply for pfifo_fast, held down by the AQMs);
// ELEMENT's sender-side decomposition stays accurate under contention; and
// FQ-CoDel keeps Jain's index pinned near 1.
//
// The cells run through the fleet runner; rows are printed in cell order and
// are identical for any --jobs value.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/runner/fleet.h"

using namespace element;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  int jobs = static_cast<int>(flags.GetInt("jobs", DefaultJobs()));

  std::printf("=== Contention: decomposition vs competing flows (dumbbell) ===\n");
  std::printf("Setup: N Cubic flows, 20 Mbps / 40 ms RTT bottleneck, 20 s, flow 0 through\n"
              "ELEMENT; per-hop delays are means over all flows after 3 s warmup\n\n");

  const char* kQdiscs[] = {"pfifo_fast", "codel", "fq_codel", "pie"};
  const int kFlowCounts[] = {1, 2, 4, 8, 16};

  std::vector<ScenarioSpec> specs;
  for (const char* qdisc : kQdiscs) {
    for (int flows : kFlowCounts) {
      ScenarioSpec spec;
      spec.name = std::string(qdisc) + "/" + std::to_string(flows) + "f";
      spec.topology = "dumbbell";
      spec.qdisc = qdisc;
      spec.cc = "cubic";
      spec.num_flows = flows;
      spec.rate_mbps = 20.0;
      spec.rtt_ms = 40.0;
      spec.element_mode = "first";
      spec.duration_s = 20.0;
      spec.warmup_s = 3.0;
      spec.seed = 7;
      specs.push_back(spec);
    }
  }

  FleetOptions options;
  options.jobs = jobs;
  FleetSummary fleet = RunFleet(specs, options);

  TablePrinter table({"qdisc", "flows", "snd (ms)", "net (ms)", "rcv (ms)", "goodput (Mb/s)",
                      "jain", "acc snd", "acc rcv"});
  bool shape_ok = true;
  size_t cell = 0;
  for (const char* qdisc : kQdiscs) {
    double net_delay_1f = 0.0;
    double net_delay_max = 0.0;
    for (int flows : kFlowCounts) {
      const ScenarioResult& result = fleet.results[cell++];
      if (!result.ok) {
        std::fprintf(stderr, "cell %s failed: %s\n", result.spec.Id().c_str(),
                     result.error.c_str());
        return 1;
      }
      MeanDelays delays = AverageDelays(result.flows);
      if (flows == 1) {
        net_delay_1f = delays.network_s;
      }
      if (delays.network_s > net_delay_max) {
        net_delay_max = delays.network_s;
      }
      char snd[32], net[32], rcv[32], gp[32], jain[32], acc_s[32], acc_r[32];
      std::snprintf(snd, sizeof(snd), "%.1f", delays.sender_s * 1e3);
      std::snprintf(net, sizeof(net), "%.1f", delays.network_s * 1e3);
      std::snprintf(rcv, sizeof(rcv), "%.1f", delays.receiver_s * 1e3);
      std::snprintf(gp, sizeof(gp), "%.2f", result.metrics.StatsOrEmpty("goodput_mbps").mean() *
                                                static_cast<double>(result.flows.size()));
      std::snprintf(jain, sizeof(jain), "%.3f", result.jain_fairness);
      std::snprintf(acc_s, sizeof(acc_s), "%.3f", result.accuracy.sender.accuracy);
      std::snprintf(acc_r, sizeof(acc_r), "%.3f", result.accuracy.receiver.accuracy);
      table.AddRow({qdisc, std::to_string(flows), snd, net, rcv, gp, jain, acc_s, acc_r});

      // Decomposition stays usable under contention. Receiver-side accuracy
      // is only meaningful while flow 0 still sees measurable receiver delay;
      // at 16-way contention its true delay approaches zero and the relative
      // error metric loses meaning, so the floor applies through 8 flows.
      if (result.accuracy.sender.accuracy < 0.85) {
        shape_ok = false;
      }
      if (flows <= 8 && result.accuracy.receiver.accuracy < 0.5) {
        shape_ok = false;
      }
      if (result.unroutable_packets != 0) {
        shape_ok = false;
      }
    }
    // Queueing delay responds to contention: the most-contended cell queues
    // more than the uncontended one.
    if (net_delay_max <= net_delay_1f) {
      shape_ok = false;
    }
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("Paper shape check: network delay grows with competing flows; ELEMENT's\n"
              "sender decomposition stays >= 0.85 accurate under contention (receiver-side\n"
              "floor applies through 8 flows; see comment in the source).\n");
  std::printf("SHAPE %s\n", shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
