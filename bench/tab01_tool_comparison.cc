// Table 1: ELEMENT vs existing TCP-based delay measurement tools, against
// kernel-profiler ground truth, while a bulk Cubic flow bloats the sender's
// buffer.
//
// Expected shape: tcpping/paping/hping3 report only the path RTT; echoping
// reports one aggregate transfer time; ELEMENT alone decomposes sender-side
// and receiver-side system delays, closely matching ground truth.

#include <cstdio>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"
#include "src/tcpsim/testbed.h"
#include "src/tools/probe_tools.h"
#include "src/trace/ground_truth.h"

#include "bench/harness.h"

using namespace element;

int main() {
  std::printf("=== Table 1: ELEMENT vs TCP-based delay measurement tools (seconds) ===\n");
  std::printf("Setup: bulk TCP Cubic flow + concurrent probes, 10 Mbps / 25 ms OWD, 60 s\n\n");

  PathConfig path;
  path.rate = DataRate::Mbps(10);
  path.one_way_delay = TimeDelta::FromMillis(25);
  path.queue_limit_packets = 100;
  Testbed bed(11, path);

  // Bulk flow with ground truth + ELEMENT estimators (minimization off).
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  ElementSocket em_snd(&bed.loop(), flow.sender, opt);
  ElementSocket em_rcv(&bed.loop(), flow.receiver, opt);

  struct EmSink : ByteSink {
    ElementSocket* em;
    size_t Write(size_t n) override {
      RetInfo r = em->Send(n);
      return r.size > 0 ? static_cast<size_t>(r.size) : 0;
    }
    void SetWritableCallback(std::function<void()> cb) override {
      em->SetReadyToSendCallback(std::move(cb));
    }
    TcpSocket* socket() override { return em->socket(); }
  } sink;
  sink.em = &em_snd;
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(&em_rcv);
  app.Start();
  reader.Start();

  // Probe tools share the same path.
  SynProbeTool tcpping(&bed.loop(), &bed.path(), SynProbeTool::TcpPing());
  SynProbeTool paping(&bed.loop(), &bed.path(), SynProbeTool::Paping());
  SynProbeTool hping3(&bed.loop(), &bed.path(), SynProbeTool::Hping3());
  tcpping.Start();
  paping.Start();
  hping3.Start();

  // echoping downloads a document across the same bottleneck direction.
  Testbed::Flow echo_flow = bed.CreateFlow(TcpSocket::Config{});
  EchoPing echoping(&bed.loop(), echo_flow.receiver, echo_flow.sender);
  echoping.Start();

  bed.loop().RunUntil(SimTime::FromNanos(60'000'000'000LL));

  double gt_snd = tracer.sender_delay().mean();
  double gt_snd_sd = tracer.sender_delay().Stdev();
  double gt_net = tracer.network_delay().mean();
  double gt_rcv = tracer.receiver_delay().mean();
  double gt_rcv_sd = tracer.receiver_delay().Stdev();
  double em_snd_d = em_snd.sender_estimator().delay_samples().mean();
  double em_snd_sd = em_snd.sender_estimator().delay_samples().Stdev();
  double em_rcv_d = em_rcv.receiver_estimator().delay_samples().mean();
  double em_rcv_sd = em_rcv.receiver_estimator().delay_samples().Stdev();
  double em_net = em_snd.socket()->smoothed_rtt().ToSeconds() / 2.0;

  auto fmt_sd = [](double v, double sd) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f (%.3f)", v, sd);
    return std::string(buf);
  };

  TablePrinter table({"tool", "sender system delay (stdev)", "avg network delay (stdev)",
                      "receiver system delay (stdev)"});
  table.AddRow({"Ground truth", fmt_sd(gt_snd, gt_snd_sd), TablePrinter::Fmt(gt_net, 3),
                fmt_sd(gt_rcv, gt_rcv_sd)});
  table.AddRow({"ELEMENT", fmt_sd(em_snd_d, em_snd_sd), TablePrinter::Fmt(em_net, 3),
                fmt_sd(em_rcv_d, em_rcv_sd)});
  table.AddRow({"tcpping", "x",
                fmt_sd(tcpping.rtt_samples().mean() / 2.0, tcpping.rtt_samples().Stdev() / 2.0),
                "x"});
  table.AddRow({"paping", "x",
                fmt_sd(paping.rtt_samples().mean() / 2.0, paping.rtt_samples().Stdev() / 2.0),
                "x"});
  table.AddRow({"hping3", "x",
                fmt_sd(hping3.rtt_samples().mean() / 2.0, hping3.rtt_samples().Stdev() / 2.0),
                "x"});
  table.AddRow({"echoping (total transfer time)",
                fmt_sd(echoping.transfer_times().mean(), echoping.transfer_times().Stdev()), "-",
                "-"});
  std::printf("%s\n", table.Render().c_str());

  bool shape_ok = true;
  // Probe tools are blind to the sender's bufferbloat.
  if (tcpping.rtt_samples().mean() > gt_snd) {
    shape_ok = false;
  }
  // ELEMENT tracks the ground-truth sender delay within 15%.
  if (std::abs(em_snd_d - gt_snd) > 0.15 * gt_snd) {
    shape_ok = false;
  }
  std::printf("Paper shape check: only ELEMENT exposes the dominant sender-side delay\n"
              "(probes see ~RTT; echoping sees one aggregate number).\n");
  std::printf("SHAPE %s\n", shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
