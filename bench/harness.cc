#include "bench/harness.h"

#include <cstdio>

namespace element {

const std::vector<double> kCdfQuantiles = {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99};

MeanDelays AverageDelays(const std::vector<FlowResult>& flows) {
  MeanDelays out;
  if (flows.empty()) {
    return out;
  }
  for (const FlowResult& f : flows) {
    out.sender_s += f.sender_delay_s / static_cast<double>(flows.size());
    out.network_s += f.network_delay_s / static_cast<double>(flows.size());
    out.receiver_s += f.receiver_delay_s / static_cast<double>(flows.size());
  }
  return out;
}

void AddDelayCompositionRow(TablePrinter* table, const std::string& network,
                            const std::string& qdisc, const MeanDelays& delays) {
  table->AddRow({network, qdisc, TablePrinter::Fmt(delays.sender_s * 1000, 1),
                 TablePrinter::Fmt(delays.network_s * 1000, 1),
                 TablePrinter::Fmt(delays.receiver_s * 1000, 1),
                 TablePrinter::Fmt(delays.total_s() * 1000, 1)});
}

void AddAccuracyRows(TablePrinter* table, const std::string& name, const AccuracyRun& run) {
  table->AddRow({name, "sender", TablePrinter::Fmt(run.sender.errors.Quantile(0.5), 4),
                 TablePrinter::Fmt(run.sender.errors.Quantile(0.9), 4),
                 TablePrinter::Fmt(run.sender.errors.Quantile(0.99), 4),
                 TablePrinter::Fmt(run.sender.accuracy * 100, 1) + "%"});
  table->AddRow({"", "receiver", TablePrinter::Fmt(run.receiver.errors.Quantile(0.5), 4),
                 TablePrinter::Fmt(run.receiver.errors.Quantile(0.9), 4),
                 TablePrinter::Fmt(run.receiver.errors.Quantile(0.99), 4),
                 TablePrinter::Fmt(run.receiver.accuracy * 100, 1) + "%"});
}

void PrintErrorCdfRows(const AccuracyRun& run, const std::string& sender_label,
                       const std::string& receiver_label) {
  std::printf("%s", run.sender.errors.CdfRows(kCdfQuantiles, sender_label).c_str());
  std::printf("%s", run.receiver.errors.CdfRows(kCdfQuantiles, receiver_label).c_str());
}

}  // namespace element
