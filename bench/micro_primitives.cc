// Microbenchmarks of the substrate primitives, including the ablations
// DESIGN.md calls out: event-loop scheduling, per-qdisc enqueue/dequeue cost,
// congestion-control per-ACK cost, the BBR max filter, and the ground-truth
// tracer's byte lookups.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/evloop/event_loop.h"
#include "src/netsim/codel.h"
#include "src/netsim/fq_codel.h"
#include "src/netsim/pfifo_fast.h"
#include "src/netsim/pie.h"
#include "src/tcpsim/cc_bbr.h"
#include "src/tcpsim/congestion_control.h"
#include "src/trace/ground_truth.h"

namespace element {
namespace {

void BM_EventLoopScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.ScheduleAfter(TimeDelta::FromMicros(i), [&sink] { ++sink; });
    }
    loop.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleAndRun);

void BM_EventLoopCancelHalf(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    std::vector<EventHandle> ids;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(loop.ScheduleAfter(TimeDelta::FromMicros(i), [&sink] { ++sink; }));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      loop.Cancel(ids[i]);
    }
    loop.Run();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_EventLoopCancelHalf);

template <typename MakeQdisc>
void QdiscChurn(benchmark::State& state, MakeQdisc make) {
  auto q = make();
  Rng rng(1);
  SimTime t = SimTime::Zero();
  for (auto _ : state) {
    Packet p;
    p.flow_id = static_cast<uint64_t>(rng.UniformInt(1, 8));
    p.size_bytes = 1500;
    q->Enqueue(std::move(p), t);
    t += TimeDelta::FromMicros(10);
    benchmark::DoNotOptimize(q->Dequeue(t));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_QdiscPfifoFast(benchmark::State& state) {
  QdiscChurn(state, [] { return std::make_unique<PfifoFast>(1000); });
}
BENCHMARK(BM_QdiscPfifoFast);

void BM_QdiscCoDel(benchmark::State& state) {
  QdiscChurn(state, [] { return std::make_unique<CoDel>(); });
}
BENCHMARK(BM_QdiscCoDel);

void BM_QdiscFqCoDel(benchmark::State& state) {
  QdiscChurn(state, [] { return std::make_unique<FqCoDel>(); });
}
BENCHMARK(BM_QdiscFqCoDel);

void BM_QdiscPie(benchmark::State& state) {
  QdiscChurn(state, [] { return std::make_unique<Pie>(Rng(2)); });
}
BENCHMARK(BM_QdiscPie);

void CcAckLoop(benchmark::State& state, const char* name) {
  auto cc = MakeCongestionControl(name);
  cc->OnConnectionStart(SimTime::Zero(), 1448);
  SimTime t = SimTime::Zero();
  uint64_t delivered = 0;
  for (auto _ : state) {
    t += TimeDelta::FromMicros(500);
    delivered += 1448;
    AckSample s;
    s.now = t;
    s.acked_bytes = 1448;
    s.bytes_in_flight = 30 * 1448;
    s.rtt = TimeDelta::FromMillis(50);
    s.srtt = TimeDelta::FromMillis(50);
    s.min_rtt = TimeDelta::FromMillis(48);
    s.delivered_bytes = delivered;
    s.delivery_rate = DataRate::Mbps(10);
    s.mss = 1448;
    cc->OnAck(s);
  }
  benchmark::DoNotOptimize(cc->CwndSegments());
}

void BM_CcCubicOnAck(benchmark::State& state) { CcAckLoop(state, "cubic"); }
BENCHMARK(BM_CcCubicOnAck);
void BM_CcRenoOnAck(benchmark::State& state) { CcAckLoop(state, "reno"); }
BENCHMARK(BM_CcRenoOnAck);
void BM_CcVegasOnAck(benchmark::State& state) { CcAckLoop(state, "vegas"); }
BENCHMARK(BM_CcVegasOnAck);
void BM_CcBbrOnAck(benchmark::State& state) { CcAckLoop(state, "bbr"); }
BENCHMARK(BM_CcBbrOnAck);

void BM_WindowedMaxFilter(benchmark::State& state) {
  WindowedMaxFilter filter(10);
  Rng rng(3);
  uint64_t round = 0;
  for (auto _ : state) {
    filter.Update(rng.Uniform(), ++round);
    benchmark::DoNotOptimize(filter.GetMax());
  }
}
BENCHMARK(BM_WindowedMaxFilter);

void BM_TracerTransmitAndLookup(benchmark::State& state) {
  GroundTruthTracer tracer;
  uint64_t seq = 0;
  SimTime t = SimTime::Zero();
  for (auto _ : state) {
    tracer.OnAppWrite(seq, seq + 1448, t);
    tracer.OnTcpTransmit(seq, seq + 1448, t + TimeDelta::FromMicros(50), false);
    SimTime out;
    benchmark::DoNotOptimize(tracer.WriteTimeOf(seq, &out));
    seq += 1448;
    t += TimeDelta::FromMicros(100);
  }
}
BENCHMARK(BM_TracerTransmitAndLookup);

void BM_SampleSetQuantile(benchmark::State& state) {
  SampleSet s;
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) {
    s.Add(rng.Uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Quantile(0.99));
  }
}
BENCHMARK(BM_SampleSetQuantile);

}  // namespace
}  // namespace element

BENCHMARK_MAIN();
