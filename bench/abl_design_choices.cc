// Ablation benches for the design choices DESIGN.md calls out:
//   (1) tcp_info polling period — the paper's accuracy/overhead trade-off
//       (§3.1, §4.3: "If we decrease this measurement interval we can obtain
//       higher accuracy").
//   (2) Algorithm 3's D_thr — the latency target vs throughput trade-off.
//   (3) Algorithm 3's Delta exponent — adjustment smoothness (the FAST-TCP
//       comparison in §4.4).
//   (4) HyStart in Cubic — slow-start overshoot and its retransmission burst.
//   (5) Ratcheting send-buffer auto-tuning — the mechanism behind the
//       sender-side bufferbloat of Figure 2.

#include <cstdio>
#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/interposer.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

#include "bench/harness.h"

using namespace element;

namespace {

void AblateTrackerPeriod() {
  std::printf("--- (1) tcp_info polling period: accuracy vs overhead ---\n");
  PathConfig path;  // 10 Mbps / 50 ms RTT, the Figure 6 setting
  TablePrinter table({"period (ms)", "sender accuracy", "median |err| (s)", "polls/s"});
  for (int period_ms : {1, 5, 10, 50, 100}) {
    AccuracyRun run = RunAccuracyExperiment(3100 + static_cast<uint64_t>(period_ms), path, 20.0,
                                            TimeDelta::FromMillis(period_ms));
    table.AddRow({TablePrinter::Fmt(period_ms, 0),
                  TablePrinter::Fmt(run.sender.accuracy * 100, 1) + "%",
                  TablePrinter::Fmt(run.sender.median_abs_error_s, 4),
                  TablePrinter::Fmt(1000.0 / period_ms, 0)});
  }
  std::printf("%s\n", table.Render().c_str());
}

struct MinRun {
  double delay_s;
  double goodput;
};

MinRun RunMinimized(uint64_t seed, const MinimizerParams& params) {
  PathConfig path;
  Testbed bed(seed, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer::Config tcfg;
  tcfg.record_from = SimTime::FromNanos(5'000'000'000LL);
  GroundTruthTracer tracer(tcfg);
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  InterposedSink sink(&bed.loop(), flow.sender, false, params);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(SimTime::FromNanos(30'000'000'000LL));
  MinRun r;
  r.delay_s = tracer.sender_delay().mean();
  r.goodput = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                       TimeDelta::FromSecondsInt(30))
                  .ToMbps();
  return r;
}

void AblateDthr() {
  std::printf("--- (2) Algorithm 3 D_thr: latency target vs throughput ---\n");
  TablePrinter table({"D_thr (ms)", "sender delay (s)", "goodput (Mbps)"});
  for (int dthr_ms : {10, 25, 50, 100}) {
    MinimizerParams params;
    params.delay_threshold = TimeDelta::FromMillis(dthr_ms);
    MinRun r = RunMinimized(3200 + static_cast<uint64_t>(dthr_ms), params);
    table.AddRow({TablePrinter::Fmt(dthr_ms, 0), TablePrinter::Fmt(r.delay_s, 3),
                  TablePrinter::Fmt(r.goodput, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
}

void AblateDelta() {
  std::printf("--- (3) Algorithm 3 Delta exponent: adjustment aggressiveness ---\n");
  TablePrinter table({"Delta", "sender delay (s)", "goodput (Mbps)"});
  for (double delta : {0.1, 0.25, 0.5, 1.0}) {
    MinimizerParams params;
    params.delta = delta;
    MinRun r = RunMinimized(3300 + static_cast<uint64_t>(delta * 100), params);
    table.AddRow({TablePrinter::Fmt(delta, 2), TablePrinter::Fmt(r.delay_s, 3),
                  TablePrinter::Fmt(r.goodput, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
}

void AblateHyStart() {
  std::printf("--- (4) Cubic HyStart: slow-start overshoot ---\n");
  TablePrinter table({"variant", "retransmits", "sender delay (s)", "goodput (Mbps)"});
  for (const char* cc : {"cubic", "cubic-nohystart"}) {
    LegacyExperiment cfg;
    cfg.congestion_control = cc;
    cfg.num_flows = 1;
    cfg.duration_s = 30.0;
    cfg.seed = 3400;
    std::vector<FlowResult> flows = RunLegacyExperiment(cfg);
    table.AddRow({cc, TablePrinter::Fmt(static_cast<double>(flows[0].retransmits), 0),
                  TablePrinter::Fmt(flows[0].sender_delay_s, 3),
                  TablePrinter::Fmt(flows[0].goodput_mbps, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
}

void AblateAutotune() {
  std::printf("--- (5) send-buffer auto-tuning ratchet: the bufferbloat mechanism ---\n");
  TablePrinter table({"sndbuf policy", "sender delay (s)", "goodput (Mbps)", "final sndbuf"});
  for (bool autotune : {true, false}) {
    PathConfig path;
    Testbed bed(3500, path);
    TcpSocket::Config cfg;
    cfg.sndbuf_autotune = autotune;
    cfg.sndbuf_bytes = autotune ? cfg.sndbuf_bytes : 120000;  // ~2x BDP fixed
    Testbed::Flow flow = bed.CreateFlow(cfg);
    GroundTruthTracer::Config tcfg;
    tcfg.record_from = SimTime::FromNanos(3'000'000'000LL);
    GroundTruthTracer tracer(tcfg);
    flow.sender->telemetry().AttachSink(&tracer);
    flow.receiver->telemetry().AttachSink(&tracer);
    RawTcpSink sink(flow.sender);
    IperfApp app(&bed.loop(), &sink);
    SinkApp reader(flow.receiver);
    app.Start();
    reader.Start();
    bed.loop().RunUntil(SimTime::FromNanos(30'000'000'000LL));
    double goodput = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                              TimeDelta::FromSecondsInt(30))
                         .ToMbps();
    table.AddRow({autotune ? "Linux ratchet (2x cwnd)" : "fixed 120 KB",
                  TablePrinter::Fmt(tracer.sender_delay().mean(), 3),
                  TablePrinter::Fmt(goodput, 2),
                  TablePrinter::Fmt(static_cast<double>(flow.sender->sndbuf()) / 1024, 0) +
                      " KB"});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  std::printf("=== Ablations of DESIGN.md's called-out design choices ===\n\n");
  AblateTrackerPeriod();
  AblateDthr();
  AblateDelta();
  AblateHyStart();
  AblateAutotune();
  return 0;
}
