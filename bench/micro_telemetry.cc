// Telemetry-spine microbenchmark: the numbers behind BENCH_telemetry.json and
// the perf-smoke CI floor for src/telemetry/.
//
// Four workloads, each reported as a rate:
//   disabled_guard — the hot-path cost model: a bound FlowTelemetry with no
//                    consumers anywhere, checked 100M times. This is the
//                    branch every socket/estimator event pays when telemetry
//                    is off; it must stay in the hundreds of millions per
//                    second for the ≤2% end-to-end overhead budget to hold.
//   emit_sink      — 20M delay records emitted through the spine to one
//                    attached run-wide sink (record construction + fan-out).
//   emit_ring      — 20M records emitted into a per-flow flight recorder in
//                    steady-state overwrite (arena blocks warm).
//   sketch_add     — 10M pre-drawn heavy-tailed samples fed to the GK
//                    quantile sketch (amortized buffer flush + compress).
//
// Usage:
//   micro_telemetry                      print a JSON metrics object
//   micro_telemetry --floor <file.json>  also enforce min_telemetry_* floors
//                                        from the file (exit 1 on regression)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/arena.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/telemetry/quantile_sketch.h"
#include "src/telemetry/spine.h"

namespace element {
namespace {

double NowSeconds() {
  auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

template <typename Body>
double Timed(Body&& body) {
  double start = NowSeconds();
  body();
  return NowSeconds() - start;
}

// Forces the compiler to assume memory changed, so guard reads are not
// hoisted out of the benchmark loop.
inline void ClobberMemory() { asm volatile("" : : : "memory"); }

constexpr int kDisabledChecks = 100'000'000;
constexpr int kEmitRecords = 20'000'000;
constexpr int kSketchSamples = 10'000'000;

double BenchDisabledGuard() {
  telemetry::TelemetrySpine spine;
  telemetry::FlowTelemetry flow;
  flow.Bind(&spine, /*flow_id=*/1);
  uint64_t armed = 0;
  double secs = Timed([&] {
    for (int i = 0; i < kDisabledChecks; ++i) {
      if (flow.recording()) {
        ++armed;  // never taken: no sinks, no rings
      }
      ClobberMemory();
    }
  });
  if (armed != 0) {
    std::fprintf(stderr, "disabled_guard fired with no consumers\n");
    std::exit(1);
  }
  return kDisabledChecks / secs;
}

class CountingSink : public telemetry::RecordSink {
 public:
  void OnRecord(const telemetry::TraceRecord& r) override {
    ++records;
    bytes += r.size;
  }
  uint64_t records = 0;
  uint64_t bytes = 0;
};

double BenchEmitSink() {
  telemetry::TelemetrySpine spine;
  telemetry::FlowTelemetry flow;
  flow.Bind(&spine, /*flow_id=*/1);
  CountingSink sink;
  spine.AttachSink(&sink);
  double secs = Timed([&] {
    for (int i = 0; i < kEmitRecords; ++i) {
      if (flow.recording()) {
        flow.EmitAlways(telemetry::TraceRecord::Delay(
            flow.flow_id(), SimTime::FromNanos(i), 1e-3, 2e-3, 3e-3));
      }
    }
  });
  if (sink.records != static_cast<uint64_t>(kEmitRecords)) {
    std::fprintf(stderr, "emit_sink lost records: %llu\n",
                 static_cast<unsigned long long>(sink.records));
    std::exit(1);
  }
  return kEmitRecords / secs;
}

double BenchEmitRing() {
  FreeListArena arena;
  telemetry::TelemetrySpine spine(&arena);
  telemetry::FlowTelemetry flow;
  flow.Bind(&spine, /*flow_id=*/1);
  telemetry::TraceRing* ring = spine.EnsureRing(1, /*capacity_records=*/1024);
  double secs = Timed([&] {
    for (int i = 0; i < kEmitRecords; ++i) {
      if (flow.recording()) {
        flow.EmitAlways(telemetry::TraceRecord::Range(
            telemetry::RecordKind::kAppWrite, flow.flow_id(), SimTime::FromNanos(i),
            static_cast<uint64_t>(i), static_cast<uint64_t>(i) + 1448));
      }
    }
  });
  if (ring->total_pushed() != static_cast<uint64_t>(kEmitRecords)) {
    std::fprintf(stderr, "emit_ring lost records: %llu\n",
                 static_cast<unsigned long long>(ring->total_pushed()));
    std::exit(1);
  }
  return kEmitRecords / secs;
}

double BenchSketchAdd() {
  // Draw outside the timed region so the rate is Add() alone. Heavy-tailed
  // input keeps the summary churning instead of settling into one band.
  Rng rng(7);
  std::vector<double> samples;
  samples.reserve(kSketchSamples);
  for (int i = 0; i < kSketchSamples; ++i) {
    samples.push_back(rng.Pareto(1e-3, 1.2));
  }
  telemetry::QuantileSketch sketch;
  double secs = Timed([&] {
    for (double v : samples) {
      sketch.Add(v);
    }
  });
  if (sketch.count() != static_cast<uint64_t>(kSketchSamples)) {
    std::fprintf(stderr, "sketch_add lost samples\n");
    std::exit(1);
  }
  return kSketchSamples / secs;
}

int Run(const std::string& floor_path) {
  json::Value out = json::Value::Object();
  double guard = BenchDisabledGuard();
  double emit_sink = BenchEmitSink();
  double emit_ring = BenchEmitRing();
  double sketch = BenchSketchAdd();
  out.Set("telemetry_disabled_guard_checks_per_sec", json::Value::Number(guard));
  out.Set("telemetry_emit_sink_records_per_sec", json::Value::Number(emit_sink));
  out.Set("telemetry_emit_ring_records_per_sec", json::Value::Number(emit_ring));
  out.Set("telemetry_sketch_add_samples_per_sec", json::Value::Number(sketch));
  std::printf("%s\n", out.Dump(2).c_str());

  if (floor_path.empty()) {
    return 0;
  }
  std::ifstream in(floor_path);
  if (!in) {
    std::fprintf(stderr, "micro_telemetry: cannot open floor file %s\n", floor_path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  json::Value floor;
  std::string error;
  if (!json::Value::Parse(buf.str(), &floor, &error)) {
    std::fprintf(stderr, "micro_telemetry: bad floor file: %s\n", error.c_str());
    return 2;
  }
  int failures = 0;
  auto check = [&](const char* key, double measured) {
    const json::Value* min = floor.Find(key);
    if (min == nullptr) {
      return;
    }
    if (measured < min->AsDouble()) {
      std::fprintf(stderr, "micro_telemetry: %s = %.3g below floor %.3g\n", key, measured,
                   min->AsDouble());
      ++failures;
    }
  };
  check("min_telemetry_disabled_guard_checks_per_sec", guard);
  check("min_telemetry_emit_sink_records_per_sec", emit_sink);
  check("min_telemetry_emit_ring_records_per_sec", emit_ring);
  check("min_telemetry_sketch_add_samples_per_sec", sketch);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace element

int main(int argc, char** argv) {
  std::string floor_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--floor" && i + 1 < argc) {
      floor_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--floor floors.json]\n", argv[0]);
      return 2;
    }
  }
  return element::Run(floor_path);
}
