// Figure 15: sender-side host delay, RTT, and receiver-side host delay for
// Cubic, Vegas, and BBR, each with and without ELEMENT. Single flow, wired
// 50 Mbps / 50 ms RTT.
//
// Expected shape: Cubic and BBR carry large sender-side delays (BBR's
// cwnd_gain x ratcheting sndbuf); Vegas is already low; ELEMENT removes the
// endhost latency for all three.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"

using namespace element;

int main() {
  std::printf("=== Figure 15: endhost delay of latency-optimized TCPs +/- ELEMENT ===\n");
  std::printf("Setup: single flow, 50 Mbps / 50 ms RTT wired, 40 s\n\n");

  const char* kCcs[] = {"cubic", "vegas", "bbr"};
  TablePrinter table({"protocol", "sender delay (s)", "RTT (s)", "receiver delay (s)",
                      "tput (Mbps)"});
  std::map<std::string, FlowResult> results;
  uint64_t seed = 900;
  for (const char* cc : kCcs) {
    for (bool with_element : {false, true}) {
      LegacyExperiment cfg;
      cfg.path.rate = DataRate::Mbps(50);
      cfg.path.one_way_delay = TimeDelta::FromMillis(25);
      cfg.path.queue_limit_packets = 250;
      cfg.congestion_control = cc;
      cfg.num_flows = 1;
      cfg.duration_s = 40.0;
      cfg.element_on_first = with_element;
      cfg.seed = seed++;
      std::vector<FlowResult> flows = RunLegacyExperiment(cfg);
      const FlowResult& f = flows[0];
      std::string name = std::string(cc) + (with_element ? "+ELEMENT" : "");
      results[name] = f;
      double rtt_s = 2 * 0.025 + f.network_delay_s - 0.025;  // prop + queueing, both ways
      table.AddRow({name, TablePrinter::Fmt(f.sender_delay_s, 3), TablePrinter::Fmt(rtt_s, 3),
                    TablePrinter::Fmt(f.receiver_delay_s, 4),
                    TablePrinter::Fmt(f.goodput_mbps, 2)});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  bool shape_ok = true;
  // Vegas keeps a smaller sender-side delay than Cubic and BBR.
  if (results["vegas"].sender_delay_s > results["cubic"].sender_delay_s * 0.6 ||
      results["vegas"].sender_delay_s > results["bbr"].sender_delay_s * 0.9) {
    shape_ok = false;
  }
  // BBR does NOT remove endhost latency: clearly above Vegas. (The paper's
  // Linux 4.12 BBR was even worse than Cubic — its footnote 5 attributes that
  // to the stack's buffer auto-tuning; our BBR lands between Vegas and Cubic.)
  if (results["bbr"].sender_delay_s < results["vegas"].sender_delay_s * 1.2) {
    shape_ok = false;
  }
  // ELEMENT reduces the sender delay for every protocol.
  for (const char* cc : kCcs) {
    if (results[std::string(cc) + "+ELEMENT"].sender_delay_s >
        results[cc].sender_delay_s * 1.05) {
      shape_ok = false;
    }
  }
  std::printf("Paper shape check: Vegas low / Cubic & BBR high endhost delay; ELEMENT\n"
              "removes the endhost latency on top of each protocol.\nSHAPE %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
