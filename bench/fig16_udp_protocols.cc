// Figure 16: ELEMENT vs UDP-based low-latency protocols (Sprout-like,
// Verus-like), each running one "low-latency" flow against two background
// TCP Cubic flows.
//
// Expected shape: Sprout/Verus achieve very low delay but poor throughput
// fairness (well under fair share); ELEMENT's delay is slightly higher but
// comparable, and it keeps TCP's fair throughput share.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/interposer.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"
#include "src/udpproto/low_latency_protocols.h"

#include "bench/harness.h"

using namespace element;

namespace {

struct Row {
  std::string name;
  double low_latency_delay_s = 0.0;
  double low_latency_tput = 0.0;
  double bg1_delay_s = 0.0;
  double bg1_tput = 0.0;
  double bg2_delay_s = 0.0;
  double bg2_tput = 0.0;
};

Row RunOne(uint64_t seed, const std::string& protocol) {
  PathConfig path;
  path.rate = DataRate::Mbps(9);
  path.one_way_delay = TimeDelta::FromMillis(25);
  path.queue_limit_packets = 100;
  Testbed bed(seed, path);

  // Two background Cubic flows with ground-truth end-to-end delay.
  struct Bg {
    Testbed::Flow flow;
    std::unique_ptr<GroundTruthTracer> tracer;
    std::unique_ptr<RawTcpSink> sink;
    std::unique_ptr<IperfApp> app;
    std::unique_ptr<SinkApp> reader;
  };
  std::vector<Bg> bgs(2);
  for (Bg& bg : bgs) {
    bg.flow = bed.CreateFlow(TcpSocket::Config{});
    bg.tracer = std::make_unique<GroundTruthTracer>();
    bg.flow.sender->telemetry().AttachSink(bg.tracer.get());
    bg.flow.receiver->telemetry().AttachSink(bg.tracer.get());
    bg.sink = std::make_unique<RawTcpSink>(bg.flow.sender);
    bg.app = std::make_unique<IperfApp>(&bed.loop(), bg.sink.get());
    bg.reader = std::make_unique<SinkApp>(bg.flow.receiver);
    bg.app->Start();
    bg.reader->Start();
  }

  std::unique_ptr<SproutLikeFlow> sprout;
  std::unique_ptr<VerusLikeFlow> verus;
  Testbed::Flow em_flow;
  std::unique_ptr<GroundTruthTracer> em_tracer;
  std::unique_ptr<InterposedSink> em_sink;
  std::unique_ptr<IperfApp> em_app;
  std::unique_ptr<SinkApp> em_reader;
  if (protocol == "Sprout") {
    sprout = std::make_unique<SproutLikeFlow>(&bed.loop(), &bed.path());
    sprout->Start();
  } else if (protocol == "Verus") {
    verus = std::make_unique<VerusLikeFlow>(&bed.loop(), &bed.path());
    verus->Start();
  } else {
    em_flow = bed.CreateFlow(TcpSocket::Config{});
    em_tracer = std::make_unique<GroundTruthTracer>();
    em_flow.sender->telemetry().AttachSink(em_tracer.get());
    em_flow.receiver->telemetry().AttachSink(em_tracer.get());
    em_sink = std::make_unique<InterposedSink>(&bed.loop(), em_flow.sender);
    em_app = std::make_unique<IperfApp>(&bed.loop(), em_sink.get());
    em_reader = std::make_unique<SinkApp>(em_flow.receiver);
    em_app->Start();
    em_reader->Start();
  }

  const double kDuration = 60.0;
  bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(kDuration * 1e9)));

  Row row;
  row.name = protocol;
  auto tput = [&](uint64_t bytes) {
    return RateOver(static_cast<int64_t>(bytes), TimeDelta::FromSeconds(kDuration)).ToMbps();
  };
  if (sprout) {
    row.low_latency_delay_s = sprout->one_way_delays().mean();
    row.low_latency_tput = tput(sprout->delivered_bytes());
  } else if (verus) {
    row.low_latency_delay_s = verus->one_way_delays().mean();
    row.low_latency_tput = tput(verus->delivered_bytes());
  } else {
    row.low_latency_delay_s = em_tracer->end_to_end_delay().mean();
    row.low_latency_tput = tput(em_flow.receiver->app_bytes_read());
  }
  row.bg1_delay_s = bgs[0].tracer->end_to_end_delay().mean();
  row.bg1_tput = tput(bgs[0].flow.receiver->app_bytes_read());
  row.bg2_delay_s = bgs[1].tracer->end_to_end_delay().mean();
  row.bg2_tput = tput(bgs[1].flow.receiver->app_bytes_read());
  return row;
}

}  // namespace

int main() {
  std::printf("=== Figure 16: UDP low-latency protocols vs ELEMENT ===\n");
  std::printf("Setup: 1 low-latency flow + 2 background Cubic flows, 9 Mbps / 50 ms RTT, 60 s\n\n");

  std::vector<Row> rows;
  rows.push_back(RunOne(1001, "Sprout"));
  rows.push_back(RunOne(1002, "Verus"));
  rows.push_back(RunOne(1003, "ELEMENT"));

  TablePrinter delay_table({"protocol", "bg flow 1 delay(s)", "bg flow 2 delay(s)",
                            "low-latency flow delay(s)"});
  TablePrinter tput_table({"protocol", "bg flow 1 (Mbps)", "bg flow 2 (Mbps)",
                           "low-latency flow (Mbps)"});
  for (const Row& r : rows) {
    delay_table.AddRow({r.name, TablePrinter::Fmt(r.bg1_delay_s, 3),
                        TablePrinter::Fmt(r.bg2_delay_s, 3),
                        TablePrinter::Fmt(r.low_latency_delay_s, 3)});
    tput_table.AddRow({r.name, TablePrinter::Fmt(r.bg1_tput, 2),
                       TablePrinter::Fmt(r.bg2_tput, 2),
                       TablePrinter::Fmt(r.low_latency_tput, 2)});
  }
  std::printf("--- (a) delay ---\n%s\n", delay_table.Render().c_str());
  std::printf("--- (b) throughput ---\n%s\n", tput_table.Render().c_str());

  const Row& sprout = rows[0];
  const Row& verus = rows[1];
  const Row& elem = rows[2];
  double fair_share = 9.0 / 3.0;
  bool shape_ok = true;
  // Sprout/Verus: very low delay but clearly below fair share.
  for (const Row* r : {&sprout, &verus}) {
    if (r->low_latency_delay_s > r->bg1_delay_s * 0.5) {
      shape_ok = false;
    }
    if (r->low_latency_tput > fair_share * 0.85) {
      shape_ok = false;
    }
  }
  // ELEMENT: delay far below its background flows (slightly above the UDP
  // protocols is fine), throughput near fair share.
  if (elem.low_latency_delay_s > elem.bg1_delay_s * 0.7) {
    shape_ok = false;
  }
  if (elem.low_latency_tput < fair_share * 0.7) {
    shape_ok = false;
  }
  if (elem.low_latency_tput < sprout.low_latency_tput ||
      elem.low_latency_tput < verus.low_latency_tput) {
    shape_ok = false;
  }
  std::printf("Paper shape check: Sprout/Verus very low delay, poor fairness; ELEMENT\n"
              "comparable (slightly higher) delay with a fair TCP share.\nSHAPE %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
