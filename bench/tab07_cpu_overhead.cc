// Section 7 "CPU overhead of ELEMENT": the paper measures ~4% CPU overhead
// with 40 traffic generators on a 1 Gbps / 50 ms path. Here the equivalent is
// the wall-clock cost of simulating the same scenario with and without
// ELEMENT attached, plus microbenchmarks of the per-call costs that make up
// that overhead (getsockopt polling, record matching, gating checks).

#include <benchmark/benchmark.h>

#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/delay_estimator.h"
#include "src/element/interposer.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

void RunManyFlows(bool with_element, int flows, double seconds) {
  PathConfig path;
  path.rate = DataRate::Mbps(1000);
  path.one_way_delay = TimeDelta::FromMillis(25);
  path.queue_limit_packets = 2000;
  Testbed bed(1234, path);
  std::vector<Testbed::Flow> fs;
  std::vector<std::unique_ptr<ByteSink>> sinks;
  std::vector<std::unique_ptr<IperfApp>> apps;
  std::vector<std::unique_ptr<SinkApp>> readers;
  for (int i = 0; i < flows; ++i) {
    fs.push_back(bed.CreateFlow(TcpSocket::Config{}));
    if (with_element) {
      sinks.push_back(std::make_unique<InterposedSink>(&bed.loop(), fs.back().sender));
    } else {
      sinks.push_back(std::make_unique<RawTcpSink>(fs.back().sender));
    }
    apps.push_back(std::make_unique<IperfApp>(&bed.loop(), sinks.back().get()));
    readers.push_back(std::make_unique<SinkApp>(fs.back().receiver));
    apps.back()->Start();
    readers.back()->Start();
  }
  bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(seconds * 1e9)));
  benchmark::DoNotOptimize(bed.loop().processed_events());
}

void BM_FortyFlowsPlain(benchmark::State& state) {
  for (auto _ : state) {
    RunManyFlows(false, 40, 2.0);
  }
}
BENCHMARK(BM_FortyFlowsPlain)->Unit(benchmark::kMillisecond);

void BM_FortyFlowsWithElement(benchmark::State& state) {
  for (auto _ : state) {
    RunManyFlows(true, 40, 2.0);
  }
}
BENCHMARK(BM_FortyFlowsWithElement)->Unit(benchmark::kMillisecond);

// Per-call cost of getsockopt(TCP_INFO) (the dominant per-poll cost in §7).
void BM_GetTcpInfo(benchmark::State& state) {
  PathConfig path;
  Testbed bed(1, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  bed.loop().RunUntil(SimTime::FromNanos(500'000'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.sender->GetTcpInfo());
  }
}
BENCHMARK(BM_GetTcpInfo);

// §7's shared-page optimization: polling an unchanged connection is nearly
// free (version check only), vs. re-marshalling the full struct.
void BM_SharedInfoPagePoll(benchmark::State& state) {
  PathConfig path;
  Testbed bed(1, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  bed.loop().RunUntil(SimTime::FromNanos(500'000'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(&flow.sender->SharedInfoPage());
  }
}
BENCHMARK(BM_SharedInfoPagePoll);

// Sender estimator: one write record + one tcp_info sample that consumes it.
void BM_SenderEstimatorMatch(benchmark::State& state) {
  SenderDelayEstimator est;
  TcpInfoData info;
  info.tcpi_snd_mss = 1448;
  uint64_t seq = 0;
  SimTime t = SimTime::Zero();
  for (auto _ : state) {
    seq += 1448;
    t += TimeDelta::FromMicros(100);
    est.OnAppSend(seq, t);
    info.tcpi_bytes_acked = seq;
    est.OnTcpInfoSample(info, t);
  }
  benchmark::DoNotOptimize(est.delay_samples().count());
}
BENCHMARK(BM_SenderEstimatorMatch);

// Receiver estimator: record + matching read.
void BM_ReceiverEstimatorMatch(benchmark::State& state) {
  ReceiverDelayEstimator est;
  TcpInfoData info;
  info.tcpi_rcv_mss = 1448;
  uint64_t segs = 0;
  SimTime t = SimTime::Zero();
  for (auto _ : state) {
    ++segs;
    t += TimeDelta::FromMicros(100);
    info.tcpi_segs_in = segs;
    est.OnTcpInfoSample(info, t);
    est.OnAppReceive(segs * 1448 - 700, t, info);
  }
  benchmark::DoNotOptimize(est.delay_samples().count());
}
BENCHMARK(BM_ReceiverEstimatorMatch);

}  // namespace
}  // namespace element

BENCHMARK_MAIN();
