// Figure 6: ground truth vs ELEMENT delay estimates over time on a TCP Cubic
// flow (10 Mbps, 50 ms RTT), plus the CDF of the estimation error (6c).

#include <cstdio>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"
#include "src/element/estimation_error.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

#include "bench/harness.h"

using namespace element;

int main() {
  std::printf("=== Figure 6: ground truth vs ELEMENT estimates over time ===\n");
  std::printf("Setup: single TCP Cubic flow, 10 Mbps, 50 ms RTT, 40 s\n\n");

  PathConfig path;
  path.rate = DataRate::Mbps(10);
  path.one_way_delay = TimeDelta::FromMillis(25);
  path.queue_limit_packets = 100;

  Testbed bed(21, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  ElementSocket em_snd(&bed.loop(), flow.sender, opt);
  ElementSocket em_rcv(&bed.loop(), flow.receiver, opt);
  struct EmSink : ByteSink {
    ElementSocket* em;
    size_t Write(size_t n) override {
      RetInfo r = em->Send(n);
      return r.size > 0 ? static_cast<size_t>(r.size) : 0;
    }
    void SetWritableCallback(std::function<void()> cb) override {
      em->SetReadyToSendCallback(std::move(cb));
    }
    TcpSocket* socket() override { return em->socket(); }
  } sink;
  sink.em = &em_snd;
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(&em_rcv);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(SimTime::FromNanos(40'000'000'000LL));

  // 6a/6b: the time series, printed at 1 s sampling.
  std::printf("--- Fig 6a: sender-side delay series (s) ---\n");
  std::printf("%-8s %-12s %-12s\n", "t(s)", "ELEMENT", "Actual");
  for (int t = 1; t <= 40; ++t) {
    SimTime at = SimTime::FromNanos(static_cast<int64_t>(t) * 1'000'000'000LL);
    double est = 0;
    double gt = 0;
    em_snd.sender_estimator().delay_series().InterpolateAt(at, &est);
    tracer.sender_delay_series().InterpolateAt(at, &gt);
    std::printf("%-8d %-12.4f %-12.4f\n", t, est, gt);
  }
  std::printf("\n--- Fig 6b: receiver-side delay series (s) ---\n");
  std::printf("%-8s %-12s %-12s\n", "t(s)", "ELEMENT", "Actual");
  for (int t = 1; t <= 40; ++t) {
    SimTime at = SimTime::FromNanos(static_cast<int64_t>(t) * 1'000'000'000LL);
    double est = 0;
    double gt = 0;
    em_rcv.receiver_estimator().delay_series().InterpolateAt(at, &est);
    tracer.receiver_delay_series().InterpolateAt(at, &gt);
    std::printf("%-8d %-12.4f %-12.4f\n", t, est, gt);
  }

  AccuracyRun acc;
  acc.sender =
      ScoreEstimates(em_snd.sender_estimator().delay_series(), tracer.sender_delay_series());
  acc.receiver = ScoreEstimates(em_rcv.receiver_estimator().delay_series(),
                                tracer.receiver_delay_series());
  const AccuracyResult& snd_acc = acc.sender;
  const AccuracyResult& rcv_acc = acc.receiver;

  std::printf("\n--- Fig 6c: estimation-error CDF (s) ---\n");
  PrintErrorCdfRows(acc, "sender error", "receiver error");

  std::printf("\nsender accuracy:   %.1f%% (median |err| %.4f s, n=%zu)\n",
              snd_acc.accuracy * 100, snd_acc.median_abs_error_s, snd_acc.compared_samples);
  std::printf("receiver accuracy: %.1f%% (median |err| %.4f s, n=%zu)\n",
              rcv_acc.accuracy * 100, rcv_acc.median_abs_error_s, rcv_acc.compared_samples);

  bool ok = snd_acc.accuracy > 0.90 && rcv_acc.accuracy > 0.85;
  std::printf("Paper shape check: ELEMENT tracks ground truth within the paper's >90%%\n"
              "accuracy claim; error CDF concentrated well below 0.25 s.\nSHAPE %s\n",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
