// Figure 8: ELEMENT's estimation accuracy under dynamic network conditions:
//   (a) bandwidth alternating between 10 and 50 Mbps every 20 s,
//   (b) three background flows joining, one every 20 s.
//
// Expected shape: accuracy holds in both; slightly better with background
// traffic than with hard bandwidth swings.

#include <cstdio>

#include "bench/harness.h"

using namespace element;

int main() {
  std::printf("=== Figure 8: estimation-error CDFs in dynamic networks ===\n\n");

  // (a) Dynamic bandwidth: 10 <-> 50 Mbps every 20 s.
  PathConfig dyn;
  dyn.link = LinkType::kStepped;
  dyn.steps = {{TimeDelta::FromSecondsInt(20), DataRate::Mbps(10)},
               {TimeDelta::FromSecondsInt(20), DataRate::Mbps(50)}};
  dyn.one_way_delay = TimeDelta::FromMillis(25);
  dyn.queue_limit_packets = 200;
  AccuracyRun dyn_run = RunAccuracyExperiment(401, dyn, 80.0);

  // (b) Background traffic: one new Cubic flow every 20 s (3 total).
  PathConfig bg;
  bg.rate = DataRate::Mbps(50);
  bg.one_way_delay = TimeDelta::FromMillis(25);
  bg.queue_limit_packets = 200;
  AccuracyRun bg_run = RunAccuracyExperiment(402, bg, 80.0, TimeDelta::FromMillis(10),
                                             /*background_flows=*/3);

  TablePrinter table({"scenario", "side", "err p50 (s)", "err p90 (s)", "err p99 (s)",
                      "accuracy"});
  AddAccuracyRows(&table, "(a) dynamic bandwidth", dyn_run);
  AddAccuracyRows(&table, "(b) background traffic", bg_run);
  std::printf("%s\n", table.Render().c_str());

  std::printf("--- full error CDFs ---\n");
  PrintErrorCdfRows(dyn_run, "dyn-bw sender", "dyn-bw receiver");
  PrintErrorCdfRows(bg_run, "bg sender", "bg receiver");

  bool shape_ok = dyn_run.sender.accuracy > 0.80 && bg_run.sender.accuracy > 0.80 &&
                  bg_run.sender.accuracy >= dyn_run.sender.accuracy - 0.10;
  std::printf("\nPaper shape check: accurate in both dynamic scenarios; background-traffic\n"
              "case at least as accurate as the bandwidth-swing case.\nSHAPE %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
