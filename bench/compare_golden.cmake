# Runs BINARY and byte-compares its stdout against GOLDEN. Used by the
# golden_fig* ctest entries to pin figure outputs across refactors of the
# event core: any ordering or RNG-consumption change shows up as a diff.
execute_process(COMMAND ${BINARY} OUTPUT_VARIABLE actual RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} exited with ${rc}")
endif()
file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
  file(WRITE ${GOLDEN}.actual "${actual}")
  message(FATAL_ERROR "output of ${BINARY} differs from golden ${GOLDEN}; "
                      "actual output written to ${GOLDEN}.actual")
endif()
