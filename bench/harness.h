// Shared printing helpers for the per-figure benchmark binaries. The
// experiment runners themselves live in src/runner/experiment.h (so the fleet
// executor can drive them too); this layer owns the figure-facing formatting
// that used to be copy-pasted across bench/fig*.cc.

#ifndef ELEMENT_BENCH_HARNESS_H_
#define ELEMENT_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/runner/experiment.h"

namespace element {

// CDF quantiles used when reproducing the paper's CDF figures as rows.
extern const std::vector<double> kCdfQuantiles;

// Mean delay decomposition across a scenario's flows, in seconds.
struct MeanDelays {
  double sender_s = 0.0;
  double network_s = 0.0;
  double receiver_s = 0.0;
  double total_s() const { return sender_s + network_s + receiver_s; }
};
MeanDelays AverageDelays(const std::vector<FlowResult>& flows);

// The Fig. 3-style table row: per-component mean delays in milliseconds.
void AddDelayCompositionRow(TablePrinter* table, const std::string& network,
                            const std::string& qdisc, const MeanDelays& delays);

// The Fig. 7/8-style pair of rows: sender then receiver error quantiles plus
// the scalar accuracy summary.
void AddAccuracyRows(TablePrinter* table, const std::string& name, const AccuracyRun& run);

// The Fig. 6c/8-style full error CDF rows for both sides.
void PrintErrorCdfRows(const AccuracyRun& run, const std::string& sender_label,
                       const std::string& receiver_label);

}  // namespace element

#endif  // ELEMENT_BENCH_HARNESS_H_
