// Shared experiment runners for the per-figure benchmark binaries. Each
// bench binary configures one of these experiments with the parameters of a
// specific table/figure from the paper and prints the corresponding rows.

#ifndef ELEMENT_BENCH_HARNESS_H_
#define ELEMENT_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/element/estimation_error.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

namespace element {

struct FlowResult {
  std::string label;
  double goodput_mbps = 0.0;
  double sender_delay_s = 0.0;
  double network_delay_s = 0.0;
  double receiver_delay_s = 0.0;
  double e2e_delay_s = 0.0;
  // End-to-end delay above the observed floor — the paper's "relative delay".
  double relative_delay_s = 0.0;
  double sender_delay_stdev_s = 0.0;
  double receiver_delay_stdev_s = 0.0;
  uint64_t retransmits = 0;
};

struct LegacyExperiment {
  PathConfig path;
  std::string congestion_control = "cubic";
  int num_flows = 3;
  // Flow 0 runs through the ELEMENT interposer (LD_PRELOAD analogue).
  bool element_on_first = false;
  bool element_wireless = false;  // LTE/WiFi mode of Algorithm 3
  bool sender_at_client = true;   // false = "download" over the reverse pipe
  double duration_s = 30.0;
  double warmup_s = 3.0;  // excluded from delay statistics
  uint64_t seed = 1;
};

// Runs N iperf-style flows over one path; returns per-flow results.
std::vector<FlowResult> RunLegacyExperiment(const LegacyExperiment& cfg);

struct AccuracyRun {
  AccuracyResult sender;
  AccuracyResult receiver;
  GroundTruthTracer::Composition composition;
  double goodput_mbps = 0.0;
};

// One measured (minimization off) flow: ELEMENT estimates vs ground truth.
AccuracyRun RunAccuracyExperiment(uint64_t seed, const PathConfig& path, double duration_s,
                                  TimeDelta tracker_period = TimeDelta::FromMillis(10),
                                  int background_flows = 0);

// CDF quantiles used when reproducing the paper's CDF figures as rows.
extern const std::vector<double> kCdfQuantiles;

std::string DescribeQdisc(QdiscType type);

}  // namespace element

#endif  // ELEMENT_BENCH_HARNESS_H_
