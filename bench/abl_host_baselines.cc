// Extension study: host-based bufferbloat mitigations from the paper's
// related work (§6) against ELEMENT, on the cellular profile where the
// problem is worst:
//   - plain Cubic (the bloated baseline),
//   - a fixed small send buffer (send-buffer limiting, ref [29]),
//   - DRWA-style receiver-window moderation (ref [37]; needs receiver mods),
//   - ELEMENT (sender-side, user-level, no kernel or peer changes).
//
// Expected shape: each mitigation only reaches the buffer it controls — the
// static sndbuf and ELEMENT cut the sender-side delay (the static one at a
// throughput cost on a variable link), while DRWA can only bound the network
// queue and leaves (even worsens) the sender's backlog. ELEMENT needs no
// kernel tuning and no receiver cooperation.

#include <cstdio>
#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/interposer.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

#include "bench/harness.h"

using namespace element;

namespace {

struct Result {
  double sender_delay_s;
  double network_delay_s;
  double goodput_mbps;
};

Result RunOne(uint64_t seed, const char* variant) {
  PathConfig path = LteProfile(/*upload=*/false);
  Testbed bed(seed, path);
  TcpSocket::Config cfg;
  if (std::string(variant) == "small-sndbuf") {
    cfg.sndbuf_autotune = false;
    cfg.sndbuf_bytes = 120000;  // ~RTT worth at the mean rate
  }
  if (std::string(variant) == "drwa") {
    cfg.drwa_rcv_window_moderation = true;
  }
  Testbed::Flow flow = bed.CreateFlow(cfg);
  GroundTruthTracer::Config tcfg;
  tcfg.record_from = SimTime::FromNanos(5'000'000'000LL);
  GroundTruthTracer tracer(tcfg);
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  std::unique_ptr<ByteSink> sink;
  if (std::string(variant) == "element") {
    sink = std::make_unique<InterposedSink>(&bed.loop(), flow.sender, /*is_wireless=*/true);
  } else {
    sink = std::make_unique<RawTcpSink>(flow.sender);
  }
  IperfApp app(&bed.loop(), sink.get());
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  const double kDuration = 40.0;
  bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(kDuration * 1e9)));
  Result r;
  r.sender_delay_s = tracer.sender_delay().mean();
  r.network_delay_s =
      std::max(0.0, tracer.network_delay().mean() - path.one_way_delay.ToSeconds());
  r.goodput_mbps = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                            TimeDelta::FromSeconds(kDuration))
                       .ToMbps();
  return r;
}

}  // namespace

int main() {
  std::printf("=== Host-based bufferbloat mitigations vs ELEMENT (LTE download) ===\n");
  std::printf("Setup: single flow, LTE profile (variable ~25 Mbps, deep buffers), 40 s\n\n");

  struct Variant {
    const char* key;
    const char* label;
  };
  const Variant variants[] = {
      {"plain", "TCP Cubic (baseline)"},
      {"small-sndbuf", "fixed small sndbuf [29]"},
      {"drwa", "DRWA rwnd moderation [37]"},
      {"element", "ELEMENT (sender-side, user-level)"},
  };
  TablePrinter table({"variant", "sender delay (s)", "network queueing (s)",
                      "goodput (Mbps)", "requires"});
  Result results[4];
  int i = 0;
  for (const Variant& v : variants) {
    results[i] = RunOne(6000 + static_cast<uint64_t>(i), v.key);
    const char* requires_what = i == 0   ? "-"
                                : i == 1 ? "sender kernel tuning"
                                : i == 2 ? "receiver modification"
                                         : "nothing (LD_PRELOAD)";
    table.AddRow({v.label, TablePrinter::Fmt(results[i].sender_delay_s, 3),
                  TablePrinter::Fmt(results[i].network_delay_s, 3),
                  TablePrinter::Fmt(results[i].goodput_mbps, 2), requires_what});
    ++i;
  }
  std::printf("%s\n", table.Render().c_str());

  const Result& plain = results[0];
  const Result& small = results[1];
  const Result& drwa = results[2];
  const Result& elem = results[3];
  bool shape_ok = true;
  // Each mitigation attacks the buffer it can reach: the static sndbuf and
  // ELEMENT cut the *sender* delay; DRWA cuts the *network* queueing only.
  if (small.sender_delay_s > plain.sender_delay_s * 0.3) {
    shape_ok = false;
  }
  if (elem.sender_delay_s > plain.sender_delay_s * 0.6) {
    shape_ok = false;
  }
  if (drwa.network_delay_s > plain.network_delay_s * 0.7) {
    shape_ok = false;
  }
  if (drwa.sender_delay_s < plain.sender_delay_s * 0.5) {
    shape_ok = false;  // ...but a receiver cannot fix the sender's buffer
  }
  // The static buffer pays in throughput on this variable link; ELEMENT not.
  if (small.goodput_mbps > plain.goodput_mbps * 0.85) {
    shape_ok = false;
  }
  if (elem.goodput_mbps < plain.goodput_mbps * 0.9) {
    shape_ok = false;
  }
  std::printf(
      "Shape check: the fixed sndbuf fixes sender delay but costs throughput on a\n"
      "variable link; DRWA (receiver side) fixes only the network queue; ELEMENT\n"
      "fixes the sender delay at full throughput with no kernel/peer changes —\n"
      "the paper's §6 positioning.\nSHAPE %s\n",
      shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
