// Figure 18: 360-degree VR streaming with and without ELEMENT, over plain
// Cubic (a) and Cubic behind a CoDel bottleneck (b). Reports the frame-delay
// CDF and throughput-over-frame-index series the paper plots.
//
// Expected shape: without ELEMENT >40% (Cubic) / ~10% (Cubic+CoDel) of frames
// miss the 200 ms deadline; with ELEMENT almost none do, at a steady rate.

#include <cstdio>
#include <memory>

#include "src/apps/vr_app.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/flow_meter.h"

#include "bench/harness.h"

using namespace element;

namespace {

struct VrResult {
  SampleSet frame_delays;
  double miss_fraction = 0.0;
  uint64_t frames = 0;
  TimeSeries throughput;
};

VrResult RunOne(uint64_t seed, bool with_element, QdiscType qdisc) {
  PathConfig path;
  path.rate = DataRate::Mbps(50);
  path.one_way_delay = TimeDelta::FromMillis(10);
  path.qdisc = qdisc;
  path.queue_limit_packets = 80;
  Testbed bed(seed, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  std::unique_ptr<ElementSocket> em;
  if (with_element) {
    ElementSocket::Options opt;
    em = std::make_unique<ElementSocket>(&bed.loop(), flow.sender, opt);
  }
  VrConfig cfg;
  VrServer server(&bed.loop(), flow.sender, em.get(), cfg);
  VrClient client(&bed.loop(), flow.receiver, &server, cfg);
  server.Start();
  client.Start();
  FlowMeter meter(&bed.loop(), flow.receiver, TimeDelta::FromMillis(250));
  meter.Start();
  bed.loop().RunUntil(SimTime::FromNanos(30'000'000'000LL));
  VrResult r;
  r.frame_delays = client.frame_delays();
  r.miss_fraction = client.DeadlineMissFraction();
  r.frames = client.frames_received();
  r.throughput = meter.throughput_mbps();
  return r;
}

void PrintCase(const char* name, const VrResult& plain, const VrResult& with_em) {
  std::printf("--- %s ---\n", name);
  std::printf("frame-delay CDF (ms):\n%-10s %-14s %-14s\n", "quantile", "plain", "+ELEMENT");
  for (double q : kCdfQuantiles) {
    std::printf("p%-9.1f %-14.1f %-14.1f\n", q * 100, plain.frame_delays.Quantile(q) * 1000,
                with_em.frame_delays.Quantile(q) * 1000);
  }
  std::printf("deadline (200 ms) miss fraction: plain %.1f%% vs +ELEMENT %.1f%%\n",
              plain.miss_fraction * 100, with_em.miss_fraction * 100);
  std::printf("frames delivered: plain %lu vs +ELEMENT %lu\n",
              static_cast<unsigned long>(plain.frames),
              static_cast<unsigned long>(with_em.frames));
  RunningStats ps = plain.throughput.Summary();
  RunningStats es = with_em.throughput.Summary();
  std::printf("throughput Mbps (mean/stdev): plain %.1f/%.1f vs +ELEMENT %.1f/%.1f\n\n",
              ps.mean(), ps.Stdev(), es.mean(), es.Stdev());
}

}  // namespace

int main() {
  std::printf("=== Figure 18: VR streaming frame delay & throughput ===\n");
  std::printf("Setup: 60 fps 360-video, 200 ms deadline, 50 Mbps / 20 ms RTT, 30 s\n\n");

  VrResult cubic_plain = RunOne(1101, false, QdiscType::kPfifoFast);
  VrResult cubic_em = RunOne(1102, true, QdiscType::kPfifoFast);
  PrintCase("(a) TCP Cubic", cubic_plain, cubic_em);

  VrResult codel_plain = RunOne(1103, false, QdiscType::kCoDel);
  VrResult codel_em = RunOne(1104, true, QdiscType::kCoDel);
  PrintCase("(b) TCP Cubic + CoDel", codel_plain, codel_em);

  bool shape_ok = true;
  if (cubic_plain.miss_fraction < 0.30) {
    shape_ok = false;  // paper: >40% misses without ELEMENT
  }
  if (codel_plain.miss_fraction < 0.08) {
    shape_ok = false;  // AQM alone is not sufficient either...
  }
  if (cubic_em.miss_fraction > 0.05 || codel_em.miss_fraction > 0.05) {
    shape_ok = false;  // ...only ELEMENT nearly eliminates misses
  }
  std::printf(
      "Paper shape check: without ELEMENT a large share of frames miss the 200 ms\n"
      "deadline (paper: >40%% Cubic, ~10%% Cubic+CoDel); ELEMENT nearly eliminates\n"
      "misses at steady throughput. Deviation note: in this reproduction CoDel does\n"
      "not beat plain Cubic because the *sender-side* buffer (untouchable by any\n"
      "AQM) dominates the frame delay — which is the paper's own thesis.\nSHAPE %s\n",
      shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
