// Figure 2: delay composition of a TCP Cubic flow under pfifo_fast.
// Setup (paper §2.1): 3 Cubic flows, 10 Mbps bottleneck, 25 ms one-way delay,
// Linux default queueing discipline and send-buffer auto-tuning.
//
// Expected shape: the sender's system delay dominates the total; network
// delay is second; receiver delay is small.

#include <cstdio>

#include "bench/harness.h"

using namespace element;

int main() {
  std::printf("=== Figure 2: delay composition of a TCP flow (pfifo_fast) ===\n");
  std::printf("Setup: 3 TCP Cubic flows, 10 Mbps, 25 ms one-way delay\n\n");

  LegacyExperiment cfg;
  cfg.path.rate = DataRate::Mbps(10);
  cfg.path.one_way_delay = TimeDelta::FromMillis(25);
  cfg.path.qdisc = QdiscType::kPfifoFast;
  cfg.path.queue_limit_packets = 100;
  cfg.num_flows = 3;
  cfg.duration_s = 60.0;
  cfg.seed = 42;

  std::vector<FlowResult> flows = RunLegacyExperiment(cfg);

  TablePrinter table({"component", "delay (ms)", "share"});
  // The paper plots one representative flow; we average across the three.
  double snd = 0;
  double net = 0;
  double rcv = 0;
  for (const FlowResult& f : flows) {
    snd += f.sender_delay_s / flows.size();
    net += f.network_delay_s / flows.size();
    rcv += f.receiver_delay_s / flows.size();
  }
  double total = snd + net + rcv;
  table.AddRow({"Sender's system delay", TablePrinter::Fmt(snd * 1000, 1),
                TablePrinter::Fmt(100 * snd / total, 1) + "%"});
  table.AddRow({"Network delay", TablePrinter::Fmt(net * 1000, 1),
                TablePrinter::Fmt(100 * net / total, 1) + "%"});
  table.AddRow({"Receiver's system delay", TablePrinter::Fmt(rcv * 1000, 1),
                TablePrinter::Fmt(100 * rcv / total, 1) + "%"});
  table.AddRow({"Total", TablePrinter::Fmt(total * 1000, 1), "100%"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Per-flow goodput (Mbps):");
  for (const FlowResult& f : flows) {
    std::printf(" %.2f", f.goodput_mbps);
  }
  std::printf("\n\nPaper shape check: sender system delay dominates (paper: ~2.5 s total on a\n"
              "4 MB-autotuned stack; this testbed's smaller queue gives smaller absolute\n"
              "values with the same ordering sender >> network >> receiver).\n");
  bool ok = snd > net && net > rcv;
  std::printf("SHAPE %s: sender %.0f ms > network %.0f ms > receiver %.0f ms\n",
              ok ? "OK" : "MISMATCH", snd * 1000, net * 1000, rcv * 1000);
  return ok ? 0 : 1;
}
