// Event-core microbenchmark: the numbers behind BENCH_evloop.json and the
// CI perf-smoke floor.
//
// Three workloads, each reported as a rate:
//   schedule_fire  — schedule 1M one-shot events at ascending times, run the
//                    loop dry (the pure fire-path cost: pop + dispatch).
//   churn          — the TCP RTO re-arm pattern: keep one far-future event
//                    pending and cancel/re-schedule it 2M times, then drain.
//                    On a tombstoning core the queue grows with every cancel;
//                    on the slab core it stays at one slot.
//   tcp_codel      — a full TCP-over-CoDel bulk transfer (Testbed, cubic,
//                    10 Mbps bottleneck) for 30 simulated seconds; reports
//                    both events/sec and sim-seconds per wall-second.
//
// Usage:
//   micro_evloop                      print a JSON metrics object
//   micro_evloop --floor <file.json>  also enforce min_* floors from the file
//                                     (exit 1 on regression below a floor)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/time.h"
#include "src/evloop/event_loop.h"
#include "src/common/json.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

double NowSeconds() {
  auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

// Runs `body` once and returns wall seconds elapsed.
template <typename Body>
double Timed(Body&& body) {
  double start = NowSeconds();
  body();
  return NowSeconds() - start;
}

constexpr int kScheduleFireEvents = 1'000'000;
constexpr int kChurnOps = 2'000'000;
constexpr double kTcpCodelSimSeconds = 30.0;

double BenchScheduleFire() {
  EventLoop loop;
  uint64_t sink = 0;
  double secs = Timed([&] {
    for (int i = 0; i < kScheduleFireEvents; ++i) {
      loop.ScheduleAfter(TimeDelta::FromNanos(i), [&sink] { ++sink; });
    }
    loop.Run();
  });
  if (sink != kScheduleFireEvents) {
    std::fprintf(stderr, "schedule_fire dropped events: %llu\n",
                 static_cast<unsigned long long>(sink));
    std::exit(1);
  }
  return kScheduleFireEvents / secs;
}

double BenchChurn() {
  EventLoop loop;
  uint64_t sink = 0;
  double secs = Timed([&] {
    // One re-armed far-future timeout (the RTO) plus a trickle of near
    // events so the clock advances, exactly as a transfer's ACK stream does.
    auto rto = loop.ScheduleAfter(TimeDelta::FromSecondsInt(60), [&sink] { ++sink; });
    for (int i = 0; i < kChurnOps; ++i) {
      loop.Cancel(rto);
      rto = loop.ScheduleAfter(TimeDelta::FromSecondsInt(60) + TimeDelta::FromNanos(i),
                               [&sink] { ++sink; });
      if ((i & 1023) == 0) {
        loop.ScheduleAfter(TimeDelta::FromNanos(i), [&sink] { ++sink; });
        loop.RunUntil(loop.now() + TimeDelta::FromNanos(1));
      }
    }
    loop.Run();
  });
  return kChurnOps / secs;
}

struct TcpCodelResult {
  double events_per_sec = 0.0;
  double sim_seconds_per_sec = 0.0;
};

TcpCodelResult BenchTcpCodel() {
  PathConfig path;
  path.qdisc = QdiscType::kCoDel;
  path.rate = DataRate::Mbps(10);
  path.one_way_delay = TimeDelta::FromMillis(25);
  Testbed bed(/*seed=*/7, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  auto pump = [&] {
    while (flow.sender->Write(1 << 20) > 0) {
    }
  };
  flow.sender->SetEstablishedCallback(pump);
  flow.sender->SetWritableCallback(pump);
  flow.receiver->SetReadableCallback([&] { flow.receiver->Read(1 << 20); });

  double secs = Timed([&] {
    bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(kTcpCodelSimSeconds * 1e9)));
  });
  TcpCodelResult r;
  r.events_per_sec = static_cast<double>(bed.loop().processed_events()) / secs;
  r.sim_seconds_per_sec = kTcpCodelSimSeconds / secs;
  return r;
}

int Run(const std::string& floor_path) {
  json::Value out = json::Value::Object();
  double fire = BenchScheduleFire();
  double churn = BenchChurn();
  TcpCodelResult tcp = BenchTcpCodel();
  out.Set("schedule_fire_events_per_sec", json::Value::Number(fire));
  out.Set("churn_ops_per_sec", json::Value::Number(churn));
  out.Set("tcp_codel_events_per_sec", json::Value::Number(tcp.events_per_sec));
  out.Set("tcp_codel_sim_seconds_per_sec", json::Value::Number(tcp.sim_seconds_per_sec));
  std::printf("%s\n", out.Dump(2).c_str());

  if (floor_path.empty()) {
    return 0;
  }
  std::ifstream in(floor_path);
  if (!in) {
    std::fprintf(stderr, "micro_evloop: cannot open floor file %s\n", floor_path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  json::Value floor;
  std::string error;
  if (!json::Value::Parse(buf.str(), &floor, &error)) {
    std::fprintf(stderr, "micro_evloop: bad floor file: %s\n", error.c_str());
    return 2;
  }
  int failures = 0;
  auto check = [&](const char* key, double measured) {
    const json::Value* min = floor.Find(key);
    if (min == nullptr) {
      return;
    }
    if (measured < min->AsDouble()) {
      std::fprintf(stderr, "micro_evloop: %s = %.3g below floor %.3g\n", key, measured,
                   min->AsDouble());
      ++failures;
    }
  };
  check("min_schedule_fire_events_per_sec", fire);
  check("min_churn_ops_per_sec", churn);
  check("min_tcp_codel_events_per_sec", tcp.events_per_sec);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace element

int main(int argc, char** argv) {
  std::string floor_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--floor" && i + 1 < argc) {
      floor_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--floor floors.json]\n", argv[0]);
      return 2;
    }
  }
  return element::Run(floor_path);
}
