// Figure 14: ELEMENT with legacy iperf on four production networks — LAN,
// cable, LTE, WiFi — in both directions (download/upload). Two Cubic flows
// run; one is replaced by Cubic+ELEMENT.
//
// Expected shape: little to gain on the LAN (sub-ms RTT); elsewhere 4-10x
// relative-delay reduction with throughput maintained or slightly improved.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace element;

int main() {
  std::printf("=== Figure 14: legacy iperf +/- ELEMENT on production networks ===\n");
  std::printf("Setup: 2 Cubic flows, flow 0 optionally interposed; 40 s per run\n\n");

  struct Cell {
    const char* network;
    const char* direction;
    PathConfig path;
    bool wireless;
  };
  std::vector<Cell> cells = {
      {"LAN", "Download", LanProfile(), false},
      {"Cable", "Download", CableProfile(false), false},
      {"Cable", "Upload", CableProfile(true), false},
      {"LTE", "Download", LteProfile(false), true},
      {"LTE", "Upload", LteProfile(true), true},
      {"WiFi", "Download", WifiProfile(), true},
      {"WiFi", "Upload", WifiProfile(), true},
  };

  TablePrinter table({"network", "dir", "cubic avg delay(s)", "elem delay(s)", "reduction",
                      "cubic avg tput", "elem tput"});
  bool shape_ok = true;
  double best_nonlan_reduction = 0.0;
  uint64_t seed = 800;
  for (const Cell& cell : cells) {
    LegacyExperiment cfg;
    cfg.path = cell.path;
    cfg.num_flows = 2;
    cfg.duration_s = 40.0;
    cfg.seed = seed++;
    cfg.element_wireless = cell.wireless;

    cfg.element_on_first = false;
    std::vector<FlowResult> plain = RunLegacyExperiment(cfg);
    cfg.element_on_first = true;
    std::vector<FlowResult> with_em = RunLegacyExperiment(cfg);

    // Baseline = average plain Cubic flow (single-run fairness noise).
    double plain_delay = (plain[0].relative_delay_s + plain[1].relative_delay_s) / 2;
    double plain_tput = (plain[0].goodput_mbps + plain[1].goodput_mbps) / 2;
    double reduction = plain_delay / std::max(with_em[0].relative_delay_s, 1e-4);
    table.AddRow({cell.network, cell.direction, TablePrinter::Fmt(plain_delay, 3),
                  TablePrinter::Fmt(with_em[0].relative_delay_s, 3),
                  TablePrinter::Fmt(reduction, 1) + "x",
                  TablePrinter::Fmt(plain_tput, 2),
                  TablePrinter::Fmt(with_em[0].goodput_mbps, 2)});

    bool is_lan = std::string(cell.network) == "LAN";
    if (!is_lan) {
      best_nonlan_reduction = std::max(best_nonlan_reduction, reduction);
      if (reduction < 1.0) {
        shape_ok = false;
      }
      if (with_em[0].goodput_mbps < plain_tput * 0.70) {
        shape_ok = false;
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  if (best_nonlan_reduction < 3.0) {
    shape_ok = false;
  }
  std::printf("Paper shape check: LAN barely changes (RTT already tiny); cable/LTE/WiFi see\n"
              "4-10x delay reduction at equal or better throughput.\nSHAPE %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
