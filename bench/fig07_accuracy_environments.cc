// Figure 7: ELEMENT's estimation-error CDFs across network environments:
//   (a-d) bandwidth sweep at fixed 50 ms RTT: 30, 50, 100, 200 Mbps
//   (e-h) RTT sweep at fixed 10 Mbps: 10, 100, 150, 200 ms
//   (i-l) production networks: LAN, cable, WiFi, LTE.
//
// Expected shape: receiver-side more accurate than sender-side; sender-side
// accuracy improves with bandwidth; no clear RTT correlation.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace element;

namespace {

struct Cell {
  const char* name;
  PathConfig path;
};

PathConfig Wired(double mbps, int64_t rtt_ms) {
  PathConfig p;
  p.rate = DataRate::Mbps(mbps);
  p.one_way_delay = TimeDelta::FromMillis(rtt_ms / 2);
  double bdp_pkts = mbps * 1e6 / 8.0 * static_cast<double>(rtt_ms) * 1e-3 / 1500.0;
  p.queue_limit_packets = static_cast<size_t>(std::max(60.0, 2.0 * bdp_pkts));
  return p;
}

}  // namespace

int main() {
  std::printf("=== Figure 7: estimation-error CDFs across environments ===\n");
  std::printf("Setup: single Cubic flow per cell, 30 s, 10 ms tracker period\n\n");

  std::vector<Cell> cells = {
      {"(a) 30 Mbps / 50ms RTT", Wired(30, 50)},
      {"(b) 50 Mbps / 50ms RTT", Wired(50, 50)},
      {"(c) 100 Mbps / 50ms RTT", Wired(100, 50)},
      {"(d) 200 Mbps / 50ms RTT", Wired(200, 50)},
      {"(e) 10 Mbps / 10ms RTT", Wired(10, 10)},
      {"(f) 10 Mbps / 100ms RTT", Wired(10, 100)},
      {"(g) 10 Mbps / 150ms RTT", Wired(10, 150)},
      {"(h) 10 Mbps / 200ms RTT", Wired(10, 200)},
      {"(i) LAN", LanProfile()},
      {"(j) Cable", CableProfile()},
      {"(k) WiFi", WifiProfile()},
      {"(l) LTE", LteProfile()},
  };

  TablePrinter table({"environment", "side", "err p50 (s)", "err p90 (s)", "err p99 (s)",
                      "accuracy"});
  double bw_sweep_acc[4] = {0, 0, 0, 0};
  int receiver_wins = 0;
  int n_cells = 0;
  uint64_t seed = 300;
  for (const Cell& cell : cells) {
    AccuracyRun run = RunAccuracyExperiment(seed++, cell.path, 30.0);
    table.AddRow({cell.name, "sender", TablePrinter::Fmt(run.sender.errors.Quantile(0.5), 4),
                  TablePrinter::Fmt(run.sender.errors.Quantile(0.9), 4),
                  TablePrinter::Fmt(run.sender.errors.Quantile(0.99), 4),
                  TablePrinter::Fmt(run.sender.accuracy * 100, 1) + "%"});
    table.AddRow({"", "receiver", TablePrinter::Fmt(run.receiver.errors.Quantile(0.5), 4),
                  TablePrinter::Fmt(run.receiver.errors.Quantile(0.9), 4),
                  TablePrinter::Fmt(run.receiver.errors.Quantile(0.99), 4),
                  TablePrinter::Fmt(run.receiver.accuracy * 100, 1) + "%"});
    if (n_cells < 4) {
      bw_sweep_acc[n_cells] = run.sender.accuracy;
    }
    if (run.receiver.errors.Quantile(0.5) <= run.sender.errors.Quantile(0.5) + 1e-6) {
      ++receiver_wins;
    }
    ++n_cells;
  }
  std::printf("%s\n", table.Render().c_str());

  bool shape_ok = true;
  // Sender accuracy >= ~90% across the board.
  // (checked per cell above via the accuracy column; enforce on bw sweep)
  for (double acc : bw_sweep_acc) {
    if (acc < 0.85) {
      shape_ok = false;
    }
  }
  // Receiver-side median error at most the sender's in most cells.
  if (receiver_wins < n_cells / 2) {
    shape_ok = false;
  }
  std::printf("Paper shape check: ~90%%+ sender accuracy, ~95%% receiver accuracy; receiver\n"
              "errors below sender errors; accuracy does not degrade with bandwidth.\n");
  std::printf("SHAPE %s (receiver median <= sender median in %d/%d cells)\n",
              shape_ok ? "OK" : "MISMATCH", receiver_wins, n_cells);
  return shape_ok ? 0 : 1;
}
