// Figure 7: ELEMENT's estimation-error CDFs across network environments:
//   (a-d) bandwidth sweep at fixed 50 ms RTT: 30, 50, 100, 200 Mbps
//   (e-h) RTT sweep at fixed 10 Mbps: 10, 100, 150, 200 ms
//   (i-l) production networks: LAN, cable, WiFi, LTE.
//
// Expected shape: receiver-side more accurate than sender-side; sender-side
// accuracy improves with bandwidth; no clear RTT correlation.
//
// The 12 cells run through the fleet runner; rows are printed in cell order
// and are identical for any --jobs value.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/runner/fleet.h"

using namespace element;

namespace {

ScenarioSpec Wired(double mbps, double rtt_ms) {
  ScenarioSpec spec;
  spec.profile = "wired";
  spec.rate_mbps = mbps;
  spec.rtt_ms = rtt_ms;
  spec.queue_packets = 0;  // auto: max(60, 2 * BDP)
  return spec;
}

ScenarioSpec Profile(const char* name) {
  ScenarioSpec spec;
  spec.profile = name;
  return spec;
}

struct Cell {
  const char* name;
  ScenarioSpec spec;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  int jobs = static_cast<int>(flags.GetInt("jobs", DefaultJobs()));

  std::printf("=== Figure 7: estimation-error CDFs across environments ===\n");
  std::printf("Setup: single Cubic flow per cell, 30 s, 10 ms tracker period\n\n");

  std::vector<Cell> cells = {
      {"(a) 30 Mbps / 50ms RTT", Wired(30, 50)},
      {"(b) 50 Mbps / 50ms RTT", Wired(50, 50)},
      {"(c) 100 Mbps / 50ms RTT", Wired(100, 50)},
      {"(d) 200 Mbps / 50ms RTT", Wired(200, 50)},
      {"(e) 10 Mbps / 10ms RTT", Wired(10, 10)},
      {"(f) 10 Mbps / 100ms RTT", Wired(10, 100)},
      {"(g) 10 Mbps / 150ms RTT", Wired(10, 150)},
      {"(h) 10 Mbps / 200ms RTT", Wired(10, 200)},
      {"(i) LAN", Profile("lan")},
      {"(j) Cable", Profile("cable")},
      {"(k) WiFi", Profile("wifi")},
      {"(l) LTE", Profile("lte")},
  };

  std::vector<ScenarioSpec> specs;
  uint64_t seed = 300;
  for (const Cell& cell : cells) {
    ScenarioSpec spec = cell.spec;
    spec.name = cell.name;
    spec.app = "accuracy";
    spec.duration_s = 30.0;
    spec.tracker_period_ms = 10.0;
    spec.seed = seed++;
    specs.push_back(spec);
  }

  FleetOptions options;
  options.jobs = jobs;
  FleetSummary fleet = RunFleet(specs, options);

  TablePrinter table({"environment", "side", "err p50 (s)", "err p90 (s)", "err p99 (s)",
                      "accuracy"});
  double bw_sweep_acc[4] = {0, 0, 0, 0};
  int receiver_wins = 0;
  int n_cells = 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    const ScenarioResult& result = fleet.results[i];
    if (!result.ok) {
      std::fprintf(stderr, "cell %s failed: %s\n", result.spec.Id().c_str(),
                   result.error.c_str());
      return 1;
    }
    const AccuracyRun& run = result.accuracy;
    AddAccuracyRows(&table, cells[i].name, run);
    if (n_cells < 4) {
      bw_sweep_acc[n_cells] = run.sender.accuracy;
    }
    if (run.receiver.errors.Quantile(0.5) <= run.sender.errors.Quantile(0.5) + 1e-6) {
      ++receiver_wins;
    }
    ++n_cells;
  }
  std::printf("%s\n", table.Render().c_str());

  bool shape_ok = true;
  // Sender accuracy >= ~90% across the board.
  // (checked per cell above via the accuracy column; enforce on bw sweep)
  for (double acc : bw_sweep_acc) {
    if (acc < 0.85) {
      shape_ok = false;
    }
  }
  // Receiver-side median error at most the sender's in most cells.
  if (receiver_wins < n_cells / 2) {
    shape_ok = false;
  }
  std::printf("Paper shape check: ~90%%+ sender accuracy, ~95%% receiver accuracy; receiver\n"
              "errors below sender errors; accuracy does not degrade with bandwidth.\n");
  std::printf("SHAPE %s (receiver median <= sender median in %d/%d cells)\n",
              shape_ok ? "OK" : "MISMATCH", receiver_wins, n_cells);
  return shape_ok ? 0 : 1;
}
