// Figure 13: ELEMENT with a legacy TCP application (iperf) over controlled
// networks. Grid: bandwidth {10, 50, 100} Mbps x RTT {10, 50, 100, 150} ms.
// Three Cubic flows run; one is replaced by Cubic+ELEMENT (via interposition).
//
// Expected shape: (a) the ELEMENT flow's relative delay drops by up to ~10x;
// (b) its throughput matches the plain run, and the two background flows'
// throughput is unchanged (fairness).

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace element;

int main() {
  std::printf("=== Figure 13: legacy iperf +/- ELEMENT over bandwidth x RTT grid ===\n");
  std::printf("Setup: 3 Cubic flows, flow 0 optionally interposed; 40 s per run\n\n");

  const double kMbps[] = {10, 50, 100};
  const int kRttMs[] = {10, 50, 100, 150};

  TablePrinter table({"bw/rtt", "cubic avg delay(s)", "elem delay(s)", "reduction",
                      "cubic avg tput", "elem tput", "bg tput before", "bg tput after"});
  double worst_reduction = 1e9;
  double best_reduction = 0;
  bool shape_ok = true;
  for (double mbps : kMbps) {
    for (int rtt : kRttMs) {
      LegacyExperiment cfg;
      cfg.path.rate = DataRate::Mbps(mbps);
      cfg.path.one_way_delay = TimeDelta::FromMillis(rtt / 2);
      double bdp_pkts = mbps * 1e6 / 8.0 * rtt * 1e-3 / 1500.0;
      cfg.path.queue_limit_packets = static_cast<size_t>(std::max(60.0, 2.0 * bdp_pkts));
      cfg.num_flows = 3;
      cfg.duration_s = 40.0;
      cfg.seed = 700 + static_cast<uint64_t>(mbps) + static_cast<uint64_t>(rtt);

      cfg.element_on_first = false;
      std::vector<FlowResult> plain = RunLegacyExperiment(cfg);
      cfg.element_on_first = true;
      std::vector<FlowResult> with_em = RunLegacyExperiment(cfg);

      // The three plain Cubic flows are i.i.d.; a single run's flow 0 can be
      // well above or below fair share (Cubic converges slowly at high BDP),
      // so the baseline is the average plain flow.
      double plain_delay = 0;
      double plain_tput = 0;
      for (const FlowResult& f : plain) {
        plain_delay += f.relative_delay_s / plain.size();
        plain_tput += f.goodput_mbps / plain.size();
      }
      double bg_before = (plain[1].goodput_mbps + plain[2].goodput_mbps) / 2;
      double bg_after = (with_em[1].goodput_mbps + with_em[2].goodput_mbps) / 2;
      double reduction = plain_delay / std::max(with_em[0].relative_delay_s, 1e-4);
      worst_reduction = std::min(worst_reduction, reduction);
      best_reduction = std::max(best_reduction, reduction);

      char label[32];
      std::snprintf(label, sizeof(label), "%.0fMbps/%dms", mbps, rtt);
      table.AddRow({label, TablePrinter::Fmt(plain_delay, 3),
                    TablePrinter::Fmt(with_em[0].relative_delay_s, 3),
                    TablePrinter::Fmt(reduction, 1) + "x",
                    TablePrinter::Fmt(plain_tput, 2),
                    TablePrinter::Fmt(with_em[0].goodput_mbps, 2),
                    TablePrinter::Fmt(bg_before, 2), TablePrinter::Fmt(bg_after, 2)});

      if (with_em[0].relative_delay_s > plain_delay) {
        shape_ok = false;  // ELEMENT must not increase delay
      }
      if (with_em[0].goodput_mbps < plain_tput * 0.75) {
        shape_ok = false;  // throughput (fair share) maintained
      }
      if (bg_after < bg_before * 0.75) {
        shape_ok = false;  // fairness to background flows
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("delay reduction across the grid: %.1fx (min) to %.1fx (max)\n", worst_reduction,
              best_reduction);
  if (best_reduction < 3.0) {
    shape_ok = false;  // the paper reports up to ~10x; demand at least a few x
  }
  std::printf("Paper shape check: latency cut significantly (paper: up to 10x) with\n"
              "throughput and background-flow fairness maintained.\nSHAPE %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
