// Figure 3: delay composition for different queueing disciplines
// (pfifo_fast, CoDel, FQ-CoDel, PIE) across five network settings:
// wired low-bandwidth, the same with ECN, wired high-bandwidth, WiFi, LTE.
//
// Expected shape: the AQMs cut the *network* (queueing) delay sharply, but
// every discipline still leaves a non-negligible *endhost* (sender system)
// delay — AQM alone cannot fix bufferbloat at the sender's socket buffer.
//
// The 20 cells are independent deterministic simulations, so this binary
// drives them through the fleet runner (src/runner/fleet.h): on a multicore
// host the grid fans out across workers, and the printed rows are identical
// for any job count.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/common/flags.h"
#include "src/runner/fleet.h"

using namespace element;

namespace {

struct NetworkCase {
  const char* name;
  ScenarioSpec spec;  // path fields only; qdisc filled per cell
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  int jobs = static_cast<int>(flags.GetInt("jobs", DefaultJobs()));

  std::printf("=== Figure 3: delay composition per qdisc and network (ms) ===\n");
  std::printf("Setup: 3 TCP Cubic flows per cell, 60 s\n\n");

  std::vector<NetworkCase> networks;
  {
    NetworkCase n{"Wired (Low BW)", ScenarioSpec{}};
    n.spec.rate_mbps = 10;
    n.spec.rtt_ms = 50;
    n.spec.queue_packets = 100;
    networks.push_back(n);
  }
  {
    NetworkCase n{"Wired (Low BW) +ECN", ScenarioSpec{}};
    n.spec.rate_mbps = 10;
    n.spec.rtt_ms = 50;
    n.spec.queue_packets = 100;
    n.spec.ecn = true;
    networks.push_back(n);
  }
  {
    NetworkCase n{"Wired (High BW)", ScenarioSpec{}};
    n.spec.rate_mbps = 1000;
    n.spec.rtt_ms = 0.4;  // 200 us one-way
    n.spec.queue_packets = 1000;
    networks.push_back(n);
  }
  {
    NetworkCase n{"WiFi", ScenarioSpec{}};
    n.spec.profile = "wifi";
    networks.push_back(n);
  }
  {
    NetworkCase n{"LTE", ScenarioSpec{}};
    n.spec.profile = "lte";
    networks.push_back(n);
  }

  const QdiscType kQdiscs[] = {QdiscType::kPfifoFast, QdiscType::kCoDel, QdiscType::kFqCoDel,
                               QdiscType::kPie};

  std::vector<ScenarioSpec> specs;
  for (const NetworkCase& network : networks) {
    for (QdiscType q : kQdiscs) {
      ScenarioSpec spec = network.spec;
      spec.name = network.name;
      spec.app = "legacy";
      spec.qdisc = DescribeQdisc(q);
      spec.cc = "cubic";
      spec.num_flows = 3;
      spec.duration_s = 60.0;
      spec.seed = 7;
      specs.push_back(spec);
    }
  }

  FleetOptions options;
  options.jobs = jobs;
  FleetSummary fleet = RunFleet(specs, options);

  TablePrinter table(
      {"network", "qdisc", "sender(ms)", "network(ms)", "receiver(ms)", "total(ms)"});
  bool shape_ok = true;
  size_t cell = 0;
  for (const NetworkCase& network : networks) {
    double pfifo_net = 0.0;
    double aqm_best_net = 1e18;
    double min_sender = 1e18;
    for (QdiscType q : kQdiscs) {
      const ScenarioResult& result = fleet.results[cell++];
      if (!result.ok) {
        std::fprintf(stderr, "cell %s failed: %s\n", result.spec.Id().c_str(),
                     result.error.c_str());
        return 1;
      }
      MeanDelays delays = AverageDelays(result.flows);
      AddDelayCompositionRow(&table, network.name, DescribeQdisc(q), delays);
      if (q == QdiscType::kPfifoFast) {
        pfifo_net = delays.network_s;
      } else {
        aqm_best_net = std::min(aqm_best_net, delays.network_s);
      }
      min_sender = std::min(min_sender, delays.sender_s);
    }
    // Shape: AQMs reduce network queueing vs pfifo_fast, yet a material
    // sender-side delay remains under every discipline (except trivially on
    // the uncongested high-BW LAN).
    if (aqm_best_net > pfifo_net * 1.05) {
      shape_ok = false;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper shape check: CoDel/FQ-CoDel/PIE shrink network queueing delay, but the\n"
              "endhost (sender) system delay persists under all disciplines.\n");
  std::printf("SHAPE %s\n", shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
