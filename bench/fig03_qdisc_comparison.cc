// Figure 3: delay composition for different queueing disciplines
// (pfifo_fast, CoDel, FQ-CoDel, PIE) across five network settings:
// wired low-bandwidth, the same with ECN, wired high-bandwidth, WiFi, LTE.
//
// Expected shape: the AQMs cut the *network* (queueing) delay sharply, but
// every discipline still leaves a non-negligible *endhost* (sender system)
// delay — AQM alone cannot fix bufferbloat at the sender's socket buffer.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

using namespace element;

namespace {

struct Scenario {
  const char* name;
  PathConfig path;
};

}  // namespace

int main() {
  std::printf("=== Figure 3: delay composition per qdisc and network (ms) ===\n");
  std::printf("Setup: 3 TCP Cubic flows per cell, 60 s\n\n");

  std::vector<Scenario> scenarios;
  {
    Scenario s{"Wired (Low BW)", PathConfig{}};
    s.path.rate = DataRate::Mbps(10);
    s.path.one_way_delay = TimeDelta::FromMillis(25);
    s.path.queue_limit_packets = 100;
    scenarios.push_back(s);
  }
  {
    Scenario s{"Wired (Low BW) +ECN", PathConfig{}};
    s.path.rate = DataRate::Mbps(10);
    s.path.one_way_delay = TimeDelta::FromMillis(25);
    s.path.queue_limit_packets = 100;
    s.path.ecn = true;
    scenarios.push_back(s);
  }
  {
    Scenario s{"Wired (High BW)", PathConfig{}};
    s.path.rate = DataRate::Mbps(1000);
    s.path.one_way_delay = TimeDelta::FromMicros(200);
    s.path.queue_limit_packets = 1000;
    scenarios.push_back(s);
  }
  scenarios.push_back({"WiFi", WifiProfile()});
  scenarios.push_back({"LTE", LteProfile()});

  const QdiscType kQdiscs[] = {QdiscType::kPfifoFast, QdiscType::kCoDel, QdiscType::kFqCoDel,
                               QdiscType::kPie};

  TablePrinter table(
      {"network", "qdisc", "sender(ms)", "network(ms)", "receiver(ms)", "total(ms)"});
  bool shape_ok = true;
  for (const Scenario& scenario : scenarios) {
    double pfifo_net = 0.0;
    double aqm_best_net = 1e18;
    double min_sender = 1e18;
    for (QdiscType q : kQdiscs) {
      LegacyExperiment cfg;
      cfg.path = scenario.path;
      cfg.path.qdisc = q;
      cfg.num_flows = 3;
      cfg.duration_s = 60.0;
      cfg.seed = 7;
      std::vector<FlowResult> flows = RunLegacyExperiment(cfg);
      double snd = 0;
      double net = 0;
      double rcv = 0;
      for (const FlowResult& f : flows) {
        snd += f.sender_delay_s / flows.size();
        net += f.network_delay_s / flows.size();
        rcv += f.receiver_delay_s / flows.size();
      }
      table.AddRow({scenario.name, DescribeQdisc(q), TablePrinter::Fmt(snd * 1000, 1),
                    TablePrinter::Fmt(net * 1000, 1), TablePrinter::Fmt(rcv * 1000, 1),
                    TablePrinter::Fmt((snd + net + rcv) * 1000, 1)});
      if (q == QdiscType::kPfifoFast) {
        pfifo_net = net;
      } else {
        aqm_best_net = std::min(aqm_best_net, net);
      }
      min_sender = std::min(min_sender, snd);
    }
    // Shape: AQMs reduce network queueing vs pfifo_fast, yet a material
    // sender-side delay remains under every discipline (except trivially on
    // the uncongested high-BW LAN).
    if (aqm_best_net > pfifo_net * 1.05) {
      shape_ok = false;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper shape check: CoDel/FQ-CoDel/PIE shrink network queueing delay, but the\n"
              "endhost (sender) system delay persists under all disciplines.\n");
  std::printf("SHAPE %s\n", shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
