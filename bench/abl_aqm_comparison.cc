// Extension study: "is CoDel really achieving what RED cannot?" (the paper's
// reference [41]) — all five disciplines, measured with the instrumented
// bottleneck probe (§7 lower-layer tracing), across load levels. Reports the
// standing queueing delay at the bottleneck, link utilization, and the
// resulting endhost (sender) delay — showing that whatever the AQM achieves
// in the network, the endhost component needs ELEMENT.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

#include "bench/harness.h"

using namespace element;

namespace {

struct CellResult {
  double sojourn_p50_ms;
  double sojourn_p95_ms;
  double utilization;
  double sender_delay_ms;
  double drop_permille;
};

CellResult RunCell(uint64_t seed, QdiscType qdisc, int flows) {
  PathConfig path;
  path.rate = DataRate::Mbps(20);
  path.one_way_delay = TimeDelta::FromMillis(25);
  path.queue_limit_packets = 170;  // ~2x BDP
  path.qdisc = qdisc;
  path.instrument_bottleneck = true;
  Testbed bed(seed, path);

  struct Per {
    Testbed::Flow flow;
    std::unique_ptr<GroundTruthTracer> tracer;
    std::unique_ptr<RawTcpSink> sink;
    std::unique_ptr<IperfApp> app;
    std::unique_ptr<SinkApp> reader;
  };
  std::vector<Per> per(static_cast<size_t>(flows));
  for (auto& p : per) {
    p.flow = bed.CreateFlow(TcpSocket::Config{});
    GroundTruthTracer::Config tcfg;
    tcfg.record_from = SimTime::FromNanos(3'000'000'000LL);
    p.tracer = std::make_unique<GroundTruthTracer>(tcfg);
    p.flow.sender->telemetry().AttachSink(p.tracer.get());
    p.flow.receiver->telemetry().AttachSink(p.tracer.get());
    p.sink = std::make_unique<RawTcpSink>(p.flow.sender);
    p.app = std::make_unique<IperfApp>(&bed.loop(), p.sink.get());
    p.reader = std::make_unique<SinkApp>(p.flow.receiver);
    p.app->Start();
    p.reader->Start();
  }
  const double kDuration = 40.0;
  bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(kDuration * 1e9)));

  CellResult r;
  const InstrumentedQdisc* probe = bed.bottleneck_probe();
  r.sojourn_p50_ms = probe->sojourn_samples().Quantile(0.5) * 1000;
  r.sojourn_p95_ms = probe->sojourn_samples().Quantile(0.95) * 1000;
  uint64_t delivered = 0;
  double sender_delay = 0;
  for (auto& p : per) {
    delivered += p.flow.receiver->app_bytes_read();
    sender_delay += p.tracer->sender_delay().mean() * 1000 / flows;
  }
  r.utilization =
      RateOver(static_cast<int64_t>(delivered), TimeDelta::FromSeconds(kDuration)).ToMbps() /
      20.0;
  const QdiscStats& qs = probe->stats();
  r.drop_permille = 1000.0 * static_cast<double>(qs.dropped_packets) /
                    std::max<uint64_t>(1, qs.enqueued_packets + qs.dropped_packets);
  r.sender_delay_ms = sender_delay;
  return r;
}

}  // namespace

int main() {
  std::printf("=== AQM study: pfifo_fast vs RED vs CoDel vs FQ-CoDel vs PIE ===\n");
  std::printf("Setup: 20 Mbps / 50 ms RTT bottleneck, instrumented queue, 40 s per cell\n\n");

  const QdiscType kQdiscs[] = {QdiscType::kPfifoFast, QdiscType::kRed, QdiscType::kCoDel,
                               QdiscType::kFqCoDel, QdiscType::kPie};
  bool shape_ok = true;
  for (int flows : {1, 4}) {
    std::printf("--- %d flow(s) ---\n", flows);
    TablePrinter table({"qdisc", "queue p50 (ms)", "queue p95 (ms)", "drops (permille)",
                        "utilization", "sender delay (ms)"});
    double fifo_p50 = 0;
    double codel_p50 = 0;
    double red_p50 = 0;
    for (QdiscType q : kQdiscs) {
      CellResult r = RunCell(5000 + static_cast<uint64_t>(flows), q, flows);
      table.AddRow({DescribeQdisc(q), TablePrinter::Fmt(r.sojourn_p50_ms, 2),
                    TablePrinter::Fmt(r.sojourn_p95_ms, 2),
                    TablePrinter::Fmt(r.drop_permille, 2),
                    TablePrinter::Fmt(r.utilization * 100, 1) + "%",
                    TablePrinter::Fmt(r.sender_delay_ms, 1)});
      if (q == QdiscType::kPfifoFast) {
        fifo_p50 = r.sojourn_p50_ms;
      }
      if (q == QdiscType::kCoDel) {
        codel_p50 = r.sojourn_p50_ms;
      }
      if (q == QdiscType::kRed) {
        red_p50 = r.sojourn_p50_ms;
      }
      if (q != QdiscType::kPfifoFast && r.utilization < 0.6) {
        shape_ok = false;  // AQMs must not wreck utilization
      }
    }
    std::printf("%s\n", table.Render().c_str());
    // Both AQM families beat the FIFO's standing queue; CoDel's sojourn
    // target (5 ms) holds it below RED's min-threshold operating point.
    if (codel_p50 > fifo_p50 * 0.5 || red_p50 > fifo_p50 * 0.9) {
      shape_ok = false;
    }
  }
  std::printf("Shape check: AQMs cut the standing queue (CoDel hardest) at high utilization,\n"
              "while the sender-side delay column stays large for every discipline —\n"
              "the paper's motivating gap.\nSHAPE %s\n",
              shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
