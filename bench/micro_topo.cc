// Topology-layer microbenchmark: the numbers behind BENCH_topo.json and the
// topo-smoke CI floor.
//
// Two workloads, each reported as a rate:
//   route_lookup   — raw Router forwarding: 1k installed flows across 4
//                    egress ports, 2M packets delivered to a null sink (the
//                    per-packet table cost: bounds check + load + virtual
//                    dispatch).
//   dumbbell_1k    — a full contention run: 1024 concurrent Cubic flows
//                    through one FQ-CoDel dumbbell bottleneck for 2 simulated
//                    seconds; reports events/sec and sim-seconds per
//                    wall-second, demonstrating >= 1k-flow scale.
//
// Usage:
//   micro_topo                      print a JSON metrics object
//   micro_topo --floor <file.json>  also enforce min_topo_* floors from the
//                                   file (exit 1 on regression below a floor)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/json.h"
#include "src/topo/contention.h"
#include "src/topo/router.h"

namespace element {
namespace {

double NowSeconds() {
  auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

template <typename Body>
double Timed(Body&& body) {
  double start = NowSeconds();
  body();
  return NowSeconds() - start;
}

constexpr int kRouteFlows = 1024;
constexpr int kRoutePackets = 2'000'000;
constexpr int kDumbbellFlows = 1024;
constexpr double kDumbbellSimSeconds = 2.0;

class NullSink : public PacketSink {
 public:
  void Deliver(Packet pkt) override { bytes += pkt.size_bytes; }
  uint64_t bytes = 0;
};

double BenchRouteLookup() {
  Router router("bench");
  NullSink sinks[4];
  int ports[4];
  for (int i = 0; i < 4; ++i) {
    ports[i] = router.AddPort(&sinks[i]);
  }
  for (int f = 0; f < kRouteFlows; ++f) {
    router.AddRoute(static_cast<uint64_t>(f), ports[f % 4]);
  }
  Packet pkt;
  pkt.size_bytes = 1500;
  double secs = Timed([&] {
    for (int i = 0; i < kRoutePackets; ++i) {
      pkt.flow_id = static_cast<uint64_t>(i % kRouteFlows);
      router.Deliver(pkt);
    }
  });
  if (router.stats().forwarded_packets != static_cast<uint64_t>(kRoutePackets)) {
    std::fprintf(stderr, "route_lookup dropped packets\n");
    std::exit(1);
  }
  return kRoutePackets / secs;
}

struct DumbbellResult {
  double events_per_sec = 0.0;
  double sim_seconds_per_sec = 0.0;
  uint64_t forwarded_packets = 0;
  uint64_t processed_events = 0;
};

DumbbellResult BenchDumbbell1k() {
  ContentionConfig cfg;
  cfg.topo.shape = TopologyShape::kDumbbell;
  cfg.topo.host_pairs = 32;  // 32 flows per pair
  cfg.topo.qdisc = QdiscType::kFqCoDel;
  cfg.topo.queue_limit_packets = 500;
  cfg.topo.bottleneck_rate = DataRate::Mbps(200);
  cfg.flows = kDumbbellFlows;
  cfg.duration_s = kDumbbellSimSeconds;
  cfg.warmup_s = 0.5;
  cfg.seed = 7;

  ContentionResult result;
  double secs = Timed([&] { result = RunContentionExperiment(cfg); });
  if (result.unroutable_packets != 0) {
    std::fprintf(stderr, "dumbbell_1k misrouted packets\n");
    std::exit(1);
  }
  DumbbellResult r;
  r.events_per_sec = static_cast<double>(result.processed_events) / secs;
  r.sim_seconds_per_sec = kDumbbellSimSeconds / secs;
  r.forwarded_packets = result.forwarded_packets;
  r.processed_events = result.processed_events;
  return r;
}

int Run(const std::string& floor_path) {
  json::Value out = json::Value::Object();
  double lookup = BenchRouteLookup();
  DumbbellResult dumbbell = BenchDumbbell1k();
  out.Set("topo_route_lookup_packets_per_sec", json::Value::Number(lookup));
  out.Set("topo_dumbbell_1k_flows", json::Value::Int(kDumbbellFlows));
  out.Set("topo_dumbbell_1k_events_per_sec", json::Value::Number(dumbbell.events_per_sec));
  out.Set("topo_dumbbell_1k_sim_seconds_per_sec",
          json::Value::Number(dumbbell.sim_seconds_per_sec));
  out.Set("topo_dumbbell_1k_processed_events",
          json::Value::Int(static_cast<int64_t>(dumbbell.processed_events)));
  out.Set("topo_dumbbell_1k_forwarded_packets",
          json::Value::Int(static_cast<int64_t>(dumbbell.forwarded_packets)));
  std::printf("%s\n", out.Dump(2).c_str());

  if (floor_path.empty()) {
    return 0;
  }
  std::ifstream in(floor_path);
  if (!in) {
    std::fprintf(stderr, "micro_topo: cannot open floor file %s\n", floor_path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  json::Value floor;
  std::string error;
  if (!json::Value::Parse(buf.str(), &floor, &error)) {
    std::fprintf(stderr, "micro_topo: bad floor file: %s\n", error.c_str());
    return 2;
  }
  int failures = 0;
  auto check = [&](const char* key, double measured) {
    const json::Value* min = floor.Find(key);
    if (min == nullptr) {
      return;
    }
    if (measured < min->AsDouble()) {
      std::fprintf(stderr, "micro_topo: %s = %.3g below floor %.3g\n", key, measured,
                   min->AsDouble());
      ++failures;
    }
  };
  check("min_topo_route_lookup_packets_per_sec", lookup);
  check("min_topo_dumbbell_1k_events_per_sec", dumbbell.events_per_sec);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace element

int main(int argc, char** argv) {
  std::string floor_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--floor" && i + 1 < argc) {
      floor_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--floor floors.json]\n", argv[0]);
      return 2;
    }
  }
  return element::Run(floor_path);
}
