// Tests for TcpListener: BSD-accept semantics over the simulated path.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/tcpsim/tcp_listener.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

class ListenerTest : public ::testing::Test {
 protected:
  ListenerTest() : bed_(1, PathConfig{}) {
    listener_ = std::make_unique<TcpListener>(&bed_.loop(), Rng(2), TcpSocket::Config{},
                                              &bed_.path().reverse(),
                                              &bed_.path().server_demux());
  }
  Testbed bed_;
  std::unique_ptr<TcpListener> listener_;
};

TEST_F(ListenerTest, AcceptsMultipleClients) {
  std::vector<TcpSocket*> accepted;
  listener_->SetAcceptCallback([&](TcpSocket* s) { accepted.push_back(s); });
  TcpSocket* c1 = bed_.CreateClient(TcpSocket::Config{});
  TcpSocket* c2 = bed_.CreateClient(TcpSocket::Config{});
  TcpSocket* c3 = bed_.CreateClient(TcpSocket::Config{});
  bed_.loop().RunUntil(Sec(1.0));
  ASSERT_EQ(accepted.size(), 3u);
  EXPECT_TRUE(c1->established());
  EXPECT_TRUE(c2->established());
  EXPECT_TRUE(c3->established());
  for (TcpSocket* s : accepted) {
    EXPECT_TRUE(s->established());
  }
  // Flow ids line up pairwise.
  EXPECT_EQ(accepted[0]->flow_id(), c1->flow_id());
  EXPECT_EQ(accepted[2]->flow_id(), c3->flow_id());
}

TEST_F(ListenerTest, DataFlowsOnAcceptedConnections) {
  uint64_t total = 0;
  listener_->SetAcceptCallback([&](TcpSocket* s) {
    s->SetReadableCallback([&total, s] {
      size_t n;
      while ((n = s->Read(1 << 20)) > 0) {
        total += n;
      }
    });
  });
  TcpSocket* c1 = bed_.CreateClient(TcpSocket::Config{});
  TcpSocket* c2 = bed_.CreateClient(TcpSocket::Config{});
  c1->SetEstablishedCallback([&] { c1->Write(50000); });
  c2->SetEstablishedCallback([&] { c2->Write(60000); });  // fits the initial sndbuf
  bed_.loop().RunUntil(Sec(5.0));
  EXPECT_EQ(total, 110000u);
}

TEST_F(ListenerTest, EchoServerOverListener) {
  // Accepted sockets echo everything back on the same connection.
  listener_->SetAcceptCallback([&](TcpSocket* s) {
    s->SetReadableCallback([s] {
      size_t n;
      while ((n = s->Read(1 << 20)) > 0) {
        s->Write(n);
      }
    });
  });
  TcpSocket* client = bed_.CreateClient(TcpSocket::Config{});
  uint64_t echoed = 0;
  client->SetReadableCallback([&] {
    size_t n;
    while ((n = client->Read(1 << 20)) > 0) {
      echoed += n;
    }
  });
  client->SetEstablishedCallback([&] { client->Write(30000); });
  bed_.loop().RunUntil(Sec(5.0));
  EXPECT_EQ(echoed, 30000u);
}

TEST_F(ListenerTest, SaturatingFlowsThroughListenerShareBottleneck) {
  std::vector<std::unique_ptr<SinkApp>> readers;
  listener_->SetAcceptCallback([&](TcpSocket* s) {
    readers.push_back(std::make_unique<SinkApp>(s));
    readers.back()->Start();
  });
  std::vector<std::unique_ptr<RawTcpSink>> sinks;
  std::vector<std::unique_ptr<IperfApp>> apps;
  std::vector<TcpSocket*> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(bed_.CreateClient(TcpSocket::Config{}));
    sinks.push_back(std::make_unique<RawTcpSink>(clients.back()));
    apps.push_back(std::make_unique<IperfApp>(&bed_.loop(), sinks.back().get()));
    apps.back()->Start();
  }
  bed_.loop().RunUntil(Sec(20.0));
  ASSERT_EQ(listener_->accepted(), 3u);
  double total = 0;
  for (const auto& conn : listener_->connections()) {
    total += RateOver(static_cast<int64_t>(conn->app_bytes_read()),
                      TimeDelta::FromSecondsInt(20))
                 .ToMbps();
  }
  EXPECT_GT(total, 8.0);  // ~10 Mbps bottleneck shared by 3 accepted flows
}

TEST_F(ListenerTest, StrayNonSynPacketsIgnored) {
  // A data segment for an unknown flow must not create a connection.
  TcpSegmentPayload seg;
  seg.seq = 0;
  seg.payload_bytes = 100;
  Packet pkt;
  pkt.flow_id = 424242;
  pkt.size_bytes = 152;
  pkt.payload = std::make_shared<TcpSegmentPayload>(seg);
  bed_.path().server_demux().Deliver(std::move(pkt));
  EXPECT_EQ(listener_->accepted(), 0u);
}

}  // namespace
}  // namespace element
