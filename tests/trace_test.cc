// Unit tests for the ground-truth tracer (the perf-profiler analogue) and the
// flow meter.

#include <gtest/gtest.h>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/flow_meter.h"
#include "src/trace/ground_truth.h"

namespace element {
namespace {

SimTime Ms(int64_t ms) { return SimTime::FromNanos(ms * 1'000'000); }
SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

TEST(GroundTruthTracerTest, SenderDelayIsWriteToFirstTransmit) {
  GroundTruthTracer tracer;
  tracer.OnAppWrite(0, 1000, Ms(10));
  tracer.OnTcpTransmit(0, 500, Ms(15), false);
  tracer.OnTcpTransmit(500, 1000, Ms(40), false);
  ASSERT_EQ(tracer.sender_delay().count(), 2u);
  EXPECT_NEAR(tracer.sender_delay().samples()[0], 0.005, 1e-9);
  EXPECT_NEAR(tracer.sender_delay().samples()[1], 0.030, 1e-9);
}

TEST(GroundTruthTracerTest, NetworkDelayPairsWithLastTransmit) {
  GroundTruthTracer tracer;
  tracer.OnAppWrite(0, 1000, Ms(0));
  tracer.OnTcpTransmit(0, 1000, Ms(5), false);
  // First copy lost; retransmitted at 105 ms, arrives at 130 ms.
  tracer.OnTcpTransmit(0, 1000, Ms(105), true);
  tracer.OnTcpRxSegment(0, 1000, Ms(130), true);
  ASSERT_EQ(tracer.network_delay().count(), 1u);
  EXPECT_NEAR(tracer.network_delay().samples()[0], 0.025, 1e-9);
}

TEST(GroundTruthTracerTest, ReceiverDelayIsArrivalToRead) {
  GroundTruthTracer tracer;
  tracer.OnAppWrite(0, 2000, Ms(0));
  tracer.OnTcpTransmit(0, 2000, Ms(1), false);
  tracer.OnTcpRxSegment(0, 1000, Ms(30), true);
  tracer.OnTcpRxSegment(1000, 2000, Ms(35), true);
  tracer.OnAppRead(0, 2000, Ms(40));  // read spans both arrival ranges
  ASSERT_EQ(tracer.receiver_delay().count(), 2u);
  EXPECT_NEAR(tracer.receiver_delay().samples()[0], 0.010, 1e-9);
  EXPECT_NEAR(tracer.receiver_delay().samples()[1], 0.005, 1e-9);
  // End-to-end = write -> read.
  ASSERT_EQ(tracer.end_to_end_delay().count(), 2u);
  EXPECT_NEAR(tracer.end_to_end_delay().samples()[0], 0.040, 1e-9);
}

TEST(GroundTruthTracerTest, OutOfOrderArrivalCoversEachByteOnce) {
  GroundTruthTracer tracer;
  tracer.OnAppWrite(0, 3000, Ms(0));
  tracer.OnTcpTransmit(0, 1000, Ms(1), false);
  tracer.OnTcpTransmit(1000, 2000, Ms(2), false);
  tracer.OnTcpTransmit(2000, 3000, Ms(3), false);
  // Middle segment lost initially; the others arrive, then the hole fills.
  tracer.OnTcpRxSegment(0, 1000, Ms(20), true);
  tracer.OnTcpRxSegment(2000, 3000, Ms(22), false);  // out of order
  tracer.OnTcpTransmit(1000, 2000, Ms(60), true);
  tracer.OnTcpRxSegment(1000, 2000, Ms(80), true);
  SimTime t;
  ASSERT_TRUE(tracer.ArrivalTimeOf(2500, &t));
  EXPECT_EQ(t, Ms(22));
  ASSERT_TRUE(tracer.ArrivalTimeOf(1500, &t));
  EXPECT_EQ(t, Ms(80));
  EXPECT_EQ(tracer.network_delay().count(), 3u);
}

TEST(GroundTruthTracerTest, GoBackNRewindDoesNotDoubleCountSenderDelay) {
  GroundTruthTracer tracer;
  tracer.OnAppWrite(0, 2000, Ms(0));
  tracer.OnTcpTransmit(0, 2000, Ms(5), false);
  // Pre-SACK style rewind resends the same bytes flagged fresh.
  tracer.OnTcpTransmit(0, 2000, Ms(300), false);
  EXPECT_EQ(tracer.sender_delay().count(), 1u);
  EXPECT_NEAR(tracer.sender_delay().samples()[0], 0.005, 1e-9);
}

TEST(GroundTruthTracerTest, RecordFromSkipsEarlySamples) {
  GroundTruthTracer::Config cfg;
  cfg.record_from = Ms(100);
  GroundTruthTracer tracer(cfg);
  tracer.OnAppWrite(0, 1000, Ms(0));
  tracer.OnTcpTransmit(0, 1000, Ms(5), false);  // before record_from: skipped
  tracer.OnAppWrite(1000, 2000, Ms(150));
  tracer.OnTcpTransmit(1000, 2000, Ms(170), false);
  ASSERT_EQ(tracer.sender_delay().count(), 1u);
  EXPECT_NEAR(tracer.sender_delay().samples()[0], 0.020, 1e-9);
}

TEST(GroundTruthTracerTest, LookupsFailBeforeData) {
  GroundTruthTracer tracer;
  SimTime t;
  EXPECT_FALSE(tracer.WriteTimeOf(0, &t));
  EXPECT_FALSE(tracer.FirstTxTimeOf(0, &t));
  EXPECT_FALSE(tracer.ArrivalTimeOf(0, &t));
  tracer.OnAppWrite(0, 100, Ms(1));
  EXPECT_TRUE(tracer.WriteTimeOf(50, &t));
  EXPECT_FALSE(tracer.WriteTimeOf(100, &t));  // half-open
}

TEST(GroundTruthTracerTest, CompositionSumsMeans) {
  GroundTruthTracer tracer;
  tracer.OnAppWrite(0, 1000, Ms(0));
  tracer.OnTcpTransmit(0, 1000, Ms(10), false);
  tracer.OnTcpRxSegment(0, 1000, Ms(40), true);
  tracer.OnAppRead(0, 1000, Ms(45));
  GroundTruthTracer::Composition c = tracer.MeanComposition();
  EXPECT_NEAR(c.sender_s, 0.010, 1e-9);
  EXPECT_NEAR(c.network_s, 0.030, 1e-9);
  EXPECT_NEAR(c.receiver_s, 0.005, 1e-9);
  EXPECT_NEAR(c.total_s, 0.045, 1e-9);
}

TEST(GroundTruthTracerTest, EndToEndConsistencyOnLiveFlow) {
  PathConfig path;
  Testbed bed(3, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(10.0));
  ASSERT_GT(tracer.end_to_end_delay().count(), 100u);
  // Invariants: components non-negative, network >= one-way floor 25 ms.
  EXPECT_GE(tracer.sender_delay().min(), 0.0);
  EXPECT_GE(tracer.network_delay().min(), 0.025);
  EXPECT_GE(tracer.receiver_delay().min(), 0.0);
  GroundTruthTracer::Composition c = tracer.MeanComposition();
  EXPECT_NEAR(c.total_s, tracer.end_to_end_delay().mean(), c.total_s * 0.25);
}

TEST(FlowMeterTest, MeasuresGoodput) {
  PathConfig path;
  path.rate = DataRate::Mbps(10);
  Testbed bed(4, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  FlowMeter meter(&bed.loop(), flow.receiver);
  meter.Start();
  bed.loop().RunUntil(Sec(20.0));
  EXPECT_NEAR(meter.MeanGoodput().ToMbps(), 9.5, 1.0);
  ASSERT_GT(meter.throughput_mbps().count(), 100u);
  // Steady-state samples hover near the link rate.
  EXPECT_NEAR(meter.throughput_mbps().MeanAfter(Sec(5.0)), 9.7, 0.8);
}

}  // namespace
}  // namespace element
