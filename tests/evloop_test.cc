// Unit tests for the discrete-event loop and periodic timers.

#include <gtest/gtest.h>

#include <vector>

#include "src/evloop/event_loop.h"

namespace element {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(SimTime::FromNanos(300), [&] { order.push_back(3); });
  loop.ScheduleAt(SimTime::FromNanos(100), [&] { order.push_back(1); });
  loop.ScheduleAt(SimTime::FromNanos(200), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().nanos(), 300);
}

TEST(EventLoopTest, FifoAmongEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(SimTime::FromNanos(50), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime fired;
  loop.ScheduleAfter(TimeDelta::FromMillis(10), [&] {
    loop.ScheduleAfter(TimeDelta::FromMillis(5), [&] { fired = loop.now(); });
  });
  loop.Run();
  EXPECT_EQ(fired.nanos(), 15'000'000);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.ScheduleAfter(TimeDelta::FromMillis(1), [&] { ran = true; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.processed_events(), 0u);
}

TEST(EventLoopTest, CancelUnknownIdIsNoop) {
  EventLoop loop;
  loop.Cancel(12345);  // must not crash
  bool ran = false;
  loop.ScheduleAfter(TimeDelta::Zero(), [&] { ran = true; });
  loop.Run();
  EXPECT_TRUE(ran);
}

TEST(EventLoopTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(SimTime::FromNanos(100), [&] { ++count; });
  loop.ScheduleAt(SimTime::FromNanos(900), [&] { ++count; });
  loop.RunUntil(SimTime::FromNanos(500));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now().nanos(), 500);
  loop.RunUntil(SimTime::FromNanos(1000));
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, EventScheduledInPastRunsNow) {
  EventLoop loop;
  loop.ScheduleAfter(TimeDelta::FromMillis(10), [&] {
    // Scheduling "in the past" clamps to now rather than going backwards.
    loop.ScheduleAt(SimTime::Zero(), [&] { EXPECT_EQ(loop.now().nanos(), 10'000'000); });
  });
  loop.Run();
}

TEST(EventLoopTest, StopHaltsProcessing) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(SimTime::FromNanos(1), [&] {
    ++count;
    loop.Stop();
  });
  loop.ScheduleAt(SimTime::FromNanos(2), [&] { ++count; });
  loop.Run();
  EXPECT_EQ(count, 1);
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      loop.ScheduleAfter(TimeDelta::FromNanos(1), recurse);
    }
  };
  loop.ScheduleAfter(TimeDelta::Zero(), recurse);
  loop.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.processed_events(), 10u);
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  EventLoop loop;
  std::vector<int64_t> fire_times;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(10),
                      [&] { fire_times.push_back(loop.now().nanos()); });
  timer.Start();
  loop.RunUntil(SimTime::FromNanos(35'000'000));
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], 10'000'000);
  EXPECT_EQ(fire_times[1], 20'000'000);
  EXPECT_EQ(fire_times[2], 30'000'000);
}

TEST(PeriodicTimerTest, StopCeasesFiring) {
  EventLoop loop;
  int count = 0;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(1), [&] {
    if (++count == 3) {
      timer.Stop();
    }
  });
  timer.Start();
  loop.RunUntil(SimTime::FromNanos(100'000'000));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, DoubleStartIsIdempotent) {
  EventLoop loop;
  int count = 0;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(1), [&] { ++count; });
  timer.Start();
  timer.Start();
  loop.RunUntil(SimTime::FromNanos(5'500'000));
  EXPECT_EQ(count, 5);
}

TEST(PeriodicTimerTest, DestructorCancels) {
  EventLoop loop;
  int count = 0;
  {
    PeriodicTimer timer(&loop, TimeDelta::FromMillis(1), [&] { ++count; });
    timer.Start();
  }
  loop.RunUntil(SimTime::FromNanos(10'000'000));
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTimerTest, CallbackMayChangePeriod) {
  EventLoop loop;
  std::vector<int64_t> times;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(10), [&] {
    times.push_back(loop.now().nanos());
    timer.set_period(TimeDelta::FromMillis(20));
  });
  timer.Start();
  loop.RunUntil(SimTime::FromNanos(60'000'000));
  // First at 10ms; then re-armed with the *old* period before the callback,
  // so second at 20ms, subsequent every 20ms.
  ASSERT_GE(times.size(), 3u);
  EXPECT_EQ(times[0], 10'000'000);
  EXPECT_EQ(times[1], 20'000'000);
  EXPECT_EQ(times[2], 40'000'000);
}

}  // namespace
}  // namespace element
