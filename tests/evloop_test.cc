// Unit tests for the discrete-event loop and periodic timers.

#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "src/evloop/event_loop.h"

namespace element {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(SimTime::FromNanos(300), [&] { order.push_back(3); });
  loop.ScheduleAt(SimTime::FromNanos(100), [&] { order.push_back(1); });
  loop.ScheduleAt(SimTime::FromNanos(200), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().nanos(), 300);
}

TEST(EventLoopTest, FifoAmongEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(SimTime::FromNanos(50), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime fired;
  loop.ScheduleAfter(TimeDelta::FromMillis(10), [&] {
    loop.ScheduleAfter(TimeDelta::FromMillis(5), [&] { fired = loop.now(); });
  });
  loop.Run();
  EXPECT_EQ(fired.nanos(), 15'000'000);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.ScheduleAfter(TimeDelta::FromMillis(1), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  loop.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.processed_events(), 0u);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoopTest, CancelInvalidHandleIsNoop) {
  EventLoop loop;
  EXPECT_FALSE(loop.Cancel(EventHandle{}));                  // default handle
  EXPECT_FALSE(loop.Cancel(EventHandle{12345u, 7u}));        // out-of-range slot
  bool ran = false;
  loop.ScheduleAfter(TimeDelta::Zero(), [&] { ran = true; });
  loop.Run();
  EXPECT_TRUE(ran);
}

TEST(EventLoopTest, CancelAfterFireIsStaleNoop) {
  EventLoop loop;
  int ran = 0;
  auto id = loop.ScheduleAfter(TimeDelta::FromMillis(1), [&] { ++ran; });
  loop.Run();
  EXPECT_EQ(ran, 1);
  // The event fired; its slot was released and the generation bumped.
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, StaleHandleDoesNotCancelSlotReuser) {
  EventLoop loop;
  auto first = loop.ScheduleAfter(TimeDelta::FromMillis(1), [] {});
  EXPECT_TRUE(loop.Cancel(first));
  // The freed slot is reused by the next schedule, with a new generation.
  bool ran = false;
  auto second = loop.ScheduleAfter(TimeDelta::FromMillis(1), [&] { ran = true; });
  EXPECT_EQ(second.slot, first.slot);
  EXPECT_NE(second.generation, first.generation);
  EXPECT_FALSE(loop.Cancel(first));  // stale: must not kill the new event
  loop.Run();
  EXPECT_TRUE(ran);
}

TEST(EventLoopTest, DoubleCancelReturnsFalse) {
  EventLoop loop;
  auto id = loop.ScheduleAfter(TimeDelta::FromMillis(1), [] {});
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));
  loop.Run();
}

TEST(EventLoopTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(SimTime::FromNanos(100), [&] { ++count; });
  loop.ScheduleAt(SimTime::FromNanos(900), [&] { ++count; });
  loop.RunUntil(SimTime::FromNanos(500));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now().nanos(), 500);
  loop.RunUntil(SimTime::FromNanos(1000));
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, EventScheduledInPastRunsNow) {
  EventLoop loop;
  loop.ScheduleAfter(TimeDelta::FromMillis(10), [&] {
    // Scheduling "in the past" clamps to now rather than going backwards.
    loop.ScheduleAt(SimTime::Zero(), [&] { EXPECT_EQ(loop.now().nanos(), 10'000'000); });
  });
  loop.Run();
}

TEST(EventLoopTest, StopHaltsProcessing) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(SimTime::FromNanos(1), [&] {
    ++count;
    loop.Stop();
  });
  loop.ScheduleAt(SimTime::FromNanos(2), [&] { ++count; });
  loop.Run();
  EXPECT_EQ(count, 1);
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      loop.ScheduleAfter(TimeDelta::FromNanos(1), recurse);
    }
  };
  loop.ScheduleAfter(TimeDelta::Zero(), recurse);
  loop.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.processed_events(), 10u);
}

TEST(PeriodicTimerTest, FiresAtPeriod) {
  EventLoop loop;
  std::vector<int64_t> fire_times;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(10),
                      [&] { fire_times.push_back(loop.now().nanos()); });
  timer.Start();
  loop.RunUntil(SimTime::FromNanos(35'000'000));
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], 10'000'000);
  EXPECT_EQ(fire_times[1], 20'000'000);
  EXPECT_EQ(fire_times[2], 30'000'000);
}

TEST(PeriodicTimerTest, StopCeasesFiring) {
  EventLoop loop;
  int count = 0;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(1), [&] {
    if (++count == 3) {
      timer.Stop();
    }
  });
  timer.Start();
  loop.RunUntil(SimTime::FromNanos(100'000'000));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, DoubleStartIsIdempotent) {
  EventLoop loop;
  int count = 0;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(1), [&] { ++count; });
  timer.Start();
  timer.Start();
  loop.RunUntil(SimTime::FromNanos(5'500'000));
  EXPECT_EQ(count, 5);
}

TEST(PeriodicTimerTest, DestructorCancels) {
  EventLoop loop;
  int count = 0;
  {
    PeriodicTimer timer(&loop, TimeDelta::FromMillis(1), [&] { ++count; });
    timer.Start();
  }
  loop.RunUntil(SimTime::FromNanos(10'000'000));
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTimerTest, CallbackMayChangePeriod) {
  EventLoop loop;
  std::vector<int64_t> times;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(10), [&] {
    times.push_back(loop.now().nanos());
    timer.set_period(TimeDelta::FromMillis(20));
  });
  timer.Start();
  loop.RunUntil(SimTime::FromNanos(60'000'000));
  // First at 10ms; set_period(20ms) re-arms the in-flight fire to
  // last-fire + 20ms, so subsequent fires land at 30ms, 50ms, ...
  ASSERT_GE(times.size(), 3u);
  EXPECT_EQ(times[0], 10'000'000);
  EXPECT_EQ(times[1], 30'000'000);
  EXPECT_EQ(times[2], 50'000'000);
}

TEST(PeriodicTimerTest, SetPeriodReArmsInFlightFire) {
  // Regression: set_period() used to leave the already-pending fire at the
  // old deadline, so shortening the period only took effect one stale period
  // later. It must re-anchor the pending fire at base + new period.
  EventLoop loop;
  std::vector<int64_t> times;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(100),
                      [&] { times.push_back(loop.now().nanos()); });
  timer.Start();
  loop.ScheduleAt(SimTime::FromNanos(5'000'000),
                  [&] { timer.set_period(TimeDelta::FromMillis(10)); });
  loop.RunUntil(SimTime::FromNanos(25'000'000));
  // Re-anchored to Start (0ms) + 10ms, then every 10ms — not 100ms.
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 10'000'000);
  EXPECT_EQ(times[1], 20'000'000);
}

TEST(PeriodicTimerTest, SetPeriodPastDeadlineClampsToNow) {
  // Shrinking the period so far that base + period is already in the past
  // must fire promptly (clamped to now), not in the past or never.
  EventLoop loop;
  std::vector<int64_t> times;
  PeriodicTimer timer(&loop, TimeDelta::FromMillis(100),
                      [&] { times.push_back(loop.now().nanos()); });
  timer.Start();
  loop.ScheduleAt(SimTime::FromNanos(50'000'000),
                  [&] { timer.set_period(TimeDelta::FromMillis(1)); });
  loop.RunUntil(SimTime::FromNanos(52'500'000));
  ASSERT_GE(times.size(), 2u);
  EXPECT_EQ(times[0], 50'000'000);  // clamped re-arm fires immediately
  EXPECT_EQ(times[1], 51'000'000);
}

// ---------------------------------------------------------------------------
// Timer (one-shot, re-armable)
// ---------------------------------------------------------------------------

TEST(TimerTest, FiresOnceAtDeadline) {
  EventLoop loop;
  std::vector<int64_t> times;
  Timer t(&loop, [&] { times.push_back(loop.now().nanos()); });
  EXPECT_FALSE(t.pending());
  t.Restart(SimTime::FromNanos(500));
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.deadline().nanos(), 500);
  loop.Run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 500);
  EXPECT_FALSE(t.pending());
}

TEST(TimerTest, RestartMovesDeadlineBothDirections) {
  EventLoop loop;
  std::vector<int64_t> times;
  Timer t(&loop, [&] { times.push_back(loop.now().nanos()); });
  t.Restart(SimTime::FromNanos(1000));
  t.Restart(SimTime::FromNanos(200));  // earlier
  EXPECT_EQ(t.deadline().nanos(), 200);
  loop.Run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 200);

  times.clear();
  t.Restart(loop.now() + TimeDelta::FromNanos(100));
  t.Restart(loop.now() + TimeDelta::FromNanos(900));  // later
  loop.Run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 200 + 900);
}

TEST(TimerTest, CancelPreventsFire) {
  EventLoop loop;
  bool ran = false;
  Timer t(&loop, [&] { ran = true; });
  t.RestartAfter(TimeDelta::FromMillis(1));
  EXPECT_TRUE(t.Cancel());
  EXPECT_FALSE(t.pending());
  EXPECT_FALSE(t.Cancel());  // already idle
  loop.Run();
  EXPECT_FALSE(ran);
}

TEST(TimerTest, RestartFromOwnCallbackReusesSlot) {
  EventLoop loop;
  int fires = 0;
  Timer t(&loop, [&] {
    if (++fires < 5) {
      t.RestartAfter(TimeDelta::FromMillis(1));
    }
  });
  t.RestartAfter(TimeDelta::FromMillis(1));
  size_t slots_before = loop.slab_slots();
  loop.Run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(loop.slab_slots(), slots_before);  // re-arm never allocates
}

TEST(TimerTest, DestructorCancelsPendingFire) {
  EventLoop loop;
  bool ran = false;
  {
    Timer t(&loop, [&] { ran = true; });
    t.RestartAfter(TimeDelta::FromMillis(1));
  }
  loop.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(TimerTest, RestartPastDeadlineClampsToNow) {
  EventLoop loop;
  SimTime fired;
  Timer t(&loop, [&] { fired = loop.now(); });
  loop.ScheduleAfter(TimeDelta::FromMillis(10), [&] {
    t.Restart(SimTime::Zero());  // in the past: clamps to now
  });
  loop.Run();
  EXPECT_EQ(fired.nanos(), 10'000'000);
}

TEST(TimerTest, EqualTimeOrderFollowsArmOrder) {
  // A Timer::Restart draws a fresh sequence number exactly like a schedule,
  // so equal-deadline events fire in arm order regardless of mechanism.
  EventLoop loop;
  std::vector<int> order;
  Timer t(&loop, [&] { order.push_back(1); });
  loop.ScheduleAt(SimTime::FromNanos(100), [&] { order.push_back(0); });
  t.Restart(SimTime::FromNanos(100));
  loop.ScheduleAt(SimTime::FromNanos(100), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Bounded growth under cancellation churn (no tombstones)
// ---------------------------------------------------------------------------

TEST(EventLoopTest, MillionCancelledTimersStayBounded) {
  // True O(log n) cancellation releases the heap slot and slab record
  // immediately. A tombstone design would grow the heap to a million entries
  // here; the index-addressable heap must stay at a handful.
  EventLoop loop;
  // Keep one far-future event alive so the loop has steady-state occupancy.
  Timer keeper(&loop, [] {});
  keeper.Restart(SimTime::Zero() + TimeDelta::FromSecondsInt(1'000'000));
  for (int i = 0; i < 1'000'000; ++i) {
    auto h = loop.ScheduleAfter(TimeDelta::FromSecondsInt(3600), [] {});
    ASSERT_TRUE(loop.Cancel(h));
  }
  EXPECT_EQ(loop.pending_events(), 1u);
  EXPECT_LE(loop.heap_capacity(), 64u);
  EXPECT_LE(loop.slab_slots(), 256u);  // a single slab chunk suffices
  loop.AuditHeapInvariant();
  keeper.Cancel();
}

// ---------------------------------------------------------------------------
// InlineCallback storage
// ---------------------------------------------------------------------------

TEST(InlineCallbackTest, SmallCapturesStayInline) {
  int a = 0;
  InlineCallback small([&a] { ++a; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(a, 1);

  struct Big {
    char pad[96];
  } big{};
  int b = 0;
  InlineCallback large([big, &b] {
    (void)big;
    ++b;
  });
  EXPECT_FALSE(large.is_inline());
  large();
  EXPECT_EQ(b, 1);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  int count = 0;
  InlineCallback cb([&count] { ++count; });
  InlineCallback moved(std::move(cb));
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(count, 1);
  InlineCallback assigned;
  assigned = std::move(moved);
  assigned();
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace element
