// Unit tests for ELEMENT's delay estimators (Algorithms 1 and 2) and the
// tcp_info tracker, driven by synthetic tcp_info snapshots.

#include <gtest/gtest.h>

#include <vector>

#include "src/element/delay_estimator.h"
#include "src/element/tcp_info_tracker.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Ms(int64_t ms) { return SimTime::FromNanos(ms * 1'000'000); }

TcpInfoData SenderInfo(uint64_t bytes_acked, uint32_t unacked, uint32_t mss = 1000) {
  TcpInfoData info;
  info.tcpi_bytes_acked = bytes_acked;
  info.tcpi_unacked = unacked;
  info.tcpi_snd_mss = mss;
  info.tcpi_snd_cwnd = 10;
  info.tcpi_snd_ssthresh = 100;
  info.tcpi_rtt_us = 50000;
  return info;
}

TcpInfoData ReceiverInfo(uint64_t segs_in, uint32_t rcv_mss = 1000) {
  TcpInfoData info;
  info.tcpi_segs_in = segs_in;
  info.tcpi_rcv_mss = rcv_mss;
  return info;
}

TEST(SenderEstimatorTest, EstimateFormulaMatchesPaper) {
  // B_est = bytes_acked + unacked * snd_mss.
  EXPECT_EQ(SenderDelayEstimator::EstimateSentBytes(SenderInfo(5000, 3)), 8000u);
  EXPECT_EQ(SenderDelayEstimator::EstimateSentBytes(SenderInfo(0, 0)), 0u);
}

TEST(SenderEstimatorTest, MatchesRecordsAgainstEstimatedSentBytes) {
  SenderDelayEstimator est;
  std::vector<DelayReport> reports;
  est.set_report_sink([&](const DelayReport& r) { reports.push_back(r); });

  est.OnAppSend(1000, Ms(0));
  est.OnAppSend(2000, Ms(10));
  est.OnAppSend(3000, Ms(20));
  // Estimated sent bytes = 2000: the first two records have left TCP.
  est.OnTcpInfoSample(SenderInfo(1000, 1), Ms(50));
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].delay.ToMillis(), 50);
  EXPECT_EQ(reports[1].delay.ToMillis(), 40);
  EXPECT_EQ(est.pending_records(), 1u);
  EXPECT_EQ(est.latest_delay().ToMillis(), 40);
  // Remaining record matches later.
  est.OnTcpInfoSample(SenderInfo(3000, 0), Ms(70));
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[2].delay.ToMillis(), 50);
  EXPECT_EQ(est.pending_records(), 0u);
}

TEST(SenderEstimatorTest, NoReportWhenNothingLeftTcp) {
  SenderDelayEstimator est;
  est.OnAppSend(5000, Ms(0));
  est.OnTcpInfoSample(SenderInfo(0, 2), Ms(10));  // only 2000 estimated sent
  EXPECT_FALSE(est.has_estimate());
  EXPECT_EQ(est.pending_records(), 1u);
}

TEST(SenderEstimatorTest, ReportCarriesTcpState) {
  SenderDelayEstimator est;
  DelayReport last;
  est.set_report_sink([&](const DelayReport& r) { last = r; });
  est.OnAppSend(100, Ms(0));
  TcpInfoData info = SenderInfo(100, 0);
  est.OnTcpInfoSample(info, Ms(5));
  EXPECT_EQ(last.snd_cwnd, 10u);
  EXPECT_EQ(last.snd_ssthresh, 100u);
  EXPECT_EQ(last.rtt_us, 50000u);
}

TEST(SenderEstimatorTest, SeriesAndSamplesAccumulate) {
  SenderDelayEstimator est;
  for (int i = 0; i < 10; ++i) {
    est.OnAppSend(static_cast<uint64_t>(i + 1) * 100, Ms(i * 10));
  }
  est.OnTcpInfoSample(SenderInfo(1000, 0), Ms(200));
  EXPECT_EQ(est.delay_samples().count(), 10u);
  EXPECT_EQ(est.delay_series().count(), 10u);
}

TEST(SenderEstimatorTest, NotsentFormulaIsExactWithPartialSegments) {
  SenderDelayEstimator est(SenderDelayEstimator::SentBytesFormula::kNotsentBased);
  est.OnAppSend(2500, Ms(0));  // app wrote 2500 bytes total
  TcpInfoData info = SenderInfo(/*acked=*/0, /*unacked=*/2);  // paper would say 2000
  info.tcpi_notsent_bytes = 600;  // exactly 1900 actually left TCP
  EXPECT_EQ(est.EstimateSentBytesForMatching(info), 1900u);
  // The paper formula on the same snapshot rounds to whole segments.
  EXPECT_EQ(SenderDelayEstimator::EstimateSentBytes(info), 2000u);
}

TEST(ReceiverEstimatorTest, EstimateFormulaMatchesPaper) {
  EXPECT_EQ(ReceiverDelayEstimator::EstimateReceivedBytes(ReceiverInfo(7)), 7000u);
}

TEST(ReceiverEstimatorTest, RecordsOnlyOnProgress) {
  ReceiverDelayEstimator est;
  est.OnTcpInfoSample(ReceiverInfo(5), Ms(0));
  est.OnTcpInfoSample(ReceiverInfo(5), Ms(10));  // no progress: no new record
  est.OnTcpInfoSample(ReceiverInfo(6), Ms(20));
  EXPECT_EQ(est.pending_records(), 2u);
}

TEST(ReceiverEstimatorTest, ReadMatchesCoveringRecord) {
  ReceiverDelayEstimator est;
  est.OnTcpInfoSample(ReceiverInfo(2), Ms(0));   // 2000 bytes at TCP by t=0
  est.OnTcpInfoSample(ReceiverInfo(4), Ms(10));  // 4000 bytes at TCP by t=10
  // App reads 1500 bytes at t=30: record "2000@0" covers it (first with
  // bytes > 1500): delay 30 ms.
  est.OnAppReceive(1500, Ms(30), ReceiverInfo(4));
  ASSERT_TRUE(est.has_estimate());
  EXPECT_EQ(est.latest_delay().ToMillis(), 30);
  // App reads to 2500 at t=35: the 2000@0 record is consumed; 4000@10 covers:
  // delay 25 ms.
  est.OnAppReceive(2500, Ms(35), ReceiverInfo(4));
  EXPECT_EQ(est.latest_delay().ToMillis(), 25);
  EXPECT_EQ(est.pending_records(), 1u);
}

TEST(ReceiverEstimatorTest, NoEstimateWhenAllRecordsConsumed) {
  ReceiverDelayEstimator est;
  est.OnTcpInfoSample(ReceiverInfo(1), Ms(0));
  est.OnAppReceive(5000, Ms(10), ReceiverInfo(1));  // read beyond all records
  EXPECT_FALSE(est.has_estimate());
  EXPECT_EQ(est.pending_records(), 0u);
}

TEST(TrackerTest, PollsAtConfiguredPeriod) {
  PathConfig path;
  Testbed bed(1, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  TcpInfoTracker tracker(&bed.loop(), flow.sender, TimeDelta::FromMillis(10));
  tracker.Start();
  bed.loop().RunUntil(SimTime::FromNanos(1'005'000'000));
  EXPECT_NEAR(static_cast<double>(tracker.samples_taken()), 100.0, 2.0);
  tracker.Stop();
  uint64_t frozen = tracker.samples_taken();
  bed.loop().RunUntil(SimTime::FromNanos(2'000'000'000));
  EXPECT_EQ(tracker.samples_taken(), frozen);
}

TEST(TrackerTest, ThroughputTracksAckedBytes) {
  PathConfig path;
  path.rate = DataRate::Mbps(10);
  Testbed bed(2, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  TcpInfoTracker tracker(&bed.loop(), flow.sender);
  tracker.Start();
  // Saturating sender + reader.
  flow.sender->SetEstablishedCallback([&] { flow.sender->Write(1 << 24); });
  flow.sender->SetWritableCallback([&] { flow.sender->Write(1 << 24); });
  flow.receiver->SetReadableCallback([&] {
    while (flow.receiver->Read(1 << 20) > 0) {
    }
  });
  bed.loop().RunUntil(SimTime::FromNanos(15'000'000'000LL));
  EXPECT_NEAR(tracker.throughput().ToMbps(), 9.6, 1.0);
  EXPECT_GT(tracker.latest_info().tcpi_bytes_acked, 10'000'000u);
}

TEST(TrackerTest, SharedPageMatchesGetTcpInfo) {
  PathConfig path;
  Testbed bed(4, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  flow.sender->SetEstablishedCallback([&] { flow.sender->Write(100000); });
  flow.receiver->SetReadableCallback([&] {
    while (flow.receiver->Read(1 << 20) > 0) {
    }
  });
  for (int step = 1; step <= 20; ++step) {
    bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(step) * 100'000'000));
    TcpInfoData a = flow.sender->GetTcpInfo();
    const TcpInfoData& b = flow.sender->SharedInfoPage();
    EXPECT_EQ(a.tcpi_bytes_acked, b.tcpi_bytes_acked);
    EXPECT_EQ(a.tcpi_unacked, b.tcpi_unacked);
    EXPECT_EQ(a.tcpi_snd_cwnd, b.tcpi_snd_cwnd);
    EXPECT_EQ(a.tcpi_segs_in, b.tcpi_segs_in);
    EXPECT_EQ(a.tcpi_rtt_us, b.tcpi_rtt_us);
  }
  // Repeated reads without traffic return the same cached page.
  const TcpInfoData* p1 = &flow.sender->SharedInfoPage();
  const TcpInfoData* p2 = &flow.sender->SharedInfoPage();
  EXPECT_EQ(p1, p2);
}

TEST(TrackerTest, SharedPageModeTracksEqually) {
  PathConfig path;
  Testbed bed(5, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  TcpInfoTracker tracker(&bed.loop(), flow.sender);
  tracker.set_use_shared_page(true);
  tracker.Start();
  flow.sender->SetEstablishedCallback([&] { flow.sender->Write(1 << 22); });
  flow.sender->SetWritableCallback([&] { flow.sender->Write(1 << 22); });
  flow.receiver->SetReadableCallback([&] {
    while (flow.receiver->Read(1 << 20) > 0) {
    }
  });
  bed.loop().RunUntil(SimTime::FromNanos(10'000'000'000LL));
  EXPECT_NEAR(tracker.throughput().ToMbps(), 9.6, 1.0);
  EXPECT_GT(tracker.latest_info().tcpi_bytes_acked, 5'000'000u);
}

TEST(TrackerTest, FeedsBothEstimators) {
  PathConfig path;
  Testbed bed(3, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  SenderDelayEstimator snd;
  ReceiverDelayEstimator rcv;
  TcpInfoTracker snd_tracker(&bed.loop(), flow.sender);
  TcpInfoTracker rcv_tracker(&bed.loop(), flow.receiver);
  snd_tracker.set_sender_estimator(&snd);
  rcv_tracker.set_receiver_estimator(&rcv);
  snd_tracker.Start();
  rcv_tracker.Start();
  flow.sender->SetEstablishedCallback([&] {
    size_t w = flow.sender->Write(200000);
    snd.OnAppSend(flow.sender->app_bytes_written(), bed.loop().now());
    (void)w;
  });
  flow.receiver->SetReadableCallback([&] {
    while (flow.receiver->Read(1 << 20) > 0) {
    }
    rcv.OnAppReceive(flow.receiver->app_bytes_read(), bed.loop().now(),
                     rcv_tracker.latest_info());
  });
  bed.loop().RunUntil(SimTime::FromNanos(10'000'000'000LL));
  EXPECT_TRUE(snd.has_estimate());
  EXPECT_TRUE(rcv.has_estimate());
  EXPECT_GE(snd.latest_delay(), TimeDelta::Zero());
}

}  // namespace
}  // namespace element
