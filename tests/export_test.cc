// Tests for the trace export helpers (CSV/JSON), the packet log, and the
// RFC 2861 idle-restart behaviour added to the stack.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/netsim/pfifo_fast.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/export.h"
#include "src/trace/packet_log.h"

namespace element {
namespace {

SimTime Ms(int64_t ms) { return SimTime::FromNanos(ms * 1'000'000); }
SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

TEST(ExportTest, TimeSeriesCsvRoundTrip) {
  TimeSeries ts;
  ts.Add(Ms(100), 1.5);
  ts.Add(Ms(200), 2.5);
  std::ostringstream os;
  WriteTimeSeriesCsv(os, ts, "delay_s");
  EXPECT_EQ(os.str(), "t_seconds,delay_s\n0.1,1.5\n0.2,2.5\n");
}

TEST(ExportTest, CdfCsvHasQuantileRows) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  std::ostringstream os;
  WriteCdfCsv(os, s, {0.5, 0.9}, "v");
  std::string out = os.str();
  EXPECT_NE(out.find("quantile,v"), std::string::npos);
  EXPECT_NE(out.find("0.5,50.5"), std::string::npos);
  EXPECT_NE(out.find("0.9,90.1"), std::string::npos);
}

TEST(ExportTest, SummaryJsonFields) {
  SampleSet s;
  s.Add(1.0);
  s.Add(3.0);
  std::ostringstream os;
  WriteSummaryJson(os, s, "test");
  std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"test\""), std::string::npos);
  EXPECT_NE(out.find("\"count\":2"), std::string::npos);
  EXPECT_NE(out.find("\"mean\":2"), std::string::npos);
}

TEST(ExportTest, CompositionJson) {
  GroundTruthTracer tracer;
  tracer.OnAppWrite(0, 100, Ms(0));
  tracer.OnTcpTransmit(0, 100, Ms(10), false);
  std::ostringstream os;
  WriteCompositionJson(os, tracer.MeanComposition());
  EXPECT_NE(os.str().find("\"sender_s\":0.01"), std::string::npos);
}

TEST(ExportTest, FileVariantsWriteAndFail) {
  TimeSeries ts;
  ts.Add(Ms(1), 1.0);
  std::string path = "/tmp/element_export_test.csv";
  ASSERT_TRUE(WriteTimeSeriesCsvFile(path, ts, "v"));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "t_seconds,v");
  std::remove(path.c_str());
  EXPECT_FALSE(WriteTimeSeriesCsvFile("/nonexistent_dir_xyz/file.csv", ts, "v"));
}

TEST(PacketLogTest, RecordsAndComputesRates) {
  EventLoop loop;
  struct Null : PacketSink {
    void Deliver(Packet) override {}
  } null;
  PacketLog log(&loop, &null, /*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    loop.ScheduleAfter(TimeDelta::FromMillis(1), [] {});
    loop.Run();
    Packet p;
    p.flow_id = (i % 2 == 0) ? 1 : 2;
    p.size_bytes = 1000;
    log.Deliver(std::move(p));
  }
  EXPECT_EQ(log.total_packets(), 6u);
  EXPECT_EQ(log.entries().size(), 4u);  // ring bounded
  EXPECT_EQ(log.total_bytes(), 6000u);
  // 4 retained entries, 1 ms apart: window rate = 3000 bytes / 3 ms = 8 Mbps.
  EXPECT_NEAR(log.RateInWindow().ToMbps(), 8.0, 0.1);
  SampleSet gaps = log.InterArrivalTimes();
  EXPECT_EQ(gaps.count(), 3u);
  EXPECT_NEAR(gaps.mean(), 0.001, 1e-6);
}

TEST(PacketLogTest, InterArrivalTimesSeparateInterleavedFlows) {
  EventLoop loop;
  struct Null : PacketSink {
    void Deliver(Packet) override {}
  } null;
  PacketLog log(&loop, &null);
  // Interleaved arrivals: flow 1 every 2 ms (at 1, 3, 5, 7 ms), flow 2 at
  // 2 ms then 8 ms. A per-flow query must see only its own gaps, not the
  // 1 ms spacing of the merged log.
  auto deliver = [&](uint64_t flow_id) {
    Packet p;
    p.flow_id = flow_id;
    p.size_bytes = 1000;
    log.Deliver(std::move(p));
  };
  const struct {
    int at_ms;
    uint64_t flow;
  } arrivals[] = {{1, 1}, {2, 2}, {3, 1}, {5, 1}, {7, 1}, {8, 2}};
  TimeDelta elapsed = TimeDelta::Zero();
  for (const auto& a : arrivals) {
    loop.ScheduleAfter(TimeDelta::FromMillis(a.at_ms) - elapsed, [] {});
    loop.Run();
    elapsed = TimeDelta::FromMillis(a.at_ms);
    deliver(a.flow);
  }

  SampleSet flow1 = log.InterArrivalTimes(1);
  ASSERT_EQ(flow1.count(), 3u);
  EXPECT_NEAR(flow1.min(), 0.002, 1e-9);
  EXPECT_NEAR(flow1.max(), 0.002, 1e-9);

  SampleSet flow2 = log.InterArrivalTimes(2);
  ASSERT_EQ(flow2.count(), 1u);
  EXPECT_NEAR(flow2.mean(), 0.006, 1e-9);

  // All-flows view (flow_id 0) sees the merged 1-2 ms gaps.
  SampleSet merged = log.InterArrivalTimes();
  EXPECT_EQ(merged.count(), 5u);
  EXPECT_NEAR(merged.min(), 0.001, 1e-9);

  // A flow with no (or one) retained packet yields an empty sample set
  // rather than a fabricated gap.
  EXPECT_TRUE(log.InterArrivalTimes(99).empty());
  deliver(3);
  EXPECT_TRUE(log.InterArrivalTimes(3).empty());
}

TEST(PacketLogTest, DumpFormatsLines) {
  EventLoop loop;
  struct Null : PacketSink {
    void Deliver(Packet) override {}
  } null;
  PacketLog log(&loop, &null);
  Packet p;
  p.flow_id = 7;
  p.size_bytes = 1500;
  p.ecn_marked = true;
  log.Deliver(std::move(p));
  std::ostringstream os;
  log.Dump(os);
  EXPECT_NE(os.str().find("flow=7 len=1500 [CE]"), std::string::npos);
}

TEST(IdleRestartTest, CwndDecaysAcrossIdlePeriod) {
  PathConfig path;
  path.rate = DataRate::Mbps(50);
  Testbed bed(31, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  SinkApp reader(flow.receiver);
  reader.Start();
  // Phase 1: a 4 MB transfer grows cwnd (pumped through writable callbacks).
  uint64_t target = 4 << 20;
  auto pump = [&] {
    while (flow.sender->app_bytes_written() < target) {
      if (flow.sender->Write(target - flow.sender->app_bytes_written()) == 0) {
        break;
      }
    }
  };
  flow.sender->SetWritableCallback(pump);
  flow.sender->SetEstablishedCallback(pump);
  bed.loop().RunUntil(Sec(5.0));
  ASSERT_EQ(flow.receiver->app_bytes_read(), 4u << 20);
  uint32_t grown = flow.sender->GetTcpInfo().tcpi_snd_cwnd;
  EXPECT_GT(grown, 30u);
  // Phase 2: 3 s of silence, then a new burst: cwnd must have been validated
  // down before the new data bursts out.
  bed.loop().RunUntil(Sec(8.0));
  target += 1 << 20;
  pump();
  uint32_t after_idle = flow.sender->GetTcpInfo().tcpi_snd_cwnd;
  EXPECT_LT(after_idle, grown / 2 + 1);
  // The transfer still completes.
  bed.loop().RunUntil(Sec(15.0));
  EXPECT_EQ(flow.receiver->app_bytes_read(), (4u << 20) + (1u << 20));
}

TEST(IdleRestartTest, NoDecayWithoutIdle) {
  PathConfig path;
  path.rate = DataRate::Mbps(50);
  Testbed bed(32, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(5.0));
  uint32_t w1 = flow.sender->GetTcpInfo().tcpi_snd_cwnd;
  bed.loop().RunUntil(Sec(10.0));
  uint32_t w2 = flow.sender->GetTcpInfo().tcpi_snd_cwnd;
  // Continuously busy: no halvings (cwnd stays in the same band).
  EXPECT_GT(w2, w1 / 2);
}

}  // namespace
}  // namespace element
