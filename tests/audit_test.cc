// Tests for the invariant-audit layer (src/common/check.h and the audit
// hooks): death tests prove the audits actually fire when a conservation law
// is deliberately violated through test-only hooks, and the Release variant
// proves ELEMENT_AUDIT/ELEMENT_DCHECK compile to nothing under NDEBUG.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/element/delay_estimator.h"
#include "src/netsim/codel.h"
#include "src/netsim/fq_codel.h"
#include "src/netsim/pfifo_fast.h"
#include "src/netsim/pie.h"
#include "src/netsim/red.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

Packet MakePacket(uint64_t flow, uint32_t size = 1500) {
  Packet p;
  p.flow_id = flow;
  p.size_bytes = size;
  return p;
}

std::unique_ptr<Qdisc> MakeQdisc(const std::string& name) {
  if (name == "pfifo_fast") {
    return std::make_unique<PfifoFast>(100);
  }
  if (name == "codel") {
    return std::make_unique<CoDel>();
  }
  if (name == "fq_codel") {
    return std::make_unique<FqCoDel>();
  }
  if (name == "pie") {
    return std::make_unique<Pie>(PieParams(), Rng(7));
  }
  return std::make_unique<Red>(Rng(7));
}

// ---------------------------------------------------------------------------
// ELEMENT_CHECK semantics (all build types)
// ---------------------------------------------------------------------------

TEST(CheckTest, PassingChecksAreSilent) {
  ELEMENT_CHECK(1 + 1 == 2) << "not printed";
  ELEMENT_DCHECK(true);
  ELEMENT_AUDIT(true);
}

TEST(CheckTest, StreamedContextNotEvaluatedWhenConditionHolds) {
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 0;
  };
  ELEMENT_CHECK(true) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckDeathTest, CheckFiresInEveryBuildType) {
  EXPECT_DEATH(ELEMENT_CHECK(1 == 2) << "context " << 42,
               "CHECK failed.*1 == 2.*context 42");
}

// ---------------------------------------------------------------------------
// Delay-decomposition conservation (plain predicate, all build types)
// ---------------------------------------------------------------------------

TEST(DelayDecompositionTest, ConservesWhenComponentsSum) {
  EXPECT_TRUE(DelayDecompositionConserves(0.050, 0.025, 0.010, 0.085));
  // Within 5% relative tolerance.
  EXPECT_TRUE(DelayDecompositionConserves(0.050, 0.025, 0.010, 0.088));
  // Near-zero delays are covered by the absolute slack.
  EXPECT_TRUE(DelayDecompositionConserves(0.0005, 0.0004, 0.0002, 0.0));
}

TEST(DelayDecompositionTest, DetectsAccountingHoles) {
  // A 2x hole between the components and the end-to-end measurement.
  EXPECT_FALSE(DelayDecompositionConserves(0.050, 0.025, 0.010, 0.170));
  EXPECT_FALSE(DelayDecompositionConserves(0.200, 0.025, 0.010, 0.085));
}

// ---------------------------------------------------------------------------
// Latent issues fixed by this layer
// ---------------------------------------------------------------------------

TEST(RngGuardTest, ParetoStaysFinite) {
  Rng rng(123);
  for (int i = 0; i < 200000; ++i) {
    double v = rng.Pareto(1.0, 1.2);
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, 1.0);
  }
}

TEST(SndBufTest, OccupancyIsZeroAfterFinAcked) {
  PathConfig path;
  Testbed bed(5, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  flow.sender->SetEstablishedCallback([&] { flow.sender->Write(20000); });
  bed.loop().RunUntil(Sec(2.0));
  flow.sender->Close();
  bed.loop().RunUntil(Sec(6.0));
  ASSERT_TRUE(flow.sender->fin_acked());
  // snd_una sits one past write_seq (the FIN's phantom byte); occupancy must
  // clamp at zero instead of wrapping to ~2^64.
  EXPECT_EQ(flow.sender->SndBufUsed(), 0u);
  EXPECT_GT(flow.sender->SndBufFree(), 0u);
}

#if ELEMENT_AUDITS_ENABLED

// ---------------------------------------------------------------------------
// Audit-violation death tests (Debug / ELEMENT_FORCE_AUDITS builds)
// ---------------------------------------------------------------------------

class QdiscAuditDeathTest : public ::testing::TestWithParam<std::string> {};

TEST_P(QdiscAuditDeathTest, ConservationViolationAborts) {
  auto q = MakeQdisc(GetParam());
  ASSERT_TRUE(q->Enqueue(MakePacket(1), SimTime::Zero()));
  q->TestOnlyCorruptStatsForAudit();
  EXPECT_DEATH(q->Dequeue(SimTime::FromNanos(1000)), "conservation violated");
}

TEST_P(QdiscAuditDeathTest, ConservationViolationAbortsOnEnqueueToo) {
  auto q = MakeQdisc(GetParam());
  q->TestOnlyCorruptStatsForAudit();
  EXPECT_DEATH(q->Enqueue(MakePacket(1), SimTime::Zero()), "conservation violated");
}

INSTANTIATE_TEST_SUITE_P(AllQdiscs, QdiscAuditDeathTest,
                         ::testing::Values("pfifo_fast", "codel", "fq_codel", "pie", "red"));

TEST(TcpAuditDeathTest, SequenceSpaceViolationAborts) {
  PathConfig path;
  Testbed bed(11, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  flow.sender->SetEstablishedCallback([&] { flow.sender->Write(50000); });
  bed.loop().RunUntil(Sec(2.0));
  ASSERT_TRUE(flow.sender->established());
  EXPECT_DEATH(flow.sender->TestOnlyCorruptSequenceStateForAudit(), "snd_una");
}

TEST(DelayDecompositionDeathTest, AuditAbortsOnHole) {
  EXPECT_DEATH(AuditDelayDecomposition(0.200, 0.025, 0.010, 0.085),
               "delay decomposition does not conserve");
}

#else  // !ELEMENT_AUDITS_ENABLED

// ---------------------------------------------------------------------------
// Release builds: audits must compile to nothing
// ---------------------------------------------------------------------------

TEST(AuditReleaseTest, ViolationsDoNotAbortWhenAuditsCompiledOut) {
  auto q = MakeQdisc("codel");
  ASSERT_TRUE(q->Enqueue(MakePacket(1), SimTime::Zero()));
  q->TestOnlyCorruptStatsForAudit();
  EXPECT_TRUE(q->Dequeue(SimTime::FromNanos(1000)).has_value());  // no abort

  ELEMENT_DCHECK(false) << "never printed";
  ELEMENT_AUDIT(false) << "never printed";
  AuditDelayDecomposition(0.200, 0.025, 0.010, 0.085);  // no abort
}

TEST(AuditReleaseTest, DisabledChecksDoNotEvaluateOperands) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return false;
  };
  ELEMENT_DCHECK(count()) << count();
  ELEMENT_AUDIT(count()) << count();
  EXPECT_EQ(evaluations, 0);
}

#endif  // ELEMENT_AUDITS_ENABLED

}  // namespace
}  // namespace element
