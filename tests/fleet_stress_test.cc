// Fleet stress test (labeled `slow`, excluded from tier-1): runs a
// 200-scenario qdisc x cc x seed sweep through the parallel executor and
// checks the determinism contract at scale — the deterministic report for
// jobs=4 must be byte-identical to jobs=1, every scenario must complete, and
// the aggregate must cover every flow.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/runner/fleet.h"
#include "src/runner/scenario.h"

namespace element {
namespace {

ScenarioSuite StressSuite() {
  ScenarioSuite suite;
  std::string err;
  bool ok = ScenarioSuite::ParseJson(R"({
    "suite": "stress",
    "defaults": {
      "app": "legacy",
      "profile": "wired",
      "rate_mbps": 10,
      "rtt_ms": 20,
      "queue_packets": 50,
      "num_flows": 1,
      "duration_s": 3.0,
      "warmup_s": 0.5
    },
    "sweeps": [
      {"name": "grid",
       "qdisc": ["pfifo_fast", "codel", "fq_codel", "pie", "red"],
       "cc": ["cubic", "reno", "bbr", "vegas"],
       "seed": {"base": 1, "count": 10}}
    ]
  })",
                                     &suite, &err);
  EXPECT_TRUE(ok) << err;
  return suite;
}

TEST(FleetStressTest, TwoHundredScenarioSweepIsDeterministicUnderParallelism) {
  ScenarioSuite suite = StressSuite();
  ASSERT_EQ(suite.scenarios.size(), 200u);

  FleetOptions parallel;
  parallel.jobs = 4;
  FleetSummary par = RunFleet(suite.scenarios, parallel);
  EXPECT_EQ(par.completed, 200u);
  EXPECT_EQ(par.failed, 0u);
  EXPECT_EQ(par.cancelled, 0u);

  FleetOptions serial;
  serial.jobs = 1;
  FleetSummary ser = RunFleet(suite.scenarios, serial);
  EXPECT_EQ(ser.completed, 200u);

  std::string par_json = FleetReportJson(suite.name, par, /*deterministic=*/true).Dump();
  std::string ser_json = FleetReportJson(suite.name, ser, /*deterministic=*/true).Dump();
  EXPECT_EQ(par_json, ser_json) << "fleet aggregate depends on thread scheduling";

  FleetAggregate agg = AggregateResults(par.results);
  EXPECT_EQ(agg.scenarios(), 200u);
  EXPECT_EQ(agg.flows(), 200u);
  EXPECT_GT(agg.metrics.StatsOrEmpty("goodput_mbps").mean(), 0.0);
  const Histogram& e2e = agg.metrics.HistOrEmpty("e2e_delay_s");
  EXPECT_GT(e2e.count(), 0u);
  // Every delay the sweep produces fits the default histogram range.
  EXPECT_EQ(e2e.underflow(), 0u);
  EXPECT_EQ(e2e.overflow(), 0u);
}

}  // namespace
}  // namespace element
