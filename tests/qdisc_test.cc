// Tests for the queueing disciplines: pfifo_fast, CoDel, FQ-CoDel, PIE —
// including the conservation invariant (enqueued = dequeued + dropped +
// queued) checked property-style across all disciplines.

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/netsim/codel.h"
#include "src/netsim/fq_codel.h"
#include "src/netsim/pfifo_fast.h"
#include "src/netsim/pie.h"
#include "src/netsim/red.h"

namespace element {
namespace {

Packet MakePacket(uint64_t flow, uint32_t size = 1500, uint32_t band = 1) {
  Packet p;
  p.flow_id = flow;
  p.size_bytes = size;
  p.priority_band = band;
  return p;
}

SimTime At(int64_t ms) { return SimTime::FromNanos(ms * 1'000'000); }

TEST(PfifoFastTest, FifoOrderWithinBand) {
  PfifoFast q(10);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.Enqueue(MakePacket(i), At(0)));
  }
  for (uint64_t i = 0; i < 5; ++i) {
    auto p = q.Dequeue(At(1));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->flow_id, i);
  }
  EXPECT_FALSE(q.Dequeue(At(1)).has_value());
}

TEST(PfifoFastTest, StrictPriorityAcrossBands) {
  PfifoFast q(10);
  ASSERT_TRUE(q.Enqueue(MakePacket(1, 100, /*band=*/2), At(0)));
  ASSERT_TRUE(q.Enqueue(MakePacket(2, 100, /*band=*/0), At(0)));
  ASSERT_TRUE(q.Enqueue(MakePacket(3, 100, /*band=*/1), At(0)));
  EXPECT_EQ(q.Dequeue(At(0))->flow_id, 2u);  // band 0 first
  EXPECT_EQ(q.Dequeue(At(0))->flow_id, 3u);  // then band 1
  EXPECT_EQ(q.Dequeue(At(0))->flow_id, 1u);  // then band 2
}

TEST(PfifoFastTest, TailDropAtLimit) {
  PfifoFast q(3);
  EXPECT_TRUE(q.Enqueue(MakePacket(1), At(0)));
  EXPECT_TRUE(q.Enqueue(MakePacket(2), At(0)));
  EXPECT_TRUE(q.Enqueue(MakePacket(3), At(0)));
  EXPECT_FALSE(q.Enqueue(MakePacket(4), At(0)));
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(q.packet_count(), 3u);
}

TEST(PfifoFastTest, ByteCountTracksContents) {
  PfifoFast q(10);
  q.Enqueue(MakePacket(1, 1000), At(0));
  q.Enqueue(MakePacket(2, 500), At(0));
  EXPECT_EQ(q.byte_count(), 1500);
  q.Dequeue(At(0));
  EXPECT_EQ(q.byte_count(), 500);
}

TEST(CoDelTest, NoDropsWhenSojournBelowTarget) {
  CoDel q;
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(q.Enqueue(MakePacket(1), At(round)));
    ASSERT_TRUE(q.Enqueue(MakePacket(1), At(round)));
    // Dequeued 2 ms later: sojourn well below the 5 ms target.
    EXPECT_TRUE(q.Dequeue(At(round + 2)).has_value());
    EXPECT_TRUE(q.Dequeue(At(round + 2)).has_value());
  }
  EXPECT_EQ(q.stats().dropped_packets, 0u);
}

TEST(CoDelTest, DropsAfterPersistentlyHighSojourn) {
  CoDel q;
  // Feed a standing queue: everything dequeues 50 ms after enqueue (>> 5 ms
  // target) for well over one 100 ms interval.
  int64_t t = 0;
  uint64_t drops_before = q.stats().dropped_packets;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(q.Enqueue(MakePacket(1), At(t)));
    ASSERT_TRUE(q.Enqueue(MakePacket(1), At(t)));
    q.Dequeue(At(t + 50));
    t += 5;
  }
  EXPECT_GT(q.stats().dropped_packets, drops_before + 3);
}

TEST(CoDelTest, EcnMarksInsteadOfDropping) {
  CoDel q;
  q.set_ecn_enabled(true);
  int64_t t = 0;
  int marked = 0;
  for (int i = 0; i < 400; ++i) {
    Packet p = MakePacket(1);
    p.ecn_capable = true;
    ASSERT_TRUE(q.Enqueue(std::move(p), At(t)));
    Packet filler = MakePacket(1);
    filler.ecn_capable = true;
    ASSERT_TRUE(q.Enqueue(std::move(filler), At(t)));
    auto out = q.Dequeue(At(t + 50));
    if (out.has_value() && out->ecn_marked) {
      ++marked;
    }
    t += 5;
  }
  EXPECT_GT(marked, 3);
  EXPECT_EQ(q.stats().dropped_packets, 0u);
  EXPECT_EQ(q.stats().ecn_marked_packets, static_cast<uint64_t>(marked));
}

TEST(CoDelTest, ControlLawAcceleratesDrops) {
  CoDelParams params;
  CoDelState state(params);
  // Persistently above target with a large standing queue.
  SimTime t = SimTime::Zero();
  int drops = 0;
  SimTime first_drop;
  SimTime fifth_drop;
  for (int i = 0; i < 3000; ++i) {
    if (state.ShouldDrop(TimeDelta::FromMillis(50), t, 100000)) {
      ++drops;
      if (drops == 1) {
        first_drop = t;
      }
      if (drops == 5) {
        fifth_drop = t;
        break;
      }
    }
    t += TimeDelta::FromMillis(1);
  }
  ASSERT_EQ(drops, 5);
  // Interval/sqrt(count) spacing: the gap from drop 1 to 5 must be well under
  // 4 full intervals.
  EXPECT_LT((fifth_drop - first_drop).ToMillis(), 4 * 100);
}

TEST(FqCoDelTest, IsolatesFlowsRoundRobin) {
  FqCoDelParams params;
  FqCoDel q(params);
  // Flow 1 floods; flow 2 sends a little. DRR must interleave them.
  for (int i = 0; i < 50; ++i) {
    q.Enqueue(MakePacket(1, 1500), At(0));
  }
  for (int i = 0; i < 5; ++i) {
    q.Enqueue(MakePacket(2, 1500), At(0));
  }
  int flow2_in_first_10 = 0;
  for (int i = 0; i < 10; ++i) {
    auto p = q.Dequeue(At(1));
    ASSERT_TRUE(p.has_value());
    if (p->flow_id == 2) {
      ++flow2_in_first_10;
    }
  }
  EXPECT_GE(flow2_in_first_10, 4);
}

TEST(FqCoDelTest, DrainsCompletely) {
  FqCoDel q;
  for (uint64_t f = 0; f < 8; ++f) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(q.Enqueue(MakePacket(f), At(0)));
    }
  }
  size_t dequeued = 0;
  while (q.Dequeue(At(1)).has_value()) {
    ++dequeued;
  }
  EXPECT_EQ(dequeued, 80u);
  EXPECT_EQ(q.packet_count(), 0u);
  EXPECT_EQ(q.byte_count(), 0);
}

TEST(FqCoDelTest, OverLimitDropsFromFattestFlow) {
  FqCoDelParams params;
  params.limit_packets = 20;
  FqCoDel q(params);
  for (int i = 0; i < 18; ++i) {
    q.Enqueue(MakePacket(1, 1500), At(0));
  }
  for (int i = 0; i < 4; ++i) {
    q.Enqueue(MakePacket(2, 300), At(0));
  }
  // The fat flow must have absorbed the drops.
  EXPECT_GT(q.stats().dropped_packets, 0u);
  size_t flow2 = 0;
  while (auto p = q.Dequeue(At(1))) {
    if (p->flow_id == 2) {
      ++flow2;
    }
  }
  EXPECT_EQ(flow2, 4u);
}

TEST(PieTest, NoDropsOnLightLoad) {
  Pie q(Rng(1));
  int64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(q.Enqueue(MakePacket(1), At(t)));
    q.Dequeue(At(t + 1));  // 1 ms sojourn << 15 ms target
    t += 2;
  }
  EXPECT_EQ(q.stats().dropped_packets, 0u);
  EXPECT_LT(q.drop_probability(), 0.01);
}

TEST(PieTest, DropProbabilityRisesUnderStandingQueue) {
  PieParams params;
  params.limit_packets = 100000;
  Pie q(params, Rng(2));
  // Arrivals at 2x the departure rate build a standing queue.
  int64_t t_us = 0;
  int64_t next_deq_us = 0;
  for (int i = 0; i < 20000; ++i) {
    q.Enqueue(MakePacket(1), SimTime::FromNanos(t_us * 1000));
    t_us += 500;  // 2000 pkt/s arrivals
    while (next_deq_us < t_us) {
      q.Dequeue(SimTime::FromNanos(next_deq_us * 1000));  // 1000 pkt/s service
      next_deq_us += 1000;
    }
  }
  EXPECT_GT(q.drop_probability(), 0.01);
  EXPECT_GT(q.stats().dropped_packets, 50u);
}

TEST(PieTest, BurstAllowancePermitsInitialBurst) {
  Pie q(Rng(3));
  // A short burst right at start must pass untouched (150 ms allowance).
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(q.Enqueue(MakePacket(1), At(i / 10)));
  }
  EXPECT_EQ(q.stats().dropped_packets, 0u);
}

TEST(RedTest, NoEarlyDropsBelowMinThreshold) {
  RedParams params;
  params.min_threshold_packets = 10;
  Red q(params, Rng(5));
  // Keep the standing queue at ~5 packets: below min_th, never drops.
  int64_t t = 0;
  for (int i = 0; i < 2000; ++i) {
    for (int k = 0; k < 5; ++k) {
      ASSERT_TRUE(q.Enqueue(MakePacket(1), At(t)));
    }
    for (int k = 0; k < 5; ++k) {
      q.Dequeue(At(t + 1));
    }
    t += 2;
  }
  EXPECT_EQ(q.stats().dropped_packets, 0u);
}

TEST(RedTest, EarlyDropProbabilityGrowsWithAverageQueue) {
  RedParams params;
  params.min_threshold_packets = 10;
  params.max_threshold_packets = 40;
  params.limit_packets = 100000;
  Red q(params, Rng(6));
  // Hold a standing queue of ~30 packets (between min and max thresholds):
  // top the queue back up every iteration so early drops do not drain it.
  int64_t t = 0;
  uint64_t offered = 0;
  for (int i = 0; i < 20000; ++i) {
    while (q.packet_count() < 30) {
      q.Enqueue(MakePacket(1), At(t));
      ++offered;
    }
    q.Dequeue(At(t + 1));
    t += 2;
  }
  // Early drops happened, at a moderate rate (max_p 0.1 ballpark).
  double drop_rate = static_cast<double>(q.stats().dropped_packets) / offered;
  EXPECT_GT(drop_rate, 0.01);
  EXPECT_LT(drop_rate, 0.35);
  EXPECT_GT(q.average_queue(), 10.0);
}

TEST(RedTest, IdleDecayShrinksAverage) {
  RedParams params;
  Red q(params, Rng(7));
  int64_t t = 0;
  for (int i = 0; i < 50; ++i) {
    q.Enqueue(MakePacket(1), At(t));
  }
  while (q.Dequeue(At(t)).has_value()) {
  }
  double avg_before = q.average_queue();
  // A long idle period must decay the average toward zero.
  q.Enqueue(MakePacket(1), At(t + 10000));
  EXPECT_LT(q.average_queue(), avg_before * 0.5);
}

TEST(RedTest, EcnMarksInsteadOfDrops) {
  RedParams params;
  params.min_threshold_packets = 5;
  params.max_threshold_packets = 20;
  params.limit_packets = 100000;
  Red q(params, Rng(8));
  q.set_ecn_enabled(true);
  int64_t t = 0;
  for (int i = 0; i < 15; ++i) {
    Packet p = MakePacket(1);
    p.ecn_capable = true;
    q.Enqueue(std::move(p), At(t));
  }
  for (int i = 0; i < 20000; ++i) {
    Packet p = MakePacket(1);
    p.ecn_capable = true;
    q.Enqueue(std::move(p), At(t));
    q.Dequeue(At(t + 1));
    t += 2;
  }
  EXPECT_GT(q.stats().ecn_marked_packets, 10u);
  EXPECT_EQ(q.stats().dropped_packets, 0u);
}

// ---------------------------------------------------------------------------
// Conservation property across all disciplines
// ---------------------------------------------------------------------------

class QdiscConservationTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Qdisc> Make() {
    std::string name = GetParam();
    if (name == "pfifo_fast") {
      return std::make_unique<PfifoFast>(50);
    }
    if (name == "codel") {
      CoDelParams p;
      p.limit_packets = 50;
      return std::make_unique<CoDel>(p);
    }
    if (name == "fq_codel") {
      FqCoDelParams p;
      p.limit_packets = 50;
      return std::make_unique<FqCoDel>(p);
    }
    if (name == "pie") {
      PieParams p;
      p.limit_packets = 50;
      return std::make_unique<Pie>(p, Rng(77));
    }
    RedParams p;
    p.limit_packets = 50;
    return std::make_unique<Red>(p, Rng(78));
  }
};

TEST_P(QdiscConservationTest, EnqueuedEqualsDequeuedPlusDroppedPlusQueued) {
  auto q = Make();
  Rng rng(99);
  uint64_t offered = 0;
  uint64_t accepted = 0;
  uint64_t dequeued = 0;
  int64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Bernoulli(0.6)) {
      ++offered;
      if (q->Enqueue(MakePacket(rng.UniformInt(1, 5), 1500), At(t))) {
        ++accepted;
      }
    }
    if (rng.Bernoulli(0.5)) {
      if (q->Dequeue(At(t + 1)).has_value()) {
        ++dequeued;
      }
    }
    t += 3;
  }
  const QdiscStats& s = q->stats();
  // Every offered packet was either counted as enqueued or dropped.
  EXPECT_EQ(s.enqueued_packets + (offered - accepted), offered);
  // AQMs may drop after enqueue, so: enqueued = dequeued + internal drops + queued.
  uint64_t internal_drops = s.dropped_packets - (offered - accepted);
  EXPECT_EQ(s.enqueued_packets, s.dequeued_packets + internal_drops + q->packet_count());
  EXPECT_EQ(s.dequeued_packets, dequeued);
}

INSTANTIATE_TEST_SUITE_P(AllQdiscs, QdiscConservationTest,
                         ::testing::Values("pfifo_fast", "codel", "fq_codel", "pie", "red"));

}  // namespace
}  // namespace element
