// Tests for the Discussion-section (§7) extensions: the event-driven
// delay/jitter monitor, pluggable rate controllers, the QoS latency-budget
// hook, and the instrumented-qdisc lower-layer probe.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/delay_event_monitor.h"
#include "src/element/element_socket.h"
#include "src/element/rate_controller.h"
#include "src/netsim/instrumented_qdisc.h"
#include "src/netsim/pfifo_fast.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

namespace element {
namespace {

SimTime Ms(int64_t ms) { return SimTime::FromNanos(ms * 1'000'000); }
SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

DelayReport Report(int64_t t_ms, int64_t delay_ms) {
  DelayReport r;
  r.t = Ms(t_ms);
  r.delay = TimeDelta::FromMillis(delay_ms);
  return r;
}

TEST(DelayEventMonitorTest, FiresOnceAboveThresholdWithHysteresis) {
  DelayEventMonitor::Thresholds thr;
  thr.delay_threshold = TimeDelta::FromMillis(100);
  std::vector<DelayEventMonitor::Event> events;
  DelayEventMonitor monitor(thr, [&](const DelayEventMonitor::Event& e) { events.push_back(e); });

  monitor.OnReport(Report(0, 50));
  monitor.OnReport(Report(10, 150));  // exceeds -> event
  monitor.OnReport(Report(20, 160));  // still above -> no repeat
  monitor.OnReport(Report(30, 90));   // between 80 and 100: not re-armed yet
  monitor.OnReport(Report(40, 70));   // below 0.8*thr -> recovered event
  monitor.OnReport(Report(50, 150));  // exceeds again -> second event
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, DelayEventMonitor::Event::Kind::kDelayExceeded);
  EXPECT_EQ(events[1].kind, DelayEventMonitor::Event::Kind::kDelayRecovered);
  EXPECT_EQ(events[2].kind, DelayEventMonitor::Event::Kind::kDelayExceeded);
  EXPECT_EQ(monitor.delay_events(), 2u);
}

// Regression coverage for the hysteresis state machine: one sustained
// excursion must produce exactly one kDelayExceeded no matter how many
// above-threshold reports arrive, oscillation inside the dead band
// [rearm_fraction*thr, thr) must produce nothing, and the eventual recovery
// fires kDelayRecovered exactly once.
TEST(DelayEventMonitorTest, SustainedExcursionDoesNotRefire) {
  DelayEventMonitor::Thresholds thr;
  thr.delay_threshold = TimeDelta::FromMillis(100);
  std::vector<DelayEventMonitor::Event> events;
  DelayEventMonitor monitor(thr, [&](const DelayEventMonitor::Event& e) { events.push_back(e); });

  monitor.OnReport(Report(0, 150));  // exceeds -> the one and only event
  for (int i = 1; i <= 50; ++i) {
    monitor.OnReport(Report(i * 10, 150 + (i % 7) * 20));  // stays above
  }
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, DelayEventMonitor::Event::Kind::kDelayExceeded);

  // Dead band: below the threshold but above the re-arm point. Neither a
  // repeat excursion nor a recovery may fire here.
  for (int i = 51; i <= 60; ++i) {
    monitor.OnReport(Report(i * 10, (i % 2 == 0) ? 85 : 99));
  }
  ASSERT_EQ(events.size(), 1u);

  // Drop below 0.8*thr: exactly one recovery, repeated low values stay quiet.
  for (int i = 61; i <= 70; ++i) {
    monitor.OnReport(Report(i * 10, 40));
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, DelayEventMonitor::Event::Kind::kDelayRecovered);
  EXPECT_EQ(monitor.delay_events(), 1u);
  EXPECT_EQ(monitor.delay_recoveries(), 1u);

  // The end-of-run registry mirror carries the same counts.
  telemetry::MetricRegistry registry;
  monitor.PublishMetrics(&registry, "monitor.");
  EXPECT_EQ(registry.CounterValue("monitor.delay_events"), 1u);
  EXPECT_EQ(registry.CounterValue("monitor.delay_recoveries"), 1u);
  EXPECT_EQ(registry.CounterValue("monitor.jitter_events"), 0u);
}

TEST(DelayEventMonitorTest, JitterExcursionDetected) {
  DelayEventMonitor::Thresholds thr;
  thr.jitter_threshold = TimeDelta::FromMillis(30);
  int jitter_events = 0;
  DelayEventMonitor monitor(thr, [&](const DelayEventMonitor::Event& e) {
    if (e.kind == DelayEventMonitor::Event::Kind::kJitterExceeded) {
      ++jitter_events;
    }
  });
  // Stable around 50 ms...
  for (int i = 0; i < 20; ++i) {
    monitor.OnReport(Report(i * 10, 50));
  }
  EXPECT_EQ(jitter_events, 0);
  // ...then a 100 ms spike: |150 - ~50| > 30.
  monitor.OnReport(Report(300, 150));
  EXPECT_EQ(jitter_events, 1);
}

TEST(DelayEventMonitorTest, AttachesToLiveEstimator) {
  PathConfig path;
  Testbed bed(11, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  ElementSocket em(&bed.loop(), flow.sender, opt);

  DelayEventMonitor::Thresholds thr;
  thr.delay_threshold = TimeDelta::FromMillis(50);
  int fired = 0;
  DelayEventMonitor monitor(thr, [&](const DelayEventMonitor::Event&) { ++fired; });
  monitor.Attach(&em.sender_estimator());

  struct EmSink : ByteSink {
    ElementSocket* em;
    size_t Write(size_t n) override {
      RetInfo r = em->Send(n);
      return r.size > 0 ? static_cast<size_t>(r.size) : 0;
    }
    void SetWritableCallback(std::function<void()> cb) override {
      em->SetReadyToSendCallback(std::move(cb));
    }
    TcpSocket* socket() override { return em->socket(); }
  } sink;
  sink.em = &em;
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(20.0));
  // An unminimized Cubic flow on this path exceeds 50 ms of send-buffer delay.
  EXPECT_GT(fired, 0);
  EXPECT_GT(monitor.ewma_delay(), TimeDelta::FromMillis(20));
}

TEST(FixedRateControllerTest, TokenBucketPacing) {
  EventLoop loop;
  FixedRateController ctl(&loop, DataRate::Mbps(8), /*burst=*/10000);  // 1 MB/s
  EXPECT_TRUE(ctl.MaySendNow());
  ctl.OnBytesAdmitted(10000, loop.now());
  EXPECT_FALSE(ctl.MaySendNow());
  TimeDelta retry = ctl.NextRetryDelay();
  EXPECT_GT(retry, TimeDelta::Zero());
  // After 5 ms, 5000 bytes of tokens have accrued.
  loop.ScheduleAfter(TimeDelta::FromMillis(5), [] {});
  loop.Run();
  EXPECT_TRUE(ctl.MaySendNow());
  ctl.OnBytesAdmitted(5000, loop.now());
  EXPECT_FALSE(ctl.MaySendNow());
}

TEST(CustomControllerTest, ElementSocketUsesFactory) {
  PathConfig path;
  path.rate = DataRate::Mbps(50);
  Testbed bed(13, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  ElementSocket::Options opt;
  opt.controller_factory = [](EventLoop* loop, TcpSocket*) {
    return std::make_unique<FixedRateController>(loop, DataRate::Mbps(4));
  };
  ElementSocket em(&bed.loop(), flow.sender, opt);
  EXPECT_EQ(em.controller()->name(), "fixed_rate");
  EXPECT_EQ(em.minimizer(), nullptr);  // not Algorithm 3

  struct EmSink : ByteSink {
    ElementSocket* em;
    size_t Write(size_t n) override {
      // em_send admits one segment per call under pacing; loop like the
      // interposer so the legacy pump sees short-write semantics.
      size_t total = 0;
      while (total < n) {
        RetInfo r = em->Send(n - total);
        if (r.size <= 0) {
          break;
        }
        total += static_cast<size_t>(r.size);
      }
      return total;
    }
    void SetWritableCallback(std::function<void()> cb) override {
      em->SetReadyToSendCallback(std::move(cb));
    }
    TcpSocket* socket() override { return em->socket(); }
  } sink;
  sink.em = &em;
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(20.0));
  // The custom controller caps the app at ~4 Mbps on a 50 Mbps link.
  double goodput = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                            TimeDelta::FromSecondsInt(20))
                       .ToMbps();
  EXPECT_NEAR(goodput, 4.0, 0.8);
}

TEST(LatencyBudgetTest, BudgetShiftsEquilibriumDelay) {
  auto run = [](TimeDelta budget) {
    PathConfig path;
    Testbed bed(17, path);
    Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
    GroundTruthTracer::Config tcfg;
    tcfg.record_from = Sec(5.0);
    GroundTruthTracer tracer(tcfg);
    flow.sender->telemetry().AttachSink(&tracer);
    flow.receiver->telemetry().AttachSink(&tracer);
    ElementSocket::Options opt;
    ElementSocket em(&bed.loop(), flow.sender, opt);
    em.SetLatencyBudget(budget);
    struct EmSink : ByteSink {
      ElementSocket* em;
      size_t Write(size_t n) override {
        size_t total = 0;
        while (total < n) {
          RetInfo r = em->Send(n - total);
          if (r.size <= 0) {
            break;
          }
          total += static_cast<size_t>(r.size);
        }
        return total;
      }
      void SetWritableCallback(std::function<void()> cb) override {
        em->SetReadyToSendCallback(std::move(cb));
      }
      TcpSocket* socket() override { return em->socket(); }
    } sink;
    sink.em = &em;
    IperfApp app(&bed.loop(), &sink);
    SinkApp reader(flow.receiver);
    app.Start();
    reader.Start();
    bed.loop().RunUntil(Sec(30.0));
    return tracer.sender_delay().mean();
  };
  double tight = run(TimeDelta::FromMillis(10));
  double loose = run(TimeDelta::FromMillis(80));
  EXPECT_LT(tight, loose);
  EXPECT_LT(tight, 0.05);
}

TEST(InstrumentedQdiscTest, RecordsSojournTimes) {
  InstrumentedQdisc q(std::make_unique<PfifoFast>(100));
  Packet p;
  p.flow_id = 1;
  p.size_bytes = 1500;
  q.Enqueue(std::move(p), Ms(0));
  Packet p2;
  p2.flow_id = 2;
  p2.size_bytes = 1500;
  q.Enqueue(std::move(p2), Ms(0));
  q.Dequeue(Ms(5));
  q.Dequeue(Ms(12));
  ASSERT_EQ(q.sojourn_samples().count(), 2u);
  EXPECT_NEAR(q.sojourn_samples().samples()[0], 0.005, 1e-9);
  EXPECT_NEAR(q.sojourn_samples().samples()[1], 0.012, 1e-9);
  EXPECT_EQ(q.name(), "pfifo_fast+probe");
  EXPECT_EQ(q.stats().dequeued_packets, 2u);
}

TEST(InstrumentedQdiscTest, SojournMatchesNetworkQueueingOnLiveFlow) {
  PathConfig path;
  path.instrument_bottleneck = true;
  Testbed bed(19, path);
  ASSERT_NE(bed.bottleneck_probe(), nullptr);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(20.0));
  // Lower-layer decomposition: mean network delay ~= propagation (25 ms) +
  // serialization + mean bottleneck sojourn.
  double sojourn = bed.bottleneck_probe()->sojourn_samples().mean();
  double network = tracer.network_delay().mean();
  EXPECT_NEAR(network, 0.025 + 0.0012 + sojourn, 0.01);
  EXPECT_GT(sojourn, 0.005);  // Cubic keeps a standing queue
}

}  // namespace
}  // namespace element
