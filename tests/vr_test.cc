// Tests for the VR streaming application (Section 5.2): frame accounting,
// the head-control channel, and the deadline-miss improvement from
// ELEMENT-driven adaptation.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/vr_app.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

struct VrRun {
  std::unique_ptr<Testbed> bed;
  std::unique_ptr<ElementSocket> em;
  std::unique_ptr<VrServer> server;
  std::unique_ptr<VrClient> client;
  Testbed::Flow flow;
};

VrRun MakeVrRun(uint64_t seed, bool with_element, DataRate rate, const VrConfig& cfg) {
  VrRun run;
  PathConfig path;
  path.rate = rate;
  path.one_way_delay = TimeDelta::FromMillis(10);
  path.queue_limit_packets = 150;
  run.bed = std::make_unique<Testbed>(seed, path);
  // VR server streams from the client side of the path (the bottleneck).
  run.flow = run.bed->CreateFlow(TcpSocket::Config{});
  if (with_element) {
    ElementSocket::Options opt;
    run.em = std::make_unique<ElementSocket>(&run.bed->loop(), run.flow.sender, opt);
  }
  run.server = std::make_unique<VrServer>(&run.bed->loop(), run.flow.sender, run.em.get(), cfg);
  run.client = std::make_unique<VrClient>(&run.bed->loop(), run.flow.receiver,
                                          run.server.get(), cfg);
  run.server->Start();
  run.client->Start();
  return run;
}

TEST(VrAppTest, DeliversFramesInOrder) {
  VrConfig cfg;
  cfg.initial_level = 0;  // light load: everything should arrive quickly
  VrRun run = MakeVrRun(1, false, DataRate::Mbps(50), cfg);
  run.bed->loop().RunUntil(Sec(10.0));
  EXPECT_GT(run.client->frames_received(), 500u);
  // Completion times are monotone in frame id.
  SimTime prev = SimTime::Zero();
  for (const VrFrameRecord& f : run.server->frames()) {
    if (f.completed) {
      EXPECT_GE(f.completed_at, prev);
      prev = f.completed_at;
    }
  }
}

TEST(VrAppTest, HeadControlMessagesFlowBack) {
  VrConfig cfg;
  cfg.initial_level = 0;
  VrRun run = MakeVrRun(2, false, DataRate::Mbps(50), cfg);
  run.bed->loop().RunUntil(Sec(10.0));
  // 50 ms cadence for 10 s ~ 200 messages.
  EXPECT_GT(run.server->control_messages_received(), 100u);
}

TEST(VrAppTest, OverloadedPlainTcpMissesDeadlines) {
  VrConfig cfg;  // top level 120 KB * 60 fps = 57.6 Mbps > 50 Mbps link
  VrRun run = MakeVrRun(3, false, DataRate::Mbps(50), cfg);
  run.bed->loop().RunUntil(Sec(20.0));
  EXPECT_GT(run.client->DeadlineMissFraction(), 0.3);
}

TEST(VrAppTest, ElementAdaptationMeetsDeadlines) {
  VrConfig cfg;
  VrRun run = MakeVrRun(4, true, DataRate::Mbps(50), cfg);
  run.bed->loop().RunUntil(Sec(20.0));
  EXPECT_LT(run.client->DeadlineMissFraction(), 0.05);
  // It still streams a meaningful number of frames.
  EXPECT_GT(run.client->frames_received(), 400u);
}

TEST(VrAppTest, AdaptationDownshiftsUnderCongestion) {
  VrConfig cfg;
  VrRun run = MakeVrRun(5, true, DataRate::Mbps(30), cfg);  // tighter link
  run.bed->loop().RunUntil(Sec(20.0));
  // From the top of the ladder (58 Mbps) it must have come down.
  EXPECT_LT(run.server->current_level(), 3);
  int dropped = 0;
  for (const VrFrameRecord& f : run.server->frames()) {
    dropped += f.dropped;
  }
  EXPECT_GT(dropped, 0);
}

TEST(VrAppTest, FrameDelayDistributionTighterWithElement) {
  VrConfig cfg;
  VrRun plain = MakeVrRun(6, false, DataRate::Mbps(50), cfg);
  plain.bed->loop().RunUntil(Sec(20.0));
  VrRun em = MakeVrRun(6, true, DataRate::Mbps(50), cfg);
  em.bed->loop().RunUntil(Sec(20.0));
  EXPECT_LT(em.client->frame_delays().Quantile(0.9),
            plain.client->frame_delays().Quantile(0.9) * 0.5);
}

}  // namespace
}  // namespace element
