// Tests for the trace-driven link model (CSV parsing, replay semantics,
// synthetic cellular traces) and the path-delay estimator.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"
#include "src/netsim/pfifo_fast.h"
#include "src/netsim/pipe.h"
#include "src/netsim/trace_link.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

TEST(TraceParseTest, ParsesCsvWithHeaderAndComments) {
  std::string csv =
      "t_seconds,mbps\n"
      "# a comment\n"
      "0,10\n"
      "2.5,25\n"
      "5,5\n";
  auto trace = TraceLinkModel::ParseCsv(csv);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].at.nanos(), 0);
  EXPECT_DOUBLE_EQ(trace[1].rate.ToMbps(), 25.0);
  EXPECT_EQ(trace[2].at.nanos(), 5'000'000'000);
}

TEST(TraceParseTest, RejectsMalformedAndUnorderedInput) {
  EXPECT_TRUE(TraceLinkModel::ParseCsv("0,10\nbogus line\n").empty());
  EXPECT_TRUE(TraceLinkModel::ParseCsv("5,10\n1,20\n").empty());
  EXPECT_TRUE(TraceLinkModel::ParseCsv("no commas here\n").empty());
}

TEST(TraceLinkTest, StepHoldAndLooping) {
  std::vector<TracePoint> trace = {
      {SimTime::Zero(), DataRate::Mbps(10)},
      {Sec(1.0), DataRate::Mbps(20)},
      {Sec(2.0), DataRate::Mbps(30)},
  };
  TraceLinkModel link(trace, TimeDelta::FromMillis(5));
  EXPECT_DOUBLE_EQ(link.RateAt(Sec(0.5)).ToMbps(), 10.0);
  EXPECT_DOUBLE_EQ(link.RateAt(Sec(1.5)).ToMbps(), 20.0);
  // After the last point the trace loops (cycle = 2 s).
  EXPECT_DOUBLE_EQ(link.RateAt(Sec(2.5)).ToMbps(), 10.0);
  EXPECT_DOUBLE_EQ(link.RateAt(Sec(3.5)).ToMbps(), 20.0);
}

TEST(TraceLinkTest, SynthesizedCellularTraceIsBoundedAndVaries) {
  Rng rng(42);
  auto trace = TraceLinkModel::SynthesizeCellular(&rng, DataRate::Mbps(20), Sec(60.0) - SimTime::Zero());
  ASSERT_GT(trace.size(), 500u);
  double lo = 1e18;
  double hi = 0;
  for (const TracePoint& p : trace) {
    lo = std::min(lo, p.rate.ToMbps());
    hi = std::max(hi, p.rate.ToMbps());
  }
  // Clamped to ~exp(+/-1.4) of the mean.
  EXPECT_GT(lo, 20.0 * 0.2);
  EXPECT_LT(hi, 20.0 * 4.5);
  EXPECT_GT(hi / lo, 1.5);  // it actually varies
}

TEST(TraceLinkTest, TcpRidesAReplayedTrace) {
  // Drive a full TCP flow over a synthesized cellular trace via a hand-built
  // path (Testbed has no trace LinkType; this is the power-user route).
  EventLoop loop;
  Rng rng(7);
  Rng trace_rng(8);
  auto trace = TraceLinkModel::SynthesizeCellular(&trace_rng, DataRate::Mbps(15),
                                                  Sec(60.0) - SimTime::Zero());
  DuplexPath path(&loop, &rng, std::make_unique<PfifoFast>(200),
                  std::make_unique<TraceLinkModel>(trace, TimeDelta::FromMillis(25)),
                  std::make_unique<PfifoFast>(1000),
                  std::make_unique<FixedLinkModel>(DataRate::Gbps(1), TimeDelta::FromMillis(25)));
  uint64_t flow_id = path.AllocateFlowId();
  TcpSocket sender(&loop, rng.Fork(), TcpSocket::Config{}, flow_id, &path.forward(),
                   &path.client_demux());
  TcpSocket receiver(&loop, rng.Fork(), TcpSocket::Config{}, flow_id, &path.reverse(),
                     &path.server_demux());
  receiver.Listen();
  sender.Connect();
  RawTcpSink sink(&sender);
  IperfApp app(&loop, &sink);
  SinkApp reader(&receiver);
  app.Start();
  reader.Start();
  loop.RunUntil(Sec(30.0));
  double goodput =
      RateOver(static_cast<int64_t>(receiver.app_bytes_read()), TimeDelta::FromSecondsInt(30))
          .ToMbps();
  // TCP extracts a decent share of a ~15 Mbps varying link.
  EXPECT_GT(goodput, 6.0);
  EXPECT_LT(goodput, 16.0);
}

TEST(PathDelayEstimatorTest, DecomposesPropagationAndQueueing) {
  PathDelayEstimator est;
  TcpInfoData info;
  info.tcpi_rtt_us = 50000;
  info.tcpi_min_rtt_us = 50000;
  est.OnTcpInfoSample(info, Sec(1.0));
  EXPECT_TRUE(est.has_estimate());
  EXPECT_EQ(est.base_rtt().ToMillis(), 50);
  EXPECT_EQ(est.queueing().ToMillis(), 0);
  EXPECT_EQ(est.one_way_network_delay().ToMillis(), 25);
  // Queue builds: srtt rises, base stays.
  info.tcpi_rtt_us = 130000;
  est.OnTcpInfoSample(info, Sec(2.0));
  EXPECT_EQ(est.base_rtt().ToMillis(), 50);
  EXPECT_EQ(est.queueing().ToMillis(), 80);
}

TEST(PathDelayEstimatorTest, LiveFlowMatchesConfiguredPath) {
  PathConfig path;  // 10 Mbps / 25 ms OWD
  Testbed bed(9, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  ElementSocket em(&bed.loop(), flow.sender, opt);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(20.0));
  // Base RTT ~= 2 * 25 ms + serialization; queueing positive under Cubic.
  EXPECT_NEAR(em.path_estimator().base_rtt().ToMillisF(), 51.5, 3.0);
  EXPECT_GT(em.path_estimator().queueing().ToMillisF(), 10.0);
}

}  // namespace
}  // namespace element
