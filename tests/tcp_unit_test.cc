// Protocol-level unit tests for TcpSocket: the socket is wired to a capturing
// sink and driven with hand-crafted segments, so handshake emissions, ACK
// policy, SACK block construction, ECN echo, Nagle, and window handling can
// be asserted packet by packet.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/netsim/pipe.h"
#include "src/tcpsim/tcp_segment.h"
#include "src/tcpsim/tcp_socket.h"

namespace element {
namespace {

const TcpSegmentPayload& Tcp(const Packet& pkt) {
  return *static_cast<const TcpSegmentPayload*>(pkt.payload.get());
}

class CaptureSink : public PacketSink {
 public:
  void Deliver(Packet pkt) override { sent.push_back(std::move(pkt)); }

  // Segments with payload, in emission order.
  std::vector<const Packet*> DataPackets() const {
    std::vector<const Packet*> out;
    for (const Packet& p : sent) {
      if (Tcp(p).payload_bytes > 0) {
        out.push_back(&p);
      }
    }
    return out;
  }
  std::vector<Packet> sent;
};

// One socket + scripted peer.
class TcpUnitTest : public ::testing::Test {
 protected:
  TcpUnitTest()
      : socket_(std::make_unique<TcpSocket>(&loop_, Rng(1), Config(), /*flow=*/1, &capture_,
                                            &demux_)) {}

  static TcpSocket::Config Config() {
    TcpSocket::Config cfg;
    cfg.sndbuf_autotune = false;
    cfg.sndbuf_bytes = 1 << 20;
    return cfg;
  }

  void Establish() {
    socket_->Connect();
    ASSERT_FALSE(capture_.sent.empty());
    EXPECT_TRUE(Tcp(capture_.sent.back()).syn);
    TcpSegmentPayload synack;
    synack.syn = true;
    synack.ack = true;
    synack.receive_window = 1 << 24;
    Inject(synack, 60);
    ASSERT_TRUE(socket_->established());
    capture_.sent.clear();
  }

  void Inject(const TcpSegmentPayload& seg, uint32_t wire_bytes, bool ce_mark = false) {
    Packet pkt;
    pkt.flow_id = 1;
    pkt.size_bytes = wire_bytes;
    pkt.created = loop_.now();
    pkt.ecn_marked = ce_mark;
    pkt.payload = std::make_shared<TcpSegmentPayload>(seg);
    socket_->Deliver(std::move(pkt));
  }

  void InjectData(uint64_t seq, uint32_t len, bool ce_mark = false) {
    TcpSegmentPayload seg;
    seg.seq = seq;
    seg.payload_bytes = len;
    seg.receive_window = 1 << 24;
    Inject(seg, kIpTcpHeaderBytes + len, ce_mark);
  }

  void InjectAck(uint64_t ack_seq, std::vector<SackBlock> sacks = {},
                 uint64_t rwnd = 1 << 24) {
    TcpSegmentPayload seg;
    seg.ack = true;
    seg.ack_seq = ack_seq;
    seg.receive_window = rwnd;
    seg.sacks = std::move(sacks);
    Inject(seg, kIpTcpHeaderBytes);
  }

  void Advance(TimeDelta d) { loop_.RunUntil(loop_.now() + d); }

  EventLoop loop_;
  CaptureSink capture_;
  Demux demux_;
  std::unique_ptr<TcpSocket> socket_;
};

TEST_F(TcpUnitTest, HandshakeEmitsSynThenAck) {
  socket_->Connect();
  ASSERT_EQ(capture_.sent.size(), 1u);
  EXPECT_TRUE(Tcp(capture_.sent[0]).syn);
  EXPECT_FALSE(Tcp(capture_.sent[0]).ack);
  TcpSegmentPayload synack;
  synack.syn = true;
  synack.ack = true;
  synack.receive_window = 99999;
  Inject(synack, 60);
  EXPECT_TRUE(socket_->established());
  // The client completes with a pure ACK.
  ASSERT_EQ(capture_.sent.size(), 2u);
  EXPECT_TRUE(Tcp(capture_.sent[1]).ack);
  EXPECT_EQ(Tcp(capture_.sent[1]).payload_bytes, 0u);
}

TEST_F(TcpUnitTest, SynRetriesUntilAnswered) {
  socket_->Connect();
  EXPECT_EQ(capture_.sent.size(), 1u);
  Advance(TimeDelta::FromSecondsInt(1));
  Advance(TimeDelta::FromSecondsInt(1));
  // At least one retry SYN.
  EXPECT_GE(capture_.sent.size(), 2u);
  for (const Packet& p : capture_.sent) {
    EXPECT_TRUE(Tcp(p).syn);
  }
}

TEST_F(TcpUnitTest, SendsMssSizedSegmentsWithinWindow) {
  Establish();
  socket_->Write(10 * kDefaultMss);
  auto data = capture_.DataPackets();
  // Initial cwnd is 10 segments: everything goes out at once.
  ASSERT_EQ(data.size(), 10u);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(Tcp(*data[i]).seq, i * kDefaultMss);
    EXPECT_EQ(Tcp(*data[i]).payload_bytes, kDefaultMss);
  }
}

TEST_F(TcpUnitTest, RespectsPeerReceiveWindow) {
  Establish();
  // Peer advertised a tiny window via an ACK.
  InjectAck(0, {}, /*rwnd=*/2 * kDefaultMss);
  socket_->Write(10 * kDefaultMss);
  EXPECT_EQ(capture_.DataPackets().size(), 2u);
  // Window opens: the rest follows (within cwnd).
  InjectAck(2 * kDefaultMss, {}, /*rwnd=*/1 << 24);
  EXPECT_GT(capture_.DataPackets().size(), 2u);
}

TEST_F(TcpUnitTest, NagleHoldsSubMssTailUntilAcked) {
  Establish();
  socket_->Write(kDefaultMss + 100);  // one full segment + 100-byte tail
  auto data = capture_.DataPackets();
  ASSERT_EQ(data.size(), 1u);  // the tail is parked
  InjectAck(kDefaultMss);
  data = capture_.DataPackets();
  ASSERT_EQ(data.size(), 2u);  // ACK released it
  EXPECT_EQ(Tcp(*data[1]).payload_bytes, 100u);
}

TEST_F(TcpUnitTest, NagleDisabledSendsTailImmediately) {
  TcpSocket::Config cfg = Config();
  cfg.nagle = false;
  socket_.reset();  // release flow id 1 before re-registering it
  socket_ = std::make_unique<TcpSocket>(&loop_, Rng(2), cfg, 1, &capture_, &demux_);
  Establish();
  socket_->Write(kDefaultMss + 100);
  EXPECT_EQ(capture_.DataPackets().size(), 2u);
}

TEST_F(TcpUnitTest, DelayedAckPolicyEverySecondSegment) {
  Establish();
  InjectData(0, kDefaultMss);
  // First in-order segment: ACK delayed.
  EXPECT_TRUE(capture_.sent.empty());
  InjectData(kDefaultMss, kDefaultMss);
  // Second: immediate cumulative ACK.
  ASSERT_EQ(capture_.sent.size(), 1u);
  EXPECT_EQ(Tcp(capture_.sent[0]).ack_seq, 2 * kDefaultMss);
}

TEST_F(TcpUnitTest, DelayedAckTimerFiresAt40Ms) {
  Establish();
  InjectData(0, kDefaultMss);
  EXPECT_TRUE(capture_.sent.empty());
  Advance(TimeDelta::FromMillis(39));
  EXPECT_TRUE(capture_.sent.empty());
  Advance(TimeDelta::FromMillis(2));
  ASSERT_EQ(capture_.sent.size(), 1u);
  EXPECT_EQ(Tcp(capture_.sent[0]).ack_seq, kDefaultMss);
}

TEST_F(TcpUnitTest, OutOfOrderTriggersImmediateSackDupack) {
  Establish();
  InjectData(0, kDefaultMss);                      // in order (ack delayed)
  InjectData(2 * kDefaultMss, kDefaultMss);        // hole at [mss, 2*mss)
  ASSERT_FALSE(capture_.sent.empty());
  const TcpSegmentPayload& dup = Tcp(capture_.sent.back());
  EXPECT_EQ(dup.ack_seq, kDefaultMss);
  ASSERT_EQ(dup.sacks.size(), 1u);
  EXPECT_EQ(dup.sacks[0].begin, 2 * kDefaultMss);
  EXPECT_EQ(dup.sacks[0].end, 3 * kDefaultMss);
}

TEST_F(TcpUnitTest, SackBlocksMostRecentFirstCappedAtFour) {
  Establish();
  // Create six separate holes: data at 2,4,6,8,10,12 * mss.
  for (int k = 2; k <= 12; k += 2) {
    InjectData(static_cast<uint64_t>(k) * kDefaultMss, kDefaultMss);
  }
  const TcpSegmentPayload& ack = Tcp(capture_.sent.back());
  ASSERT_EQ(ack.sacks.size(), TcpSegmentPayload::kMaxSackBlocks);
  // Most recent arrival (12*mss) reported first.
  EXPECT_EQ(ack.sacks[0].begin, 12 * kDefaultMss);
}

TEST_F(TcpUnitTest, AdjacentOooSegmentsMergeIntoOneSackBlock) {
  Establish();
  InjectData(2 * kDefaultMss, kDefaultMss);
  InjectData(3 * kDefaultMss, kDefaultMss);
  const TcpSegmentPayload& ack = Tcp(capture_.sent.back());
  ASSERT_EQ(ack.sacks.size(), 1u);
  EXPECT_EQ(ack.sacks[0].begin, 2 * kDefaultMss);
  EXPECT_EQ(ack.sacks[0].end, 4 * kDefaultMss);
}

TEST_F(TcpUnitTest, HoleFillFlushesCumulativeAckWithoutSacks) {
  Establish();
  InjectData(kDefaultMss, kDefaultMss);  // OOO
  capture_.sent.clear();
  InjectData(0, kDefaultMss);  // fills the hole
  ASSERT_FALSE(capture_.sent.empty());
  const TcpSegmentPayload& ack = Tcp(capture_.sent.back());
  EXPECT_EQ(ack.ack_seq, 2 * kDefaultMss);
  EXPECT_TRUE(ack.sacks.empty());
}

TEST_F(TcpUnitTest, SackedSegmentsAreNotRetransmittedHoleIs) {
  Establish();
  socket_->Write(10 * kDefaultMss);
  capture_.sent.clear();
  // Peer SACKs segments 1..4 (seq mss..5*mss): segment 0 is the hole.
  InjectAck(0, {{kDefaultMss, 5 * kDefaultMss}});
  auto data = capture_.DataPackets();
  ASSERT_GE(data.size(), 1u);
  EXPECT_EQ(Tcp(*data[0]).seq, 0u);
  EXPECT_TRUE(Tcp(*data[0]).retransmit);
  // Nothing in the SACKed range was resent.
  for (const Packet* p : data) {
    bool in_sacked = Tcp(*p).seq >= kDefaultMss && Tcp(*p).seq < 5 * kDefaultMss;
    EXPECT_FALSE(in_sacked && Tcp(*p).retransmit);
  }
}

TEST_F(TcpUnitTest, EcnEchoUntilCwr) {
  TcpSocket::Config cfg = Config();
  cfg.ecn = true;
  socket_.reset();  // release flow id 1 before re-registering it
  socket_ = std::make_unique<TcpSocket>(&loop_, Rng(3), cfg, 1, &capture_, &demux_);
  Establish();
  InjectData(0, kDefaultMss, /*ce_mark=*/true);
  InjectData(kDefaultMss, kDefaultMss);
  ASSERT_FALSE(capture_.sent.empty());
  EXPECT_TRUE(Tcp(capture_.sent.back()).ece);
  // Sender answers with CWR on its next data segment; the echo then stops.
  TcpSegmentPayload cwr_data;
  cwr_data.seq = 2 * kDefaultMss;
  cwr_data.payload_bytes = kDefaultMss;
  cwr_data.cwr = true;
  cwr_data.receive_window = 1 << 24;
  Inject(cwr_data, kIpTcpHeaderBytes + kDefaultMss);
  InjectData(3 * kDefaultMss, kDefaultMss);
  EXPECT_FALSE(Tcp(capture_.sent.back()).ece);
}

TEST_F(TcpUnitTest, RtoRetransmitsHeadAndCollapsesWindow) {
  Establish();
  socket_->Write(5 * kDefaultMss);
  size_t first_burst = capture_.DataPackets().size();
  ASSERT_EQ(first_burst, 5u);
  // No ACKs at all: the RTO (>= 1 s initial, handshake RTT ~0) must fire.
  Advance(TimeDelta::FromSecondsInt(2));
  auto data = capture_.DataPackets();
  ASSERT_GT(data.size(), first_burst);
  EXPECT_TRUE(Tcp(*data[first_burst]).retransmit);
  EXPECT_EQ(Tcp(*data[first_burst]).seq, 0u);
  EXPECT_EQ(socket_->GetTcpInfo().tcpi_snd_cwnd, 2u);  // collapsed (floor 2)
}

TEST_F(TcpUnitTest, CumulativeAckAdvancesAndFreesBuffer) {
  Establish();
  socket_->Write(4 * kDefaultMss);
  EXPECT_EQ(socket_->SndBufUsed(), 4 * kDefaultMss);
  InjectAck(3 * kDefaultMss);
  EXPECT_EQ(socket_->SndBufUsed(), 1 * kDefaultMss);
  EXPECT_EQ(socket_->GetTcpInfo().tcpi_bytes_acked, 3 * kDefaultMss);
}

TEST_F(TcpUnitTest, DuplicateDataIsReAckedNotReDelivered) {
  Establish();
  InjectData(0, kDefaultMss);
  InjectData(0, kDefaultMss);  // exact duplicate
  // Readable exactly one segment.
  EXPECT_EQ(socket_->ReadableBytes(), kDefaultMss);
  // The duplicate forced an immediate re-ACK.
  ASSERT_FALSE(capture_.sent.empty());
  EXPECT_EQ(Tcp(capture_.sent.back()).ack_seq, kDefaultMss);
}

TEST_F(TcpUnitTest, ZeroWindowBlocksUntilUpdate) {
  Establish();
  InjectAck(0, {}, /*rwnd=*/0);
  socket_->Write(4 * kDefaultMss);
  EXPECT_TRUE(capture_.DataPackets().empty());
  InjectAck(0, {}, /*rwnd=*/1 << 20);
  EXPECT_FALSE(capture_.DataPackets().empty());
}

}  // namespace
}  // namespace element
