// Tests for the SVC layered-streaming use case (§4.4): the base layer always
// gets through; enhancement layers are shed at the TCP boundary under
// congestion and kept on a fat link.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/iperf_app.h"
#include "src/apps/svc_app.h"
#include "src/element/byte_sink.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

struct SvcRun {
  std::unique_ptr<Testbed> bed;
  std::unique_ptr<ElementSocket> em;
  std::unique_ptr<SvcStreamer> streamer;
  std::unique_ptr<SinkApp> reader;
  Testbed::Flow flow;
};

SvcRun MakeRun(uint64_t seed, DataRate rate) {
  SvcRun run;
  PathConfig path;
  path.rate = rate;
  path.one_way_delay = TimeDelta::FromMillis(20);
  path.queue_limit_packets = 100;
  run.bed = std::make_unique<Testbed>(seed, path);
  run.flow = run.bed->CreateFlow(TcpSocket::Config{});
  ElementSocket::Options opt;
  run.em = std::make_unique<ElementSocket>(&run.bed->loop(), run.flow.sender, opt);
  run.streamer = std::make_unique<SvcStreamer>(&run.bed->loop(), run.em.get(), SvcConfig{});
  run.reader = std::make_unique<SinkApp>(run.flow.receiver);
  run.streamer->Start();
  run.reader->Start();
  return run;
}

TEST(SvcTest, FatLinkDeliversAllLayers) {
  // Full ladder is ~16 Mbps; a 100 Mbps link carries everything.
  SvcRun run = MakeRun(1, DataRate::Mbps(100));
  run.bed->loop().RunUntil(Sec(20.0));
  const auto& stats = run.streamer->layer_stats();
  ASSERT_EQ(stats.size(), 4u);
  for (size_t k = 0; k < stats.size(); ++k) {
    EXPECT_GT(stats[k].sent, stats[k].enqueued * 9 / 10) << "layer " << k;
    EXPECT_LT(stats[k].shed, stats[k].enqueued / 10) << "layer " << k;
  }
}

TEST(SvcTest, TightLinkShedsTopLayersKeepsBase) {
  // ~16 Mbps offered on a 5 Mbps link: base (2 Mbps) must survive; the top
  // layer (8 Mbps) must be shed heavily.
  SvcRun run = MakeRun(2, DataRate::Mbps(5));
  run.bed->loop().RunUntil(Sec(30.0));
  const auto& stats = run.streamer->layer_stats();
  EXPECT_EQ(stats[0].shed, 0u);                      // base never shed
  EXPECT_GT(stats[0].sent, run.streamer->frames_generated() * 9 / 10);
  EXPECT_GT(stats[3].shed, stats[3].enqueued / 2);   // top layer mostly shed
  // Shedding is ordered: higher layers shed at least as much as lower ones.
  EXPECT_GE(stats[3].shed, stats[2].shed);
  EXPECT_GE(stats[2].shed, stats[1].shed);
}

TEST(SvcTest, BaseLayerLatencyStaysWithinBudget) {
  SvcRun run = MakeRun(3, DataRate::Mbps(5));
  run.bed->loop().RunUntil(Sec(30.0));
  // Shedding keeps the pipe shallow enough for the base layer to go out fast.
  EXPECT_LT(run.streamer->base_layer_send_delays().Quantile(0.9), 0.25);
}

TEST(SvcTest, AdaptsWhenBackgroundFlowsJoin) {
  SvcRun run = MakeRun(4, DataRate::Mbps(20));
  // Let it settle with full quality, then add three bulk Cubic flows at t=10s
  // (the SVC flow's fair share collapses to ~5 Mbps, under its 16 Mbps offer).
  std::vector<Testbed::Flow> bulk;
  std::vector<std::unique_ptr<RawTcpSink>> bulk_sinks;
  std::vector<std::unique_ptr<IperfApp>> bulk_apps;
  std::vector<std::unique_ptr<SinkApp>> bulk_readers;
  run.bed->loop().ScheduleAt(Sec(10.0), [&] {
    for (int i = 0; i < 3; ++i) {
      bulk.push_back(run.bed->CreateFlow(TcpSocket::Config{}));
      bulk_sinks.push_back(std::make_unique<RawTcpSink>(bulk.back().sender));
      bulk_apps.push_back(std::make_unique<IperfApp>(&run.bed->loop(), bulk_sinks.back().get()));
      bulk_readers.push_back(std::make_unique<SinkApp>(bulk.back().receiver));
      bulk_apps.back()->Start();
      bulk_readers.back()->Start();
    }
  });
  run.bed->loop().RunUntil(Sec(10.0));
  uint64_t shed_before = 0;
  for (const auto& l : run.streamer->layer_stats()) {
    shed_before += l.shed;
  }
  run.bed->loop().RunUntil(Sec(40.0));
  uint64_t shed_after = 0;
  for (const auto& l : run.streamer->layer_stats()) {
    shed_after += l.shed;
  }
  // Congestion from the bulk flows forces shedding that wasn't happening
  // before, while the base layer stays fully delivered.
  EXPECT_GT(shed_after - shed_before, shed_before + 10);
  EXPECT_EQ(run.streamer->layer_stats()[0].shed, 0u);
  EXPECT_GT(run.streamer->layer_stats()[0].sent, run.streamer->frames_generated() * 8 / 10);
}

}  // namespace
}  // namespace element
