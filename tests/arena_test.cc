// Unit tests for the free-list arena backing pooled Packet payloads.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/arena.h"
#include "src/evloop/event_loop.h"
#include "src/netsim/packet.h"

namespace element {
namespace {

TEST(FreeListArenaTest, RecyclesBlocks) {
  FreeListArena arena;
  void* a = arena.Allocate(64);
  void* b = arena.Allocate(64);
  EXPECT_NE(a, b);
  arena.Free(a, 64);
  // LIFO free list: the next pool allocation reuses the freed block.
  void* c = arena.Allocate(128);
  EXPECT_EQ(c, a);
  arena.Free(b, 64);
  arena.Free(c, 128);
  EXPECT_EQ(arena.oversize_allocs(), 0u);
}

TEST(FreeListArenaTest, SteadyStateChurnDoesNotGrow) {
  FreeListArena arena;
  std::vector<void*> live;
  for (int i = 0; i < 8; ++i) {
    live.push_back(arena.Allocate(96));
  }
  size_t capacity_after_warmup = arena.capacity_blocks();
  for (int i = 0; i < 100'000; ++i) {
    arena.Free(live.back(), 96);
    live.pop_back();
    live.push_back(arena.Allocate(96));
  }
  EXPECT_EQ(arena.capacity_blocks(), capacity_after_warmup);
  for (void* p : live) {
    arena.Free(p, 96);
  }
}

TEST(FreeListArenaTest, OversizeFallsBackToHeap) {
  FreeListArena arena;
  void* big = arena.Allocate(FreeListArena::kBlockBytes + 1);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.oversize_allocs(), 1u);
  EXPECT_EQ(arena.pool_allocs(), 0u);
  arena.Free(big, FreeListArena::kBlockBytes + 1);
}

TEST(FreeListArenaTest, PooledPayloadRoundTrip) {
  EventLoop loop;
  struct TestPayload : Payload {
    int value = 0;
  };
  auto p = MakePooledPayload<TestPayload>(loop.payload_arena());
  p->value = 42;
  std::shared_ptr<const Payload> base = p;
  p.reset();
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(static_cast<const TestPayload*>(base.get())->value, 42);
  EXPECT_GE(loop.payload_arena().pool_allocs(), 1u);
  size_t cap = loop.payload_arena().capacity_blocks();
  base.reset();
  // Release returned the block to the pool; a fresh payload reuses it.
  auto q = MakePooledPayload<TestPayload>(loop.payload_arena());
  EXPECT_EQ(loop.payload_arena().capacity_blocks(), cap);
  q.reset();
}

TEST(FreeListArenaTest, AllocatorSatisfiesContainer) {
  FreeListArena arena;
  {
    std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 1000; ++i) {
      v.push_back(i);  // grows past kBlockBytes: exercises the oversize path
    }
    EXPECT_EQ(v[999], 999);
  }
  EXPECT_GT(arena.pool_allocs() + arena.oversize_allocs(), 0u);
}

}  // namespace
}  // namespace element
