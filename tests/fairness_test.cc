// S3: fairness invariants at the shared bottleneck. N identical Cubic flows
// through FQ-CoDel must converge to near-equal shares (Jain index ~1 and a
// tight per-flow band); pfifo_fast with a shallow buffer shows the expected
// synchronization unfairness and must not score better than FQ-CoDel.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/topo/contention.h"

namespace element {
namespace {

ContentionResult RunFairness(QdiscType qdisc, int flows, size_t queue_packets, uint64_t seed) {
  ContentionConfig cfg;
  cfg.topo.shape = TopologyShape::kDumbbell;
  cfg.topo.host_pairs = flows;
  cfg.topo.qdisc = qdisc;
  cfg.topo.queue_limit_packets = queue_packets;
  cfg.topo.bottleneck_rate = DataRate::Mbps(20);
  cfg.flows = flows;
  cfg.congestion_control = "cubic";
  cfg.duration_s = 30.0;
  cfg.warmup_s = 5.0;
  cfg.seed = seed;
  return RunContentionExperiment(cfg);
}

double FairShareSpread(const ContentionResult& result) {
  double lo = result.flows[0].goodput_mbps;
  double hi = lo;
  for (const ContentionFlowResult& f : result.flows) {
    lo = std::min(lo, f.goodput_mbps);
    hi = std::max(hi, f.goodput_mbps);
  }
  return hi > 0.0 ? lo / hi : 0.0;
}

TEST(FairnessTest, FqCodelSharesBottleneckEvenly) {
  ContentionResult result = RunFairness(QdiscType::kFqCoDel, 8, 100, 11);
  ASSERT_EQ(result.flows.size(), 8u);
  EXPECT_GE(result.jain_fairness, 0.995);
  // Tolerance band: the slowest flow gets at least 80% of the fastest.
  EXPECT_GE(FairShareSpread(result), 0.80);
  // All of the link is used (8 x fair share ~ 20 Mbps, minus header tax).
  double total = 0.0;
  for (const ContentionFlowResult& f : result.flows) {
    total += f.goodput_mbps;
  }
  EXPECT_GT(total, 17.0);
  EXPECT_EQ(result.unroutable_packets, 0u);
}

TEST(FairnessTest, PfifoFastShowsExpectedUnfairness) {
  // Shallow FIFO + 8 synchronized Cubic flows: some flows lock in larger
  // shares. The exact index is seed-dependent, so assert the ordering
  // against FQ-CoDel on the same scenario rather than a point value.
  ContentionResult fifo = RunFairness(QdiscType::kPfifoFast, 8, 40, 11);
  ContentionResult fq = RunFairness(QdiscType::kFqCoDel, 8, 40, 11);
  ASSERT_EQ(fifo.flows.size(), 8u);
  EXPECT_LT(fifo.jain_fairness, fq.jain_fairness);
  EXPECT_LT(FairShareSpread(fifo), FairShareSpread(fq));
  // FIFO stays in a sane range: contended but nobody fully starved.
  EXPECT_GT(fifo.jain_fairness, 0.5);
}

}  // namespace
}  // namespace element
