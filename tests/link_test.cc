// Tests for link models, the rate-serializing Pipe, and the DuplexPath demux.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/netsim/link_model.h"
#include "src/netsim/pfifo_fast.h"
#include "src/netsim/pipe.h"

namespace element {
namespace {

class CollectorSink : public PacketSink {
 public:
  explicit CollectorSink(EventLoop* loop) : loop_(loop) {}
  void Deliver(Packet pkt) override {
    arrival_times.push_back(loop_->now());
    packets.push_back(std::move(pkt));
  }
  std::vector<SimTime> arrival_times;
  std::vector<Packet> packets;

 private:
  EventLoop* loop_;
};

Packet MakePacket(uint32_t size, uint64_t flow = 1) {
  Packet p;
  p.flow_id = flow;
  p.size_bytes = size;
  return p;
}

TEST(FixedLinkModelTest, RateAndDelay) {
  FixedLinkModel link(DataRate::Mbps(8), TimeDelta::FromMillis(10));
  EXPECT_DOUBLE_EQ(link.RateAt(SimTime::Zero()).ToMbps(), 8.0);
  EXPECT_EQ(link.PropagationDelay().ToMillis(), 10);
  Rng rng(1);
  EXPECT_FALSE(link.DropOnWire(rng, SimTime::Zero()));
}

TEST(FixedLinkModelTest, LossProbability) {
  FixedLinkModel link(DataRate::Mbps(8), TimeDelta::Zero(), 0.5);
  Rng rng(42);
  int drops = 0;
  for (int i = 0; i < 10000; ++i) {
    drops += link.DropOnWire(rng, SimTime::Zero());
  }
  EXPECT_NEAR(drops / 10000.0, 0.5, 0.03);
}

TEST(SteppedLinkModelTest, SwitchesOnSchedule) {
  std::vector<SteppedLinkModel::Step> steps = {
      {TimeDelta::FromSecondsInt(20), DataRate::Mbps(10)},
      {TimeDelta::FromSecondsInt(20), DataRate::Mbps(50)},
  };
  SteppedLinkModel link(steps, TimeDelta::FromMillis(5));
  EXPECT_DOUBLE_EQ(link.RateAt(SimTime::FromNanos(1'000'000'000)).ToMbps(), 10.0);
  EXPECT_DOUBLE_EQ(link.RateAt(SimTime::FromNanos(25'000'000'000LL)).ToMbps(), 50.0);
  // Wraps around after one full cycle.
  EXPECT_DOUBLE_EQ(link.RateAt(SimTime::FromNanos(41'000'000'000LL)).ToMbps(), 10.0);
}

TEST(WifiLinkModelTest, RateStaysWithinLadder) {
  WifiLinkModel link(Rng(3), DataRate::Mbps(60));
  for (int s = 0; s < 600; ++s) {
    double mbps = link.RateAt(SimTime::FromNanos(int64_t(s) * 100'000'000)).ToMbps();
    EXPECT_GE(mbps, 60.0 * 0.35 - 1e-9);
    EXPECT_LE(mbps, 60.0 * 1.3 + 1e-9);
  }
}

TEST(LteLinkModelTest, RateBoundedByClamp) {
  LteLinkModel link(Rng(4), DataRate::Mbps(25));
  for (int s = 0; s < 600; ++s) {
    double mbps = link.RateAt(SimTime::FromNanos(int64_t(s) * 100'000'000)).ToMbps();
    EXPECT_GE(mbps, 25.0 * 0.4 - 1e-9);
    EXPECT_LE(mbps, 25.0 * 1.6 + 1e-9);
  }
}

TEST(PipeTest, SerializationAndPropagationTiming) {
  EventLoop loop;
  CollectorSink sink(&loop);
  Pipe pipe(&loop, Rng(1), std::make_unique<PfifoFast>(100),
            std::make_unique<FixedLinkModel>(DataRate::Mbps(10), TimeDelta::FromMillis(25)),
            &sink);
  // 1250 bytes at 10 Mbps = 1 ms serialization + 25 ms propagation.
  pipe.Send(MakePacket(1250));
  loop.Run();
  ASSERT_EQ(sink.arrival_times.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0].nanos(), 26'000'000);
}

TEST(PipeTest, BackToBackPacketsSpacedBySerialization) {
  EventLoop loop;
  CollectorSink sink(&loop);
  Pipe pipe(&loop, Rng(1), std::make_unique<PfifoFast>(100),
            std::make_unique<FixedLinkModel>(DataRate::Mbps(10), TimeDelta::Zero()), &sink);
  for (int i = 0; i < 5; ++i) {
    pipe.Send(MakePacket(1250));
  }
  loop.Run();
  ASSERT_EQ(sink.arrival_times.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sink.arrival_times[static_cast<size_t>(i)].nanos(), (i + 1) * 1'000'000);
  }
}

TEST(PipeTest, DeliveryOrderPreservedUnderJitter) {
  // A jittery link must not reorder packets.
  class JitteryLink : public FixedLinkModel {
   public:
    JitteryLink() : FixedLinkModel(DataRate::Mbps(100), TimeDelta::FromMillis(5)) {}
    TimeDelta JitterFor(Rng& rng) override {
      return TimeDelta::FromSeconds(rng.Exponential(0.002));
    }
  };
  EventLoop loop;
  CollectorSink sink(&loop);
  Pipe pipe(&loop, Rng(7), std::make_unique<PfifoFast>(1000),
            std::make_unique<JitteryLink>(), &sink);
  for (uint64_t i = 0; i < 200; ++i) {
    Packet p = MakePacket(1500);
    p.flow_id = i;
    pipe.Send(std::move(p));
  }
  loop.Run();
  ASSERT_EQ(sink.packets.size(), 200u);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(sink.packets[i].flow_id, i);
    if (i > 0) {
      EXPECT_GE(sink.arrival_times[i], sink.arrival_times[i - 1]);
    }
  }
}

TEST(PipeTest, WireLossCounted) {
  EventLoop loop;
  CollectorSink sink(&loop);
  Pipe pipe(&loop, Rng(5), std::make_unique<PfifoFast>(10000),
            std::make_unique<FixedLinkModel>(DataRate::Mbps(100), TimeDelta::Zero(), 0.3),
            &sink);
  for (int i = 0; i < 2000; ++i) {
    pipe.Send(MakePacket(1500));
  }
  loop.Run();
  EXPECT_NEAR(static_cast<double>(pipe.stats().wire_dropped_packets) / 2000.0, 0.3, 0.05);
  EXPECT_EQ(sink.packets.size() + pipe.stats().wire_dropped_packets, 2000u);
}

TEST(PipeTest, BacklogDelayReflectsQueue) {
  EventLoop loop;
  CollectorSink sink(&loop);
  Pipe pipe(&loop, Rng(1), std::make_unique<PfifoFast>(1000),
            std::make_unique<FixedLinkModel>(DataRate::Mbps(10), TimeDelta::Zero()), &sink);
  for (int i = 0; i < 11; ++i) {
    pipe.Send(MakePacket(1250));
  }
  // One packet is in transmission; 10 are queued: 10 * 1 ms.
  EXPECT_NEAR(pipe.CurrentBacklogDelay().ToMillisF(), 10.0, 0.01);
}

TEST(DemuxTest, RoutesByFlowId) {
  EventLoop loop;
  CollectorSink a(&loop);
  CollectorSink b(&loop);
  Demux demux;
  demux.Register(1, &a);
  demux.Register(2, &b);
  demux.Deliver(MakePacket(100, 1));
  demux.Deliver(MakePacket(100, 2));
  demux.Deliver(MakePacket(100, 3));  // unroutable
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(demux.unroutable_packets(), 1u);
  demux.Unregister(2);
  demux.Deliver(MakePacket(100, 2));
  EXPECT_EQ(demux.unroutable_packets(), 2u);
}

TEST(DuplexPathTest, ForwardAndReverseIndependent) {
  EventLoop loop;
  Rng rng(9);
  DuplexPath path(&loop, &rng, std::make_unique<PfifoFast>(100),
                  std::make_unique<FixedLinkModel>(DataRate::Mbps(10), TimeDelta::FromMillis(5)),
                  std::make_unique<PfifoFast>(100),
                  std::make_unique<FixedLinkModel>(DataRate::Mbps(50), TimeDelta::FromMillis(5)));
  CollectorSink at_server(&loop);
  CollectorSink at_client(&loop);
  uint64_t flow = path.AllocateFlowId();
  path.server_demux().Register(flow, &at_server);
  path.client_demux().Register(flow, &at_client);
  Packet fwd = MakePacket(1250, flow);
  path.forward().Send(std::move(fwd));
  Packet rev = MakePacket(1250, flow);
  path.reverse().Send(std::move(rev));
  loop.Run();
  EXPECT_EQ(at_server.packets.size(), 1u);
  EXPECT_EQ(at_client.packets.size(), 1u);
  // Forward at 10 Mbps: 1 ms + 5 ms; reverse at 50 Mbps: 0.2 ms + 5 ms.
  EXPECT_EQ(at_server.arrival_times[0].nanos(), 6'000'000);
  EXPECT_EQ(at_client.arrival_times[0].nanos(), 5'200'000);
}

TEST(DuplexPathTest, FlowIdsUnique) {
  EventLoop loop;
  Rng rng(9);
  DuplexPath path(&loop, &rng, std::make_unique<PfifoFast>(10),
                  std::make_unique<FixedLinkModel>(DataRate::Mbps(1), TimeDelta::Zero()),
                  std::make_unique<PfifoFast>(10),
                  std::make_unique<FixedLinkModel>(DataRate::Mbps(1), TimeDelta::Zero()));
  uint64_t a = path.AllocateFlowId();
  uint64_t b = path.AllocateFlowId();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace element
