// Tests for the simulated diagnosis tools (tcpping/paping/hping3/echoping)
// and the Table 1 blindness property: SYN probes see only network RTT, never
// the endhost system delay.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/tcpsim/testbed.h"
#include "src/tools/probe_tools.h"
#include "src/trace/ground_truth.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

TEST(SynProbeTest, IdlePathRttMatchesBase) {
  PathConfig path;  // 10 Mbps, 25 ms OWD
  Testbed bed(1, path);
  SynProbeTool tool(&bed.loop(), &bed.path(), SynProbeTool::TcpPing());
  tool.Start();
  bed.loop().RunUntil(Sec(20.0));
  ASSERT_GT(tool.rtt_samples().count(), 10u);
  EXPECT_NEAR(tool.rtt_samples().mean(), 0.050, 0.005);
  EXPECT_LT(tool.rtt_samples().Stdev(), 0.005);
}

TEST(SynProbeTest, AllThreeProfilesMeasureSimilarly) {
  PathConfig path;
  Testbed bed(2, path);
  SynProbeTool tcpping(&bed.loop(), &bed.path(), SynProbeTool::TcpPing());
  SynProbeTool paping(&bed.loop(), &bed.path(), SynProbeTool::Paping());
  SynProbeTool hping(&bed.loop(), &bed.path(), SynProbeTool::Hping3());
  tcpping.Start();
  paping.Start();
  hping.Start();
  bed.loop().RunUntil(Sec(20.0));
  EXPECT_NEAR(tcpping.rtt_samples().mean(), paping.rtt_samples().mean(), 0.005);
  EXPECT_NEAR(paping.rtt_samples().mean(), hping.rtt_samples().mean(), 0.005);
}

TEST(SynProbeTest, BlindToSenderSystemDelay) {
  // Table 1's central point: with a bulk Cubic flow bloating the sender's
  // buffer, the probe tools still report ~network RTT while the ground-truth
  // sender delay is an order of magnitude larger.
  PathConfig path;
  Testbed bed(3, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  SynProbeTool tool(&bed.loop(), &bed.path(), SynProbeTool::TcpPing());
  tool.Start();
  bed.loop().RunUntil(Sec(30.0));
  double probe_rtt = tool.rtt_samples().mean();
  double sender_delay = tracer.sender_delay().mean();
  EXPECT_GT(sender_delay, probe_rtt * 1.5);
  // Probe RTT = base + queueing, bounded by the queue capacity (~120 ms+50).
  EXPECT_LT(probe_rtt, 0.25);
}

TEST(SynProbeTest, StopCeasesProbing) {
  PathConfig path;
  Testbed bed(4, path);
  SynProbeTool tool(&bed.loop(), &bed.path(), SynProbeTool::TcpPing());
  tool.Start();
  bed.loop().RunUntil(Sec(5.0));
  tool.Stop();
  size_t frozen = tool.rtt_samples().count();
  bed.loop().RunUntil(Sec(10.0));
  EXPECT_LE(tool.rtt_samples().count(), frozen + 1);
}

TEST(EchoPingTest, MeasuresFullTransferTime) {
  PathConfig path;  // 10 Mbps: a 256 KB document takes >= ~210 ms wire time
  Testbed bed(5, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  // The document must cross the bottleneck: the HTTP "client" sits at the
  // testbed's server side, so the response flows over the forward pipe.
  EchoPing echo(&bed.loop(), flow.receiver, flow.sender);
  echo.Start();
  bed.loop().RunUntil(Sec(30.0));
  ASSERT_GT(echo.completed_transfers(), 5u);
  // Total time includes serialization (~210 ms) + RTT; far above probe RTT.
  EXPECT_GT(echo.transfer_times().mean(), 0.2);
  EXPECT_LT(echo.transfer_times().mean(), 2.0);
}

TEST(EchoPingTest, SeesServerSideBufferDelayUnderLoad) {
  // With a competing bulk flow congesting the path, echoping's one number
  // grows — but it cannot say *where* the time went.
  PathConfig path;
  Testbed bed(6, path);
  Testbed::Flow bulk = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(bulk.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(bulk.receiver);
  app.Start();
  reader.Start();
  Testbed::Flow echo_flow = bed.CreateFlow(TcpSocket::Config{});
  EchoPing echo(&bed.loop(), echo_flow.receiver, echo_flow.sender);
  echo.Start();
  bed.loop().RunUntil(Sec(40.0));
  ASSERT_GT(echo.completed_transfers(), 3u);
  PathConfig idle_path;
  Testbed idle_bed(7, idle_path);
  Testbed::Flow idle_flow = idle_bed.CreateFlow(TcpSocket::Config{});
  EchoPing idle_echo(&idle_bed.loop(), idle_flow.receiver, idle_flow.sender);
  idle_echo.Start();
  idle_bed.loop().RunUntil(Sec(40.0));
  EXPECT_GT(echo.transfer_times().mean(), idle_echo.transfer_times().mean() * 1.3);
}

}  // namespace
}  // namespace element
