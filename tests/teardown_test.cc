// Tests for connection teardown: Close(), FIN delivery/EOF signalling, FIN
// retransmission under loss, and half-close semantics.

#include <gtest/gtest.h>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

TEST(TeardownTest, CloseDeliversEofAfterAllData) {
  PathConfig path;
  Testbed bed(1, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  bool eof = false;
  SimTime eof_at;
  flow.receiver->SetEofCallback([&] {
    eof = true;
    eof_at = bed.loop().now();
  });
  uint64_t total_read = 0;
  flow.receiver->SetReadableCallback([&] {
    size_t n;
    while ((n = flow.receiver->Read(1 << 20)) > 0) {
      total_read += n;
    }
  });
  flow.sender->SetEstablishedCallback([&] {
    flow.sender->Write(50000);
    flow.sender->Close();
  });
  bed.loop().RunUntil(Sec(5.0));
  EXPECT_TRUE(eof);
  EXPECT_EQ(total_read, 50000u);
  EXPECT_TRUE(flow.sender->fin_acked());
  EXPECT_TRUE(flow.receiver->peer_closed());
  // EOF must not arrive before the data could possibly have (50 KB @ 10 Mbps
  // is ~40 ms + handshake + propagation).
  EXPECT_GT(eof_at.ToSeconds(), 0.08);
}

TEST(TeardownTest, WriteRejectedAfterClose) {
  PathConfig path;
  Testbed bed(2, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  bed.loop().RunUntil(Sec(1.0));
  EXPECT_GT(flow.sender->Write(1000), 0u);
  flow.sender->Close();
  EXPECT_EQ(flow.sender->Write(1000), 0u);
  EXPECT_TRUE(flow.sender->close_requested());
}

TEST(TeardownTest, FinRetransmittedUnderLoss) {
  PathConfig path;
  path.loss_probability = 0.3;  // heavy loss: the first FIN will likely die
  Testbed bed(3, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  bool eof = false;
  flow.receiver->SetEofCallback([&] { eof = true; });
  flow.receiver->SetReadableCallback([&] {
    while (flow.receiver->Read(1 << 20) > 0) {
    }
  });
  flow.sender->SetEstablishedCallback([&] {
    flow.sender->Write(20000);
    flow.sender->Close();
  });
  bed.loop().RunUntil(Sec(60.0));
  EXPECT_TRUE(eof);
  EXPECT_TRUE(flow.sender->fin_acked());
}

TEST(TeardownTest, HalfCloseLeavesReverseDirectionUsable) {
  // Client closes its write side; the server can still send data back.
  PathConfig path;
  Testbed bed(4, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  TcpSocket* client = flow.sender;
  TcpSocket* server = flow.receiver;
  uint64_t server_got = 0;
  bool server_eof = false;
  server->SetReadableCallback([&] {
    size_t n;
    while ((n = server->Read(4096)) > 0) {
      server_got += n;
    }
  });
  server->SetEofCallback([&] {
    server_eof = true;
    server->Write(30000);  // respond after the client's half-close
  });
  uint64_t client_got = 0;
  client->SetReadableCallback([&] {
    size_t n;
    while ((n = client->Read(1 << 20)) > 0) {
      client_got += n;
    }
  });
  client->SetEstablishedCallback([&] {
    client->Write(100);
    client->Close();
  });
  bed.loop().RunUntil(Sec(5.0));
  EXPECT_TRUE(server_eof);
  EXPECT_EQ(server_got, 100u);
  EXPECT_EQ(client_got, 30000u);
}

TEST(TeardownTest, CloseWithLargePendingBufferFlushesFirst) {
  PathConfig path;  // 10 Mbps: 2 MB takes ~1.7 s to flush
  Testbed bed(5, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  SinkApp reader(flow.receiver);
  reader.Start();
  bool eof = false;
  flow.receiver->SetEofCallback([&] { eof = true; });
  uint64_t written = 0;
  flow.sender->SetEstablishedCallback([&] {
    written = flow.sender->Write(1 << 21);
    flow.sender->Close();
  });
  bed.loop().RunUntil(Sec(30.0));
  EXPECT_TRUE(eof);
  EXPECT_EQ(flow.receiver->app_bytes_read(), written);
  // All data arrived before the EOF was signalled.
  EXPECT_TRUE(flow.receiver->peer_closed());
}

TEST(TeardownTest, SimultaneousCloseBothSides) {
  PathConfig path;
  Testbed bed(6, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  bool eof_a = false;
  bool eof_b = false;
  flow.sender->SetEofCallback([&] { eof_a = true; });
  flow.receiver->SetEofCallback([&] { eof_b = true; });
  flow.sender->SetEstablishedCallback([&] {
    flow.sender->Write(1000);
    flow.sender->Close();
    flow.receiver->Close();
  });
  flow.receiver->SetReadableCallback([&] {
    while (flow.receiver->Read(4096) > 0) {
    }
  });
  bed.loop().RunUntil(Sec(5.0));
  EXPECT_TRUE(eof_a);
  EXPECT_TRUE(eof_b);
  EXPECT_TRUE(flow.sender->fin_acked());
  EXPECT_TRUE(flow.receiver->fin_acked());
}

TEST(TeardownTest, ReadableBytesExcludesFinPhantom) {
  PathConfig path;
  Testbed bed(7, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  flow.sender->SetEstablishedCallback([&] {
    flow.sender->Write(777);
    flow.sender->Close();
  });
  bed.loop().RunUntil(Sec(3.0));
  ASSERT_TRUE(flow.receiver->peer_closed());
  EXPECT_EQ(flow.receiver->ReadableBytes(), 777u);
  EXPECT_EQ(flow.receiver->Read(1 << 20), 777u);
  EXPECT_EQ(flow.receiver->Read(1 << 20), 0u);
  EXPECT_EQ(flow.receiver->GetTcpInfo().tcpi_bytes_received, 777u);
}

}  // namespace
}  // namespace element
