// Stress, failure-injection, and invariant-checking tests: a stack observer
// that validates byte-stream invariants during live runs, link outages, lossy
// radio links, many concurrent flows, and event-loop churn.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/interposer.h"
#include "src/tcpsim/stack_observer.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

// Checks the byte-stream invariants the stack must uphold, at every event.
class InvariantObserver : public StackObserver {
 public:
  void OnAppWrite(uint64_t begin, uint64_t end, SimTime t) override {
    EXPECT_EQ(begin, write_cursor_) << "app writes must be contiguous";
    EXPECT_LT(begin, end);
    EXPECT_GE(t, last_event_);
    write_cursor_ = end;
    last_event_ = t;
  }
  void OnTcpTransmit(uint64_t begin, uint64_t end, SimTime t, bool retransmit) override {
    EXPECT_LE(end, write_cursor_) << "cannot transmit bytes the app never wrote";
    EXPECT_LT(begin, end);
    if (!retransmit) {
      // First transmissions never re-cover old bytes.
      EXPECT_GE(begin, first_tx_cursor_);
      first_tx_cursor_ = end;
    }
    EXPECT_GE(t, last_event_);
    last_event_ = t;
  }
  void OnTcpRxSegment(uint64_t begin, uint64_t end, SimTime /*t*/, bool in_order) override {
    EXPECT_LE(end, first_tx_cursor_) << "cannot receive bytes never transmitted";
    if (in_order) {
      EXPECT_EQ(begin, rcv_cursor_) << "in-order delivery must be contiguous";
      rcv_cursor_ = std::max(rcv_cursor_, end);
      // The stream may swallow previously-announced out-of-order ranges that
      // are now contiguous (the hole just filled).
      MergeOooIntoCursor();
    } else {
      EXPECT_GT(begin, rcv_cursor_) << "out-of-order segment must be ahead of the stream";
      // Any byte may be announced out-of-order at most once.
      for (auto& [b, e] : ooo_ranges_) {
        EXPECT_TRUE(end <= b || begin >= e) << "duplicate out-of-order announcement";
      }
      ooo_ranges_.emplace_back(begin, end);
    }
  }
  void OnAppRead(uint64_t begin, uint64_t end, SimTime /*t*/) override {
    EXPECT_EQ(begin, read_cursor_) << "app reads must be contiguous";
    EXPECT_LE(end, rcv_cursor_) << "cannot read bytes TCP has not delivered";
    read_cursor_ = end;
  }

  uint64_t read_cursor() const { return read_cursor_; }

 private:
  void MergeOooIntoCursor() {
    bool merged = true;
    while (merged) {
      merged = false;
      for (auto it = ooo_ranges_.begin(); it != ooo_ranges_.end(); ++it) {
        if (it->first <= rcv_cursor_) {
          rcv_cursor_ = std::max(rcv_cursor_, it->second);
          ooo_ranges_.erase(it);
          merged = true;
          break;
        }
      }
    }
  }

  uint64_t write_cursor_ = 0;
  uint64_t first_tx_cursor_ = 0;
  uint64_t rcv_cursor_ = 0;
  uint64_t read_cursor_ = 0;
  SimTime last_event_;
  std::vector<std::pair<uint64_t, uint64_t>> ooo_ranges_;
};

class InvariantSweepTest : public ::testing::TestWithParam<double /*loss*/> {};

TEST_P(InvariantSweepTest, StreamInvariantsHoldUnderLoss) {
  PathConfig path;
  path.rate = DataRate::Mbps(20);
  path.loss_probability = GetParam();
  Testbed bed(42 + static_cast<uint64_t>(GetParam() * 1000), path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  InvariantObserver inv;
  flow.sender->telemetry().AttachSink(&inv);
  flow.receiver->telemetry().AttachSink(&inv);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(15.0));
  EXPECT_GT(inv.read_cursor(), 100000u);  // made real progress
  EXPECT_EQ(inv.read_cursor(), flow.receiver->app_bytes_read());
}

INSTANTIATE_TEST_SUITE_P(LossLevels, InvariantSweepTest,
                         ::testing::Values(0.0, 0.005, 0.02, 0.08));

TEST(OutageTest, FlowSurvivesLinkBlackout) {
  // 10 s up, 2 s total outage, then up again — RTO backoff must carry the
  // connection across and resume transfer.
  PathConfig path;
  path.link = LinkType::kStepped;
  path.steps = {{TimeDelta::FromSecondsInt(10), DataRate::Mbps(10)},
                {TimeDelta::FromSecondsInt(2), DataRate::Zero()},
                {TimeDelta::FromSecondsInt(30), DataRate::Mbps(10)}};
  Testbed bed(7, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(10.5));
  uint64_t before_outage = flow.receiver->app_bytes_read();
  bed.loop().RunUntil(Sec(12.0));  // inside the blackout
  bed.loop().RunUntil(Sec(25.0));  // well after recovery
  uint64_t after = flow.receiver->app_bytes_read();
  EXPECT_GT(before_outage, 5'000'000u);
  // Recovered: at least ~8 of the 13 post-outage seconds at ~10 Mbps.
  EXPECT_GT(after - before_outage, 8'000'000u);
  // Everything TCP delivered is readable or already read (a wakeup may be
  // pending at the cutoff instant).
  EXPECT_EQ(flow.receiver->GetTcpInfo().tcpi_bytes_received,
            flow.receiver->app_bytes_read() + flow.receiver->ReadableBytes());
}

TEST(OutageTest, ElementFlowSurvivesBlackoutToo) {
  PathConfig path;
  path.link = LinkType::kStepped;
  path.steps = {{TimeDelta::FromSecondsInt(8), DataRate::Mbps(10)},
                {TimeDelta::FromSecondsInt(2), DataRate::Zero()},
                {TimeDelta::FromSecondsInt(30), DataRate::Mbps(10)}};
  Testbed bed(8, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  InterposedSink sink(&bed.loop(), flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(25.0));
  // The pacing gate must not deadlock across the outage.
  double goodput = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                            TimeDelta::FromSecondsInt(25))
                       .ToMbps();
  EXPECT_GT(goodput, 6.0);
}

TEST(ManyFlowsTest, TwentyFlowsShareAndAllProgress) {
  PathConfig path;
  path.rate = DataRate::Mbps(100);
  path.queue_limit_packets = 600;
  Testbed bed(9, path);
  std::vector<Testbed::Flow> flows;
  std::vector<std::unique_ptr<RawTcpSink>> sinks;
  std::vector<std::unique_ptr<IperfApp>> apps;
  std::vector<std::unique_ptr<SinkApp>> readers;
  for (int i = 0; i < 20; ++i) {
    flows.push_back(bed.CreateFlow(TcpSocket::Config{}));
    sinks.push_back(std::make_unique<RawTcpSink>(flows.back().sender));
    apps.push_back(std::make_unique<IperfApp>(&bed.loop(), sinks.back().get()));
    readers.push_back(std::make_unique<SinkApp>(flows.back().receiver));
    apps.back()->Start();
    readers.back()->Start();
  }
  bed.loop().RunUntil(Sec(30.0));
  double total = 0;
  for (auto& f : flows) {
    double mbps = RateOver(static_cast<int64_t>(f.receiver->app_bytes_read()),
                           TimeDelta::FromSecondsInt(30))
                      .ToMbps();
    EXPECT_GT(mbps, 0.5) << "a flow starved";
    total += mbps;
  }
  EXPECT_GT(total, 80.0);
  EXPECT_LT(total, 101.0);
}

TEST(WifiStressTest, BurstLossRadioStillDelivers) {
  PathConfig path = WifiProfile();
  Testbed bed(10, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(30.0));
  double goodput = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                            TimeDelta::FromSecondsInt(30))
                       .ToMbps();
  // Mean radio rate ~55 Mbps with fades; TCP should still extract a good share.
  EXPECT_GT(goodput, 20.0);
  EXPECT_GT(flow.sender->total_retransmits(), 0u);
}

TEST(EventLoopStressTest, HundredThousandEventsWithChurn) {
  EventLoop loop;
  Rng rng(77);
  int64_t executed = 0;
  std::vector<EventHandle> cancellable;
  for (int i = 0; i < 100000; ++i) {
    auto id = loop.ScheduleAfter(TimeDelta::FromMicros(rng.UniformInt(0, 1'000'000)),
                                 [&executed] { ++executed; });
    if (i % 3 == 0) {
      cancellable.push_back(id);
    }
  }
  for (auto id : cancellable) {
    loop.Cancel(id);
  }
  loop.Run();
  EXPECT_EQ(executed, 100000 - static_cast<int64_t>(cancellable.size()));
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(TinyTransferTest, SubMssMessagesDeliveredPromptly) {
  // Nagle must not strand small messages forever: a lone 100-byte write goes
  // out once the pipe is idle.
  PathConfig path;
  Testbed bed(12, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  uint64_t got = 0;
  SimTime got_at;
  flow.receiver->SetReadableCallback([&] {
    size_t n;
    while ((n = flow.receiver->Read(4096)) > 0) {
      got += n;
      got_at = bed.loop().now();
    }
  });
  flow.sender->SetEstablishedCallback([&] { flow.sender->Write(100); });
  bed.loop().RunUntil(Sec(2.0));
  EXPECT_EQ(got, 100u);
  // One handshake RTT + one data one-way trip + wakeup: well under a second.
  EXPECT_LT(got_at.ToSeconds(), 0.5);
}

TEST(TinyTransferTest, RequestResponsePingPong) {
  // 200 application-layer ping-pongs over one full-duplex connection.
  PathConfig path;
  path.one_way_delay = TimeDelta::FromMillis(5);
  Testbed bed(13, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  int pongs = 0;
  flow.receiver->SetReadableCallback([&] {
    while (flow.receiver->Read(4096) > 0) {
    }
    flow.receiver->Write(200);  // pong
  });
  flow.sender->SetReadableCallback([&] {
    while (flow.sender->Read(4096) > 0) {
    }
    if (++pongs < 200) {
      flow.sender->Write(100);  // next ping
    }
  });
  flow.sender->SetEstablishedCallback([&] { flow.sender->Write(100); });
  bed.loop().RunUntil(Sec(30.0));
  EXPECT_EQ(pongs, 200);
}

}  // namespace
}  // namespace element
