// Scale tests for the topology subsystem (slow label, excluded from tier-1):
// >= 1k concurrent flows through one dumbbell bottleneck with a byte-identical
// run-twice aggregate, and 1k-flow churn exercising flow-id recycling.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/apps/iperf_app.h"
#include "src/runner/fleet.h"
#include "src/topo/topology.h"

namespace element {
namespace {

TEST(TopoScaleTest, ThousandFlowDumbbellIsDeterministic) {
  ScenarioSpec spec;
  spec.name = "dumbbell_1k";
  spec.topology = "dumbbell";
  spec.num_flows = 1024;
  spec.host_pairs = 32;  // 32 flows share each host pair's access links
  spec.rate_mbps = 200.0;
  spec.rtt_ms = 20.0;
  spec.qdisc = "fq_codel";
  spec.duration_s = 3.0;
  spec.warmup_s = 0.5;
  spec.seed = 9;

  ScenarioResult first = ExecuteScenario(spec);
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_EQ(first.flows.size(), 1024u);
  EXPECT_TRUE(first.has_topology);
  EXPECT_EQ(first.unroutable_packets, 0u);
  EXPECT_GT(first.metrics.StatsOrEmpty("goodput_mbps").mean(), 0.0);

  ScenarioResult second = ExecuteScenario(spec);
  ASSERT_TRUE(second.ok) << second.error;
  // Byte-identical deterministic rows, not just close numbers.
  EXPECT_EQ(ResultRowJson(first).Dump(), ResultRowJson(second).Dump());
  std::vector<ScenarioResult> fleet_a;
  fleet_a.push_back(std::move(first));
  std::vector<ScenarioResult> fleet_b;
  fleet_b.push_back(std::move(second));
  EXPECT_EQ(AggregateResults(fleet_a).ToJson().Dump(), AggregateResults(fleet_b).ToJson().Dump());
}

TEST(TopoScaleTest, ThousandFlowChurnRecyclesIds) {
  EventLoop loop;
  Rng rng(4);
  TopologySpec spec;
  spec.host_pairs = 1;
  spec.bottleneck_rate = DataRate::Mbps(400);
  Network net(&loop, &rng, spec);
  Network::Attachment snd = net.sender(0);
  Network::Attachment rcv = net.receiver(0);

  constexpr int kRounds = 16;
  constexpr int kFlowsPerRound = 64;  // 1024 flows total through recycled ids
  uint64_t max_id_seen = 0;
  SimTime now = SimTime::Zero();
  for (int round = 0; round < kRounds; ++round) {
    struct Live {
      uint64_t id;
      std::unique_ptr<TcpSocket> sender;
      std::unique_ptr<TcpSocket> receiver;
      std::unique_ptr<SinkApp> reader;
    };
    std::vector<Live> live;
    for (int i = 0; i < kFlowsPerRound; ++i) {
      Live f;
      f.id = net.AllocateFlowId();
      max_id_seen = std::max(max_id_seen, f.id);
      net.RouteFlow(f.id, 0);
      TcpSocket::Config config;
      f.sender = std::make_unique<TcpSocket>(&loop, rng.Fork(), config, f.id, snd.tx, snd.rx);
      f.receiver = std::make_unique<TcpSocket>(&loop, rng.Fork(), config, f.id, rcv.tx, rcv.rx);
      f.receiver->Listen();
      f.sender->Connect();
      f.reader = std::make_unique<SinkApp>(f.receiver.get());
      f.reader->Start();
      live.push_back(std::move(f));
    }
    now += TimeDelta::FromMillis(500);
    loop.RunUntil(now);
    for (Live& f : live) {
      ASSERT_TRUE(f.sender->established());
      f.sender->Write(8000);
      f.sender->Close();
    }
    now += TimeDelta::FromSecondsInt(8);
    loop.RunUntil(now);
    for (Live& f : live) {
      ASSERT_TRUE(f.sender->fin_acked());
      EXPECT_EQ(f.receiver->app_bytes_read(), 8000u);
    }
    std::vector<uint64_t> ids;
    for (Live& f : live) {
      ids.push_back(f.id);
    }
    live.clear();
    for (uint64_t id : ids) {
      net.UnrouteFlow(id, 0);
    }
    now += TimeDelta::FromSecondsInt(2);
    loop.RunUntil(now);
    for (uint64_t id : ids) {
      net.ReleaseFlowId(id);
    }
    ASSERT_EQ(snd.rx->size(), 0u);
    ASSERT_EQ(rcv.rx->size(), 0u);
  }
  EXPECT_LE(max_id_seen, static_cast<uint64_t>(kFlowsPerRound));
  EXPECT_EQ(net.TotalUnroutablePackets(), 0u);
  EXPECT_EQ(snd.rx->unroutable_packets(), 0u);
  EXPECT_EQ(rcv.rx->unroutable_packets(), 0u);
}

}  // namespace
}  // namespace element
