// Statistical and behavioural tests for the link models, the VR/iperf app
// details not covered elsewhere, and UDP protocol edge cases.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/iperf_app.h"
#include "src/apps/vr_app.h"
#include "src/element/byte_sink.h"
#include "src/netsim/link_model.h"
#include "src/tcpsim/testbed.h"
#include "src/udpproto/low_latency_protocols.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

TEST(CableModelTest, JitterIsSubMillisecondMostly) {
  CableLinkModel model(DataRate::Mbps(100), TimeDelta::FromMillis(8), Rng(1));
  Rng rng(2);
  SampleSet jitter;
  for (int i = 0; i < 20000; ++i) {
    jitter.Add(model.JitterFor(rng).ToSeconds());
  }
  EXPECT_NEAR(jitter.mean(), 0.0004, 0.0001);  // exponential, 0.4 ms mean
  EXPECT_LT(jitter.Quantile(0.9), 0.0012);
}

TEST(CableModelTest, WireLossIsRare) {
  CableLinkModel model(DataRate::Mbps(100), TimeDelta::FromMillis(8), Rng(1));
  Rng rng(3);
  int drops = 0;
  for (int i = 0; i < 200000; ++i) {
    drops += model.DropOnWire(rng, SimTime::Zero());
  }
  EXPECT_NEAR(drops / 200000.0, 0.00005, 0.00005);
}

TEST(WifiModelTest, LossIsBurstyNotUniform) {
  WifiLinkModel model(Rng(5));
  Rng rng(6);
  // Walk through time; collect per-100ms-window drop counts.
  std::vector<int> window_drops;
  for (int w = 0; w < 400; ++w) {
    SimTime t = SimTime::FromNanos(static_cast<int64_t>(w) * 100'000'000);
    model.RateAt(t);  // advances the Markov state
    int drops = 0;
    for (int i = 0; i < 100; ++i) {
      drops += model.DropOnWire(rng, t);
    }
    window_drops.push_back(drops);
  }
  // Bursty: some windows see many drops, most see none.
  int zero_windows = 0;
  int heavy_windows = 0;
  for (int d : window_drops) {
    zero_windows += (d == 0);
    heavy_windows += (d >= 1);
  }
  EXPECT_GT(zero_windows, 200);  // mostly clean
  EXPECT_GT(heavy_windows, 5);   // but fade bursts exist
}

TEST(LteModelTest, RateIsSlowlyVarying) {
  LteLinkModel model(Rng(7));
  // Within one dwell period the rate is constant; across periods it moves.
  double r1 = model.RateAt(SimTime::FromNanos(0)).ToMbps();
  double r2 = model.RateAt(SimTime::FromNanos(50'000'000)).ToMbps();  // +50 ms
  EXPECT_DOUBLE_EQ(r1, r2);
  SampleSet rates;
  for (int s = 0; s < 100; ++s) {
    rates.Add(model.RateAt(SimTime::FromNanos(static_cast<int64_t>(s) * 1'000'000'000)).ToMbps());
  }
  EXPECT_GT(rates.Stdev(), 0.5);
}

TEST(IperfAppTest, CountsOfferedBytes) {
  PathConfig path;
  Testbed bed(11, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink, /*chunk=*/32 * 1024);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(10.0));
  // Offered equals what the socket accepted (app-level accounting coherent).
  EXPECT_EQ(app.bytes_offered(), flow.sender->app_bytes_written());
  EXPECT_GT(app.bytes_offered(), 5'000'000u);
}

TEST(IperfAppTest, StartIsIdempotent) {
  PathConfig path;
  Testbed bed(12, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  app.Start();  // must not double-pump
  reader.Start();
  bed.loop().RunUntil(Sec(5.0));
  EXPECT_EQ(app.bytes_offered(), flow.sender->app_bytes_written());
}

TEST(VrServerTest, LevelsStayWithinLadder) {
  PathConfig path;
  path.rate = DataRate::Mbps(30);
  Testbed bed(13, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  ElementSocket::Options opt;
  ElementSocket em(&bed.loop(), flow.sender, opt);
  VrConfig cfg;
  VrServer server(&bed.loop(), flow.sender, &em, cfg);
  VrClient client(&bed.loop(), flow.receiver, &server, cfg);
  server.Start();
  client.Start();
  bed.loop().RunUntil(Sec(15.0));
  for (const VrFrameRecord& f : server.frames()) {
    EXPECT_GE(f.level, 0);
    EXPECT_LT(f.level, static_cast<int>(cfg.resolution_ladder.size()));
    if (!f.dropped) {
      EXPECT_EQ(f.bytes, cfg.resolution_ladder[static_cast<size_t>(f.level)]);
    }
  }
}

TEST(VrServerTest, FrameRecordsMonotoneStreamPositions) {
  PathConfig path;
  path.rate = DataRate::Mbps(50);
  Testbed bed(14, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  VrConfig cfg;
  cfg.initial_level = 1;
  VrServer server(&bed.loop(), flow.sender, nullptr, cfg);
  VrClient client(&bed.loop(), flow.receiver, &server, cfg);
  server.Start();
  client.Start();
  bed.loop().RunUntil(Sec(10.0));
  uint64_t prev_end = 0;
  for (const VrFrameRecord& f : server.frames()) {
    if (f.fully_queued) {
      EXPECT_GT(f.end_seq, prev_end);
      prev_end = f.end_seq;
    }
  }
  EXPECT_GT(client.frames_received(), 500u);
}

TEST(SproutTest, BacksOffWhenQueueingRises) {
  // Squeeze the link after 10 s: Sprout's delay-bounded probing must shrink
  // its rate rather than sit on a standing queue.
  PathConfig path;
  path.link = LinkType::kStepped;
  path.steps = {{TimeDelta::FromSecondsInt(10), DataRate::Mbps(10)},
                {TimeDelta::FromSecondsInt(30), DataRate::Mbps(2)}};
  Testbed bed(15, path);
  SproutLikeFlow flow(&bed.loop(), &bed.path());
  flow.Start();
  bed.loop().RunUntil(Sec(10.0));
  uint64_t at_10 = flow.delivered_bytes();
  bed.loop().RunUntil(Sec(30.0));
  uint64_t at_30 = flow.delivered_bytes();
  double late_rate = (at_30 - at_10) * 8e-6 / 20.0;
  EXPECT_LT(late_rate, 2.2);  // adapted under the 2 Mbps cap
  EXPECT_GT(late_rate, 0.3);  // but kept flowing
  // Delay stays bounded through the squeeze.
  EXPECT_LT(flow.one_way_delays().Quantile(0.9), 0.25);
}

TEST(VerusTest, FeedbackLossDoesNotDeadlock) {
  // Heavy loss hits data AND feedback; the window bookkeeping (highest-seq
  // based) must keep the flow moving.
  PathConfig path;
  path.rate = DataRate::Mbps(10);
  path.loss_probability = 0.1;
  Testbed bed(16, path);
  VerusLikeFlow flow(&bed.loop(), &bed.path());
  flow.Start();
  bed.loop().RunUntil(Sec(30.0));
  EXPECT_GT(flow.delivered_bytes(), 500'000u);
}

}  // namespace
}  // namespace element
