// Seeded-determinism regression test: runs the same scenario twice with the
// same seed and byte-compares the serialized event traces. Any wall-clock
// read, unseeded RNG, or iteration-order dependence in the simulator shows up
// here as a trace diff (tools/lint_sim.py catches the static cases; this
// catches the rest).

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>

#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

void SerializeSeries(std::ostringstream& os, const char* label, const TimeSeries& series) {
  os << label << " n=" << series.count() << '\n';
  for (const TimeSeries::Point& p : series.points()) {
    os << p.t.nanos() << ' ' << p.v << '\n';
  }
}

// One bulk transfer over a jittery, lossy wifi-profile path with an
// instrumented CoDel-style bottleneck — enough stochastic machinery (link
// jitter, loss coin flips, app wakeup latency) that any nondeterminism
// perturbs the trace within milliseconds of sim time.
std::string RunScenarioTrace(uint64_t seed) {
  PathConfig path = WifiProfile();
  path.instrument_bottleneck = true;
  Testbed bed(seed, path);
  bed.bottleneck_probe()->set_keep_series(true);

  GroundTruthTracer ground_truth;
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  flow.sender->set_observer(&ground_truth);
  flow.receiver->set_observer(&ground_truth);

  constexpr uint64_t kTotalBytes = 3 * 1000 * 1000;
  auto pump = [&] {
    while (flow.sender->app_bytes_written() < kTotalBytes) {
      size_t want = static_cast<size_t>(kTotalBytes - flow.sender->app_bytes_written());
      if (flow.sender->Write(want) == 0) {
        break;
      }
    }
  };
  flow.sender->SetEstablishedCallback(pump);
  flow.sender->SetWritableCallback(pump);
  flow.receiver->SetReadableCallback([&] { flow.receiver->Read(1 << 20); });

  bed.loop().RunUntil(Sec(20.0));

  std::ostringstream os;
  os << std::setprecision(17);  // round-trip exact doubles; diffs are real
  os << "processed_events=" << bed.loop().processed_events() << '\n';
  os << "bytes_read=" << flow.receiver->app_bytes_read() << '\n';
  os << "retransmits=" << flow.sender->total_retransmits() << '\n';

  const QdiscStats& qs = bed.path().forward().qdisc().stats();
  os << "qdisc enq=" << qs.enqueued_packets << " deq=" << qs.dequeued_packets
     << " drop=" << qs.dropped_packets << " enq_b=" << qs.enqueued_bytes
     << " deq_b=" << qs.dequeued_bytes << '\n';

  SerializeSeries(os, "bottleneck_sojourn", bed.bottleneck_probe()->sojourn_series());
  SerializeSeries(os, "sender_delay", ground_truth.sender_delay_series());
  SerializeSeries(os, "receiver_delay", ground_truth.receiver_delay_series());
  return os.str();
}

TEST(DeterminismTest, SameSeedProducesByteIdenticalTrace) {
  std::string first = RunScenarioTrace(42);
  std::string second = RunScenarioTrace(42);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, TraceIsNonTrivialAndSeedSensitive) {
  std::string a = RunScenarioTrace(42);
  std::string b = RunScenarioTrace(43);
  // The scenario must actually exercise the stochastic path: different seeds
  // must diverge, otherwise the run-twice comparison proves nothing.
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace element
