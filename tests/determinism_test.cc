// Seeded-determinism regression test: runs the same scenario twice with the
// same seed and byte-compares the serialized event traces. Any wall-clock
// read, unseeded RNG, or iteration-order dependence in the simulator shows up
// here as a trace diff (tools/lint_sim.py catches the static cases; this
// catches the rest).

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "src/evloop/event_loop.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

void SerializeSeries(std::ostringstream& os, const char* label, const TimeSeries& series) {
  os << label << " n=" << series.count() << '\n';
  for (const TimeSeries::Point& p : series.points()) {
    os << p.t.nanos() << ' ' << p.v << '\n';
  }
}

// One bulk transfer over a jittery, lossy wifi-profile path with an
// instrumented CoDel-style bottleneck — enough stochastic machinery (link
// jitter, loss coin flips, app wakeup latency) that any nondeterminism
// perturbs the trace within milliseconds of sim time.
std::string RunScenarioTrace(uint64_t seed) {
  PathConfig path = WifiProfile();
  path.instrument_bottleneck = true;
  Testbed bed(seed, path);
  bed.bottleneck_probe()->set_keep_series(true);

  GroundTruthTracer ground_truth;
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  flow.sender->telemetry().AttachSink(&ground_truth);
  flow.receiver->telemetry().AttachSink(&ground_truth);

  constexpr uint64_t kTotalBytes = 3 * 1000 * 1000;
  auto pump = [&] {
    while (flow.sender->app_bytes_written() < kTotalBytes) {
      size_t want = static_cast<size_t>(kTotalBytes - flow.sender->app_bytes_written());
      if (flow.sender->Write(want) == 0) {
        break;
      }
    }
  };
  flow.sender->SetEstablishedCallback(pump);
  flow.sender->SetWritableCallback(pump);
  flow.receiver->SetReadableCallback([&] { flow.receiver->Read(1 << 20); });

  bed.loop().RunUntil(Sec(20.0));

  std::ostringstream os;
  os << std::setprecision(17);  // round-trip exact doubles; diffs are real
  os << "processed_events=" << bed.loop().processed_events() << '\n';
  os << "bytes_read=" << flow.receiver->app_bytes_read() << '\n';
  os << "retransmits=" << flow.sender->total_retransmits() << '\n';

  const QdiscStats& qs = bed.path().forward().qdisc().stats();
  os << "qdisc enq=" << qs.enqueued_packets << " deq=" << qs.dequeued_packets
     << " drop=" << qs.dropped_packets << " enq_b=" << qs.enqueued_bytes
     << " deq_b=" << qs.dequeued_bytes << '\n';

  SerializeSeries(os, "bottleneck_sojourn", bed.bottleneck_probe()->sojourn_series());
  SerializeSeries(os, "sender_delay", ground_truth.sender_delay_series());
  SerializeSeries(os, "receiver_delay", ground_truth.receiver_delay_series());
  return os.str();
}

// Cancel-heavy variant: exercises the event core's O(log n) in-place
// cancellation and Timer re-arms under churn. The lossy wifi path keeps the
// TCP RTO / delayed-ACK / pacing timers restarting, while an app-level storm
// schedules and cancels batches of far-future events and re-arms a one-shot
// Timer every millisecond. Heap removals from arbitrary positions must not
// perturb the (time, seq) fire order: two runs with the same seed must be
// byte-identical.
std::string RunCancelHeavyTrace(uint64_t seed) {
  PathConfig path = WifiProfile();
  path.instrument_bottleneck = true;
  Testbed bed(seed, path);
  bed.bottleneck_probe()->set_keep_series(true);

  GroundTruthTracer ground_truth;
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  flow.sender->telemetry().AttachSink(&ground_truth);
  flow.receiver->telemetry().AttachSink(&ground_truth);

  constexpr uint64_t kTotalBytes = 2 * 1000 * 1000;
  auto pump = [&] {
    while (flow.sender->app_bytes_written() < kTotalBytes) {
      size_t want = static_cast<size_t>(kTotalBytes - flow.sender->app_bytes_written());
      if (flow.sender->Write(want) == 0) {
        break;
      }
    }
  };
  flow.sender->SetEstablishedCallback(pump);
  flow.sender->SetWritableCallback(pump);
  flow.receiver->SetReadableCallback([&] { flow.receiver->Read(1 << 20); });

  EventLoop& loop = bed.loop();
  uint64_t storm_fires = 0;
  std::vector<EventHandle> parked;
  Timer rearm(&loop, [&storm_fires] { ++storm_fires; });
  PeriodicTimer storm(&loop, TimeDelta::FromMillis(1), [&] {
    // Schedule a batch of far-future events, then cancel most of them so the
    // heap sees removals from arbitrary interior positions every tick.
    for (int i = 0; i < 8; ++i) {
      parked.push_back(loop.ScheduleAfter(TimeDelta::FromSecondsInt(3600), [] {}));
    }
    for (int i = 0; i < 7; ++i) {
      loop.Cancel(parked.back());
      parked.pop_back();
    }
    // And keep one Timer perpetually re-armed past its old deadline.
    rearm.RestartAfter(TimeDelta::FromMicros(1500));
  });
  storm.Start();

  loop.RunUntil(Sec(15.0));
  storm.Stop();
  rearm.Cancel();
  for (EventHandle h : parked) {
    loop.Cancel(h);
  }

  std::ostringstream os;
  os << std::setprecision(17);
  os << "processed_events=" << loop.processed_events() << '\n';
  os << "storm_fires=" << storm_fires << '\n';
  os << "pending_after_drain=" << loop.pending_events() << '\n';
  os << "bytes_read=" << flow.receiver->app_bytes_read() << '\n';
  os << "retransmits=" << flow.sender->total_retransmits() << '\n';
  SerializeSeries(os, "bottleneck_sojourn", bed.bottleneck_probe()->sojourn_series());
  SerializeSeries(os, "sender_delay", ground_truth.sender_delay_series());
  SerializeSeries(os, "receiver_delay", ground_truth.receiver_delay_series());
  return os.str();
}

TEST(DeterminismTest, SameSeedProducesByteIdenticalTrace) {
  std::string first = RunScenarioTrace(42);
  std::string second = RunScenarioTrace(42);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, TraceIsNonTrivialAndSeedSensitive) {
  std::string a = RunScenarioTrace(42);
  std::string b = RunScenarioTrace(43);
  // The scenario must actually exercise the stochastic path: different seeds
  // must diverge, otherwise the run-twice comparison proves nothing.
  EXPECT_NE(a, b);
}

TEST(DeterminismTest, CancelHeavyScenarioIsByteIdenticalAcrossRuns) {
  std::string first = RunCancelHeavyTrace(1234);
  std::string second = RunCancelHeavyTrace(1234);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, CancelHeavyScenarioIsSeedSensitive) {
  EXPECT_NE(RunCancelHeavyTrace(1234), RunCancelHeavyTrace(1235));
}

}  // namespace
}  // namespace element
