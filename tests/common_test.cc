// Unit tests for the common substrate: time types, data rates, RNG, and the
// statistics containers every experiment relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/data_rate.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time.h"

namespace element {
namespace {

TEST(TimeDeltaTest, ConstructionAndConversion) {
  EXPECT_EQ(TimeDelta::FromMillis(5).nanos(), 5'000'000);
  EXPECT_EQ(TimeDelta::FromMicros(5).nanos(), 5'000);
  EXPECT_EQ(TimeDelta::FromSecondsInt(2).ToMillis(), 2000);
  EXPECT_DOUBLE_EQ(TimeDelta::FromMillis(1500).ToSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(TimeDelta::FromMicros(2500).ToMillisF(), 2.5);
}

TEST(TimeDeltaTest, Arithmetic) {
  TimeDelta a = TimeDelta::FromMillis(10);
  TimeDelta b = TimeDelta::FromMillis(4);
  EXPECT_EQ((a + b).ToMillis(), 14);
  EXPECT_EQ((a - b).ToMillis(), 6);
  EXPECT_EQ((a * 2.5).ToMillis(), 25);
  EXPECT_EQ((a / 2).ToMillis(), 5);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ((-b).nanos(), -4'000'000);
}

TEST(TimeDeltaTest, ComparisonAndSpecials) {
  EXPECT_LT(TimeDelta::FromMillis(1), TimeDelta::FromMillis(2));
  EXPECT_TRUE(TimeDelta::Zero().IsZero());
  EXPECT_TRUE(TimeDelta::Infinite().IsInfinite());
  EXPECT_GT(TimeDelta::Infinite(), TimeDelta::FromSecondsInt(1000000));
}

TEST(SimTimeTest, PointArithmetic) {
  SimTime t0 = SimTime::Zero();
  SimTime t1 = t0 + TimeDelta::FromMillis(150);
  EXPECT_EQ((t1 - t0).ToMillis(), 150);
  EXPECT_EQ((t1 - TimeDelta::FromMillis(50)).nanos(), 100'000'000);
  EXPECT_LT(t0, t1);
  t0 += TimeDelta::FromMillis(200);
  EXPECT_GT(t0, t1);
}

TEST(TimeToStringTest, Readable) {
  EXPECT_EQ(TimeDelta::FromMillis(5).ToString(), "5.000ms");
  EXPECT_EQ(TimeDelta::Infinite().ToString(), "+inf");
  EXPECT_EQ(SimTime::FromNanos(1'500'000'000).ToString(), "1.500000s");
}

TEST(DataRateTest, ConversionsAndTransmitTime) {
  DataRate r = DataRate::Mbps(10);
  EXPECT_DOUBLE_EQ(r.bps(), 10e6);
  EXPECT_DOUBLE_EQ(r.ToMbps(), 10.0);
  EXPECT_DOUBLE_EQ(r.BytesPerSec(), 1.25e6);
  // 1250 bytes at 10 Mbps = 1 ms.
  EXPECT_EQ(r.TransmitTime(1250).ToMicros(), 1000);
  EXPECT_TRUE(DataRate::Zero().TransmitTime(100).IsInfinite());
  EXPECT_DOUBLE_EQ(r.BytesIn(TimeDelta::FromSecondsInt(2)), 2.5e6);
}

TEST(DataRateTest, RateOver) {
  EXPECT_DOUBLE_EQ(RateOver(1'250'000, TimeDelta::FromSecondsInt(1)).ToMbps(), 10.0);
  EXPECT_TRUE(RateOver(1000, TimeDelta::Zero()).IsZero());
}

TEST(RngTest, Determinism) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, ForkIndependence) {
  Rng parent(99);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Children seeded differently.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (child1.Uniform() != child2.Uniform()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, DistributionsInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    int64_t n = rng.UniformInt(-2, 2);
    EXPECT_GE(n, -2);
    EXPECT_LE(n, 2);
    EXPECT_GE(rng.Exponential(0.5), 0.0);
    EXPECT_GE(rng.NonNegNormal(0.0, 1.0), 0.0);
    EXPECT_GE(rng.Pareto(1.0, 2.0), 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(0.02);
  }
  EXPECT_NEAR(sum / n, 0.02, 0.002);
}

TEST(RunningStatsTest, Moments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.Stdev(), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    double v = rng.Normal(10, 3);
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-6);
}

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Stdev(), 0.0);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.9), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleSetTest, FractionBelow) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.FractionBelow(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionBelow(100.0), 1.0);
}

TEST(SampleSetTest, AddAfterQuantileResorts) {
  SampleSet s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 5.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
}

TEST(SampleSetTest, MeanStdev) {
  SampleSet s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_NEAR(s.Stdev(), std::sqrt(2.0), 1e-12);
}

TEST(TimeSeriesTest, InterpolationMidpoints) {
  TimeSeries ts;
  ts.Add(SimTime::FromNanos(0), 0.0);
  ts.Add(SimTime::FromNanos(1'000'000'000), 10.0);
  double v = -1;
  ASSERT_TRUE(ts.InterpolateAt(SimTime::FromNanos(500'000'000), &v));
  EXPECT_DOUBLE_EQ(v, 5.0);
  // Clamping outside range.
  ASSERT_TRUE(ts.InterpolateAt(SimTime::FromNanos(-5), &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
  ASSERT_TRUE(ts.InterpolateAt(SimTime::FromNanos(2'000'000'000), &v));
  EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(TimeSeriesTest, EmptyReturnsFalse) {
  TimeSeries ts;
  double v;
  EXPECT_FALSE(ts.InterpolateAt(SimTime::Zero(), &v));
}

TEST(TimeSeriesTest, MeanAfterSkipsPrefix) {
  TimeSeries ts;
  ts.Add(SimTime::FromNanos(0), 100.0);
  ts.Add(SimTime::FromNanos(2'000'000'000), 2.0);
  ts.Add(SimTime::FromNanos(3'000'000'000), 4.0);
  EXPECT_DOUBLE_EQ(ts.MeanAfter(SimTime::FromNanos(1'000'000'000)), 3.0);
}

TEST(TablePrinterTest, RendersAlignedRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", TablePrinter::Fmt(1.5, 2)});
  table.AddRow({"b", "x"});
  std::string out = table.Render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(FlagsTest, ParsesBothForms) {
  const char* argv[] = {"prog", "measure", "--rate-mbps", "25", "--qdisc=codel", "--ecn"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(6, argv));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "measure");
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate-mbps", 0), 25.0);
  EXPECT_EQ(flags.GetString("qdisc"), "codel");
  EXPECT_TRUE(flags.GetBool("ecn"));
}

TEST(FlagsTest, DefaultsAndTypes) {
  const char* argv[] = {"prog", "--n", "12", "--bad-num", "xyz"};
  Flags flags;
  flags.Parse(5, argv);
  EXPECT_EQ(flags.GetInt("n", 0), 12);
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_EQ(flags.GetInt("bad-num", 3), 3);  // unparsable -> default
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("missing"));
}

TEST(FlagsTest, BareFlagBeforeAnotherFlagIsBoolean) {
  const char* argv[] = {"prog", "--wireless", "--flows", "3"};
  Flags flags;
  flags.Parse(4, argv);
  EXPECT_TRUE(flags.GetBool("wireless"));
  EXPECT_EQ(flags.GetInt("flows", 0), 3);
}

TEST(FlagsTest, UnusedFlagDetection) {
  const char* argv[] = {"prog", "--typo-flag", "1", "--used", "2"};
  Flags flags;
  flags.Parse(5, argv);
  flags.GetInt("used", 0);
  auto unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo-flag");
}

}  // namespace
}  // namespace element
