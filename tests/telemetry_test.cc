// Telemetry spine unit tests: GK quantile sketch guarantees (rank-error
// bound against the exact SampleSet on adversarially-shaped inputs, merge
// associativity), arena-backed trace rings, the metric registry's merge
// contract, and spine/FlowTelemetry recording semantics.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/arena.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/telemetry/metric_registry.h"
#include "src/telemetry/quantile_sketch.h"
#include "src/telemetry/spine.h"
#include "src/telemetry/trace_ring.h"

namespace element {
namespace telemetry {
namespace {

// Exact rank of `v` in `sorted` (count of samples <= v).
uint64_t RankOf(const std::vector<double>& sorted, double v) {
  return static_cast<uint64_t>(std::upper_bound(sorted.begin(), sorted.end(), v) -
                               sorted.begin());
}

// Checks the sketch's self-reported guarantee against ground truth: for every
// queried quantile, the exact rank of the sketch's answer must lie within
// RankErrorBound() ranks of the target rank. This validates the *actual*
// bound of the summary, not a loose constant.
void ExpectWithinRankBound(const QuantileSketch& sketch, std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  const double bound = sketch.RankErrorBound();
  EXPECT_LE(bound, sketch.epsilon() * n + 1.0);
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double v = sketch.Quantile(q);
    const double target = q * (n - 1) + 1;
    const double rank = static_cast<double>(RankOf(samples, v));
    // The returned value's rank band must intersect [target - e, target + e];
    // equal values share ranks, so compare against the closest equal sample.
    EXPECT_GE(rank + bound + 1, target) << "q=" << q << " v=" << v;
    const double rank_lo =
        static_cast<double>(std::lower_bound(samples.begin(), samples.end(), v) -
                            samples.begin());
    EXPECT_LE(rank_lo - bound, target) << "q=" << q << " v=" << v;
  }
}

std::vector<double> UniformSamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(rng.Uniform());
  }
  return out;
}

std::vector<double> ParetoSamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Heavy tail: most mass near the scale, rare huge values — the shape that
    // breaks naive uniform-bucket summaries.
    out.push_back(rng.Pareto(1e-3, 1.2));
  }
  return out;
}

std::vector<double> BimodalSamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Two tight modes far apart (idle vs bufferbloat delays) with an empty
    // valley between them.
    out.push_back(rng.Bernoulli(0.7) ? rng.Normal(0.01, 0.001) : rng.Normal(1.0, 0.05));
  }
  return out;
}

TEST(QuantileSketchTest, EmptyAndSingle) {
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  s.Add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.Quantile(0.0), 42.0);
  EXPECT_EQ(s.Quantile(0.5), 42.0);
  EXPECT_EQ(s.Quantile(1.0), 42.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(QuantileSketchTest, MatchesExactQuantilesOnUniform) {
  std::vector<double> samples = UniformSamples(20000, 7);
  QuantileSketch sketch;
  SampleSet exact;
  for (double v : samples) {
    sketch.Add(v);
    exact.Add(v);
  }
  EXPECT_EQ(sketch.count(), exact.count());
  EXPECT_DOUBLE_EQ(sketch.min(), exact.min());
  EXPECT_DOUBLE_EQ(sketch.max(), exact.max());
  EXPECT_NEAR(sketch.mean(), exact.mean(), 1e-12);
  ExpectWithinRankBound(sketch, samples);
  // Rank error translates to value error on a smooth CDF: the sketch's
  // median is within ~epsilon of the exact median for uniform input.
  EXPECT_NEAR(sketch.Quantile(0.5), exact.Quantile(0.5), 3 * sketch.epsilon());
}

TEST(QuantileSketchTest, HonorsRankBoundOnParetoTail) {
  std::vector<double> samples = ParetoSamples(20000, 11);
  QuantileSketch sketch;
  for (double v : samples) {
    sketch.Add(v);
  }
  ExpectWithinRankBound(sketch, samples);
}

TEST(QuantileSketchTest, HonorsRankBoundOnBimodalValley) {
  std::vector<double> samples = BimodalSamples(20000, 13);
  QuantileSketch sketch;
  for (double v : samples) {
    sketch.Add(v);
  }
  ExpectWithinRankBound(sketch, samples);
}

TEST(QuantileSketchTest, SummaryStaysBounded) {
  QuantileSketch sketch;
  std::vector<double> samples = ParetoSamples(100000, 17);
  for (double v : samples) {
    sketch.Add(v);
  }
  // O((1/eps) * log(eps * n)) tuples; with eps = 0.005 and n = 1e5 the
  // summary must be orders of magnitude below the stream size.
  EXPECT_LT(sketch.TupleCount(), 4000u);
  ExpectWithinRankBound(sketch, samples);
}

TEST(QuantileSketchTest, MergeIsOrderInsensitiveWithinBound) {
  // Three shards with very different shapes; merge in two association orders
  // and check both results honor the bound for the union stream.
  std::vector<double> a = UniformSamples(6000, 3);
  std::vector<double> b = ParetoSamples(6000, 5);
  std::vector<double> c = BimodalSamples(6000, 9);
  auto build = [](const std::vector<double>& xs) {
    QuantileSketch s;
    for (double v : xs) {
      s.Add(v);
    }
    return s;
  };

  std::vector<double> all;
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), c.begin(), c.end());

  // (a + b) + c
  QuantileSketch left = build(a);
  {
    QuantileSketch sb = build(b);
    left.Merge(sb);
    QuantileSketch sc = build(c);
    left.Merge(sc);
  }
  // a + (b + c)
  QuantileSketch right = build(a);
  {
    QuantileSketch bc = build(b);
    QuantileSketch sc = build(c);
    bc.Merge(sc);
    right.Merge(bc);
  }

  EXPECT_EQ(left.count(), all.size());
  EXPECT_EQ(right.count(), all.size());
  ExpectWithinRankBound(left, all);
  ExpectWithinRankBound(right, all);
  // Exact aggregates must agree bitwise regardless of association.
  EXPECT_DOUBLE_EQ(left.min(), right.min());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
}

TEST(QuantileSketchTest, MergeIntoEmptyEqualsCopy) {
  QuantileSketch src;
  for (double v : UniformSamples(5000, 21)) {
    src.Add(v);
  }
  QuantileSketch dst;
  dst.Merge(src);
  EXPECT_EQ(dst.count(), src.count());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(dst.Quantile(q), src.Quantile(q), 3 * src.epsilon());
  }
}

TEST(TraceRingTest, OverwritesOldestAndSnapshotsInOrder) {
  FreeListArena arena;
  TraceRing ring(&arena, 7);  // rounds up to 8 (2 blocks)
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 11; ++i) {
    ring.Push(TraceRecord::Range(RecordKind::kAppWrite, /*flow_id=*/1,
                                 SimTime::FromNanos(static_cast<int64_t>(i)), i, i + 1));
  }
  EXPECT_EQ(ring.total_pushed(), 11u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.overwritten(), 3u);
  std::vector<TraceRecord> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest-first window: records 3..10 survive.
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].u.range.begin, i + 3);
  }
}

TEST(TraceRingTest, BlocksAllocateLazilyOnFirstTouch) {
  FreeListArena arena;
  {
    TraceRing ring(&arena, 16);  // 4 blocks, none touched yet
    EXPECT_EQ(arena.pool_allocs(), 0u);
    for (uint64_t i = 0; i < 4; ++i) {
      ring.Push(TraceRecord::Range(RecordKind::kAppWrite, 1,
                                   SimTime::FromNanos(static_cast<int64_t>(i)), i, i + 1));
    }
    EXPECT_EQ(arena.pool_allocs(), 1u);  // records 0..3 share the first block
    ring.Push(TraceRecord::Range(RecordKind::kAppWrite, 1, SimTime::FromNanos(4), 4, 5));
    EXPECT_EQ(arena.pool_allocs(), 2u);  // record 4 touches the second block
  }
  // Destructor returned both blocks: a fresh ring reuses them off the
  // freelist instead of growing a new chunk.
  TraceRing again(&arena, 8);
  again.Push(TraceRecord::Range(RecordKind::kAppWrite, 1, SimTime::Zero(), 0, 1));
  EXPECT_EQ(arena.capacity_blocks(), FreeListArena::kBlocksPerChunk);
}

TEST(MetricRegistryTest, HandlesAreStableAndMergeFolds) {
  MetricRegistry a;
  uint64_t* drops = a.Counter("qdisc.drops");
  *drops += 3;
  *a.Gauge("cwnd") = 10.0;
  a.Hist("delay_s")->Add(0.5);
  a.Stats("goodput")->Add(8.0);
  a.Sketch("sojourn_s")->Add(0.001);

  MetricRegistry b;
  *b.Counter("qdisc.drops") += 4;
  *b.Gauge("cwnd") = 20.0;
  b.Hist("delay_s")->Add(1.5);
  b.Stats("goodput")->Add(10.0);
  b.Sketch("sojourn_s")->Add(0.002);
  *b.Counter("only_in_b") += 1;

  a.Merge(b);
  EXPECT_EQ(a.CounterValue("qdisc.drops"), 7u);  // counters add
  EXPECT_EQ(a.CounterValue("only_in_b"), 1u);    // absent = created
  EXPECT_DOUBLE_EQ(*a.Gauge("cwnd"), 20.0);      // gauges take incoming
  EXPECT_EQ(a.HistOrEmpty("delay_s").count(), 2u);
  EXPECT_EQ(a.StatsOrEmpty("goodput").count(), 2u);
  EXPECT_DOUBLE_EQ(a.StatsOrEmpty("goodput").mean(), 9.0);
  ASSERT_NE(a.FindSketch("sojourn_s"), nullptr);
  EXPECT_EQ(a.FindSketch("sojourn_s")->count(), 2u);
  // Reads of absent metrics do not create them.
  EXPECT_EQ(a.CounterValue("never_written"), 0u);
  EXPECT_EQ(a.FindHist("never_written"), nullptr);
  EXPECT_TRUE(a.HistOrEmpty("never_written").empty());
}

TEST(MetricRegistryTest, ToJsonIsDeterministicAndSorted) {
  MetricRegistry r;
  *r.Counter("b") += 2;
  *r.Counter("a") += 1;
  r.Hist("h")->Add(1.0);
  std::string dump = r.ToJson().Dump(/*indent=*/-1);
  // Lexicographic key order regardless of insertion order.
  EXPECT_LT(dump.find("\"a\""), dump.find("\"b\""));
  r.Merge(MetricRegistry());  // merging empty changes nothing
  EXPECT_EQ(dump, r.ToJson().Dump(/*indent=*/-1));
}

// Collects records for spine/flow dispatch assertions.
struct CollectSink : RecordSink {
  std::vector<TraceRecord> records;
  void OnRecord(const TraceRecord& r) override { records.push_back(r); }
};

TEST(SpineTest, RecordingReflectsConsumersAndDispatchRoutes) {
  FreeListArena arena;
  TelemetrySpine spine(&arena);
  EXPECT_FALSE(spine.recording());

  FlowTelemetry flow;
  flow.Bind(&spine, /*flow_id=*/5);
  EXPECT_FALSE(flow.recording());  // bound but no consumers anywhere

  // A run-wide sink flips every bound producer to recording.
  CollectSink run_sink;
  spine.AttachSink(&run_sink);
  EXPECT_TRUE(spine.recording());
  EXPECT_TRUE(flow.recording());

  TraceRing* ring = spine.EnsureRing(5, 8);
  flow.Emit(TraceRecord::Range(RecordKind::kAppWrite, 5, SimTime::Zero(), 0, 100));
  spine.Dispatch(TraceRecord::Range(RecordKind::kQdiscEnqueue, 5,
                                    SimTime::FromNanos(1), 0, 0));
  // Another flow's record reaches the sink but not flow 5's ring.
  spine.Dispatch(TraceRecord::Range(RecordKind::kQdiscEnqueue, 6,
                                    SimTime::FromNanos(2), 0, 0));

  EXPECT_EQ(run_sink.records.size(), 3u);
  EXPECT_EQ(ring->size(), 2u);
  EXPECT_EQ(spine.dispatched(), 3u);

  spine.DetachSink(&run_sink);
  EXPECT_TRUE(spine.recording());  // the ring still counts as a consumer
}

TEST(SpineTest, PerFlowSinksSeeOnlyTheirProducer) {
  TelemetrySpine spine;
  FlowTelemetry flow_a;
  FlowTelemetry flow_b;
  flow_a.Bind(&spine, 1);
  flow_b.Bind(&spine, 2);

  CollectSink sink_a;
  flow_a.AttachSink(&sink_a);
  EXPECT_TRUE(spine.recording());  // per-flow attachment counts as a consumer
  EXPECT_TRUE(flow_a.recording());
  EXPECT_TRUE(flow_b.recording());  // spine-level recording turns b on too

  flow_a.Emit(TraceRecord::Range(RecordKind::kAppWrite, 1, SimTime::Zero(), 0, 10));
  flow_b.Emit(TraceRecord::Range(RecordKind::kAppWrite, 2, SimTime::Zero(), 0, 20));
  ASSERT_EQ(sink_a.records.size(), 1u);
  EXPECT_EQ(sink_a.records[0].flow_id, 1u);
  EXPECT_EQ(spine.dispatched(), 2u);  // both still crossed the spine

  flow_a.DetachSink(&sink_a);
  EXPECT_FALSE(spine.recording());
  EXPECT_FALSE(flow_a.recording());
  flow_a.Emit(TraceRecord::Range(RecordKind::kAppWrite, 1, SimTime::Zero(), 10, 20));
  EXPECT_EQ(spine.dispatched(), 2u);  // disabled producers emit nothing
}

TEST(SpineTest, UnboundFlowTelemetryStillFeedsLocalSinks) {
  FlowTelemetry flow;  // never bound to a spine (unit-test style usage)
  EXPECT_FALSE(flow.recording());
  CollectSink sink;
  flow.AttachSink(&sink);
  EXPECT_TRUE(flow.recording());
  flow.Emit(TraceRecord::Range(RecordKind::kAppRead, 9, SimTime::Zero(), 0, 5));
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].kind, RecordKind::kAppRead);
}

}  // namespace
}  // namespace telemetry
}  // namespace element
