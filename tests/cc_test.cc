// Unit tests for the congestion-control modules, driven by synthetic
// AckSamples (no network involved).

#include <gtest/gtest.h>

#include <memory>

#include "src/tcpsim/cc_bbr.h"
#include "src/tcpsim/cc_cubic.h"
#include "src/tcpsim/cc_ledbat.h"
#include "src/tcpsim/cc_reno.h"
#include "src/tcpsim/cc_vegas.h"
#include "src/tcpsim/congestion_control.h"

namespace element {
namespace {

constexpr uint32_t kMss = 1448;

AckSample MakeAck(SimTime now, uint64_t acked_bytes, TimeDelta rtt,
                  uint64_t in_flight = 20 * kMss) {
  AckSample s;
  s.now = now;
  s.acked_bytes = acked_bytes;
  s.bytes_in_flight = in_flight;
  s.rtt = rtt;
  s.srtt = rtt;
  s.min_rtt = rtt;
  s.mss = kMss;
  return s;
}

SimTime At(int64_t ms) { return SimTime::FromNanos(ms * 1'000'000); }

TEST(FactoryTest, CreatesAllAlgorithms) {
  for (const char* name : {"reno", "cubic", "vegas", "bbr", "ledbat", "cubic-nohystart"}) {
    auto cc = MakeCongestionControl(name);
    ASSERT_NE(cc, nullptr);
    if (std::string(name) != "cubic-nohystart") {
      EXPECT_EQ(cc->name(), name);
    }
  }
  EXPECT_THROW(MakeCongestionControl("nope"), std::invalid_argument);
}

TEST(RenoTest, SlowStartDoublesPerRtt) {
  RenoCc cc;
  cc.OnConnectionStart(At(0), kMss);
  double w0 = cc.CwndSegments();
  // One RTT worth of ACKs: each full window acked adds a full window.
  cc.OnAck(MakeAck(At(10), static_cast<uint64_t>(w0) * kMss, TimeDelta::FromMillis(10)));
  EXPECT_NEAR(cc.CwndSegments(), 2 * w0, 0.01);
}

TEST(RenoTest, CongestionAvoidanceAddsOneSegmentPerRtt) {
  RenoCc cc;
  cc.OnConnectionStart(At(0), kMss);
  cc.OnLoss(At(1), 0, kMss);  // forces ssthresh = cwnd/2, enters CA
  double w = cc.CwndSegments();
  cc.OnAck(MakeAck(At(10), static_cast<uint64_t>(w * kMss), TimeDelta::FromMillis(10)));
  EXPECT_NEAR(cc.CwndSegments(), w + 1.0, 0.05);
}

TEST(RenoTest, LossHalvesWindow) {
  RenoCc cc;
  cc.OnConnectionStart(At(0), kMss);
  cc.OnAck(MakeAck(At(5), 40 * kMss, TimeDelta::FromMillis(10)));
  double before = cc.CwndSegments();
  cc.OnLoss(At(6), 0, kMss);
  EXPECT_NEAR(cc.CwndSegments(), before / 2.0, 1.0);
  EXPECT_EQ(cc.SsthreshSegments(), static_cast<uint32_t>(cc.CwndSegments()));
}

TEST(RenoTest, RtoResetsToOneSegment) {
  RenoCc cc;
  cc.OnConnectionStart(At(0), kMss);
  cc.OnAck(MakeAck(At(5), 40 * kMss, TimeDelta::FromMillis(10)));
  cc.OnRetransmissionTimeout(At(6));
  EXPECT_DOUBLE_EQ(cc.CwndSegments(), 1.0);
}

TEST(RenoTest, NoGrowthDuringRecovery) {
  RenoCc cc;
  cc.OnConnectionStart(At(0), kMss);
  double before = cc.CwndSegments();
  AckSample s = MakeAck(At(5), 10 * kMss, TimeDelta::FromMillis(10));
  s.in_recovery = true;
  cc.OnAck(s);
  EXPECT_DOUBLE_EQ(cc.CwndSegments(), before);
}

TEST(CubicTest, BetaDecreaseOnLoss) {
  CubicCc cc;
  cc.OnConnectionStart(At(0), kMss);
  cc.OnAck(MakeAck(At(5), 90 * kMss, TimeDelta::FromMillis(20)));
  double before = cc.CwndSegments();
  cc.OnLoss(At(6), 0, kMss);
  EXPECT_NEAR(cc.CwndSegments(), before * 0.7, 0.01);
  EXPECT_NEAR(cc.w_max(), before, 0.01);
}

TEST(CubicTest, FastConvergenceLowersWmax) {
  CubicCc cc;
  cc.OnConnectionStart(At(0), kMss);
  cc.OnAck(MakeAck(At(5), 90 * kMss, TimeDelta::FromMillis(20)));
  cc.OnLoss(At(6), 0, kMss);
  double w_after_first = cc.CwndSegments();
  // Second loss below w_max: fast convergence sets w_max below current cwnd.
  cc.OnLoss(At(7), 0, kMss);
  EXPECT_LT(cc.w_max(), w_after_first + 0.01);
  EXPECT_NEAR(cc.w_max(), w_after_first * (2.0 - 0.7) / 2.0, 0.01);
}

TEST(CubicTest, ConcaveGrowthTowardWmax) {
  CubicCc cc;
  cc.OnConnectionStart(At(0), kMss);
  cc.OnAck(MakeAck(At(1), 200 * kMss, TimeDelta::FromMillis(20)));
  cc.OnLoss(At(2), 0, kMss);
  double floor_w = cc.CwndSegments();
  double w_max = cc.w_max();
  // Feed ACK clock for a while: cwnd must recover toward w_max.
  int64_t t = 20;
  for (int i = 0; i < 200; ++i) {
    cc.OnAck(MakeAck(At(t), static_cast<uint64_t>(cc.CwndSegments()) * kMss,
                     TimeDelta::FromMillis(20)));
    t += 20;
  }
  EXPECT_GT(cc.CwndSegments(), floor_w);
  EXPECT_GT(cc.CwndSegments(), w_max * 0.95);
}

TEST(CubicTest, HyStartExitsSlowStartOnDelayRise) {
  CubicCc cc;
  cc.OnConnectionStart(At(0), kMss);
  // Feed rising RTTs over several rounds while still in slow start.
  int64_t t = 0;
  for (int round = 0; round < 12; ++round) {
    TimeDelta rtt = TimeDelta::FromMillis(50 + round * 10);  // +20% per round
    for (int i = 0; i < 5; ++i) {
      cc.OnAck(MakeAck(At(t), 2 * kMss, rtt));
      t += 12;
    }
  }
  // ssthresh must have been pulled down from "infinity".
  EXPECT_LT(cc.SsthreshSegments(), 1000000u);
}

TEST(CubicTest, NoHyStartExitOnFlatRtt) {
  CubicCc cc;
  cc.OnConnectionStart(At(0), kMss);
  int64_t t = 0;
  for (int i = 0; i < 60; ++i) {
    cc.OnAck(MakeAck(At(t), 2 * kMss, TimeDelta::FromMillis(50)));
    t += 10;
  }
  EXPECT_GT(cc.SsthreshSegments(), 1000000u);
}

TEST(VegasTest, StabilizesWithQueueBetweenAlphaAndBeta) {
  VegasCc cc;
  cc.OnConnectionStart(At(0), kMss);
  // base RTT 100 ms. Simulate a path where each queued segment adds 1 ms.
  int64_t t = 0;
  for (int i = 0; i < 600; ++i) {
    double w = cc.CwndSegments();
    double base_ms = 100.0;
    // Assume BDP of 50 segments; excess queues.
    double queued = std::max(0.0, w - 50.0);
    TimeDelta rtt = TimeDelta::FromSeconds((base_ms + queued * 2.0) / 1000.0);
    cc.OnAck(MakeAck(At(t), static_cast<uint64_t>(w) * kMss, rtt));
    t += static_cast<int64_t>(rtt.ToMillis());
  }
  // Vegas should hold cwnd near BDP + alpha..beta queued segments.
  EXPECT_GE(cc.CwndSegments(), 50.0);
  EXPECT_LE(cc.CwndSegments(), 58.0);
}

TEST(VegasTest, LossBacksOffModestly) {
  VegasCc cc;
  cc.OnConnectionStart(At(0), kMss);
  cc.OnAck(MakeAck(At(5), 40 * kMss, TimeDelta::FromMillis(10)));
  double before = cc.CwndSegments();
  cc.OnLoss(At(6), 0, kMss);
  EXPECT_NEAR(cc.CwndSegments(), before * 0.75, 0.6);
}

TEST(LedbatTest, GrowsWhenBelowTargetDelay) {
  LedbatCc cc;
  cc.OnConnectionStart(At(0), kMss);
  double w0 = cc.CwndSegments();
  // Queueing delay ~0 (rtt == base): off-target is +1, window climbs.
  int64_t t = 10;
  for (int i = 0; i < 200; ++i) {
    cc.OnAck(MakeAck(At(t), 10 * kMss, TimeDelta::FromMillis(50)));
    t += 10;
  }
  EXPECT_GT(cc.CwndSegments(), w0 + 5.0);
}

TEST(LedbatTest, ShrinksWhenAboveTargetDelay) {
  LedbatCc cc;
  cc.OnConnectionStart(At(0), kMss);
  // Establish base at 50 ms, grow a bit.
  int64_t t = 10;
  for (int i = 0; i < 100; ++i) {
    cc.OnAck(MakeAck(At(t), 5 * kMss, TimeDelta::FromMillis(50)));
    t += 10;
  }
  double grown = cc.CwndSegments();
  // Now 150 ms of queueing (>> 60 ms target): the controller backs off.
  for (int i = 0; i < 100; ++i) {
    cc.OnAck(MakeAck(At(t), 5 * kMss, TimeDelta::FromMillis(200)));
    t += 10;
  }
  EXPECT_LT(cc.CwndSegments(), grown);
  EXPECT_GE(cc.CwndSegments(), 2.0);
}

TEST(LedbatTest, ConvergesNearTargetQueueing) {
  // Closed loop: rtt = base + cwnd-proportional queueing; LEDBAT should hold
  // the queueing contribution near its 60 ms target.
  LedbatCc cc;
  cc.OnConnectionStart(At(0), kMss);
  int64_t t = 10;
  double base_ms = 40.0;
  for (int i = 0; i < 3000; ++i) {
    double w = cc.CwndSegments();
    double queued_ms = std::max(0.0, (w - 20.0) * 2.0);  // BDP 20 segs, 2 ms/seg
    cc.OnAck(MakeAck(At(t), static_cast<uint64_t>(w) * kMss,
                     TimeDelta::FromSeconds((base_ms + queued_ms) / 1000.0)));
    t += static_cast<int64_t>(base_ms + queued_ms);
  }
  double queued_final = (cc.CwndSegments() - 20.0) * 2.0;
  EXPECT_NEAR(queued_final, 60.0, 20.0);
}

TEST(LedbatTest, LossHalvesWindow) {
  LedbatCc cc;
  cc.OnConnectionStart(At(0), kMss);
  for (int i = 0; i < 100; ++i) {
    cc.OnAck(MakeAck(At(10 + i * 10), 10 * kMss, TimeDelta::FromMillis(50)));
  }
  double before = cc.CwndSegments();
  cc.OnLoss(At(2000), 0, kMss);
  EXPECT_NEAR(cc.CwndSegments(), before / 2.0, 0.01);
}

TEST(WindowedMaxFilterTest, TracksMaxWithinWindow) {
  WindowedMaxFilter filter(3);
  filter.Update(10.0, 1);
  filter.Update(5.0, 2);
  EXPECT_DOUBLE_EQ(filter.GetMax(), 10.0);
  filter.Update(7.0, 3);
  EXPECT_DOUBLE_EQ(filter.GetMax(), 10.0);
  // Round 5: the round-1 sample ages out; max of {5,7} with 7 newer... 5 was
  // superseded; remaining max is 7.
  filter.Update(1.0, 5);
  EXPECT_DOUBLE_EQ(filter.GetMax(), 7.0);
  filter.Update(2.0, 9);
  EXPECT_DOUBLE_EQ(filter.GetMax(), 2.0);
}

TEST(BbrTest, StartupExitsAfterBandwidthPlateau) {
  BbrCc cc;
  cc.OnConnectionStart(At(0), kMss);
  EXPECT_STREQ(cc.mode_name(), "startup");
  int64_t t = 0;
  // Constant delivery rate: growth stalls -> exit startup within ~3 rounds.
  for (int i = 0; i < 60 && std::string(cc.mode_name()) == "startup"; ++i) {
    AckSample s = MakeAck(At(t), 10 * kMss, TimeDelta::FromMillis(40), 100 * kMss);
    s.delivered_bytes = static_cast<uint64_t>(i + 1) * 10 * kMss;
    s.delivery_rate = DataRate::Mbps(10);
    cc.OnAck(s);
    t += 10;
  }
  EXPECT_STRNE(cc.mode_name(), "startup");
}

TEST(BbrTest, ReachesProbeBwAndSetsBdpCwnd) {
  BbrCc cc;
  cc.OnConnectionStart(At(0), kMss);
  int64_t t = 0;
  uint64_t delivered = 0;
  for (int i = 0; i < 400; ++i) {
    delivered += 10 * kMss;
    AckSample s = MakeAck(At(t), 10 * kMss, TimeDelta::FromMillis(40),
                          /*in_flight=*/30 * kMss);
    s.delivered_bytes = delivered;
    s.delivery_rate = DataRate::Mbps(10);
    cc.OnAck(s);
    t += 10;
  }
  EXPECT_STREQ(cc.mode_name(), "probe_bw");
  // BDP = 10 Mbps * 40 ms = 50 KB; cwnd_gain 2 -> ~100 KB ~ 69 segments.
  EXPECT_NEAR(cc.CwndSegments(), 2.0 * 10e6 / 8.0 * 0.040 / kMss, 8.0);
  ASSERT_TRUE(cc.PacingRate().has_value());
  EXPECT_NEAR(cc.PacingRate()->ToMbps(), 10.0, 3.0);
}

TEST(BbrTest, LossDoesNotCollapseWindow) {
  BbrCc cc;
  cc.OnConnectionStart(At(0), kMss);
  AckSample s = MakeAck(At(5), 10 * kMss, TimeDelta::FromMillis(40));
  s.delivery_rate = DataRate::Mbps(10);
  s.delivered_bytes = 10 * kMss;
  cc.OnAck(s);
  double before = cc.CwndSegments();
  cc.OnLoss(At(6), 0, kMss);
  EXPECT_DOUBLE_EQ(cc.CwndSegments(), before);
}

TEST(BbrTest, ProbeRttShrinksWindowTemporarily) {
  BbrCc cc;
  cc.OnConnectionStart(At(0), kMss);
  int64_t t = 0;
  uint64_t delivered = 0;
  // Run past the 10 s min_rtt window without any new minimum.
  bool saw_probe_rtt = false;
  for (int i = 0; i < 1300; ++i) {
    delivered += 10 * kMss;
    AckSample s = MakeAck(At(t), 10 * kMss,
                          TimeDelta::FromMillis(40 + (i > 0 ? 1 : 0)), 30 * kMss);
    s.delivered_bytes = delivered;
    s.delivery_rate = DataRate::Mbps(10);
    cc.OnAck(s);
    if (std::string(cc.mode_name()) == "probe_rtt") {
      saw_probe_rtt = true;
      EXPECT_DOUBLE_EQ(cc.CwndSegments(), 4.0);
    }
    t += 10;
  }
  EXPECT_TRUE(saw_probe_rtt);
}

}  // namespace
}  // namespace element
