// End-to-end tests of the ELEMENT framework: estimation accuracy against
// ground truth, the em_* socket API, LD_PRELOAD-style interposition, and the
// headline claim — latency minimized while throughput is maintained.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"
#include "src/element/estimation_error.h"
#include "src/element/interposer.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

// ByteSink that routes through an ElementSocket's measured em_send.
class EmSink : public ByteSink {
 public:
  explicit EmSink(ElementSocket* em) : em_(em) {}
  size_t Write(size_t n) override {
    RetInfo info = em_->Send(n);
    return info.size > 0 ? static_cast<size_t>(info.size) : 0;
  }
  void SetWritableCallback(std::function<void()> cb) override {
    em_->SetReadyToSendCallback(std::move(cb));
  }
  TcpSocket* socket() override { return em_->socket(); }

 private:
  ElementSocket* em_;
};

struct MeasuredRun {
  double sender_delay_gt = 0.0;
  double sender_accuracy = 0.0;
  double receiver_accuracy = 0.0;
  double goodput_mbps = 0.0;
};

MeasuredRun RunMeasuredFlow(uint64_t seed, const PathConfig& path, double seconds) {
  Testbed bed(seed, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);

  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;  // measure only
  ElementSocket em_snd(&bed.loop(), flow.sender, opt);
  ElementSocket em_rcv(&bed.loop(), flow.receiver, opt);

  EmSink sink(&em_snd);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(&em_rcv);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(seconds));

  MeasuredRun out;
  out.sender_delay_gt = tracer.sender_delay().mean();
  out.sender_accuracy =
      ScoreEstimates(em_snd.sender_estimator().delay_series(), tracer.sender_delay_series())
          .accuracy;
  out.receiver_accuracy = ScoreEstimates(em_rcv.receiver_estimator().delay_series(),
                                         tracer.receiver_delay_series())
                              .accuracy;
  out.goodput_mbps =
      RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
               TimeDelta::FromSeconds(seconds))
          .ToMbps();
  return out;
}

TEST(ElementAccuracyTest, SenderEstimationAbove90Percent) {
  PathConfig path;  // 10 Mbps / 25 ms, the paper's Low BW profile
  MeasuredRun run = RunMeasuredFlow(101, path, 30.0);
  EXPECT_GT(run.sender_delay_gt, 0.05);  // bufferbloat present
  EXPECT_GT(run.sender_accuracy, 0.90);
}

TEST(ElementAccuracyTest, ReceiverEstimationAbove85Percent) {
  PathConfig path;
  MeasuredRun run = RunMeasuredFlow(103, path, 30.0);
  EXPECT_GT(run.receiver_accuracy, 0.85);
}

// The paper's Figure 7 sweep: accuracy holds across bandwidths and RTTs.
class AccuracySweepTest
    : public ::testing::TestWithParam<std::tuple<int /*mbps*/, int /*rtt_ms*/>> {};

TEST_P(AccuracySweepTest, SenderAccuracyHolds) {
  auto [mbps, rtt] = GetParam();
  PathConfig path;
  path.rate = DataRate::Mbps(mbps);
  path.one_way_delay = TimeDelta::FromMillis(rtt / 2);
  path.queue_limit_packets =
      static_cast<size_t>(std::max(60.0, 2.0 * mbps * 1e6 / 8 * rtt * 1e-3 / 1500));
  MeasuredRun run = RunMeasuredFlow(200 + static_cast<uint64_t>(mbps + rtt), path, 20.0);
  EXPECT_GT(run.sender_accuracy, 0.85) << mbps << " Mbps, " << rtt << " ms";
  // Receiver-side accuracy dips during large out-of-order recovery episodes —
  // Algorithm 2's records run ahead of the readable stream (the same artifact
  // behind the 0-0.25 s error tails in the paper's Figure 7 CDFs) — so the
  // sweep bound is looser than the default-profile bound above.
  EXPECT_GT(run.receiver_accuracy, 0.45) << mbps << " Mbps, " << rtt << " ms";
}

INSTANTIATE_TEST_SUITE_P(BwRtt, AccuracySweepTest,
                         ::testing::Values(std::make_tuple(30, 50), std::make_tuple(100, 50),
                                           std::make_tuple(10, 100), std::make_tuple(10, 200)));

TEST(ElementApiTest, RetInfoFieldsPopulated) {
  PathConfig path;
  Testbed bed(7, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  ElementSocket::Options opt;
  ElementSocket em(&bed.loop(), flow.sender, opt);
  bed.loop().RunUntil(Sec(1.0));
  RetInfo info = em.Send(10000);
  EXPECT_GT(info.size, 0);
  EXPECT_GE(info.cwnd, 2);
  EXPECT_GT(info.rtt_s, 0.0);
  // Throughput is measured over a trailing window; sample it while the bytes
  // from this Send are still inside the window.
  bed.loop().RunUntil(Sec(1.5));
  RetInfo info2 = em.Send(10000);
  EXPECT_GT(info2.throughput_mbps, 0.0);
}

TEST(ElementApiTest, ReadReturnsReceiverDelay) {
  PathConfig path;
  Testbed bed(8, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  ElementSocket em_rcv(&bed.loop(), flow.receiver, opt);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  app.Start();
  bool got_read = false;
  em_rcv.SetReadableCallback([&] {
    RetInfo info;
    while ((info = em_rcv.Read(65536)).size > 0) {
      got_read = true;
      EXPECT_GE(info.buf_delay_s, 0.0);
    }
  });
  bed.loop().RunUntil(Sec(5.0));
  EXPECT_TRUE(got_read);
  EXPECT_GT(em_rcv.receiver_estimator().delay_samples().count(), 10u);
}

TEST(ElementMinimizationTest, CutsSenderDelayKeepsThroughput) {
  auto run = [](bool with_element) {
    PathConfig path;
    Testbed bed(55, path);
    Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
    GroundTruthTracer tracer;
    flow.sender->telemetry().AttachSink(&tracer);
    flow.receiver->telemetry().AttachSink(&tracer);
    std::unique_ptr<ByteSink> sink;
    if (with_element) {
      sink = std::make_unique<InterposedSink>(&bed.loop(), flow.sender);
    } else {
      sink = std::make_unique<RawTcpSink>(flow.sender);
    }
    IperfApp app(&bed.loop(), sink.get());
    SinkApp reader(flow.receiver);
    app.Start();
    reader.Start();
    bed.loop().RunUntil(Sec(30.0));
    return std::pair<double, double>(
        tracer.sender_delay().mean(),
        RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                 TimeDelta::FromSecondsInt(30))
            .ToMbps());
  };
  auto [delay_plain, goodput_plain] = run(false);
  auto [delay_em, goodput_em] = run(true);
  EXPECT_LT(delay_em, delay_plain * 0.5);        // at least 2x reduction
  EXPECT_GT(goodput_em, goodput_plain * 0.90);   // throughput maintained
}

// Figure 15's generalization: Algorithm 3 works on top of any in-stack
// congestion control, including the latency-oriented ones.
class MinimizationAcrossCcsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MinimizationAcrossCcsTest, DelayCutThroughputKept) {
  auto run = [&](bool with_element) {
    PathConfig path;
    path.rate = DataRate::Mbps(20);
    path.one_way_delay = TimeDelta::FromMillis(25);
    path.queue_limit_packets = 150;
    Testbed bed(2500, path);
    TcpSocket::Config cfg;
    cfg.congestion_control = GetParam();
    Testbed::Flow flow = bed.CreateFlow(cfg);
    GroundTruthTracer::Config tcfg;
    tcfg.record_from = Sec(5.0);
    GroundTruthTracer tracer(tcfg);
    flow.sender->telemetry().AttachSink(&tracer);
    flow.receiver->telemetry().AttachSink(&tracer);
    std::unique_ptr<ByteSink> sink;
    if (with_element) {
      sink = std::make_unique<InterposedSink>(&bed.loop(), flow.sender);
    } else {
      sink = std::make_unique<RawTcpSink>(flow.sender);
    }
    IperfApp app(&bed.loop(), sink.get());
    SinkApp reader(flow.receiver);
    app.Start();
    reader.Start();
    bed.loop().RunUntil(Sec(30.0));
    return std::pair<double, double>(
        tracer.sender_delay().mean(),
        RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                 TimeDelta::FromSecondsInt(30))
            .ToMbps());
  };
  auto [delay_plain, tput_plain] = run(false);
  auto [delay_em, tput_em] = run(true);
  EXPECT_LE(delay_em, delay_plain * 1.02) << GetParam();
  EXPECT_GT(tput_em, tput_plain * 0.80) << GetParam();
  // Where the baseline actually bloats (>60 ms), ELEMENT cuts it hard.
  if (delay_plain > 0.06) {
    EXPECT_LT(delay_em, delay_plain * 0.6) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCcs, MinimizationAcrossCcsTest,
                         ::testing::Values("cubic", "reno", "vegas", "bbr", "ledbat"));

TEST(InterposerTest, LegacyAppRunsUnmodified) {
  // The same IperfApp code must work through either sink — the paper's
  // LD_PRELOAD transparency claim.
  PathConfig path;
  Testbed bed(66, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  InterposedSink sink(&bed.loop(), flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(10.0));
  EXPECT_GT(flow.receiver->app_bytes_read(), 5'000'000u);
  // The interposed ELEMENT instance gathered measurements meanwhile.
  EXPECT_GT(sink.element().sender_estimator().delay_samples().count(), 50u);
  EXPECT_GT(sink.element().minimizer()->starget_bytes(), 0u);
}

TEST(ElementMinimizationTest, BuffersStayBoundedNotExhausted) {
  // Figure 10's point: ELEMENT keeps the buffered amount small but non-zero.
  PathConfig path;
  Testbed bed(77, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  InterposedSink sink(&bed.loop(), flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  RunningStats buffered;
  PeriodicTimer sampler(&bed.loop(), TimeDelta::FromMillis(100), [&] {
    if (bed.loop().now() > Sec(5.0)) {
      buffered.Add(static_cast<double>(flow.sender->SndBufUsed()));
    }
  });
  sampler.Start();
  bed.loop().RunUntil(Sec(30.0));
  EXPECT_GT(buffered.mean(), 1000.0);       // never starved
  EXPECT_LT(buffered.mean(), 300'000.0);    // never bloated (cf. ~0.5 MB raw)
}

}  // namespace
}  // namespace element
