// Focused edge-case tests across modules: RTO backoff, auto-tune caps,
// estimator corner cases, retry-ladder interplay, and receiver-side oddities.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/delay_estimator.h"
#include "src/element/element_socket.h"
#include "src/netsim/pipe.h"
#include "src/tcpsim/tcp_segment.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Ms(int64_t ms) { return SimTime::FromNanos(ms * 1'000'000); }
SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

// ---- RTO / sender edge cases (scripted peer) ----

class ScriptedPeerTest : public ::testing::Test {
 protected:
  struct Capture : PacketSink {
    void Deliver(Packet pkt) override { sent.push_back(std::move(pkt)); }
    std::vector<Packet> sent;
  };
  static const TcpSegmentPayload& Tcp(const Packet& p) {
    return *static_cast<const TcpSegmentPayload*>(p.payload.get());
  }

  ScriptedPeerTest() {
    TcpSocket::Config cfg;
    cfg.sndbuf_autotune = false;
    cfg.sndbuf_bytes = 1 << 20;
    socket_ = std::make_unique<TcpSocket>(&loop_, Rng(1), cfg, 1, &capture_, &demux_);
    socket_->Connect();
    TcpSegmentPayload synack;
    synack.syn = true;
    synack.ack = true;
    synack.receive_window = 1 << 24;
    Packet pkt;
    pkt.flow_id = 1;
    pkt.size_bytes = 60;
    pkt.payload = std::make_shared<TcpSegmentPayload>(synack);
    socket_->Deliver(std::move(pkt));
    capture_.sent.clear();
  }

  size_t CountRetransmits() const {
    size_t n = 0;
    for (const Packet& p : capture_.sent) {
      n += Tcp(p).retransmit;
    }
    return n;
  }

  EventLoop loop_;
  Capture capture_;
  Demux demux_;
  std::unique_ptr<TcpSocket> socket_;
};

TEST_F(ScriptedPeerTest, RtoBackoffSpacingDoubles) {
  socket_->Write(kDefaultMss);
  std::vector<double> retx_times;
  SimTime start = loop_.now();
  loop_.RunUntil(start + TimeDelta::FromSecondsInt(16));
  for (const Packet& p : capture_.sent) {
    if (Tcp(p).retransmit) {
      retx_times.push_back((p.created - start).ToSeconds());
    }
  }
  // Initial RTO ~1 s (handshake RTT ~0 -> floor applies); spacing must grow
  // roughly exponentially: each gap at least 1.5x the previous.
  ASSERT_GE(retx_times.size(), 3u);
  for (size_t i = 2; i < retx_times.size(); ++i) {
    double gap_prev = retx_times[i - 1] - retx_times[i - 2];
    double gap_cur = retx_times[i] - retx_times[i - 1];
    EXPECT_GT(gap_cur, gap_prev * 1.5);
  }
}

TEST_F(ScriptedPeerTest, NoRtoAfterEverythingAcked) {
  socket_->Write(kDefaultMss);
  TcpSegmentPayload ack;
  ack.ack = true;
  ack.ack_seq = kDefaultMss;
  ack.receive_window = 1 << 24;
  Packet pkt;
  pkt.flow_id = 1;
  pkt.size_bytes = kIpTcpHeaderBytes;
  pkt.payload = std::make_shared<TcpSegmentPayload>(ack);
  socket_->Deliver(std::move(pkt));
  capture_.sent.clear();
  loop_.RunUntil(loop_.now() + TimeDelta::FromSecondsInt(10));
  EXPECT_EQ(CountRetransmits(), 0u);
}

// ---- Auto-tuning cap ----

TEST(AutotuneCapTest, SndbufNeverExceedsConfiguredMax) {
  PathConfig path;
  path.rate = DataRate::Mbps(500);
  path.one_way_delay = TimeDelta::FromMillis(40);
  path.queue_limit_packets = 4000;
  Testbed bed(5, path);
  TcpSocket::Config cfg;
  cfg.sndbuf_max_bytes = 1 << 20;  // 1 MB cap on a ~5 MB BDP path
  Testbed::Flow flow = bed.CreateFlow(cfg);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(20.0));
  EXPECT_LE(flow.sender->sndbuf(), 1u << 20);
  // And the cap actually bound (we hit it).
  EXPECT_EQ(flow.sender->sndbuf(), 1u << 20);
}

// ---- Estimator corner cases ----

TEST(EstimatorEdgeTest, SampleWithNoRecordsIsSafe) {
  SenderDelayEstimator est;
  TcpInfoData info;
  info.tcpi_bytes_acked = 123456;
  info.tcpi_snd_mss = 1448;
  est.OnTcpInfoSample(info, Ms(10));  // no OnAppSend ever happened
  EXPECT_FALSE(est.has_estimate());
  EXPECT_EQ(est.pending_records(), 0u);
}

TEST(EstimatorEdgeTest, RepeatedIdenticalSamplesMatchOnce) {
  SenderDelayEstimator est;
  est.OnAppSend(1000, Ms(0));
  TcpInfoData info;
  info.tcpi_bytes_acked = 1000;
  info.tcpi_snd_mss = 1448;
  est.OnTcpInfoSample(info, Ms(10));
  est.OnTcpInfoSample(info, Ms(20));
  est.OnTcpInfoSample(info, Ms(30));
  EXPECT_EQ(est.delay_samples().count(), 1u);  // record consumed exactly once
}

TEST(EstimatorEdgeTest, ReceiverIgnoresNonMonotoneEstimates) {
  ReceiverDelayEstimator est;
  TcpInfoData info;
  info.tcpi_rcv_mss = 1000;
  info.tcpi_segs_in = 5;
  est.OnTcpInfoSample(info, Ms(0));
  info.tcpi_segs_in = 5;  // no progress
  est.OnTcpInfoSample(info, Ms(10));
  EXPECT_EQ(est.pending_records(), 1u);
}

// ---- ElementSocket corner cases ----

TEST(ElementSocketEdgeTest, DestructionDetachesCleanly) {
  PathConfig path;
  Testbed bed(7, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  {
    ElementSocket em(&bed.loop(), flow.sender, ElementSocket::Options{});
    em.Send(10000);
  }  // em destroyed while its retry/tracker events may be pending
  // The socket keeps working raw afterwards.
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(10.0));
  EXPECT_GT(flow.receiver->app_bytes_read(), 1'000'000u);
}

TEST(ElementSocketEdgeTest, MeasurementOnlyModeNeverGates) {
  PathConfig path;
  Testbed bed(8, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  ElementSocket em(&bed.loop(), flow.sender, opt);
  bed.loop().RunUntil(Sec(1.0));
  // Without the controller, em_send is an un-quantized write.
  RetInfo r = em.Send(50000);
  EXPECT_EQ(r.size, 50000);
  EXPECT_EQ(em.controller(), nullptr);
}

TEST(ElementSocketEdgeTest, ReadOnEmptyBufferReturnsZero) {
  PathConfig path;
  Testbed bed(9, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  ElementSocket em(&bed.loop(), flow.receiver, ElementSocket::Options{});
  bed.loop().RunUntil(Sec(1.0));
  RetInfo r = em.Read(1000);
  EXPECT_EQ(r.size, 0);
}

// ---- FlowMeter / tracker timing edge ----

TEST(TrackerEdgeTest, ZeroTrafficThroughputIsZero) {
  PathConfig path;
  Testbed bed(10, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  TcpInfoTracker tracker(&bed.loop(), flow.sender);
  tracker.Start();
  bed.loop().RunUntil(Sec(3.0));
  EXPECT_DOUBLE_EQ(tracker.throughput().ToMbps(), 0.0);
}

}  // namespace
}  // namespace element
