// Tests for the UDP substrate and the Sprout-like / Verus-like behavioural
// models (Figure 16 baselines).

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/tcpsim/testbed.h"
#include "src/udpproto/low_latency_protocols.h"
#include "src/udpproto/udp_socket.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

TEST(UdpSocketTest, DatagramRoundTrip) {
  PathConfig path;
  Testbed bed(1, path);
  uint64_t flow = bed.path().AllocateFlowId();
  UdpSocket client(&bed.loop(), flow, &bed.path().forward(), &bed.path().client_demux());
  UdpSocket server(&bed.loop(), flow, &bed.path().reverse(), &bed.path().server_demux());
  int received = 0;
  SimTime arrival;
  server.SetReceiveCallback([&](const UdpDatagramPayload& dg, const Packet&) {
    ++received;
    arrival = bed.loop().now();
    EXPECT_EQ(dg.seq, 42u);
  });
  UdpDatagramPayload dg;
  dg.seq = 42;
  dg.payload_bytes = 1222;  // 1250 with UDP/IP headers = 1 ms at 10 Mbps
  client.SendDatagram(dg);
  bed.loop().RunUntil(Sec(1.0));
  ASSERT_EQ(received, 1);
  EXPECT_NEAR(arrival.ToSeconds(), 0.026, 0.001);
  EXPECT_EQ(client.datagrams_sent(), 1u);
  EXPECT_EQ(server.datagrams_received(), 1u);
}

TEST(SproutLikeTest, AloneAchievesLowDelayAndDecentThroughput) {
  PathConfig path;  // 10 Mbps / 25 ms
  Testbed bed(2, path);
  SproutLikeFlow flow(&bed.loop(), &bed.path());
  flow.Start();
  bed.loop().RunUntil(Sec(30.0));
  double mbps = flow.MeanThroughput(SimTime::Zero(), Sec(30.0)).ToMbps();
  EXPECT_GT(mbps, 3.0);                              // uses a fair chunk
  EXPECT_LT(flow.one_way_delays().Quantile(0.95), 0.13);  // stays low-delay
}

TEST(VerusLikeTest, AloneKeepsQueueingBounded) {
  PathConfig path;
  Testbed bed(3, path);
  VerusLikeFlow flow(&bed.loop(), &bed.path());
  flow.Start();
  bed.loop().RunUntil(Sec(30.0));
  double mbps = RateOver(static_cast<int64_t>(flow.delivered_bytes()),
                         TimeDelta::FromSecondsInt(30))
                    .ToMbps();
  EXPECT_GT(mbps, 3.0);
  // Delay target band keeps queueing under ~delay_target_high + base.
  EXPECT_LT(flow.one_way_delays().Quantile(0.95), 0.12);
}

TEST(VerusLikeTest, WindowShrinksWhenDelayRises) {
  PathConfig path;
  path.rate = DataRate::Mbps(2);  // tiny link: the window must stay small
  Testbed bed(4, path);
  VerusLikeFlow flow(&bed.loop(), &bed.path());
  flow.Start();
  bed.loop().RunUntil(Sec(20.0));
  // 2 Mbps * ~70 ms of allowed queueing ~= 17 KB; window must not blow up.
  EXPECT_LT(flow.window_bytes(), 300000.0);
}

class UdpVsTcpFairnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(UdpVsTcpFairnessTest, LowDelayButBelowFairShare) {
  // Figure 16's qualitative claim: against 2 Cubic background flows the UDP
  // low-latency protocols keep their own delay low but get less than their
  // fair share of throughput.
  PathConfig path;
  path.rate = DataRate::Mbps(9);
  Testbed bed(5, path);
  std::vector<std::unique_ptr<RawTcpSink>> sinks;
  std::vector<std::unique_ptr<IperfApp>> apps;
  std::vector<std::unique_ptr<SinkApp>> readers;
  std::vector<Testbed::Flow> tcp_flows;
  for (int i = 0; i < 2; ++i) {
    tcp_flows.push_back(bed.CreateFlow(TcpSocket::Config{}));
    sinks.push_back(std::make_unique<RawTcpSink>(tcp_flows.back().sender));
    apps.push_back(std::make_unique<IperfApp>(&bed.loop(), sinks.back().get()));
    readers.push_back(std::make_unique<SinkApp>(tcp_flows.back().receiver));
    apps.back()->Start();
    readers.back()->Start();
  }
  std::unique_ptr<SproutLikeFlow> sprout;
  std::unique_ptr<VerusLikeFlow> verus;
  uint64_t delivered = 0;
  const SampleSet* delays = nullptr;
  if (std::string(GetParam()) == "sprout") {
    sprout = std::make_unique<SproutLikeFlow>(&bed.loop(), &bed.path());
    sprout->Start();
  } else {
    verus = std::make_unique<VerusLikeFlow>(&bed.loop(), &bed.path());
    verus->Start();
  }
  bed.loop().RunUntil(Sec(40.0));
  if (sprout) {
    delivered = sprout->delivered_bytes();
    delays = &sprout->one_way_delays();
  } else {
    delivered = verus->delivered_bytes();
    delays = &verus->one_way_delays();
  }
  double udp_mbps =
      RateOver(static_cast<int64_t>(delivered), TimeDelta::FromSecondsInt(40)).ToMbps();
  double fair_share = 9.0 / 3.0;
  EXPECT_LT(udp_mbps, fair_share) << GetParam();
  EXPECT_GT(udp_mbps, 0.05) << GetParam();
  // Its own packets' delay stays well below the TCP flows' end-to-end delay
  // (which includes ~0.3 s of sender-side bufferbloat).
  EXPECT_LT(delays->Quantile(0.5), 0.25) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Protocols, UdpVsTcpFairnessTest, ::testing::Values("sprout", "verus"));

}  // namespace
}  // namespace element
