// Tests for the fleet-runner subsystem: histogram merge algebra, scenario
// JSON round-trips, sweep expansion, runner flags, and — the load-bearing
// contract — determinism of the fleet aggregate under parallelism.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/runner/fleet.h"
#include "src/common/json.h"
#include "src/runner/scenario.h"

namespace element {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  h.Add(0.010);
  h.Add(0.020);
  h.Add(0.030);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.010);
  EXPECT_DOUBLE_EQ(h.max(), 0.030);
  EXPECT_NEAR(h.mean(), 0.020, 1e-12);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, UnderflowAndOverflowAreCounted) {
  Histogram h(1e-3, 1.0, 8);
  h.Add(0.0);     // below floor (and non-positive)
  h.Add(1e-5);    // below floor
  h.Add(0.5);     // in range
  h.Add(2.0);     // above ceiling
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  // Extremes are tracked exactly even outside the binned range.
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
}

TEST(HistogramTest, QuantileAccuracyWithinBinResolution) {
  Histogram h;
  SampleSet exact;
  Rng rng(1234);
  for (int i = 0; i < 20000; ++i) {
    double v = rng.Exponential(0.050);
    h.Add(v);
    exact.Add(v);
  }
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    double approx = h.Quantile(q);
    double truth = exact.Quantile(q);
    // 32 bins/decade => bin edges are 10^(1/32) ~ 7.5% apart.
    EXPECT_NEAR(approx, truth, truth * 0.08) << "q=" << q;
  }
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  Rng rng(99);
  std::vector<std::vector<double>> batches(3);
  for (size_t b = 0; b < batches.size(); ++b) {
    for (int i = 0; i < 500; ++i) {
      batches[b].push_back(rng.Pareto(1e-4, 1.3));
    }
  }
  auto build = [&](size_t b) {
    Histogram h;
    for (double v : batches[b]) {
      h.Add(v);
    }
    return h;
  };
  Histogram a = build(0);
  Histogram b = build(1);
  Histogram c = build(2);

  Histogram left = a;  // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  Histogram right = c;  // (c + b) + a == a + (b + c) up to bin counts
  right.Merge(b);
  right.Merge(a);

  EXPECT_EQ(left.bins(), right.bins());
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.underflow(), right.underflow());
  EXPECT_EQ(left.overflow(), right.overflow());
  EXPECT_DOUBLE_EQ(left.min(), right.min());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
  // Quantiles depend only on bins + extremes, so they are exactly equal.
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(left.Quantile(q), right.Quantile(q)) << "q=" << q;
  }
  // The running sum is the one float accumulator: order-sensitive only in the
  // last ulps.
  EXPECT_NEAR(left.sum(), right.sum(), std::abs(left.sum()) * 1e-12);
}

TEST(HistogramTest, MergeEmptyIsIdentity) {
  Histogram h;
  h.Add(0.5);
  Histogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.count(), 1u);
  Histogram h2;
  h2.Merge(h);
  EXPECT_EQ(h2.count(), 1u);
  EXPECT_DOUBLE_EQ(h2.min(), 0.5);
}

#if ELEMENT_AUDITS_ENABLED
TEST(HistogramDeathTest, MismatchedGeometryMergeAborts) {
  Histogram a(1e-6, 1e3, 32);
  Histogram b(1e-6, 1e3, 16);
  a.Add(1.0);
  b.Add(1.0);
  EXPECT_DEATH(a.Merge(b), "mismatched geometry");
}

TEST(HistogramDeathTest, EmptyQuantileIsACallerBug) {
  Histogram h;
  EXPECT_DEATH(h.Quantile(0.5), "empty histogram");
  SampleSet s;
  EXPECT_DEATH(s.Quantile(0.5), "empty set");
}
#else
TEST(HistogramTest, EmptyQuantileReturnsZeroInRelease) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
}
#endif

TEST(SampleSetTest, MergeAppendsSamples) {
  SampleSet a;
  a.Add(1.0);
  a.Add(3.0);
  SampleSet b;
  b.Add(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 2.0);
  a.Merge(SampleSet{});
  EXPECT_EQ(a.count(), 3u);
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesScalarsArraysObjectsAndComments) {
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::Value::Parse(
      "// comment\n{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"s\": \"x\\ny\"}",
      &v, &err))
      << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("a")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("a")->items()[1].AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(v.Find("a")->items()[2].AsDouble(), -300.0);
  EXPECT_TRUE(v.Find("b")->Find("c")->AsBool());
  EXPECT_TRUE(v.Find("b")->Find("d")->is_null());
  EXPECT_EQ(v.Find("s")->AsString(), "x\ny");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  json::Value v;
  std::string err;
  EXPECT_FALSE(json::Value::Parse("{\"a\": }", &v, &err));
  EXPECT_FALSE(json::Value::Parse("[1, 2", &v, &err));
  EXPECT_FALSE(json::Value::Parse("{\"a\": 1} trailing", &v, &err));
  EXPECT_FALSE(json::Value::Parse("\"unterminated", &v, &err));
}

TEST(JsonTest, DumpParsesBackIdentically) {
  json::Value doc = json::Value::Object();
  doc.Set("n", json::Value::Number(0.123456789012345));
  doc.Set("i", json::Value::Int(42));
  doc.Set("s", json::Value::Str("he\"llo\n"));
  json::Value arr = json::Value::Array();
  arr.Append(json::Value::Bool(true));
  arr.Append(json::Value::Null());
  doc.Set("a", std::move(arr));
  std::string text = doc.Dump();
  json::Value back;
  std::string err;
  ASSERT_TRUE(json::Value::Parse(text, &back, &err)) << err;
  EXPECT_EQ(back.Dump(), text);
  EXPECT_DOUBLE_EQ(back.Find("n")->AsDouble(), 0.123456789012345);
}

// ---------------------------------------------------------------------------
// Scenario specs
// ---------------------------------------------------------------------------

constexpr char kSuiteText[] = R"({
  "suite": "unit",
  "defaults": {"duration_s": 0.5, "warmup_s": 0.1, "rate_mbps": 5, "rtt_ms": 20},
  "scenarios": [
    {"name": "explicit", "app": "accuracy", "duration_s": 1.0, "seed": 9}
  ],
  "sweeps": [
    {"name": "grid", "qdisc": ["pfifo_fast", "codel"], "cc": ["cubic", "reno"],
     "seed": {"base": 10, "count": 3}}
  ]
})";

TEST(ScenarioTest, ParsesDefaultsScenariosAndSweeps) {
  ScenarioSuite suite;
  std::string err;
  ASSERT_TRUE(ScenarioSuite::ParseJson(kSuiteText, &suite, &err)) << err;
  EXPECT_EQ(suite.name, "unit");
  // 1 explicit + 2 qdiscs * 2 ccs * 3 seeds.
  ASSERT_EQ(suite.scenarios.size(), 13u);
  EXPECT_EQ(suite.scenarios[0].name, "explicit");
  EXPECT_EQ(suite.scenarios[0].app, "accuracy");
  EXPECT_EQ(suite.scenarios[0].seed, 9u);
  EXPECT_DOUBLE_EQ(suite.scenarios[0].duration_s, 1.0);
  // Defaults flow into sweep entries.
  EXPECT_DOUBLE_EQ(suite.scenarios[1].duration_s, 0.5);
  EXPECT_EQ(suite.scenarios[1].name, "grid/pfifo_fast/cubic");
  EXPECT_EQ(suite.scenarios[1].seed, 10u);
  EXPECT_EQ(suite.scenarios[3].seed, 12u);
  EXPECT_EQ(suite.scenarios[4].name, "grid/pfifo_fast/reno");
  EXPECT_EQ(suite.scenarios.back().name, "grid/codel/reno");
  EXPECT_EQ(suite.scenarios.back().seed, 12u);
}

TEST(ScenarioTest, JsonRoundTripIsIdentity) {
  ScenarioSuite suite;
  std::string err;
  ASSERT_TRUE(ScenarioSuite::ParseJson(kSuiteText, &suite, &err)) << err;
  std::string serialized = suite.ToJson();
  ScenarioSuite back;
  ASSERT_TRUE(ScenarioSuite::ParseJson(serialized, &back, &err)) << err;
  EXPECT_EQ(back.name, suite.name);
  ASSERT_EQ(back.scenarios.size(), suite.scenarios.size());
  EXPECT_EQ(back.ToJson(), serialized);
}

TEST(ScenarioTest, RejectsUnknownFieldsAndValues) {
  ScenarioSuite suite;
  std::string err;
  EXPECT_FALSE(ScenarioSuite::ParseJson(R"({"scenarios": [{"qdsic": "codel"}]})", &suite, &err));
  EXPECT_NE(err.find("unknown scenario field"), std::string::npos) << err;
  EXPECT_FALSE(
      ScenarioSuite::ParseJson(R"({"scenarios": [{"qdisc": "taildrop"}]})", &suite, &err));
  EXPECT_NE(err.find("unknown qdisc"), std::string::npos) << err;
  EXPECT_FALSE(ScenarioSuite::ParseJson(R"({"scenarios": [{"cc": "quic"}]})", &suite, &err));
  EXPECT_FALSE(
      ScenarioSuite::ParseJson(R"({"scenarios": [{"duration_s": -1}]})", &suite, &err));
}

TEST(ScenarioTest, BuildPathWiredAutoQueueMatchesPaperFormula) {
  ScenarioSpec spec;
  spec.rate_mbps = 30;
  spec.rtt_ms = 50;
  spec.queue_packets = 0;
  PathConfig path = spec.BuildPath();
  // 2 * BDP = 2 * 30e6/8 * 0.05 / 1500 = 250 packets.
  EXPECT_EQ(path.queue_limit_packets, 250u);
  EXPECT_EQ(path.one_way_delay.nanos(), 25'000'000);
  spec.rate_mbps = 1;  // tiny BDP floors at 60
  path = spec.BuildPath();
  EXPECT_EQ(path.queue_limit_packets, 60u);
  spec.queue_packets = 123;  // explicit wins
  path = spec.BuildPath();
  EXPECT_EQ(path.queue_limit_packets, 123u);
}

TEST(ScenarioTest, BuildPathProfilesApplyQdiscOverride) {
  ScenarioSpec spec;
  spec.profile = "lte";
  spec.qdisc = "codel";
  PathConfig path = spec.BuildPath();
  EXPECT_EQ(path.link, LinkType::kLte);
  EXPECT_EQ(path.qdisc, QdiscType::kCoDel);
  EXPECT_EQ(path.queue_limit_packets, LteProfile().queue_limit_packets);
}

TEST(ScenarioTest, QdiscNamesRoundTrip) {
  for (QdiscType q : {QdiscType::kPfifoFast, QdiscType::kCoDel, QdiscType::kFqCoDel,
                      QdiscType::kPie, QdiscType::kRed}) {
    QdiscType back;
    ASSERT_TRUE(ParseQdisc(DescribeQdisc(q), &back)) << DescribeQdisc(q);
    EXPECT_EQ(back, q);
  }
}

// ---------------------------------------------------------------------------
// Runner flags
// ---------------------------------------------------------------------------

TEST(RunnerFlagsTest, ParsesStandardFlags) {
  const char* argv[] = {"prog", "--jobs", "3", "--seed", "100", "--out", "r.json",
                        "--scenarios", "s.json"};
  Flags flags;
  flags.Parse(9, argv);
  RunnerFlags rf = ParseRunnerFlags(flags);
  EXPECT_EQ(rf.jobs, 3);
  EXPECT_EQ(rf.seed_offset, 100u);
  EXPECT_EQ(rf.out, "r.json");
  EXPECT_EQ(rf.scenarios, "s.json");
}

TEST(RunnerFlagsTest, JobsFallsBackToEnvThenHardware) {
  ::setenv("ELEMENT_JOBS", "5", 1);
  const char* argv[] = {"prog"};
  Flags flags;
  flags.Parse(1, argv);
  EXPECT_EQ(ParseRunnerFlags(flags).jobs, 5);
  ::setenv("ELEMENT_JOBS", "not-a-number", 1);
  EXPECT_GE(DefaultJobs(), 1);
  ::unsetenv("ELEMENT_JOBS");
  EXPECT_GE(DefaultJobs(), 1);
}

// ---------------------------------------------------------------------------
// Fleet executor
// ---------------------------------------------------------------------------

std::vector<ScenarioSpec> TinySuite() {
  ScenarioSuite suite;
  std::string err;
  bool ok = ScenarioSuite::ParseJson(R"({
    "suite": "tiny",
    "defaults": {"rate_mbps": 5, "rtt_ms": 20, "duration_s": 0.5, "warmup_s": 0.1},
    "scenarios": [{"name": "acc", "app": "accuracy", "seed": 42}],
    "sweeps": [{"name": "grid", "qdisc": ["pfifo_fast", "codel"],
                "cc": ["cubic", "reno"], "seed": {"base": 1, "count": 1}}]
  })",
                                     &suite, &err);
  EXPECT_TRUE(ok) << err;
  return suite.scenarios;
}

TEST(FleetTest, AggregateJsonIsIdenticalForJobs1AndJobs8) {
  std::vector<ScenarioSpec> specs = TinySuite();
  FleetOptions serial;
  serial.jobs = 1;
  FleetSummary s1 = RunFleet(specs, serial);
  FleetOptions parallel;
  parallel.jobs = 8;
  FleetSummary s8 = RunFleet(specs, parallel);
  EXPECT_EQ(s1.completed, specs.size());
  EXPECT_EQ(s8.completed, specs.size());
  std::string j1 = FleetReportJson("tiny", s1, /*deterministic=*/true).Dump();
  std::string j8 = FleetReportJson("tiny", s8, /*deterministic=*/true).Dump();
  EXPECT_EQ(j1, j8);
  EXPECT_NE(j1.find("\"aggregate\""), std::string::npos);
}

TEST(FleetTest, AggregateMergeMatchesWholeFold) {
  std::vector<ScenarioSpec> specs = TinySuite();
  FleetOptions options;
  options.jobs = 2;
  FleetSummary summary = RunFleet(specs, options);
  ASSERT_EQ(summary.completed, specs.size());

  FleetAggregate whole = AggregateResults(summary.results);
  // Split the results anywhere and merge the partial aggregates. Bin counts
  // and rank statistics are integer/exact, so they match bitwise; the float
  // sums fold in a different association order, so compare those with a
  // tight relative tolerance. (Byte-identity is only promised for a fixed
  // fold order — the jobs=1 vs jobs=8 test above.)
  FleetAggregate first;
  FleetAggregate second;
  for (size_t i = 0; i < summary.results.size(); ++i) {
    (i < 2 ? first : second).Add(summary.results[i]);
  }
  first.Merge(second);
  EXPECT_EQ(first.scenarios(), whole.scenarios());
  EXPECT_EQ(first.flows(), whole.flows());
  EXPECT_EQ(first.retransmits(), whole.retransmits());
  const Histogram& first_e2e = first.metrics.HistOrEmpty("e2e_delay_s");
  const Histogram& whole_e2e = whole.metrics.HistOrEmpty("e2e_delay_s");
  EXPECT_EQ(first_e2e.bins(), whole_e2e.bins());
  EXPECT_EQ(first_e2e.count(), whole_e2e.count());
  EXPECT_DOUBLE_EQ(first_e2e.min(), whole_e2e.min());
  EXPECT_DOUBLE_EQ(first_e2e.max(), whole_e2e.max());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(first_e2e.Quantile(q), whole_e2e.Quantile(q));
    EXPECT_DOUBLE_EQ(first.metrics.HistOrEmpty("sender_err_s").Quantile(q),
                     whole.metrics.HistOrEmpty("sender_err_s").Quantile(q));
  }
  const RunningStats& first_gp = first.metrics.StatsOrEmpty("goodput_mbps");
  const RunningStats& whole_gp = whole.metrics.StatsOrEmpty("goodput_mbps");
  EXPECT_EQ(first_gp.count(), whole_gp.count());
  EXPECT_NEAR(first_gp.mean(), whole_gp.mean(), std::abs(whole_gp.mean()) * 1e-12);
  EXPECT_NEAR(first_e2e.sum(), whole_e2e.sum(), std::abs(whole_e2e.sum()) * 1e-12);
}

TEST(FleetTest, CancelsRemainingScenariosOnFirstFailure) {
  std::vector<ScenarioSpec> specs = TinySuite();
  ASSERT_GE(specs.size(), 3u);
  FleetOptions options;
  options.jobs = 1;  // deterministic order: failure at index 1 cancels 2..N
  options.run = [](const ScenarioSpec& spec) {
    ScenarioResult r;
    r.spec = spec;
    if (spec.name == "grid/pfifo_fast/cubic") {  // second scenario in order
      r.ok = false;
      r.error = "synthetic failure";
    } else {
      r.ok = true;
    }
    return r;
  };
  FleetSummary summary = RunFleet(specs, options);
  EXPECT_EQ(summary.completed, 1u);
  EXPECT_EQ(summary.failed, 1u);
  EXPECT_EQ(summary.cancelled, specs.size() - 2);
  EXPECT_TRUE(summary.results[2].cancelled);
  EXPECT_FALSE(summary.results[0].cancelled);
}

TEST(FleetTest, ProgressCallbackSeesEveryRun) {
  std::vector<ScenarioSpec> specs = TinySuite();
  size_t calls = 0;
  size_t max_finished = 0;
  FleetOptions options;
  options.jobs = 4;
  options.progress = [&](const FleetProgress& p) {
    ++calls;  // serialized under the fleet lock
    max_finished = std::max(max_finished, p.finished);
    EXPECT_EQ(p.total, 5u);
    EXPECT_NE(p.last, nullptr);
  };
  FleetSummary summary = RunFleet(specs, options);
  EXPECT_EQ(summary.completed, specs.size());
  EXPECT_EQ(calls, specs.size());
  EXPECT_EQ(max_finished, specs.size());
}

TEST(FleetTest, EmptySuiteReturnsEmptySummary) {
  FleetSummary summary = RunFleet({}, FleetOptions{});
  EXPECT_TRUE(summary.results.empty());
  EXPECT_EQ(summary.completed, 0u);
}

TEST(FleetTest, InvalidSpecFailsWithoutRunning) {
  ScenarioSpec bad;
  bad.name = "bad";
  bad.cc = "quic";
  FleetOptions options;
  options.jobs = 1;
  FleetSummary summary = RunFleet({bad}, options);
  EXPECT_EQ(summary.failed, 1u);
  EXPECT_NE(summary.results[0].error.find("unknown cc"), std::string::npos);
}

}  // namespace
}  // namespace element
