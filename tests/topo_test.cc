// Tests for the multi-flow topology subsystem: router forwarding, dumbbell /
// parking-lot delivery, ECN CE survival across hops, flow-id churn without
// demux leaks or misdelivery, and seeded-run determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/apps/iperf_app.h"
#include "src/common/rng.h"
#include "src/evloop/event_loop.h"
#include "src/topo/contention.h"
#include "src/topo/cross_traffic.h"
#include "src/topo/router.h"
#include "src/topo/topology.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

class CaptureSink : public PacketSink {
 public:
  void Deliver(Packet pkt) override { packets.push_back(std::move(pkt)); }
  std::vector<Packet> packets;
};

Packet MakePacket(uint64_t flow_id, uint32_t size = 1500) {
  Packet pkt;
  pkt.flow_id = flow_id;
  pkt.size_bytes = size;
  return pkt;
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(RouterTest, ExactRouteWinsOverDefault) {
  Router router("r");
  CaptureSink a;
  CaptureSink b;
  int port_a = router.AddPort(&a);
  int port_b = router.AddPort(&b);
  router.SetDefaultPort(port_a);
  router.AddRoute(7, port_b);

  router.Deliver(MakePacket(7));
  router.Deliver(MakePacket(8));
  EXPECT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets[0].flow_id, 7u);
  EXPECT_EQ(router.stats().forwarded_packets, 2u);
  EXPECT_EQ(router.stats().forwarded_bytes, 3000u);
  EXPECT_EQ(router.stats().unroutable_packets, 0u);
}

TEST(RouterTest, NoRouteNoDefaultCountsUnroutable) {
  Router router("r");
  CaptureSink a;
  int port_a = router.AddPort(&a);
  router.AddRoute(1, port_a);

  router.Deliver(MakePacket(2));
  EXPECT_EQ(a.packets.size(), 0u);
  EXPECT_EQ(router.stats().unroutable_packets, 1u);
  EXPECT_EQ(router.stats().forwarded_packets, 0u);
}

TEST(RouterTest, RemoveRouteRestoresBaseline) {
  Router router("r");
  CaptureSink a;
  int port_a = router.AddPort(&a);
  EXPECT_EQ(router.route_count(), 0u);
  router.AddRoute(3, port_a);
  router.AddRoute(9, port_a);
  EXPECT_EQ(router.route_count(), 2u);
  EXPECT_TRUE(router.HasRoute(3));
  router.RemoveRoute(3);
  EXPECT_FALSE(router.HasRoute(3));
  EXPECT_EQ(router.route_count(), 1u);
  router.RemoveRoute(9);
  EXPECT_EQ(router.route_count(), 0u);
}

// ---------------------------------------------------------------------------
// Topology shapes
// ---------------------------------------------------------------------------

TEST(TopologyTest, SpecValidation) {
  TopologySpec spec;
  EXPECT_TRUE(spec.Validate().empty());
  spec.hops = 3;
  EXPECT_FALSE(spec.Validate().empty());  // dumbbell is single-hop
  spec.shape = TopologyShape::kParkingLot;
  EXPECT_TRUE(spec.Validate().empty());
  spec.hops = 17;
  EXPECT_FALSE(spec.Validate().empty());
  spec = TopologySpec{};
  spec.host_pairs = 0;
  EXPECT_FALSE(spec.Validate().empty());
  spec = TopologySpec{};
  spec.queue_limit_packets = 0;
  EXPECT_FALSE(spec.Validate().empty());
}

TEST(TopologyTest, DumbbellDeliversRawPacketsBothWays) {
  EventLoop loop;
  Rng rng(1);
  TopologySpec spec;
  spec.host_pairs = 2;
  Network net(&loop, &rng, spec);

  uint64_t flow = net.AllocateFlowId();
  net.RouteFlow(flow, 1);
  CaptureSink at_receiver;
  CaptureSink at_sender;
  net.receiver(1).rx->Register(flow, &at_receiver);
  net.sender(1).rx->Register(flow, &at_sender);

  net.sender(1).tx->Deliver(MakePacket(flow));
  loop.RunUntil(Sec(1.0));
  ASSERT_EQ(at_receiver.packets.size(), 1u);

  net.receiver(1).tx->Deliver(MakePacket(flow, 52));
  loop.RunUntil(Sec(2.0));
  ASSERT_EQ(at_sender.packets.size(), 1u);

  EXPECT_GT(net.BaseRtt(1), TimeDelta::Zero());
  EXPECT_EQ(net.TotalUnroutablePackets(), 0u);
  net.receiver(1).rx->Unregister(flow);
  net.sender(1).rx->Unregister(flow);
  net.UnrouteFlow(flow, 1);
  net.ReleaseFlowId(flow);
}

TEST(TopologyTest, UnroutedFlowIsDroppedAtExit) {
  EventLoop loop;
  Rng rng(1);
  TopologySpec spec;
  spec.host_pairs = 1;
  Network net(&loop, &rng, spec);

  // No RouteFlow: the packet forwards onward through default ports but the
  // last router has no exact exit route and no default.
  net.sender(0).tx->Deliver(MakePacket(99));
  loop.RunUntil(Sec(1.0));
  EXPECT_EQ(net.TotalUnroutablePackets(), 1u);
}

// S1: a CE mark applied before (or at) hop 0 must survive forwarding across
// every remaining hop and reach the receiver's demux intact.
TEST(TopologyTest, EcnMarksSurviveMultiHopForwarding) {
  EventLoop loop;
  Rng rng(1);
  TopologySpec spec;
  spec.shape = TopologyShape::kParkingLot;
  spec.hops = 4;
  spec.host_pairs = 1;
  Network net(&loop, &rng, spec);

  uint64_t flow = net.AllocateFlowId();
  net.RouteFlow(flow, 0);
  CaptureSink at_receiver;
  net.receiver(0).rx->Register(flow, &at_receiver);

  Packet marked = MakePacket(flow);
  marked.ecn_capable = true;
  marked.ecn_marked = true;
  Packet unmarked = MakePacket(flow);
  unmarked.ecn_capable = true;
  net.sender(0).tx->Deliver(marked);
  net.sender(0).tx->Deliver(unmarked);
  loop.RunUntil(Sec(1.0));

  ASSERT_EQ(at_receiver.packets.size(), 2u);
  EXPECT_TRUE(at_receiver.packets[0].ecn_capable);
  EXPECT_TRUE(at_receiver.packets[0].ecn_marked);
  EXPECT_TRUE(at_receiver.packets[1].ecn_capable);
  EXPECT_FALSE(at_receiver.packets[1].ecn_marked);
  net.receiver(0).rx->Unregister(flow);
}

// S1, end to end: with ECN on a multi-hop path, CoDel marks instead of
// dropping, the receiver echoes the marks back across the reverse routers,
// and the sender reacts — so the transfer completes without retransmissions.
// With ECN off the same path must show CoDel drops instead.
TEST(TopologyTest, EcnEchoTamesCodelAcrossHops) {
  auto run = [](bool ecn) {
    ContentionConfig cfg;
    cfg.topo.shape = TopologyShape::kParkingLot;
    cfg.topo.hops = 3;
    cfg.topo.host_pairs = 1;
    cfg.topo.qdisc = QdiscType::kCoDel;
    cfg.topo.queue_limit_packets = 200;
    cfg.topo.ecn = ecn;
    cfg.ecn = ecn;
    cfg.flows = 1;
    cfg.duration_s = 8.0;
    cfg.warmup_s = 1.0;
    cfg.seed = 5;
    return RunContentionExperiment(cfg);
  };

  ContentionResult with_ecn = run(true);
  ASSERT_EQ(with_ecn.flows.size(), 1u);
  EXPECT_GT(with_ecn.bottleneck.ecn_marked_packets, 0u);
  EXPECT_EQ(with_ecn.flows[0].retransmits, 0u);
  EXPECT_GT(with_ecn.flows[0].goodput_mbps, 5.0);  // 10 Mbps bottleneck
  EXPECT_EQ(with_ecn.unroutable_packets, 0u);

  ContentionResult without_ecn = run(false);
  EXPECT_EQ(without_ecn.bottleneck.ecn_marked_packets, 0u);
  EXPECT_GT(without_ecn.flows[0].retransmits, 0u);
}

// ---------------------------------------------------------------------------
// S2: flow-id churn — teardown must leave no demux entries, no routes, and
// recycled ids must not misdeliver (Demux DCHECKs on live re-registration).
// ---------------------------------------------------------------------------

TEST(TopologyTest, FlowChurnReusesIdsWithoutLeaks) {
  EventLoop loop;
  Rng rng(3);
  TopologySpec spec;
  spec.host_pairs = 1;
  spec.bottleneck_rate = DataRate::Mbps(50);
  Network net(&loop, &rng, spec);
  Network::Attachment snd = net.sender(0);
  Network::Attachment rcv = net.receiver(0);

  constexpr int kRounds = 12;
  constexpr int kFlowsPerRound = 8;
  uint64_t max_id_seen = 0;
  SimTime now = SimTime::Zero();
  for (int round = 0; round < kRounds; ++round) {
    struct Live {
      uint64_t id;
      std::unique_ptr<TcpSocket> sender;
      std::unique_ptr<TcpSocket> receiver;
      std::unique_ptr<SinkApp> reader;
    };
    std::vector<Live> live;
    for (int i = 0; i < kFlowsPerRound; ++i) {
      Live f;
      f.id = net.AllocateFlowId();
      max_id_seen = std::max(max_id_seen, f.id);
      net.RouteFlow(f.id, 0);
      TcpSocket::Config config;
      f.sender = std::make_unique<TcpSocket>(&loop, rng.Fork(), config, f.id, snd.tx, snd.rx);
      f.receiver = std::make_unique<TcpSocket>(&loop, rng.Fork(), config, f.id, rcv.tx, rcv.rx);
      f.receiver->Listen();
      f.sender->Connect();
      live.push_back(std::move(f));
    }
    EXPECT_EQ(snd.rx->size(), static_cast<size_t>(kFlowsPerRound));
    EXPECT_EQ(rcv.rx->size(), static_cast<size_t>(kFlowsPerRound));

    now += TimeDelta::FromMillis(500);
    loop.RunUntil(now);
    for (Live& f : live) {
      ASSERT_TRUE(f.sender->established());
      f.sender->Write(20000);
      f.sender->Close();
      f.reader = std::make_unique<SinkApp>(f.receiver.get());
      f.reader->Start();
    }
    now += TimeDelta::FromSecondsInt(5);
    loop.RunUntil(now);
    for (Live& f : live) {
      EXPECT_TRUE(f.sender->fin_acked());
      EXPECT_EQ(f.receiver->app_bytes_read(), 20000u);
    }

    // Teardown in the documented order: destroy endpoints (unregisters),
    // unroute, drain the loop, then release ids for reuse.
    std::vector<uint64_t> ids;
    for (Live& f : live) {
      ids.push_back(f.id);
    }
    live.clear();
    for (uint64_t id : ids) {
      net.UnrouteFlow(id, 0);
    }
    now += TimeDelta::FromSecondsInt(2);
    loop.RunUntil(now);
    for (uint64_t id : ids) {
      net.ReleaseFlowId(id);
    }
    EXPECT_EQ(snd.rx->size(), 0u);
    EXPECT_EQ(rcv.rx->size(), 0u);
    EXPECT_EQ(net.forward_router(1).route_count(), 0u);
    EXPECT_EQ(net.reverse_router(0).route_count(), 0u);
  }

  // Ids were recycled: 12 rounds x 8 flows never needed more than one
  // round's worth of distinct ids.
  EXPECT_LE(max_id_seen, static_cast<uint64_t>(kFlowsPerRound));
  // Nothing was misdelivered or stranded anywhere in the topology.
  EXPECT_EQ(net.TotalUnroutablePackets(), 0u);
  EXPECT_EQ(snd.rx->unroutable_packets(), 0u);
  EXPECT_EQ(rcv.rx->unroutable_packets(), 0u);
}

// ---------------------------------------------------------------------------
// Cross traffic + determinism
// ---------------------------------------------------------------------------

TEST(TopologyTest, CrossTrafficDeliversOnEveryHop) {
  ContentionConfig cfg;
  cfg.topo.shape = TopologyShape::kParkingLot;
  cfg.topo.hops = 2;
  cfg.topo.host_pairs = 1;
  cfg.flows = 1;
  cfg.cross.iperf_flows = 1;
  cfg.cross.onoff_flows = 1;
  cfg.duration_s = 6.0;
  cfg.warmup_s = 1.0;
  ContentionResult result = RunContentionExperiment(cfg);
  EXPECT_EQ(result.cross_flows, 4u);  // 2 per hop x 2 hops
  EXPECT_GT(result.cross_bytes_delivered, 0u);
  EXPECT_EQ(result.unroutable_packets, 0u);
  // The foreground flow still makes progress under contention.
  EXPECT_GT(result.flows[0].goodput_mbps, 0.5);
}

TEST(TopologyTest, SeededContentionRunsAreIdentical) {
  ContentionConfig cfg;
  cfg.topo.host_pairs = 4;
  cfg.topo.qdisc = QdiscType::kFqCoDel;
  cfg.flows = 4;
  cfg.cross.iperf_flows = 1;
  cfg.cross.onoff_flows = 2;
  cfg.element_on_first = true;
  cfg.duration_s = 5.0;
  cfg.warmup_s = 1.0;
  cfg.seed = 77;

  ContentionResult a = RunContentionExperiment(cfg);
  ContentionResult b = RunContentionExperiment(cfg);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].goodput_mbps, b.flows[i].goodput_mbps);
    EXPECT_EQ(a.flows[i].e2e_delay_s, b.flows[i].e2e_delay_s);
    EXPECT_EQ(a.flows[i].retransmits, b.flows[i].retransmits);
  }
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.forwarded_packets, b.forwarded_packets);
  EXPECT_EQ(a.cross_bytes_delivered, b.cross_bytes_delivered);
  EXPECT_EQ(a.processed_events, b.processed_events);
  EXPECT_EQ(a.sender_accuracy.accuracy, b.sender_accuracy.accuracy);
  EXPECT_EQ(a.receiver_accuracy.accuracy, b.receiver_accuracy.accuracy);
}

TEST(JainIndexTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1.0, 1.0, 1.0, 1.0}), 1.0);
  // One of two flows starved: (1)^2 / (2 * 1) = 0.5.
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0.0, 0.0}), 1.0);
}

}  // namespace
}  // namespace element
