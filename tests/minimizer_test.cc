// Tests for Algorithm 3 (the latency minimizer): S_target dynamics, the cwnd
// cap, the sleep ladder, and gating behaviour against a live socket.

#include <gtest/gtest.h>

#include <cmath>

#include "src/element/latency_minimizer.h"
#include "src/tcpsim/testbed.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

class MinimizerTest : public ::testing::Test {
 protected:
  MinimizerTest() : bed_(1, PathConfig{}) {
    flow_ = bed_.CreateFlow(TcpSocket::Config{});
    bed_.loop().RunUntil(Sec(0.5));  // establish
  }
  Testbed bed_;
  Testbed::Flow flow_;
};

TEST_F(MinimizerTest, EwmaFollowsPaperWeights) {
  LatencyMinimizer min(&bed_.loop(), flow_.sender, MinimizerParams{}, false);
  min.OnDelayMeasurement(TimeDelta::FromMillis(80));
  EXPECT_NEAR(min.average_delay().ToMillisF(), 80.0, 1e-6);
  min.OnDelayMeasurement(TimeDelta::FromMillis(0));
  // 7/8 * 80 + 1/8 * 0 = 70.
  EXPECT_NEAR(min.average_delay().ToMillisF(), 70.0, 1e-6);
}

TEST_F(MinimizerTest, StargetShrinksWhenDelayAboveThreshold) {
  MinimizerParams params;
  LatencyMinimizer min(&bed_.loop(), flow_.sender, params, false);
  min.Start();
  // Persistently 8x the threshold: ratio = 8^0.25 ~ 1.68 per adjustment.
  for (int i = 0; i < 50; ++i) {
    min.OnDelayMeasurement(TimeDelta::FromMillis(200));
  }
  bed_.loop().RunUntil(Sec(5.0));
  uint64_t first = min.starget_bytes();
  EXPECT_LT(first, flow_.sender->sndbuf());
  EXPECT_GE(first, flow_.sender->mss());  // floor
}

TEST_F(MinimizerTest, StargetCappedByBetaCwnd) {
  MinimizerParams params;
  LatencyMinimizer min(&bed_.loop(), flow_.sender, params, false);
  min.Start();
  // Delay far below threshold: S_target wants to grow; the cap must bind.
  for (int i = 0; i < 20; ++i) {
    min.OnDelayMeasurement(TimeDelta::FromMillis(1));
    bed_.loop().RunUntil(Sec(0.5 + 0.25 * i));
  }
  TcpInfoData info = flow_.sender->GetTcpInfo();
  double cap = params.beta * info.tcpi_snd_cwnd * info.tcpi_snd_mss;
  EXPECT_LE(static_cast<double>(min.starget_bytes()), cap * 1.01);
}

TEST_F(MinimizerTest, SleepLadderFollowsCntPowLambda) {
  MinimizerParams params;
  LatencyMinimizer min(&bed_.loop(), flow_.sender, params, false);
  // cnt^1.5 ms: 1, 2.83, 5.20, 8, ...
  EXPECT_NEAR(min.NextRetryDelay().ToMillisF(), 1.0, 1e-6);
  EXPECT_NEAR(min.NextRetryDelay().ToMillisF(), std::pow(2.0, 1.5), 1e-6);
  EXPECT_NEAR(min.NextRetryDelay().ToMillisF(), std::pow(3.0, 1.5), 1e-6);
  min.OnSendAllowed();
  EXPECT_NEAR(min.NextRetryDelay().ToMillisF(), 1.0, 1e-6);
}

TEST_F(MinimizerTest, SleepBudgetExhaustionOpensGate) {
  MinimizerParams params;
  LatencyMinimizer min(&bed_.loop(), flow_.sender, params, false);
  min.Start();
  for (int i = 0; i < 30; ++i) {
    min.OnDelayMeasurement(TimeDelta::FromMillis(500));
  }
  bed_.loop().RunUntil(Sec(3.0));
  // Fill the pipe so unsent exceeds S_target.
  flow_.sender->Write(4 << 20);
  // After max_sleeps retries the gate must open regardless.
  for (int i = 0; i <= params.max_sleeps; ++i) {
    min.NextRetryDelay();
  }
  EXPECT_TRUE(min.MaySendNow());
}

TEST_F(MinimizerTest, UngatedBeforeInitialization) {
  LatencyMinimizer min(&bed_.loop(), flow_.sender, MinimizerParams{}, false);
  // No delay measurements yet: S_target uninitialized; no gating.
  EXPECT_TRUE(min.MaySendNow());
}

TEST_F(MinimizerTest, WirelessModePinsSndbuf) {
  MinimizerParams params;
  LatencyMinimizer min(&bed_.loop(), flow_.sender, params, /*is_wireless=*/true);
  min.Start();
  for (int i = 0; i < 30; ++i) {
    min.OnDelayMeasurement(TimeDelta::FromMillis(100));
  }
  bed_.loop().RunUntil(Sec(5.0));
  // SetSndBuf disables auto-tuning and pins near S_target * gamma.
  EXPECT_NEAR(static_cast<double>(flow_.sender->sndbuf()),
              static_cast<double>(min.starget_bytes()) * params.gamma,
              static_cast<double>(min.starget_bytes()) * 0.5);
}

TEST_F(MinimizerTest, EquilibriumNearThresholdOnLiveFlow) {
  // Closed loop: gate the writes with the minimizer and verify the average
  // measured delay settles near D_thr.
  MinimizerParams params;
  LatencyMinimizer min(&bed_.loop(), flow_.sender, params, false);
  min.Start();
  SenderDelayEstimator est;
  est.set_report_sink([&](const DelayReport& r) { min.OnDelayMeasurement(r.delay); });
  PeriodicTimer tracker(&bed_.loop(), TimeDelta::FromMillis(10), [&] {
    est.OnTcpInfoSample(flow_.sender->GetTcpInfo(), bed_.loop().now());
  });
  tracker.Start();
  // Greedy paced sender.
  PeriodicTimer sender_app(&bed_.loop(), TimeDelta::FromMillis(1), [&] {
    if (flow_.sender->established() && min.MaySendNow()) {
      if (flow_.sender->Write(64 * 1024) > 0) {
        est.OnAppSend(flow_.sender->app_bytes_written(), bed_.loop().now());
        min.OnSendAllowed();
      }
    }
  });
  sender_app.Start();
  flow_.receiver->SetReadableCallback([&] {
    while (flow_.receiver->Read(1 << 20) > 0) {
    }
  });
  bed_.loop().RunUntil(Sec(30.0));
  // Average delay within a few x of the 25 ms threshold (not hundreds of ms).
  EXPECT_LT(min.average_delay().ToMillisF(), 100.0);
  EXPECT_GT(est.delay_samples().count(), 100u);
}

}  // namespace
}  // namespace element
