// Integration tests for the TCP socket over the simulated network: handshake,
// reliable in-order delivery under loss, throughput, auto-tuning, flow
// control, SACK recovery, ECN, and fairness. Parameterized sweeps cover the
// congestion controls and a bandwidth x RTT grid.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/flow_meter.h"
#include "src/trace/ground_truth.h"

namespace element {
namespace {

SimTime Sec(double s) { return SimTime::FromNanos(static_cast<int64_t>(s * 1e9)); }

TEST(TcpHandshakeTest, EstablishesBothEnds) {
  PathConfig path;
  Testbed bed(1, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  EXPECT_FALSE(flow.sender->established());
  bed.loop().RunUntil(Sec(1.0));
  EXPECT_TRUE(flow.sender->established());
  EXPECT_TRUE(flow.receiver->established());
  // Client learned an RTT from the handshake (~2 * 25 ms + serialization).
  EXPECT_NEAR(flow.sender->smoothed_rtt().ToMillisF(), 50.0, 5.0);
}

TEST(TcpHandshakeTest, SurvivesSynLoss) {
  PathConfig path;
  path.loss_probability = 0.9;  // brutal; SYN retries must eventually win
  Testbed bed(3, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  bed.loop().RunUntil(Sec(60.0));
  EXPECT_TRUE(flow.sender->established());
}

TEST(TcpTransferTest, DeliversExactByteCount) {
  PathConfig path;
  Testbed bed(2, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  // Send exactly 100000 bytes, retrying short writes on writability.
  uint64_t to_write = 100000;
  auto pump = [&] {
    while (to_write > 0) {
      size_t w = flow.sender->Write(to_write);
      if (w == 0) {
        break;
      }
      to_write -= w;
    }
  };
  flow.sender->SetWritableCallback(pump);
  flow.sender->SetEstablishedCallback(pump);
  uint64_t total_read = 0;
  flow.receiver->SetReadableCallback([&] {
    size_t n;
    while ((n = flow.receiver->Read(1 << 20)) > 0) {
      total_read += n;
    }
  });
  bed.loop().RunUntil(Sec(10.0));
  EXPECT_EQ(total_read, 100000u);
  EXPECT_EQ(flow.receiver->app_bytes_read(), 100000u);
}

TEST(TcpTransferTest, WriteBoundedBySendBuffer) {
  PathConfig path;
  Testbed bed(2, path);
  TcpSocket::Config cfg;
  cfg.sndbuf_bytes = 10000;
  cfg.sndbuf_autotune = false;
  Testbed::Flow flow = bed.CreateFlow(cfg);
  bed.loop().RunUntil(Sec(1.0));
  size_t accepted = flow.sender->Write(50000);
  EXPECT_EQ(accepted, 10000u);
  EXPECT_EQ(flow.sender->SndBufFree(), 0u);
}

TEST(TcpTransferTest, WritableCallbackFiresWhenSpaceFrees) {
  PathConfig path;
  Testbed bed(2, path);
  TcpSocket::Config cfg;
  cfg.sndbuf_bytes = 20000;
  cfg.sndbuf_autotune = false;
  Testbed::Flow flow = bed.CreateFlow(cfg);
  SinkApp reader(flow.receiver);
  reader.Start();
  int writable_calls = 0;
  flow.sender->SetWritableCallback([&] { ++writable_calls; });
  flow.sender->SetEstablishedCallback([&] { flow.sender->Write(100000); });
  bed.loop().RunUntil(Sec(5.0));
  EXPECT_GT(writable_calls, 0);
}

class TcpCcThroughputTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TcpCcThroughputTest, SaturatesLink) {
  PathConfig path;
  path.rate = DataRate::Mbps(20);
  path.one_way_delay = TimeDelta::FromMillis(20);
  path.queue_limit_packets = 150;
  Testbed bed(11, path);
  TcpSocket::Config cfg;
  cfg.congestion_control = GetParam();
  Testbed::Flow flow = bed.CreateFlow(cfg);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(30.0));
  double goodput =
      RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()), TimeDelta::FromSecondsInt(30))
          .ToMbps();
  EXPECT_GT(goodput, 20.0 * 0.70) << "cc=" << GetParam();
  EXPECT_LT(goodput, 20.0 * 1.01);
}

INSTANTIATE_TEST_SUITE_P(AllCcs, TcpCcThroughputTest,
                         ::testing::Values("reno", "cubic", "vegas", "bbr"));

TEST(TcpLossRecoveryTest, DeliversEverythingUnderRandomLoss) {
  PathConfig path;
  path.rate = DataRate::Mbps(10);
  path.loss_probability = 0.02;
  Testbed bed(13, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(30.0));
  EXPECT_GT(flow.sender->total_retransmits(), 10u);
  // Reliability: all acked bytes were readable in order.
  EXPECT_EQ(flow.receiver->app_bytes_read(), flow.receiver->GetTcpInfo().tcpi_bytes_received);
  EXPECT_GT(flow.receiver->app_bytes_read(), 1'000'000u);
}

TEST(TcpLossRecoveryTest, SackAvoidsRtoOnBurstLoss) {
  // A queue-overflow burst must be repaired by SACK-driven fast recovery
  // (many retransmits but goodput stays high).
  PathConfig path;
  path.rate = DataRate::Mbps(10);
  path.queue_limit_packets = 40;  // tight: frequent overflow bursts
  Testbed bed(17, path);
  TcpSocket::Config cfg;
  cfg.congestion_control = "reno";  // no HyStart: guarantees an overshoot burst
  Testbed::Flow flow = bed.CreateFlow(cfg);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(20.0));
  double goodput =
      RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()), TimeDelta::FromSecondsInt(20))
          .ToMbps();
  EXPECT_GT(flow.sender->total_retransmits(), 0u);
  EXPECT_GT(goodput, 7.0);
}

TEST(TcpAutotuneTest, SndbufRatchetsUpAndNeverShrinks) {
  PathConfig path;
  Testbed bed(5, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  size_t prev = flow.sender->sndbuf();
  size_t initial = prev;
  for (int i = 1; i <= 60; ++i) {
    bed.loop().RunUntil(Sec(i * 0.5));
    size_t now = flow.sender->sndbuf();
    EXPECT_GE(now, prev);  // ratchet-only
    prev = now;
  }
  EXPECT_GT(prev, initial);  // it actually grew
  // Tracks ~2x cwnd.
  TcpInfoData info = flow.sender->GetTcpInfo();
  EXPECT_GE(prev, 2ull * info.tcpi_snd_cwnd * info.tcpi_snd_mss * 6 / 10);
}

TEST(TcpAutotuneTest, SetSndBufPinsAndDisablesAutotune) {
  PathConfig path;
  Testbed bed(5, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  flow.sender->SetSndBuf(30000);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(10.0));
  EXPECT_EQ(flow.sender->sndbuf(), 30000u);
}

TEST(TcpFlowControlTest, TinyReceiveBufferThrottlesSender) {
  PathConfig path;
  path.rate = DataRate::Mbps(100);
  path.one_way_delay = TimeDelta::FromMillis(10);
  Testbed bed(7, path);
  TcpSocket::Config cfg;
  cfg.rcvbuf_bytes = 20000;  // ~14 segments
  Testbed::Flow flow = bed.CreateFlow(cfg);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  app.Start();
  // Receiver app never reads: the advertised window must stop the sender.
  bed.loop().RunUntil(Sec(5.0));
  EXPECT_LE(flow.receiver->ReadableBytes(), 20000u);
  uint64_t stalled_at = flow.sender->GetTcpInfo().tcpi_bytes_acked;
  bed.loop().RunUntil(Sec(10.0));
  EXPECT_LE(flow.sender->GetTcpInfo().tcpi_bytes_acked, stalled_at + 25000);
}

TEST(TcpInfoTest, FieldsAreCoherent) {
  PathConfig path;
  Testbed bed(9, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(10.0));
  TcpInfoData snd = flow.sender->GetTcpInfo();
  TcpInfoData rcv = flow.receiver->GetTcpInfo();
  EXPECT_EQ(snd.tcpi_snd_mss, kDefaultMss);
  EXPECT_GT(snd.tcpi_bytes_acked, 0u);
  EXPECT_GT(snd.tcpi_snd_cwnd, 1u);
  EXPECT_GT(snd.tcpi_rtt_us, 45000u);  // >= base RTT
  EXPECT_GT(snd.tcpi_segs_out, 0u);
  EXPECT_GT(rcv.tcpi_segs_in, 0u);
  EXPECT_EQ(rcv.tcpi_bytes_received, flow.receiver->app_bytes_read());
  // The paper's sender estimate: acked + unacked*mss >= bytes actually sent.
  uint64_t est = snd.tcpi_bytes_acked + uint64_t(snd.tcpi_unacked) * snd.tcpi_snd_mss;
  uint64_t sent = snd.tcpi_bytes_acked + (flow.sender->SndBufUsed() - snd.tcpi_notsent_bytes);
  EXPECT_GE(est + snd.tcpi_snd_mss, sent);
}

TEST(TcpEcnTest, EcnReducesRetransmissions) {
  auto run = [](bool ecn) {
    PathConfig path;
    path.rate = DataRate::Mbps(10);
    path.qdisc = QdiscType::kCoDel;
    path.ecn = ecn;
    Testbed bed(21, path);
    TcpSocket::Config cfg;
    cfg.ecn = ecn;
    Testbed::Flow flow = bed.CreateFlow(cfg);
    auto sink = std::make_unique<RawTcpSink>(flow.sender);
    IperfApp app(&bed.loop(), sink.get());
    SinkApp reader(flow.receiver);
    app.Start();
    reader.Start();
    bed.loop().RunUntil(Sec(20.0));
    return std::pair<uint64_t, uint64_t>(flow.sender->total_retransmits(),
                                         flow.receiver->app_bytes_read());
  };
  auto [retrans_ecn, bytes_ecn] = run(true);
  auto [retrans_plain, bytes_plain] = run(false);
  EXPECT_LT(retrans_ecn, retrans_plain);
  EXPECT_GT(bytes_ecn, bytes_plain / 2);  // throughput in the same league
}

TEST(TcpFairnessTest, ThreeCubicFlowsShareBottleneck) {
  PathConfig path;
  path.rate = DataRate::Mbps(12);
  path.one_way_delay = TimeDelta::FromMillis(25);
  path.queue_limit_packets = 100;
  Testbed bed(23, path);
  std::vector<Testbed::Flow> flows;
  std::vector<std::unique_ptr<RawTcpSink>> sinks;
  std::vector<std::unique_ptr<IperfApp>> apps;
  std::vector<std::unique_ptr<SinkApp>> readers;
  for (int i = 0; i < 3; ++i) {
    flows.push_back(bed.CreateFlow(TcpSocket::Config{}));
    sinks.push_back(std::make_unique<RawTcpSink>(flows.back().sender));
    apps.push_back(std::make_unique<IperfApp>(&bed.loop(), sinks.back().get()));
    readers.push_back(std::make_unique<SinkApp>(flows.back().receiver));
    apps.back()->Start();
    readers.back()->Start();
  }
  bed.loop().RunUntil(Sec(60.0));
  double total = 0;
  double min_share = 1e18;
  double max_share = 0;
  for (auto& f : flows) {
    double mbps = RateOver(static_cast<int64_t>(f.receiver->app_bytes_read()),
                           TimeDelta::FromSecondsInt(60))
                      .ToMbps();
    total += mbps;
    min_share = std::min(min_share, mbps);
    max_share = std::max(max_share, mbps);
  }
  EXPECT_GT(total, 12.0 * 0.8);
  // Jain-ish check: no flow starves or hogs beyond 2.5x.
  EXPECT_LT(max_share / min_share, 2.5);
}

TEST(TcpDirectionTest, UploadUsesReversePathAsBottleneck) {
  PathConfig path;
  path.rate = DataRate::Mbps(100);
  path.reverse_rate = DataRate::Mbps(5);
  Testbed bed(31, path);
  // Data flows server -> client over the reverse pipe (5 Mbps).
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{}, /*sender_at_client=*/false);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(20.0));
  double goodput = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                            TimeDelta::FromSecondsInt(20))
                       .ToMbps();
  EXPECT_GT(goodput, 3.5);
  EXPECT_LT(goodput, 5.05);
}

TEST(DrwaTest, ReceiverWindowModerationBoundsDelay) {
  auto run = [](bool drwa) {
    PathConfig path;
    path.rate = DataRate::Mbps(10);
    path.queue_limit_packets = 400;  // deep buffer: room to bloat
    Testbed bed(41, path);
    TcpSocket::Config cfg;
    cfg.drwa_rcv_window_moderation = drwa;
    Testbed::Flow flow = bed.CreateFlow(cfg);
    GroundTruthTracer::Config tcfg;
    tcfg.record_from = Sec(5.0);
    GroundTruthTracer tracer(tcfg);
    flow.sender->telemetry().AttachSink(&tracer);
    flow.receiver->telemetry().AttachSink(&tracer);
    RawTcpSink sink(flow.sender);
    IperfApp app(&bed.loop(), &sink);
    SinkApp reader(flow.receiver);
    app.Start();
    reader.Start();
    bed.loop().RunUntil(Sec(30.0));
    return std::pair<double, double>(
        tracer.network_delay().mean(),
        RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                 TimeDelta::FromSecondsInt(30))
            .ToMbps());
  };
  auto [net_plain, tput_plain] = run(false);
  auto [net_drwa, tput_drwa] = run(true);
  // DRWA bounds the *network* queueing (that is all a receiver can reach —
  // the sender's socket buffer is out of its control, the paper's §6 point).
  EXPECT_LT(net_drwa, net_plain * 0.7);
  EXPECT_GT(tput_drwa, tput_plain * 0.8);
}

TEST(DrwaTest, WindowNeverChokesToZero) {
  PathConfig path;
  Testbed bed(43, path);
  TcpSocket::Config cfg;
  cfg.drwa_rcv_window_moderation = true;
  Testbed::Flow flow = bed.CreateFlow(cfg);
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(20.0));
  // The 4*MSS floor keeps the connection alive and productive.
  EXPECT_GT(flow.receiver->app_bytes_read(), 5'000'000u);
}

class TcpGridTest
    : public ::testing::TestWithParam<std::tuple<int /*mbps*/, int /*owd_ms*/>> {};

TEST_P(TcpGridTest, GoodputAndConservation) {
  auto [mbps, owd] = GetParam();
  PathConfig path;
  path.rate = DataRate::Mbps(mbps);
  path.one_way_delay = TimeDelta::FromMillis(owd);
  path.queue_limit_packets =
      static_cast<size_t>(std::max(50.0, 2.0 * mbps * 1e6 / 8 * owd * 2e-3 / 1500));
  Testbed bed(1000 + static_cast<uint64_t>(mbps * 100 + owd), path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  RawTcpSink sink(flow.sender);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(Sec(30.0));
  double goodput = RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                            TimeDelta::FromSecondsInt(30))
                       .ToMbps();
  EXPECT_GT(goodput, mbps * 0.65);
  // Conservation: receiver never reads more than the sender wrote, and the
  // stream is contiguous.
  EXPECT_LE(flow.receiver->app_bytes_read(), flow.sender->app_bytes_written());
  EXPECT_EQ(flow.receiver->GetTcpInfo().tcpi_bytes_received,
            flow.receiver->ReadableBytes() + flow.receiver->app_bytes_read());
}

INSTANTIATE_TEST_SUITE_P(BandwidthRttGrid, TcpGridTest,
                         ::testing::Combine(::testing::Values(5, 20, 50),
                                            ::testing::Values(10, 50, 100)));

}  // namespace
}  // namespace element
