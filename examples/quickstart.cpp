// Quickstart: attach ELEMENT to a bulk TCP Cubic flow over an emulated
// 10 Mbps / 25 ms path, and print the decomposed end-to-end latency the way
// the paper's Section 2 does — first without, then with, ELEMENT's latency
// minimization.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/estimation_error.h"
#include "src/element/interposer.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/flow_meter.h"
#include "src/trace/ground_truth.h"

using namespace element;

namespace {

struct RunResult {
  GroundTruthTracer::Composition composition;
  double throughput_mbps = 0.0;
  double est_sender_delay_s = 0.0;
  double est_accuracy = 0.0;
};

RunResult RunFlow(bool with_element) {
  PathConfig path;
  path.rate = DataRate::Mbps(10);
  path.one_way_delay = TimeDelta::FromMillis(25);
  path.queue_limit_packets = 100;
  Testbed bed(/*seed=*/42, path);

  TcpSocket::Config socket_config;
  socket_config.congestion_control = "cubic";
  Testbed::Flow flow = bed.CreateFlow(socket_config);

  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);

  std::unique_ptr<ByteSink> sink;
  if (with_element) {
    sink = std::make_unique<InterposedSink>(&bed.loop(), flow.sender);
  } else {
    sink = std::make_unique<RawTcpSink>(flow.sender);
  }
  IperfApp iperf(&bed.loop(), sink.get(), 128 * 1024);
  SinkApp reader(flow.receiver);
  iperf.Start();
  reader.Start();

  FlowMeter meter(&bed.loop(), flow.receiver);
  meter.Start();

  bed.loop().RunUntil(SimTime::FromNanos(30'000'000'000LL));  // 30 s

  RunResult result;
  result.composition = tracer.MeanComposition();
  result.throughput_mbps = meter.MeanGoodput().ToMbps();
  if (with_element) {
    auto* interposed = static_cast<InterposedSink*>(sink.get());
    result.est_sender_delay_s = interposed->element().sender_estimator().delay_samples().mean();
    AccuracyResult acc = ScoreEstimates(interposed->element().sender_estimator().delay_series(),
                                        tracer.sender_delay_series());
    result.est_accuracy = acc.accuracy;
  }
  return result;
}

void PrintRun(const char* label, const RunResult& r) {
  std::printf("%s\n", label);
  std::printf("  sender system delay : %8.3f s\n", r.composition.sender_s);
  std::printf("  network delay       : %8.3f s\n", r.composition.network_s);
  std::printf("  receiver system delay:%8.3f s\n", r.composition.receiver_s);
  std::printf("  total one-way delay : %8.3f s\n", r.composition.total_s);
  std::printf("  goodput             : %8.3f Mbps\n", r.throughput_mbps);
  if (r.est_accuracy > 0) {
    std::printf("  ELEMENT sender-delay estimate: %.3f s (accuracy %.1f%%)\n",
                r.est_sender_delay_s, r.est_accuracy * 100.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("ELEMENT quickstart — where does slow data go to wait?\n");
  std::printf("Path: 10 Mbps, 25 ms one-way delay, pfifo_fast bottleneck\n\n");
  RunResult plain = RunFlow(/*with_element=*/false);
  PrintRun("TCP Cubic alone:", plain);
  RunResult with_em = RunFlow(/*with_element=*/true);
  PrintRun("TCP Cubic + ELEMENT (LD_PRELOAD-style interposition):", with_em);

  double speedup = plain.composition.total_s / (with_em.composition.total_s + 1e-9);
  std::printf("End-to-end latency reduced %.1fx; throughput %.1f -> %.1f Mbps\n", speedup,
              plain.throughput_mbps, with_em.throughput_mbps);
  return 0;
}
