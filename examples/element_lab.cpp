// element_lab: the command-line laboratory. Runs any of the repository's
// experiment shapes with configurable path, congestion control, duration,
// and seed, and optionally exports CSVs for external plotting.
//
//   element_lab measure  [--rate-mbps 10] [--owd-ms 25] [--qdisc pfifo_fast]
//                        [--cc cubic] [--duration 30] [--seed 1]
//                        [--csv-dir DIR]
//   element_lab minimize [same path flags] [--flows 3] [--wireless]
//   element_lab probe    [same path flags]
//   element_lab vr       [--rate-mbps 50] [--element]
//   element_lab trace    --trace-file trace.csv [--cc cubic] [--duration 30]
//
// `measure` decomposes a flow's latency (ELEMENT vs ground truth);
// `minimize` compares plain vs interposed legacy flows; `probe` runs the
// Table-1 tool comparison; `vr` runs the §5.2 scenario; `trace` replays a
// bandwidth trace CSV ("t_seconds,mbps").

#include <cstdio>
#include <memory>
#include <string>

#include "src/apps/iperf_app.h"
#include "src/apps/vr_app.h"
#include "src/common/flags.h"
#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"
#include "src/element/estimation_error.h"
#include "src/element/interposer.h"
#include "src/netsim/pfifo_fast.h"
#include "src/netsim/trace_link.h"
#include "src/tcpsim/testbed.h"
#include "src/tools/probe_tools.h"
#include "src/trace/export.h"
#include "src/trace/ground_truth.h"

using namespace element;

namespace {

QdiscType ParseQdisc(const std::string& name) {
  if (name == "codel") {
    return QdiscType::kCoDel;
  }
  if (name == "fq_codel") {
    return QdiscType::kFqCoDel;
  }
  if (name == "pie") {
    return QdiscType::kPie;
  }
  if (name == "red") {
    return QdiscType::kRed;
  }
  return QdiscType::kPfifoFast;
}

PathConfig PathFromFlags(const Flags& flags) {
  PathConfig path;
  double mbps = flags.GetDouble("rate-mbps", 10.0);
  double owd = flags.GetDouble("owd-ms", 25.0);
  path.rate = DataRate::Mbps(mbps);
  path.one_way_delay = TimeDelta::FromSeconds(owd / 1000.0);
  path.qdisc = ParseQdisc(flags.GetString("qdisc", "pfifo_fast"));
  double bdp_pkts = mbps * 1e6 / 8.0 * owd * 2e-3 / 1500.0;
  path.queue_limit_packets = static_cast<size_t>(
      flags.GetInt("queue-pkts", static_cast<int64_t>(std::max(60.0, 2.0 * bdp_pkts))));
  path.loss_probability = flags.GetDouble("loss", 0.0);
  path.ecn = flags.GetBool("ecn");
  return path;
}

class EmSink : public ByteSink {
 public:
  explicit EmSink(ElementSocket* em) : em_(em) {}
  size_t Write(size_t n) override {
    size_t total = 0;
    while (total < n) {
      RetInfo r = em_->Send(n - total);
      if (r.size <= 0) {
        break;
      }
      total += static_cast<size_t>(r.size);
    }
    return total;
  }
  void SetWritableCallback(std::function<void()> cb) override {
    em_->SetReadyToSendCallback(std::move(cb));
  }
  TcpSocket* socket() override { return em_->socket(); }

 private:
  ElementSocket* em_;
};

int CmdMeasure(const Flags& flags) {
  PathConfig path = PathFromFlags(flags);
  double duration = flags.GetDouble("duration", 30.0);
  Testbed bed(static_cast<uint64_t>(flags.GetInt("seed", 1)), path);
  TcpSocket::Config cfg;
  cfg.congestion_control = flags.GetString("cc", "cubic");
  Testbed::Flow flow = bed.CreateFlow(cfg);
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  ElementSocket em_snd(&bed.loop(), flow.sender, opt);
  ElementSocket em_rcv(&bed.loop(), flow.receiver, opt);
  EmSink sink(&em_snd);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(&em_rcv);
  app.Start();
  reader.Start();
  bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(duration * 1e9)));

  GroundTruthTracer::Composition c = tracer.MeanComposition();
  AccuracyResult acc =
      ScoreEstimates(em_snd.sender_estimator().delay_series(), tracer.sender_delay_series());
  std::printf("ground truth : sender %.3f s | network %.3f s | receiver %.3f s\n", c.sender_s,
              c.network_s, c.receiver_s);
  std::printf("ELEMENT      : sender %.3f s | network %.3f s | receiver %.3f s\n",
              em_snd.sender_estimator().delay_samples().mean(),
              em_snd.path_estimator().one_way_network_delay().ToSeconds(),
              em_rcv.receiver_estimator().delay_samples().mean());
  std::printf("sender accuracy %.1f%% (median |err| %.4f s over %zu samples)\n",
              acc.accuracy * 100, acc.median_abs_error_s, acc.compared_samples);
  std::printf("goodput %.2f Mbps\n",
              RateOver(static_cast<int64_t>(flow.receiver->app_bytes_read()),
                       TimeDelta::FromSeconds(duration))
                  .ToMbps());

  std::string csv_dir = flags.GetString("csv-dir");
  if (!csv_dir.empty()) {
    WriteTimeSeriesCsvFile(csv_dir + "/element_sender_delay.csv",
                           em_snd.sender_estimator().delay_series(), "delay_s");
    WriteTimeSeriesCsvFile(csv_dir + "/ground_truth_sender_delay.csv",
                           tracer.sender_delay_series(), "delay_s");
    WriteCdfCsvFile(csv_dir + "/sender_error_cdf.csv", acc.errors,
                    {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}, "abs_error_s");
    std::printf("CSVs written to %s/\n", csv_dir.c_str());
  }
  return 0;
}

int CmdMinimize(const Flags& flags) {
  PathConfig path = PathFromFlags(flags);
  double duration = flags.GetDouble("duration", 30.0);
  int flows = static_cast<int>(flags.GetInt("flows", 3));
  auto run = [&](bool with_element) {
    Testbed bed(static_cast<uint64_t>(flags.GetInt("seed", 1)), path);
    struct Per {
      Testbed::Flow flow;
      std::unique_ptr<GroundTruthTracer> tracer;
      std::unique_ptr<ByteSink> sink;
      std::unique_ptr<IperfApp> app;
      std::unique_ptr<SinkApp> reader;
    };
    std::vector<Per> per(static_cast<size_t>(flows));
    for (int i = 0; i < flows; ++i) {
      Per& p = per[static_cast<size_t>(i)];
      TcpSocket::Config cfg;
      cfg.congestion_control = flags.GetString("cc", "cubic");
      p.flow = bed.CreateFlow(cfg);
      p.tracer = std::make_unique<GroundTruthTracer>();
      p.flow.sender->telemetry().AttachSink(p.tracer.get());
      p.flow.receiver->telemetry().AttachSink(p.tracer.get());
      if (i == 0 && with_element) {
        p.sink = std::make_unique<InterposedSink>(&bed.loop(), p.flow.sender,
                                                  flags.GetBool("wireless"));
      } else {
        p.sink = std::make_unique<RawTcpSink>(p.flow.sender);
      }
      p.app = std::make_unique<IperfApp>(&bed.loop(), p.sink.get());
      p.reader = std::make_unique<SinkApp>(p.flow.receiver);
      p.app->Start();
      p.reader->Start();
    }
    bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(duration * 1e9)));
    double delay = per[0].tracer->end_to_end_delay().mean() - path.one_way_delay.ToSeconds();
    double tput = RateOver(static_cast<int64_t>(per[0].flow.receiver->app_bytes_read()),
                           TimeDelta::FromSeconds(duration))
                      .ToMbps();
    return std::pair<double, double>(delay, tput);
  };
  auto [d0, t0] = run(false);
  auto [d1, t1] = run(true);
  std::printf("flow 0 relative delay: plain %.3f s -> ELEMENT %.3f s (%.1fx)\n", d0, d1,
              d0 / std::max(d1, 1e-4));
  std::printf("flow 0 throughput    : plain %.2f Mbps -> ELEMENT %.2f Mbps\n", t0, t1);
  return 0;
}

int CmdProbe(const Flags& flags) {
  PathConfig path = PathFromFlags(flags);
  double duration = flags.GetDouble("duration", 30.0);
  Testbed bed(static_cast<uint64_t>(flags.GetInt("seed", 1)), path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  ElementSocket em(&bed.loop(), flow.sender, opt);
  EmSink sink(&em);
  IperfApp app(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  app.Start();
  reader.Start();
  SynProbeTool tcpping(&bed.loop(), &bed.path(), SynProbeTool::TcpPing());
  tcpping.Start();
  bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(duration * 1e9)));
  std::printf("ground-truth sender delay : %.3f s\n", tracer.sender_delay().mean());
  std::printf("tcpping RTT               : %.3f s (blind to the above)\n",
              tcpping.rtt_samples().mean());
  std::printf("ELEMENT sender estimate   : %.3f s\n",
              em.sender_estimator().delay_samples().mean());
  return 0;
}

int CmdVr(const Flags& flags) {
  PathConfig path = PathFromFlags(flags);
  if (!flags.Has("rate-mbps")) {
    path.rate = DataRate::Mbps(50);
    path.one_way_delay = TimeDelta::FromMillis(10);
    path.queue_limit_packets = 80;
  }
  bool with_element = flags.GetBool("element");
  Testbed bed(static_cast<uint64_t>(flags.GetInt("seed", 1)), path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  std::unique_ptr<ElementSocket> em;
  if (with_element) {
    em = std::make_unique<ElementSocket>(&bed.loop(), flow.sender, ElementSocket::Options{});
  }
  VrConfig cfg;
  VrServer server(&bed.loop(), flow.sender, em.get(), cfg);
  VrClient client(&bed.loop(), flow.receiver, &server, cfg);
  server.Start();
  client.Start();
  double duration = flags.GetDouble("duration", 30.0);
  bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(duration * 1e9)));
  std::printf("%s: frames %lu, p50 delay %.0f ms, deadline misses %.1f%%\n",
              with_element ? "VR + ELEMENT" : "VR plain",
              static_cast<unsigned long>(client.frames_received()),
              client.frame_delays().Quantile(0.5) * 1000, client.DeadlineMissFraction() * 100);
  return 0;
}

int CmdTrace(const Flags& flags) {
  std::string file = flags.GetString("trace-file");
  std::vector<TracePoint> trace;
  if (file.empty()) {
    Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
    trace = TraceLinkModel::SynthesizeCellular(
        &rng, DataRate::Mbps(flags.GetDouble("rate-mbps", 20.0)),
        TimeDelta::FromSeconds(flags.GetDouble("duration", 30.0)));
    std::printf("(no --trace-file: synthesized a cellular-like trace)\n");
  } else {
    trace = TraceLinkModel::LoadCsvFile(file);
    if (trace.empty()) {
      std::fprintf(stderr, "could not load trace from %s\n", file.c_str());
      return 1;
    }
  }
  EventLoop loop;
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)) + 1);
  DuplexPath path(&loop, &rng, std::make_unique<PfifoFast>(200),
                  std::make_unique<TraceLinkModel>(trace, TimeDelta::FromMillis(25)),
                  std::make_unique<PfifoFast>(1000),
                  std::make_unique<FixedLinkModel>(DataRate::Gbps(1), TimeDelta::FromMillis(25)));
  uint64_t flow_id = path.AllocateFlowId();
  TcpSocket::Config cfg;
  cfg.congestion_control = flags.GetString("cc", "cubic");
  TcpSocket sender(&loop, rng.Fork(), cfg, flow_id, &path.forward(), &path.client_demux());
  TcpSocket receiver(&loop, rng.Fork(), cfg, flow_id, &path.reverse(), &path.server_demux());
  receiver.Listen();
  sender.Connect();
  RawTcpSink sink(&sender);
  IperfApp app(&loop, &sink);
  SinkApp reader(&receiver);
  app.Start();
  reader.Start();
  double duration = flags.GetDouble("duration", 30.0);
  loop.RunUntil(SimTime::FromNanos(static_cast<int64_t>(duration * 1e9)));
  std::printf("trace replay (%zu points): goodput %.2f Mbps, retransmits %lu\n", trace.size(),
              RateOver(static_cast<int64_t>(receiver.app_bytes_read()),
                       TimeDelta::FromSeconds(duration))
                  .ToMbps(),
              static_cast<unsigned long>(sender.total_retransmits()));
  return 0;
}

void Usage() {
  std::printf(
      "element_lab <measure|minimize|probe|vr|trace> [flags]\n"
      "common flags: --rate-mbps N --owd-ms N --qdisc pfifo_fast|codel|fq_codel|pie|red\n"
      "              --cc cubic|reno|vegas|bbr|ledbat --duration S --seed N --loss P --ecn\n"
      "measure:  --csv-dir DIR  export series/CDF CSVs\n"
      "minimize: --flows N --wireless\n"
      "vr:       --element\n"
      "trace:    --trace-file F (t_seconds,mbps CSV; synthesized if omitted)\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  if (flags.positional().empty()) {
    Usage();
    return 1;
  }
  const std::string& cmd = flags.positional()[0];
  if (cmd == "measure") {
    return CmdMeasure(flags);
  }
  if (cmd == "minimize") {
    return CmdMinimize(flags);
  }
  if (cmd == "probe") {
    return CmdProbe(flags);
  }
  if (cmd == "vr") {
    return CmdVr(flags);
  }
  if (cmd == "trace") {
    return CmdTrace(flags);
  }
  Usage();
  return 1;
}
