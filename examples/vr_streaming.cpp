// vr_streaming: the paper's Section 5.2 demo — 360-degree VR streaming over
// TCP, with and without ELEMENT's latency-aware adaptation. Frames must
// arrive within 200 ms (100 ms VR-sickness threshold + base latency) or the
// user gets sick.
//
//   ./build/examples/vr_streaming [link_mbps]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/apps/vr_app.h"
#include "src/tcpsim/testbed.h"

using namespace element;

namespace {

void RunAndReport(const char* label, uint64_t seed, double mbps, bool with_element) {
  PathConfig path;
  path.rate = DataRate::Mbps(mbps);
  path.one_way_delay = TimeDelta::FromMillis(10);
  path.queue_limit_packets = 80;
  Testbed bed(seed, path);
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  std::unique_ptr<ElementSocket> em;
  if (with_element) {
    ElementSocket::Options opt;
    em = std::make_unique<ElementSocket>(&bed.loop(), flow.sender, opt);
  }
  VrConfig cfg;
  VrServer server(&bed.loop(), flow.sender, em.get(), cfg);
  VrClient client(&bed.loop(), flow.receiver, &server, cfg);
  server.Start();
  client.Start();
  bed.loop().RunUntil(SimTime::FromNanos(30'000'000'000LL));

  int dropped = 0;
  for (const VrFrameRecord& f : server.frames()) {
    dropped += f.dropped;
  }
  std::printf("%s\n", label);
  std::printf("  frames delivered        : %lu (%d skipped by the server)\n",
              static_cast<unsigned long>(client.frames_received()), dropped);
  std::printf("  frame delay p50 / p95   : %.0f / %.0f ms\n",
              client.frame_delays().Quantile(0.5) * 1000,
              client.frame_delays().Quantile(0.95) * 1000);
  std::printf("  200 ms deadline misses  : %.1f%%  %s\n", client.DeadlineMissFraction() * 100,
              client.DeadlineMissFraction() < 0.05 ? "(comfortable)" : "(VR sickness!)");
  std::printf("  head-control msgs at srv: %lu\n\n",
              static_cast<unsigned long>(server.control_messages_received()));
}

}  // namespace

int main(int argc, char** argv) {
  double mbps = argc > 1 ? std::atof(argv[1]) : 50.0;
  std::printf("vr_streaming: 60 fps 360-degree video over a %.0f Mbps path\n", mbps);
  std::printf("Top resolution level needs 57.6 Mbps — someone has to adapt.\n\n");
  RunAndReport("TCP Cubic alone (blindly streams the top level):", 5001, mbps, false);
  RunAndReport("TCP Cubic + ELEMENT (adapts on the measured sender-side delay):", 5002, mbps,
               true);
  return 0;
}
