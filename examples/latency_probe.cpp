// latency_probe: the "Table 1 in miniature" demo. Runs a bulk TCP flow over
// an emulated path while probing it with the classic TCP diagnosis tools
// (tcpping/paping/hping3/echoping) and with ELEMENT, then shows what each
// tool can and cannot see.
//
//   ./build/examples/latency_probe [bandwidth_mbps] [owd_ms]

#include <cstdio>
#include <cstdlib>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"
#include "src/tcpsim/testbed.h"
#include "src/tools/probe_tools.h"
#include "src/trace/ground_truth.h"

using namespace element;

namespace {

class EmSink : public ByteSink {
 public:
  explicit EmSink(ElementSocket* em) : em_(em) {}
  size_t Write(size_t n) override {
    RetInfo info = em_->Send(n);
    return info.size > 0 ? static_cast<size_t>(info.size) : 0;
  }
  void SetWritableCallback(std::function<void()> cb) override {
    em_->SetReadyToSendCallback(std::move(cb));
  }
  TcpSocket* socket() override { return em_->socket(); }

 private:
  ElementSocket* em_;
};

}  // namespace

int main(int argc, char** argv) {
  double mbps = argc > 1 ? std::atof(argv[1]) : 10.0;
  int owd_ms = argc > 2 ? std::atoi(argv[2]) : 25;

  std::printf("latency_probe: who can see where the delay lives?\n");
  std::printf("Path: %.0f Mbps, %d ms one-way delay; one bulk Cubic flow saturates it.\n\n",
              mbps, owd_ms);

  PathConfig path;
  path.rate = DataRate::Mbps(mbps);
  path.one_way_delay = TimeDelta::FromMillis(owd_ms);
  path.queue_limit_packets = 100;
  Testbed bed(2024, path);

  // The bulk flow, measured by ELEMENT (diagnosis only, no minimization).
  Testbed::Flow flow = bed.CreateFlow(TcpSocket::Config{});
  GroundTruthTracer tracer;
  flow.sender->telemetry().AttachSink(&tracer);
  flow.receiver->telemetry().AttachSink(&tracer);
  ElementSocket::Options opt;
  opt.enable_latency_minimization = false;
  ElementSocket em(&bed.loop(), flow.sender, opt);
  EmSink sink(&em);
  IperfApp iperf(&bed.loop(), &sink);
  SinkApp reader(flow.receiver);
  iperf.Start();
  reader.Start();

  // The classic tools.
  SynProbeTool tcpping(&bed.loop(), &bed.path(), SynProbeTool::TcpPing());
  tcpping.Start();
  Testbed::Flow echo_flow = bed.CreateFlow(TcpSocket::Config{});
  EchoPing echoping(&bed.loop(), echo_flow.receiver, echo_flow.sender);
  echoping.Start();

  bed.loop().RunUntil(SimTime::FromNanos(30'000'000'000LL));

  std::printf("ground truth (kernel tracepoints):\n");
  std::printf("  sender system delay : %7.1f ms   <- where the data actually waits\n",
              tracer.sender_delay().mean() * 1000);
  std::printf("  network delay       : %7.1f ms\n", tracer.network_delay().mean() * 1000);
  std::printf("  receiver system delay:%7.1f ms\n\n", tracer.receiver_delay().mean() * 1000);

  std::printf("what each tool reports:\n");
  std::printf("  tcpping (SYN probe)  : RTT %.1f ms — blind to the %.0f ms in the send buffer\n",
              tcpping.rtt_samples().mean() * 1000, tracer.sender_delay().mean() * 1000);
  std::printf("  echoping (HTTP timer): %.1f ms per transfer — one number, undecomposed\n",
              echoping.transfer_times().mean() * 1000);
  std::printf("  ELEMENT (user level) : sender %.1f ms / receiver %.1f ms — decomposed, no root\n",
              em.sender_estimator().delay_samples().mean() * 1000,
              em.recv_buffer_delay_s() * 1000);
  return 0;
}
