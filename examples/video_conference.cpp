// video_conference: the paper's §3.3 "TCP-based video conferencing" use case.
// Two participants exchange real-time video streams over one path (one TCP
// connection per direction). Each sender runs ELEMENT to monitor its send
// latency and adapts its bitrate so the two directions stay in sync even when
// one direction is congested by a competing bulk flow.
//
//   ./build/examples/video_conference

#include <cstdio>
#include <memory>
#include <vector>

#include "src/apps/iperf_app.h"
#include "src/element/byte_sink.h"
#include "src/element/element_socket.h"
#include "src/tcpsim/testbed.h"
#include "src/trace/ground_truth.h"

using namespace element;

namespace {

// One direction of the call: a 30 fps frame source with a bitrate ladder,
// adapting on ELEMENT's measured send-buffer delay.
class CallLeg {
 public:
  CallLeg(EventLoop* loop, TcpSocket* sender, TcpSocket* receiver, const char* name)
      : loop_(loop),
        name_(name),
        receiver_(receiver),
        em_options_(),
        em_(loop, sender, em_options_),
        frame_timer_(loop, TimeDelta::FromMillis(33), [this] { OnFrame(); }) {
    receiver_->SetReadableCallback([this] { Drain(); });
    em_.SetReadyToSendCallback([this] { Pump(); });
  }

  void Start() { frame_timer_.Start(); }

  double mean_send_delay_ms() const { return send_delay_.mean() * 1000; }
  int bitrate_level() const { return level_; }
  double delivered_mbps(double seconds) const {
    return RateOver(static_cast<int64_t>(receiver_->app_bytes_read()),
                    TimeDelta::FromSeconds(seconds))
        .ToMbps();
  }

 private:
  void OnFrame() {
    if (!em_.socket()->established()) {
      return;
    }
    // Bitrate ladder: 0.5 / 1 / 2 / 4 Mbps at 30 fps.
    static constexpr size_t kFrameBytes[] = {2100, 4200, 8300, 16700};
    double delay_ms = em_.send_buffer_delay_s() * 1000;
    send_delay_.Add(em_.send_buffer_delay_s());
    if (delay_ms > 60.0) {
      level_ = std::max(level_ - 1, 0);
    } else if (delay_ms < 20.0 && ++good_ > 90) {
      level_ = std::min(level_ + 1, 3);
      good_ = 0;
    }
    pending_ += kFrameBytes[static_cast<size_t>(level_)];
    Pump();
  }

  void Pump() {
    while (pending_ > 0) {
      RetInfo info = em_.Send(pending_);
      if (info.size <= 0) {
        break;
      }
      pending_ -= static_cast<size_t>(info.size);
    }
  }

  void Drain() {
    while (receiver_->Read(64 * 1024) > 0) {
    }
  }

  EventLoop* loop_;
  const char* name_;
  TcpSocket* receiver_;
  ElementSocket::Options em_options_;
  ElementSocket em_;
  PeriodicTimer frame_timer_;
  size_t pending_ = 0;
  int level_ = 3;
  int good_ = 0;
  RunningStats send_delay_;
};

}  // namespace

int main() {
  std::printf("video_conference: bidirectional TCP call with ELEMENT-driven sync\n\n");

  PathConfig path;
  path.rate = DataRate::Mbps(10);
  path.reverse_rate = DataRate::Mbps(10);
  path.one_way_delay = TimeDelta::FromMillis(20);
  path.queue_limit_packets = 100;
  Testbed bed(99, path);

  // Alice -> Bob (forward pipe) and Bob -> Alice (reverse pipe).
  Testbed::Flow a2b = bed.CreateFlow(TcpSocket::Config{}, /*sender_at_client=*/true);
  Testbed::Flow b2a = bed.CreateFlow(TcpSocket::Config{}, /*sender_at_client=*/false);
  CallLeg alice_to_bob(&bed.loop(), a2b.sender, a2b.receiver, "alice->bob");
  CallLeg bob_to_alice(&bed.loop(), b2a.sender, b2a.receiver, "bob->alice");
  alice_to_bob.Start();
  bob_to_alice.Start();

  // At t=20s a bulk download congests the alice->bob direction.
  std::unique_ptr<RawTcpSink> bulk_sink;
  std::unique_ptr<IperfApp> bulk_app;
  std::unique_ptr<SinkApp> bulk_reader;
  Testbed::Flow bulk;
  bed.loop().ScheduleAt(SimTime::FromNanos(20'000'000'000LL), [&] {
    bulk = bed.CreateFlow(TcpSocket::Config{}, true);
    bulk_sink = std::make_unique<RawTcpSink>(bulk.sender);
    bulk_app = std::make_unique<IperfApp>(&bed.loop(), bulk_sink.get());
    bulk_reader = std::make_unique<SinkApp>(bulk.receiver);
    bulk_app->Start();
    bulk_reader->Start();
    std::printf("[t=20s] bulk Cubic download joins the alice->bob direction\n");
  });

  for (int t = 10; t <= 60; t += 10) {
    bed.loop().RunUntil(SimTime::FromNanos(static_cast<int64_t>(t) * 1'000'000'000LL));
    std::printf("[t=%2ds] a->b: level %d, send delay %5.1f ms | b->a: level %d, send delay %5.1f ms\n",
                t, alice_to_bob.bitrate_level(), alice_to_bob.mean_send_delay_ms(),
                bob_to_alice.bitrate_level(), bob_to_alice.mean_send_delay_ms());
  }

  std::printf("\ndelivered rates over the call: a->b %.2f Mbps, b->a %.2f Mbps\n",
              alice_to_bob.delivered_mbps(60), bob_to_alice.delivered_mbps(60));
  std::printf("ELEMENT kept both legs' send delays visible so the congested leg could\n"
              "downshift instead of desynchronizing the call.\n");
  return 0;
}
