file(REMOVE_RECURSE
  "CMakeFiles/svc_test.dir/svc_test.cc.o"
  "CMakeFiles/svc_test.dir/svc_test.cc.o.d"
  "svc_test"
  "svc_test.pdb"
  "svc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
