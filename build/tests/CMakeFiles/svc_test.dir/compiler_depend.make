# Empty compiler generated dependencies file for svc_test.
# This may be replaced when dependencies are built.
