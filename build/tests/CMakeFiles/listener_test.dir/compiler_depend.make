# Empty compiler generated dependencies file for listener_test.
# This may be replaced when dependencies are built.
