file(REMOVE_RECURSE
  "CMakeFiles/listener_test.dir/listener_test.cc.o"
  "CMakeFiles/listener_test.dir/listener_test.cc.o.d"
  "listener_test"
  "listener_test.pdb"
  "listener_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listener_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
