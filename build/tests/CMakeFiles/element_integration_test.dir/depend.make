# Empty dependencies file for element_integration_test.
# This may be replaced when dependencies are built.
