
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/element_integration_test.cc" "tests/CMakeFiles/element_integration_test.dir/element_integration_test.cc.o" "gcc" "tests/CMakeFiles/element_integration_test.dir/element_integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/element_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/element_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/udpproto/CMakeFiles/element_udpproto.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/element_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/element/CMakeFiles/element_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpsim/CMakeFiles/element_tcpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/element_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/evloop/CMakeFiles/element_evloop.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/element_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
