file(REMOVE_RECURSE
  "CMakeFiles/element_integration_test.dir/element_integration_test.cc.o"
  "CMakeFiles/element_integration_test.dir/element_integration_test.cc.o.d"
  "element_integration_test"
  "element_integration_test.pdb"
  "element_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
