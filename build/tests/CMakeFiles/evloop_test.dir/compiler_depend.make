# Empty compiler generated dependencies file for evloop_test.
# This may be replaced when dependencies are built.
