file(REMOVE_RECURSE
  "CMakeFiles/evloop_test.dir/evloop_test.cc.o"
  "CMakeFiles/evloop_test.dir/evloop_test.cc.o.d"
  "evloop_test"
  "evloop_test.pdb"
  "evloop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evloop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
