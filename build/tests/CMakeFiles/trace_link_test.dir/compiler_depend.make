# Empty compiler generated dependencies file for trace_link_test.
# This may be replaced when dependencies are built.
