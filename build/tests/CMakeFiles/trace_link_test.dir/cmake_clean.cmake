file(REMOVE_RECURSE
  "CMakeFiles/trace_link_test.dir/trace_link_test.cc.o"
  "CMakeFiles/trace_link_test.dir/trace_link_test.cc.o.d"
  "trace_link_test"
  "trace_link_test.pdb"
  "trace_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
