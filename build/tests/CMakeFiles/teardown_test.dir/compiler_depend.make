# Empty compiler generated dependencies file for teardown_test.
# This may be replaced when dependencies are built.
