file(REMOVE_RECURSE
  "CMakeFiles/teardown_test.dir/teardown_test.cc.o"
  "CMakeFiles/teardown_test.dir/teardown_test.cc.o.d"
  "teardown_test"
  "teardown_test.pdb"
  "teardown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teardown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
