# Empty dependencies file for minimizer_test.
# This may be replaced when dependencies are built.
