file(REMOVE_RECURSE
  "CMakeFiles/minimizer_test.dir/minimizer_test.cc.o"
  "CMakeFiles/minimizer_test.dir/minimizer_test.cc.o.d"
  "minimizer_test"
  "minimizer_test.pdb"
  "minimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
