# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/evloop_test[1]_include.cmake")
include("/root/repo/build/tests/qdisc_test[1]_include.cmake")
include("/root/repo/build/tests/link_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_unit_test[1]_include.cmake")
include("/root/repo/build/tests/listener_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/minimizer_test[1]_include.cmake")
include("/root/repo/build/tests/element_integration_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/udp_test[1]_include.cmake")
include("/root/repo/build/tests/vr_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/teardown_test[1]_include.cmake")
include("/root/repo/build/tests/svc_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/trace_link_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
