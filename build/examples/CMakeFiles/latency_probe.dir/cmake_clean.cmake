file(REMOVE_RECURSE
  "CMakeFiles/latency_probe.dir/latency_probe.cpp.o"
  "CMakeFiles/latency_probe.dir/latency_probe.cpp.o.d"
  "latency_probe"
  "latency_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
