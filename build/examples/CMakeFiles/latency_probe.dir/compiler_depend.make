# Empty compiler generated dependencies file for latency_probe.
# This may be replaced when dependencies are built.
