# Empty compiler generated dependencies file for element_lab.
# This may be replaced when dependencies are built.
