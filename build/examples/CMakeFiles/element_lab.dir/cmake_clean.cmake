file(REMOVE_RECURSE
  "CMakeFiles/element_lab.dir/element_lab.cpp.o"
  "CMakeFiles/element_lab.dir/element_lab.cpp.o.d"
  "element_lab"
  "element_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
