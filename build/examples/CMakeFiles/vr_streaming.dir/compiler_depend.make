# Empty compiler generated dependencies file for vr_streaming.
# This may be replaced when dependencies are built.
