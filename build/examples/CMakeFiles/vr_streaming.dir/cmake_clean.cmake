file(REMOVE_RECURSE
  "CMakeFiles/vr_streaming.dir/vr_streaming.cpp.o"
  "CMakeFiles/vr_streaming.dir/vr_streaming.cpp.o.d"
  "vr_streaming"
  "vr_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
