file(REMOVE_RECURSE
  "CMakeFiles/element_tools.dir/probe_tools.cc.o"
  "CMakeFiles/element_tools.dir/probe_tools.cc.o.d"
  "libelement_tools.a"
  "libelement_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
