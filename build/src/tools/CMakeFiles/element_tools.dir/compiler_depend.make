# Empty compiler generated dependencies file for element_tools.
# This may be replaced when dependencies are built.
