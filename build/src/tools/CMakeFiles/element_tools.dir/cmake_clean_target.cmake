file(REMOVE_RECURSE
  "libelement_tools.a"
)
