
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/codel.cc" "src/netsim/CMakeFiles/element_netsim.dir/codel.cc.o" "gcc" "src/netsim/CMakeFiles/element_netsim.dir/codel.cc.o.d"
  "/root/repo/src/netsim/fq_codel.cc" "src/netsim/CMakeFiles/element_netsim.dir/fq_codel.cc.o" "gcc" "src/netsim/CMakeFiles/element_netsim.dir/fq_codel.cc.o.d"
  "/root/repo/src/netsim/link_model.cc" "src/netsim/CMakeFiles/element_netsim.dir/link_model.cc.o" "gcc" "src/netsim/CMakeFiles/element_netsim.dir/link_model.cc.o.d"
  "/root/repo/src/netsim/pfifo_fast.cc" "src/netsim/CMakeFiles/element_netsim.dir/pfifo_fast.cc.o" "gcc" "src/netsim/CMakeFiles/element_netsim.dir/pfifo_fast.cc.o.d"
  "/root/repo/src/netsim/pie.cc" "src/netsim/CMakeFiles/element_netsim.dir/pie.cc.o" "gcc" "src/netsim/CMakeFiles/element_netsim.dir/pie.cc.o.d"
  "/root/repo/src/netsim/pipe.cc" "src/netsim/CMakeFiles/element_netsim.dir/pipe.cc.o" "gcc" "src/netsim/CMakeFiles/element_netsim.dir/pipe.cc.o.d"
  "/root/repo/src/netsim/red.cc" "src/netsim/CMakeFiles/element_netsim.dir/red.cc.o" "gcc" "src/netsim/CMakeFiles/element_netsim.dir/red.cc.o.d"
  "/root/repo/src/netsim/trace_link.cc" "src/netsim/CMakeFiles/element_netsim.dir/trace_link.cc.o" "gcc" "src/netsim/CMakeFiles/element_netsim.dir/trace_link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/element_common.dir/DependInfo.cmake"
  "/root/repo/build/src/evloop/CMakeFiles/element_evloop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
