file(REMOVE_RECURSE
  "libelement_netsim.a"
)
