file(REMOVE_RECURSE
  "CMakeFiles/element_netsim.dir/codel.cc.o"
  "CMakeFiles/element_netsim.dir/codel.cc.o.d"
  "CMakeFiles/element_netsim.dir/fq_codel.cc.o"
  "CMakeFiles/element_netsim.dir/fq_codel.cc.o.d"
  "CMakeFiles/element_netsim.dir/link_model.cc.o"
  "CMakeFiles/element_netsim.dir/link_model.cc.o.d"
  "CMakeFiles/element_netsim.dir/pfifo_fast.cc.o"
  "CMakeFiles/element_netsim.dir/pfifo_fast.cc.o.d"
  "CMakeFiles/element_netsim.dir/pie.cc.o"
  "CMakeFiles/element_netsim.dir/pie.cc.o.d"
  "CMakeFiles/element_netsim.dir/pipe.cc.o"
  "CMakeFiles/element_netsim.dir/pipe.cc.o.d"
  "CMakeFiles/element_netsim.dir/red.cc.o"
  "CMakeFiles/element_netsim.dir/red.cc.o.d"
  "CMakeFiles/element_netsim.dir/trace_link.cc.o"
  "CMakeFiles/element_netsim.dir/trace_link.cc.o.d"
  "libelement_netsim.a"
  "libelement_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
