# Empty compiler generated dependencies file for element_netsim.
# This may be replaced when dependencies are built.
