# Empty compiler generated dependencies file for element_evloop.
# This may be replaced when dependencies are built.
