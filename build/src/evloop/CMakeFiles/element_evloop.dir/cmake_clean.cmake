file(REMOVE_RECURSE
  "CMakeFiles/element_evloop.dir/event_loop.cc.o"
  "CMakeFiles/element_evloop.dir/event_loop.cc.o.d"
  "libelement_evloop.a"
  "libelement_evloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_evloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
