file(REMOVE_RECURSE
  "libelement_evloop.a"
)
