file(REMOVE_RECURSE
  "CMakeFiles/element_trace.dir/export.cc.o"
  "CMakeFiles/element_trace.dir/export.cc.o.d"
  "CMakeFiles/element_trace.dir/flow_meter.cc.o"
  "CMakeFiles/element_trace.dir/flow_meter.cc.o.d"
  "CMakeFiles/element_trace.dir/ground_truth.cc.o"
  "CMakeFiles/element_trace.dir/ground_truth.cc.o.d"
  "CMakeFiles/element_trace.dir/packet_log.cc.o"
  "CMakeFiles/element_trace.dir/packet_log.cc.o.d"
  "libelement_trace.a"
  "libelement_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
