# Empty dependencies file for element_trace.
# This may be replaced when dependencies are built.
