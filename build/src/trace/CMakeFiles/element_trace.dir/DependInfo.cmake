
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/export.cc" "src/trace/CMakeFiles/element_trace.dir/export.cc.o" "gcc" "src/trace/CMakeFiles/element_trace.dir/export.cc.o.d"
  "/root/repo/src/trace/flow_meter.cc" "src/trace/CMakeFiles/element_trace.dir/flow_meter.cc.o" "gcc" "src/trace/CMakeFiles/element_trace.dir/flow_meter.cc.o.d"
  "/root/repo/src/trace/ground_truth.cc" "src/trace/CMakeFiles/element_trace.dir/ground_truth.cc.o" "gcc" "src/trace/CMakeFiles/element_trace.dir/ground_truth.cc.o.d"
  "/root/repo/src/trace/packet_log.cc" "src/trace/CMakeFiles/element_trace.dir/packet_log.cc.o" "gcc" "src/trace/CMakeFiles/element_trace.dir/packet_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/element_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpsim/CMakeFiles/element_tcpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/element_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/evloop/CMakeFiles/element_evloop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
