file(REMOVE_RECURSE
  "libelement_trace.a"
)
