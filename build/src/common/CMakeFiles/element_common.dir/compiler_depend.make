# Empty compiler generated dependencies file for element_common.
# This may be replaced when dependencies are built.
