file(REMOVE_RECURSE
  "libelement_common.a"
)
