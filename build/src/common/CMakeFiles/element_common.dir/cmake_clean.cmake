file(REMOVE_RECURSE
  "CMakeFiles/element_common.dir/flags.cc.o"
  "CMakeFiles/element_common.dir/flags.cc.o.d"
  "CMakeFiles/element_common.dir/stats.cc.o"
  "CMakeFiles/element_common.dir/stats.cc.o.d"
  "CMakeFiles/element_common.dir/time.cc.o"
  "CMakeFiles/element_common.dir/time.cc.o.d"
  "libelement_common.a"
  "libelement_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
