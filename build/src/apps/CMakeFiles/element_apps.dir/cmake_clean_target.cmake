file(REMOVE_RECURSE
  "libelement_apps.a"
)
