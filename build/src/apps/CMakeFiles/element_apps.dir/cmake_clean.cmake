file(REMOVE_RECURSE
  "CMakeFiles/element_apps.dir/iperf_app.cc.o"
  "CMakeFiles/element_apps.dir/iperf_app.cc.o.d"
  "CMakeFiles/element_apps.dir/svc_app.cc.o"
  "CMakeFiles/element_apps.dir/svc_app.cc.o.d"
  "CMakeFiles/element_apps.dir/vr_app.cc.o"
  "CMakeFiles/element_apps.dir/vr_app.cc.o.d"
  "libelement_apps.a"
  "libelement_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
