# Empty compiler generated dependencies file for element_apps.
# This may be replaced when dependencies are built.
