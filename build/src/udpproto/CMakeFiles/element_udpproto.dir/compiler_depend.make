# Empty compiler generated dependencies file for element_udpproto.
# This may be replaced when dependencies are built.
