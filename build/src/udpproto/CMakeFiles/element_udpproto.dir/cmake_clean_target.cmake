file(REMOVE_RECURSE
  "libelement_udpproto.a"
)
