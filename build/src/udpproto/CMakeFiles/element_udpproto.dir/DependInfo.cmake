
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udpproto/low_latency_protocols.cc" "src/udpproto/CMakeFiles/element_udpproto.dir/low_latency_protocols.cc.o" "gcc" "src/udpproto/CMakeFiles/element_udpproto.dir/low_latency_protocols.cc.o.d"
  "/root/repo/src/udpproto/udp_socket.cc" "src/udpproto/CMakeFiles/element_udpproto.dir/udp_socket.cc.o" "gcc" "src/udpproto/CMakeFiles/element_udpproto.dir/udp_socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/element_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/evloop/CMakeFiles/element_evloop.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/element_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
