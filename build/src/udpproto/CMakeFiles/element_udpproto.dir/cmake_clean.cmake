file(REMOVE_RECURSE
  "CMakeFiles/element_udpproto.dir/low_latency_protocols.cc.o"
  "CMakeFiles/element_udpproto.dir/low_latency_protocols.cc.o.d"
  "CMakeFiles/element_udpproto.dir/udp_socket.cc.o"
  "CMakeFiles/element_udpproto.dir/udp_socket.cc.o.d"
  "libelement_udpproto.a"
  "libelement_udpproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_udpproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
