# Empty compiler generated dependencies file for element_core.
# This may be replaced when dependencies are built.
