file(REMOVE_RECURSE
  "CMakeFiles/element_core.dir/delay_estimator.cc.o"
  "CMakeFiles/element_core.dir/delay_estimator.cc.o.d"
  "CMakeFiles/element_core.dir/delay_event_monitor.cc.o"
  "CMakeFiles/element_core.dir/delay_event_monitor.cc.o.d"
  "CMakeFiles/element_core.dir/element_socket.cc.o"
  "CMakeFiles/element_core.dir/element_socket.cc.o.d"
  "CMakeFiles/element_core.dir/estimation_error.cc.o"
  "CMakeFiles/element_core.dir/estimation_error.cc.o.d"
  "CMakeFiles/element_core.dir/interposer.cc.o"
  "CMakeFiles/element_core.dir/interposer.cc.o.d"
  "CMakeFiles/element_core.dir/latency_minimizer.cc.o"
  "CMakeFiles/element_core.dir/latency_minimizer.cc.o.d"
  "CMakeFiles/element_core.dir/path_delay_estimator.cc.o"
  "CMakeFiles/element_core.dir/path_delay_estimator.cc.o.d"
  "CMakeFiles/element_core.dir/tcp_info_tracker.cc.o"
  "CMakeFiles/element_core.dir/tcp_info_tracker.cc.o.d"
  "libelement_core.a"
  "libelement_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
