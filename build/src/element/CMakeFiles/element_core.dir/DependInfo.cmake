
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/element/delay_estimator.cc" "src/element/CMakeFiles/element_core.dir/delay_estimator.cc.o" "gcc" "src/element/CMakeFiles/element_core.dir/delay_estimator.cc.o.d"
  "/root/repo/src/element/delay_event_monitor.cc" "src/element/CMakeFiles/element_core.dir/delay_event_monitor.cc.o" "gcc" "src/element/CMakeFiles/element_core.dir/delay_event_monitor.cc.o.d"
  "/root/repo/src/element/element_socket.cc" "src/element/CMakeFiles/element_core.dir/element_socket.cc.o" "gcc" "src/element/CMakeFiles/element_core.dir/element_socket.cc.o.d"
  "/root/repo/src/element/estimation_error.cc" "src/element/CMakeFiles/element_core.dir/estimation_error.cc.o" "gcc" "src/element/CMakeFiles/element_core.dir/estimation_error.cc.o.d"
  "/root/repo/src/element/interposer.cc" "src/element/CMakeFiles/element_core.dir/interposer.cc.o" "gcc" "src/element/CMakeFiles/element_core.dir/interposer.cc.o.d"
  "/root/repo/src/element/latency_minimizer.cc" "src/element/CMakeFiles/element_core.dir/latency_minimizer.cc.o" "gcc" "src/element/CMakeFiles/element_core.dir/latency_minimizer.cc.o.d"
  "/root/repo/src/element/path_delay_estimator.cc" "src/element/CMakeFiles/element_core.dir/path_delay_estimator.cc.o" "gcc" "src/element/CMakeFiles/element_core.dir/path_delay_estimator.cc.o.d"
  "/root/repo/src/element/tcp_info_tracker.cc" "src/element/CMakeFiles/element_core.dir/tcp_info_tracker.cc.o" "gcc" "src/element/CMakeFiles/element_core.dir/tcp_info_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/element_common.dir/DependInfo.cmake"
  "/root/repo/build/src/evloop/CMakeFiles/element_evloop.dir/DependInfo.cmake"
  "/root/repo/build/src/tcpsim/CMakeFiles/element_tcpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/element_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
