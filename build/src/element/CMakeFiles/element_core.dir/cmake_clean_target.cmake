file(REMOVE_RECURSE
  "libelement_core.a"
)
