file(REMOVE_RECURSE
  "libelement_tcpsim.a"
)
