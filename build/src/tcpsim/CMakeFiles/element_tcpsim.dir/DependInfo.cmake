
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcpsim/cc_bbr.cc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_bbr.cc.o" "gcc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_bbr.cc.o.d"
  "/root/repo/src/tcpsim/cc_cubic.cc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_cubic.cc.o" "gcc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_cubic.cc.o.d"
  "/root/repo/src/tcpsim/cc_ledbat.cc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_ledbat.cc.o" "gcc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_ledbat.cc.o.d"
  "/root/repo/src/tcpsim/cc_reno.cc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_reno.cc.o" "gcc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_reno.cc.o.d"
  "/root/repo/src/tcpsim/cc_vegas.cc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_vegas.cc.o" "gcc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/cc_vegas.cc.o.d"
  "/root/repo/src/tcpsim/congestion_control.cc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/congestion_control.cc.o" "gcc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/congestion_control.cc.o.d"
  "/root/repo/src/tcpsim/tcp_listener.cc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/tcp_listener.cc.o" "gcc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/tcp_listener.cc.o.d"
  "/root/repo/src/tcpsim/tcp_socket.cc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/tcp_socket.cc.o" "gcc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/tcp_socket.cc.o.d"
  "/root/repo/src/tcpsim/testbed.cc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/testbed.cc.o" "gcc" "src/tcpsim/CMakeFiles/element_tcpsim.dir/testbed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/element_common.dir/DependInfo.cmake"
  "/root/repo/build/src/evloop/CMakeFiles/element_evloop.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/element_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
