# Empty compiler generated dependencies file for element_tcpsim.
# This may be replaced when dependencies are built.
