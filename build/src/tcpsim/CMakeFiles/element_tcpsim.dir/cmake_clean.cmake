file(REMOVE_RECURSE
  "CMakeFiles/element_tcpsim.dir/cc_bbr.cc.o"
  "CMakeFiles/element_tcpsim.dir/cc_bbr.cc.o.d"
  "CMakeFiles/element_tcpsim.dir/cc_cubic.cc.o"
  "CMakeFiles/element_tcpsim.dir/cc_cubic.cc.o.d"
  "CMakeFiles/element_tcpsim.dir/cc_ledbat.cc.o"
  "CMakeFiles/element_tcpsim.dir/cc_ledbat.cc.o.d"
  "CMakeFiles/element_tcpsim.dir/cc_reno.cc.o"
  "CMakeFiles/element_tcpsim.dir/cc_reno.cc.o.d"
  "CMakeFiles/element_tcpsim.dir/cc_vegas.cc.o"
  "CMakeFiles/element_tcpsim.dir/cc_vegas.cc.o.d"
  "CMakeFiles/element_tcpsim.dir/congestion_control.cc.o"
  "CMakeFiles/element_tcpsim.dir/congestion_control.cc.o.d"
  "CMakeFiles/element_tcpsim.dir/tcp_listener.cc.o"
  "CMakeFiles/element_tcpsim.dir/tcp_listener.cc.o.d"
  "CMakeFiles/element_tcpsim.dir/tcp_socket.cc.o"
  "CMakeFiles/element_tcpsim.dir/tcp_socket.cc.o.d"
  "CMakeFiles/element_tcpsim.dir/testbed.cc.o"
  "CMakeFiles/element_tcpsim.dir/testbed.cc.o.d"
  "libelement_tcpsim.a"
  "libelement_tcpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_tcpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
