# Empty dependencies file for abl_aqm_comparison.
# This may be replaced when dependencies are built.
