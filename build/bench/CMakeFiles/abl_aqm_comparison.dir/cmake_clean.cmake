file(REMOVE_RECURSE
  "CMakeFiles/abl_aqm_comparison.dir/abl_aqm_comparison.cc.o"
  "CMakeFiles/abl_aqm_comparison.dir/abl_aqm_comparison.cc.o.d"
  "abl_aqm_comparison"
  "abl_aqm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_aqm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
