# Empty dependencies file for abl_estimator_formulas.
# This may be replaced when dependencies are built.
