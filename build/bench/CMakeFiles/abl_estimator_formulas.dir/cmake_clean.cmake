file(REMOVE_RECURSE
  "CMakeFiles/abl_estimator_formulas.dir/abl_estimator_formulas.cc.o"
  "CMakeFiles/abl_estimator_formulas.dir/abl_estimator_formulas.cc.o.d"
  "abl_estimator_formulas"
  "abl_estimator_formulas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_estimator_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
