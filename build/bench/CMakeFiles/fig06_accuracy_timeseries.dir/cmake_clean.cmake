file(REMOVE_RECURSE
  "CMakeFiles/fig06_accuracy_timeseries.dir/fig06_accuracy_timeseries.cc.o"
  "CMakeFiles/fig06_accuracy_timeseries.dir/fig06_accuracy_timeseries.cc.o.d"
  "fig06_accuracy_timeseries"
  "fig06_accuracy_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_accuracy_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
