# Empty dependencies file for fig06_accuracy_timeseries.
# This may be replaced when dependencies are built.
