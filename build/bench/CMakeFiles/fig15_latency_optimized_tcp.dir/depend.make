# Empty dependencies file for fig15_latency_optimized_tcp.
# This may be replaced when dependencies are built.
