file(REMOVE_RECURSE
  "CMakeFiles/fig15_latency_optimized_tcp.dir/fig15_latency_optimized_tcp.cc.o"
  "CMakeFiles/fig15_latency_optimized_tcp.dir/fig15_latency_optimized_tcp.cc.o.d"
  "fig15_latency_optimized_tcp"
  "fig15_latency_optimized_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_latency_optimized_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
