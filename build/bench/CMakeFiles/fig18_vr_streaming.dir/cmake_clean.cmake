file(REMOVE_RECURSE
  "CMakeFiles/fig18_vr_streaming.dir/fig18_vr_streaming.cc.o"
  "CMakeFiles/fig18_vr_streaming.dir/fig18_vr_streaming.cc.o.d"
  "fig18_vr_streaming"
  "fig18_vr_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_vr_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
