# Empty compiler generated dependencies file for fig18_vr_streaming.
# This may be replaced when dependencies are built.
