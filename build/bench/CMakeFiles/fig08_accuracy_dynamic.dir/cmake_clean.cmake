file(REMOVE_RECURSE
  "CMakeFiles/fig08_accuracy_dynamic.dir/fig08_accuracy_dynamic.cc.o"
  "CMakeFiles/fig08_accuracy_dynamic.dir/fig08_accuracy_dynamic.cc.o.d"
  "fig08_accuracy_dynamic"
  "fig08_accuracy_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_accuracy_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
