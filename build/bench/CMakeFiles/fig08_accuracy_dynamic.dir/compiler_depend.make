# Empty compiler generated dependencies file for fig08_accuracy_dynamic.
# This may be replaced when dependencies are built.
