file(REMOVE_RECURSE
  "CMakeFiles/fig02_delay_composition.dir/fig02_delay_composition.cc.o"
  "CMakeFiles/fig02_delay_composition.dir/fig02_delay_composition.cc.o.d"
  "fig02_delay_composition"
  "fig02_delay_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_delay_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
