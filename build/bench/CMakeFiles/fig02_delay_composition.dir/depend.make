# Empty dependencies file for fig02_delay_composition.
# This may be replaced when dependencies are built.
