file(REMOVE_RECURSE
  "CMakeFiles/fig13_legacy_controlled.dir/fig13_legacy_controlled.cc.o"
  "CMakeFiles/fig13_legacy_controlled.dir/fig13_legacy_controlled.cc.o.d"
  "fig13_legacy_controlled"
  "fig13_legacy_controlled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_legacy_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
