# Empty compiler generated dependencies file for fig13_legacy_controlled.
# This may be replaced when dependencies are built.
