# Empty compiler generated dependencies file for fig07_accuracy_environments.
# This may be replaced when dependencies are built.
