file(REMOVE_RECURSE
  "CMakeFiles/fig07_accuracy_environments.dir/fig07_accuracy_environments.cc.o"
  "CMakeFiles/fig07_accuracy_environments.dir/fig07_accuracy_environments.cc.o.d"
  "fig07_accuracy_environments"
  "fig07_accuracy_environments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_accuracy_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
