file(REMOVE_RECURSE
  "libelement_bench_harness.a"
)
