file(REMOVE_RECURSE
  "CMakeFiles/element_bench_harness.dir/harness.cc.o"
  "CMakeFiles/element_bench_harness.dir/harness.cc.o.d"
  "libelement_bench_harness.a"
  "libelement_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
