# Empty dependencies file for element_bench_harness.
# This may be replaced when dependencies are built.
