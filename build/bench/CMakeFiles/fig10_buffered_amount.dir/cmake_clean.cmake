file(REMOVE_RECURSE
  "CMakeFiles/fig10_buffered_amount.dir/fig10_buffered_amount.cc.o"
  "CMakeFiles/fig10_buffered_amount.dir/fig10_buffered_amount.cc.o.d"
  "fig10_buffered_amount"
  "fig10_buffered_amount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_buffered_amount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
