# Empty compiler generated dependencies file for fig10_buffered_amount.
# This may be replaced when dependencies are built.
