# Empty compiler generated dependencies file for fig14_legacy_production.
# This may be replaced when dependencies are built.
