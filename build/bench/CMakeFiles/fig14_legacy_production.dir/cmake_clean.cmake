file(REMOVE_RECURSE
  "CMakeFiles/fig14_legacy_production.dir/fig14_legacy_production.cc.o"
  "CMakeFiles/fig14_legacy_production.dir/fig14_legacy_production.cc.o.d"
  "fig14_legacy_production"
  "fig14_legacy_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_legacy_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
