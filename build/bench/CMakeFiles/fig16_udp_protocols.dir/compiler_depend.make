# Empty compiler generated dependencies file for fig16_udp_protocols.
# This may be replaced when dependencies are built.
