file(REMOVE_RECURSE
  "CMakeFiles/fig16_udp_protocols.dir/fig16_udp_protocols.cc.o"
  "CMakeFiles/fig16_udp_protocols.dir/fig16_udp_protocols.cc.o.d"
  "fig16_udp_protocols"
  "fig16_udp_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_udp_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
