# Empty compiler generated dependencies file for tab01_tool_comparison.
# This may be replaced when dependencies are built.
