file(REMOVE_RECURSE
  "CMakeFiles/tab01_tool_comparison.dir/tab01_tool_comparison.cc.o"
  "CMakeFiles/tab01_tool_comparison.dir/tab01_tool_comparison.cc.o.d"
  "tab01_tool_comparison"
  "tab01_tool_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_tool_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
