# Empty dependencies file for fig03_qdisc_comparison.
# This may be replaced when dependencies are built.
