file(REMOVE_RECURSE
  "CMakeFiles/fig03_qdisc_comparison.dir/fig03_qdisc_comparison.cc.o"
  "CMakeFiles/fig03_qdisc_comparison.dir/fig03_qdisc_comparison.cc.o.d"
  "fig03_qdisc_comparison"
  "fig03_qdisc_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_qdisc_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
