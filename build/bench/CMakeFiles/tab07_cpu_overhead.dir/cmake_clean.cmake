file(REMOVE_RECURSE
  "CMakeFiles/tab07_cpu_overhead.dir/tab07_cpu_overhead.cc.o"
  "CMakeFiles/tab07_cpu_overhead.dir/tab07_cpu_overhead.cc.o.d"
  "tab07_cpu_overhead"
  "tab07_cpu_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_cpu_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
