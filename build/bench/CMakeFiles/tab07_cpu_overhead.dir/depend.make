# Empty dependencies file for tab07_cpu_overhead.
# This may be replaced when dependencies are built.
