file(REMOVE_RECURSE
  "CMakeFiles/fig09_buffer_sizing.dir/fig09_buffer_sizing.cc.o"
  "CMakeFiles/fig09_buffer_sizing.dir/fig09_buffer_sizing.cc.o.d"
  "fig09_buffer_sizing"
  "fig09_buffer_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_buffer_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
