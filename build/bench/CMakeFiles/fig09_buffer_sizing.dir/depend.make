# Empty dependencies file for fig09_buffer_sizing.
# This may be replaced when dependencies are built.
