file(REMOVE_RECURSE
  "CMakeFiles/abl_host_baselines.dir/abl_host_baselines.cc.o"
  "CMakeFiles/abl_host_baselines.dir/abl_host_baselines.cc.o.d"
  "abl_host_baselines"
  "abl_host_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_host_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
