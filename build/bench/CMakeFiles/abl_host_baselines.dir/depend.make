# Empty dependencies file for abl_host_baselines.
# This may be replaced when dependencies are built.
